package machine

import (
	"testing"

	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// scriptPlane is a FaultPlane scripted per packet sequence number.
type scriptPlane struct {
	packet map[uint64]PacketFate
	agent  map[int64]AgentFate
}

func (s scriptPlane) PacketFate(link string, node int, seq uint64, now sim.Time) PacketFate {
	return s.packet[seq]
}

func (s scriptPlane) AgentFault(agent string, item int64, now sim.Time) AgentFate {
	return s.agent[item]
}

func TestLinkFaultDispatch(t *testing.T) {
	eng := sim.NewEngine()
	rec := &trace.Recorder{}
	eng.SetTracer(rec)
	l := NewLink(eng, "test.out", 100, 10*sim.Microsecond)
	l.SetFaultPlane(scriptPlane{packet: map[uint64]PacketFate{
		1: {Drop: true},
		2: {Down: true},
		3: {Corrupt: true, CorruptBit: 5},
		4: {Dup: true, DupDelay: 3 * sim.Microsecond},
		5: {Delay: 40 * sim.Microsecond},
	}}, 0)

	type arrival struct {
		seq  uint64
		at   sim.Time
		fate PacketFate
	}
	var got []arrival
	for seq := uint64(0); seq < 6; seq++ {
		seq := seq
		l.SendPacket(0, func(f PacketFate) {
			got = append(got, arrival{seq, eng.Now(), f})
		})
	}
	eng.Spawn("idle", func(p *sim.Proc) {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	// 0 clean, 1 dropped, 2 down, 3 corrupt, 4 twice, 5 delayed last.
	want := []struct {
		seq     uint64
		corrupt bool
	}{{0, false}, {3, true}, {4, false}, {4, false}, {5, false}}
	if len(got) != len(want) {
		t.Fatalf("arrivals = %+v, want %d", got, len(want))
	}
	for i, w := range want {
		if got[i].seq != w.seq || got[i].fate.Corrupt != w.corrupt {
			t.Errorf("arrival %d = %+v, want seq %d corrupt %v", i, got[i], w.seq, w.corrupt)
		}
	}
	if got[3].at-got[2].at != 3*sim.Microsecond {
		t.Errorf("duplicate spacing = %v, want 3us", got[3].at-got[2].at)
	}
	if got[4].at <= got[3].at {
		t.Error("reordered packet was not overtaken")
	}
	if l.Lost() != 3 {
		t.Errorf("Lost() = %d, want 3 (drop + down + corrupt)", l.Lost())
	}

	var drops, downs int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KDrop:
			drops++
			if ev.Comp != "test.out" || ev.Arg != 1 {
				t.Errorf("drop event = %+v", ev)
			}
		case trace.KLinkDown:
			downs++
			if ev.Arg != 2 {
				t.Errorf("link-down event = %+v", ev)
			}
		}
	}
	if drops != 1 || downs != 1 {
		t.Errorf("drop/down events = %d/%d, want 1/1", drops, downs)
	}
}

func TestLinkWithoutPlaneIsClean(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "clean.out", 100, sim.Microsecond)
	n := 0
	for i := 0; i < 10; i++ {
		l.SendPacket(64, func(f PacketFate) {
			if f != (PacketFate{}) {
				t.Errorf("clean link delivered fate %+v", f)
			}
			n++
		})
	}
	eng.Spawn("idle", func(p *sim.Proc) {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 10 || l.Lost() != 0 {
		t.Errorf("delivered %d (lost %d), want 10 (0)", n, l.Lost())
	}
}

func TestAgentStallAndRestart(t *testing.T) {
	eachMode(t, func(t *testing.T, eng *sim.Engine) {
		rec := &trace.Recorder{}
		eng.SetTracer(rec)
		a := NewAgent(eng, "test.proxy", 0)
		a.SetFaultPlane(scriptPlane{agent: map[int64]AgentFate{
			1: {Stall: 100 * sim.Microsecond},
			2: {Stall: 50 * sim.Microsecond, Restart: true},
		}})
		restarts := 0
		a.OnRestart(func() { restarts++ })

		var done []sim.Time
		eng.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				a.Submit(holdWork(sim.Microsecond, func(now sim.Time) { done = append(done, now) }))
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if len(done) != 3 {
			t.Fatalf("served %d items, want 3", len(done))
		}
		// Item 1 was stalled 100us; item 2 another 50us on top.
		if d := done[1] - done[0]; d < 100*sim.Microsecond {
			t.Errorf("stall not applied: item gap %v", d)
		}
		if restarts != 1 || a.Restarts() != 1 {
			t.Errorf("restarts = %d / %d, want 1", restarts, a.Restarts())
		}
		if a.Stalls() != 2 {
			t.Errorf("Stalls() = %d, want 2", a.Stalls())
		}
		stallEvents := 0
		for _, ev := range rec.Events() {
			if ev.Kind == trace.KStall && ev.Comp == "test.proxy" {
				stallEvents++
			}
		}
		if stallEvents != 2 {
			t.Errorf("stall trace events = %d, want 2", stallEvents)
		}
	})
}
