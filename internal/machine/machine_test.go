package machine

import (
	"strings"
	"testing"

	"mproxy/internal/arch"
	"mproxy/internal/sim"
)

// eachMode runs fn once per execution mode on a fresh engine: agent
// behavior must be identical whether the agent is a coroutine Proc or a
// run-to-completion Task.
func eachMode(t *testing.T, fn func(t *testing.T, eng *sim.Engine)) {
	for _, m := range []sim.ExecMode{sim.ExecTask, sim.ExecProc} {
		t.Run(m.String(), func(t *testing.T) {
			eng := sim.NewEngine()
			eng.SetExecMode(m)
			fn(t, eng)
		})
	}
}

// holdWork returns a dual-body Work that occupies the agent for d and then
// calls then (if non-nil) with the completion time — the same service
// under either execution mode.
func holdWork(d sim.Time, then func(now sim.Time)) Work {
	return Work{
		Fn: func(q *sim.Proc) {
			q.Hold(d)
			if then != nil {
				then(q.Now())
			}
		},
		TFn: func(a *Agent, _ any) {
			a.Task().Hold(d, func() {
				if then != nil {
					then(a.eng.Now())
				}
				a.WorkDone()
			})
		},
	}
}

func TestClusterTopology(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Config{Nodes: 4, ProcsPerNode: 4}, arch.MP1)
	if len(c.Nodes) != 4 || len(c.CPUs) != 16 {
		t.Fatalf("nodes=%d cpus=%d", len(c.Nodes), len(c.CPUs))
	}
	// Rank 5 is slot 1 of node 1.
	cpu := c.CPUs[5]
	if cpu.Node.ID != 1 || cpu.Slot != 1 || cpu.Rank != 5 {
		t.Fatalf("cpu5 = %+v", cpu)
	}
	if c.Nodes[0].Agent == nil {
		t.Fatal("proxy arch must have node agents")
	}
}

func TestSyscallArchHasNoAgent(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Config{Nodes: 2, ProcsPerNode: 1}, arch.SW1)
	if c.Nodes[0].Agent != nil {
		t.Fatal("SW1 must not have an agent")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewEngine(), Config{Nodes: 0, ProcsPerNode: 1}, arch.HW1)
}

// TestConfigValidate pins the validation split: zero means "unset, use
// the default", negative is always an explicit error (it used to fall
// through the <= 0 default paths silently), and unknown scheduling
// policies are rejected by name.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string // substring of the error; empty means valid
	}{
		{Config{Nodes: 2, ProcsPerNode: 1}, ""},
		{Config{Nodes: 2, ProcsPerNode: 1, ProxiesPerNode: 2, ProxySched: "steal"}, ""},
		{Config{Nodes: 2, ProcsPerNode: 1, ProxiesPerNode: 0}, ""}, // unset, defaults to 1
		{Config{Nodes: -1, ProcsPerNode: 1}, "negative Nodes"},
		{Config{Nodes: 2, ProcsPerNode: -3}, "negative ProcsPerNode"},
		{Config{Nodes: 2, ProcsPerNode: 1, ProxiesPerNode: -2}, "negative ProxiesPerNode"},
		{Config{Nodes: 0, ProcsPerNode: 1}, "bad config"},
		{Config{Nodes: 2, ProcsPerNode: 0}, "bad config"},
		{Config{Nodes: 2, ProcsPerNode: 1, ProxySched: "lottery"}, "unknown sched policy"},
		{Config{Nodes: 8, ProcsPerNode: 1, SimShards: 2}, ""},
		{Config{Nodes: 8, ProcsPerNode: 1, SimShards: 8}, ""}, // one node per shard is fine
		{Config{Nodes: 8, ProcsPerNode: 1, SimShards: -2}, "negative SimShards"},
		{Config{Nodes: 8, ProcsPerNode: 1, SimShards: 3}, "not divisible by SimShards"},
		{Config{Nodes: 4, ProcsPerNode: 1, SimShards: 8}, "SimShards 8 exceeds Nodes 4"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("Validate(%+v) = %v, want nil", c.cfg, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", c.cfg, err, c.want)
		}
	}
}

// TestNewShardedPlacement checks the contiguous node→shard blocks: every
// node's resources (links, agents) land on its owner shard's engine, and
// the sequential constructor refuses sharded configs outright.
func TestNewShardedPlacement(t *testing.T) {
	engs := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	c := NewSharded(engs, Config{Nodes: 4, ProcsPerNode: 1, SimShards: 2}, arch.MP1)
	if !c.Sharded() {
		t.Fatal("cluster not sharded")
	}
	for n, nd := range c.Nodes {
		want := engs[n/2]
		if nd.Eng != want || c.EngOf(n) != want {
			t.Errorf("node %d on wrong engine (shard %d expected)", n, n/2)
		}
	}
	if c.Eng != engs[0] {
		t.Error("control engine must be shard 0's")
	}
	for i := range engs {
		engs[i].Shutdown()
	}
}

// TestNewRejectsShardedConfig: a SimShards>1 config must be built with
// NewSharded; New panics before any model state (or goroutine) exists.
func TestNewRejectsShardedConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewEngine(), Config{Nodes: 4, ProcsPerNode: 1, SimShards: 2}, arch.MP1)
}

// TestNewShardedValidatesFirst: an invalid partition panics out of
// NewSharded before any agent is constructed (under ExecProc agents own
// goroutines, so validation must precede every spawn).
func TestNewShardedValidatesFirst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	engs := []*sim.Engine{sim.NewEngine(), sim.NewEngine(), sim.NewEngine()}
	NewSharded(engs, Config{Nodes: 4, ProcsPerNode: 1, SimShards: 3}, arch.MP1)
}

// TestNegativeProxiesPanics: before Config.Validate existed, a negative
// ProxiesPerNode silently became the 1-proxy default; it must now refuse
// to build.
func TestNegativeProxiesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewEngine(), Config{Nodes: 1, ProcsPerNode: 1, ProxiesPerNode: -1}, arch.MP1)
}

func TestCPUComputeWithoutInterrupts(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Config{Nodes: 1, ProcsPerNode: 1}, arch.SW1)
	cpu := c.CPUs[0]
	var end sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		cpu.Compute(p, 100)
		end = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 100 || cpu.BusyTime() != 100 {
		t.Fatalf("end=%v busy=%v", end, cpu.BusyTime())
	}
}

func TestCPUInterruptExtendsCompute(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Config{Nodes: 1, ProcsPerNode: 1}, arch.SW1)
	cpu := c.CPUs[0]
	var end sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		cpu.Compute(p, 100)
		end = p.Now()
	})
	eng.Schedule(50, func() { cpu.Interrupt(30) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 130 {
		t.Fatalf("end = %v, want 130 (100 compute + 30 stolen)", end)
	}
	if cpu.Stolen() != 30 {
		t.Fatalf("stolen = %v", cpu.Stolen())
	}
}

func TestCPUInterruptWhileIdleIsFree(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Config{Nodes: 1, ProcsPerNode: 1}, arch.SW1)
	cpu := c.CPUs[0]
	var end sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		p.Hold(50) // blocked, not computing
		cpu.Compute(p, 10)
		end = p.Now()
	})
	eng.Schedule(20, func() { cpu.Interrupt(30) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 60 {
		t.Fatalf("end = %v, want 60 (idle-time interrupt costs the app nothing)", end)
	}
	if cpu.Stolen() != 30 {
		t.Fatalf("stolen = %v", cpu.Stolen())
	}
}

func TestCPUMultipleInterrupts(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Config{Nodes: 1, ProcsPerNode: 1}, arch.SW1)
	cpu := c.CPUs[0]
	var end sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		cpu.Compute(p, 100)
		end = p.Now()
	})
	eng.Schedule(10, func() { cpu.Interrupt(5) })
	eng.Schedule(104, func() { cpu.Interrupt(5) }) // lands in the extension
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 110 {
		t.Fatalf("end = %v, want 110", end)
	}
}

func TestLinkSerialization(t *testing.T) {
	eng := sim.NewEngine()
	// 100 MB/s = 100 bytes/us; latency 2 us.
	l := NewLink(eng, "l", 100, 2*sim.Microsecond)
	var arrivals []sim.Time
	// Two back-to-back 1000-byte packets: serialization 10 us each.
	l.Send(1000, func() { arrivals = append(arrivals, eng.Now()) })
	l.Send(1000, func() { arrivals = append(arrivals, eng.Now()) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want0, want1 := sim.Micros(12), sim.Micros(22)
	if arrivals[0] != want0 || arrivals[1] != want1 {
		t.Fatalf("arrivals = %v, want [%v %v]", arrivals, want0, want1)
	}
	if l.Packets() != 2 || l.Bytes() != 2000 {
		t.Fatalf("packets=%d bytes=%d", l.Packets(), l.Bytes())
	}
	if u := l.Utilization(sim.Micros(20)); u != 1.0 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestLinkIdleGapNoSerializationCarry(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "l", 100, 0)
	var second sim.Time
	l.Send(100, func() {}) // arrives at 1 us
	eng.Schedule(sim.Micros(10), func() {
		l.Send(100, func() { second = eng.Now() })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if second != sim.Micros(11) {
		t.Fatalf("second arrival = %v, want 11us", second)
	}
}

func TestAgentExecutesFIFOWithNotice(t *testing.T) {
	eachMode(t, func(t *testing.T, eng *sim.Engine) {
		a := NewAgent(eng, "proxy", sim.Micros(3))
		var done []sim.Time
		eng.Spawn("client", func(p *sim.Proc) {
			a.Submit(holdWork(sim.Micros(5), func(now sim.Time) { done = append(done, now) }))
			a.Submit(holdWork(sim.Micros(5), func(now sim.Time) { done = append(done, now) }))
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		// First item: notice 3 + service 5 = 8. Second queued behind: no extra
		// notice, finishes at 13.
		if len(done) != 2 || done[0] != sim.Micros(8) || done[1] != sim.Micros(13) {
			t.Fatalf("done = %v", done)
		}
		if a.Served() != 2 || a.BusyTime() != sim.Micros(10) {
			t.Fatalf("served=%d busy=%v", a.Served(), a.BusyTime())
		}
	})
}

func TestAgentIdleThenNewNotice(t *testing.T) {
	eachMode(t, func(t *testing.T, eng *sim.Engine) {
		a := NewAgent(eng, "proxy", sim.Micros(3))
		var done []sim.Time
		eng.Spawn("client", func(p *sim.Proc) {
			a.Submit(holdWork(sim.Micros(1), func(now sim.Time) { done = append(done, now) }))
			p.Hold(sim.Micros(100))
			a.Submit(holdWork(sim.Micros(1), func(now sim.Time) { done = append(done, now) }))
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		// Both items find the agent idle: each pays the notice delay.
		if done[0] != sim.Micros(4) || done[1] != sim.Micros(104) {
			t.Fatalf("done = %v", done)
		}
		if w := a.MeanWait(); w != sim.Micros(3) {
			t.Fatalf("mean wait = %v", w)
		}
	})
}

func TestAgentUtilization(t *testing.T) {
	eachMode(t, func(t *testing.T, eng *sim.Engine) {
		a := NewAgent(eng, "proxy", 0)
		eng.Spawn("client", func(p *sim.Proc) {
			a.Submit(holdWork(sim.Micros(25), nil))
			p.Hold(sim.Micros(100))
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if u := a.Utilization(sim.Micros(100)); u != 0.25 {
			t.Fatalf("utilization = %v", u)
		}
	})
}

func TestAgentShutdown(t *testing.T) {
	eachMode(t, func(t *testing.T, eng *sim.Engine) {
		a := NewAgent(eng, "proxy", 0)
		ran := false
		eng.Spawn("client", func(p *sim.Proc) {
			a.Submit(Work{
				Fn:  func(q *sim.Proc) { ran = true },
				TFn: func(ag *Agent, _ any) { ran = true; ag.WorkDone() },
			})
			p.Hold(1)
			a.Shutdown()
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if !ran {
			t.Fatal("work did not run")
		}
	})
}

func TestLinkSendOverlapped(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "l", 100, 2*sim.Microsecond)
	var at sim.Time
	// Overlapped sends pay only the wire latency (serialization was paid
	// at the DMA engine) but still count toward traffic stats.
	l.SendOverlapped(4096, func() { at = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 2*sim.Microsecond {
		t.Fatalf("arrival = %v, want 2us", at)
	}
	if l.Packets() != 1 || l.Bytes() != 4096 {
		t.Fatalf("stats: %d pkts %d bytes", l.Packets(), l.Bytes())
	}
}

func TestLinkOccupyBlocksSender(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "dma", 100, 0) // 100 B/us
	var end sim.Time
	eng.Spawn("agent", func(p *sim.Proc) {
		l.Occupy(p, 1000) // 10 us
		l.Occupy(p, 500)  // 5 us
		end = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if end != sim.Micros(15) {
		t.Fatalf("end = %v, want 15us", end)
	}
}

func TestMultiProxyTopology(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Config{Nodes: 2, ProcsPerNode: 4, ProxiesPerNode: 2}, arch.MP1)
	nd := c.Nodes[0]
	if len(nd.Agents) != 2 {
		t.Fatalf("agents = %d", len(nd.Agents))
	}
	if nd.Agent != nd.Agents[0] {
		t.Fatal("primary agent must alias Agents[0]")
	}
	// Slots partition across proxies round-robin.
	if nd.AgentFor(0) != nd.Agents[0] || nd.AgentFor(1) != nd.Agents[1] ||
		nd.AgentFor(2) != nd.Agents[0] {
		t.Fatal("slot partition wrong")
	}
	// Custom hardware keeps a single adapter regardless.
	c2 := New(eng, Config{Nodes: 1, ProcsPerNode: 2, ProxiesPerNode: 3}, arch.HW1)
	if len(c2.Nodes[0].Agents) != 1 {
		t.Fatalf("HW agents = %d", len(c2.Nodes[0].Agents))
	}
}
