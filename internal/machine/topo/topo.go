// Package topo builds multi-switch interconnect topologies — a two-level
// fat-tree and a dragonfly approximation — out of the machine package's
// link primitive, and routes cluster traffic through them. The paper's
// machine is a single-switch SMP cluster; these topologies are what the
// ROADMAP's 1000+-node serving experiments run on. A topology is a graph
// of elements (endpoint nodes, then switches), each switch owning one
// output link per port; routing tables are built by per-destination BFS
// with smallest-id tie-breaking, so routes are minimal-hop and a pure
// function of the graph.
package topo

import (
	"fmt"
	"math"
)

// Tier classifies a link's position in the topology, for per-tier
// utilization reporting: edge links attach nodes to switches; core links
// join a fat-tree's leaves to its spines; local and global links are a
// dragonfly's intra- and inter-group links.
type Tier uint8

const (
	TierEdge Tier = iota
	TierCore
	TierLocal
	TierGlobal
	numTiers
)

// String returns the tier's report name.
func (t Tier) String() string {
	switch t {
	case TierEdge:
		return "edge"
	case TierCore:
		return "core"
	case TierLocal:
		return "local"
	case TierGlobal:
		return "global"
	}
	return fmt.Sprintf("tier%d", uint8(t))
}

// Graph is a switch topology. Elements are numbered nodes first — node i
// is element i — then switches: switch s is element Nodes+s. Every node
// attaches to exactly one switch (its Up entry, an edge-tier link);
// switch-to-switch wiring is the Edges list.
type Graph struct {
	Kind     string // "fat-tree" or "dragonfly"
	Nodes    int
	Switches int
	Up       []int32 // per node: the switch element it attaches to
	Edges    []Edge
}

// Edge is one undirected switch-to-switch cable.
type Edge struct {
	A, B int32 // switch element ids
	Tier Tier
}

// FatTree builds a two-level fat-tree over n nodes: ceil(sqrt(n)) nodes
// per leaf switch, and as many spine switches as nodes-per-leaf, with
// every leaf wired to every spine. The square shape keeps leaf port
// counts balanced between down-links and up-links, so 1024 nodes become
// 32 leaves x 32 spines and any cross-leaf route is exactly four links.
func FatTree(n int) Graph {
	if n < 2 {
		panic(fmt.Sprintf("topo: fat-tree needs >= 2 nodes, got %d", n))
	}
	npl := int(math.Ceil(math.Sqrt(float64(n))))
	leaves := (n + npl - 1) / npl
	spines := npl
	g := Graph{Kind: "fat-tree", Nodes: n, Switches: leaves + spines}
	g.Up = make([]int32, n)
	for i := range g.Up {
		g.Up[i] = int32(n + i/npl)
	}
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			g.Edges = append(g.Edges,
				Edge{int32(n + l), int32(n + leaves + s), TierCore})
		}
	}
	return g
}

// Dragonfly builds a balanced dragonfly approximation over n nodes: for
// router radix parameter p, each router hosts p nodes, a group holds
// a = 2p fully-meshed routers, each router carries h = p global ports,
// and g = a*h + 1 groups give exactly one global link between every
// group pair. The smallest p whose capacity p*a*g covers n is chosen and
// the n nodes attach in order (trailing routers may be underfilled), so
// 1024 nodes land on p=4: 33 groups x 8 routers, capacity 1056.
func Dragonfly(n int) Graph {
	if n < 2 {
		panic(fmt.Sprintf("topo: dragonfly needs >= 2 nodes, got %d", n))
	}
	p := 1
	for 2*p*p*(2*p*p+1) < n { // p*a*g with a=2p, h=p, g=a*h+1
		p++
	}
	a, h := 2*p, p
	groups := a*h + 1
	g := Graph{Kind: "dragonfly", Nodes: n, Switches: groups * a}
	g.Up = make([]int32, n)
	for i := range g.Up {
		g.Up[i] = int32(n + i/p)
	}
	for gi := 0; gi < groups; gi++ {
		base := n + gi*a
		for r1 := 0; r1 < a; r1++ {
			for r2 := r1 + 1; r2 < a; r2++ {
				g.Edges = append(g.Edges,
					Edge{int32(base + r1), int32(base + r2), TierLocal})
			}
		}
	}
	// One global link per group pair: group i reserves port j (j-1 when
	// j > i) for group j, and port t lives on the group's router t/h.
	for gi := 0; gi < groups; gi++ {
		for gj := gi + 1; gj < groups; gj++ {
			ri := gi*a + (gj-1)/h
			rj := gj*a + gi/h
			g.Edges = append(g.Edges,
				Edge{int32(n + ri), int32(n + rj), TierGlobal})
		}
	}
	return g
}

// ByName builds the named topology ("fat-tree" or "dragonfly") over n
// nodes.
func ByName(kind string, n int) (Graph, error) {
	switch kind {
	case "fat-tree":
		return FatTree(n), nil
	case "dragonfly":
		return Dragonfly(n), nil
	}
	return Graph{}, fmt.Errorf("topo: unknown topology %q (want fat-tree or dragonfly)", kind)
}
