package topo

import (
	"fmt"

	"mproxy/internal/machine"
	"mproxy/internal/sim"
	"mproxy/internal/sim/par"
)

// hop is one packet in flight through the topology. The struct rides the
// link layer's sink path from switch to switch and is recycled through
// the Net's freelist, so steady-state traffic forwards without
// allocating.
type hop struct {
	at    int32 // element the packet is currently heading to
	dst   int32 // destination node
	hops  int32 // links traversed so far (including the one in flight)
	bytes int
	sink  machine.PacketSink
	arg   any
	fate  machine.PacketFate // fault verdicts accumulated along the path
}

// Net routes a cluster's inter-node packets through a Graph. It
// implements machine.Interconnect on the sending side and
// machine.PacketSink on the receiving side: each link delivers to the
// Net, which either forwards on the next switch's output port or hands
// the packet to its real sink at the destination node. Every switch port
// is a machine.Link at the cluster's network bandwidth and wire latency,
// so intermediate hops serialize store-and-forward and per-hop latency
// adds up exactly as the flat model's single hop would.
type Net struct {
	cl    *machine.Cluster
	g     Graph
	adj   [][]int32         // per switch: neighbor element ids, ascending
	links [][]*machine.Link // per switch: output link per port
	tiers [][]Tier          // per switch: tier per port
	route [][]uint16        // per switch: destination node -> port

	// shard maps every element (nodes, then switches) to its owning
	// simulation shard; all-zero on a sequential cluster. Hop freelists
	// and delivery counters are per shard, indexed by the shard executing
	// the touch, so parallel windows never contend: a hop is taken from
	// the shipping shard's pool and returned to the delivering shard's.
	shard     []int32
	free      [][]*hop
	delivered []int64
	totalHops []int64
}

// NewNet wires a Net for cl over g. The caller installs it with
// cl.SetInterconnect. Switch links never carry a fault plane — the fault
// surface stays the node output links, as in the flat model.
//
// On a sharded cluster every switch's output links are built on the
// switch's owner engine: a switch attached to nodes belongs to its
// lowest-numbered node's shard (contiguous node blocks keep pod/group
// traffic intra-shard); pure transit switches (fat-tree spines) are dealt
// round-robin across shards so their forwarding load spreads.
func NewNet(cl *machine.Cluster, g Graph) *Net {
	if g.Nodes != cl.Cfg.Nodes {
		panic(fmt.Sprintf("topo: graph has %d nodes, cluster %d", g.Nodes, cl.Cfg.Nodes))
	}
	n := &Net{cl: cl, g: g}
	nsh := 1
	if cl.Sharded() {
		nsh = len(cl.Engs)
		n.shard = shardElements(g, cl.NodeShard, nsh)
	} else {
		n.shard = make([]int32, g.Nodes+g.Switches)
	}
	n.free = make([][]*hop, nsh)
	n.delivered = make([]int64, nsh)
	n.totalHops = make([]int64, nsh)
	n.adj, n.tiers = neighbors(g)
	n.links = make([][]*machine.Link, g.Switches)
	for s := range n.links {
		eng := cl.Eng
		if cl.Sharded() {
			eng = cl.Engs[n.shard[g.Nodes+s]]
		}
		n.links[s] = make([]*machine.Link, len(n.adj[s]))
		for pi := range n.adj[s] {
			n.links[s][pi] = machine.NewLink(eng,
				fmt.Sprintf("%s.sw%d.p%d", g.Kind, s, pi),
				cl.Arch.NetBW, cl.Arch.NetLatency)
		}
	}
	n.route = routes(g, n.adj)
	if netHook != nil {
		netHook(n)
	}
	return n
}

// shardElements extends the cluster's node→shard map to switches: a
// switch with attached nodes joins its lowest-numbered node's shard; a
// pure transit switch is assigned round-robin by switch id. Both rules
// are pure functions of the graph, so the partition — and with it the
// parallel schedule — is deterministic.
func shardElements(g Graph, nodeShard []int32, shards int) []int32 {
	es := make([]int32, g.Nodes+g.Switches)
	copy(es, nodeShard)
	attached := make([]int32, g.Switches) // lowest attached node + 1; 0 = transit
	for node := len(g.Up) - 1; node >= 0; node-- {
		attached[int(g.Up[node])-g.Nodes] = int32(node) + 1
	}
	rr := 0
	for s := 0; s < g.Switches; s++ {
		if a := attached[s]; a > 0 {
			es[g.Nodes+s] = nodeShard[a-1]
		} else {
			es[g.Nodes+s] = int32(rr % shards)
			rr++
		}
	}
	return es
}

// Parallelize installs cross-shard routing on every interconnect link —
// the switches' output ports and the nodes' output links, whose traffic
// all carries *hop arguments — posting any delivery bound for an element
// another shard owns into the windowing driver's mailboxes. Deliveries
// that stay on their own shard fall through to the pooled local path
// untouched.
func (n *Net) Parallelize(ps *par.Sim) {
	for s := range n.links {
		src := n.shard[n.g.Nodes+s]
		for _, l := range n.links[s] {
			l.SetRoute(n.routeHook(src, ps))
		}
	}
	for id, nd := range n.cl.Nodes {
		nd.OutLink.SetRoute(n.routeHook(n.shard[id], ps))
	}
}

func (n *Net) routeHook(src int32, ps *par.Sim) func(at sim.Time, sink machine.PacketSink, arg any) bool {
	return func(at sim.Time, sink machine.PacketSink, arg any) bool {
		h, ok := arg.(*hop)
		if !ok {
			return false
		}
		dst := n.shard[h.at]
		if dst == src {
			return false
		}
		ps.Post(int(src), int(dst), at, func() { sink.DeliverPacket(arg, machine.PacketFate{}) })
		return true
	}
}

// netHook, when set, observes every Net the process builds — the
// timeline sampler uses it to probe switch links, mirroring
// machine.OnNewCluster.
var netHook func(*Net)

// OnNewNet installs (or, with nil, removes) a hook invoked with every
// Net built by NewNet.
func OnNewNet(fn func(*Net)) { netHook = fn }

// neighbors builds each switch's port list: every attached node and
// every cabled switch, sorted by element id so port numbering — and with
// it route tie-breaking — is a pure function of the graph.
func neighbors(g Graph) ([][]int32, [][]Tier) {
	adj := make([][]int32, g.Switches)
	tiers := make([][]Tier, g.Switches)
	add := func(s int, v int32, t Tier) {
		pi := len(adj[s])
		for pi > 0 && adj[s][pi-1] > v {
			pi--
		}
		adj[s] = append(adj[s], 0)
		tiers[s] = append(tiers[s], 0)
		copy(adj[s][pi+1:], adj[s][pi:])
		copy(tiers[s][pi+1:], tiers[s][pi:])
		adj[s][pi], tiers[s][pi] = v, t
	}
	for node, up := range g.Up {
		add(int(up)-g.Nodes, int32(node), TierEdge)
	}
	for _, e := range g.Edges {
		add(int(e.A)-g.Nodes, e.B, e.Tier)
		add(int(e.B)-g.Nodes, e.A, e.Tier)
	}
	return adj, tiers
}

// routes builds the per-switch forwarding tables by BFS from every
// destination node: a switch forwards toward the lowest-numbered port
// whose neighbor is nearest the destination, which makes every route
// minimal-hop and deterministic.
func routes(g Graph, adj [][]int32) [][]uint16 {
	nElem := g.Nodes + g.Switches
	nbr := make([][]int32, nElem)
	for node, up := range g.Up {
		nbr[node] = []int32{up}
	}
	for s := range adj {
		nbr[g.Nodes+s] = adj[s]
	}
	route := make([][]uint16, g.Switches)
	for s := range route {
		route[s] = make([]uint16, g.Nodes)
	}
	dist := make([]int32, nElem)
	queue := make([]int32, 0, nElem)
	for dst := 0; dst < g.Nodes; dst++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], int32(dst))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, w := range nbr[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for s := range adj {
			best, bestD := -1, int32(1<<30)
			for pi, v := range adj[s] {
				if d := dist[v]; d >= 0 && d < bestD {
					best, bestD = pi, d
				}
			}
			if best < 0 {
				panic(fmt.Sprintf("topo: node %d unreachable from switch %d", dst, s))
			}
			route[s][dst] = uint16(best)
		}
	}
	return route
}

// newHop takes a hop from the executing shard's pool (sh indexes the
// shard running the caller's event; 0 on a sequential cluster).
func (n *Net) newHop(sh int32) *hop {
	pool := n.free[sh]
	if k := len(pool); k > 0 {
		h := pool[k-1]
		pool[k-1] = nil
		n.free[sh] = pool[:k-1]
		return h
	}
	return &hop{}
}

// Ship implements machine.Interconnect: the packet serializes on the
// source node's output link toward its edge switch, then forwards hop by
// hop along the routing tables until the destination node, where (arg,
// accumulated fate) reach the sink exactly as a flat-model delivery
// would.
func (n *Net) Ship(src, dst int, bytes int, sink machine.PacketSink, arg any, overlapped bool) {
	h := n.newHop(n.shard[src])
	h.at = n.g.Up[src]
	h.dst = int32(dst)
	h.hops = 1
	h.bytes = bytes
	h.sink, h.arg = sink, arg
	out := n.cl.Nodes[src].OutLink
	if overlapped {
		out.SendOverlappedToSink(bytes, n, h)
	} else {
		out.SendToSink(bytes, n, h)
	}
}

// DeliverPacket implements machine.PacketSink for the topology's own
// links: a packet arriving at a switch forwards on the routed port; one
// arriving at its destination node is handed to the real sink.
func (n *Net) DeliverPacket(arg any, fate machine.PacketFate) {
	h := arg.(*hop)
	if fate.Corrupt {
		h.fate.Corrupt = true
		h.fate.CorruptBit = fate.CorruptBit
	}
	at := int(h.at)
	if at < n.g.Nodes {
		// This delivery event runs on the destination node's shard, so
		// the hop and the counters go to that shard's pool.
		sh := n.shard[at]
		sink, a, f, hops := h.sink, h.arg, h.fate, h.hops
		h.sink, h.arg, h.fate = nil, nil, machine.PacketFate{}
		n.free[sh] = append(n.free[sh], h)
		n.delivered[sh]++
		n.totalHops[sh] += int64(hops)
		sink.DeliverPacket(a, f)
		return
	}
	s := at - n.g.Nodes
	pi := n.route[s][h.dst]
	h.at = n.adj[s][pi]
	h.hops++
	n.links[s][pi].SendToSink(h.bytes, n, h)
}

// Hops walks the routing tables from src to dst without simulating and
// returns the number of links a packet traverses, or -1 on a routing
// loop. Same-node traffic still climbs to the edge switch and back: the
// interconnect only sees packets the transport did not short-circuit.
func (n *Net) Hops(src, dst int) int {
	at := int(n.g.Up[src])
	hops := 1
	for at >= n.g.Nodes {
		if hops > n.g.Switches+2 {
			return -1
		}
		s := at - n.g.Nodes
		pi := n.route[s][dst]
		at = int(n.adj[s][pi])
		hops++
	}
	if at != dst {
		return -1
	}
	return hops
}

// EachLink visits every switch output link with its tier, in switch
// then port order — the deterministic order the links were built in.
func (n *Net) EachLink(f func(t Tier, l *machine.Link)) {
	for s := range n.links {
		for pi, l := range n.links[s] {
			f(n.tiers[s][pi], l)
		}
	}
}

// RouteTiers returns the tier of each link a packet from src to dst
// traverses, in path order: the node's output link first (edge), then
// every switch output port down to the destination node. Returns nil on
// a routing loop. Same-node traffic never reaches the interconnect.
func (n *Net) RouteTiers(src, dst int) []Tier {
	out := []Tier{TierEdge}
	at := int(n.g.Up[src])
	for at >= n.g.Nodes {
		if len(out) > n.g.Switches+2 {
			return nil
		}
		s := at - n.g.Nodes
		pi := n.route[s][dst]
		out = append(out, n.tiers[s][pi])
		at = int(n.adj[s][pi])
	}
	return out
}

// NumTiers bounds the Tier enum for dense per-tier accounting.
const NumTiers = int(numTiers)

// TierLinks returns each tier's link count (indexed by Tier), node
// output links counting toward the edge tier as in TierUtilization.
func (n *Net) TierLinks() []int {
	cnt := make([]int, NumTiers)
	cnt[TierEdge] = len(n.cl.Nodes)
	for s := range n.links {
		for pi := range n.links[s] {
			cnt[n.tiers[s][pi]]++
		}
	}
	return cnt
}

// TierBusy fills busy (length NumTiers) with each tier's cumulative
// busy nanoseconds up to the present instant and returns it. The
// windowed forensics series diffs successive snapshots.
func (n *Net) TierBusy(busy []int64) []int64 {
	for i := range busy {
		busy[i] = 0
	}
	for _, nd := range n.cl.Nodes {
		busy[TierEdge] += int64(nd.OutLink.BusyTime())
	}
	for s := range n.links {
		for pi, l := range n.links[s] {
			busy[n.tiers[s][pi]] += int64(l.BusyTime())
		}
	}
	return busy
}

// Delivered returns the number of packets handed to their final sink,
// summed across shard counters.
func (n *Net) Delivered() int64 {
	var d int64
	for _, v := range n.delivered {
		d += v
	}
	return d
}

// MeanHops returns the average link count over delivered packets.
func (n *Net) MeanHops() float64 {
	d := n.Delivered()
	if d == 0 {
		return 0
	}
	var h int64
	for _, v := range n.totalHops {
		h += v
	}
	return float64(h) / float64(d)
}

// TierUtil is one tier's aggregate link load.
type TierUtil struct {
	Tier  Tier
	Links int
	// Util is the mean utilization across the tier's links over the
	// elapsed window.
	Util float64
}

// TierUtilization summarizes per-tier link load over the elapsed
// simulated time. Node output links count toward the edge tier alongside
// the switches' down-links.
func (n *Net) TierUtilization(elapsed sim.Time) []TierUtil {
	var busy [numTiers]sim.Time
	var cnt [numTiers]int
	for _, nd := range n.cl.Nodes {
		busy[TierEdge] += nd.OutLink.BusyTime()
		cnt[TierEdge]++
	}
	for s := range n.links {
		for pi, l := range n.links[s] {
			t := n.tiers[s][pi]
			busy[t] += l.BusyTime()
			cnt[t]++
		}
	}
	var out []TierUtil
	for t := Tier(0); t < numTiers; t++ {
		if cnt[t] == 0 {
			continue
		}
		u := TierUtil{Tier: t, Links: cnt[t]}
		if elapsed > 0 {
			u.Util = float64(busy[t]) / float64(elapsed) / float64(cnt[t])
		}
		out = append(out, u)
	}
	return out
}
