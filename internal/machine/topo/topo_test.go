package topo

import (
	"reflect"
	"testing"

	"mproxy/internal/arch"
	"mproxy/internal/machine"
	"mproxy/internal/sim"
)

func mustArch(t *testing.T, name string) arch.Params {
	t.Helper()
	a, ok := arch.ByName(name)
	if !ok {
		t.Fatalf("unknown arch %q", name)
	}
	return a
}

func buildNet(t *testing.T, kind string, nodes int) *Net {
	t.Helper()
	g, err := ByName(kind, nodes)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: nodes, ProcsPerNode: 1}, mustArch(t, "MP1"))
	return NewNet(cl, g)
}

// bfsDist computes single-source shortest hop counts over the element
// graph directly from the Graph — an oracle independent of the Net's
// routing tables.
func bfsDist(g Graph, src int) []int {
	nElem := g.Nodes + g.Switches
	nbr := make([][]int32, nElem)
	link := func(a, b int32) {
		nbr[a] = append(nbr[a], b)
		nbr[b] = append(nbr[b], a)
	}
	for node, up := range g.Up {
		link(int32(node), up)
	}
	for _, e := range g.Edges {
		link(e.A, e.B)
	}
	dist := make([]int, nElem)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, w := range nbr[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// TestRoutesMinimalAndReachable is the routing property test: for every
// node pair at 64, 256 and 1024 nodes, the table-walked route length
// must equal the BFS shortest-path distance (so every pair is reachable
// and every route is minimal-hop).
func TestRoutesMinimalAndReachable(t *testing.T) {
	for _, kind := range []string{"fat-tree", "dragonfly"} {
		for _, nodes := range []int{64, 256, 1024} {
			n := buildNet(t, kind, nodes)
			for src := 0; src < nodes; src++ {
				dist := bfsDist(n.g, src)
				for dst := 0; dst < nodes; dst++ {
					if src == dst {
						continue
					}
					got := n.Hops(src, dst)
					if got != dist[dst] {
						t.Fatalf("%s/%d: route %d->%d is %d hops, BFS distance %d",
							kind, nodes, src, dst, got, dist[dst])
					}
				}
			}
		}
	}
}

// TestRoutesDeterministic rebuilds each topology and requires identical
// routing tables: forwarding must be a pure function of the graph.
func TestRoutesDeterministic(t *testing.T) {
	for _, kind := range []string{"fat-tree", "dragonfly"} {
		for _, nodes := range []int{64, 256, 1024} {
			a, b := buildNet(t, kind, nodes), buildNet(t, kind, nodes)
			if !reflect.DeepEqual(a.route, b.route) {
				t.Fatalf("%s/%d: routing tables differ between builds", kind, nodes)
			}
			if !reflect.DeepEqual(a.adj, b.adj) {
				t.Fatalf("%s/%d: port maps differ between builds", kind, nodes)
			}
		}
	}
}

// TestHopCountsByLocality pins the expected path shapes: fat-tree routes
// are 2 links within a leaf and 4 across leaves; dragonfly routes never
// exceed node-router-local-global-local-router-node (6 links).
func TestHopCountsByLocality(t *testing.T) {
	ft := buildNet(t, "fat-tree", 64) // 8 nodes per leaf
	if got := ft.Hops(0, 1); got != 2 {
		t.Errorf("fat-tree same-leaf route = %d hops, want 2", got)
	}
	if got := ft.Hops(0, 63); got != 4 {
		t.Errorf("fat-tree cross-leaf route = %d hops, want 4", got)
	}
	df := buildNet(t, "dragonfly", 256)
	for src := 0; src < 256; src += 17 {
		for dst := 0; dst < 256; dst++ {
			if src == dst {
				continue
			}
			if got := df.Hops(src, dst); got < 2 || got > 6 {
				t.Fatalf("dragonfly route %d->%d = %d hops, want 2..6", src, dst, got)
			}
		}
	}
}

type captureSink struct {
	got   []any
	fates []machine.PacketFate
}

func (c *captureSink) DeliverPacket(arg any, fate machine.PacketFate) {
	c.got = append(c.got, arg)
	c.fates = append(c.fates, fate)
}

// TestShipDelivers runs a packet through a simulated fat-tree and checks
// delivery, hop accounting, and that per-hop latency stacks up: a
// 4-link route must take at least 4 wire latencies plus 4 serializations.
func TestShipDelivers(t *testing.T) {
	eng := sim.NewEngine()
	a := mustArch(t, "MP1")
	cl := machine.New(eng, machine.Config{Nodes: 64, ProcsPerNode: 1}, a)
	n := NewNet(cl, FatTree(64))
	cl.SetInterconnect(n)
	sink := &captureSink{}
	const bytes = 1024
	n.Ship(0, 63, bytes, sink, "pkt", false)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.got) != 1 || sink.got[0] != "pkt" {
		t.Fatalf("delivered %v, want one \"pkt\"", sink.got)
	}
	if n.Delivered() != 1 || n.MeanHops() != 4 {
		t.Fatalf("delivered=%d meanHops=%v, want 1 and 4", n.Delivered(), n.MeanHops())
	}
	want := 4 * (a.NetLatency + arch.XferTime(bytes, a.NetBW))
	if eng.Now() < want {
		t.Fatalf("4-hop delivery at %d, want >= %d (4 latencies + 4 serializations)", eng.Now(), want)
	}
	utils := n.TierUtilization(eng.Now())
	var tiers []string
	for _, u := range utils {
		tiers = append(tiers, u.Tier.String())
	}
	if len(utils) != 2 || utils[0].Tier != TierEdge || utils[1].Tier != TierCore {
		t.Fatalf("fat-tree tiers = %v, want [edge core]", tiers)
	}
}
