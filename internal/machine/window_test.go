package machine

import (
	"testing"

	"mproxy/internal/arch"
	"mproxy/internal/sim"
)

// TestAgentUtilizationSinceMidService: the sampler's windowed utilization
// must stay exact when a window boundary falls inside a work item, which is
// the common case for long DMA-backed services.
func TestAgentUtilizationSinceMidService(t *testing.T) {
	eachMode(t, func(t *testing.T, eng *sim.Engine) {
		a := NewAgent(eng, "ag", 0)
		eng.Spawn("client", func(p *sim.Proc) {
			p.Hold(100)
			a.Submit(holdWork(300, nil)) // service over [100, 400)
		})
		var utils []float64
		eng.Spawn("sampler", func(p *sim.Proc) {
			var since, busyAt sim.Time
			for _, at := range []sim.Time{200, 350, 450} {
				p.Hold(at - p.Now())
				utils = append(utils, a.UtilizationSince(since, busyAt))
				since, busyAt = p.Now(), a.BusyTime()
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		want := []float64{0.5, 1.0, 0.5}
		for i, w := range want {
			if utils[i] != w {
				t.Errorf("window %d utilization = %v, want %v", i, utils[i], w)
			}
		}
		if got := a.BusyTime(); got != 300 {
			t.Errorf("final BusyTime = %v, want 300", got)
		}
	})
}

// TestLinkUtilizationSinceMidSerialization: Send books the whole packet's
// serialization up front; BusyTime clips the not-yet-elapsed tail so a
// window cut mid-packet sees only the elapsed share.
func TestLinkUtilizationSinceMidSerialization(t *testing.T) {
	eng := sim.NewEngine()
	const mbps = 100.0
	xfer := arch.XferTime(3000, mbps) // 30us
	l := NewLink(eng, "nic", mbps, sim.Microsecond)
	var mid, tail float64
	var busyMid sim.Time
	eng.Spawn("driver", func(p *sim.Proc) {
		p.Hold(100)
		l.Send(3000, func() {})
		p.Hold(xfer / 2)
		// Window [100, 100+xfer/2): the port has been serializing throughout.
		mid = l.UtilizationSince(100, 0)
		busyMid = l.BusyTime()
		at := p.Now()
		p.Hold(xfer)
		// Window [100+xfer/2, 100+3*xfer/2): busy only to 100+xfer.
		tail = l.UtilizationSince(at, busyMid)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if mid != 1.0 {
		t.Errorf("mid-packet window utilization = %v, want 1.0", mid)
	}
	if tail != 0.5 {
		t.Errorf("tail window utilization = %v, want 0.5", tail)
	}
	if got := l.BusyTime(); got != xfer {
		t.Errorf("final BusyTime = %v, want %v", got, xfer)
	}
}
