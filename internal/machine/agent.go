package machine

import (
	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// Agent is a node's communication agent: a server that executes work
// items one at a time in FIFO order. For a message proxy the agent is the
// dedicated SMP processor running the polling loop of Figure 5; for
// custom hardware it is the adapter's protocol engine.
//
// A work item advances simulated time with Hold and may use node
// resources. Items submitted while the agent is idle incur the notice
// delay (the proxy's polling delay P — time spent scanning other queues
// before reaching this one); items that queue behind other work are
// picked up as the loop reaches them and incur queueing delay instead,
// which is how proxy contention emerges in the Figure 9 experiment.
//
// The agent runs under the engine's execution mode: as a coroutine
// sim.Proc (ExecProc — the blocking reference model) or as a
// run-to-completion sim.Task (ExecTask — the default hot path, no
// goroutine handshake). Both produce identical trace streams.
type Agent struct {
	Name   string
	eng    *sim.Engine
	queue  *sim.FIFO[agentWork]
	notice sim.Time

	busyTotal sim.Time
	served    int64
	waitTotal sim.Time

	// inService/serviceAt track the work item currently executing, so
	// BusyTime is exact at any snapshot instant, not only between items.
	inService bool
	serviceAt sim.Time

	// plane, when non-nil, is consulted before each work item for
	// stall/crash faults; onRestart runs after a crash window so the
	// owner can rebuild volatile state (a proxy restarts its scan loop).
	plane     FaultPlane
	onRestart func()
	stalls    int64
	restarts  int64

	// onIdle, when non-nil, runs when the agent finds its queue empty,
	// immediately before it would block or park. It may Submit new work
	// (which the agent then picks up without blocking); the fabric's
	// work-stealing policy uses it to steal a scan turn from a loaded
	// sibling proxy instead of going idle.
	onIdle func()

	// Run-to-completion mode: the agent is a sim.Task and the fields
	// below are its resident state machine. One work item is in flight at
	// a time, so a single reusable frame (cur, fate) suffices; the
	// continuations are built once at construction so the steady-state
	// serve cycle allocates nothing.
	task    *sim.Task
	cur     agentWork
	fate    AgentFate
	exec    any // model-layer per-agent scratch (the fabric's protocol frame)
	awaitFn func()
	beginFn func()
	serveFn func()
}

// Work is one agent work item. Fn is the coroutine-mode body: a blocking
// closure run on the agent's Proc. TFn is the run-to-completion body: it
// runs on the agent's Task with Arg as its operand and must eventually
// call Agent.WorkDone exactly once (possibly from a later continuation).
// Submitters populate the field matching the engine's execution mode; a
// Work with both bodies nil is the shutdown poison pill.
type Work struct {
	Fn  func(p *sim.Proc)
	TFn func(a *Agent, arg any)
	Arg any
}

type agentWork struct {
	w  Work
	at sim.Time
}

// NewAgent creates an agent server under the engine's execution mode.
func NewAgent(eng *sim.Engine, name string, notice sim.Time) *Agent {
	a := &Agent{Name: name, eng: eng, queue: sim.NewFIFO[agentWork](eng, name+".q"), notice: notice}
	if eng.ExecMode() == sim.ExecTask {
		a.awaitFn = a.awaitWork
		a.beginFn = a.begin
		a.serveFn = a.serve
		a.task = eng.SpawnTaskDaemon(name, func(*sim.Task) { a.awaitWork() })
	} else {
		eng.SpawnDaemon(name, a.loop)
	}
	return a
}

// loop is the coroutine-mode server body.
func (a *Agent) loop(p *sim.Proc) {
	for {
		w, ok := a.queue.TryGet()
		if !ok && a.onIdle != nil {
			a.onIdle()
			w, ok = a.queue.TryGet()
		}
		if !ok {
			// TryGet on an empty queue emits nothing and Get's successful
			// take emits the same dequeue event TryGet's would have, so
			// this try-then-block split is trace-identical to a bare Get.
			w = a.queue.Get(p)
		}
		if w.w.Fn == nil && w.w.TFn == nil {
			return // poison pill from Shutdown
		}
		if a.plane != nil {
			fate := a.plane.AgentFault(a.Name, a.served, p.Now())
			if fate.Stall > 0 {
				a.eng.Emit(trace.KStall, a.Name, int64(fate.Stall))
				a.stalls++
				p.Hold(fate.Stall)
			}
			if fate.Restart {
				a.restarts++
				if a.onRestart != nil {
					a.onRestart()
				}
			}
		}
		if p.Now() == w.at && a.notice > 0 {
			// The agent was idle (blocked in Get) when this item arrived:
			// charge the polling notice delay. Items found queued when a
			// previous item finishes are reached by the ongoing scan and
			// pay queueing delay only.
			p.Hold(a.notice)
		}
		a.waitTotal += p.Now() - w.at
		a.eng.Emit(trace.KPoll, a.Name, int64(p.Now()-w.at))
		a.inService = true
		a.serviceAt = p.Now()
		w.w.Fn(p)
		a.inService = false
		a.busyTotal += p.Now() - a.serviceAt
		a.served++
	}
}

// awaitWork is the task-mode idle state: take the next item or park. Its
// decision ladder and trace emissions mirror loop turn for turn.
func (a *Agent) awaitWork() {
	w, ok := a.queue.TryGet()
	if !ok && a.onIdle != nil {
		a.onIdle()
		w, ok = a.queue.TryGet()
	}
	if !ok {
		a.queue.ParkGetter(a.task, a.awaitFn)
		return
	}
	a.cur = w
	if w.w.Fn == nil && w.w.TFn == nil {
		a.task.End() // poison pill from Shutdown
		return
	}
	a.fate = AgentFate{}
	if a.plane != nil {
		a.fate = a.plane.AgentFault(a.Name, a.served, a.eng.Now())
		if a.fate.Stall > 0 {
			a.eng.Emit(trace.KStall, a.Name, int64(a.fate.Stall))
			a.stalls++
			a.task.Hold(a.fate.Stall, a.beginFn)
			return
		}
	}
	a.begin()
}

// begin runs after any stall fault: restart hook, then the notice delay
// for items that arrived while the agent was idle.
func (a *Agent) begin() {
	if a.fate.Restart {
		a.restarts++
		if a.onRestart != nil {
			a.onRestart()
		}
	}
	if a.eng.Now() == a.cur.at && a.notice > 0 {
		a.task.Hold(a.notice, a.serveFn)
		return
	}
	a.serve()
}

// serve starts the current item's body.
func (a *Agent) serve() {
	now := a.eng.Now()
	a.waitTotal += now - a.cur.at
	a.eng.Emit(trace.KPoll, a.Name, int64(now-a.cur.at))
	a.inService = true
	a.serviceAt = now
	a.cur.w.TFn(a, a.cur.w.Arg)
}

// WorkDone completes the current work item in run-to-completion mode and
// moves the agent to its next item (or back to idle). Every Work.TFn must
// arrange for exactly one WorkDone call.
func (a *Agent) WorkDone() {
	a.inService = false
	a.busyTotal += a.eng.Now() - a.serviceAt
	a.served++
	a.cur = agentWork{}
	a.awaitWork()
}

// Task returns the agent's task in run-to-completion mode (nil under
// ExecProc). Work bodies use it for Hold continuations.
func (a *Agent) Task() *sim.Task { return a.task }

// SetExec attaches model-layer per-agent scratch state; Exec returns it.
// The communication fabric hangs its reusable protocol frame here so hot
// work items need no per-item allocation.
func (a *Agent) SetExec(x any) { a.exec = x }

// Exec returns the scratch state installed by SetExec.
func (a *Agent) Exec() any { return a.exec }

// Submit enqueues a work item.
func (a *Agent) Submit(w Work) {
	a.queue.Put(agentWork{w: w, at: a.eng.Now()})
}

// SetFaultPlane installs (or, with nil, removes) the agent's fault plane.
func (a *Agent) SetFaultPlane(p FaultPlane) { a.plane = p }

// OnRestart installs the hook run after a crash-and-restart fault. The
// communication fabric uses it to restart the proxy's scan loop: queued
// commands survive (they live in user memory) but the scanner's position
// and non-empty summary are rebuilt from scratch.
func (a *Agent) OnRestart(fn func()) { a.onRestart = fn }

// OnIdle installs (or, with nil, removes) the hook run when the agent
// finds its work queue empty, just before blocking. The hook may Submit
// work, in which case the agent serves it without ever going idle; work
// submitted this way arrives at the current instant and therefore pays
// the notice delay like any item that catches the agent idle.
func (a *Agent) OnIdle(fn func()) { a.onIdle = fn }

// Stalls returns the number of stall faults the agent absorbed.
func (a *Agent) Stalls() int64 { return a.stalls }

// Restarts returns the number of crash-and-restart faults absorbed.
func (a *Agent) Restarts() int64 { return a.restarts }

// Shutdown terminates the agent process once queued work drains.
func (a *Agent) Shutdown() { a.queue.Put(agentWork{at: a.eng.Now()}) }

// QueueLen returns the number of pending work items.
func (a *Agent) QueueLen() int { return a.queue.Len() }

// BusyTime returns the total time spent executing work items (excluding
// idle polling), including the portion of the currently executing item up
// to the present instant — so a snapshot taken mid-service is exact.
func (a *Agent) BusyTime() sim.Time {
	t := a.busyTotal
	if a.inService {
		t += a.eng.Now() - a.serviceAt
	}
	return t
}

// Served returns the number of completed work items.
func (a *Agent) Served() int64 { return a.served }

// Utilization returns BusyTime over the elapsed interval — the paper's
// "interface utilization" (Table 6).
func (a *Agent) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(a.BusyTime()) / float64(elapsed)
}

// UtilizationSince returns the fraction of [since, now] the agent spent
// executing work items, given the cumulative BusyTime observed at since
// (see sim.Resource.UtilizationSince for the windowing contract).
func (a *Agent) UtilizationSince(since, busyAtSince sim.Time) float64 {
	now := a.eng.Now()
	if now <= since {
		return 0
	}
	return float64(a.BusyTime()-busyAtSince) / float64(now-since)
}

// MeanWait returns the average delay between submission and the start of
// service (notice delay plus queueing).
func (a *Agent) MeanWait() sim.Time {
	if a.served == 0 {
		return 0
	}
	return a.waitTotal / sim.Time(a.served)
}
