package machine

import (
	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// Agent is a node's communication agent: a server process that executes
// work items one at a time in FIFO order. For a message proxy the agent is
// the dedicated SMP processor running the polling loop of Figure 5; for
// custom hardware it is the adapter's protocol engine.
//
// A work item is a closure executed on the agent's process; it advances
// simulated time with Hold and may use node resources. Items submitted
// while the agent is idle incur the notice delay (the proxy's polling delay
// P — time spent scanning other queues before reaching this one); items
// that queue behind other work are picked up as the loop reaches them and
// incur queueing delay instead, which is how proxy contention emerges in
// the Figure 9 experiment.
type Agent struct {
	Name   string
	eng    *sim.Engine
	queue  *sim.FIFO[agentWork]
	notice sim.Time

	busyTotal sim.Time
	served    int64
	waitTotal sim.Time

	// inService/serviceAt track the work item currently executing, so
	// BusyTime is exact at any snapshot instant, not only between items.
	inService bool
	serviceAt sim.Time

	// plane, when non-nil, is consulted before each work item for
	// stall/crash faults; onRestart runs after a crash window so the
	// owner can rebuild volatile state (a proxy restarts its scan loop).
	plane     FaultPlane
	onRestart func()
	stalls    int64
	restarts  int64
}

type agentWork struct {
	fn func(p *sim.Proc)
	at sim.Time
}

// NewAgent spawns an agent server process.
func NewAgent(eng *sim.Engine, name string, notice sim.Time) *Agent {
	a := &Agent{Name: name, eng: eng, queue: sim.NewFIFO[agentWork](eng, name+".q"), notice: notice}
	eng.SpawnDaemon(name, a.loop)
	return a
}

func (a *Agent) loop(p *sim.Proc) {
	for {
		w := a.queue.Get(p)
		if w.fn == nil {
			return // poison pill from Shutdown
		}
		if a.plane != nil {
			fate := a.plane.AgentFault(a.Name, a.served, p.Now())
			if fate.Stall > 0 {
				a.eng.Emit(trace.KStall, a.Name, int64(fate.Stall))
				a.stalls++
				p.Hold(fate.Stall)
			}
			if fate.Restart {
				a.restarts++
				if a.onRestart != nil {
					a.onRestart()
				}
			}
		}
		if p.Now() == w.at && a.notice > 0 {
			// The agent was idle (blocked in Get) when this item arrived:
			// charge the polling notice delay. Items found queued when a
			// previous item finishes are reached by the ongoing scan and
			// pay queueing delay only.
			p.Hold(a.notice)
		}
		a.waitTotal += p.Now() - w.at
		a.eng.Emit(trace.KPoll, a.Name, int64(p.Now()-w.at))
		a.inService = true
		a.serviceAt = p.Now()
		w.fn(p)
		a.inService = false
		a.busyTotal += p.Now() - a.serviceAt
		a.served++
	}
}

// Submit enqueues a work item.
func (a *Agent) Submit(fn func(p *sim.Proc)) {
	a.queue.Put(agentWork{fn: fn, at: a.eng.Now()})
}

// SetFaultPlane installs (or, with nil, removes) the agent's fault plane.
func (a *Agent) SetFaultPlane(p FaultPlane) { a.plane = p }

// OnRestart installs the hook run after a crash-and-restart fault. The
// communication fabric uses it to restart the proxy's scan loop: queued
// commands survive (they live in user memory) but the scanner's position
// and non-empty summary are rebuilt from scratch.
func (a *Agent) OnRestart(fn func()) { a.onRestart = fn }

// Stalls returns the number of stall faults the agent absorbed.
func (a *Agent) Stalls() int64 { return a.stalls }

// Restarts returns the number of crash-and-restart faults absorbed.
func (a *Agent) Restarts() int64 { return a.restarts }

// Shutdown terminates the agent process once queued work drains.
func (a *Agent) Shutdown() { a.queue.Put(agentWork{}) }

// QueueLen returns the number of pending work items.
func (a *Agent) QueueLen() int { return a.queue.Len() }

// BusyTime returns the total time spent executing work items (excluding
// idle polling), including the portion of the currently executing item up
// to the present instant — so a snapshot taken mid-service is exact.
func (a *Agent) BusyTime() sim.Time {
	t := a.busyTotal
	if a.inService {
		t += a.eng.Now() - a.serviceAt
	}
	return t
}

// Served returns the number of completed work items.
func (a *Agent) Served() int64 { return a.served }

// Utilization returns BusyTime over the elapsed interval — the paper's
// "interface utilization" (Table 6).
func (a *Agent) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(a.BusyTime()) / float64(elapsed)
}

// UtilizationSince returns the fraction of [since, now] the agent spent
// executing work items, given the cumulative BusyTime observed at since
// (see sim.Resource.UtilizationSince for the windowing contract).
func (a *Agent) UtilizationSince(since, busyAtSince sim.Time) float64 {
	now := a.eng.Now()
	if now <= since {
		return 0
	}
	return float64(a.BusyTime()-busyAtSince) / float64(now-since)
}

// MeanWait returns the average delay between submission and the start of
// service (notice delay plus queueing).
func (a *Agent) MeanWait() sim.Time {
	if a.served == 0 {
		return 0
	}
	return a.waitTotal / sim.Time(a.served)
}
