package machine

import (
	"testing"

	"mproxy/internal/sim"
)

// Steady-state allocation pins for the converted run-to-completion paths.
// The engine core is already pinned at zero in internal/sim; these guard
// the next layer up — the agent service loop and the link sink path —
// which the proxy hot paths are built from.

func pinAllocs(t *testing.T, what string, fn func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, fn); got != 0 {
		t.Errorf("%s: %v allocs/op, want 0", what, got)
	}
}

// TestAllocPinTaskAgentServe: submit → dequeue → notice → serve → done on
// a task-mode agent must not allocate once the work FIFO has grown.
func TestAllocPinTaskAgentServe(t *testing.T) {
	eng := sim.NewEngine()
	eng.SetExecMode(sim.ExecTask)
	a := NewAgent(eng, "ag", 0)
	served := 0
	w := Work{TFn: func(a *Agent, _ any) {
		served++
		a.WorkDone()
	}}
	for i := 0; i < 8; i++ { // warm FIFO and event queues
		a.Submit(w)
	}
	if err := eng.RunUntil(sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if served != 8 {
		t.Fatalf("warmup served %d of 8", served)
	}
	pinAllocs(t, "task agent submit+serve", func() {
		a.Submit(w)
		if err := eng.RunUntil(eng.Now() + sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	eng.Shutdown()
}

// TestAllocPinLinkSink: the callback-free packet delivery path
// (SendToSink through the recycled delivery node) must not allocate in
// steady state.
func TestAllocPinLinkSink(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "nic", 100, sim.Microsecond)
	sink := &countSink{}
	for i := 0; i < 8; i++ { // warm the delivery freelist
		l.SendToSink(64, sink, nil)
	}
	if err := eng.RunUntil(sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sink.n != 8 {
		t.Fatalf("warmup delivered %d of 8", sink.n)
	}
	pinAllocs(t, "SendToSink+deliver", func() {
		l.SendToSink(64, sink, nil)
		if err := eng.RunUntil(eng.Now() + sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	eng.Shutdown()
}

type countSink struct{ n int }

func (s *countSink) DeliverPacket(arg any, fate PacketFate) { s.n++ }
