// Package machine models the hardware of an SMP cluster: nodes containing
// compute processors (CPUs), a network adapter with input/output FIFOs, a
// DMA engine, and — on message-proxy and custom-hardware design points — a
// communication agent (the dedicated proxy processor or the adapter's
// protocol engine). Following the paper's simulator, the models account for
// contention for processors, DMA engines and network queues within a node,
// but not for memory-bus or switch contention.
package machine

import (
	"fmt"

	"mproxy/internal/arch"
	"mproxy/internal/memory"
	"mproxy/internal/proxy"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// PacketFate is the fault plane's verdict on one packet crossing a link.
// The zero value is a clean delivery.
type PacketFate struct {
	// Down marks the packet lost to a link-down window (traced as
	// link-down rather than drop).
	Down bool
	// Drop discards the packet in flight.
	Drop bool
	// Corrupt delivers the packet with payload damage; the receiver is
	// expected to detect it by CRC and discard. CorruptBit selects which
	// payload bit the fault flips.
	Corrupt    bool
	CorruptBit uint32
	// Dup delivers a second, clean copy DupDelay after the first.
	Dup      bool
	DupDelay sim.Time
	// Delay postpones delivery (bounded reordering: delayed packets are
	// overtaken by later ones).
	Delay sim.Time
}

// AgentFate is the fault plane's verdict on a communication agent between
// work items. The zero value is fault-free operation.
type AgentFate struct {
	// Stall suspends the agent for the duration (a hiccup, or the
	// downtime of a crash).
	Stall sim.Time
	// Restart models a crash-and-restart: after the stall the agent's
	// restart hook runs (for a message proxy, the dispatch loop starts
	// over and rebuilds its scan state from the surviving user queues).
	Restart bool
}

// FaultPlane decides packet and agent fates. Implementations must be
// pure functions of their arguments (plus their own immutable
// configuration) so that simulations stay deterministic and planes can be
// shared across concurrently running engines.
type FaultPlane interface {
	// PacketFate is consulted once per packet leaving a node's output
	// link; seq is the link-local packet sequence number.
	PacketFate(link string, node int, seq uint64, now sim.Time) PacketFate
	// AgentFault is consulted by a communication agent before each work
	// item; item is the agent-local serial number of the item.
	AgentFault(agent string, item int64, now sim.Time) AgentFate
}

// clusterHook, when set, observes every cluster built by New. It exists
// for the observability layer, whose probes attach to clusters the
// experiment drivers construct internally: the timeline sampler uses it
// to (re)attach utilization probes to each fresh cluster. Simulation
// parameters (fault planes, transport config, queue capacities) are never
// injected this way — they travel explicitly in each driver's options.
var clusterHook func(*Cluster)

// OnNewCluster installs (or, with nil, removes) a hook invoked with every
// subsequently built cluster, after its nodes, links and agents exist.
func OnNewCluster(fn func(*Cluster)) { clusterHook = fn }

// Config describes a cluster topology.
type Config struct {
	Nodes        int // SMP nodes
	ProcsPerNode int // compute processors per node (excludes any proxy)
	// ProxiesPerNode is the number of dedicated proxy processors per node
	// (message-proxy design points only; default 1). Section 5.4 raises
	// multiple proxies as a way past the 50% utilization wall, noting the
	// memory bus and network interface remain the hard constraint.
	ProxiesPerNode int
	// ProxySched names the proxy-scheduling policy that assigns endpoint
	// command streams to proxy processors (see proxy.SchedByName): "static"
	// slot-modulo (the default, and the paper's binding), "shard" rank-hash
	// affinity, or "steal" for static placement with bounded work stealing
	// between a node's proxies. Empty means static.
	ProxySched string
	// SimShards partitions the cluster's nodes across that many parallel
	// simulation shards (sim/par), each with its own engine; nodes split
	// into contiguous blocks of Nodes/SimShards. 0 or 1 means sequential.
	// Build sharded clusters with NewSharded.
	SimShards int
}

// Procs returns the total number of compute processors.
func (c Config) Procs() int { return c.Nodes * c.ProcsPerNode }

// Validate checks the configuration, distinguishing negative counts —
// which historically fell through the "unset, use default" path silently —
// from genuinely unset zero values.
func (c Config) Validate() error {
	if c.Nodes < 0 {
		return fmt.Errorf("machine: negative Nodes %d", c.Nodes)
	}
	if c.ProcsPerNode < 0 {
		return fmt.Errorf("machine: negative ProcsPerNode %d", c.ProcsPerNode)
	}
	if c.ProxiesPerNode < 0 {
		return fmt.Errorf("machine: negative ProxiesPerNode %d", c.ProxiesPerNode)
	}
	if c.Nodes == 0 || c.ProcsPerNode == 0 {
		return fmt.Errorf("machine: bad config %+v", c)
	}
	if c.SimShards < 0 {
		return fmt.Errorf("machine: negative SimShards %d", c.SimShards)
	}
	if c.SimShards > c.Nodes {
		return fmt.Errorf("machine: SimShards %d exceeds Nodes %d (a shard must own at least one node)", c.SimShards, c.Nodes)
	}
	if c.SimShards > 1 && c.Nodes%c.SimShards != 0 {
		return fmt.Errorf("machine: Nodes %d not divisible by SimShards %d (contiguous equal blocks required)", c.Nodes, c.SimShards)
	}
	if _, err := proxy.SchedByName(c.ProxySched); err != nil {
		return err
	}
	return nil
}

// Interconnect routes inter-node packets through a multi-switch network.
// Without one, a cluster models the paper's single-switch machine: a
// packet serializes on the source node's OutLink and arrives at the
// destination after one wire latency. An interconnect instead owns the
// path from the source OutLink onward — intermediate switch hops, per-hop
// serialization and latency — and delivers to the same PacketSink the
// flat path would have. Implementations live in machine/topo.
type Interconnect interface {
	// Ship sends bytes from node src to node dst, delivering (arg, fate)
	// to sink at the far end. When overlapped is set the first hop charges
	// no serialization time (cut-through under a DMA stream the sender
	// already paid for), matching Link.SendOverlappedToSink.
	Ship(src, dst int, bytes int, sink PacketSink, arg any, overlapped bool)
}

// Cluster is a simulated SMP cluster under one architecture design point.
type Cluster struct {
	Eng   *sim.Engine
	Cfg   Config
	Arch  arch.Params
	Reg   *memory.Registry
	Nodes []*Node
	CPUs  []*CPU // indexed by global rank
	// Sched is the resolved proxy-scheduling policy (from Cfg.ProxySched);
	// the communication fabric consults it when binding endpoints to
	// proxies and when enabling work stealing between a node's proxies.
	Sched proxy.Sched
	// Net, when non-nil, routes inter-node packets through a multi-switch
	// topology instead of the flat source-link -> destination model.
	Net Interconnect
	// Engs lists the shard engines of a parallel cluster (NewSharded), one
	// per contiguous node block; Eng aliases Engs[0], which also owns the
	// shared registry. Nil for a sequential cluster.
	Engs []*sim.Engine
	// NodeShard maps node ID to owning shard for a parallel cluster
	// (node / (Nodes/len(Engs)), i.e. contiguous blocks). Nil when
	// sequential.
	NodeShard []int32
}

// Sharded reports whether the cluster was built over multiple shard
// engines.
func (c *Cluster) Sharded() bool { return len(c.Engs) > 1 }

// EngOf returns the engine owning node n's events: the shard engine on a
// parallel cluster, the single engine otherwise.
func (c *Cluster) EngOf(n int) *sim.Engine {
	if c.NodeShard != nil {
		return c.Engs[c.NodeShard[n]]
	}
	return c.Eng
}

// SetInterconnect installs (or, with nil, removes) a multi-switch network.
func (c *Cluster) SetInterconnect(ic Interconnect) { c.Net = ic }

// New builds a cluster of cfg.Nodes SMPs under design point a.
func New(eng *sim.Engine, cfg Config, a arch.Params) *Cluster {
	if cfg.SimShards > 1 {
		panic(fmt.Sprintf("machine: Config.SimShards=%d requires NewSharded", cfg.SimShards))
	}
	return build(eng, nil, nil, cfg, a)
}

// NewSharded builds a cluster whose nodes are partitioned across
// len(engs) == cfg.SimShards parallel shard engines in contiguous blocks
// of cfg.Nodes/len(engs): every per-node resource (links, DMA, agents)
// lives on its owner shard's engine, and engs[0] additionally hosts the
// shared registry. The config is validated — including the SimShards
// divisibility rules — before any model state is built.
func NewSharded(engs []*sim.Engine, cfg Config, a arch.Params) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.SimShards <= 1 {
		panic(fmt.Sprintf("machine: NewSharded needs SimShards > 1, got %d", cfg.SimShards))
	}
	if len(engs) != cfg.SimShards {
		panic(fmt.Sprintf("machine: NewSharded given %d engines for SimShards=%d", len(engs), cfg.SimShards))
	}
	shard := make([]int32, cfg.Nodes)
	block := cfg.Nodes / cfg.SimShards
	for n := range shard {
		shard[n] = int32(n / block)
	}
	return build(engs[0], engs, shard, cfg, a)
}

// build is the shared constructor: engFor-style node placement with the
// sequential case collapsing to one engine for everything.
func build(eng *sim.Engine, engs []*sim.Engine, shard []int32, cfg Config, a arch.Params) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.ProxiesPerNode == 0 {
		cfg.ProxiesPerNode = 1
	}
	sched, _ := proxy.SchedByName(cfg.ProxySched) // validated above
	c := &Cluster{Eng: eng, Cfg: cfg, Arch: a, Reg: memory.NewRegistry(eng), Sched: sched,
		Engs: engs, NodeShard: shard}
	for n := 0; n < cfg.Nodes; n++ {
		ne := eng
		if shard != nil {
			ne = engs[shard[n]]
		}
		node := &Node{
			ID:      n,
			Cluster: c,
			Eng:     ne,
			OutLink: NewLink(ne, fmt.Sprintf("node%d.out", n), a.NetBW, a.NetLatency),
			DMA:     NewLink(ne, fmt.Sprintf("node%d.dma", n), a.DMABW, 0),
		}
		switch a.Kind {
		case arch.Proxy:
			for k := 0; k < cfg.ProxiesPerNode; k++ {
				node.Agents = append(node.Agents,
					NewAgent(ne, fmt.Sprintf("node%d.proxy%d", n, k), a.PollDelay()))
			}
			node.Agent = node.Agents[0]
		case arch.CustomHW:
			node.Agent = NewAgent(ne, fmt.Sprintf("node%d.adapter", n), 0)
			node.Agents = []*Agent{node.Agent}
		}
		for s := 0; s < cfg.ProcsPerNode; s++ {
			cpu := &CPU{Node: node, Rank: n*cfg.ProcsPerNode + s, Slot: s}
			node.CPUs = append(node.CPUs, cpu)
			c.CPUs = append(c.CPUs, cpu)
		}
		c.Nodes = append(c.Nodes, node)
	}
	if clusterHook != nil {
		clusterHook(c)
	}
	return c
}

// SetFaultPlane installs a fault plane on every node's output link and
// communication agent (or removes it, with nil). Install before any
// traffic flows; without a plane the hooks cost nothing and the cluster
// behaves exactly as the fault-free simulator.
func (c *Cluster) SetFaultPlane(p FaultPlane) {
	for _, nd := range c.Nodes {
		nd.OutLink.SetFaultPlane(p, nd.ID)
		for _, ag := range nd.Agents {
			ag.SetFaultPlane(p)
		}
	}
}

// Node is one SMP in the cluster.
type Node struct {
	ID      int
	Cluster *Cluster
	// Eng is the engine owning this node's events: the cluster engine, or
	// the node's shard engine on a parallel cluster. Model layers must
	// consult it (not Cluster.Eng) for anything that runs in a node's
	// event context — clock reads, trace emissions, task wakes — so the
	// same code is correct under both execution modes.
	Eng     *sim.Engine
	OutLink *Link
	// DMA is the node's DMA engine, modeled as a zero-latency serializing
	// link at the DMA bandwidth.
	DMA *Link
	// Agent is the node's primary communication agent: the message proxy
	// processor (Proxy) or the adapter's protocol engine (CustomHW). Nil
	// under Syscall, where compute processors run the protocol themselves.
	Agent *Agent
	// Agents lists every agent; message-proxy nodes may run several
	// proxies (Section 5.4's "multiple message proxies may help").
	Agents []*Agent
	CPUs   []*CPU
}

// AgentFor returns the agent serving a compute-processor slot (commands
// are statically partitioned across proxies by slot).
func (n *Node) AgentFor(slot int) *Agent {
	if len(n.Agents) == 0 {
		return n.Agent
	}
	return n.Agents[slot%len(n.Agents)]
}

// CPU is a compute processor. Application processes charge compute time to
// their CPU; under system-call communication, incoming messages interrupt
// the CPU and steal cycles from whatever is computing.
type CPU struct {
	Node *Node
	Rank int // global rank
	Slot int // index within the node

	computing   bool
	steal       sim.Time // stolen during the current compute interval
	stolenTotal sim.Time
	busyTotal   sim.Time
}

// Compute charges d time units of computation to the CPU on behalf of p,
// extending the interval by any interrupt time stolen while it runs.
func (c *CPU) Compute(p *sim.Proc, d sim.Time) {
	if d < 0 {
		panic("machine: negative compute time")
	}
	c.computing = true
	c.steal = 0
	remaining := d
	for remaining > 0 {
		p.Hold(remaining)
		remaining = c.steal // interrupts pushed the finish time out
		c.steal = 0
	}
	c.computing = false
	c.busyTotal += d
}

// ComputeTask is Compute for a run-to-completion task: k runs once the
// interval (extended by any interrupt time stolen while it runs) has
// elapsed. A zero interval runs k inline without touching the engine.
func (c *CPU) ComputeTask(t *sim.Task, d sim.Time, k func()) {
	if d < 0 {
		panic("machine: negative compute time")
	}
	if d == 0 {
		k()
		return
	}
	c.computing = true
	c.steal = 0
	c.computeStep(t, d, d, k)
}

// computeStep holds for one slice, then either extends the interval by
// the stolen time or completes, mirroring Compute's steal loop.
func (c *CPU) computeStep(t *sim.Task, total, remaining sim.Time, k func()) {
	t.Hold(remaining, func() {
		if c.steal > 0 {
			more := c.steal
			c.steal = 0
			c.computeStep(t, total, more, k)
			return
		}
		c.computing = false
		c.busyTotal += total
		k()
	})
}

// Interrupt steals cost cycles from the CPU (system-call receive path). If
// a compute interval is in progress it is extended; otherwise the handler
// runs in otherwise-idle time.
func (c *CPU) Interrupt(cost sim.Time) {
	c.stolenTotal += cost
	if c.computing {
		c.steal += cost
	}
}

// Stolen returns the total CPU time consumed by interrupt handling.
func (c *CPU) Stolen() sim.Time { return c.stolenTotal }

// BusyTime returns total application compute time charged to the CPU.
func (c *CPU) BusyTime() sim.Time { return c.busyTotal }

// Link is a store-and-forward network output port: packets serialize at the
// link bandwidth, then arrive after the wire latency. Senders do not block;
// the adapter's output FIFO buffers them.
type Link struct {
	eng      *sim.Engine
	name     string
	mbps     float64
	latency  sim.Time
	freeAt   sim.Time
	busy     sim.Time
	packets  int64
	sentByte int64

	// plane, when non-nil, decides the fate of every packet sent on this
	// link; node keys the fault PRNG. Perfect delivery otherwise.
	plane FaultPlane
	node  int
	lost  int64 // packets dropped, corrupted-in-flight or lost to down windows

	// freeDel recycles delivery nodes for the sink-based send path, so a
	// steady-state packet stream schedules without allocating per packet.
	freeDel []*delivery

	// route, when non-nil, intercepts sink deliveries whose destination is
	// owned by another simulation shard: it receives the absolute arrival
	// time and returns true if it posted the delivery to a cross-shard
	// mailbox, false to fall through to the local (pooled, zero-alloc)
	// path. Installed only in parallel mode; sequential runs pay one nil
	// check.
	route func(at sim.Time, sink PacketSink, arg any) bool
}

// NewLink returns a link of mbps MB/s bandwidth and the given wire latency.
func NewLink(eng *sim.Engine, name string, mbps float64, latency sim.Time) *Link {
	return &Link{eng: eng, name: name, mbps: mbps, latency: latency}
}

// SetFaultPlane installs (or, with nil, removes) the link's fault plane.
func (l *Link) SetFaultPlane(p FaultPlane, node int) { l.plane, l.node = p, node }

// SetRoute installs (or, with nil, removes) the cross-shard routing hook
// on the link's sink-delivery path. Parallel runs never combine routing
// with a fault plane (fault scenarios are parallel-ineligible), so the
// hook lives on the plane-free fast path only.
func (l *Link) SetRoute(r func(at sim.Time, sink PacketSink, arg any) bool) { l.route = r }

// Latency returns the link's wire latency — the lookahead contribution of
// one hop when the link crosses simulation shards.
func (l *Link) Latency() sim.Time { return l.latency }

// Send serializes n bytes onto the link and schedules deliver at the
// arrival time. Headers count toward serialization, so callers pass the
// full packet size.
func (l *Link) Send(n int, deliver func()) {
	l.SendPacket(n, func(PacketFate) { deliver() })
}

// SendPacket is Send for callers that participate in fault injection: the
// fate the fault plane chose for the packet (corruption, in particular)
// is passed to deliver. Dropped packets never invoke deliver; duplicated
// packets invoke it twice.
func (l *Link) SendPacket(n int, deliver func(fate PacketFate)) {
	xfer := arch.XferTime(n, l.mbps)
	start := l.freeAt
	if now := l.eng.Now(); start < now {
		start = now
	}
	depart := start + xfer
	l.freeAt = depart
	l.busy += xfer
	l.dispatch(n, depart-l.eng.Now(), deliver)
}

// SendOverlapped accounts n bytes on the link but charges no serialization
// time, scheduling deliver after just the wire latency. It is used for
// DMA-fed transfers, where cut-through overlaps wire serialization with the
// (slower) DMA stream that the caller has already paid for.
func (l *Link) SendOverlapped(n int, deliver func()) {
	l.SendPacketOverlapped(n, func(PacketFate) { deliver() })
}

// SendPacketOverlapped is SendOverlapped with fault participation.
func (l *Link) SendPacketOverlapped(n int, deliver func(fate PacketFate)) {
	l.dispatch(n, 0, deliver)
}

// dispatch accounts the packet, consults the fault plane, and schedules
// delivery depart+latency from now. The plane-free path is byte-for-byte
// the original simulator: one schedule at the arrival time.
func (l *Link) dispatch(n int, depart sim.Time, deliver func(fate PacketFate)) {
	seq := uint64(l.packets)
	l.packets++
	l.sentByte += int64(n)
	if l.plane == nil {
		l.eng.Schedule(depart+l.latency, func() { deliver(PacketFate{}) })
		return
	}
	fate := l.plane.PacketFate(l.name, l.node, seq, l.eng.Now())
	switch {
	case fate.Down:
		l.lost++
		l.eng.Emit(trace.KLinkDown, l.name, int64(seq))
		return
	case fate.Drop:
		l.lost++
		l.eng.Emit(trace.KDrop, l.name, int64(seq))
		return
	}
	if fate.Corrupt {
		l.lost++
	}
	arrive := depart + l.latency + fate.Delay
	l.eng.Schedule(arrive, func() { deliver(fate) })
	if fate.Dup {
		// The duplicate is a clean copy: corruption happened to one
		// physical packet, duplication re-delivers the original.
		dup := PacketFate{}
		l.eng.Schedule(arrive+fate.DupDelay, func() { deliver(dup) })
	}
}

// PacketSink receives packets sent with SendToSink: the closure-free twin
// of SendPacket's deliver callback, for run-to-completion receivers whose
// packet argument outlives the call. Dropped packets are never delivered;
// duplicated packets are delivered twice.
type PacketSink interface {
	DeliverPacket(arg any, fate PacketFate)
}

// delivery is one in-flight sink delivery. The run closure is built once
// per node and the node recycles through the link's freelist, so the hot
// send path costs zero allocations per packet.
type delivery struct {
	link *Link
	sink PacketSink
	arg  any
	fate PacketFate
	run  func()
}

func (l *Link) newDelivery() *delivery {
	if n := len(l.freeDel); n > 0 {
		d := l.freeDel[n-1]
		l.freeDel[n-1] = nil
		l.freeDel = l.freeDel[:n-1]
		return d
	}
	d := &delivery{link: l}
	d.run = d.fire
	return d
}

// fire recycles the node before delivering, so the sink's processing —
// which may send further packets on this link — sees it available.
func (d *delivery) fire() {
	sink, arg, fate := d.sink, d.arg, d.fate
	d.sink, d.arg, d.fate = nil, nil, PacketFate{}
	d.link.freeDel = append(d.link.freeDel, d)
	sink.DeliverPacket(arg, fate)
}

// SendToSink is SendPacket routed to a PacketSink: identical serialization
// accounting, fault handling and schedule emissions, but no per-packet
// closure.
func (l *Link) SendToSink(n int, sink PacketSink, arg any) {
	xfer := arch.XferTime(n, l.mbps)
	start := l.freeAt
	if now := l.eng.Now(); start < now {
		start = now
	}
	depart := start + xfer
	l.freeAt = depart
	l.busy += xfer
	l.dispatchSink(n, depart-l.eng.Now(), sink, arg)
}

// SendOverlappedToSink is SendPacketOverlapped routed to a PacketSink.
func (l *Link) SendOverlappedToSink(n int, sink PacketSink, arg any) {
	l.dispatchSink(n, 0, sink, arg)
}

// dispatchSink mirrors dispatch for the sink path: same packet accounting,
// same fault-plane consultation, same trace emissions.
func (l *Link) dispatchSink(n int, depart sim.Time, sink PacketSink, arg any) {
	seq := uint64(l.packets)
	l.packets++
	l.sentByte += int64(n)
	if l.plane == nil {
		if l.route != nil && l.route(l.eng.Now()+depart+l.latency, sink, arg) {
			return
		}
		d := l.newDelivery()
		d.sink, d.arg = sink, arg
		l.eng.Schedule(depart+l.latency, d.run)
		return
	}
	fate := l.plane.PacketFate(l.name, l.node, seq, l.eng.Now())
	switch {
	case fate.Down:
		l.lost++
		l.eng.Emit(trace.KLinkDown, l.name, int64(seq))
		return
	case fate.Drop:
		l.lost++
		l.eng.Emit(trace.KDrop, l.name, int64(seq))
		return
	}
	if fate.Corrupt {
		l.lost++
	}
	arrive := depart + l.latency + fate.Delay
	d := l.newDelivery()
	d.sink, d.arg, d.fate = sink, arg, fate
	l.eng.Schedule(arrive, d.run)
	if fate.Dup {
		d2 := l.newDelivery()
		d2.sink, d2.arg = sink, arg
		l.eng.Schedule(arrive+fate.DupDelay, d2.run)
	}
}

// Faulty reports whether a fault plane is installed on the link.
func (l *Link) Faulty() bool { return l.plane != nil }

// Occupy serializes n bytes through the link on behalf of p, blocking p
// until the transfer completes. Agents use it to stay busy for the duration
// of a DMA page transfer.
func (l *Link) Occupy(p *sim.Proc, n int) {
	f := l.eng.NewFlag()
	l.Send(n, func() { f.Add(1) })
	f.Wait(p, 1)
}

// OccupyTask is Occupy for a run-to-completion agent: k runs when the
// transfer completes. Flag wiring and trace emissions match Occupy's.
func (l *Link) OccupyTask(t *sim.Task, n int, k func()) {
	f := l.eng.NewFlag()
	l.Send(n, func() { f.Add(1) })
	f.WaitTask(t, 1, k)
}

// Name returns the link's trace component name.
func (l *Link) Name() string { return l.name }

// Packets returns the number of packets sent.
func (l *Link) Packets() int64 { return l.packets }

// Lost returns the number of packets the fault plane destroyed in flight
// (drops, link-down windows, and corruptions the receiver will discard).
func (l *Link) Lost() int64 { return l.lost }

// Bytes returns the number of bytes sent.
func (l *Link) Bytes() int64 { return l.sentByte }

// BusyTime returns the serialization time spent up to the present instant.
// SendPacket books a packet's full serialization at send time (l.busy) and
// pending transfers occupy the port back-to-back until freeAt, so the
// not-yet-elapsed portion is exactly max(0, freeAt-now); clipping it keeps
// mid-run snapshots exact. At quiesce freeAt <= now and BusyTime == l.busy.
func (l *Link) BusyTime() sim.Time {
	t := l.busy
	if now := l.eng.Now(); l.freeAt > now {
		t -= l.freeAt - now
	}
	return t
}

// Utilization returns link busy time divided by elapsed.
func (l *Link) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(l.BusyTime()) / float64(elapsed)
}

// UtilizationSince returns the fraction of [since, now] the link's output
// port spent serializing, given the cumulative BusyTime observed at since
// (see sim.Resource.UtilizationSince for the windowing contract).
func (l *Link) UtilizationSince(since, busyAtSince sim.Time) float64 {
	now := l.eng.Now()
	if now <= since {
		return 0
	}
	return float64(l.BusyTime()-busyAtSince) / float64(now-since)
}
