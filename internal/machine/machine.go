// Package machine models the hardware of an SMP cluster: nodes containing
// compute processors (CPUs), a network adapter with input/output FIFOs, a
// DMA engine, and — on message-proxy and custom-hardware design points — a
// communication agent (the dedicated proxy processor or the adapter's
// protocol engine). Following the paper's simulator, the models account for
// contention for processors, DMA engines and network queues within a node,
// but not for memory-bus or switch contention.
package machine

import (
	"fmt"

	"mproxy/internal/arch"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
)

// Config describes a cluster topology.
type Config struct {
	Nodes        int // SMP nodes
	ProcsPerNode int // compute processors per node (excludes any proxy)
	// ProxiesPerNode is the number of dedicated proxy processors per node
	// (message-proxy design points only; default 1). Section 5.4 raises
	// multiple proxies as a way past the 50% utilization wall, noting the
	// memory bus and network interface remain the hard constraint.
	ProxiesPerNode int
}

// Procs returns the total number of compute processors.
func (c Config) Procs() int { return c.Nodes * c.ProcsPerNode }

// Cluster is a simulated SMP cluster under one architecture design point.
type Cluster struct {
	Eng   *sim.Engine
	Cfg   Config
	Arch  arch.Params
	Reg   *memory.Registry
	Nodes []*Node
	CPUs  []*CPU // indexed by global rank
}

// New builds a cluster of cfg.Nodes SMPs under design point a.
func New(eng *sim.Engine, cfg Config, a arch.Params) *Cluster {
	if cfg.Nodes <= 0 || cfg.ProcsPerNode <= 0 {
		panic(fmt.Sprintf("machine: bad config %+v", cfg))
	}
	if cfg.ProxiesPerNode <= 0 {
		cfg.ProxiesPerNode = 1
	}
	c := &Cluster{Eng: eng, Cfg: cfg, Arch: a, Reg: memory.NewRegistry(eng)}
	for n := 0; n < cfg.Nodes; n++ {
		node := &Node{
			ID:      n,
			Cluster: c,
			OutLink: NewLink(eng, fmt.Sprintf("node%d.out", n), a.NetBW, a.NetLatency),
			DMA:     NewLink(eng, fmt.Sprintf("node%d.dma", n), a.DMABW, 0),
		}
		switch a.Kind {
		case arch.Proxy:
			for k := 0; k < cfg.ProxiesPerNode; k++ {
				node.Agents = append(node.Agents,
					NewAgent(eng, fmt.Sprintf("node%d.proxy%d", n, k), a.PollDelay()))
			}
			node.Agent = node.Agents[0]
		case arch.CustomHW:
			node.Agent = NewAgent(eng, fmt.Sprintf("node%d.adapter", n), 0)
			node.Agents = []*Agent{node.Agent}
		}
		for s := 0; s < cfg.ProcsPerNode; s++ {
			cpu := &CPU{Node: node, Rank: n*cfg.ProcsPerNode + s, Slot: s}
			node.CPUs = append(node.CPUs, cpu)
			c.CPUs = append(c.CPUs, cpu)
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// Node is one SMP in the cluster.
type Node struct {
	ID      int
	Cluster *Cluster
	OutLink *Link
	// DMA is the node's DMA engine, modeled as a zero-latency serializing
	// link at the DMA bandwidth.
	DMA *Link
	// Agent is the node's primary communication agent: the message proxy
	// processor (Proxy) or the adapter's protocol engine (CustomHW). Nil
	// under Syscall, where compute processors run the protocol themselves.
	Agent *Agent
	// Agents lists every agent; message-proxy nodes may run several
	// proxies (Section 5.4's "multiple message proxies may help").
	Agents []*Agent
	CPUs   []*CPU
}

// AgentFor returns the agent serving a compute-processor slot (commands
// are statically partitioned across proxies by slot).
func (n *Node) AgentFor(slot int) *Agent {
	if len(n.Agents) == 0 {
		return n.Agent
	}
	return n.Agents[slot%len(n.Agents)]
}

// CPU is a compute processor. Application processes charge compute time to
// their CPU; under system-call communication, incoming messages interrupt
// the CPU and steal cycles from whatever is computing.
type CPU struct {
	Node *Node
	Rank int // global rank
	Slot int // index within the node

	computing   bool
	steal       sim.Time // stolen during the current compute interval
	stolenTotal sim.Time
	busyTotal   sim.Time
}

// Compute charges d time units of computation to the CPU on behalf of p,
// extending the interval by any interrupt time stolen while it runs.
func (c *CPU) Compute(p *sim.Proc, d sim.Time) {
	if d < 0 {
		panic("machine: negative compute time")
	}
	c.computing = true
	c.steal = 0
	remaining := d
	for remaining > 0 {
		p.Hold(remaining)
		remaining = c.steal // interrupts pushed the finish time out
		c.steal = 0
	}
	c.computing = false
	c.busyTotal += d
}

// Interrupt steals cost cycles from the CPU (system-call receive path). If
// a compute interval is in progress it is extended; otherwise the handler
// runs in otherwise-idle time.
func (c *CPU) Interrupt(cost sim.Time) {
	c.stolenTotal += cost
	if c.computing {
		c.steal += cost
	}
}

// Stolen returns the total CPU time consumed by interrupt handling.
func (c *CPU) Stolen() sim.Time { return c.stolenTotal }

// BusyTime returns total application compute time charged to the CPU.
func (c *CPU) BusyTime() sim.Time { return c.busyTotal }

// Link is a store-and-forward network output port: packets serialize at the
// link bandwidth, then arrive after the wire latency. Senders do not block;
// the adapter's output FIFO buffers them.
type Link struct {
	eng      *sim.Engine
	name     string
	mbps     float64
	latency  sim.Time
	freeAt   sim.Time
	busy     sim.Time
	packets  int64
	sentByte int64
}

// NewLink returns a link of mbps MB/s bandwidth and the given wire latency.
func NewLink(eng *sim.Engine, name string, mbps float64, latency sim.Time) *Link {
	return &Link{eng: eng, name: name, mbps: mbps, latency: latency}
}

// Send serializes n bytes onto the link and schedules deliver at the
// arrival time. Headers count toward serialization, so callers pass the
// full packet size.
func (l *Link) Send(n int, deliver func()) {
	xfer := arch.XferTime(n, l.mbps)
	start := l.freeAt
	if now := l.eng.Now(); start < now {
		start = now
	}
	depart := start + xfer
	l.freeAt = depart
	l.busy += xfer
	l.packets++
	l.sentByte += int64(n)
	l.eng.Schedule(depart+l.latency-l.eng.Now(), deliver)
}

// SendOverlapped accounts n bytes on the link but charges no serialization
// time, scheduling deliver after just the wire latency. It is used for
// DMA-fed transfers, where cut-through overlaps wire serialization with the
// (slower) DMA stream that the caller has already paid for.
func (l *Link) SendOverlapped(n int, deliver func()) {
	l.packets++
	l.sentByte += int64(n)
	l.eng.Schedule(l.latency, deliver)
}

// Occupy serializes n bytes through the link on behalf of p, blocking p
// until the transfer completes. Agents use it to stay busy for the duration
// of a DMA page transfer.
func (l *Link) Occupy(p *sim.Proc, n int) {
	f := l.eng.NewFlag()
	l.Send(n, func() { f.Add(1) })
	f.Wait(p, 1)
}

// Packets returns the number of packets sent.
func (l *Link) Packets() int64 { return l.packets }

// Bytes returns the number of bytes sent.
func (l *Link) Bytes() int64 { return l.sentByte }

// Utilization returns link busy time divided by elapsed.
func (l *Link) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(l.busy) / float64(elapsed)
}
