// Package kv is a sharded key-value service built on the active-message
// layer: GET/PUT/SCAN requests travel as AM requests into per-server
// remote queues — scanned by the message proxies on the proxy design
// points, so the paper's protection semantics carry over unchanged — and
// replies come back the same way. Keys shard across servers by hash;
// PUTs fan out to a configurable number of replicas, and the primary
// acknowledges the client only after every replica has. Values are
// synthesized (the simulator models time and bytes, not contents), but
// each server keeps a real per-key version map so store state — and with
// it replica traffic — is exact.
package kv

import (
	"fmt"

	"mproxy/internal/am"
	"mproxy/internal/sim"
	"mproxy/internal/trace/flight"
)

// Op enumerates the service's operations.
type Op int

const (
	OpGet Op = iota
	OpPut
	OpScan
	numOps
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpScan:
		return "SCAN"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// maxScanPayload caps a SCAN reply's payload bytes, like a real
// service's response-size limit.
const maxScanPayload = 4096

// Config parameterizes a service instance.
type Config struct {
	// Servers lists the server ranks in shard order.
	Servers []int
	// ValueBytes is the synthesized value size for GETs and PUTs.
	ValueBytes int
	// ScanCount is the number of records a SCAN returns.
	ScanCount int
	// Replication is the number of copies a PUT writes (1 = primary
	// only); clamped to the server count.
	Replication int
}

// repWait tracks one replicated PUT at its primary until every follower
// has acknowledged.
type repWait struct {
	need   int
	client int
	flags  int64
	issued int64
}

// Service is the cluster-wide KV state: handler ids, per-server version
// stores, and in-flight replication bookkeeping.
type Service struct {
	l   *am.Layer
	cfg Config
	idx map[int]int // server rank -> shard index

	// Per-shard-index state only: a server touches exclusively its own
	// slot, so shards of a parallel run never contend and the aggregate
	// accessors below sum deterministically.
	stores  []map[uint64]uint64 // per shard: key -> version
	pending []map[uint64]*repWait
	nextRep []uint64 // per shard: replication ids (keys of pending[si])
	val     []byte   // synthesized-value scratch, sized once at New

	served     [][numOps]int64
	replicated []int64

	// OnReply, when set, observes every reply arriving at a client:
	// the client's rank, the operation, and the request's echoed flags
	// and issue timestamp. The open-loop workload points this at its
	// latency recorder.
	OnReply func(client int, op Op, flags, issuedNs int64)

	// Flight, when set, receives per-request phase marks: handler start
	// at the primary, service completion, last follower ack, and reply
	// delivery. Request identity rides the high bits of the flags word
	// (flight.FlagsWithID), which the protocol already echoes — argument
	// values never affect simulated cost, so recording is timing-free.
	Flight *flight.Recorder

	hGet, hPut, hScan       int
	hRep, hRepAck           int
	hGetRe, hPutRe, hScanRe int
}

// New registers the service's handlers on l. Call before communication
// starts, like any AM registration.
func New(l *am.Layer, cfg Config) *Service {
	if len(cfg.Servers) == 0 {
		panic("kv: no servers")
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(cfg.Servers) {
		cfg.Replication = len(cfg.Servers)
	}
	s := &Service{l: l, cfg: cfg, idx: make(map[int]int, len(cfg.Servers))}
	for i, rank := range cfg.Servers {
		s.idx[rank] = i
		s.stores = append(s.stores, make(map[uint64]uint64))
		s.pending = append(s.pending, make(map[uint64]*repWait))
	}
	s.nextRep = make([]uint64, len(cfg.Servers))
	s.served = make([][numOps]int64, len(cfg.Servers))
	s.replicated = make([]int64, len(cfg.Servers))
	// Pre-size the value scratch to the largest payload any handler
	// returns: value() then never reallocates, so concurrent shards only
	// ever read the slice header.
	maxVal := cfg.ValueBytes
	if n := cfg.ScanCount * cfg.ValueBytes; n > maxVal {
		if n > maxScanPayload {
			n = maxScanPayload
		}
		if n > maxVal {
			maxVal = n
		}
	}
	s.val = make([]byte, maxVal)
	s.hGet = l.RegisterTask(s.onGet)
	s.hPut = l.RegisterTask(s.onPut)
	s.hScan = l.RegisterTask(s.onScan)
	s.hRep = l.RegisterTask(s.onRep)
	s.hRepAck = l.RegisterTask(s.onRepAck)
	s.hGetRe = s.replyHandler(OpGet)
	s.hPutRe = s.replyHandler(OpPut)
	s.hScanRe = s.replyHandler(OpScan)
	return s
}

func (s *Service) replyHandler(op Op) int {
	return s.l.RegisterTask(func(p *am.Port, t *sim.Task, src int, args []int64, payload []byte, k func()) {
		if s.Flight != nil {
			if fid := flight.FlagsID(args[0]); fid != 0 {
				s.Flight.Done(fid)
			}
		}
		if s.OnReply != nil {
			s.OnReply(p.Rank(), op, args[0], args[1])
		}
		k()
	})
}

// ShardIndex returns the shard index owning key.
func (s *Service) ShardIndex(key uint64) int {
	return int(mix(key) % uint64(len(s.cfg.Servers)))
}

// Primary returns the rank of the server owning key's shard.
func (s *Service) Primary(key uint64) int {
	return s.cfg.Servers[s.ShardIndex(key)]
}

// WireBytes returns the AM record sizes of op's request and reply as
// they travel the network (the per-packet comm.HeaderSize comes on top).
func (s *Service) WireBytes(op Op) (req, rep int) {
	switch op {
	case OpGet:
		return am.RecordBytes(3, 0), am.RecordBytes(2, s.cfg.ValueBytes)
	case OpPut:
		return am.RecordBytes(3, s.cfg.ValueBytes), am.RecordBytes(2, 0)
	case OpScan:
		n := s.cfg.ScanCount * s.cfg.ValueBytes
		if n > maxScanPayload {
			n = maxScanPayload
		}
		return am.RecordBytes(3, 0), am.RecordBytes(2, n)
	}
	return 0, 0
}

// flightServe marks a tracked request's handler start on the flight
// recorder (sampling the AM queue depth behind it) and wraps k to mark
// service completion once the reply or last replica write is submitted.
func (s *Service) flightServe(p *am.Port, flags int64, k func()) func() {
	fid := flight.FlagsID(flags)
	if s.Flight == nil || fid == 0 {
		return k
	}
	s.Flight.ServerStart(fid, p.Pending())
	rec := s.Flight
	return func() { rec.ServiceDone(fid); k() }
}

// Served returns how many requests of op the servers have processed.
func (s *Service) Served(op Op) int64 {
	var n int64
	for si := range s.served {
		n += s.served[si][op]
	}
	return n
}

// Replicated returns how many follower copies PUTs have written.
func (s *Service) Replicated() int64 {
	var n int64
	for _, v := range s.replicated {
		n += v
	}
	return n
}

// GetTask issues a GET for key from the client behind p. flags and
// issuedNs are echoed verbatim in the reply; k runs at submission.
func (s *Service) GetTask(p *am.Port, t *sim.Task, key uint64, flags, issuedNs int64, k func()) {
	p.SendTask(t, s.Primary(key), s.hGet, []int64{flags, issuedNs, int64(key)}, nil, k)
}

// PutTask issues a PUT of the configured value size for key.
func (s *Service) PutTask(p *am.Port, t *sim.Task, key uint64, flags, issuedNs int64, k func()) {
	p.SendTask(t, s.Primary(key), s.hPut, []int64{flags, issuedNs, int64(key)}, s.value(s.cfg.ValueBytes), k)
}

// ScanTask issues a SCAN of ScanCount records starting at key.
func (s *Service) ScanTask(p *am.Port, t *sim.Task, key uint64, flags, issuedNs int64, k func()) {
	p.SendTask(t, s.Primary(key), s.hScan, []int64{flags, issuedNs, int64(key)}, nil, k)
}

func (s *Service) onGet(p *am.Port, t *sim.Task, src int, args []int64, payload []byte, k func()) {
	si := s.idx[p.Rank()]
	_ = s.stores[si][uint64(args[2])] // version lookup
	s.served[si][OpGet]++
	k = s.flightServe(p, args[0], k)
	p.SendTask(t, src, s.hGetRe, args[:2], s.value(s.cfg.ValueBytes), k)
}

func (s *Service) onPut(p *am.Port, t *sim.Task, src int, args []int64, payload []byte, k func()) {
	si := s.idx[p.Rank()]
	key := uint64(args[2])
	s.stores[si][key]++
	s.served[si][OpPut]++
	k = s.flightServe(p, args[0], k)
	if s.cfg.Replication == 1 {
		p.SendTask(t, src, s.hPutRe, args[:2], nil, k)
		return
	}
	id := s.nextRep[si]
	s.nextRep[si]++
	s.pending[si][id] = &repWait{need: s.cfg.Replication - 1, client: src, flags: args[0], issued: args[1]}
	s.sendReps(p, t, si, id, key, 1, k)
}

// sendReps chains the follower writes of a replicated PUT: copies land
// on the Replication-1 servers after the primary in shard order.
func (s *Service) sendReps(p *am.Port, t *sim.Task, si int, id, key uint64, j int, k func()) {
	if j >= s.cfg.Replication {
		k()
		return
	}
	dst := s.cfg.Servers[(si+j)%len(s.cfg.Servers)]
	p.SendTask(t, dst, s.hRep, []int64{int64(id), int64(key)}, nil, func() {
		s.sendReps(p, t, si, id, key, j+1, k)
	})
}

func (s *Service) onRep(p *am.Port, t *sim.Task, src int, args []int64, payload []byte, k func()) {
	si := s.idx[p.Rank()]
	s.stores[si][uint64(args[1])]++
	s.replicated[si]++
	p.SendTask(t, src, s.hRepAck, args[:1], nil, k)
}

func (s *Service) onRepAck(p *am.Port, t *sim.Task, src int, args []int64, payload []byte, k func()) {
	si := s.idx[p.Rank()]
	id := uint64(args[0])
	w := s.pending[si][id]
	if w == nil {
		panic(fmt.Sprintf("kv: server %d acked unknown replication %d", src, id))
	}
	if w.need--; w.need > 0 {
		k()
		return
	}
	delete(s.pending[si], id)
	if s.Flight != nil {
		if fid := flight.FlagsID(w.flags); fid != 0 {
			s.Flight.RepAcked(fid)
		}
	}
	p.SendTask(t, w.client, s.hPutRe, []int64{w.flags, w.issued}, nil, k)
}

func (s *Service) onScan(p *am.Port, t *sim.Task, src int, args []int64, payload []byte, k func()) {
	si := s.idx[p.Rank()]
	_ = s.stores[si][uint64(args[2])]
	s.served[si][OpScan]++
	k = s.flightServe(p, args[0], k)
	n := s.cfg.ScanCount * s.cfg.ValueBytes
	if n > maxScanPayload {
		n = maxScanPayload
	}
	p.SendTask(t, src, s.hScanRe, args[:2], s.value(n), k)
}

// value returns an n-byte synthesized payload. The scratch is shared and
// sized at New: every AM submission copies the record at send time, and
// the slice header is never rewritten, so concurrent shards only read.
func (s *Service) value(n int) []byte {
	if cap(s.val) < n {
		panic(fmt.Sprintf("kv: %d-byte value exceeds the scratch sized at New", n))
	}
	return s.val[:n]
}

// mix is the splitmix64 finalizer, used to spread keys across shards.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
