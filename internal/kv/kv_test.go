package kv_test

import (
	"fmt"
	"testing"

	"mproxy/internal/am"
	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/kv"
	"mproxy/internal/machine"
	"mproxy/internal/sim"
)

// harness is a minimal serving cluster: one KV server per node on
// processor slot 0, one client on node 0 slot 1.
type harness struct {
	eng     *sim.Engine
	svc     *kv.Service
	client  *am.Port
	servers []int
}

func newHarness(t *testing.T, nodes, replication int) *harness {
	return newHarnessProxies(t, nodes, replication, 1, "")
}

// newHarnessProxies builds the cluster with an explicit proxy count and
// scheduling policy, so the semantic tests can assert the service is
// indifferent to how command streams map onto proxy cores.
func newHarnessProxies(t *testing.T, nodes, replication, proxies int, sched string) *harness {
	t.Helper()
	a, ok := arch.ByName("MP1")
	if !ok {
		t.Fatal("unknown arch MP1")
	}
	eng := sim.NewEngine()
	const ppn = 2
	cl := machine.New(eng, machine.Config{
		Nodes: nodes, ProcsPerNode: ppn,
		ProxiesPerNode: proxies, ProxySched: sched,
	}, a)
	l := am.New(comm.NewWith(cl, comm.Options{CommandQueueCap: 64}))
	servers := make([]int, nodes)
	for n := range servers {
		servers[n] = n * ppn
	}
	svc := kv.New(l, kv.Config{
		Servers:     servers,
		ValueBytes:  64,
		ScanCount:   16,
		Replication: replication,
	})
	for _, rank := range servers {
		port := l.Port(rank)
		eng.SpawnTaskDaemon(fmt.Sprintf("kv.server.%d", rank), func(t *sim.Task) {
			port.ServeWhileTask(t, func() bool { return false })
		})
	}
	return &harness{eng: eng, svc: svc, client: l.Port(1), servers: servers}
}

// run issues each op in sequence from the client and serves replies on
// the same port until every reply has arrived.
func (h *harness) run(t *testing.T, issue []func(p *am.Port, tk *sim.Task, k func())) {
	t.Helper()
	var got int
	want := len(issue)
	prev := h.svc.OnReply
	h.svc.OnReply = func(rank int, op kv.Op, flags, issued int64) {
		got++
		if prev != nil {
			prev(rank, op, flags, issued)
		}
	}
	h.eng.SpawnTask("client.issue", func(tk *sim.Task) {
		var step func(i int)
		step = func(i int) {
			if i == len(issue) {
				return
			}
			issue[i](h.client, tk, func() { step(i + 1) })
		}
		step(0)
	})
	h.eng.SpawnTask("client.recv", func(tk *sim.Task) {
		h.client.ServeWhileTask(tk, func() bool { return got >= want })
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("received %d replies, want %d", got, want)
	}
}

func TestPrimaryDeterministicAndSpread(t *testing.T) {
	h := newHarness(t, 4, 1)
	hit := map[int]int{}
	for key := uint64(0); key < 256; key++ {
		p := h.svc.Primary(key)
		if q := h.svc.Primary(key); q != p {
			t.Fatalf("Primary(%d) unstable: %d then %d", key, p, q)
		}
		hit[p]++
	}
	for _, rank := range h.servers {
		if hit[rank] == 0 {
			t.Errorf("no key of 256 sharded to server %d: %v", rank, hit)
		}
	}
}

func TestOpsCountedAndEchoed(t *testing.T) {
	h := newHarness(t, 3, 1)
	type reply struct {
		rank          int
		op            kv.Op
		flags, issued int64
	}
	var replies []reply
	h.svc.OnReply = func(rank int, op kv.Op, flags, issued int64) {
		replies = append(replies, reply{rank, op, flags, issued})
	}
	var issue []func(p *am.Port, tk *sim.Task, k func())
	for i := 0; i < 4; i++ {
		key, flags, issued := uint64(i), int64(i%2), int64(100+i)
		issue = append(issue,
			func(p *am.Port, tk *sim.Task, k func()) { h.svc.GetTask(p, tk, key, flags, issued, k) },
			func(p *am.Port, tk *sim.Task, k func()) { h.svc.PutTask(p, tk, key, flags, issued, k) },
			func(p *am.Port, tk *sim.Task, k func()) { h.svc.ScanTask(p, tk, key, flags, issued, k) },
		)
	}
	h.run(t, issue)
	for _, want := range []struct {
		op kv.Op
		n  int64
	}{{kv.OpGet, 4}, {kv.OpPut, 4}, {kv.OpScan, 4}} {
		if got := h.svc.Served(want.op); got != want.n {
			t.Errorf("Served(%v) = %d, want %d", want.op, got, want.n)
		}
	}
	if h.svc.Replicated() != 0 {
		t.Errorf("Replicated() = %d with replication 1, want 0", h.svc.Replicated())
	}
	ops := map[kv.Op]int{}
	for _, r := range replies {
		ops[r.op]++
		if r.rank != 1 {
			t.Errorf("reply delivered to rank %d, want the client rank 1", r.rank)
		}
		i := int(r.issued - 100)
		if i < 0 || i >= 4 || r.flags != int64(i%2) {
			t.Errorf("reply echoed (flags=%d, issued=%d); no request carried that pair", r.flags, r.issued)
		}
	}
	if ops[kv.OpGet] != 4 || ops[kv.OpPut] != 4 || ops[kv.OpScan] != 4 {
		t.Errorf("reply op mix %v, want 4 of each", ops)
	}
}

// TestReplicationAcksAfterFollowers pins the replication contract: each
// PUT writes Replication-1 follower copies, and the client's ack arrives
// only after they are all written.
func TestReplicationAcksAfterFollowers(t *testing.T) {
	h := newHarness(t, 4, 3)
	const puts = 5
	acked := 0
	h.svc.OnReply = func(rank int, op kv.Op, flags, issued int64) {
		acked++
		if want := int64(acked * 2); h.svc.Replicated() < want {
			t.Errorf("PUT %d acked with %d follower writes, want >= %d", acked, h.svc.Replicated(), want)
		}
	}
	var issue []func(p *am.Port, tk *sim.Task, k func())
	for i := 0; i < puts; i++ {
		key := uint64(i)
		issue = append(issue, func(p *am.Port, tk *sim.Task, k func()) {
			h.svc.PutTask(p, tk, key, 0, 0, k)
		})
	}
	h.run(t, issue)
	if got := h.svc.Replicated(); got != puts*2 {
		t.Errorf("Replicated() = %d, want %d (replication 3, %d PUTs)", got, puts*2, puts)
	}
}

// TestOpsUnderProxyScheds pins the service's semantic indifference to
// the proxy layer: with two proxies per node, every scheduling policy
// (including work stealing) must serve the same op counts and deliver
// every reply to the issuing client. Only timing may differ.
func TestOpsUnderProxyScheds(t *testing.T) {
	for _, sched := range []string{"static", "shard", "steal"} {
		t.Run(sched, func(t *testing.T) {
			h := newHarnessProxies(t, 3, 2, 2, sched)
			var issue []func(p *am.Port, tk *sim.Task, k func())
			for i := 0; i < 6; i++ {
				key := uint64(i * 37)
				issue = append(issue,
					func(p *am.Port, tk *sim.Task, k func()) { h.svc.GetTask(p, tk, key, 0, 0, k) },
					func(p *am.Port, tk *sim.Task, k func()) { h.svc.PutTask(p, tk, key, 0, 0, k) },
				)
			}
			h.run(t, issue)
			if got := h.svc.Served(kv.OpGet); got != 6 {
				t.Errorf("%s: Served(GET) = %d, want 6", sched, got)
			}
			if got := h.svc.Served(kv.OpPut); got != 6 {
				t.Errorf("%s: Served(PUT) = %d, want 6", sched, got)
			}
			if got := h.svc.Replicated(); got != 6 {
				t.Errorf("%s: Replicated() = %d, want 6 (replication 2, 6 PUTs)", sched, got)
			}
		})
	}
}

// Replication beyond the server count clamps instead of deadlocking.
func TestReplicationClampedToServers(t *testing.T) {
	h := newHarness(t, 2, 8)
	h.run(t, []func(p *am.Port, tk *sim.Task, k func()){
		func(p *am.Port, tk *sim.Task, k func()) { h.svc.PutTask(p, tk, 7, 0, 0, k) },
	})
	if got := h.svc.Replicated(); got != 1 {
		t.Errorf("Replicated() = %d, want 1 (2 servers, replication clamped to 2)", got)
	}
}
