package coll

import (
	"math"
	"testing"
	"testing/quick"

	"mproxy/internal/am"
	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/machine"
	"mproxy/internal/sim"
)

// world runs body on every rank of an n-rank cluster.
func world(t *testing.T, n int, a arch.Params, body func(c *Comm)) {
	t.Helper()
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: n, ProcsPerNode: 1}, a)
	f := comm.New(cl)
	l := am.New(f)
	g := NewGroup(l)
	for r := 0; r < n; r++ {
		r := r
		eng.Spawn("rank", func(p *sim.Proc) {
			f.Endpoint(r).Bind(p)
			body(g.Comm(r))
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		var entered, exited [32]sim.Time
		world(t, n, arch.MP1, func(c *Comm) {
			// Stagger arrivals; nobody may leave before the last arrives.
			c.Port().Endpoint().Compute(sim.Time(c.Rank()) * 100 * sim.Microsecond)
			entered[c.Rank()] = c.Port().Endpoint().Proc().Now()
			c.Barrier()
			exited[c.Rank()] = c.Port().Endpoint().Proc().Now()
		})
		var lastIn sim.Time
		for r := 0; r < n; r++ {
			if entered[r] > lastIn {
				lastIn = entered[r]
			}
		}
		for r := 0; r < n; r++ {
			if exited[r] < lastIn {
				t.Fatalf("n=%d: rank %d left the barrier at %v before rank arrival at %v",
					n, r, exited[r], lastIn)
			}
		}
	}
}

func TestBarrierRepeated(t *testing.T) {
	world(t, 5, arch.MP2, func(c *Comm) {
		for i := 0; i < 10; i++ {
			c.Barrier()
		}
	})
}

func TestAllReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16} {
		want := float64(n * (n - 1) / 2)
		world(t, n, arch.HW1, func(c *Comm) {
			got := c.AllReduce(float64(c.Rank()), Sum)
			if got != want {
				t.Errorf("n=%d rank %d: AllReduce = %v, want %v", n, c.Rank(), got, want)
			}
		})
	}
}

func TestAllReduceMaxMin(t *testing.T) {
	world(t, 6, arch.MP1, func(c *Comm) {
		if got := c.AllReduce(float64(c.Rank()), Max); got != 5 {
			t.Errorf("max = %v", got)
		}
		if got := c.AllReduce(float64(c.Rank()+1), Min); got != 1 {
			t.Errorf("min = %v", got)
		}
	})
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 16} {
		for _, root := range []int{0, n - 1} {
			root := root
			world(t, n, arch.SW1, func(c *Comm) {
				x := -1.0
				if c.Rank() == root {
					x = 42.5
				}
				if got := c.Bcast(x, root); got != 42.5 {
					t.Errorf("n=%d root=%d rank=%d: bcast = %v", n, root, c.Rank(), got)
				}
			})
		}
	}
}

func TestScanInclusive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 11} {
		world(t, n, arch.MP0, func(c *Comm) {
			got := c.Scan(float64(c.Rank()+1), Sum)
			want := float64((c.Rank() + 1) * (c.Rank() + 2) / 2)
			if got != want {
				t.Errorf("n=%d rank %d: scan = %v, want %v", n, c.Rank(), got, want)
			}
		})
	}
}

func TestReduceAtRoot(t *testing.T) {
	world(t, 9, arch.MP1, func(c *Comm) {
		got := c.Reduce(2.0, Sum, 3)
		if c.Rank() == 3 && got != 18 {
			t.Errorf("reduce at root = %v", got)
		}
	})
}

func TestMixedCollectiveSequence(t *testing.T) {
	// Interleaving different collectives must not cross wires.
	world(t, 8, arch.MP1, func(c *Comm) {
		s := c.AllReduce(1, Sum)
		c.Barrier()
		b := c.Bcast(s*2, 0)
		p := c.Scan(1, Sum)
		c.Barrier()
		if s != 8 || b != 16 || p != float64(c.Rank()+1) {
			t.Errorf("rank %d: s=%v b=%v p=%v", c.Rank(), s, b, p)
		}
	})
}

func TestAllReduceFloatValues(t *testing.T) {
	world(t, 4, arch.HW0, func(c *Comm) {
		got := c.AllReduce(0.1*float64(c.Rank()+1), Sum)
		if math.Abs(got-1.0) > 1e-12 {
			t.Errorf("sum = %v", got)
		}
	})
}

func TestBarrierCostGrowsLogarithmically(t *testing.T) {
	cost := func(n int) sim.Time {
		eng := sim.NewEngine()
		cl := machine.New(eng, machine.Config{Nodes: n, ProcsPerNode: 1}, arch.MP1)
		f := comm.New(cl)
		g := NewGroup(am.New(f))
		var worst sim.Time
		for r := 0; r < n; r++ {
			r := r
			eng.Spawn("rank", func(p *sim.Proc) {
				f.Endpoint(r).Bind(p)
				start := p.Now()
				g.Comm(r).Barrier()
				if d := p.Now() - start; d > worst {
					worst = d
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return worst
	}
	c4, c16 := cost(4), cost(16)
	// Dissemination: 2 rounds vs 4 rounds — about 2x, certainly not 4x.
	if ratio := float64(c16) / float64(c4); ratio > 3.0 {
		t.Errorf("barrier cost ratio 16/4 procs = %.2f, want ~2 (log depth)", ratio)
	}
}

func TestPropertyCollectivesMatchSerial(t *testing.T) {
	// Property: for random rank counts and contributions, AllReduce/Scan
	// agree with their serial definitions on every rank.
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%7) + 2
		vals := make([]float64, n)
		x := uint64(seed) + 1
		for i := range vals {
			x = x*6364136223846793005 + 1442695040888963407
			vals[i] = float64(x%1000) / 10
		}
		sums := make([]float64, n)
		scans := make([]float64, n)
		maxs := make([]float64, n)
		eng := sim.NewEngine()
		cl := machine.New(eng, machine.Config{Nodes: n, ProcsPerNode: 1}, arch.MP1)
		fb := comm.New(cl)
		g := NewGroup(am.New(fb))
		for r := 0; r < n; r++ {
			r := r
			eng.Spawn("rank", func(p *sim.Proc) {
				fb.Endpoint(r).Bind(p)
				c := g.Comm(r)
				sums[r] = c.AllReduce(vals[r], Sum)
				scans[r] = c.Scan(vals[r], Sum)
				maxs[r] = c.AllReduce(vals[r], Max)
				c.Barrier()
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		var total, prefix, max float64
		for r := 0; r < n; r++ {
			total += vals[r]
			if vals[r] > max {
				max = vals[r]
			}
		}
		for r := 0; r < n; r++ {
			prefix += vals[r]
			if math.Abs(sums[r]-total) > 1e-9 || math.Abs(scans[r]-prefix) > 1e-9 || maxs[r] != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
