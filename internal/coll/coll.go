// Package coll provides the collective communication library the paper
// builds on RMA and RQ: barriers, broadcasts, reductions and scans (Section
// 5.1). All collectives use logarithmic-depth algorithms over active
// messages: dissemination for barrier and scan, binomial trees for
// broadcast and reduce.
package coll

import (
	"fmt"

	"mproxy/internal/am"
	"mproxy/internal/costmodel"
)

// Op is a reduction operator.
type Op int

const (
	Sum Op = iota
	Max
	Min
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case Sum:
		return a + b
	case Max:
		if a > b {
			return a
		}
		return b
	case Min:
		if a < b {
			return a
		}
		return b
	default:
		panic(fmt.Sprintf("coll: unknown op %d", int(o)))
	}
}

// Group is the cluster-wide collective state. Build it once (after am.New,
// before any process starts communicating) and hand each rank its Comm.
type Group struct {
	l *am.Layer
	n int

	hBarrier, hValue int
	comms            []*Comm
}

type slot struct {
	count int
	value float64
}

// Comm is one rank's handle on the collective group.
type Comm struct {
	g    *Group
	rank int
	port *am.Port

	barrierGen int
	valueGen   int
	// pending collective messages, keyed by (generation, round).
	barriers map[[2]int]int
	values   map[[2]int]*slot
}

// NewGroup builds the collective group over the AM layer.
func NewGroup(l *am.Layer) *Group {
	g := &Group{l: l, n: l.Ranks()}
	for r := 0; r < g.n; r++ {
		g.comms = append(g.comms, &Comm{
			g: g, rank: r, port: l.Port(r),
			barriers: make(map[[2]int]int),
			values:   make(map[[2]int]*slot),
		})
	}
	g.hBarrier = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		c := g.comms[p.Rank()]
		c.barriers[[2]int{int(args[0]), int(args[1])}]++
	})
	g.hValue = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		c := g.comms[p.Rank()]
		key := [2]int{int(args[0]), int(args[1])}
		s := c.values[key]
		if s == nil {
			s = &slot{}
			c.values[key] = s
		}
		s.count++
		s.value = am.I2F(args[2]) // one contribution per (gen, round) sender
	})
	return g
}

// Comm returns rank's collective handle.
func (g *Group) Comm(rank int) *Comm { return g.comms[rank] }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.g.n }

// Rank returns this handle's rank.
func (c *Comm) Rank() int { return c.rank }

// Port returns the underlying active-message port.
func (c *Comm) Port() *am.Port { return c.port }

// Barrier blocks until all ranks have entered it (dissemination barrier,
// ceil(log2 n) rounds).
func (c *Comm) Barrier() {
	n := c.g.n
	if n == 1 {
		return
	}
	gen := c.barrierGen
	c.barrierGen++
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		peer := (c.rank + dist) % n
		c.port.Request(peer, c.g.hBarrier, int64(gen), int64(round))
		key := [2]int{gen, round}
		c.port.WaitUntil(func() bool { return c.barriers[key] >= 1 })
		delete(c.barriers, key)
		c.port.Endpoint().Compute(costmodel.IntOps(10))
	}
}

// valueExchange sends x to peer and waits for the peer's value for the
// same (generation, round).
func (c *Comm) valueExchange(peer, gen, round int, x float64) float64 {
	c.port.Request(peer, c.g.hValue, int64(gen), int64(round), am.F2I(x))
	key := [2]int{gen, round}
	c.port.WaitUntil(func() bool {
		s := c.values[key]
		return s != nil && s.count >= 1
	})
	v := c.values[key].value
	delete(c.values, key)
	return v
}

// AllReduce combines x across all ranks with op and returns the result on
// every rank (recursive doubling for power-of-two counts; an extra
// fold-in/fold-out step otherwise).
func (c *Comm) AllReduce(x float64, op Op) float64 {
	n := c.g.n
	if n == 1 {
		return x
	}
	// One generation per collective call; rounds disambiguate the
	// exchanges within it.
	gen := c.valueGen
	c.valueGen++

	// Fold ranks beyond the largest power of two into the base group.
	pow := 1
	for pow*2 <= n {
		pow *= 2
	}
	extra := n - pow
	if c.rank >= pow {
		// Send the contribution to the partner and wait for it to return
		// the final result.
		c.port.Request(c.rank-pow, c.g.hValue, int64(gen), 0, am.F2I(x))
		key := [2]int{gen, 1}
		c.port.WaitUntil(func() bool { s := c.values[key]; return s != nil && s.count >= 1 })
		v := c.values[key].value
		delete(c.values, key)
		return v
	}
	if c.rank < extra {
		key := [2]int{gen, 0}
		c.port.WaitUntil(func() bool { s := c.values[key]; return s != nil && s.count >= 1 })
		x = op.apply(x, c.values[key].value)
		delete(c.values, key)
	}
	// Recursive doubling within the power-of-two group.
	for round, dist := 0, 1; dist < pow; round, dist = round+1, dist*2 {
		peer := c.rank ^ dist
		v := c.valueExchange(peer, gen, 2+round, x)
		x = op.apply(x, v)
		c.port.Endpoint().Compute(costmodel.Flops(1))
	}
	if c.rank < extra {
		c.port.Request(c.rank+pow, c.g.hValue, int64(gen), 1, am.F2I(x))
	}
	return x
}

// Reduce combines x across all ranks with the result at root. Implemented
// over AllReduce, so every rank happens to observe the result; callers
// should rely on it only at root.
func (c *Comm) Reduce(x float64, op Op, root int) float64 {
	return c.AllReduce(x, op)
}

// Bcast distributes root's x to every rank (binomial tree).
func (c *Comm) Bcast(x float64, root int) float64 {
	n := c.g.n
	if n == 1 {
		return x
	}
	gen := c.valueGen
	c.valueGen++
	// Relabel so the root is rank 0.
	rel := (c.rank - root + n) % n
	if rel != 0 {
		// Wait for the value from the parent.
		key := [2]int{gen, 0}
		c.port.WaitUntil(func() bool { s := c.values[key]; return s != nil && s.count >= 1 })
		x = c.values[key].value
		delete(c.values, key)
	}
	// Forward to children: rel + 2^k for 2^k > rel.
	for dist := 1; dist < n; dist *= 2 {
		if rel < dist && rel+dist < n {
			child := (rel + dist + root) % n
			c.port.Request(child, c.g.hValue, int64(gen), 0, am.F2I(x))
		}
	}
	return x
}

// Scan returns the inclusive prefix reduction of x over ranks 0..rank
// (Kogge-Stone dissemination, ceil(log2 n) rounds).
func (c *Comm) Scan(x float64, op Op) float64 {
	n := c.g.n
	if n == 1 {
		return x
	}
	gen := c.valueGen
	c.valueGen++
	acc := x
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		key := [2]int{gen, round}
		if c.rank+dist < n {
			c.port.Request(c.rank+dist, c.g.hValue, int64(gen), int64(round), am.F2I(acc))
		}
		if c.rank-dist >= 0 {
			c.port.WaitUntil(func() bool { s := c.values[key]; return s != nil && s.count >= 1 })
			acc = op.apply(c.values[key].value, acc)
			delete(c.values, key)
		}
	}
	return acc
}

func log2ceil(n int) int {
	k := 0
	for v := 1; v < n; v *= 2 {
		k++
	}
	return k
}
