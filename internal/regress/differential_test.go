package regress

import (
	"testing"

	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// runScenarioInMode replays sc with the process-global default execution
// mode pinned to m for the duration of the run. Every scenario builds its
// own engine internally, so the default mode is the only way to steer which
// dispatch machinery (coroutine Proc or run-to-completion Task) the
// communication agents are built on.
func runScenarioInMode(t *testing.T, sc Scenario, m sim.ExecMode) *trace.Digest {
	t.Helper()
	prev := sim.DefaultExecMode()
	sim.SetDefaultExecMode(m)
	defer sim.SetDefaultExecMode(prev)
	return runScenario(t, sc)
}

// TestDifferentialExecModes is the equivalence half of the run-to-completion
// refactor: every golden scenario must produce a bit-identical event stream
// whether the proxy scan loop, agent service loop and ship/deliver path run
// as parked coroutines or as inline callback state machines. The golden
// files themselves pin the stream across time; this test pins it across
// execution models, so a Task-path cost or ordering drift cannot hide
// behind a re-bless.
func TestDifferentialExecModes(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			task := runScenarioInMode(t, sc, sim.ExecTask)
			proc := runScenarioInMode(t, sc, sim.ExecProc)
			if task.Count() != proc.Count() {
				t.Fatalf("event counts diverge: task mode %d, proc mode %d",
					task.Count(), proc.Count())
			}
			if task.LastAt() != proc.LastAt() {
				t.Fatalf("final timestamps diverge: task mode %d, proc mode %d",
					task.LastAt(), proc.LastAt())
			}
			if task.Sum() != proc.Sum() {
				t.Fatalf("trace digests diverge over %d events:\n  task mode %s\n  proc mode %s",
					task.Count(), task.Sum(), proc.Sum())
			}
		})
	}
}
