package regress

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mproxy/internal/trace"
)

var update = flag.Bool("update", false, "re-bless the golden trace files")

// goldenLine renders the scenario fingerprint stored under testdata/:
// the stream digest plus the event count and final simulated timestamp,
// so a diff on a failing golden file is immediately informative.
func goldenLine(d *trace.Digest) string {
	return fmt.Sprintf("digest sha256:%s\nevents %d\nlast_at_ns %d\n",
		d.Sum(), d.Count(), d.LastAt())
}

func runScenario(t *testing.T, sc Scenario) *trace.Digest {
	t.Helper()
	d := trace.NewDigest()
	sc.Run(d)
	if d.Count() == 0 {
		t.Fatalf("%s: scenario produced no trace events", sc.Name)
	}
	return d
}

// TestGoldenTraces replays every canonical scenario twice, asserts the two
// runs produce bit-identical digests (the engine's end-to-end determinism
// guarantee), and then compares against the blessed golden file. Run with
// -update to re-bless after an intentional model change.
func TestGoldenTraces(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			first := runScenario(t, sc)
			second := runScenario(t, sc)
			if first.Sum() != second.Sum() || first.Count() != second.Count() {
				t.Fatalf("non-deterministic trace: run 1 %s over %d events, run 2 %s over %d events",
					first.Sum(), first.Count(), second.Sum(), second.Count())
			}

			got := goldenLine(first)
			path := filepath.Join("testdata", sc.Name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("blessed %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to bless): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s: trace diverged from golden file.\n  got:\n%s  want:\n%s"+
					"  If the latency model or engine changed intentionally, re-bless with:\n"+
					"    go test ./internal/regress -run TestGoldenTraces -update",
					sc.Name, indent(got), indent(string(want)))
			}
		})
	}
}

// TestScenarioNamesUnique guards the testdata layout: each scenario must
// map to a distinct golden file.
func TestScenarioNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		if sc.Name == "" || strings.ContainsAny(sc.Name, "/\\ ") {
			t.Errorf("scenario name %q is not a clean file basename", sc.Name)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ") + "\n"
}
