// Package regress defines the golden-trace regression harness: canonical
// simulation scenarios whose complete event streams are folded into a
// digest (trace.Digest) and compared against blessed golden files under
// testdata/. Any change to the latency model, the event engine, the proxy
// dispatch loop, or the communication protocol changes a digest and fails
// the suite until the goldens are explicitly re-blessed with
//
//	go test ./internal/regress -run TestGoldenTraces -update
//
// Each scenario is also replayed twice per test run, proving the engine's
// determinism property (tie-break by insertion sequence, one goroutine at
// a time) holds end to end rather than merely by construction.
package regress

import (
	"fmt"

	"mproxy/internal/apps"
	"mproxy/internal/apps/registry"
	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/fault"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/rel"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// Scenario is one canonical run: it builds a fresh simulation, attaches
// the given tracer to its engine before any event is scheduled, and runs
// to completion.
type Scenario struct {
	Name string // golden file basename
	Desc string
	Run  func(t trace.Tracer)
}

// Scenarios returns the golden-trace suite: a latency-critical
// micro-benchmark, a proxy-contention queueing scenario, and a small
// full-stack application run.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "pingpong-mp1",
			Desc: "64B PUT ping-pong, 2 nodes x 1 proc, MP1 (Table 4 / Figure 7 path)",
			Run:  pingPong,
		},
		{
			Name: "queueing-mp1",
			Desc: "4 senders per proxy, mixed PUT/GET/ENQ incl. DMA path, 2 nodes x 4 procs, MP1 (Figure 9 path)",
			Run:  queueing,
		},
		{
			Name: "app-mm-mp1",
			Desc: "MM application at test scale, 2 nodes x 2 procs, MP1 (full stack: Split-C, collectives, AM)",
			Run:  appMM,
		},
		{
			Name: "faulty-pingpong-mp1",
			Desc: "64B PUT ping-pong over a lossy wire (seed=1, drop=1e-3) with reliable transport, MP1",
			Run:  faultyPingPong,
		},
	}
}

func mustArch(name string) arch.Params {
	a, ok := arch.ByName(name)
	if !ok {
		panic("regress: unknown architecture " + name)
	}
	return a
}

// pingPong reproduces the micro-benchmark critical path: rank 0 PUTs to
// rank 1 and waits for the return PUT, 8 round trips of 64 bytes.
func pingPong(t trace.Tracer) {
	const n, reps = 64, 8
	a := mustArch("MP1")
	eng := sim.NewEngine()
	eng.SetTracer(t)
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, a)
	f := comm.New(cl)
	reg := f.Registry()
	b0 := reg.NewSegment(0, n)
	b1 := reg.NewSegment(1, n)
	b0.Grant(1)
	b1.Grant(0)
	ping := reg.NewFlag(1)
	pong := reg.NewFlag(0)
	pingF, _ := reg.Flag(ping)
	pongF, _ := reg.Flag(pong)
	eng.Spawn("pinger", func(p *sim.Proc) {
		ep := f.Endpoint(0)
		ep.Bind(p)
		for i := 0; i < reps; i++ {
			if err := ep.Put(b0.Addr(0), b1.Addr(0), n, memory.FlagRef{}, ping); err != nil {
				panic(err)
			}
			pongF.Wait(p, int64(i+1))
		}
	})
	eng.Spawn("ponger", func(p *sim.Proc) {
		ep := f.Endpoint(1)
		ep.Bind(p)
		for i := 0; i < reps; i++ {
			pingF.Wait(p, int64(i+1))
			if err := ep.Put(b1.Addr(0), b0.Addr(0), n, memory.FlagRef{}, pong); err != nil {
				panic(err)
			}
		}
	})
	if err := eng.Run(); err != nil {
		panic("regress: pingpong: " + err.Error())
	}
}

// faultyPingPong is pingPong over a deterministic lossy wire: a seeded
// fault plane drops one packet in a thousand and the reliable transport
// recovers them. The blessed digest covers the whole fault pipeline —
// PRNG draws, drop events, retransmission timers, ack traffic — so a
// change to any of them is caught byte-for-byte, exactly like a latency
// model change.
func faultyPingPong(t trace.Tracer) {
	const n, reps = 64, 400
	a := mustArch("MP1")
	eng := sim.NewEngine()
	eng.SetTracer(t)
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, a)
	cl.SetFaultPlane(fault.NewPlane(fault.Config{Seed: 1, Drop: 1e-3}))
	f := comm.NewWith(cl, comm.Options{Rel: &rel.Config{}})
	reg := f.Registry()
	b0 := reg.NewSegment(0, n)
	b1 := reg.NewSegment(1, n)
	b0.Grant(1)
	b1.Grant(0)
	ping := reg.NewFlag(1)
	pong := reg.NewFlag(0)
	pingF, _ := reg.Flag(ping)
	pongF, _ := reg.Flag(pong)
	eng.Spawn("pinger", func(p *sim.Proc) {
		ep := f.Endpoint(0)
		ep.Bind(p)
		for i := 0; i < reps; i++ {
			if err := ep.Put(b0.Addr(0), b1.Addr(0), n, memory.FlagRef{}, ping); err != nil {
				panic(err)
			}
			pongF.Wait(p, int64(i+1))
		}
	})
	eng.Spawn("ponger", func(p *sim.Proc) {
		ep := f.Endpoint(1)
		ep.Bind(p)
		for i := 0; i < reps; i++ {
			pingF.Wait(p, int64(i+1))
			if err := ep.Put(b1.Addr(0), b0.Addr(0), n, memory.FlagRef{}, pong); err != nil {
				panic(err)
			}
		}
	})
	if err := eng.Run(); err != nil {
		panic("regress: faulty-pingpong: " + err.Error())
	}
	if err := f.RelErr(); err != nil {
		panic("regress: faulty-pingpong transport: " + err.Error())
	}
}

// queueing loads one message proxy with four concurrent senders issuing a
// mix of primitives — small PUTs (PIO), an 8 KiB PUT (pinned DMA pages), a
// GET (request/reply) and an ENQ into the partner's remote queue — so the
// trace captures command-queue scanning, agent queueing delay and every
// packet kind of the MP receive path.
func queueing(t trace.Tracer) {
	const (
		ppn   = 4
		reps  = 2
		small = 32
		big   = 8192
	)
	a := mustArch("MP1")
	eng := sim.NewEngine()
	eng.SetTracer(t)
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: ppn}, a)
	f := comm.New(cl)
	reg := f.Registry()
	for i := 0; i < ppn; i++ {
		i := i
		partner := ppn + i
		src := reg.NewSegment(i, big)
		dst := reg.NewSegment(partner, big)
		dst.Grant(i)
		src.Grant(partner)
		rq := reg.NewQueue(partner)
		rq.Grant(i)
		rqRef := memory.QueueRef{Owner: partner, ID: rq.ID}
		rsync := reg.NewFlag(partner) // counts deposits at the partner
		lsync := reg.NewFlag(i)       // counts local completions
		rsyncF, _ := reg.Flag(rsync)
		eng.Spawn(fmt.Sprintf("sender%d", i), func(p *sim.Proc) {
			ep := f.Endpoint(i)
			ep.Bind(p)
			var done int64
			for r := 0; r < reps; r++ {
				if err := ep.Put(src.Addr(0), dst.Addr(0), small, memory.FlagRef{}, rsync); err != nil {
					panic(err)
				}
				if err := ep.Put(src.Addr(0), dst.Addr(0), big, memory.FlagRef{}, rsync); err != nil {
					panic(err)
				}
				if err := ep.Get(src.Addr(0), dst.Addr(0), small, lsync, memory.FlagRef{}); err != nil {
					panic(err)
				}
				if err := ep.Enq(src.Addr(0), rqRef, 24, lsync); err != nil {
					panic(err)
				}
				done += 2
				ep.WaitFlag(lsync, done)
			}
		})
		eng.Spawn(fmt.Sprintf("receiver%d", partner), func(p *sim.Proc) {
			ep := f.Endpoint(partner)
			ep.Bind(p)
			rsyncF.Wait(p, 2*reps) // both PUT deposits per rep
			rqQ, _ := reg.Queue(rqRef)
			for r := 0; r < reps; r++ {
				ep.Recv(rqQ)
			}
		})
	}
	if err := eng.Run(); err != nil {
		panic("regress: queueing: " + err.Error())
	}
}

// appMM runs the MM application (Split-C matrix multiply) at test scale on
// a 2x2 cluster: the full software stack — Split-C global pointers,
// collectives, active messages — over the message-proxy fabric.
func appMM(t trace.Tracer) {
	spec, err := registry.ByName("MM")
	if err != nil {
		panic(err)
	}
	env := apps.NewEnv(machine.Config{Nodes: 2, ProcsPerNode: 2}, mustArch("MP1"), 8<<20)
	env.Eng.SetTracer(t)
	if _, err := apps.Run(env, spec.New(registry.Test)); err != nil {
		panic("regress: app-mm: " + err.Error())
	}
}
