package regress

import (
	"testing"

	"mproxy/internal/trace"
)

// TestFaultyScenarioProperties replays the faulty-pingpong scenario with
// a full event recorder and checks the causal structure of its fault
// pipeline rather than just the digest:
//
//   - the seeded wire actually lost packets (the scenario is meaningfully
//     faulty, not a zero-drop fluke), and
//   - every retransmission is preceded by a loss — a drop, corruption or
//     link-down event earlier in the trace. A retransmit with no prior
//     loss would mean a spurious timeout (an RTO shorter than the loaded
//     round trip), which wastes bandwidth and corrupts the latency story.
func TestFaultyScenarioProperties(t *testing.T) {
	var sc *Scenario
	for i := range Scenarios() {
		if s := Scenarios()[i]; s.Name == "faulty-pingpong-mp1" {
			sc = &s
			break
		}
	}
	if sc == nil {
		t.Fatal("faulty-pingpong-mp1 scenario not registered")
	}
	rec := &trace.Recorder{}
	sc.Run(rec)

	var losses []int64 // timestamps of drop/corrupt/link-down events
	var retransmits, acks, drops int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KDrop, trace.KCorrupt, trace.KLinkDown:
			losses = append(losses, ev.At)
			if ev.Kind == trace.KDrop {
				drops++
			}
		case trace.KRetransmit:
			retransmits++
			ok := false
			for _, at := range losses {
				if at < ev.At {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("retransmit of %s seq %d at %dns has no preceding loss event (spurious timeout)",
					ev.Comp, ev.Arg, ev.At)
			}
		case trace.KAck:
			acks++
		}
	}
	if drops == 0 {
		t.Error("scenario dropped no packets; raise reps or the drop rate so the golden trace exercises recovery")
	}
	if retransmits == 0 {
		t.Error("scenario recovered no drops via retransmission")
	}
	if acks == 0 {
		t.Error("scenario sent no standalone acks")
	}
}
