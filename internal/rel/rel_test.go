package rel

import (
	"strings"
	"testing"

	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// harness wires an Engine to a scripted wire: every frame crosses with a
// fixed latency, except that the script may drop or duplicate specific
// data transmissions (counted per transmission attempt, so attempt 0 is
// the first send of any frame, attempt 1 the second transmission on the
// wire, and so on).
type harness struct {
	t   *testing.T
	eng *sim.Engine
	rel *Engine

	latency sim.Time
	attempt int
	drop    map[int]bool // drop wire transmission n (data frames only)
	dup     map[int]bool // deliver transmission n twice
	dropAck bool         // drop every standalone ack

	delivered []uint64 // sequence numbers handed up, in order
	payloads  []any
}

func newHarness(t *testing.T, cfg Config) *harness {
	h := &harness{
		t: t, eng: sim.NewEngine(), latency: 5 * sim.Microsecond,
		drop: map[int]bool{}, dup: map[int]bool{},
	}
	h.rel = New(h.eng, cfg, h.send, h.deliver)
	return h
}

func (h *harness) send(fr *Frame) {
	if fr.HasData {
		n := h.attempt
		h.attempt++
		if h.drop[n] {
			return
		}
		cp := *fr // the wire sees a snapshot; later ack stamps must not alias
		h.eng.Schedule(h.latency, func() { h.rel.Receive(&cp) })
		if h.dup[n] {
			cp2 := *fr
			h.eng.Schedule(h.latency+2*sim.Microsecond, func() { h.rel.Receive(&cp2) })
		}
		return
	}
	if h.dropAck {
		return
	}
	cp := *fr
	h.eng.Schedule(h.latency, func() { h.rel.Receive(&cp) })
}

func (h *harness) deliver(fr *Frame) {
	h.delivered = append(h.delivered, fr.Seq)
	h.payloads = append(h.payloads, fr.Payload)
}

func (h *harness) run() {
	h.t.Helper()
	if err := h.eng.Run(); err != nil {
		h.t.Fatal(err)
	}
}

var flowAB = FlowID{Src: 0, Dst: 1}

func wantInOrder(t *testing.T, got []uint64, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("delivered %d frames (%v), want %d", len(got), got, n)
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("delivery %d has seq %d: %v", i, seq, got)
		}
	}
}

func TestCleanWireDeliversWithoutRetransmits(t *testing.T) {
	h := newHarness(t, Config{})
	for i := 0; i < 10; i++ {
		h.rel.Send(flowAB, i, 64, false)
	}
	h.run()
	wantInOrder(t, h.delivered, 10)
	for i, p := range h.payloads {
		if p.(int) != i {
			t.Errorf("payload %d = %v", i, p)
		}
	}
	st := h.rel.Stats()
	if st.Retransmits != 0 || st.Duplicates != 0 || st.FlowsFailed != 0 {
		t.Errorf("clean wire stats: %+v", st)
	}
	if h.rel.Outstanding() != 0 {
		t.Errorf("outstanding = %d after full ack", h.rel.Outstanding())
	}
}

func TestDroppedFrameIsRetransmitted(t *testing.T) {
	h := newHarness(t, Config{})
	h.drop[1] = true // second data transmission: frame seq 1's first send
	rec := &trace.Recorder{}
	h.eng.SetTracer(rec)
	for i := 0; i < 4; i++ {
		h.rel.Send(flowAB, i, 64, false)
	}
	h.run()
	wantInOrder(t, h.delivered, 4)
	st := h.rel.Stats()
	if st.Retransmits == 0 || st.Timeouts == 0 {
		t.Errorf("expected a timeout-driven retransmit: %+v", st)
	}
	// Frames 2 and 3 were selectively acked, so only seq 1 goes again.
	if st.Retransmits != 1 {
		t.Errorf("retransmits = %d, want 1 (SACK should spare 2 and 3)", st.Retransmits)
	}
	found := false
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KRetransmit {
			found = true
			if ev.Comp != "rel.0>1" || ev.Arg != 1 {
				t.Errorf("retransmit event = %+v", ev)
			}
		}
	}
	if !found {
		t.Error("no KRetransmit event recorded")
	}
}

func TestDuplicateAndReorderSuppression(t *testing.T) {
	h := newHarness(t, Config{})
	h.dup[0] = true
	h.dup[2] = true
	for i := 0; i < 4; i++ {
		h.rel.Send(flowAB, i, 64, false)
	}
	h.run()
	wantInOrder(t, h.delivered, 4)
	if st := h.rel.Stats(); st.Duplicates != 2 {
		t.Errorf("duplicates suppressed = %d, want 2 (%+v)", st.Duplicates, st)
	}
}

func TestLostAckTriggersRetransmitNotDuplicateDelivery(t *testing.T) {
	h := newHarness(t, Config{})
	h.dropAck = true // receiver's standalone acks all vanish
	h.rel.Send(flowAB, "only", 64, false)
	// With every standalone ack lost and no reverse data, the sender
	// retransmits until reverse traffic carries the ack. Send reverse
	// data later so a piggyback eventually settles the flow.
	h.eng.Schedule(400*sim.Microsecond, func() {
		h.dropAck = false
		h.rel.Send(FlowID{Src: 1, Dst: 0}, "reverse", 64, false)
	})
	h.run()
	if len(h.delivered) != 2 {
		t.Fatalf("delivered %d frames, want 2 (one per direction)", len(h.delivered))
	}
	st := h.rel.Stats()
	if st.Retransmits == 0 {
		t.Error("ack loss caused no retransmit")
	}
	if st.Duplicates == 0 {
		t.Error("retransmitted frame should have been suppressed as duplicate")
	}
	if st.FlowsFailed != 0 {
		t.Errorf("flow failed despite eventual ack: %+v", st)
	}
}

func TestWindowBackpressure(t *testing.T) {
	h := newHarness(t, Config{Window: 4})
	const total = 32
	inFlight, maxInFlight := 0, 0
	baseSend := h.send
	h.rel.send = func(fr *Frame) {
		if fr.HasData && !fr.Retrans {
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
		}
		baseSend(fr)
	}
	h.rel.deliver = func(fr *Frame) {
		inFlight--
		h.deliver(fr)
	}
	for i := 0; i < total; i++ {
		h.rel.Send(flowAB, i, 64, false)
	}
	if h.rel.Outstanding() != total {
		t.Fatalf("outstanding = %d before run", h.rel.Outstanding())
	}
	h.run()
	wantInOrder(t, h.delivered, total)
	if maxInFlight > 4 {
		t.Errorf("window of 4 allowed %d frames in flight", maxInFlight)
	}
}

func TestPiggybackSuppressesStandaloneAcks(t *testing.T) {
	h := newHarness(t, Config{AckDelay: 50 * sim.Microsecond})
	// Ping-pong: each delivery triggers a reverse send well inside
	// AckDelay, so every ack should ride on data.
	const rounds = 8
	h.rel.deliver = func(fr *Frame) {
		h.deliver(fr)
		if len(h.delivered) < 2*rounds {
			h.rel.Send(fr.Flow.reverse(), nil, 64, false)
		}
	}
	h.rel.Send(flowAB, nil, 64, false)
	h.run()
	if len(h.delivered) != 2*rounds {
		t.Fatalf("delivered %d, want %d", len(h.delivered), 2*rounds)
	}
	st := h.rel.Stats()
	// The final frame has no reverse traffic, so exactly one standalone
	// ack closes the conversation.
	if st.AcksSent != 1 {
		t.Errorf("standalone acks = %d, want 1 (piggybacking failed): %+v", st.AcksSent, st)
	}
}

func TestDeadLinkFailsFlowGracefully(t *testing.T) {
	h := newHarness(t, Config{MaxRetries: 3, RTO: 20 * sim.Microsecond})
	for n := 0; n < 64; n++ {
		h.drop[n] = true // the wire eats everything
	}
	var failed []FlowID
	h.rel.OnFail(func(f FlowID, err error) {
		failed = append(failed, f)
		if !strings.Contains(err.Error(), "0->1") {
			t.Errorf("error lacks flow: %v", err)
		}
	})
	h.rel.Send(flowAB, "doomed", 64, false)
	h.run()
	if len(h.delivered) != 0 {
		t.Errorf("dead link delivered %v", h.delivered)
	}
	if len(failed) != 1 || failed[0] != flowAB {
		t.Fatalf("OnFail calls = %v, want one for %v", failed, flowAB)
	}
	if h.rel.Err() == nil {
		t.Error("Err() is nil after failure")
	}
	st := h.rel.Stats()
	if st.FlowsFailed != 1 || st.Timeouts != 3 {
		t.Errorf("stats = %+v, want 1 failure after 3 timeout rounds", st)
	}
	// Later sends on the failed flow queue without spinning the timer.
	h.rel.Send(flowAB, "after", 64, false)
	if h.rel.Outstanding() == 0 {
		t.Error("post-failure send vanished instead of queueing")
	}
}

func TestBackoffDoublesAndResetsOnProgress(t *testing.T) {
	h := newHarness(t, Config{RTO: 10 * sim.Microsecond, Backoff: 2, MaxRetries: 10})
	var sendTimes []sim.Time
	baseSend := h.send
	h.rel.send = func(fr *Frame) {
		if fr.HasData {
			sendTimes = append(sendTimes, h.eng.Now())
		}
		baseSend(fr)
	}
	h.drop[0] = true
	h.drop[1] = true // first two transmissions of seq 0 lost
	h.rel.Send(flowAB, nil, 64, false)
	h.run()
	wantInOrder(t, h.delivered, 1)
	if len(sendTimes) != 3 {
		t.Fatalf("transmissions = %d, want 3", len(sendTimes))
	}
	gap1, gap2 := sendTimes[1]-sendTimes[0], sendTimes[2]-sendTimes[1]
	if gap1 != 10*sim.Microsecond || gap2 != 20*sim.Microsecond {
		t.Errorf("timeout gaps %v, %v; want 10us then 20us (backoff)", gap1, gap2)
	}
	// Progress resets the budget: a fresh frame after recovery starts at
	// the base RTO again.
	if tx := h.rel.tx[flowAB]; tx.rto != 10*sim.Microsecond || tx.retries != 0 {
		t.Errorf("rto/retries = %v/%d after ack, want reset", tx.rto, tx.retries)
	}
}

func TestManyFlowsAreIndependent(t *testing.T) {
	h := newHarness(t, Config{})
	h.drop[1] = true // second data transmission overall
	flows := []FlowID{{0, 1}, {0, 2}, {2, 1}, {3, 0}}
	perFlow := map[FlowID][]uint64{}
	h.rel.deliver = func(fr *Frame) { perFlow[fr.Flow] = append(perFlow[fr.Flow], fr.Seq) }
	for i := 0; i < 3; i++ {
		for _, f := range flows {
			h.rel.Send(f, i, 32, false)
		}
	}
	h.run()
	for _, f := range flows {
		got := perFlow[f]
		if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Errorf("flow %v delivered %v", f, got)
		}
	}
	if st := h.rel.Stats(); st.FlowsFailed != 0 || st.Delivered != 12 {
		t.Errorf("stats = %+v", st)
	}
}
