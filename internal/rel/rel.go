// Package rel is a reliable delivery layer for the simulated cluster
// fabric: a per-node-pair sliding window with sequence numbers, cumulative
// and selective acknowledgments piggybacked on reverse traffic,
// retransmission timers with exponential backoff and a retry budget,
// duplicate suppression, and graceful degradation to an error when a link
// stays down past the budget.
//
// The paper's stack assumes the SP2 switch delivers every packet intact
// and in order; rel is what that stack needs once the fabric is allowed to
// misbehave (see internal/fault). The protocol is go-back-N with a
// selective-repeat refinement: on timeout the sender retransmits every
// outstanding frame from the window base except those the receiver has
// selectively acknowledged.
//
// The package is transport-agnostic: the owner supplies a send function
// that puts a frame on the wire and a deliver function that accepts
// in-order frames. internal/comm wires these to the machine links (with
// CRC verification against fault-plane corruption); tests and the fuzz
// harness wire them to scripted lossy wires.
package rel

import (
	"fmt"

	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// Config parameterizes the protocol.
type Config struct {
	// Window is the maximum number of unacknowledged frames per flow
	// (at most 64, the span of the selective-ack bitmap).
	Window int
	// RTO is the initial retransmission timeout.
	RTO sim.Time
	// Backoff multiplies the timeout after each unsuccessful round.
	Backoff float64
	// MaxRetries bounds consecutive timeout rounds without progress on a
	// flow; exceeding it fails the flow (the link is declared dead).
	MaxRetries int
	// AckDelay is how long a receiver waits for reverse traffic to
	// piggyback an acknowledgment before sending a standalone ack.
	AckDelay sim.Time
	// HeaderBytes is the wire overhead per frame: sequence number,
	// cumulative ack, selective-ack bitmap and payload CRC.
	HeaderBytes int
}

// DefaultConfig returns the configuration used by the loss-sweep
// experiments: a 64-frame window, 150us initial timeout (several times
// the quiescent round trip of the slowest design point), doubling
// backoff, and a 12-round budget.
func DefaultConfig() Config {
	return Config{
		Window:      64,
		RTO:         150 * sim.Microsecond,
		Backoff:     2,
		MaxRetries:  12,
		AckDelay:    10 * sim.Microsecond,
		HeaderBytes: 20,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Window > 64 {
		c.Window = 64
	}
	if c.RTO <= 0 {
		c.RTO = d.RTO
	}
	if c.Backoff < 1 {
		c.Backoff = d.Backoff
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.AckDelay <= 0 {
		c.AckDelay = d.AckDelay
	}
	if c.HeaderBytes <= 0 {
		c.HeaderBytes = d.HeaderBytes
	}
	return c
}

// FlowID identifies a directed node pair.
type FlowID struct{ Src, Dst int }

func (f FlowID) String() string { return fmt.Sprintf("rel.%d>%d", f.Src, f.Dst) }

// reverse returns the flow carrying this flow's acknowledgments.
func (f FlowID) reverse() FlowID { return FlowID{Src: f.Dst, Dst: f.Src} }

// Frame is one protocol data unit. Data frames carry a payload and a
// sequence number; every frame (data or standalone ack) piggybacks the
// sender's cumulative and selective acknowledgment state for the reverse
// flow.
type Frame struct {
	Flow    FlowID
	HasData bool
	Seq     uint64 // data sequence, valid when HasData
	Payload any
	Bytes   int // payload wire size (excludes HeaderBytes)
	// Overlapped marks a frame whose first transmission may cut through
	// (its serialization was paid at the DMA engine); retransmissions
	// are never overlapped.
	Overlapped bool
	Retrans    bool

	// Ack acknowledges every reverse-flow sequence < Ack.
	Ack uint64
	// Sack bit i acknowledges reverse-flow sequence Ack+1+i.
	Sack uint64
	// CRC is the payload checksum, set by the transport owner at first
	// transmission and verified at receipt.
	CRC uint32
}

// Stats counts protocol activity across all flows.
type Stats struct {
	DataSent    int64 // first transmissions
	Retransmits int64
	AcksSent    int64 // standalone acks (piggybacks are free)
	Delivered   int64 // frames handed up, exactly once, in order
	Duplicates  int64 // arrivals suppressed as already received
	Buffered    int64 // out-of-order arrivals parked for reassembly
	Timeouts    int64 // timer expiries that triggered a retransmit round
	FlowsFailed int64
}

// Engine runs the protocol for every flow in one simulation.
type Engine struct {
	eng     *sim.Engine
	cfg     Config
	send    func(*Frame)
	deliver func(*Frame)
	onFail  func(FlowID, error)

	tx  map[FlowID]*txState
	rx  map[FlowID]*rxState
	err error

	stats Stats
}

type txState struct {
	flow    FlowID
	name    string
	next    uint64 // next sequence to assign
	base    uint64 // oldest unacknowledged sequence
	out     map[uint64]*Frame
	sacked  map[uint64]bool
	pending []*Frame // assigned but outside the window
	rto     sim.Time
	retries int
	gen     uint64 // timer generation; bumping it disarms the armed timer
	failed  bool
}

type rxState struct {
	flow     FlowID
	expected uint64 // next in-order sequence to deliver
	buf      map[uint64]*Frame
	ackOwed  bool
}

// New returns an engine over the given wire functions. send puts a frame
// on the wire (applying whatever loss model the wire has); deliver
// receives data frames exactly once, in per-flow order.
func New(eng *sim.Engine, cfg Config, send func(*Frame), deliver func(*Frame)) *Engine {
	return &Engine{
		eng: eng, cfg: cfg.withDefaults(), send: send, deliver: deliver,
		tx: make(map[FlowID]*txState), rx: make(map[FlowID]*rxState),
	}
}

// Config returns the engine's (defaulted) configuration.
func (r *Engine) Config() Config { return r.cfg }

// OnFail installs a callback invoked once per failed flow (after the
// retry budget is exhausted). The first failure is also retained in Err.
func (r *Engine) OnFail(fn func(FlowID, error)) { r.onFail = fn }

// Err returns the first flow failure, or nil.
func (r *Engine) Err() error { return r.err }

// Stats returns a snapshot of the protocol counters.
func (r *Engine) Stats() Stats { return r.stats }

func (r *Engine) txFor(flow FlowID) *txState {
	t, ok := r.tx[flow]
	if !ok {
		t = &txState{
			flow: flow, name: flow.String(),
			out: make(map[uint64]*Frame), sacked: make(map[uint64]bool),
			rto: r.cfg.RTO,
		}
		r.tx[flow] = t
	}
	return t
}

func (r *Engine) rxFor(flow FlowID) *rxState {
	s, ok := r.rx[flow]
	if !ok {
		s = &rxState{flow: flow, buf: make(map[uint64]*Frame)}
		r.rx[flow] = s
	}
	return s
}

// Send submits a payload on a flow. Frames beyond the window are queued
// and transmitted as acknowledgments open it.
func (r *Engine) Send(flow FlowID, payload any, bytes int, overlapped bool) {
	t := r.txFor(flow)
	fr := &Frame{
		Flow: flow, HasData: true, Seq: t.next,
		Payload: payload, Bytes: bytes, Overlapped: overlapped,
	}
	t.next++
	if t.failed || len(t.out) >= r.cfg.Window {
		t.pending = append(t.pending, fr)
		return
	}
	r.transmit(t, fr)
}

// transmit stamps piggyback acks and puts a frame on the wire, arming the
// flow's timer if it was idle.
func (r *Engine) transmit(t *txState, fr *Frame) {
	wasIdle := len(t.out) == 0
	t.out[fr.Seq] = fr
	r.stampAcks(fr)
	r.stats.DataSent++
	r.send(fr)
	if wasIdle {
		r.arm(t, t.rto)
	}
}

// stampAcks fills a frame's Ack/Sack from the receive state of the
// reverse flow and settles any ack debt (the piggyback).
func (r *Engine) stampAcks(fr *Frame) {
	s, ok := r.rx[fr.Flow.reverse()]
	if !ok {
		return
	}
	fr.Ack = s.expected
	fr.Sack = 0
	for seq := range s.buf {
		if off := seq - s.expected - 1; off < 64 {
			fr.Sack |= 1 << off
		}
	}
	s.ackOwed = false
}

// arm schedules a timeout d from now for the flow's current generation.
func (r *Engine) arm(t *txState, d sim.Time) {
	t.gen++
	gen := t.gen
	r.eng.Schedule(d, func() {
		if t.gen == gen {
			r.timeout(t)
		}
	})
}

// timeout retransmits every outstanding unsacked frame and backs off, or
// fails the flow once the budget is spent.
func (r *Engine) timeout(t *txState) {
	if len(t.out) == 0 || t.failed {
		return
	}
	t.retries++
	if t.retries > r.cfg.MaxRetries {
		r.fail(t)
		return
	}
	r.stats.Timeouts++
	for seq := t.base; seq < t.next; seq++ {
		fr, ok := t.out[seq]
		if !ok || t.sacked[seq] {
			continue
		}
		fr.Retrans = true
		r.stampAcks(fr)
		r.stats.Retransmits++
		r.eng.Emit(trace.KRetransmit, t.name, int64(seq))
		r.send(fr)
	}
	t.rto = sim.Time(float64(t.rto) * r.cfg.Backoff)
	r.arm(t, t.rto)
}

// fail marks a flow dead and reports the error once.
func (r *Engine) fail(t *txState) {
	t.failed = true
	t.gen++ // disarm
	r.stats.FlowsFailed++
	err := fmt.Errorf("rel: flow %d->%d failed: %d frames unacknowledged after %d retransmission rounds (seq %d..)",
		t.flow.Src, t.flow.Dst, len(t.out), r.cfg.MaxRetries, t.base)
	if r.err == nil {
		r.err = err
	}
	if r.onFail != nil {
		r.onFail(t.flow, err)
	}
}

// Receive processes a frame that survived the wire (CRC already checked
// by the owner; corrupted frames must not reach here).
func (r *Engine) Receive(fr *Frame) {
	// Piggybacked acknowledgment first: a frame from A to B acknowledges
	// the reverse flow B to A.
	r.handleAck(r.txFor(fr.Flow.reverse()), fr.Ack, fr.Sack)
	if !fr.HasData {
		return
	}
	s := r.rxFor(fr.Flow)
	switch {
	case fr.Seq < s.expected:
		// Already delivered: a duplicate (wire dup, or a retransmission
		// racing the ack). Re-ack so the sender's window advances.
		r.stats.Duplicates++
		r.scheduleAck(s)
	case fr.Seq == s.expected:
		// Mark the ack debt before delivering: reverse traffic sent from
		// inside the deliver callback then piggybacks the ack and the
		// standalone timer finds the debt already settled.
		r.scheduleAck(s)
		r.deliverInOrder(s, fr)
	default:
		if _, dup := s.buf[fr.Seq]; dup {
			r.stats.Duplicates++
		} else {
			s.buf[fr.Seq] = fr
			r.stats.Buffered++
		}
		r.scheduleAck(s)
	}
}

// deliverInOrder hands the frame up and flushes any buffered successors.
func (r *Engine) deliverInOrder(s *rxState, fr *Frame) {
	r.stats.Delivered++
	s.expected++
	r.deliver(fr)
	for {
		next, ok := s.buf[s.expected]
		if !ok {
			return
		}
		delete(s.buf, s.expected)
		r.stats.Delivered++
		s.expected++
		r.deliver(next)
	}
}

// scheduleAck owes the flow an acknowledgment: if reverse data departs
// within AckDelay the ack rides along for free; otherwise a standalone
// ack frame is sent.
func (r *Engine) scheduleAck(s *rxState) {
	if s.ackOwed {
		return // a check is already scheduled
	}
	s.ackOwed = true
	r.eng.Schedule(r.cfg.AckDelay, func() {
		if !s.ackOwed {
			return // piggybacked in the meantime
		}
		ack := &Frame{Flow: s.flow.reverse()}
		r.stampAcks(ack)
		r.stats.AcksSent++
		r.eng.Emit(trace.KAck, s.flow.String(), int64(ack.Ack))
		r.send(ack)
	})
}

// handleAck retires acknowledged frames, marks selectively acknowledged
// ones, resets the backoff on progress, and opens the window.
func (r *Engine) handleAck(t *txState, ack, sack uint64) {
	advanced := false
	for t.base < ack {
		if _, ok := t.out[t.base]; ok {
			delete(t.out, t.base)
			delete(t.sacked, t.base)
			advanced = true
		}
		t.base++
	}
	for i := uint64(0); i < 64; i++ {
		if sack&(1<<i) == 0 {
			continue
		}
		seq := ack + 1 + i
		if _, ok := t.out[seq]; ok && !t.sacked[seq] {
			t.sacked[seq] = true
			advanced = true
		}
	}
	if advanced {
		t.retries = 0
		t.rto = r.cfg.RTO
	}
	for len(t.pending) > 0 && len(t.out) < r.cfg.Window && !t.failed {
		fr := t.pending[0]
		t.pending = t.pending[1:]
		r.transmit(t, fr)
	}
	if len(t.out) == 0 {
		t.gen++ // all acknowledged: disarm the timer
	} else if advanced {
		r.arm(t, t.rto)
	}
}

// Outstanding returns the number of unacknowledged frames across all
// flows (pending window-blocked frames included).
func (r *Engine) Outstanding() int {
	n := 0
	for _, t := range r.tx {
		n += len(t.out) + len(t.pending)
	}
	return n
}
