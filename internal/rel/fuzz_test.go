package rel

import (
	"math/rand"
	"testing"

	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// runSchedule drives one protocol run over a wire whose behavior is
// scripted by data: byte 0 picks the message count, byte 1 the window,
// and each subsequent byte decides the fate of one wire transmission
// (drop / duplicate / extra delay for data, drop for standalone acks).
// Exhausted schedules read as zero, i.e. a clean wire.
//
// It asserts the invariant the fabric depends on: whatever the wire does,
// the receiver sees each payload exactly once, in order — and when no
// flow exhausts its retry budget, it sees all of them.
func runSchedule(t *testing.T, data []byte) {
	t.Helper()
	idx := 0
	next := func() byte {
		if idx < len(data) {
			b := data[idx]
			idx++
			return b
		}
		return 0
	}
	n := 1 + int(next())%40
	window := 1 + int(next())%8

	eng := sim.NewEngine()
	const latency = 5 * sim.Microsecond
	var relE *Engine
	send := func(fr *Frame) {
		b := next()
		cp := *fr
		if fr.HasData {
			if b&0x03 == 0 { // 1/4: drop
				return
			}
			d := latency + sim.Time(b>>4)*sim.Microsecond // up to 15us of reorder
			eng.Schedule(d, func() { relE.Receive(&cp) })
			if b&0x04 != 0 { // 1/8: duplicate
				cp2 := *fr
				eng.Schedule(d+3*sim.Microsecond, func() { relE.Receive(&cp2) })
			}
			return
		}
		if b&0x07 == 1 { // 1/8: lose the standalone ack
			return
		}
		eng.Schedule(latency, func() { relE.Receive(&cp) })
	}
	var delivered []int
	relE = New(eng, Config{Window: window, RTO: 60 * sim.Microsecond, MaxRetries: 8},
		send, func(fr *Frame) { delivered = append(delivered, fr.Payload.(int)) })
	for i := 0; i < n; i++ {
		relE.Send(FlowID{Src: 0, Dst: 1}, i, 64, false)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("n=%d window=%d: %v", n, window, err)
	}

	// Exactly once, in order: the deliveries form a prefix of 0..n-1.
	for i, v := range delivered {
		if v != i {
			t.Fatalf("n=%d window=%d schedule=%x: delivery %d = %d (out of order or duplicated): %v",
				n, window, data, i, v, delivered)
		}
	}
	if len(delivered) > n {
		t.Fatalf("delivered %d of %d messages", len(delivered), n)
	}
	if relE.Err() == nil {
		if len(delivered) != n {
			t.Fatalf("n=%d window=%d schedule=%x: no failure but only %d/%d delivered",
				n, window, data, len(delivered), n)
		}
		if relE.Outstanding() != 0 {
			t.Fatalf("no failure but %d frames outstanding", relE.Outstanding())
		}
	}
	if got := relE.Stats().Delivered; got != int64(len(delivered)) {
		t.Fatalf("stats.Delivered = %d, handed up %d", got, len(delivered))
	}
}

// FuzzRelWindow fuzzes the wire schedule. Run with `go test -fuzz
// FuzzRelWindow ./internal/rel` for open-ended exploration; the corpus
// below plus TestRelWindowSchedules cover the deterministic baseline.
func FuzzRelWindow(f *testing.F) {
	f.Add([]byte{})                  // clean wire, 1 message
	f.Add([]byte{39, 7})             // max messages, max window, clean
	f.Add([]byte{10, 0, 0, 0, 0, 0}) // window 1, every frame dropped
	f.Add([]byte{20, 3, 4, 0xf4, 1, 8, 0x40} /* dups, reorder, ack loss */)
	f.Add([]byte{5, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // dead wire
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip("schedule longer than any run consumes")
		}
		runSchedule(t, data)
	})
}

// TestRelWindowSchedules replays 12k pseudorandom wire schedules through
// the fuzz harness, guaranteeing the exactly-once/in-order invariant over
// a large deterministic corpus even when `go test` runs without -fuzz.
func TestRelWindowSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 12000; i++ {
		size := rng.Intn(80)
		data := make([]byte, size)
		rng.Read(data)
		runSchedule(t, data)
	}
}

// TestPropertyRetransmitsFollowDrops checks the causality property the
// regression harness also enforces on full-stack traces: with a wire that
// only drops (no dup, no reorder, acks intact) and a timeout comfortably
// above the round trip, every KRetransmit trace event is preceded by the
// drop of an earlier transmission of that same sequence.
func TestPropertyRetransmitsFollowDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		eng := sim.NewEngine()
		rec := &trace.Recorder{}
		eng.SetTracer(rec)
		const latency = 5 * sim.Microsecond
		var relE *Engine
		dropsBySeq := map[uint64][]sim.Time{}
		send := func(fr *Frame) {
			cp := *fr
			if fr.HasData && rng.Intn(5) == 0 {
				dropsBySeq[fr.Seq] = append(dropsBySeq[fr.Seq], eng.Now())
				return
			}
			eng.Schedule(latency, func() { relE.Receive(&cp) })
		}
		n := 0
		relE = New(eng, Config{RTO: 100 * sim.Microsecond}, send, func(fr *Frame) { n++ })
		msgs := 1 + rng.Intn(30)
		for i := 0; i < msgs; i++ {
			relE.Send(FlowID{Src: 0, Dst: 1}, i, 64, false)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if n != msgs && relE.Err() == nil {
			t.Fatalf("round %d: delivered %d/%d without failure", round, n, msgs)
		}
		for _, ev := range rec.Events() {
			if ev.Kind != trace.KRetransmit {
				continue
			}
			seq := uint64(ev.Arg)
			caused := false
			for _, at := range dropsBySeq[seq] {
				if int64(at) < ev.At {
					caused = true
					break
				}
			}
			if !caused {
				t.Fatalf("round %d: retransmit of seq %d at %d has no preceding drop (drops: %v)",
					round, seq, ev.At, dropsBySeq[seq])
			}
		}
	}
}
