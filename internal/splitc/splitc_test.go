package splitc

import (
	"testing"

	"mproxy/internal/am"
	"mproxy/internal/arch"
	"mproxy/internal/coll"
	"mproxy/internal/comm"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
)

// world runs body on every rank of an n-processor Split-C program.
func world(t *testing.T, n int, a arch.Params, heap int, body func(c *Ctx)) {
	t.Helper()
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: n, ProcsPerNode: 1}, a)
	f := comm.New(cl)
	l := am.New(f)
	g := coll.NewGroup(l)
	w := New(l, g, heap)
	for r := 0; r < n; r++ {
		r := r
		eng.Spawn("rank", func(p *sim.Proc) {
			f.Endpoint(r).Bind(p)
			body(w.Ctx(r))
			w.Ctx(r).Barrier()
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteF64(t *testing.T) {
	for _, a := range arch.All {
		t.Run(a.Name, func(t *testing.T) {
			world(t, 2, a, 1024, func(c *Ctx) {
				off := c.AllAlloc(8)
				if c.MyProc() == 0 {
					c.WriteF64(GPtr{Proc: 1, Off: off}, 6.5)
					if got := c.ReadF64(GPtr{Proc: 1, Off: off}); got != 6.5 {
						t.Errorf("read-after-write = %v", got)
					}
				}
			})
		})
	}
}

func TestLocalFastPath(t *testing.T) {
	world(t, 2, arch.MP1, 1024, func(c *Ctx) {
		off := c.AllAlloc(8)
		c.WriteF64(GPtr{Proc: c.MyProc(), Off: off}, 1.25)
		if got := c.ReadF64(GPtr{Proc: c.MyProc(), Off: off}); got != 1.25 {
			t.Errorf("local = %v", got)
		}
	})
}

func TestSplitPhaseBulk(t *testing.T) {
	world(t, 2, arch.MP1, 4096, func(c *Ctx) {
		src := c.AllAlloc(256)
		dst := c.AllAlloc(256)
		if c.MyProc() == 0 {
			v := c.LocalF64(src, 32)
			for i := 0; i < 32; i++ {
				v.Set(i, float64(i)*3)
			}
			// Push to rank 1's dst, split-phase, then sync.
			c.PutBulk(src, GPtr{Proc: 1, Off: dst}, 256)
			c.Sync()
			// Pull it back into our own dst and verify.
			c.GetBulk(dst, GPtr{Proc: 1, Off: dst}, 256)
			c.Sync()
			back := c.LocalF64(dst, 32)
			for i := 0; i < 32; i++ {
				if back.Get(i) != float64(i)*3 {
					t.Errorf("elem %d = %v", i, back.Get(i))
					break
				}
			}
		}
	})
}

func TestStoreAndAllStoreSync(t *testing.T) {
	for _, n := range []int{2, 4} {
		world(t, n, arch.MP2, 4096, func(c *Ctx) {
			off := c.AllAlloc(8 * int64Size(c.Procs()))
			// Everyone stores a value into everyone else's slot.
			for p := 0; p < c.Procs(); p++ {
				c.StoreF64(GPtr{Proc: p, Off: off + 8*c.MyProc()}, float64(100*c.MyProc()+p))
			}
			c.AllStoreSync()
			for p := 0; p < c.Procs(); p++ {
				got := c.LocalF64(off+8*p, 1).Get(0)
				if got != float64(100*p+c.MyProc()) {
					t.Errorf("rank %d slot %d = %v", c.MyProc(), p, got)
				}
			}
		})
	}
}

func int64Size(n int) int { return n }

func TestSpreadArrayLayout(t *testing.T) {
	world(t, 4, arch.HW1, 8192, func(c *Ctx) {
		s := c.AllSpreadF64(10)
		if s.Len() != 10 {
			t.Fatalf("len = %d", s.Len())
		}
		// Cyclic: element 6 lives on proc 2 at local index 1.
		if s.Owner(6) != 2 {
			t.Errorf("owner(6) = %d", s.Owner(6))
		}
		if got := s.Ptr(6); got.Proc != 2 || got.Off != s.base+8 {
			t.Errorf("ptr(6) = %+v", got)
		}
		// Counts: 10 elements over 4 procs = 3,3,2,2.
		wantCounts := []int{3, 3, 2, 2}
		if got := s.MyCount(c.MyProc()); got != wantCounts[c.MyProc()] {
			t.Errorf("rank %d count = %d", c.MyProc(), got)
		}
	})
}

func TestSpreadArrayReadWriteAcrossRanks(t *testing.T) {
	world(t, 3, arch.MP1, 8192, func(c *Ctx) {
		s := c.AllSpreadF64(9)
		// Rank 0 writes all elements; everyone reads them back.
		if c.MyProc() == 0 {
			for i := 0; i < 9; i++ {
				c.WriteF64(s.Ptr(i), float64(i*i))
			}
		}
		c.Barrier()
		for i := 0; i < 9; i++ {
			if got := c.ReadF64(s.Ptr(i)); got != float64(i*i) {
				t.Errorf("rank %d elem %d = %v", c.MyProc(), i, got)
			}
		}
	})
}

func TestSymmetricAllocConsistency(t *testing.T) {
	world(t, 2, arch.MP1, 1024, func(c *Ctx) {
		a := c.AllAlloc(24)
		b := c.AllAlloc(8)
		if b-a < 24 {
			t.Errorf("overlapping allocations: %d, %d", a, b)
		}
		// 24 rounds to 24; next alloc of 3 rounds to 8.
		x := c.AllAlloc(3)
		y := c.AllAlloc(8)
		if y-x != 8 {
			t.Errorf("alignment: %d -> %d", x, y)
		}
	})
}

func TestHeapOverflowPanics(t *testing.T) {
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 1, ProcsPerNode: 1}, arch.MP1)
	f := comm.New(cl)
	l := am.New(f)
	w := New(l, coll.NewGroup(l), 64)
	eng.Spawn("rank", func(p *sim.Proc) {
		f.Endpoint(0).Bind(p)
		w.Ctx(0).AllAlloc(128)
	})
	if err := eng.Run(); err == nil {
		t.Fatal("expected overflow failure")
	}
}

func TestBulkStoreWithSync(t *testing.T) {
	world(t, 2, arch.SW1, 8192, func(c *Ctx) {
		src := c.AllAlloc(512)
		dst := c.AllAlloc(512)
		if c.MyProc() == 1 {
			v := c.LocalF64(src, 64)
			for i := 0; i < 64; i++ {
				v.Set(i, float64(i)+0.5)
			}
			c.StoreBulk(src, GPtr{Proc: 0, Off: dst}, 512)
		}
		c.AllStoreSync()
		if c.MyProc() == 0 {
			v := c.LocalF64(dst, 64)
			for i := 0; i < 64; i++ {
				if v.Get(i) != float64(i)+0.5 {
					t.Errorf("elem %d = %v", i, v.Get(i))
					break
				}
			}
		}
	})
}

func TestSyncCountsSeparately(t *testing.T) {
	// Puts and gets have independent counters; syncing with zero issued is
	// a no-op.
	world(t, 2, arch.MP1, 1024, func(c *Ctx) {
		c.Sync()
		off := c.AllAlloc(8)
		if c.MyProc() == 0 {
			c.PutBulk(off, GPtr{Proc: 1, Off: off}, 8)
			c.GetBulk(off, GPtr{Proc: 1, Off: off}, 8)
			c.Sync()
		}
	})
}

var _ = memory.Addr{} // keep the import for helper visibility
