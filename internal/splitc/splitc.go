// Package splitc implements a Split-C style runtime (Culler et al.,
// Supercomputing'93), the programming model of six of the paper's
// applications: a global address space built from per-processor heaps,
// global pointers, cyclically spread arrays, split-phase gets and puts with
// sync counters, one-way stores with all_store_sync, and bulk transfers —
// all on top of the RMA/RQ primitives.
package splitc

import (
	"fmt"

	"mproxy/internal/am"
	"mproxy/internal/coll"
	"mproxy/internal/comm"
	"mproxy/internal/costmodel"
	"mproxy/internal/memory"
)

// GPtr is a global pointer: a byte offset within a processor's global heap.
type GPtr struct {
	Proc int
	Off  int
}

// Plus returns the pointer advanced by n bytes within the same heap.
func (g GPtr) Plus(n int) GPtr { return GPtr{g.Proc, g.Off + n} }

// World is the cluster-wide Split-C runtime state.
type World struct {
	l     *am.Layer
	g     *coll.Group
	heaps []*memory.Segment
	ctxs  []*Ctx
}

// Ctx is one processor's Split-C execution context (MYPROC).
type Ctx struct {
	w    *World
	rank int
	ep   *comm.Endpoint
	port *am.Port
	co   *coll.Comm
	heap *memory.Segment

	heapOff int // symmetric allocation cursor

	getFlag    memory.FlagRef // completion counter for split-phase gets
	putFlag    memory.FlagRef // completion counter for split-phase puts
	storeFlag  memory.FlagRef // incremented by arriving one-way stores
	getsIssued int64
	putsIssued int64
	storesSent int64

	scratch memory.Addr // 8-byte scratch for blocking scalar reads
}

// New builds the runtime with heapBytes of global heap per processor.
func New(l *am.Layer, g *coll.Group, heapBytes int) *World {
	w := &World{l: l, g: g}
	reg := l.Fabric().Registry()
	n := l.Ranks()
	for r := 0; r < n; r++ {
		heap := reg.NewSegment(r, heapBytes+16)
		heap.GrantAll(n)
		w.heaps = append(w.heaps, heap)
		ctx := &Ctx{
			w: w, rank: r, ep: l.Fabric().Endpoint(r), port: l.Port(r),
			co: g.Comm(r), heap: heap,
			getFlag:   reg.NewFlag(r),
			putFlag:   reg.NewFlag(r),
			storeFlag: reg.NewFlag(r),
			scratch:   heap.Addr(heapBytes),
			heapOff:   0,
		}
		w.ctxs = append(w.ctxs, ctx)
	}
	return w
}

// Ctx returns rank's context.
func (w *World) Ctx(rank int) *Ctx { return w.ctxs[rank] }

// Procs returns the number of processors.
func (w *World) Procs() int { return len(w.ctxs) }

// MyProc returns the context's rank.
func (c *Ctx) MyProc() int { return c.rank }

// Procs returns the number of processors.
func (c *Ctx) Procs() int { return len(c.w.ctxs) }

// Port returns the context's active-message port (for programs that use
// am_request/am_reply directly, like the paper's Sample).
func (c *Ctx) Port() *am.Port { return c.port }

// Comm returns the collective handle (barriers, reductions, scans).
func (c *Ctx) Comm() *coll.Comm { return c.co }

// Endpoint exposes the raw RMA/RQ endpoint.
func (c *Ctx) Endpoint() *comm.Endpoint { return c.ep }

// AllAlloc symmetrically allocates n bytes on every processor's heap and
// returns the common base offset. Every rank must call it in the same
// order (SPMD).
func (c *Ctx) AllAlloc(n int) int {
	base := c.heapOff
	c.heapOff += (n + 7) &^ 7
	if c.heapOff > len(c.heap.Data)-16 {
		panic(fmt.Sprintf("splitc: rank %d heap overflow (%d bytes)", c.rank, c.heapOff))
	}
	return base
}

// addr resolves a global pointer to a memory address.
func (c *Ctx) addr(g GPtr) memory.Addr { return c.w.heaps[g.Proc].Addr(g.Off) }

// LocalF64 returns a float64 view of count elements at a pointer into this
// processor's own heap.
func (c *Ctx) LocalF64(off, count int) memory.F64 {
	return memory.Float64s(c.heap, off, count)
}

// LocalI64 returns an int64 view into this processor's own heap.
func (c *Ctx) LocalI64(off, count int) memory.I64 {
	return memory.Int64s(c.heap, off, count)
}

// GetBulk issues a split-phase bulk get of n bytes from src into this
// processor's heap at localOff. Complete after Sync.
func (c *Ctx) GetBulk(localOff int, src GPtr, n int) {
	c.getsIssued++
	if err := c.ep.Get(c.heap.Addr(localOff), c.addr(src), n, c.getFlag, memory.FlagRef{}); err != nil {
		panic(fmt.Sprintf("splitc: get rank %d: %v", c.rank, err))
	}
}

// PutBulk issues a split-phase bulk put of n bytes from this processor's
// heap at localOff to dst. Complete (destination confirmed) after Sync.
func (c *Ctx) PutBulk(localOff int, dst GPtr, n int) {
	c.putsIssued++
	if err := c.ep.Put(c.heap.Addr(localOff), c.addr(dst), n, c.putFlag, memory.FlagRef{}); err != nil {
		panic(fmt.Sprintf("splitc: put rank %d: %v", c.rank, err))
	}
}

// StoreBulk issues a one-way store of n bytes from localOff to dst: no
// local completion, globally reconciled by AllStoreSync. The destination's
// store counter is bumped when the data lands.
func (c *Ctx) StoreBulk(localOff int, dst GPtr, n int) {
	c.storesSent++
	rsync := c.w.ctxs[dst.Proc].storeFlag
	if err := c.ep.Put(c.heap.Addr(localOff), c.addr(dst), n, memory.FlagRef{}, rsync); err != nil {
		panic(fmt.Sprintf("splitc: store rank %d: %v", c.rank, err))
	}
}

// Sync blocks until all split-phase gets and puts issued by this processor
// have completed.
func (c *Ctx) Sync() {
	c.ep.WaitFlag(c.getFlag, c.getsIssued)
	c.ep.WaitFlag(c.putFlag, c.putsIssued)
}

// ReadF64 performs a blocking read of one global double.
func (c *Ctx) ReadF64(g GPtr) float64 {
	if g.Proc == c.rank {
		c.ep.Compute(costmodel.MemRefs(2))
		return memory.GetF64(c.heap.Data[g.Off:])
	}
	c.getsIssued++
	if err := c.ep.Get(c.scratch, c.addr(g), 8, c.getFlag, memory.FlagRef{}); err != nil {
		panic(err)
	}
	c.ep.WaitFlag(c.getFlag, c.getsIssued)
	return memory.GetF64(c.heap.Data[c.scratch.Off:])
}

// WriteF64 performs a blocking write of one global double.
func (c *Ctx) WriteF64(g GPtr, v float64) {
	if g.Proc == c.rank {
		c.ep.Compute(costmodel.MemRefs(2))
		memory.PutF64(c.heap.Data[g.Off:], v)
		return
	}
	var b [8]byte
	memory.PutF64(b[:], v)
	c.putsIssued++
	if err := c.ep.PutBytes(b[:], c.addr(g), c.putFlag, memory.FlagRef{}); err != nil {
		panic(err)
	}
	c.ep.WaitFlag(c.putFlag, c.putsIssued)
}

// StoreF64 issues a one-way store of one double ( *g :- v ).
func (c *Ctx) StoreF64(g GPtr, v float64) {
	c.storesSent++
	if g.Proc == c.rank {
		c.ep.Compute(costmodel.MemRefs(2))
		memory.PutF64(c.heap.Data[g.Off:], v)
		reg := c.w.l.Fabric().Registry()
		reg.Signal(c.storeFlag)
		return
	}
	var b [8]byte
	memory.PutF64(b[:], v)
	rsync := c.w.ctxs[g.Proc].storeFlag
	if err := c.ep.PutBytes(b[:], c.addr(g), memory.FlagRef{}, rsync); err != nil {
		panic(err)
	}
}

// StoresReceived returns how many one-way stores have landed here.
func (c *Ctx) StoresReceived() int64 { return c.ep.FlagValue(c.storeFlag) }

// AllStoreSync waits until every one-way store issued anywhere has been
// deposited (all_store_sync): iterate barrier + global sent/received
// reconciliation until the counts match.
func (c *Ctx) AllStoreSync() {
	for {
		c.co.Barrier()
		sent := c.co.AllReduce(float64(c.storesSent), coll.Sum)
		recv := c.co.AllReduce(float64(c.StoresReceived()), coll.Sum)
		if sent == recv {
			c.co.Barrier()
			return
		}
		c.ep.Compute(costmodel.IntOps(50))
	}
}

// Barrier synchronizes all processors.
func (c *Ctx) Barrier() { c.co.Barrier() }

// SpreadF64 is a cyclically spread array of float64: element i lives on
// processor i mod PROCS at position i div PROCS.
type SpreadF64 struct {
	w     *World
	base  int
	elems int
}

// AllSpreadF64 allocates a spread array of n doubles (call on all ranks in
// the same order).
func (c *Ctx) AllSpreadF64(n int) SpreadF64 {
	per := (n + c.Procs() - 1) / c.Procs()
	base := c.AllAlloc(per * 8)
	return SpreadF64{w: c.w, base: base, elems: n}
}

// Len returns the element count.
func (s SpreadF64) Len() int { return s.elems }

// Owner returns the processor holding element i.
func (s SpreadF64) Owner(i int) int { return i % len(s.w.ctxs) }

// Ptr returns the global pointer to element i.
func (s SpreadF64) Ptr(i int) GPtr {
	p := len(s.w.ctxs)
	return GPtr{Proc: i % p, Off: s.base + (i/p)*8}
}

// MyCount returns how many elements rank owns.
func (s SpreadF64) MyCount(rank int) int {
	p := len(s.w.ctxs)
	n := s.elems / p
	if rank < s.elems%p {
		n++
	}
	return n
}

// Local returns rank's local elements as a view (k-th local element is the
// global element k*PROCS + rank).
func (s SpreadF64) Local(c *Ctx) memory.F64 {
	return c.LocalF64(s.base, s.MyCount(c.rank))
}
