// Package micro implements the paper's micro-benchmarks (Section 5.2):
// PUT/GET latency, PUT+sync compute-processor overhead, active-message
// round-trip latency, peak bandwidth (Table 4), and the ping-pong latency
// and bandwidth sweeps across message sizes (Figure 7).
package micro

import (
	"mproxy/internal/am"
	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
)

// Table4Row holds one design point's micro-benchmark results in the
// paper's units (microseconds; MB/s for bandwidth).
type Table4Row struct {
	Arch       string
	PutLatency float64 // submit -> local sync flag set (round trip)
	GetLatency float64 // submit -> local sync flag set
	PutSyncOvh float64 // compute-processor overhead: submit + detect
	AMLatency  float64 // am_request -> am_reply received
	PeakBW     float64 // streamed large PUTs, MB/s
}

// Options carries per-run simulation parameters for the benchmark rigs:
// fabric tuning (command-queue capacity, reliable transport) and an
// optional fault plane. The zero value is the quiescent, fault-free
// configuration the paper's Table 4 and Figure 7 assume.
type Options struct {
	Fabric comm.Options
	Fault  machine.FaultPlane
}

// rig is a two-node test cluster.
type rig struct {
	eng *sim.Engine
	f   *comm.Fabric
}

func newRig(a arch.Params, opt Options) *rig {
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, a)
	if opt.Fault != nil {
		cl.SetFaultPlane(opt.Fault)
	}
	return &rig{eng: eng, f: comm.NewWith(cl, opt.Fabric)}
}

func (r *rig) run(b0, b1 func(ep *comm.Endpoint)) {
	for rank, body := range []func(ep *comm.Endpoint){b0, b1} {
		if body == nil {
			continue
		}
		rank, body := rank, body
		r.eng.Spawn("rank", func(p *sim.Proc) {
			ep := r.f.Endpoint(rank)
			ep.Bind(p)
			body(ep)
		})
	}
	if err := r.eng.Run(); err != nil {
		panic("micro: " + err.Error())
	}
}

const reps = 32

// PutLatency measures the mean time from submitting a one-word PUT to the
// local synchronization flag being set (which requires the destination's
// deposit confirmation).
func PutLatency(a arch.Params, n int) float64 { return PutLatencyOpts(a, n, Options{}) }

// PutLatencyOpts is PutLatency with explicit simulation options.
func PutLatencyOpts(a arch.Params, n int, opt Options) float64 {
	r := newRig(a, opt)
	reg := r.f.Registry()
	src := reg.NewSegment(0, n)
	dst := reg.NewSegment(1, n)
	dst.Grant(0)
	fsync := reg.NewFlag(0)
	fl, _ := reg.Flag(fsync)
	var total sim.Time
	r.run(func(ep *comm.Endpoint) {
		for i := 0; i < reps; i++ {
			start := ep.Proc().Now()
			if err := ep.Put(src.Addr(0), dst.Addr(0), n, fsync, memory.FlagRef{}); err != nil {
				panic(err)
			}
			fl.Wait(ep.Proc(), int64(i+1)) // raw wait: latency excludes detection
			total += ep.Proc().Now() - start
		}
	}, nil)
	return total.Micros() / reps
}

// GetLatency measures the mean time from submitting a one-word GET to the
// local synchronization flag being set.
func GetLatency(a arch.Params, n int) float64 { return GetLatencyOpts(a, n, Options{}) }

// GetLatencyOpts is GetLatency with explicit simulation options.
func GetLatencyOpts(a arch.Params, n int, opt Options) float64 {
	r := newRig(a, opt)
	reg := r.f.Registry()
	local := reg.NewSegment(0, n)
	remote := reg.NewSegment(1, n)
	remote.Grant(0)
	fsync := reg.NewFlag(0)
	fl, _ := reg.Flag(fsync)
	var total sim.Time
	r.run(func(ep *comm.Endpoint) {
		for i := 0; i < reps; i++ {
			start := ep.Proc().Now()
			if err := ep.Get(local.Addr(0), remote.Addr(0), n, fsync, memory.FlagRef{}); err != nil {
				panic(err)
			}
			fl.Wait(ep.Proc(), int64(i+1))
			total += ep.Proc().Now() - start
		}
	}, nil)
	return total.Micros() / reps
}

// PutSyncOverhead measures the compute-processor cycles consumed per PUT:
// submitting the command plus detecting its completion (the rest of the
// latency is overlappable with computation — except under SW, where it is
// not, which is the paper's central point about offload).
func PutSyncOverhead(a arch.Params) float64 { return PutSyncOverheadOpts(a, Options{}) }

// PutSyncOverheadOpts is PutSyncOverhead with explicit simulation options.
func PutSyncOverheadOpts(a arch.Params, opt Options) float64 {
	r := newRig(a, opt)
	reg := r.f.Registry()
	src := reg.NewSegment(0, 8)
	dst := reg.NewSegment(1, 8)
	dst.Grant(0)
	fsync := reg.NewFlag(0)
	var busy sim.Time
	r.run(func(ep *comm.Endpoint) {
		cpu := ep.CPU()
		start := cpu.BusyTime()
		for i := 0; i < reps; i++ {
			if err := ep.Put(src.Addr(0), dst.Addr(0), 8, fsync, memory.FlagRef{}); err != nil {
				panic(err)
			}
			ep.WaitFlag(fsync, int64(i+1))
		}
		busy = cpu.BusyTime() - start
	}, nil)
	return busy.Micros() / reps
}

// AMLatency measures the round trip of an am_request answered by an
// am_reply, including handler invocation on both ends.
func AMLatency(a arch.Params) float64 { return AMLatencyOpts(a, Options{}) }

// AMLatencyOpts is AMLatency with explicit simulation options.
func AMLatencyOpts(a arch.Params, opt Options) float64 {
	r := newRig(a, opt)
	l := am.New(r.f)
	replies := 0
	var hEcho, hDone int
	hDone = l.Register(func(p *am.Port, src int, args []int64, _ []byte) { replies++ })
	hEcho = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		p.Reply(src, hDone, args[0])
	})
	var total sim.Time
	served := 0
	r.run(func(ep *comm.Endpoint) {
		p := l.Port(0)
		for i := 0; i < reps; i++ {
			start := ep.Proc().Now()
			p.Request(1, hEcho, int64(i))
			p.WaitUntil(func() bool { return replies > i })
			total += ep.Proc().Now() - start
		}
	}, func(ep *comm.Endpoint) {
		p := l.Port(1)
		for served < reps {
			p.ServeOne()
			served++
		}
	})
	return total.Micros() / reps
}

// PeakBandwidth streams large PUTs one way and reports delivered MB/s,
// measured from first submission to the last byte's deposit confirmation.
func PeakBandwidth(a arch.Params) float64 { return PeakBandwidthOpts(a, Options{}) }

// PeakBandwidthOpts is PeakBandwidth with explicit simulation options.
func PeakBandwidthOpts(a arch.Params, opt Options) float64 {
	const msg = 256 * 1024
	const count = 4
	r := newRig(a, opt)
	reg := r.f.Registry()
	src := reg.NewSegment(0, msg)
	dst := reg.NewSegment(1, msg)
	dst.Grant(0)
	fsync := reg.NewFlag(0)
	var elapsed sim.Time
	r.run(func(ep *comm.Endpoint) {
		start := ep.Proc().Now()
		for i := 0; i < count; i++ {
			ref := memory.FlagRef{}
			if i == count-1 {
				ref = fsync
			}
			if err := ep.Put(src.Addr(0), dst.Addr(0), msg, ref, memory.FlagRef{}); err != nil {
				panic(err)
			}
		}
		ep.WaitFlag(fsync, 1)
		elapsed = ep.Proc().Now() - start
	}, nil)
	return float64(msg*count) / elapsed.Micros()
}

// Table4 runs all micro-benchmarks for one design point.
func Table4(a arch.Params) Table4Row { return Table4Opts(a, Options{}) }

// Table4Opts is Table4 with explicit simulation options.
func Table4Opts(a arch.Params, opt Options) Table4Row {
	return Table4Row{
		Arch:       a.Name,
		PutLatency: PutLatencyOpts(a, 8, opt),
		GetLatency: GetLatencyOpts(a, 8, opt),
		PutSyncOvh: PutSyncOverheadOpts(a, opt),
		AMLatency:  AMLatencyOpts(a, opt),
		PeakBW:     PeakBandwidthOpts(a, opt),
	}
}

// Point is one ping-pong measurement (Figure 7).
type Point struct {
	Bytes   int
	Latency float64 // one-way latency, us
	BW      float64 // streamed bandwidth, MB/s
}

// PingPongPut sweeps message sizes with PUT ping-pongs: one-way latency is
// half the round trip, and bandwidth comes from streaming back-to-back
// PUTs of the same size.
func PingPongPut(a arch.Params, sizes []int) []Point {
	return PingPongPutOpts(a, sizes, Options{})
}

// PingPongPutOpts is PingPongPut with explicit simulation options.
func PingPongPutOpts(a arch.Params, sizes []int, opt Options) []Point {
	out := make([]Point, 0, len(sizes))
	for _, n := range sizes {
		out = append(out, Point{
			Bytes:   n,
			Latency: putPingPong(a, n, opt),
			BW:      putStream(a, n, opt),
		})
	}
	return out
}

func putPingPong(a arch.Params, n int, opt Options) float64 {
	r := newRig(a, opt)
	reg := r.f.Registry()
	b0 := reg.NewSegment(0, n)
	b1 := reg.NewSegment(1, n)
	b0.Grant(1)
	b1.Grant(0)
	ping := reg.NewFlag(1) // set at rank 1 when data lands
	pong := reg.NewFlag(0) // set at rank 0 on the return
	pingF, _ := reg.Flag(ping)
	pongF, _ := reg.Flag(pong)
	var total sim.Time
	r.run(func(ep *comm.Endpoint) {
		for i := 0; i < reps; i++ {
			start := ep.Proc().Now()
			if err := ep.Put(b0.Addr(0), b1.Addr(0), n, memory.FlagRef{}, ping); err != nil {
				panic(err)
			}
			pongF.Wait(ep.Proc(), int64(i+1))
			total += ep.Proc().Now() - start
		}
	}, func(ep *comm.Endpoint) {
		for i := 0; i < reps; i++ {
			pingF.Wait(ep.Proc(), int64(i+1))
			if err := ep.Put(b1.Addr(0), b0.Addr(0), n, memory.FlagRef{}, pong); err != nil {
				panic(err)
			}
		}
	})
	return total.Micros() / reps / 2
}

func putStream(a arch.Params, n int, opt Options) float64 {
	r := newRig(a, opt)
	reg := r.f.Registry()
	src := reg.NewSegment(0, n)
	dst := reg.NewSegment(1, n)
	dst.Grant(0)
	done := reg.NewFlag(0)
	const count = 16
	var elapsed sim.Time
	r.run(func(ep *comm.Endpoint) {
		start := ep.Proc().Now()
		for i := 0; i < count; i++ {
			ref := memory.FlagRef{}
			if i == count-1 {
				ref = done
			}
			if err := ep.Put(src.Addr(0), dst.Addr(0), n, ref, memory.FlagRef{}); err != nil {
				panic(err)
			}
		}
		ep.WaitFlag(done, 1)
		elapsed = ep.Proc().Now() - start
	}, nil)
	return float64(n*count) / elapsed.Micros()
}

// PingPongStore sweeps message sizes with active-message bulk stores: the
// data is PUT and a completion handler fires at the far end, which stores
// the same amount back.
func PingPongStore(a arch.Params, sizes []int) []Point {
	return PingPongStoreOpts(a, sizes, Options{})
}

// PingPongStoreOpts is PingPongStore with explicit simulation options.
func PingPongStoreOpts(a arch.Params, sizes []int, opt Options) []Point {
	out := make([]Point, 0, len(sizes))
	for _, n := range sizes {
		lat, bw := storePingPong(a, n, opt)
		out = append(out, Point{Bytes: n, Latency: lat, BW: bw})
	}
	return out
}

func storePingPong(a arch.Params, n int, opt Options) (latency, bw float64) {
	r := newRig(a, opt)
	l := am.New(r.f)
	reg := r.f.Registry()
	b0 := reg.NewSegment(0, n)
	b1 := reg.NewSegment(1, n)
	b0.Grant(1)
	b1.Grant(0)
	pings, pongs := 0, 0
	var hPing, hPong int
	hPong = l.Register(func(p *am.Port, src int, args []int64, _ []byte) { pongs++ })
	hPing = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		pings++
		p.Store(src, b1.Addr(0), b0.Addr(0), n, hPong)
	})
	var total sim.Time
	r.run(func(ep *comm.Endpoint) {
		p := l.Port(0)
		for i := 0; i < reps; i++ {
			start := ep.Proc().Now()
			p.Store(1, b0.Addr(0), b1.Addr(0), n, hPing)
			p.WaitUntil(func() bool { return pongs > i })
			total += ep.Proc().Now() - start
		}
	}, func(ep *comm.Endpoint) {
		p := l.Port(1)
		for pings < reps {
			p.ServeOne()
		}
	})
	latency = total.Micros() / reps / 2
	bw = float64(n) / latency
	return latency, bw
}
