package micro

import (
	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/fault"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/rel"
	"mproxy/internal/sim"
)

// LossPoint is one row of the loss-rate sweep: the micro-benchmark
// numbers with the reliable transport enabled over a wire that drops the
// given fraction of packets.
type LossPoint struct {
	Rate        float64
	LatencyUs   float64 // one-way small-PUT ping-pong latency
	BWMBs       float64 // streamed large-PUT bandwidth
	Retransmits int64   // across both benchmarks
	AcksSent    int64   // standalone acks (piggybacks are free)
	LinkLost    int64   // packets destroyed by the fault plane
	Failed      bool    // a flow exhausted its retry budget
}

// sweepReps is the ping-pong repetition count for loss sweeps: higher
// than the quiescent benchmarks so rare drops at low rates have a chance
// to land inside the measured window.
const sweepReps = 256

// newFaultRig is newRig plus a seeded fault plane and reliable transport.
// The sweep owns the fault plane (one per drop rate); opt contributes the
// fabric tuning and, optionally, a non-default rel configuration.
func newFaultRig(a arch.Params, fc fault.Config, opt Options) *rig {
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, a)
	if fc.Active() {
		cl.SetFaultPlane(fault.NewPlane(fc))
	}
	fabOpt := opt.Fabric
	if fabOpt.Rel == nil {
		fabOpt.Rel = &rel.Config{}
	}
	return &rig{eng: eng, f: comm.NewWith(cl, fabOpt)}
}

// lost sums the packets the fault plane destroyed on both nodes' links.
func (r *rig) lost() int64 {
	var n int64
	for _, nd := range r.f.Cl.Nodes {
		n += nd.OutLink.Lost()
	}
	return n
}

// LossSweep measures ping-pong latency and streamed bandwidth for each
// drop rate, always through the reliable transport, so rate 0 is the
// protocol-overhead baseline and the higher rates show pure loss
// degradation (timeout stalls, retransmission traffic). Results are
// deterministic in (a, seed).
func LossSweep(a arch.Params, rates []float64, seed uint64) []LossPoint {
	return LossSweepOpts(a, rates, seed, Options{})
}

// LossSweepOpts is LossSweep with explicit simulation options. The sweep
// still builds its own fault plane per rate; opt.Fault is ignored.
func LossSweepOpts(a arch.Params, rates []float64, seed uint64, opt Options) []LossPoint {
	out := make([]LossPoint, 0, len(rates))
	for _, rate := range rates {
		fc := fault.Config{Seed: seed, Drop: rate}
		pt := LossPoint{Rate: rate}

		lat := newFaultRig(a, fc, opt)
		pt.LatencyUs = lat.lossPingPong(64)
		st := lat.f.Rel().Stats()
		pt.Retransmits += st.Retransmits
		pt.AcksSent += st.AcksSent
		pt.LinkLost += lat.lost()
		pt.Failed = pt.Failed || lat.f.RelErr() != nil

		bw := newFaultRig(a, fc, opt)
		pt.BWMBs = bw.lossStream(64 * 1024)
		st = bw.f.Rel().Stats()
		pt.Retransmits += st.Retransmits
		pt.AcksSent += st.AcksSent
		pt.LinkLost += bw.lost()
		pt.Failed = pt.Failed || bw.f.RelErr() != nil

		out = append(out, pt)
	}
	return out
}

// lossPingPong is putPingPong on this rig: mean one-way latency of
// sweepReps PUT round trips of n bytes.
func (r *rig) lossPingPong(n int) float64 {
	reg := r.f.Registry()
	b0 := reg.NewSegment(0, n)
	b1 := reg.NewSegment(1, n)
	b0.Grant(1)
	b1.Grant(0)
	ping := reg.NewFlag(1)
	pong := reg.NewFlag(0)
	pingF, _ := reg.Flag(ping)
	pongF, _ := reg.Flag(pong)
	var total sim.Time
	r.run(func(ep *comm.Endpoint) {
		for i := 0; i < sweepReps; i++ {
			start := ep.Proc().Now()
			if err := ep.Put(b0.Addr(0), b1.Addr(0), n, memory.FlagRef{}, ping); err != nil {
				panic(err)
			}
			pongF.Wait(ep.Proc(), int64(i+1))
			total += ep.Proc().Now() - start
		}
	}, func(ep *comm.Endpoint) {
		for i := 0; i < sweepReps; i++ {
			pingF.Wait(ep.Proc(), int64(i+1))
			if err := ep.Put(b1.Addr(0), b0.Addr(0), n, memory.FlagRef{}, pong); err != nil {
				panic(err)
			}
		}
	})
	return total.Micros() / sweepReps / 2
}

// lossStream is putStream on this rig: delivered MB/s over 16 streamed
// PUTs of n bytes.
func (r *rig) lossStream(n int) float64 {
	reg := r.f.Registry()
	src := reg.NewSegment(0, n)
	dst := reg.NewSegment(1, n)
	dst.Grant(0)
	done := reg.NewFlag(0)
	const count = 16
	var elapsed sim.Time
	r.run(func(ep *comm.Endpoint) {
		start := ep.Proc().Now()
		for i := 0; i < count; i++ {
			ref := memory.FlagRef{}
			if i == count-1 {
				ref = done
			}
			if err := ep.Put(src.Addr(0), dst.Addr(0), n, ref, memory.FlagRef{}); err != nil {
				panic(err)
			}
		}
		ep.WaitFlag(done, 1)
		elapsed = ep.Proc().Now() - start
	}, nil)
	if elapsed <= 0 {
		return 0
	}
	return float64(n*count) / elapsed.Micros()
}
