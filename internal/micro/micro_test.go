package micro

import (
	"math"
	"testing"

	"mproxy/internal/arch"
)

// published holds Table 4 of the paper: PUT latency, GET latency, PUT+sync
// overhead, AM latency (us) and peak bandwidth (MB/s) per design point.
var published = map[string][5]float64{
	"HW0": {10.0, 9.5, 1.0, 28.2, 25.0},
	"HW1": {10.6, 9.6, 1.5, 30.2, 150},
	"MP0": {30.0, 28.0, 3.5, 63.5, 22.3},
	"MP1": {26.6, 24.7, 3.0, 58.0, 86.7},
	"MP2": {16.9, 16.4, 0.75, 41.1, 86.7},
	"SW1": {36.1, 34.1, 15.0, 107.8, 86.7},
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Errorf("%s = %.2f, published %.2f (off by %+.0f%%, tolerance %.0f%%)",
			name, got, want, 100*(got-want)/want, 100*tol)
	}
}

func TestTable4AgainstPublished(t *testing.T) {
	for _, a := range arch.All {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			r := Table4(a)
			w := published[a.Name]
			within(t, "PUT latency", r.PutLatency, w[0], 0.15)
			within(t, "GET latency", r.GetLatency, w[1], 0.15)
			within(t, "PUT+sync overhead", r.PutSyncOvh, w[2], 0.15)
			within(t, "AM latency", r.AMLatency, w[3], 0.15)
			within(t, "peak bandwidth", r.PeakBW, w[4], 0.05)
		})
	}
}

func TestTable4Orderings(t *testing.T) {
	// The qualitative results the paper's analysis rests on.
	rows := map[string]Table4Row{}
	for _, a := range arch.All {
		rows[a.Name] = Table4(a)
	}
	// "Message proxy latency is about 2.5 times longer than custom
	// hardware."
	if ratio := rows["MP0"].PutLatency / rows["HW0"].PutLatency; ratio < 2.0 || ratio > 3.2 {
		t.Errorf("MP0/HW0 PUT latency ratio = %.2f, want ~2.5-3", ratio)
	}
	// "A cache-update primitive improves the message proxy latency by
	// about 40%."
	if imp := 1 - rows["MP2"].PutLatency/rows["MP1"].PutLatency; imp < 0.25 || imp > 0.5 {
		t.Errorf("MP2 improves PUT latency by %.0f%%, want ~40%%", imp*100)
	}
	// "A cache-update primitive removes most of that overhead": MP2's
	// compute-processor overhead beats even custom hardware's.
	if rows["MP2"].PutSyncOvh >= rows["HW1"].PutSyncOvh {
		t.Error("MP2 overhead should beat HW1")
	}
	// "The overhead of system-level communication is significantly
	// higher."
	if rows["SW1"].PutSyncOvh < 4*rows["MP1"].PutSyncOvh {
		t.Error("SW1 overhead should dwarf MP1")
	}
	// "Custom hardware matches the peak DMA bandwidth, while message
	// proxies and system calls fail to achieve peak hardware bandwidth"
	// (pinning).
	if rows["HW1"].PeakBW < 1.5*rows["MP1"].PeakBW {
		t.Error("HW1 peak bandwidth should far exceed MP1 (pinning)")
	}
	if rows["MP1"].PeakBW < 0.95*rows["SW1"].PeakBW || rows["MP1"].PeakBW > 1.05*rows["SW1"].PeakBW {
		t.Error("MP1 and SW1 peak bandwidths should match (both pin pages)")
	}
	// AM trends follow PUT/GET trends across the six designs.
	order := []string{"HW0", "HW1", "MP2", "MP1", "MP0", "SW1"}
	for i := 1; i < len(order); i++ {
		if rows[order[i]].AMLatency < rows[order[i-1]].AMLatency {
			t.Errorf("AM latency order violated: %s (%.1f) < %s (%.1f)",
				order[i], rows[order[i]].AMLatency, order[i-1], rows[order[i-1]].AMLatency)
		}
	}
}

func TestModelMatchesSimulatedMP0(t *testing.T) {
	// The event-level simulation of MP0 and the closed-form Section 4
	// model must agree on one-way PUT/GET latency within a couple of
	// microseconds (the model omits NIC serialization; the simulator
	// includes it).
	// One-way PUT latency = round trip minus the ack leg; compare GET
	// (inherently round trip) directly: model gives 29.8 us at L=1.
	got := GetLatency(arch.MP0, 8)
	if math.Abs(got-29.8) > 3.0 {
		t.Errorf("simulated MP0 GET = %.2f us, model = 29.8 us", got)
	}
}

func TestFigure7Shapes(t *testing.T) {
	sizes := []int{8, 64, 256, 1024, 4096, 16384, 65536}
	curves := map[string][]Point{}
	for _, a := range []arch.Params{arch.HW1, arch.MP1, arch.MP2, arch.SW1} {
		curves[a.Name] = PingPongPut(a, sizes)
	}
	// Latency grows monotonically with size; bandwidth at 64 KB far
	// exceeds bandwidth at 8 B for every design point.
	for name, pts := range curves {
		for i := 1; i < len(pts); i++ {
			if pts[i].Latency < pts[i-1].Latency {
				t.Errorf("%s: latency not monotone at %d bytes", name, pts[i].Bytes)
			}
		}
		if pts[len(pts)-1].BW < 10*pts[0].BW {
			t.Errorf("%s: no bandwidth growth across sizes", name)
		}
	}
	// Custom hardware has the best performance for small sizes...
	if curves["HW1"][0].Latency >= curves["MP1"][0].Latency ||
		curves["HW1"][0].Latency >= curves["SW1"][0].Latency {
		t.Error("HW1 should win at small messages")
	}
	// ...and DMA bandwidth and memory pinning are the limiting factors
	// for large sizes: HW1 streams at ~150, the software points at ~87.
	last := len(sizes) - 1
	if curves["HW1"][last].BW < 1.4*curves["MP1"][last].BW {
		t.Errorf("HW1 (%.0f MB/s) should outstream MP1 (%.0f MB/s) at 64 KB",
			curves["HW1"][last].BW, curves["MP1"][last].BW)
	}
	if r := curves["MP1"][last].BW / curves["SW1"][last].BW; r < 0.9 || r > 1.1 {
		t.Error("MP1 and SW1 should stream at the same pinned-DMA rate")
	}
}

func TestFigure7AMStore(t *testing.T) {
	sizes := []int{16, 256, 4096, 32768}
	for _, a := range []arch.Params{arch.HW1, arch.MP1} {
		pts := PingPongStore(a, sizes)
		for i := 1; i < len(pts); i++ {
			if pts[i].Latency < pts[i-1].Latency {
				t.Errorf("%s: AM store latency not monotone at %d bytes", a.Name, pts[i].Bytes)
			}
		}
		// AM store adds handler costs over a plain PUT ping-pong.
		put := putPingPong(a, 16, Options{})
		if pts[0].Latency <= put {
			t.Errorf("%s: AM store (%.1f) should cost more than PUT (%.1f)", a.Name, pts[0].Latency, put)
		}
	}
}

func TestPutLatencyGrowsWithSize(t *testing.T) {
	small := PutLatency(arch.MP1, 8)
	big := PutLatency(arch.MP1, 1024)
	if big <= small {
		t.Errorf("1 KB PUT (%.1f) should exceed 8 B PUT (%.1f)", big, small)
	}
}
