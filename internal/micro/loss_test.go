package micro

import (
	"testing"

	"mproxy/internal/arch"
)

func TestLossSweepDeterministicAndDegrading(t *testing.T) {
	rates := []float64{0, 1e-2}
	a := LossSweep(arch.MP1, rates, 3)
	b := LossSweep(arch.MP1, rates, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sweep not deterministic at rate %g: %+v vs %+v", rates[i], a[i], b[i])
		}
	}
	clean, lossy := a[0], a[1]
	if clean.Retransmits != 0 || clean.LinkLost != 0 || clean.Failed {
		t.Errorf("rate 0 shows loss artifacts: %+v", clean)
	}
	if lossy.Retransmits == 0 || lossy.LinkLost == 0 {
		t.Errorf("rate 1e-2 shows no loss: %+v", lossy)
	}
	if lossy.Failed {
		t.Errorf("rate 1e-2 killed a flow: %+v", lossy)
	}
	if lossy.LatencyUs <= clean.LatencyUs {
		t.Errorf("latency did not degrade: clean %.2fus, lossy %.2fus", clean.LatencyUs, lossy.LatencyUs)
	}
	// Streamed bandwidth can hide mid-stream recovery entirely (the link
	// has slack over the DMA bottleneck), so loss must never *improve* it.
	if lossy.BWMBs > clean.BWMBs {
		t.Errorf("bandwidth improved under loss: clean %.1f, lossy %.1f MB/s", clean.BWMBs, lossy.BWMBs)
	}
}

func TestLossSweepSeedSensitivity(t *testing.T) {
	a := LossSweep(arch.HW1, []float64{5e-3}, 1)[0]
	b := LossSweep(arch.HW1, []float64{5e-3}, 2)[0]
	if a == b {
		t.Errorf("different seeds produced identical sweeps: %+v", a)
	}
}
