package arch

import "mproxy/internal/sim"

// The six design points of Table 3. "Today's technology" (HW0, MP0) uses
// 25 MB/s DMA, a 40 MB/s link and 1 us network latency; "next generation"
// (HW1, MP1, MP2, SW1) uses 150 MB/s DMA, a 175 MB/s link and 0.5 us
// latency. Custom hardware has a 0.5 us cache miss with uniprocessor nodes
// (HW0) and 1.0 us with SMP nodes (HW1, and all software design points).
var (
	// HW0: custom hardware, uniprocessor nodes, today's technology
	// (Princeton SHRIMP is representative).
	HW0 = Params{
		Name: "HW0", Kind: CustomHW,
		CacheMiss: sim.Micros(0.5), AgentMiss: sim.Micros(0.5),
		Uncached: sim.Micros(0.65), Speed: 1,
		AdapterOvh: sim.Micros(1.5), ComputeOvh: sim.Micros(0.5),
		DMABW: 25, NetBW: 40, PIOBW: 35, MemBW: 80, NetLatency: sim.Micros(0.5),
		PageSize: 4096, PIOCutoff: 1024, Prepinned: true,
	}

	// HW1: custom hardware, SMP nodes, next-generation parameters.
	HW1 = Params{
		Name: "HW1", Kind: CustomHW,
		CacheMiss: sim.Micros(1.0), AgentMiss: sim.Micros(1.0),
		Uncached: sim.Micros(0.65), Speed: 2,
		AdapterOvh: sim.Micros(1.5), ComputeOvh: sim.Micros(0.5),
		DMABW: 150, NetBW: 175, PIOBW: 150, MemBW: 250, NetLatency: sim.Micros(0.5),
		PageSize: 4096, PIOCutoff: 1024, Prepinned: true,
	}

	// MP0: message proxy, today's technology — the IBM G30 implementation
	// of Section 4 is representative. P = PollBase + 2*AgentMiss = 3.0 us,
	// matching Table 1's measured polling delay.
	MP0 = Params{
		Name: "MP0", Kind: Proxy,
		CacheMiss: sim.Micros(1.0), AgentMiss: sim.Micros(1.0),
		Uncached: sim.Micros(0.65), VMAtt: sim.Micros(0.433), Speed: 1,
		PollBase: sim.Micros(1.0),
		DMABW:    25, NetBW: 40, PIOBW: 30, MemBW: 80, NetLatency: sim.Micros(1.0),
		PinPerPage: sim.Micros(10), PageSize: 4096, PIOCutoff: 1024,
	}

	// MP1: message proxy, next-generation parameters; the faster proxy
	// processor (S=2) lowers per-operation proxy overhead.
	MP1 = Params{
		Name: "MP1", Kind: Proxy,
		CacheMiss: sim.Micros(1.0), AgentMiss: sim.Micros(1.0),
		Uncached: sim.Micros(0.65), VMAtt: sim.Micros(0.433), Speed: 2,
		PollBase: sim.Micros(1.0),
		DMABW:    150, NetBW: 175, PIOBW: 60, MemBW: 250, NetLatency: sim.Micros(0.5),
		PinPerPage: sim.Micros(10), PageSize: 4096, PIOCutoff: 1024,
	}

	// MP2: MP1 plus the direct cache-update primitive: misses between the
	// proxy and compute processors (command queues, sync flags, user
	// buffers) take 0.25 us instead of 1.0 us.
	MP2 = Params{
		Name: "MP2", Kind: Proxy,
		CacheMiss: sim.Micros(1.0), AgentMiss: sim.Micros(0.25),
		Uncached: sim.Micros(0.65), VMAtt: sim.Micros(0.433), Speed: 2,
		PollBase: sim.Micros(1.0),
		DMABW:    150, NetBW: 175, PIOBW: 60, MemBW: 250, NetLatency: sim.Micros(0.5),
		PinPerPage: sim.Micros(10), PageSize: 4096, PIOCutoff: 1024,
	}

	// SW1: system calls + interrupts, next-generation parameters, with the
	// paper's very aggressive 6.5 us per system call and per interrupt.
	SW1 = Params{
		Name: "SW1", Kind: Syscall,
		CacheMiss: sim.Micros(1.0), AgentMiss: sim.Micros(1.0),
		Uncached: sim.Micros(0.65), Speed: 2,
		SyscallOvh: sim.Micros(6.5), InterruptOvh: sim.Micros(8.5),
		ProtocolOvh: sim.Micros(1.0),
		DMABW:       150, NetBW: 175, PIOBW: 60, MemBW: 250, NetLatency: sim.Micros(0.5),
		PinPerPage: sim.Micros(10), PageSize: 4096, PIOCutoff: 1024,
	}
)

// All lists the design points in the paper's column order.
var All = []Params{HW0, HW1, MP0, MP1, MP2, SW1}

// ByName returns the design point with the given name.
func ByName(name string) (Params, bool) {
	for _, p := range All {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}
