package arch

import (
	"testing"

	"mproxy/internal/sim"
)

func TestAllDesignPoints(t *testing.T) {
	if len(All) != 6 {
		t.Fatalf("design points = %d", len(All))
	}
	order := []string{"HW0", "HW1", "MP0", "MP1", "MP2", "SW1"}
	for i, a := range All {
		if a.Name != order[i] {
			t.Fatalf("order[%d] = %s", i, a.Name)
		}
	}
}

func TestByName(t *testing.T) {
	a, ok := ByName("MP2")
	if !ok || a.Name != "MP2" || a.Kind != Proxy {
		t.Fatalf("MP2 lookup = %+v %v", a, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom design point")
	}
}

func TestKindStrings(t *testing.T) {
	if CustomHW.String() != "custom-hardware" || Proxy.String() != "message-proxy" ||
		Syscall.String() != "system-call" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must still format")
	}
}

func TestPollDelayFormula(t *testing.T) {
	// P = PollBase + 2*AgentMiss: 3.0us on MP0 (the measured Table 1
	// value), 3.0 on MP1, 1.5 on MP2 (cache update shrinks the scan).
	if got := MP0.PollDelay(); got != sim.Micros(3.0) {
		t.Errorf("MP0 P = %v", got)
	}
	if got := MP1.PollDelay(); got != sim.Micros(3.0) {
		t.Errorf("MP1 P = %v", got)
	}
	if got := MP2.PollDelay(); got != sim.Micros(1.5) {
		t.Errorf("MP2 P = %v", got)
	}
	// Non-proxy architectures have no polling delay.
	if HW1.PollDelay() != 0 || SW1.PollDelay() != 0 {
		t.Error("non-proxy P must be zero")
	}
}

func TestInstrScalesWithSpeed(t *testing.T) {
	if got := MP0.Instr(1.0); got != sim.Micros(1.0) {
		t.Errorf("S=1 instr = %v", got)
	}
	if got := MP1.Instr(1.0); got != sim.Micros(0.5) {
		t.Errorf("S=2 instr = %v", got)
	}
}

func TestXferTime(t *testing.T) {
	// 4096 bytes at 150 MB/s = 27.31 us.
	got := XferTime(4096, 150)
	want := sim.Micros(4096.0 / 150.0)
	if got != want {
		t.Errorf("xfer = %v, want %v", got, want)
	}
	if XferTime(0, 150) != 0 || XferTime(100, 0) != 0 {
		t.Error("degenerate transfers must cost nothing")
	}
}

func TestPages(t *testing.T) {
	a := MP1
	cases := map[int]int{0: 0, 1: 1, 4096: 1, 4097: 2, 8192: 2, 3 * 4096: 3}
	for n, want := range cases {
		if got := a.Pages(n); got != want {
			t.Errorf("pages(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDesignPointInvariants(t *testing.T) {
	for _, a := range All {
		if a.CacheMiss <= 0 || a.Uncached <= 0 || a.Speed <= 0 {
			t.Errorf("%s: non-positive primitives", a.Name)
		}
		if a.AgentMiss > a.CacheMiss {
			t.Errorf("%s: agent miss exceeds cache miss", a.Name)
		}
		if a.DMABW <= 0 || a.NetBW <= 0 || a.PIOBW <= 0 || a.MemBW <= 0 {
			t.Errorf("%s: non-positive bandwidths", a.Name)
		}
		if a.NetBW < a.DMABW {
			t.Errorf("%s: network slower than DMA would double-serialize pages", a.Name)
		}
		switch a.Kind {
		case CustomHW:
			if !a.Prepinned || a.PinPerPage != 0 {
				t.Errorf("%s: custom hardware must be pre-pinned", a.Name)
			}
			if a.AdapterOvh <= 0 {
				t.Errorf("%s: missing adapter overhead", a.Name)
			}
		case Proxy:
			if a.Prepinned || a.PinPerPage <= 0 {
				t.Errorf("%s: proxies pin dynamically", a.Name)
			}
			if a.VMAtt <= 0 {
				t.Errorf("%s: proxies pay vm_att", a.Name)
			}
		case Syscall:
			if a.SyscallOvh <= 0 || a.InterruptOvh <= 0 {
				t.Errorf("%s: missing protection overheads", a.Name)
			}
		}
		if a.PageSize != 4096 || a.PIOCutoff <= 0 || a.PIOCutoff > a.PageSize {
			t.Errorf("%s: page/PIO configuration out of range", a.Name)
		}
	}
}

func TestGenerationOrdering(t *testing.T) {
	// Next-generation points are uniformly faster in bandwidth and
	// latency than today's.
	if !(HW1.DMABW > HW0.DMABW && MP1.DMABW > MP0.DMABW) {
		t.Error("DMA bandwidth must improve across generations")
	}
	if !(MP1.NetLatency < MP0.NetLatency) {
		t.Error("network latency must improve across generations")
	}
	// MP2 differs from MP1 only in the agent-miss latency.
	mp2 := MP2
	mp2.Name = MP1.Name
	mp2.AgentMiss = MP1.AgentMiss
	if mp2 != MP1 {
		t.Error("MP2 must be MP1 plus the cache-update primitive only")
	}
}
