// Package arch defines the communication-architecture design points compared
// in the paper (Table 3): custom hardware (HW0, HW1), message proxies (MP0,
// MP1, MP2) and system-call based communication (SW1), plus the machine
// primitives each simulation model is parameterized by.
//
// The published Table 3 lists cache-miss latency, compute-processor overhead,
// message-proxy overhead, hardware-adapter overhead, DMA bandwidth, network
// latency and network bandwidth per design point. Where a value is not
// legible in the archival scan, it is reconstructed so that the simulated
// micro-benchmarks reproduce the published Table 4; every reconstructed
// value is noted below and validated by tests against Table 4.
package arch

import (
	"fmt"

	"mproxy/internal/sim"
)

// Kind selects the protection mechanism of a design point.
type Kind int

const (
	// CustomHW models protection in network-adapter hardware
	// (SHRIMP / Memory Channel style virtual-memory-mapped communication).
	CustomHW Kind = iota
	// Proxy models a message proxy: a dedicated SMP processor polling
	// per-user shared-memory command queues and the network input FIFO.
	Proxy
	// Syscall models OS-mediated communication: system calls on the send
	// side, interrupts on the receive side, protocol run on compute
	// processors.
	Syscall
)

func (k Kind) String() string {
	switch k {
	case CustomHW:
		return "custom-hardware"
	case Proxy:
		return "message-proxy"
	case Syscall:
		return "system-call"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params parameterizes one design point. Latency primitives follow the
// paper's Section 4 notation: C (cache miss), U (uncached access), V
// (vm_att/vm_det), S (processor speed as a multiple of 75 MHz), P (polling
// delay), L (network latency).
type Params struct {
	Name string
	Kind Kind

	// CacheMiss is C: the latency of a cache miss within the SMP.
	CacheMiss sim.Time
	// AgentMiss is the miss latency for cache lines shared between the
	// communication agent and a compute processor (command-queue entries,
	// synchronization flags, user data buffers). Equal to CacheMiss except
	// under MP2's direct cache-update primitive, which reduces it to
	// 0.25 us (Section 5.1).
	AgentMiss sim.Time
	// Uncached is U: an uncached (programmed-I/O) access to the adapter.
	Uncached sim.Time
	// VMAtt is V: one vm_att or vm_det kernel cross-memory attach.
	VMAtt sim.Time
	// Speed is S: agent instruction speed as a multiple of a 75 MHz
	// PowerPC 601; fixed instruction sequences cost us/S.
	Speed float64
	// PollBase is the part of the proxy polling delay P that does not
	// scale with AgentMiss; P = PollBase + 2*AgentMiss (scanning the
	// command-queue head and the shared non-empty bit vector).
	PollBase sim.Time

	// AdapterOvh is the per-operation occupancy of the custom hardware
	// adapter's protocol engine (Table 3 "Hardware Adapter Overhead").
	AdapterOvh sim.Time
	// ComputeOvh is the compute-processor cost of submitting one command
	// to custom hardware (Table 3 "Compute Processor Overhead").
	ComputeOvh sim.Time

	// SyscallOvh and InterruptOvh are the SW1 protection costs; the paper
	// assumes an aggressive 6.5 us each.
	SyscallOvh   sim.Time
	InterruptOvh sim.Time
	// ProtocolOvh is the kernel protocol-execution time charged to a
	// compute processor per operation under SW1.
	ProtocolOvh sim.Time

	// DMABW is the DMA engine streaming bandwidth (MB/s).
	DMABW float64
	// NetBW is the network link bandwidth (MB/s).
	NetBW float64
	// PIOBW is the sustained programmed-I/O copy bandwidth (MB/s).
	PIOBW float64
	// MemBW is the sustained memory-to-memory copy bandwidth within an SMP
	// (MB/s), used for intra-node communication through shared memory.
	MemBW float64
	// NetLatency is L.
	NetLatency sim.Time

	// PinPerPage is the cost of dynamically pinning one page before DMA
	// (10 us, "a typical number for Unix-based systems"); zero when
	// Prepinned.
	PinPerPage sim.Time
	// PageSize is the VM page size in bytes.
	PageSize int
	// PIOCutoff is the message size (bytes) at or below which data moves
	// by programmed I/O; larger messages pin pages and use DMA.
	PIOCutoff int
	// Prepinned marks custom hardware, whose buffers are permanently
	// pinned at setup time (the paper's deliberate bias toward HW).
	Prepinned bool
}

// PollDelay returns P for this design point.
func (p Params) PollDelay() sim.Time {
	if p.Kind != Proxy {
		return 0
	}
	return p.PollBase + 2*p.AgentMiss
}

// Instr returns the cost of a fixed instruction sequence that takes us
// microseconds on a 75 MHz processor, scaled by this design point's agent
// speed S.
func (p Params) Instr(us float64) sim.Time {
	return sim.Micros(us / p.Speed)
}

// XferTime returns the time to move n bytes at mbps megabytes per second.
func XferTime(n int, mbps float64) sim.Time {
	if n <= 0 || mbps <= 0 {
		return 0
	}
	return sim.Micros(float64(n) / mbps)
}

// Pages returns the number of pages n bytes span (assuming page-aligned
// buffers, the best case the paper also assumes).
func (p Params) Pages(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.PageSize - 1) / p.PageSize
}
