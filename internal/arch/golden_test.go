package arch

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "re-bless the golden design-point file")

// renderPoints writes every Table 3 design point's parameters in a stable
// text form. The golden copy under testdata/ locks the published (and
// reconstructed) values; any drift fails until deliberately re-blessed.
func renderPoints() string {
	var b strings.Builder
	b.WriteString("Table 3 design points (latencies in simulated time, bandwidths MB/s)\n\n")
	for _, p := range All {
		fmt.Fprintf(&b, "%s (%s)\n", p.Name, p.Kind)
		fmt.Fprintf(&b, "  CacheMiss    %-10v AgentMiss    %-10v Uncached  %v\n",
			p.CacheMiss, p.AgentMiss, p.Uncached)
		fmt.Fprintf(&b, "  VMAtt        %-10v Speed        %-10.2f PollDelay %v\n",
			p.VMAtt, p.Speed, p.PollDelay())
		fmt.Fprintf(&b, "  AdapterOvh   %-10v ComputeOvh   %-10v\n", p.AdapterOvh, p.ComputeOvh)
		fmt.Fprintf(&b, "  SyscallOvh   %-10v InterruptOvh %-10v ProtocolOvh %v\n",
			p.SyscallOvh, p.InterruptOvh, p.ProtocolOvh)
		fmt.Fprintf(&b, "  DMABW        %-10.0f NetBW        %-10.0f PIOBW     %-8.0f MemBW %.0f\n",
			p.DMABW, p.NetBW, p.PIOBW, p.MemBW)
		fmt.Fprintf(&b, "  NetLatency   %-10v PinPerPage   %-10v Prepinned %v\n",
			p.NetLatency, p.PinPerPage, p.Prepinned)
		fmt.Fprintf(&b, "  PageSize     %-10d PIOCutoff    %d\n\n", p.PageSize, p.PIOCutoff)
	}
	return b.String()
}

func TestGoldenDesignPoints(t *testing.T) {
	got := renderPoints()
	path := filepath.Join("testdata", "design_points.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("blessed %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to bless): %v", err)
	}
	if got != string(want) {
		t.Errorf("design-point parameters diverged from testdata/design_points.golden.\n"+
			"got:\n%s\nwant:\n%s\n"+
			"Only re-bless (go test ./internal/arch -update) for a deliberate change.",
			got, string(want))
	}
}
