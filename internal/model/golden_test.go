package model

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "re-bless the golden table files")

// renderTables writes the published constants of Section 4 — Table 1's
// machine primitives, Table 2's component-by-component GET trace, the PUT
// trace, the closed-form latency equations and the protection-cost
// decomposition — in a stable text form. The golden copy under testdata/
// locks the latency model: any edit to a coefficient fails this test until
// deliberately re-blessed.
func renderTables() string {
	var b strings.Builder
	m := G30()
	fmt.Fprintf(&b, "Table 1: primitive operations on the IBM G30 (us)\n")
	fmt.Fprintf(&b, "  C (cache miss)        %.3f\n", m.C)
	fmt.Fprintf(&b, "  U (uncached access)   %.3f\n", m.U)
	fmt.Fprintf(&b, "  V (vm_att/vm_det)     %.3f\n", m.V)
	fmt.Fprintf(&b, "  S (processor speed)   %.3f\n", m.S)
	fmt.Fprintf(&b, "  P (polling delay)     %.3f\n", m.P)
	fmt.Fprintf(&b, "  L (network transit)   %.3f\n", m.L)
	b.WriteString("\n")
	for _, tr := range []struct {
		name string
		t    Trace
		lat  float64
		prot float64
	}{
		{"Table 2: one-word GET", GETTrace(), m.GETLatency(), m.GETProtectionCost()},
		{"one-word PUT", PUTTrace(), m.PUTLatency(), m.PUTProtectionCost()},
	} {
		fmt.Fprintf(&b, "%s\n", tr.name)
		for _, s := range tr.t {
			fmt.Fprintf(&b, "  %-22s %-42s %-18s %6.2f\n",
				s.Agent, s.Op, s.Symbolic(), s.Cost(m))
		}
		tot := tr.t.Totals()
		fmt.Fprintf(&b, "  %-22s %-42s %-18s %6.2f\n", "", "total", tot.Symbolic(), tr.t.Total(m))
		fmt.Fprintf(&b, "  closed form        %6.2f us\n", tr.lat)
		fmt.Fprintf(&b, "  protection cost    %6.2f us (syscall: %.1f GET / %.1f PUT)\n\n",
			tr.prot, SyscallGETProtectionCost, SyscallPUTProtectionCost)
	}
	return b.String()
}

func TestGoldenTables(t *testing.T) {
	got := renderTables()
	path := filepath.Join("testdata", "tables.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("blessed %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to bless): %v", err)
	}
	if got != string(want) {
		t.Errorf("published model constants diverged from testdata/tables.golden.\n"+
			"got:\n%s\nwant:\n%s\n"+
			"Only re-bless (go test ./internal/model -update) for a deliberate model change.",
			got, string(want))
	}
}
