package model

// Phase-level latency predictions. Where the closed forms (GETLatency,
// PUTLatency) give one number, the functions below give the Table 2
// grouping the span assembler measures: submission, command-queue wait,
// agent service, wire, input-FIFO wait, delivery. Two conventions differ
// from the closed forms, matching what the simulator's KOpDone timestamp
// observes:
//
//   - Predictions are truncated at the data deposit: the closed forms
//     include setting the synchronization registers and the user's final
//     flag read (PUT: 7C total; here 6 misses — GET: 10C; here 7), which
//     happen at or after the instant the measurement ends.
//   - Predictions carry the size-dependent terms the one-word closed
//     forms fold into constants: programmed-I/O copy time for the payload
//     and wire serialization of header+payload, so they stay comparable
//     to measurements at any PIO-range message size.
type PhaseCost struct {
	Phase string  `json:"phase"`
	Us    float64 `json:"us"`
}

// Total sums a phase list in microseconds.
func Total(phases []PhaseCost) float64 {
	var t float64
	for _, p := range phases {
		t += p.Us
	}
	return t
}

// PhasePrimitives extends the Table 1 machine parameters with the agent
// miss time and the bandwidth terms needed for per-phase, size-aware
// predictions across all three architectures. All times in microseconds,
// bandwidths in MB/s.
type PhasePrimitives struct {
	Primitives
	// A is the miss time on lines shared between agent and compute
	// processor (C, except under MP2's cache-update primitive).
	A float64
	// PIOMBps is the programmed-I/O copy bandwidth; NetMBps the link
	// serialization bandwidth; HeaderBytes the packet header size.
	PIOMBps     float64
	NetMBps     float64
	HeaderBytes int
	// AdapterOvh/ComputeOvh parameterize the custom-hardware points.
	AdapterOvh float64
	ComputeOvh float64
	// Syscall/Interrupt/Protocol parameterize the system-call point.
	Syscall   float64
	Interrupt float64
	Protocol  float64
}

// PioUs returns the programmed-I/O time for n payload bytes.
func (m PhasePrimitives) PioUs(n int) float64 {
	if n <= 0 || m.PIOMBps <= 0 {
		return 0
	}
	return float64(n) / m.PIOMBps
}

// SerUs returns wire serialization time for a packet of n payload bytes
// (header included).
func (m PhasePrimitives) SerUs(n int) float64 {
	if m.NetMBps <= 0 {
		return 0
	}
	return float64(m.HeaderBytes+n) / m.NetMBps
}

// ProxyPUTPhases predicts the phase breakdown of an n-byte PUT (n within
// the PIO range) between two message proxies.
func (m PhasePrimitives) ProxyPUTPhases(n int) []PhaseCost {
	return []PhaseCost{
		{"submit", 2*m.A + 0.2/m.S},
		{"cmdq-wait", m.P},
		{"agent-service", 2*m.A + 3*m.U + m.V + 1.1/m.S + m.PioUs(n)},
		{"wire", m.SerUs(n) + m.L},
		{"input-queue", m.P},
		{"deliver", m.C + m.A + m.U + m.V + 0.9/m.S + m.PioUs(n)},
	}
}

// ProxyGETPhases predicts the phase breakdown of an n-byte GET through
// two message proxies; service, wire and input phases sum both hops.
func (m PhasePrimitives) ProxyGETPhases(n int) []PhaseCost {
	return []PhaseCost{
		{"submit", 2*m.A + 0.2/m.S},
		{"cmdq-wait", m.P},
		{"agent-service", 2*m.A + m.C + 2*m.V + 5*m.U + 2.9/m.S + m.PioUs(n)},
		{"wire", m.SerUs(0) + m.SerUs(n) + 2*m.L},
		{"input-queue", 2 * m.P},
		{"deliver", m.C + m.A + m.U + m.V + 0.5/m.S + m.PioUs(n)},
	}
}

// HWPUTPhases predicts the phase breakdown of an n-byte PUT on custom
// hardware (no polling delay: command and input queues drain
// continuously, so their phases are zero).
func (m PhasePrimitives) HWPUTPhases(n int) []PhaseCost {
	return []PhaseCost{
		{"submit", m.ComputeOvh},
		{"cmdq-wait", 0},
		{"agent-service", m.AdapterOvh + m.C + m.PioUs(n)},
		{"wire", m.SerUs(n) + m.L},
		{"input-queue", 0},
		{"deliver", m.AdapterOvh + m.PioUs(n) + m.C},
	}
}

// HWGETPhases predicts the phase breakdown of an n-byte GET on custom
// hardware.
func (m PhasePrimitives) HWGETPhases(n int) []PhaseCost {
	return []PhaseCost{
		{"submit", m.ComputeOvh},
		{"cmdq-wait", 0},
		{"agent-service", 2*m.AdapterOvh + m.C + m.PioUs(n)},
		{"wire", m.SerUs(0) + m.SerUs(n) + 2*m.L},
		{"input-queue", 0},
		{"deliver", m.AdapterOvh + m.PioUs(n) + m.C},
	}
}

// SWPUTPhases predicts the phase breakdown of an n-byte PUT under
// system-call communication. The kernel send runs inline on the issuing
// processor (submit); the receive interrupt handler runs to the
// completion signal (deliver). There are no agent queues, so no queue
// phases exist.
func (m PhasePrimitives) SWPUTPhases(n int) []PhaseCost {
	return []PhaseCost{
		{"submit", m.Syscall + m.Protocol + m.C + 2*m.U + m.PioUs(n)},
		{"wire", m.SerUs(n) + m.L},
		{"deliver", m.Interrupt + m.Protocol + m.PioUs(n) + 2*m.C},
	}
}

// SWGETPhases predicts the phase breakdown of an n-byte GET under
// system-call communication. The span assembler can split out only the
// request flight's wire time — the reply is launched from kernel
// interrupt context with no queue boundary to observe — so everything
// after the request's arrival (request handler, reply flight, reply
// handler) lands in deliver, and the prediction groups it the same way.
func (m PhasePrimitives) SWGETPhases(n int) []PhaseCost {
	return []PhaseCost{
		{"submit", m.Syscall + m.Protocol + 2*m.U},
		{"wire", m.SerUs(0) + m.L},
		{"deliver", m.Interrupt + m.Protocol + m.C + m.PioUs(n) + 2*m.U +
			m.SerUs(n) + m.L +
			m.Interrupt + m.Protocol + m.PioUs(n) + 2*m.C},
	}
}
