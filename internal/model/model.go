// Package model implements the analytic message-proxy latency model of
// Section 4 of the paper: the primitive machine operations measured on the
// IBM Model G30 SMPs (Table 1), the component-by-component trace of a
// one-word GET through two message proxies (Table 2), the closed-form GET
// and PUT latency equations, and the protection-cost decomposition.
//
// The model predicts message-proxy performance on any SMP cluster from six
// machine parameters and is used by the simulator's proxy engine so that the
// event-level model and the closed form agree by construction.
package model

import "fmt"

// Primitives holds the machine parameters of the model, in microseconds
// (except S, a pure ratio). Notation follows Table 1.
type Primitives struct {
	C float64 // time to service a cache miss
	U float64 // time for an uncached access
	V float64 // time for one vm_att/vm_det cross-memory attach
	S float64 // processor speed, multiple of 75 MHz
	P float64 // polling delay
	L float64 // network transit time
}

// G30 returns the parameters measured on the paper's pair of IBM Model G30
// SMPs (four 75 MHz PowerPC 601s each, prototype SP2 switch adapter).
// V is reconstructed from the paper's statement that vm_att/vm_det
// contribute about 1.3 us to a GET (three attaches).
func G30() Primitives {
	return Primitives{C: 1.0, U: 0.65, V: 1.3 / 3, S: 1.0, P: 3.0, L: 1.0}
}

// GETLatency returns the one-word GET latency in microseconds:
//
//	10C + 6U + 3V + 3.6/S + 3P + 2L
func (m Primitives) GETLatency() float64 {
	return 10*m.C + 6*m.U + 3*m.V + 3.6/m.S + 3*m.P + 2*m.L
}

// PUTLatency returns the one-word PUT latency in microseconds:
//
//	7C + 4U + 2V + 2.2/S + 2P + L
func (m Primitives) PUTLatency() float64 {
	return 7*m.C + 4*m.U + 2*m.V + 2.2/m.S + 2*m.P + m.L
}

// GETProtectionCost returns the protection cost a message proxy imposes on
// a GET: 3C + 3V + 3P (= 14 us on the G30). This is the price of
// communicating through protected shared-memory command queues rather than
// touching the adapter directly.
func (m Primitives) GETProtectionCost() float64 { return 3*m.C + 3*m.V + 3*m.P }

// PUTProtectionCost returns the protection cost for a PUT: 3C + 2V + 2P
// (= 10.3 us on the G30).
func (m Primitives) PUTProtectionCost() float64 { return 3*m.C + 2*m.V + 2*m.P }

// Syscall protection costs the paper cites for streamlined system-call
// communication (Thekkath et al.), for comparison.
const (
	SyscallGETProtectionCost = 23.0
	SyscallPUTProtectionCost = 19.0
)

// Agent identifies who executes a step of the critical path.
type Agent int

const (
	User Agent = iota
	LocalProxy
	Network
	RemoteProxy
)

func (a Agent) String() string {
	switch a {
	case User:
		return "User"
	case LocalProxy:
		return "Message Proxy (local)"
	case Network:
		return "Network"
	case RemoteProxy:
		return "Message Proxy (remote)"
	default:
		return fmt.Sprintf("Agent(%d)", int(a))
	}
}

// Step is one row of a critical-path trace: a primitive operation with its
// symbolic cost aC + bU + cV + i/S + pP + lL.
type Step struct {
	Agent Agent
	Op    string
	C     int     // cache misses
	U     int     // uncached accesses
	V     int     // vm_att/vm_det calls
	Instr float64 // fixed instruction time at 75 MHz (us)
	P     int     // polling delays
	L     int     // network transits
}

// Cost evaluates the step under m, in microseconds.
func (s Step) Cost(m Primitives) float64 {
	return float64(s.C)*m.C + float64(s.U)*m.U + float64(s.V)*m.V +
		s.Instr/m.S + float64(s.P)*m.P + float64(s.L)*m.L
}

// Symbolic renders the step's cost formula in the paper's notation.
func (s Step) Symbolic() string {
	out := ""
	add := func(n int, sym string) {
		if n == 0 {
			return
		}
		if out != "" {
			out += " + "
		}
		if n == 1 {
			out += sym
		} else {
			out += fmt.Sprintf("%d%s", n, sym)
		}
	}
	add(s.C, "C")
	add(s.U, "U")
	add(s.V, "V")
	if s.Instr != 0 {
		if out != "" {
			out += " + "
		}
		out += fmt.Sprintf("%.2g/S", s.Instr)
	}
	add(s.P, "P")
	add(s.L, "L")
	if out == "" {
		out = "0"
	}
	return out
}

// Trace is a critical-path decomposition (Table 2 reproduces GETTrace).
type Trace []Step

// Total sums the trace under m, in microseconds.
func (t Trace) Total(m Primitives) float64 {
	var sum float64
	for _, s := range t {
		sum += s.Cost(m)
	}
	return sum
}

// Totals returns the summed symbolic coefficients (C, U, V, Instr, P, L).
func (t Trace) Totals() Step {
	var tot Step
	tot.Op = "total"
	for _, s := range t {
		tot.C += s.C
		tot.U += s.U
		tot.V += s.V
		tot.Instr += s.Instr
		tot.P += s.P
		tot.L += s.L
	}
	return tot
}

// GETTrace returns the latency components of the critical path of a
// one-word GET (Table 2). The symbolic totals reduce exactly to the GET
// latency equation.
func GETTrace() Trace {
	return Trace{
		{Agent: User, Op: "enq command, (read miss, write miss)", C: 2, Instr: 0.2},
		{Agent: LocalProxy, Op: "polling delay", P: 1},
		{Agent: LocalProxy, Op: "dequeue entry, (read miss)", C: 1},
		{Agent: LocalProxy, Op: "decode command, allocate CCB", Instr: 0.5},
		{Agent: LocalProxy, Op: "dispatch to send routine", Instr: 0.1},
		{Agent: LocalProxy, Op: "set up network packet header", U: 1, Instr: 0.6},
		{Agent: LocalProxy, Op: "launch packet", U: 1},
		{Agent: Network, Op: "transit time", L: 1},
		{Agent: RemoteProxy, Op: "polling delay", P: 1},
		{Agent: RemoteProxy, Op: "read input packet header, (read miss)", C: 1},
		{Agent: RemoteProxy, Op: "decode packet, dispatch to handler", Instr: 0.4},
		{Agent: RemoteProxy, Op: "compute remote address, check validity", Instr: 0.1},
		{Agent: RemoteProxy, Op: "vm_att to remote address", V: 1},
		{Agent: RemoteProxy, Op: "address and packet size check", Instr: 0.5},
		{Agent: RemoteProxy, Op: "set up network packet header", U: 1, Instr: 0.7},
		{Agent: RemoteProxy, Op: "fill in data, read miss", C: 1, U: 1},
		{Agent: RemoteProxy, Op: "set remote sync. register, (write miss)", C: 1},
		{Agent: RemoteProxy, Op: "launch packet", U: 1},
		{Agent: Network, Op: "transit time", L: 1},
		{Agent: LocalProxy, Op: "polling delay", P: 1},
		{Agent: LocalProxy, Op: "read input packet header, (read miss)", C: 1},
		{Agent: LocalProxy, Op: "decode packet, dispatch to handler", Instr: 0.3},
		{Agent: LocalProxy, Op: "find local addr in CCB, check validity", Instr: 0.2},
		{Agent: LocalProxy, Op: "vm_att to local address space", V: 1},
		{Agent: LocalProxy, Op: "read packet payload", U: 1},
		{Agent: LocalProxy, Op: "copy data to destination, (write miss)", C: 1},
		{Agent: LocalProxy, Op: "set local sync. register, (write miss)", C: 1},
		{Agent: User, Op: "read local sync. register, (read miss)", C: 1},
		{Agent: LocalProxy, Op: "vm_att to FIFO queue", V: 1},
	}
}

// PUTTrace returns the critical path of a one-word PUT; the symbolic totals
// reduce exactly to the PUT latency equation.
func PUTTrace() Trace {
	return Trace{
		{Agent: User, Op: "enq command, (read miss, write miss)", C: 2, Instr: 0.2},
		{Agent: LocalProxy, Op: "polling delay", P: 1},
		{Agent: LocalProxy, Op: "dequeue entry, (read miss)", C: 1},
		{Agent: LocalProxy, Op: "decode command", Instr: 0.5},
		{Agent: LocalProxy, Op: "vm_att to local source", V: 1},
		{Agent: LocalProxy, Op: "set up network packet header", U: 1, Instr: 0.6},
		{Agent: LocalProxy, Op: "read source data, (read miss)", C: 1, U: 1},
		{Agent: LocalProxy, Op: "launch packet", U: 1},
		{Agent: Network, Op: "transit time", L: 1},
		{Agent: RemoteProxy, Op: "polling delay", P: 1},
		{Agent: RemoteProxy, Op: "read input packet header, (read miss)", C: 1},
		{Agent: RemoteProxy, Op: "decode packet, dispatch to handler", Instr: 0.4},
		{Agent: RemoteProxy, Op: "vm_att to remote address", V: 1},
		{Agent: RemoteProxy, Op: "address and packet size check", Instr: 0.5},
		{Agent: RemoteProxy, Op: "read packet payload", U: 1},
		{Agent: RemoteProxy, Op: "copy data to destination, (write miss)", C: 1},
		{Agent: RemoteProxy, Op: "set remote sync. register, (write miss)", C: 1},
	}
}
