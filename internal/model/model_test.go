package model

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestG30MeasuredLatencies(t *testing.T) {
	// Section 4.1: measured one-way PUT latency is 18.5 + L us and GET is
	// 27.5 + L us (the model gives 2L for GET's round trip; the measured
	// quote folds one L into the constant). Check the model against the
	// measured constants at L = 1.
	m := G30()
	if got := m.PUTLatency(); !close(got, 18.5+m.L, 0.8) {
		t.Errorf("PUT latency = %.2f us, want ~%.2f", got, 18.5+m.L)
	}
	if got := m.GETLatency(); !close(got, 27.5+2*m.L, 0.8) {
		t.Errorf("GET latency = %.2f us, want ~%.2f", got, 27.5+2*m.L)
	}
}

func TestProtectionCosts(t *testing.T) {
	// Section 4.1: proxies impose ~14 us protection cost on GET and
	// ~10.3 us on PUT; streamlined syscalls impose 23 and 19 us.
	m := G30()
	if got := m.GETProtectionCost(); !close(got, 14, 1.0) {
		t.Errorf("GET protection cost = %.2f, want ~14", got)
	}
	if got := m.PUTProtectionCost(); !close(got, 10.3, 1.0) {
		t.Errorf("PUT protection cost = %.2f, want ~10.3", got)
	}
	if m.GETProtectionCost() >= SyscallGETProtectionCost {
		t.Error("proxy GET protection cost should beat syscalls")
	}
	if m.PUTProtectionCost() >= SyscallPUTProtectionCost {
		t.Error("proxy PUT protection cost should beat syscalls")
	}
}

func TestGETTraceMatchesEquation(t *testing.T) {
	// Table 2's components must sum to exactly 10C + 6U + 3V + 3.6/S +
	// 3P + 2L, for any machine parameters.
	tot := GETTrace().Totals()
	if tot.C != 10 || tot.U != 6 || tot.V != 3 || tot.P != 3 || tot.L != 2 {
		t.Fatalf("GET trace totals = %+v, want 10C 6U 3V 3P 2L", tot)
	}
	if !close(tot.Instr, 3.6, 1e-9) {
		t.Fatalf("GET trace instruction time = %v, want 3.6", tot.Instr)
	}
}

func TestPUTTraceMatchesEquation(t *testing.T) {
	tot := PUTTrace().Totals()
	if tot.C != 7 || tot.U != 4 || tot.V != 2 || tot.P != 2 || tot.L != 1 {
		t.Fatalf("PUT trace totals = %+v, want 7C 4U 2V 2P 1L", tot)
	}
	if !close(tot.Instr, 2.2, 1e-9) {
		t.Fatalf("PUT trace instruction time = %v, want 2.2", tot.Instr)
	}
}

func TestPropertyTraceTotalEqualsEquation(t *testing.T) {
	// Property: for arbitrary positive machine parameters, evaluating the
	// trace step by step equals the closed-form equation.
	f := func(c, u, v, p, l uint8, s uint8) bool {
		m := Primitives{
			C: float64(c)/16 + 0.1, U: float64(u)/16 + 0.1,
			V: float64(v)/16 + 0.1, P: float64(p)/8 + 0.1,
			L: float64(l)/8 + 0.1, S: float64(s%8) + 1,
		}
		return close(GETTrace().Total(m), m.GETLatency(), 1e-6) &&
			close(PUTTrace().Total(m), m.PUTLatency(), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFasterProcessorReducesLatency(t *testing.T) {
	// Prediction use-case: doubling S (MP0 -> MP1 proxy processor) must
	// shave exactly half the instruction time.
	m := G30()
	m2 := m
	m2.S = 2
	if got, want := m.GETLatency()-m2.GETLatency(), 1.8; !close(got, want, 1e-9) {
		t.Errorf("S=2 saves %.3f us on GET, want %.3f", got, want)
	}
}

func TestCacheUpdatePrediction(t *testing.T) {
	// Section 5's motivation for MP2: dropping C from 1.0 to 0.25 removes
	// 7.5 us from a GET (10 misses) and 5.25 us from a PUT (7 misses).
	m := G30()
	m2 := m
	m2.C = 0.25
	if got := m.GETLatency() - m2.GETLatency(); !close(got, 7.5, 1e-9) {
		t.Errorf("cache update saves %.3f on GET, want 7.5", got)
	}
	if got := m.PUTLatency() - m2.PUTLatency(); !close(got, 5.25, 1e-9) {
		t.Errorf("cache update saves %.3f on PUT, want 5.25", got)
	}
}

func TestVMAttContribution(t *testing.T) {
	// Section 4.1: vm_att/vm_det contribute about 1.3 us to the GET
	// critical path (3V); a 64-bit PowerPC could remove this entirely.
	m := G30()
	if got := 3 * m.V; !close(got, 1.3, 0.01) {
		t.Errorf("3V = %.3f, want ~1.3", got)
	}
}

func TestSymbolicRendering(t *testing.T) {
	s := Step{C: 2, Instr: 0.2}
	if got := s.Symbolic(); got != "2C + 0.2/S" {
		t.Errorf("Symbolic = %q", got)
	}
	s = Step{U: 1}
	if got := s.Symbolic(); got != "U" {
		t.Errorf("Symbolic = %q", got)
	}
	if got := (Step{}).Symbolic(); got != "0" {
		t.Errorf("Symbolic = %q", got)
	}
}

func TestAgentString(t *testing.T) {
	if User.String() != "User" || Network.String() != "Network" {
		t.Error("agent names wrong")
	}
	if LocalProxy.String() == RemoteProxy.String() {
		t.Error("proxy agents indistinguishable")
	}
}

func TestTraceAgentsAlternate(t *testing.T) {
	// The GET critical path crosses the network exactly twice, and the
	// network steps separate local from remote proxy work.
	var transits int
	for _, s := range GETTrace() {
		if s.Agent == Network {
			transits++
			if s.L != 1 {
				t.Errorf("network step without transit: %+v", s)
			}
		}
	}
	if transits != 2 {
		t.Errorf("GET crosses network %d times, want 2", transits)
	}
}
