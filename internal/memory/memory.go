// Package memory models the protected address spaces of the communication
// layer. Remote addresses in the RMA/RQ primitives are relative to an
// address-space segment named by a logical identifier (asid); the mapping is
// established at program initialization and the system faults a process that
// accesses a segment without permission — exactly the protection contract
// the message proxy enforces in the paper.
package memory

import (
	"fmt"

	"mproxy/internal/sim"
)

// ASID is a logical address-space segment identifier, unique cluster-wide.
type ASID int32

// Addr names a byte offset within a segment.
type Addr struct {
	Seg ASID
	Off int
}

func (a Addr) String() string { return fmt.Sprintf("asid%d+%d", a.Seg, a.Off) }

// Plus returns the address off bytes past a.
func (a Addr) Plus(off int) Addr { return Addr{a.Seg, a.Off + off} }

// Segment is a contiguous region of a process's address space exported for
// remote access. Only the owner and ranks it has granted may address it.
type Segment struct {
	ID    ASID
	Owner int // global rank of the owning process
	Data  []byte
	// Ranks below 64 — every configuration in the paper — are tracked in
	// a bitmask so the per-transfer protection check stays off the heap
	// and out of the map code; larger ranks spill to the map. world
	// short-circuits both for world-readable segments, which keeps a
	// 1000-node serving cluster's grants O(1) instead of O(ranks) map
	// inserts.
	aclLow uint64
	acl    map[int]bool
	world  bool
}

// Grant permits rank to address this segment.
func (s *Segment) Grant(rank int) {
	if rank >= 0 && rank < 64 {
		s.aclLow |= 1 << rank
		return
	}
	if s.acl == nil {
		s.acl = make(map[int]bool)
	}
	s.acl[rank] = true
}

// GrantAll permits every rank in [0, n) to address this segment.
func (s *Segment) GrantAll(n int) {
	for r := 0; r < n; r++ {
		s.Grant(r)
	}
}

// GrantWorld permits every rank, present and future, in O(1).
func (s *Segment) GrantWorld() { s.world = true }

// Revoke removes rank's permission. The owner's access cannot be revoked.
func (s *Segment) Revoke(rank int) {
	if rank >= 0 && rank < 64 {
		s.aclLow &^= 1 << rank
		return
	}
	delete(s.acl, rank)
}

// Allowed reports whether rank may address this segment.
func (s *Segment) Allowed(rank int) bool {
	if s.world || rank == s.Owner {
		return true
	}
	if rank >= 0 && rank < 64 {
		return s.aclLow&(1<<rank) != 0
	}
	return s.acl[rank]
}

// Addr returns the address of byte off within the segment.
func (s *Segment) Addr(off int) Addr { return Addr{s.ID, off} }

// Fault is the error produced by a protection violation: an access to a
// segment the accessing process was not granted, or an out-of-bounds
// transfer. The communication agents check protection before moving data,
// mirroring the proxy's "address and packet size check".
type Fault struct {
	Rank int    // offending process
	Seg  ASID   // target segment
	Op   string // operation attempted
	Why  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("fault: rank %d %s asid %d: %s", f.Rank, f.Op, f.Seg, f.Why)
}

// FlagID names a synchronization flag within a process.
type FlagID int32

// FlagRef is a cluster-wide reference to a synchronization flag (the lsync
// and rsync arguments of the RMA/RQ primitives).
type FlagRef struct {
	Owner int
	ID    FlagID
}

// Nil reports whether the reference is the zero "no flag" value.
func (f FlagRef) Nil() bool { return f.Owner == 0 && f.ID == 0 }

// QueueID names a remote queue within a process.
type QueueID int32

// QueueRef is a cluster-wide reference to a remote queue.
type QueueRef struct {
	Owner int
	ID    QueueID
}

// RQueue is a remote queue: a receive queue in the owner's address space
// that remote processes ENQ records into and the owner (usually) DEQs from.
type RQueue struct {
	ID     QueueID
	Owner  int
	aclLow uint64 // ranks 0..63, same split as Segment
	acl    map[int]bool
	world  bool

	entries  [][]byte
	getters  []*sim.Proc
	takers   []func([]byte)
	eng      *sim.Engine
	enqueued int64
	maxDepth int
}

// Grant permits rank to enqueue into (or dequeue from) this queue.
func (q *RQueue) Grant(rank int) {
	if rank >= 0 && rank < 64 {
		q.aclLow |= 1 << rank
		return
	}
	if q.acl == nil {
		q.acl = make(map[int]bool)
	}
	q.acl[rank] = true
}

// GrantAll permits every rank in [0, n).
func (q *RQueue) GrantAll(n int) {
	for r := 0; r < n; r++ {
		q.Grant(r)
	}
}

// GrantWorld permits every rank, present and future, in O(1).
func (q *RQueue) GrantWorld() { q.world = true }

// Allowed reports whether rank may operate on this queue.
func (q *RQueue) Allowed(rank int) bool {
	if q.world || rank == q.Owner {
		return true
	}
	if rank >= 0 && rank < 64 {
		return q.aclLow&(1<<rank) != 0
	}
	return q.acl[rank]
}

// Deliver appends one record (called by the communication agent when an ENQ
// message arrives) and wakes a blocked dequeuer. Pending asynchronous
// takers (remote DEQs that found the queue empty) are served first.
func (q *RQueue) Deliver(rec []byte) {
	q.enqueued++
	if len(q.takers) > 0 {
		fn := q.takers[0]
		q.takers = q.takers[1:]
		fn(rec)
		return
	}
	q.entries = append(q.entries, rec)
	if len(q.entries) > q.maxDepth {
		q.maxDepth = len(q.entries)
	}
	if len(q.getters) > 0 {
		p := q.getters[0]
		q.getters = q.getters[1:]
		q.eng.Wake(p)
	}
}

// TakeAsync consumes the head record if one is present, calling fn
// immediately; otherwise fn is queued and called by a future Deliver. The
// communication agents use this to serve remote DEQ requests that race
// ahead of the matching ENQ.
func (q *RQueue) TakeAsync(fn func([]byte)) {
	if rec, ok := q.TryTake(); ok {
		fn(rec)
		return
	}
	q.takers = append(q.takers, fn)
}

// Take removes the head record, blocking p while the queue is empty.
func (q *RQueue) Take(p *sim.Proc) []byte {
	for len(q.entries) == 0 {
		q.getters = append(q.getters, p)
		p.Park()
	}
	rec := q.entries[0]
	q.entries[0] = nil
	q.entries = q.entries[1:]
	return rec
}

// TryTake removes the head record without blocking.
func (q *RQueue) TryTake() ([]byte, bool) {
	if len(q.entries) == 0 {
		return nil, false
	}
	rec := q.entries[0]
	q.entries[0] = nil
	q.entries = q.entries[1:]
	return rec, true
}

// Len returns the number of queued records.
func (q *RQueue) Len() int { return len(q.entries) }

// Enqueued returns the total number of records ever delivered.
func (q *RQueue) Enqueued() int64 { return q.enqueued }

// MaxDepth returns the high-water queue depth.
func (q *RQueue) MaxDepth() int { return q.maxDepth }

// Registry is the cluster-wide map from logical identifiers to segments,
// flags and queues ("the mapping between asid and an address space is
// defined at program initialization time"). Identifiers are allocated
// densely from 1, so the tables are slices indexed by ID — the resolves
// sit on the per-transfer hot path of every agent and every endpoint, and
// a slice index is several times cheaper than a map probe. Slot 0 stays
// empty as the "no such object" sentinel.
type Registry struct {
	eng       *sim.Engine
	nextSeg   ASID
	nextFlag  FlagID
	nextQueue QueueID
	segs      []*Segment
	flags     []flagSlot
	queues    []queueSlot
}

// flagSlot pairs a flag with the owner recorded in its reference: a ref
// forged with the right ID but the wrong owner must not resolve.
type flagSlot struct {
	owner int
	f     *sim.Flag
}

type queueSlot struct {
	owner int
	q     *RQueue
}

// NewRegistry returns an empty registry bound to eng.
func NewRegistry(eng *sim.Engine) *Registry {
	return &Registry{
		eng:    eng,
		segs:   make([]*Segment, 1),
		flags:  make([]flagSlot, 1),
		queues: make([]queueSlot, 1),
	}
}

// NewSegment allocates a segment of size bytes owned by rank owner.
func (r *Registry) NewSegment(owner, size int) *Segment {
	r.nextSeg++
	s := &Segment{ID: r.nextSeg, Owner: owner, Data: make([]byte, size)}
	r.segs = append(r.segs, s)
	return s
}

// Segment resolves an ASID.
func (r *Registry) Segment(id ASID) (*Segment, bool) {
	if id <= 0 || int(id) >= len(r.segs) {
		return nil, false
	}
	return r.segs[id], true
}

// CheckAccess verifies that rank may transfer n bytes at addr, returning a
// Fault otherwise.
func (r *Registry) CheckAccess(rank int, addr Addr, n int, op string) (*Segment, error) {
	s, ok := r.Segment(addr.Seg)
	if !ok {
		return nil, &Fault{Rank: rank, Seg: addr.Seg, Op: op, Why: "no such segment"}
	}
	if !s.Allowed(rank) {
		return nil, &Fault{Rank: rank, Seg: addr.Seg, Op: op, Why: "permission denied"}
	}
	if addr.Off < 0 || n < 0 || addr.Off+n > len(s.Data) {
		return nil, &Fault{Rank: rank, Seg: addr.Seg, Op: op,
			Why: fmt.Sprintf("out of bounds: [%d,%d) of %d", addr.Off, addr.Off+n, len(s.Data))}
	}
	return s, nil
}

// NewFlag allocates a synchronization flag owned by rank owner.
func (r *Registry) NewFlag(owner int) FlagRef {
	r.nextFlag++
	ref := FlagRef{Owner: owner, ID: r.nextFlag}
	r.flags = append(r.flags, flagSlot{owner: owner, f: r.eng.NewFlag()})
	return ref
}

// Flag resolves a flag reference.
func (r *Registry) Flag(ref FlagRef) (*sim.Flag, bool) {
	if ref.ID <= 0 || int(ref.ID) >= len(r.flags) {
		return nil, false
	}
	sl := r.flags[ref.ID]
	if sl.owner != ref.Owner {
		return nil, false
	}
	return sl.f, true
}

// Signal increments a flag (no-op for the nil reference), as the agents do
// on operation completion.
func (r *Registry) Signal(ref FlagRef) {
	if f, ok := r.Flag(ref); ok {
		f.Add(1)
	}
}

// NewQueue allocates a remote queue owned by rank owner.
func (r *Registry) NewQueue(owner int) *RQueue {
	r.nextQueue++
	q := &RQueue{ID: r.nextQueue, Owner: owner, eng: r.eng}
	r.queues = append(r.queues, queueSlot{owner: owner, q: q})
	return q
}

// Queue resolves a queue reference.
func (r *Registry) Queue(ref QueueRef) (*RQueue, bool) {
	if ref.ID <= 0 || int(ref.ID) >= len(r.queues) {
		return nil, false
	}
	sl := r.queues[ref.ID]
	if sl.owner != ref.Owner {
		return nil, false
	}
	return sl.q, true
}

// CheckQueue verifies that rank may operate on the referenced queue.
func (r *Registry) CheckQueue(rank int, ref QueueRef, op string) (*RQueue, error) {
	q, ok := r.Queue(ref)
	if !ok {
		return nil, &Fault{Rank: rank, Seg: ASID(ref.ID), Op: op, Why: "no such queue"}
	}
	if !q.Allowed(rank) {
		return nil, &Fault{Rank: rank, Seg: ASID(ref.ID), Op: op, Why: "queue permission denied"}
	}
	return q, nil
}
