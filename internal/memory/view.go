package memory

import (
	"encoding/binary"
	"math"
)

// Typed views let applications treat a segment's bytes as arrays of
// machine words, the way the paper's Split-C and CRL programs treat the
// regions they communicate through. All views use little-endian layout and
// 8-byte elements so element i of any view lives at byte offset base+8i —
// which is also what the RMA engines transfer.

// WordSize is the element size of all typed views.
const WordSize = 8

// F64 is a float64 view over a segment starting at byte offset base.
type F64 struct {
	seg  *Segment
	base int
	n    int
}

// Float64s returns an n-element float64 view at byte offset base of s.
func Float64s(s *Segment, base, n int) F64 {
	if base < 0 || base+n*WordSize > len(s.Data) {
		panic("memory: float64 view out of segment bounds")
	}
	return F64{s, base, n}
}

// Len returns the element count.
func (v F64) Len() int { return v.n }

// Addr returns the address of element i.
func (v F64) Addr(i int) Addr { return Addr{v.seg.ID, v.base + i*WordSize} }

// Get returns element i.
func (v F64) Get(i int) float64 {
	v.check(i)
	return math.Float64frombits(binary.LittleEndian.Uint64(v.seg.Data[v.base+i*WordSize:]))
}

// Set stores x into element i.
func (v F64) Set(i int, x float64) {
	v.check(i)
	binary.LittleEndian.PutUint64(v.seg.Data[v.base+i*WordSize:], math.Float64bits(x))
}

// Slice returns a view of elements [lo, hi).
func (v F64) Slice(lo, hi int) F64 {
	if lo < 0 || hi < lo || hi > v.n {
		panic("memory: bad slice bounds")
	}
	return F64{v.seg, v.base + lo*WordSize, hi - lo}
}

// Copy copies min(len) elements from src into v (local memory-to-memory
// copy; remote moves go through the RMA engines).
func (v F64) Copy(src F64) int {
	n := v.n
	if src.n < n {
		n = src.n
	}
	copy(v.seg.Data[v.base:v.base+n*WordSize], src.seg.Data[src.base:src.base+n*WordSize])
	return n
}

// Load copies the view into a plain Go slice.
func (v F64) Load() []float64 {
	out := make([]float64, v.n)
	for i := range out {
		out[i] = v.Get(i)
	}
	return out
}

// Store copies a plain Go slice into the view.
func (v F64) Store(xs []float64) {
	if len(xs) > v.n {
		panic("memory: store overflows view")
	}
	for i, x := range xs {
		v.Set(i, x)
	}
}

func (v F64) check(i int) {
	if i < 0 || i >= v.n {
		panic("memory: view index out of range")
	}
}

// I64 is an int64 view over a segment.
type I64 struct {
	seg  *Segment
	base int
	n    int
}

// Int64s returns an n-element int64 view at byte offset base of s.
func Int64s(s *Segment, base, n int) I64 {
	if base < 0 || base+n*WordSize > len(s.Data) {
		panic("memory: int64 view out of segment bounds")
	}
	return I64{s, base, n}
}

// Len returns the element count.
func (v I64) Len() int { return v.n }

// Addr returns the address of element i.
func (v I64) Addr(i int) Addr { return Addr{v.seg.ID, v.base + i*WordSize} }

// Get returns element i.
func (v I64) Get(i int) int64 {
	v.check(i)
	return int64(binary.LittleEndian.Uint64(v.seg.Data[v.base+i*WordSize:]))
}

// Set stores x into element i.
func (v I64) Set(i int, x int64) {
	v.check(i)
	binary.LittleEndian.PutUint64(v.seg.Data[v.base+i*WordSize:], uint64(x))
}

// Slice returns a view of elements [lo, hi).
func (v I64) Slice(lo, hi int) I64 {
	if lo < 0 || hi < lo || hi > v.n {
		panic("memory: bad slice bounds")
	}
	return I64{v.seg, v.base + lo*WordSize, hi - lo}
}

func (v I64) check(i int) {
	if i < 0 || i >= v.n {
		panic("memory: view index out of range")
	}
}

// PutF64 encodes a float64 into an 8-byte record (for queue payloads).
func PutF64(b []byte, x float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(x)) }

// GetF64 decodes a float64 from an 8-byte record.
func GetF64(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// PutI64 encodes an int64 into an 8-byte record.
func PutI64(b []byte, x int64) { binary.LittleEndian.PutUint64(b, uint64(x)) }

// GetI64 decodes an int64 from an 8-byte record.
func GetI64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }
