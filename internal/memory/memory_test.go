package memory

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mproxy/internal/sim"
)

func newReg() *Registry { return NewRegistry(sim.NewEngine()) }

func TestSegmentAllocationAndLookup(t *testing.T) {
	r := newReg()
	s := r.NewSegment(3, 128)
	if s.Owner != 3 || len(s.Data) != 128 {
		t.Fatalf("segment = %+v", s)
	}
	got, ok := r.Segment(s.ID)
	if !ok || got != s {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Segment(999); ok {
		t.Fatal("phantom segment")
	}
}

func TestACLOwnerAlwaysAllowed(t *testing.T) {
	r := newReg()
	s := r.NewSegment(5, 16)
	if !s.Allowed(5) {
		t.Fatal("owner denied")
	}
	if s.Allowed(6) {
		t.Fatal("stranger allowed")
	}
	s.Grant(6)
	if !s.Allowed(6) {
		t.Fatal("grantee denied")
	}
	s.Revoke(6)
	if s.Allowed(6) {
		t.Fatal("revoked rank still allowed")
	}
	// Revoking the owner has no effect.
	s.Revoke(5)
	if !s.Allowed(5) {
		t.Fatal("owner lost access")
	}
}

func TestCheckAccessFaults(t *testing.T) {
	r := newReg()
	s := r.NewSegment(0, 64)
	s.Grant(1)

	if _, err := r.CheckAccess(1, s.Addr(0), 64, "PUT"); err != nil {
		t.Fatalf("legal access faulted: %v", err)
	}
	// Permission fault.
	_, err := r.CheckAccess(2, s.Addr(0), 8, "PUT")
	var f *Fault
	if !errors.As(err, &f) || f.Rank != 2 {
		t.Fatalf("want permission fault, got %v", err)
	}
	// Bounds fault.
	if _, err := r.CheckAccess(0, s.Addr(60), 8, "GET"); err == nil {
		t.Fatal("out-of-bounds access allowed")
	}
	if _, err := r.CheckAccess(0, Addr{Seg: 999}, 1, "GET"); err == nil {
		t.Fatal("access to missing segment allowed")
	}
	if _, err := r.CheckAccess(0, s.Addr(-1), 4, "GET"); err == nil {
		t.Fatal("negative offset allowed")
	}
}

func TestFlagSignal(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry(eng)
	ref := r.NewFlag(0)
	f, ok := r.Flag(ref)
	if !ok {
		t.Fatal("flag not registered")
	}
	r.Signal(ref)
	r.Signal(ref)
	if f.Value() != 2 {
		t.Fatalf("flag = %d", f.Value())
	}
	// Nil reference is a silent no-op.
	r.Signal(FlagRef{})
}

func TestQueueDeliverTake(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry(eng)
	q := r.NewQueue(0)
	var got []byte
	eng.Spawn("owner", func(p *sim.Proc) {
		got = q.Take(p)
	})
	eng.Spawn("sender", func(p *sim.Proc) {
		p.Hold(10)
		q.Deliver([]byte{1, 2, 3})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("got %v", got)
	}
	if q.Enqueued() != 1 || q.MaxDepth() != 1 {
		t.Fatalf("stats: %d, %d", q.Enqueued(), q.MaxDepth())
	}
}

func TestQueueACL(t *testing.T) {
	r := newReg()
	q := r.NewQueue(2)
	ref := QueueRef{Owner: 2, ID: q.ID}
	if _, err := r.CheckQueue(2, ref, "ENQ"); err != nil {
		t.Fatalf("owner denied: %v", err)
	}
	if _, err := r.CheckQueue(3, ref, "ENQ"); err == nil {
		t.Fatal("stranger allowed")
	}
	q.Grant(3)
	if _, err := r.CheckQueue(3, ref, "ENQ"); err != nil {
		t.Fatalf("grantee denied: %v", err)
	}
	if _, err := r.CheckQueue(0, QueueRef{Owner: 9, ID: 99}, "DEQ"); err == nil {
		t.Fatal("missing queue allowed")
	}
}

func TestQueueTryTakeFIFO(t *testing.T) {
	r := newReg()
	q := r.NewQueue(0)
	q.Deliver([]byte{1})
	q.Deliver([]byte{2})
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	a, _ := q.TryTake()
	b, _ := q.TryTake()
	if a[0] != 1 || b[0] != 2 {
		t.Fatal("not FIFO")
	}
	if _, ok := q.TryTake(); ok {
		t.Fatal("take from empty")
	}
}

func TestF64ViewRoundTrip(t *testing.T) {
	r := newReg()
	s := r.NewSegment(0, 80)
	v := Float64s(s, 0, 10)
	for i := 0; i < 10; i++ {
		v.Set(i, float64(i)*1.5)
	}
	for i := 0; i < 10; i++ {
		if v.Get(i) != float64(i)*1.5 {
			t.Fatalf("v[%d] = %v", i, v.Get(i))
		}
	}
	if v.Addr(3) != (Addr{s.ID, 24}) {
		t.Fatalf("Addr(3) = %v", v.Addr(3))
	}
}

func TestF64SliceAliasesSegment(t *testing.T) {
	r := newReg()
	s := r.NewSegment(0, 64)
	v := Float64s(s, 0, 8)
	w := v.Slice(2, 5)
	w.Set(0, 42)
	if v.Get(2) != 42 {
		t.Fatal("slice does not alias")
	}
	if w.Len() != 3 {
		t.Fatalf("slice len = %d", w.Len())
	}
}

func TestF64LoadStoreCopy(t *testing.T) {
	r := newReg()
	a := Float64s(r.NewSegment(0, 32), 0, 4)
	b := Float64s(r.NewSegment(1, 32), 0, 4)
	a.Store([]float64{1, 2, 3, 4})
	b.Copy(a)
	got := b.Load()
	for i, want := range []float64{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("got %v", got)
		}
	}
}

func TestI64View(t *testing.T) {
	r := newReg()
	s := r.NewSegment(0, 24)
	v := Int64s(s, 0, 3)
	v.Set(0, -7)
	v.Set(2, 1<<40)
	if v.Get(0) != -7 || v.Get(2) != 1<<40 {
		t.Fatal("int64 round trip failed")
	}
	w := v.Slice(1, 3)
	if w.Get(1) != 1<<40 {
		t.Fatal("slice offset wrong")
	}
}

func TestViewBoundsPanics(t *testing.T) {
	r := newReg()
	s := r.NewSegment(0, 16)
	for name, fn := range map[string]func(){
		"view too large": func() { Float64s(s, 0, 3) },
		"get oob":        func() { Float64s(s, 0, 2).Get(2) },
		"set oob":        func() { Float64s(s, 0, 2).Set(-1, 0) },
		"bad slice":      func() { Float64s(s, 0, 2).Slice(1, 3) },
		"store overflow": func() { Float64s(s, 0, 1).Store([]float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPropertyScalarCodecs(t *testing.T) {
	fOK := func(x float64) bool {
		var b [8]byte
		PutF64(b[:], x)
		y := GetF64(b[:])
		return y == x || (math.IsNaN(x) && math.IsNaN(y))
	}
	iOK := func(x int64) bool {
		var b [8]byte
		PutI64(b[:], x)
		return GetI64(b[:]) == x
	}
	if err := quick.Check(fOK, nil); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(iOK, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyViewMatchesWireFormat(t *testing.T) {
	// Element i of a view must live at base+8i with the PutF64 encoding:
	// the RMA engines rely on this to transfer typed data as raw bytes.
	f := func(vals []float64) bool {
		if len(vals) > 32 {
			vals = vals[:32]
		}
		r := newReg()
		s := r.NewSegment(0, len(vals)*8+8)
		v := Float64s(s, 8, len(vals))
		v.Store(vals)
		for i, x := range vals {
			if GetF64(s.Data[8+8*i:]) != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyACLGrantRevoke(t *testing.T) {
	// Property: after any sequence of grants and revokes, Allowed reflects
	// exactly the surviving grants (plus the owner, always).
	f := func(ops []uint8) bool {
		r := newReg()
		s := r.NewSegment(3, 8)
		want := map[int]bool{}
		for _, op := range ops {
			rank := int(op % 8)
			if op&0x80 != 0 {
				s.Grant(rank)
				want[rank] = true
			} else {
				s.Revoke(rank)
				delete(want, rank)
			}
		}
		for rank := 0; rank < 8; rank++ {
			expected := want[rank] || rank == 3
			if s.Allowed(rank) != expected {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQueueDeliverTakeConservation(t *testing.T) {
	// Property: every delivered record is taken exactly once, in order,
	// regardless of the interleaving of Deliver/TryTake.
	f := func(ops []bool) bool {
		r := newReg()
		q := r.NewQueue(0)
		next, taken := 0, 0
		for _, deliver := range ops {
			if deliver {
				rec := make([]byte, 8)
				PutI64(rec, int64(next))
				q.Deliver(rec)
				next++
			} else if rec, ok := q.TryTake(); ok {
				if GetI64(rec) != int64(taken) {
					return false
				}
				taken++
			}
		}
		for {
			rec, ok := q.TryTake()
			if !ok {
				break
			}
			if GetI64(rec) != int64(taken) {
				return false
			}
			taken++
		}
		return taken == next && q.Enqueued() == int64(next)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
