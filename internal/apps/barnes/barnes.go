// Package barnes reimplements Barnes-Hut, the paper's CRL adaptation of
// the SPLASH-2 hierarchical n-body code (Table 5: 4096 bodies). Body
// records live in CRL regions; each timestep every processor reads the
// body chunks through the coherence protocol, builds the octree, computes
// forces for its own bodies with the theta-criterion traversal, and writes
// its chunks back.
package barnes

import (
	"fmt"
	"math"

	"mproxy/internal/apps"
	"mproxy/internal/costmodel"
	"mproxy/internal/crl"
)

// bodyWords is the per-body record in a region: x, y, z, mass.
const bodyWords = 4

// chunkSize is bodies per region.
const chunkSize = 16

const theta = 0.6
const dt = 0.01

// Barnes is one run of the program.
type Barnes struct {
	Bodies int
	Steps  int

	rids   []crl.RID
	sums   []float64
	serial float64
}

// New returns a Barnes-Hut instance.
func New(bodies, steps int) *Barnes { return &Barnes{Bodies: bodies, Steps: steps} }

// Name implements apps.App.
func (b *Barnes) Name() string { return "Barnes-Hut" }

// initBodies produces a deterministic spiral-shell distribution.
func initBodies(n int) []float64 {
	bd := make([]float64, n*bodyWords)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n)
		r := 0.2 + 4*t
		a := float64(i) * 2.399963
		bd[i*bodyWords] = r * math.Cos(a)
		bd[i*bodyWords+1] = r * math.Sin(a)
		bd[i*bodyWords+2] = 2 * (t - 0.5) * math.Cos(float64(i))
		bd[i*bodyWords+3] = 0.5 + float64(i%5)*0.2 // mass
	}
	return bd
}

// octree

type node struct {
	cx, cy, cz, half float64 // cube center and half-width
	mass             float64
	mx, my, mz       float64 // mass-weighted position sum
	body             int     // body index if leaf with one body, else -1
	kids             [8]*node
	leaf             bool
}

func newNode(cx, cy, cz, half float64) *node {
	return &node{cx: cx, cy: cy, cz: cz, half: half, body: -1, leaf: true}
}

func (nd *node) octant(x, y, z float64) int {
	o := 0
	if x > nd.cx {
		o |= 1
	}
	if y > nd.cy {
		o |= 2
	}
	if z > nd.cz {
		o |= 4
	}
	return o
}

// insert adds body i (work counts tree-build operations for cost
// charging).
func (nd *node) insert(bd []float64, i int, work *int) {
	*work++
	x, y, z := bd[i*bodyWords], bd[i*bodyWords+1], bd[i*bodyWords+2]
	if nd.leaf {
		if nd.body < 0 {
			nd.body = i
			return
		}
		// Split: push the resident body down.
		old := nd.body
		nd.body = -1
		nd.leaf = false
		nd.child(nd.octant(bd[old*bodyWords], bd[old*bodyWords+1], bd[old*bodyWords+2])).insert(bd, old, work)
	}
	nd.child(nd.octant(x, y, z)).insert(bd, i, work)
}

func (nd *node) child(o int) *node {
	if nd.kids[o] == nil {
		q := nd.half / 2
		cx, cy, cz := nd.cx-q, nd.cy-q, nd.cz-q
		if o&1 != 0 {
			cx = nd.cx + q
		}
		if o&2 != 0 {
			cy = nd.cy + q
		}
		if o&4 != 0 {
			cz = nd.cz + q
		}
		nd.kids[o] = newNode(cx, cy, cz, q)
	}
	return nd.kids[o]
}

// moments computes the mass and center of mass bottom-up.
func (nd *node) moments(bd []float64) {
	if nd.leaf {
		if nd.body >= 0 {
			i := nd.body
			m := bd[i*bodyWords+3]
			nd.mass = m
			nd.mx = m * bd[i*bodyWords]
			nd.my = m * bd[i*bodyWords+1]
			nd.mz = m * bd[i*bodyWords+2]
		}
		return
	}
	for _, k := range nd.kids {
		if k == nil {
			continue
		}
		k.moments(bd)
		nd.mass += k.mass
		nd.mx += k.mx
		nd.my += k.my
		nd.mz += k.mz
	}
}

// buildTree constructs the octree over all bodies.
func buildTree(bd []float64, n int) (*node, int) {
	// Bounding cube.
	lim := 1.0
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			if v := math.Abs(bd[i*bodyWords+d]); v > lim {
				lim = v
			}
		}
	}
	root := newNode(0, 0, 0, lim*1.01)
	work := 0
	for i := 0; i < n; i++ {
		root.insert(bd, i, &work)
	}
	root.moments(bd)
	return root, work
}

// force accumulates the Barnes-Hut force on body i; interactions counts
// accepted cell/body terms for cost charging.
func (nd *node) force(bd []float64, i int, fx, fy, fz *float64, interactions *int) {
	if nd.mass == 0 {
		return
	}
	xi, yi, zi := bd[i*bodyWords], bd[i*bodyWords+1], bd[i*bodyWords+2]
	px, py, pz := nd.mx/nd.mass, nd.my/nd.mass, nd.mz/nd.mass
	dx, dy, dz := px-xi, py-yi, pz-zi
	r2 := dx*dx + dy*dy + dz*dz
	if nd.leaf {
		if nd.body < 0 || nd.body == i {
			return
		}
		w := nd.mass / ((r2 + 0.05) * math.Sqrt(r2+0.05))
		*fx += dx * w
		*fy += dy * w
		*fz += dz * w
		*interactions++
		return
	}
	if (2*nd.half)*(2*nd.half) < theta*theta*r2 {
		w := nd.mass / ((r2 + 0.05) * math.Sqrt(r2+0.05))
		*fx += dx * w
		*fy += dy * w
		*fz += dz * w
		*interactions++
		return
	}
	for _, k := range nd.kids {
		if k != nil {
			k.force(bd, i, fx, fy, fz, interactions)
		}
	}
}

// advance computes new positions for bodies [lo,hi).
func advance(bd, prev, next []float64, root *node, lo, hi int) int {
	inter := 0
	for i := lo; i < hi; i++ {
		var fx, fy, fz float64
		root.force(bd, i, &fx, &fy, &fz, &inter)
		m := bd[i*bodyWords+3]
		for d, f := range []float64{fx, fy, fz} {
			next[i*bodyWords+d] = 2*bd[i*bodyWords+d] - prev[i*bodyWords+d] + dt*dt*f/m
		}
		next[i*bodyWords+3] = m
	}
	return inter
}

func checksum(bd []float64, n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += bd[i*bodyWords] + 2*bd[i*bodyWords+1] + 3*bd[i*bodyWords+2]
	}
	return s
}

// serialRun computes the reference checksum.
func serialRun(n, steps int) float64 {
	bd := initBodies(n)
	prev := append([]float64(nil), bd...)
	next := make([]float64, len(bd))
	for s := 0; s < steps; s++ {
		root, _ := buildTree(bd, n)
		advance(bd, prev, next, root, 0, n)
		prev, bd, next = bd, next, prev
	}
	return checksum(bd, n)
}

func chunks(n int) int { return (n + chunkSize - 1) / chunkSize }

// Setup implements apps.App.
func (b *Barnes) Setup(env *apps.Env) {
	p := env.Procs()
	nc := chunks(b.Bodies)
	b.sums = make([]float64, p)
	b.rids = make([]crl.RID, nc)
	for c := 0; c < nc; c++ {
		b.rids[c] = env.CRL.Create(c%p, chunkSize*bodyWords*8)
	}
	b.serial = serialRun(b.Bodies, b.Steps)
}

// Body implements apps.App.
func (b *Barnes) Body(env *apps.Env, rank int) {
	nd := env.CRL.Node(rank)
	ep := env.Fab.Endpoint(rank)
	co := env.Coll.Comm(rank)
	p := env.Procs()
	n := b.Bodies
	nc := chunks(n)

	regs := make([]*crl.Region, nc)
	for c := 0; c < nc; c++ {
		regs[c] = nd.Map(b.rids[c])
	}
	chunkRange := func(c int) (int, int) {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	// Initialize owned chunks.
	init := initBodies(n)
	for c := rank; c < nc; c += p {
		lo, hi := chunkRange(c)
		regs[c].StartWrite()
		v := regs[c].F64(0, chunkSize*bodyWords)
		for i := lo; i < hi; i++ {
			for d := 0; d < bodyWords; d++ {
				v.Set((i-lo)*bodyWords+d, init[i*bodyWords+d])
			}
		}
		regs[c].EndWrite()
	}
	co.Barrier()

	env.MarkStart(rank)
	bd := make([]float64, n*bodyWords)
	prev := append([]float64(nil), init...)
	next := make([]float64, n*bodyWords)
	for s := 0; s < b.Steps; s++ {
		// Gather all bodies through CRL.
		for c := 0; c < nc; c++ {
			lo, hi := chunkRange(c)
			regs[c].StartRead()
			v := regs[c].F64(0, chunkSize*bodyWords)
			for i := lo; i < hi; i++ {
				for d := 0; d < bodyWords; d++ {
					bd[i*bodyWords+d] = v.Get((i-lo)*bodyWords + d)
				}
			}
			regs[c].EndRead()
			ep.Compute(costmodel.MemRefs(bodyWords * (hi - lo)))
		}
		co.Barrier()
		// Build the tree (every rank builds it, as in CRL Barnes where the
		// tree is shared data read by everyone; we charge the build).
		root, work := buildTree(bd, n)
		ep.Compute(costmodel.IntOps(30 * work))
		// Advance my chunks.
		inter := 0
		for c := rank; c < nc; c += p {
			lo, hi := chunkRange(c)
			inter += advance(bd, prev, next, root, lo, hi)
		}
		ep.Compute(costmodel.Flops(22 * inter))
		// Write back my chunks and roll prev forward.
		for c := rank; c < nc; c += p {
			lo, hi := chunkRange(c)
			regs[c].StartWrite()
			v := regs[c].F64(0, chunkSize*bodyWords)
			for i := lo; i < hi; i++ {
				for d := 0; d < bodyWords; d++ {
					v.Set((i-lo)*bodyWords+d, next[i*bodyWords+d])
				}
				for d := 0; d < bodyWords; d++ {
					prev[i*bodyWords+d] = bd[i*bodyWords+d]
				}
			}
			regs[c].EndWrite()
		}
		co.Barrier()
	}
	// Final checksum from a fresh global read.
	for c := 0; c < nc; c++ {
		lo, hi := chunkRange(c)
		regs[c].StartRead()
		v := regs[c].F64(0, chunkSize*bodyWords)
		for i := lo; i < hi; i++ {
			for d := 0; d < bodyWords; d++ {
				bd[i*bodyWords+d] = v.Get((i-lo)*bodyWords + d)
			}
		}
		regs[c].EndRead()
	}
	b.sums[rank] = checksum(bd, n)
	env.MarkStop(rank)
}

// Verify implements apps.App.
func (b *Barnes) Verify() error {
	for r, s := range b.sums {
		if math.Abs(s-b.serial) > 1e-9*math.Max(1, math.Abs(b.serial)) {
			return fmt.Errorf("rank %d checksum %.12g, serial %.12g", r, s, b.serial)
		}
	}
	return nil
}
