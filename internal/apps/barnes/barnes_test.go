package barnes

import (
	"math"
	"testing"
)

func TestTreeMomentsConserveMass(t *testing.T) {
	bd := initBodies(128)
	root, work := buildTree(bd, 128)
	if work < 128 {
		t.Fatalf("tree build work = %d", work)
	}
	var mass float64
	for i := 0; i < 128; i++ {
		mass += bd[i*bodyWords+3]
	}
	if math.Abs(root.mass-mass) > 1e-9 {
		t.Fatalf("root mass %v, want %v", root.mass, mass)
	}
}

func TestThetaZeroMatchesDirectSum(t *testing.T) {
	// With the opening criterion never accepted (cells always opened),
	// Barnes-Hut reduces to the exact pairwise sum. theta is a constant,
	// so instead verify against the direct sum within the accuracy the
	// multipole acceptance guarantees for well-separated bodies.
	const n = 64
	bd := initBodies(n)
	root, _ := buildTree(bd, n)
	var fx, fy, fz float64
	inter := 0
	root.force(bd, 0, &fx, &fy, &fz, &inter)
	// Direct sum.
	var dx, dy, dz float64
	for j := 1; j < n; j++ {
		ddx := bd[j*bodyWords] - bd[0]
		ddy := bd[j*bodyWords+1] - bd[1]
		ddz := bd[j*bodyWords+2] - bd[2]
		r2 := ddx*ddx + ddy*ddy + ddz*ddz
		w := bd[j*bodyWords+3] / ((r2 + 0.05) * math.Sqrt(r2+0.05))
		dx += ddx * w
		dy += ddy * w
		dz += ddz * w
	}
	mag := math.Sqrt(dx*dx + dy*dy + dz*dz)
	err := math.Sqrt((fx-dx)*(fx-dx) + (fy-dy)*(fy-dy) + (fz-dz)*(fz-dz))
	if err > 0.15*mag {
		t.Fatalf("BH force error %.3f of magnitude (fx %v vs %v)", err/mag, fx, dx)
	}
	if inter >= n-1+10 {
		t.Logf("interactions = %d (no approximation benefit at n=%d)", inter, n)
	}
}

func TestSerialRunDeterministic(t *testing.T) {
	if serialRun(96, 2) != serialRun(96, 2) {
		t.Fatal("serial run not deterministic")
	}
}
