// Package lu reimplements LU, the paper's CRL blocked dense LU
// factorization (Table 5: 500x500 doubles in 10x10 blocks). Each matrix
// block is one CRL region, owned cyclically; each elimination step factors
// the diagonal block, updates the perimeter, and updates the interior —
// with all sharing mediated by the region coherence protocol, which is why
// most of LU's messages are small protocol traffic (Section 5.3).
package lu

import (
	"fmt"
	"math"

	"mproxy/internal/apps"
	"mproxy/internal/costmodel"
	"mproxy/internal/crl"
)

// LU is one run of the program.
type LU struct {
	N int // matrix dimension
	B int // block dimension

	rids   []crl.RID
	result []float64 // final factored matrix gathered at rank 0
	serial []float64
}

// New returns an LU instance (n must be a multiple of b).
func New(n, b int) *LU {
	if n%b != 0 {
		panic("lu: n must be a multiple of b")
	}
	return &LU{N: n, B: b}
}

// Name implements apps.App.
func (l *LU) Name() string { return "LU" }

// aElem defines the (diagonally dominant, pivot-free) input matrix.
func aElem(i, j, n int) float64 {
	if i == j {
		return float64(n) + 2
	}
	return math.Sin(float64(i*37+j*23)) * 0.9
}

// Block kernels; every implementation detail is shared between the serial
// reference and the parallel program so results match bit for bit.

// factorDiag performs in-place Doolittle LU on a b x b block (unit lower).
func factorDiag(d []float64, b int) {
	for c := 0; c < b; c++ {
		for r := c + 1; r < b; r++ {
			d[r*b+c] /= d[c*b+c]
			lrc := d[r*b+c]
			for j := c + 1; j < b; j++ {
				d[r*b+j] -= lrc * d[c*b+j]
			}
		}
	}
}

// colUpdate computes A(i,k) <- A(i,k) * U(k,k)^{-1} (right solve with the
// upper triangle of the factored diagonal block).
func colUpdate(a, d []float64, b int) {
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			s := a[r*b+c]
			for m := 0; m < c; m++ {
				s -= a[r*b+m] * d[m*b+c]
			}
			a[r*b+c] = s / d[c*b+c]
		}
	}
}

// rowUpdate computes A(k,j) <- L(k,k)^{-1} A(k,j) (left solve with the
// unit-lower triangle).
func rowUpdate(a, d []float64, b int) {
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			s := a[r*b+c]
			for m := 0; m < r; m++ {
				s -= d[r*b+m] * a[m*b+c]
			}
			a[r*b+c] = s
		}
	}
}

// gemmSub computes C -= A * B for b x b blocks.
func gemmSub(cb, a, bb []float64, b int) {
	for r := 0; r < b; r++ {
		for m := 0; m < b; m++ {
			arm := a[r*b+m]
			for c := 0; c < b; c++ {
				cb[r*b+c] -= arm * bb[m*b+c]
			}
		}
	}
}

// serialLU factors the blocked matrix in place and returns it.
func serialLU(n, b int) []float64 {
	nb := n / b
	blocks := make([][]float64, nb*nb)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			blk := make([]float64, b*b)
			for x := 0; x < b; x++ {
				for y := 0; y < b; y++ {
					blk[x*b+y] = aElem(bi*b+x, bj*b+y, n)
				}
			}
			blocks[bi*nb+bj] = blk
		}
	}
	for k := 0; k < nb; k++ {
		factorDiag(blocks[k*nb+k], b)
		for i := k + 1; i < nb; i++ {
			colUpdate(blocks[i*nb+k], blocks[k*nb+k], b)
			rowUpdate(blocks[k*nb+i], blocks[k*nb+k], b)
		}
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				gemmSub(blocks[i*nb+j], blocks[i*nb+k], blocks[k*nb+j], b)
			}
		}
	}
	out := make([]float64, 0, n*n)
	for _, blk := range blocks {
		out = append(out, blk...)
	}
	return out
}

// Setup implements apps.App.
func (l *LU) Setup(env *apps.Env) {
	nb := l.N / l.B
	p := env.Procs()
	l.rids = make([]crl.RID, nb*nb)
	for i := range l.rids {
		l.rids[i] = env.CRL.Create(i%p, l.B*l.B*8)
	}
	l.serial = serialLU(l.N, l.B)
}

// Body implements apps.App.
func (l *LU) Body(env *apps.Env, rank int) {
	nd := env.CRL.Node(rank)
	ep := env.Fab.Endpoint(rank)
	co := env.Coll.Comm(rank)
	p := env.Procs()
	b := l.B
	nb := l.N / b

	regs := make([]*crl.Region, nb*nb)
	for i := range regs {
		regs[i] = nd.Map(l.rids[i])
	}
	mine := func(bi, bj int) bool { return (bi*nb+bj)%p == rank }

	// Initialize owned blocks.
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			if !mine(bi, bj) {
				continue
			}
			rg := regs[bi*nb+bj]
			rg.StartWrite()
			v := rg.F64(0, b*b)
			for x := 0; x < b; x++ {
				for y := 0; y < b; y++ {
					v.Set(x*b+y, aElem(bi*b+x, bj*b+y, l.N))
				}
			}
			rg.EndWrite()
		}
	}
	co.Barrier()
	env.MarkStart(rank)

	// readBlock fetches a block's values through CRL.
	readBlock := func(bi, bj int) []float64 {
		rg := regs[bi*nb+bj]
		rg.StartRead()
		vals := rg.F64(0, b*b).Load()
		rg.EndRead()
		ep.Compute(costmodel.MemRefs(b * b / 4))
		return vals
	}

	for k := 0; k < nb; k++ {
		// Factor the diagonal block.
		if mine(k, k) {
			rg := regs[k*nb+k]
			rg.StartWrite()
			d := rg.F64(0, b*b).Load()
			factorDiag(d, b)
			rg.F64(0, b*b).Store(d)
			rg.EndWrite()
			ep.Compute(costmodel.Flops(2 * b * b * b / 3))
		}
		co.Barrier()
		// Perimeter updates.
		for i := k + 1; i < nb; i++ {
			if mine(i, k) {
				d := readBlock(k, k)
				rg := regs[i*nb+k]
				rg.StartWrite()
				a := rg.F64(0, b*b).Load()
				colUpdate(a, d, b)
				rg.F64(0, b*b).Store(a)
				rg.EndWrite()
				ep.Compute(costmodel.Flops(b * b * b))
			}
			if mine(k, i) {
				d := readBlock(k, k)
				rg := regs[k*nb+i]
				rg.StartWrite()
				a := rg.F64(0, b*b).Load()
				rowUpdate(a, d, b)
				rg.F64(0, b*b).Store(a)
				rg.EndWrite()
				ep.Compute(costmodel.Flops(b * b * b))
			}
		}
		co.Barrier()
		// Interior updates.
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				if !mine(i, j) {
					continue
				}
				a := readBlock(i, k)
				bb := readBlock(k, j)
				rg := regs[i*nb+j]
				rg.StartWrite()
				cb := rg.F64(0, b*b).Load()
				gemmSub(cb, a, bb, b)
				rg.F64(0, b*b).Store(cb)
				rg.EndWrite()
				ep.Compute(costmodel.Flops(2 * b * b * b))
			}
		}
		co.Barrier()
	}

	// Gather the factored matrix at rank 0 (block-major, like the serial
	// reference).
	if rank == 0 {
		out := make([]float64, 0, l.N*l.N)
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				out = append(out, readBlock(bi, bj)...)
			}
		}
		l.result = out
	}
	env.MarkStop(rank)
}

// Verify implements apps.App.
func (l *LU) Verify() error {
	if len(l.result) != l.N*l.N {
		return fmt.Errorf("result not gathered")
	}
	for i := range l.serial {
		if math.Abs(l.result[i]-l.serial[i]) > 1e-9*math.Max(1, math.Abs(l.serial[i])) {
			return fmt.Errorf("element %d = %.12g, want %.12g", i, l.result[i], l.serial[i])
		}
	}
	return nil
}
