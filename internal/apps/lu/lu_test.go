package lu

import (
	"math"
	"testing"
)

// multiplyBlocked reconstructs A from the in-place LU factors (unit-lower
// L, upper U) stored block-major and compares to the original.
func TestSerialLUReconstructsMatrix(t *testing.T) {
	const n, b = 24, 8
	nb := n / b
	fac := serialLU(n, b)
	// Expand block-major factors into a dense matrix.
	lu := make([]float64, n*n)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			blk := fac[(bi*nb+bj)*b*b : (bi*nb+bj+1)*b*b]
			for x := 0; x < b; x++ {
				for y := 0; y < b; y++ {
					lu[(bi*b+x)*n+bj*b+y] = blk[x*b+y]
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (L*U)[i][j] with L unit-lower, U upper.
			s := 0.0
			for k := 0; k <= i && k <= j; k++ {
				l := lu[i*n+k]
				if k == i {
					l = 1
				}
				if k > j {
					continue
				}
				s += l * lu[k*n+j]
			}
			want := aElem(i, j, n)
			if math.Abs(s-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("LU[%d][%d] = %.12g, want %.12g", i, j, s, want)
			}
		}
	}
}

func TestFactorDiagDoolittle(t *testing.T) {
	// 2x2 by hand: [[4,2],[6,9]] -> L21=1.5, U=[[4,2],[0,6]].
	d := []float64{4, 2, 6, 9}
	factorDiag(d, 2)
	want := []float64{4, 2, 1.5, 6}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Fatalf("factor = %v, want %v", d, want)
		}
	}
}

func TestNewRejectsBadBlocking(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(100, 7)
}
