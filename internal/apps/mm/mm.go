// Package mm reimplements MM, the paper's Split-C blocked matrix multiply
// (Table 5: 256x256 doubles, 8x8 blocks). Blocks are spread cyclically;
// each processor computes the C blocks it owns, pulling the needed A and B
// blocks with split-phase bulk gets — a bandwidth-plus-latency workload.
package mm

import (
	"fmt"
	"math"

	"mproxy/internal/apps"
	"mproxy/internal/costmodel"
	"mproxy/internal/splitc"
)

// MM is one run of the program.
type MM struct {
	N int // matrix dimension
	B int // block dimension

	c0     []float64 // row 0 of C gathered at rank 0
	serial []float64 // reference row 0
}

// New returns an MM instance (n must be a multiple of b).
func New(n, b int) *MM {
	if n%b != 0 {
		panic("mm: n must be a multiple of b")
	}
	return &MM{N: n, B: b}
}

// Name implements apps.App.
func (m *MM) Name() string { return "MM" }

func aElem(i, j int) float64 { return math.Sin(float64(i*31 + j*17)) }
func bElem(i, j int) float64 { return math.Cos(float64(i*13 + j*29)) }

// Setup implements apps.App.
func (m *MM) Setup(env *apps.Env) {
	// Serial reference: row 0 of C.
	m.serial = make([]float64, m.N)
	for j := 0; j < m.N; j++ {
		s := 0.0
		for k := 0; k < m.N; k++ {
			s += aElem(0, k) * bElem(k, j)
		}
		m.serial[j] = s
	}
}

// Body implements apps.App.
func (m *MM) Body(env *apps.Env, rank int) {
	c := env.SC.Ctx(rank)
	p := c.Procs()
	nb := m.N / m.B
	blockBytes := m.B * m.B * 8
	nBlocks := nb * nb

	// Per-rank slabs for the cyclically owned blocks of A, B and C, plus
	// two scratch blocks for remote operands.
	perRank := (nBlocks + p - 1) / p
	aBase := c.AllAlloc(perRank * blockBytes)
	bBase := c.AllAlloc(perRank * blockBytes)
	cBase := c.AllAlloc(perRank * blockBytes)
	sA := c.AllAlloc(blockBytes)
	sB := c.AllAlloc(blockBytes)
	gatherBase := c.AllAlloc(m.N * 8) // rank 0 collects row 0 of C

	owner := func(bi, bj int) (int, int) {
		lin := bi*nb + bj
		return lin % p, (lin / p) * blockBytes
	}

	// Initialize owned blocks of A and B.
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			o, off := owner(bi, bj)
			if o != rank {
				continue
			}
			av := c.LocalF64(aBase+off, m.B*m.B)
			bv := c.LocalF64(bBase+off, m.B*m.B)
			for x := 0; x < m.B; x++ {
				for y := 0; y < m.B; y++ {
					av.Set(x*m.B+y, aElem(bi*m.B+x, bj*m.B+y))
					bv.Set(x*m.B+y, bElem(bi*m.B+x, bj*m.B+y))
				}
			}
		}
	}
	c.Barrier()
	env.MarkStart(rank)

	acc := make([]float64, m.B*m.B)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			o, cOff := owner(bi, bj)
			if o != rank {
				continue
			}
			for i := range acc {
				acc[i] = 0
			}
			for bk := 0; bk < nb; bk++ {
				// Fetch A(bi,bk) and B(bk,bj).
				ao, aOff := owner(bi, bk)
				bo, bOff := owner(bk, bj)
				var av, bv []float64
				if ao == rank {
					av = c.LocalF64(aBase+aOff, m.B*m.B).Load()
					c.Endpoint().Compute(costmodel.MemRefs(m.B * m.B / 8))
				} else {
					c.GetBulk(sA, splitc.GPtr{Proc: ao, Off: aBase + aOff}, blockBytes)
				}
				if bo == rank {
					bv = c.LocalF64(bBase+bOff, m.B*m.B).Load()
					c.Endpoint().Compute(costmodel.MemRefs(m.B * m.B / 8))
				} else {
					c.GetBulk(sB, splitc.GPtr{Proc: bo, Off: bBase + bOff}, blockBytes)
				}
				c.Sync()
				if av == nil {
					av = c.LocalF64(sA, m.B*m.B).Load()
				}
				if bv == nil {
					bv = c.LocalF64(sB, m.B*m.B).Load()
				}
				// acc += av * bv (b^3 multiply-adds).
				for x := 0; x < m.B; x++ {
					for k := 0; k < m.B; k++ {
						a := av[x*m.B+k]
						for y := 0; y < m.B; y++ {
							acc[x*m.B+y] += a * bv[k*m.B+y]
						}
					}
				}
				c.Endpoint().Compute(costmodel.Flops(2 * m.B * m.B * m.B))
			}
			c.LocalF64(cBase+cOff, m.B*m.B).Store(acc)
		}
	}
	c.Barrier()

	// Gather row 0 of C at rank 0: owners of the top block row store their
	// pieces.
	for bj := 0; bj < nb; bj++ {
		o, cOff := owner(0, bj)
		if o != rank {
			continue
		}
		// Row 0 of this block is its first m.B doubles.
		c.StoreBulk(cBase+cOff, splitc.GPtr{Proc: 0, Off: gatherBase + bj*m.B*8}, m.B*8)
	}
	c.AllStoreSync()
	if rank == 0 {
		m.c0 = c.LocalF64(gatherBase, m.N).Load()
	}
	env.MarkStop(rank)
}

// Verify implements apps.App.
func (m *MM) Verify() error {
	if len(m.c0) != m.N {
		return fmt.Errorf("row 0 not gathered")
	}
	for j := range m.serial {
		if math.Abs(m.c0[j]-m.serial[j]) > 1e-9*math.Max(1, math.Abs(m.serial[j])) {
			return fmt.Errorf("C[0][%d] = %.12g, want %.12g", j, m.c0[j], m.serial[j])
		}
	}
	return nil
}
