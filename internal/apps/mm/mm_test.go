package mm

import (
	"math"
	"testing"
)

func TestElementGeneratorsBounded(t *testing.T) {
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if math.Abs(aElem(i, j)) > 1 || math.Abs(bElem(i, j)) > 1 {
				t.Fatalf("element out of range at %d,%d", i, j)
			}
		}
	}
}

func TestNewRejectsBadBlocking(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(100, 8)
}
