package apps_test

import (
	"testing"

	"mproxy/internal/apps/barnes"
	"mproxy/internal/apps/lu"
	"mproxy/internal/apps/water"
	"mproxy/internal/arch"
)

func TestWaterCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		d := runApp(t, water.New(48, 2), n, arch.MP1)
		t.Logf("water P=%d: %v", n, d)
	}
	runApp(t, water.New(32, 2), 2, arch.SW1)
}

func TestBarnesCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		d := runApp(t, barnes.New(96, 2), n, arch.MP1)
		t.Logf("barnes P=%d: %v", n, d)
	}
	runApp(t, barnes.New(64, 1), 2, arch.HW1)
}

func TestLUCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		d := runApp(t, lu.New(48, 8), n, arch.MP1)
		t.Logf("lu P=%d: %v", n, d)
	}
	runApp(t, lu.New(32, 8), 3, arch.MP2)
}
