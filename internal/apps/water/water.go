// Package water reimplements Water, the paper's CRL adaptation of the
// SPLASH-2 "n-squared" molecular dynamics code (Table 5: 512 molecules).
// Molecule positions live in CRL regions chunked across processors; each
// timestep every processor reads all chunks through the coherence protocol,
// computes the pairwise forces for its own molecules, and writes its chunk
// back — the paper measures the steady-state iterations.
package water

import (
	"fmt"
	"math"

	"mproxy/internal/apps"
	"mproxy/internal/costmodel"
	"mproxy/internal/crl"
)

// molWords is the per-molecule record in a region: x, y, z, pad.
const molWords = 4

// chunkSize is molecules per region (4*8*16 = 512 bytes, a PIO-sized
// region like the paper's small CRL messages).
const chunkSize = 16

// Water is one run of the program.
type Water struct {
	Mols  int
	Steps int

	rids   []crl.RID
	energy []float64
	serial float64
}

// New returns a Water instance.
func New(mols, steps int) *Water { return &Water{Mols: mols, Steps: steps} }

// Name implements apps.App.
func (w *Water) Name() string { return "Water" }

func chunks(n int) int { return (n + chunkSize - 1) / chunkSize }

// initPos places molecules on a jittered cubic lattice.
func initPos(n int) []float64 {
	pos := make([]float64, n*3)
	side := int(math.Cbrt(float64(n))) + 1
	for i := 0; i < n; i++ {
		x, y, z := i%side, (i/side)%side, i/(side*side)
		pos[3*i] = float64(x)*1.2 + 0.05*math.Sin(float64(7*i))
		pos[3*i+1] = float64(y)*1.2 + 0.05*math.Cos(float64(5*i))
		pos[3*i+2] = float64(z)*1.2 + 0.05*math.Sin(float64(3*i+1))
	}
	return pos
}

const dt = 0.002

// sweep computes forces on molecules [lo,hi) from the full position set
// and integrates them in place (velocity-free leapfrog against prev).
// It returns the slice's potential energy and interaction count.
func sweep(pos, prev, next []float64, n, lo, hi int) float64 {
	energy := 0.0
	for i := lo; i < hi; i++ {
		var fx, fy, fz float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx := pos[3*j] - pos[3*i]
			dy := pos[3*j+1] - pos[3*i+1]
			dz := pos[3*j+2] - pos[3*i+2]
			r2 := dx*dx + dy*dy + dz*dz + 0.3
			inv := 1 / r2
			inv3 := inv * inv * inv
			// Lennard-Jones force magnitude / r.
			fm := (12*inv3*inv3 - 6*inv3) * inv
			fx -= dx * fm
			fy -= dy * fm
			fz -= dz * fm
			energy += inv3*inv3 - inv3
		}
		// Verlet step: next = 2 pos - prev + dt^2 f.
		next[3*i] = 2*pos[3*i] - prev[3*i] + dt*dt*fx
		next[3*i+1] = 2*pos[3*i+1] - prev[3*i+1] + dt*dt*fy
		next[3*i+2] = 2*pos[3*i+2] - prev[3*i+2] + dt*dt*fz
	}
	return energy
}

// serialRun computes the reference final potential energy.
func serialRun(n, steps int) float64 {
	pos := initPos(n)
	prev := append([]float64(nil), pos...)
	next := make([]float64, len(pos))
	total := 0.0
	for s := 0; s < steps; s++ {
		total = sweep(pos, prev, next, n, 0, n)
		prev, pos, next = pos, next, prev
	}
	return total
}

// Setup implements apps.App.
func (w *Water) Setup(env *apps.Env) {
	nc := chunks(w.Mols)
	p := env.Procs()
	w.energy = make([]float64, p)
	w.rids = make([]crl.RID, nc)
	for c := 0; c < nc; c++ {
		w.rids[c] = env.CRL.Create(c%p, chunkSize*molWords*8)
	}
	w.serial = serialRun(w.Mols, w.Steps)
}

// chunkRange returns the molecule range of chunk c.
func (w *Water) chunkRange(c int) (lo, hi int) {
	lo = c * chunkSize
	hi = lo + chunkSize
	if hi > w.Mols {
		hi = w.Mols
	}
	return
}

// Body implements apps.App.
func (w *Water) Body(env *apps.Env, rank int) {
	nd := env.CRL.Node(rank)
	ep := env.Fab.Endpoint(rank)
	co := env.Coll.Comm(rank)
	p := env.Procs()
	n := w.Mols
	nc := chunks(n)

	regs := make([]*crl.Region, nc)
	for c := 0; c < nc; c++ {
		regs[c] = nd.Map(w.rids[c])
	}
	// Initialize owned chunks.
	init := initPos(n)
	for c := 0; c < nc; c++ {
		if c%p != rank {
			continue
		}
		lo, hi := w.chunkRange(c)
		regs[c].StartWrite()
		v := regs[c].F64(0, chunkSize*molWords)
		for i := lo; i < hi; i++ {
			for d := 0; d < 3; d++ {
				v.Set((i-lo)*molWords+d, init[3*i+d])
			}
		}
		regs[c].EndWrite()
	}
	co.Barrier()

	env.MarkStart(rank)
	pos := make([]float64, n*3)
	prev := append([]float64(nil), init...)
	next := make([]float64, n*3)
	var local float64
	for s := 0; s < w.Steps; s++ {
		// Read every chunk through CRL.
		for c := 0; c < nc; c++ {
			lo, hi := w.chunkRange(c)
			regs[c].StartRead()
			v := regs[c].F64(0, chunkSize*molWords)
			for i := lo; i < hi; i++ {
				for d := 0; d < 3; d++ {
					pos[3*i+d] = v.Get((i-lo)*molWords + d)
				}
			}
			regs[c].EndRead()
			ep.Compute(costmodel.MemRefs(3 * (hi - lo)))
		}
		co.Barrier()
		// Compute forces and integrate my chunks.
		local = 0
		pairs := 0
		for c := rank; c < nc; c += p {
			lo, hi := w.chunkRange(c)
			local += sweep(pos, prev, next, n, lo, hi)
			pairs += (hi - lo) * (n - 1)
		}
		ep.Compute(costmodel.Flops(16 * pairs))
		// Write back my chunks.
		for c := rank; c < nc; c += p {
			lo, hi := w.chunkRange(c)
			regs[c].StartWrite()
			v := regs[c].F64(0, chunkSize*molWords)
			for i := lo; i < hi; i++ {
				for d := 0; d < 3; d++ {
					v.Set((i-lo)*molWords+d, next[3*i+d])
				}
			}
			regs[c].EndWrite()
			// prev for my molecules advances to the old positions.
			for i := lo; i < hi; i++ {
				for d := 0; d < 3; d++ {
					prev[3*i+d] = pos[3*i+d]
				}
			}
		}
		co.Barrier()
	}
	total := co.AllReduce(local, 0)
	w.energy[rank] = total
	env.MarkStop(rank)
}

// Verify implements apps.App.
func (w *Water) Verify() error {
	for r, e := range w.energy {
		if math.Abs(e-w.serial) > 1e-9*math.Max(1, math.Abs(w.serial)) {
			return fmt.Errorf("rank %d energy %.12g, serial %.12g", r, e, w.serial)
		}
	}
	return nil
}
