package water

import (
	"math"
	"testing"
)

func TestSweepMatchesWholeRange(t *testing.T) {
	// Summing per-chunk sweeps equals one full sweep (the parallel
	// decomposition identity the app relies on).
	const n = 40
	pos := initPos(n)
	prev := append([]float64(nil), pos...)
	nextA := make([]float64, len(pos))
	nextB := make([]float64, len(pos))
	whole := sweep(pos, prev, nextA, n, 0, n)
	parts := sweep(pos, prev, nextB, n, 0, 17) + sweep(pos, prev, nextB, n, 17, n)
	if math.Abs(whole-parts) > 1e-9*math.Abs(whole) {
		t.Fatalf("energy: whole %v vs parts %v", whole, parts)
	}
	for i := range nextA {
		if nextA[i] != nextB[i] {
			t.Fatalf("position %d differs", i)
		}
	}
}

func TestChunksCount(t *testing.T) {
	if chunks(16) != 1 || chunks(17) != 2 || chunks(48) != 3 {
		t.Fatal("chunk arithmetic wrong")
	}
}

func TestSerialRunDeterministic(t *testing.T) {
	if serialRun(32, 2) != serialRun(32, 2) {
		t.Fatal("not deterministic")
	}
}
