package apps_test

import (
	"testing"

	"mproxy/internal/apps/pray"
	"mproxy/internal/apps/sortapp"
	"mproxy/internal/arch"
)

func TestSampleCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		d := runApp(t, sortapp.New(600, false), n, arch.MP1)
		t.Logf("sample P=%d: %v", n, d)
	}
	runApp(t, sortapp.New(400, false), 3, arch.SW1)
}

func TestSamplebCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		d := runApp(t, sortapp.New(2000, true), n, arch.MP1)
		t.Logf("sampleb P=%d: %v", n, d)
	}
	runApp(t, sortapp.New(1000, true), 3, arch.HW0)
}

func TestPRayCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		d := runApp(t, pray.New(32, 24), n, arch.MP1)
		t.Logf("pray P=%d: %v", n, d)
	}
	runApp(t, pray.New(16, 16), 2, arch.MP2)
}
