package apps_test

import (
	"testing"

	"mproxy/internal/apps"
	"mproxy/internal/arch"
	"mproxy/internal/machine"
	"mproxy/internal/sim"
)

// runApp executes an app on n single-processor nodes and returns the
// measured time.
func runApp(t *testing.T, app apps.App, n int, a arch.Params) sim.Time {
	t.Helper()
	env := apps.NewEnv(machine.Config{Nodes: n, ProcsPerNode: 1}, a, 1<<22)
	d, err := apps.Run(env, app)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("%s: measured time %v", app.Name(), d)
	}
	return d
}
