// Package fft reimplements FFT, the paper's Split-C 1-D Fast Fourier
// Transform with bulk transfers to exchange data (Table 5: 1M points). It
// uses the four-step (transpose) method: local row FFTs, twiddle scaling, a
// bulk all-to-all transpose, and a second round of local FFTs — the classic
// bandwidth-bound FFT decomposition.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"mproxy/internal/apps"
	"mproxy/internal/costmodel"
	"mproxy/internal/splitc"
)

// FFT is one run of the program: an N1 x N2 decomposition of N = N1*N2
// points. N1 and N2 must be powers of two and multiples of the processor
// count.
type FFT struct {
	N1, N2 int

	spot   map[int]complex128 // sampled output coefficients, by global k
	serial map[int]complex128
}

// New returns an FFT instance over n = n1*n2 points.
func New(n1, n2 int) *FFT { return &FFT{N1: n1, N2: n2} }

// Name implements apps.App.
func (f *FFT) Name() string { return "FFT" }

// input defines the (deterministic) signal.
func input(n int) complex128 {
	t := float64(n)
	return complex(math.Sin(0.01*t)+0.5*math.Cos(0.003*t), 0.25*math.Sin(0.007*t))
}

// fftInPlace computes an in-place iterative radix-2 FFT.
func fftInPlace(a []complex128) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
		m := n >> 1
		for ; j&m != 0; m >>= 1 {
			j &^= m
		}
		j |= m
	}
	for size := 2; size <= n; size <<= 1 {
		ang := -2 * math.Pi / float64(size)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += size {
			w := complex(1, 0)
			for k := 0; k < size/2; k++ {
				u := a[i+k]
				v := a[i+k+size/2] * w
				a[i+k] = u + v
				a[i+k+size/2] = u - v
				w *= wl
			}
		}
	}
}

// Setup implements apps.App.
func (f *FFT) Setup(env *apps.Env) {
	n := f.N1 * f.N2
	// Reference: a handful of spot coefficients by direct DFT.
	f.serial = make(map[int]complex128)
	f.spot = make(map[int]complex128)
	for _, k := range []int{0, 1, f.N2 + 3, n/2 + 7, n - 1} {
		k %= n
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(t) * float64(k) / float64(n)
			s += input(t) * cmplx.Rect(1, ang)
		}
		f.serial[k] = s
	}
}

// Body implements apps.App.
func (f *FFT) Body(env *apps.Env, rank int) {
	c := env.SC.Ctx(rank)
	p := c.Procs()
	n := f.N1 * f.N2
	if f.N1%p != 0 || f.N2%p != 0 {
		panic("fft: N1 and N2 must be multiples of the processor count")
	}
	rows1 := f.N1 / p // my rows in phase 1 (indexed by n1)
	rows2 := f.N2 / p // my rows in phase 2 (indexed by k2)

	// Layout: phase-1 rows, transpose staging area (blocks by source),
	// phase-2 rows, and a pack buffer.
	yBase := c.AllAlloc(rows1 * f.N2 * 16)
	rBase := c.AllAlloc(rows2 * f.N1 * 16)
	zBase := c.AllAlloc(rows2 * f.N1 * 16)
	// One pack buffer per destination: a one-way store's source must stay
	// untouched until the data leaves (zero-copy transfer semantics).
	packBase := c.AllAlloc(p * rows1 * rows2 * 16)

	loadRow := func(base, row, width int) []complex128 {
		v := c.LocalF64(base+row*width*16, width*2)
		out := make([]complex128, width)
		for i := range out {
			out[i] = complex(v.Get(2*i), v.Get(2*i+1))
		}
		return out
	}
	storeRow := func(base, row, width int, data []complex128) {
		v := c.LocalF64(base+row*width*16, width*2)
		for i, x := range data {
			v.Set(2*i, real(x))
			v.Set(2*i+1, imag(x))
		}
	}

	// Initialize my rows: row r holds x[n1 + N1*n2] for n1 = rank*rows1+r.
	for r := 0; r < rows1; r++ {
		n1 := rank*rows1 + r
		row := make([]complex128, f.N2)
		for n2 := 0; n2 < f.N2; n2++ {
			row[n2] = input(n1 + f.N1*n2)
		}
		storeRow(yBase, r, f.N2, row)
	}
	c.Barrier()
	env.MarkStart(rank)

	// Step 1+2: FFT each row over n2, then scale by W_N^{n1*k2}.
	for r := 0; r < rows1; r++ {
		n1 := rank*rows1 + r
		row := loadRow(yBase, r, f.N2)
		fftInPlace(row)
		for k2 := range row {
			ang := -2 * math.Pi * float64(n1) * float64(k2) / float64(n)
			row[k2] *= cmplx.Rect(1, ang)
		}
		storeRow(yBase, r, f.N2, row)
		c.Endpoint().Compute(costmodel.Flops(5*f.N2*log2(f.N2) + 8*f.N2))
	}

	// Step 3: transpose. Send to each destination the (rows1 x rows2)
	// sub-block of my rows restricted to its k2 range, packed contiguous.
	blockBytes := rows1 * rows2 * 16
	for dst := 0; dst < p; dst++ {
		pack := c.LocalF64(packBase+dst*blockBytes, rows1*rows2*2)
		for r := 0; r < rows1; r++ {
			row := c.LocalF64(yBase+r*f.N2*16, f.N2*2)
			for j := 0; j < rows2; j++ {
				k2 := dst*rows2 + j
				pack.Set((r*rows2+j)*2, row.Get(2*k2))
				pack.Set((r*rows2+j)*2+1, row.Get(2*k2+1))
			}
		}
		c.Endpoint().Compute(costmodel.Copy(blockBytes))
		// Destination layout: staging block indexed by source rank.
		c.StoreBulk(packBase+dst*blockBytes, splitc.GPtr{Proc: dst, Off: rBase + rank*blockBytes}, blockBytes)
	}
	c.AllStoreSync()

	// Step 4: unpack into k2-major rows and FFT over n1. Staging block
	// from source s holds Y[n1 = s*rows1 + r][k2 = rank*rows2 + j] at
	// (r*rows2 + j).
	for j := 0; j < rows2; j++ {
		row := make([]complex128, f.N1)
		for s := 0; s < p; s++ {
			blk := c.LocalF64(rBase+s*rows1*rows2*16, rows1*rows2*2)
			for r := 0; r < rows1; r++ {
				row[s*rows1+r] = complex(blk.Get((r*rows2+j)*2), blk.Get((r*rows2+j)*2+1))
			}
		}
		fftInPlace(row)
		v := c.LocalF64(zBase+j*f.N1*16, f.N1*2)
		for i, x := range row {
			v.Set(2*i, real(x))
			v.Set(2*i+1, imag(x))
		}
		c.Endpoint().Compute(costmodel.Flops(5*f.N1*log2(f.N1)) + costmodel.Copy(f.N1*16))
	}
	c.Barrier()

	// Sample the spot coefficients: X[k2 + N2*k1] is element k1 of the
	// row owned for k2.
	for k := range f.serial {
		k2 := k % f.N2
		k1 := k / f.N2
		if k2/rows2 == rank {
			j := k2 % rows2
			v := c.LocalF64(zBase+j*f.N1*16, f.N1*2)
			f.spot[k] = complex(v.Get(2*k1), v.Get(2*k1+1))
		}
	}
	env.MarkStop(rank)
}

func log2(n int) int {
	k := 0
	for v := 1; v < n; v *= 2 {
		k++
	}
	return k
}

// Verify implements apps.App.
func (f *FFT) Verify() error {
	if len(f.spot) != len(f.serial) {
		return fmt.Errorf("sampled %d coefficients, want %d", len(f.spot), len(f.serial))
	}
	for k, want := range f.serial {
		got := f.spot[k]
		if cmplx.Abs(got-want) > 1e-6*(1+cmplx.Abs(want)) {
			return fmt.Errorf("X[%d] = %v, want %v", k, got, want)
		}
	}
	return nil
}
