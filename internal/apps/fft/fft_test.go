package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestFFTInPlaceMatchesDFT(t *testing.T) {
	const n = 64
	a := make([]complex128, n)
	for i := range a {
		a[i] = input(i)
	}
	fftInPlace(a)
	for _, k := range []int{0, 1, 5, n / 2, n - 1} {
		var want complex128
		for tt := 0; tt < n; tt++ {
			want += input(tt) * cmplx.Rect(1, -2*math.Pi*float64(tt*k)/float64(n))
		}
		if cmplx.Abs(a[k]-want) > 1e-9*(1+cmplx.Abs(want)) {
			t.Fatalf("X[%d] = %v, want %v", k, a[k], want)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	a := make([]complex128, 16)
	a[0] = 1
	fftInPlace(a)
	for k, x := range a {
		if cmplx.Abs(x-1) > 1e-12 {
			t.Fatalf("X[%d] = %v", k, x)
		}
	}
}

func TestLog2(t *testing.T) {
	for n, want := range map[int]int{1: 0, 2: 1, 8: 3, 1024: 10} {
		if log2(n) != want {
			t.Fatalf("log2(%d) = %d", n, log2(n))
		}
	}
}
