package apps_test

import (
	"testing"

	"mproxy/internal/apps"
	"mproxy/internal/apps/registry"
	"mproxy/internal/arch"
	"mproxy/internal/machine"
)

// TestEveryAppOnEveryArchitecture is the suite-wide integration sweep: all
// ten applications run, verify against their serial references, and report
// plausible times on all six design points (Test scale, 4 processors).
func TestEveryAppOnEveryArchitecture(t *testing.T) {
	for _, spec := range registry.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			var times []float64
			for _, a := range arch.All {
				env := apps.NewEnv(machine.Config{Nodes: 4, ProcsPerNode: 1}, a, 1<<22)
				d, err := apps.Run(env, spec.New(registry.Test))
				if err != nil {
					t.Fatalf("%s: %v", a.Name, err)
				}
				if d <= 0 {
					t.Fatalf("%s: no measured time", a.Name)
				}
				times = append(times, d.Millis())
			}
			// HW1 (index 1) should never lose to MP0 or SW1 (indexes 2, 5).
			if times[1] > times[2]*1.001 || times[1] > times[5]*1.001 {
				t.Errorf("HW1 lost: times = %v (HW0 HW1 MP0 MP1 MP2 SW1)", times)
			}
		})
	}
}

// TestEveryAppOnSMPNodes runs the suite in the Figure 9 topology (2 nodes
// x 2 processors), exercising the intra-node fast path and agent sharing
// for all programming models.
func TestEveryAppOnSMPNodes(t *testing.T) {
	for _, spec := range registry.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			env := apps.NewEnv(machine.Config{Nodes: 2, ProcsPerNode: 2}, arch.MP1, 1<<22)
			if _, err := apps.Run(env, spec.New(registry.Test)); err != nil {
				t.Fatal(err)
			}
			if env.Fab.Stats().Intra == 0 {
				t.Error("no intra-node communication recorded on SMP nodes")
			}
		})
	}
}

// TestEveryAppOddProcessorCounts guards against power-of-two assumptions.
func TestEveryAppOddProcessorCounts(t *testing.T) {
	for _, spec := range registry.All() {
		if spec.Name == "FFT" {
			continue // FFT legitimately requires rows divisible by P
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			env := apps.NewEnv(machine.Config{Nodes: 3, ProcsPerNode: 1}, arch.MP2, 1<<22)
			if _, err := apps.Run(env, spec.New(registry.Test)); err != nil {
				t.Fatal(err)
			}
		})
	}
}
