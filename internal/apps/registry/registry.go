// Package registry wires up the ten-application suite of Table 5 with
// three problem scales: Test (seconds of wall time, for unit tests), Small
// (the default for the experiment drivers; scaled-down inputs with the
// same communication structure), and Full (the paper's published inputs).
// Scaling is reported alongside every reproduced figure in EXPERIMENTS.md.
package registry

import (
	"fmt"
	"sort"

	"mproxy/internal/apps"
	"mproxy/internal/apps/barnes"
	"mproxy/internal/apps/fft"
	"mproxy/internal/apps/lu"
	"mproxy/internal/apps/mm"
	"mproxy/internal/apps/moldy"
	"mproxy/internal/apps/pray"
	"mproxy/internal/apps/sortapp"
	"mproxy/internal/apps/water"
	"mproxy/internal/apps/wator"
)

// Scale selects the problem size.
type Scale int

const (
	// Test sizes run in milliseconds; used by the test suite.
	Test Scale = iota
	// Small is the experiment drivers' default: scaled-down inputs that
	// preserve each program's communication structure.
	Small
	// Full is the paper's Table 5 inputs.
	Full
)

func (s Scale) String() string {
	switch s {
	case Test:
		return "test"
	case Small:
		return "small"
	default:
		return "full"
	}
}

// Spec describes one application at every scale.
type Spec struct {
	Name  string
	Model string // programming model (Table 5 grouping)
	// Input descriptions per scale, for reports.
	Inputs map[Scale]string
	// New builds a fresh instance at the given scale.
	New func(s Scale) apps.App
}

// pick returns t, s or f depending on the scale.
func pick[T any](sc Scale, t, s, f T) T {
	switch sc {
	case Test:
		return t
	case Small:
		return s
	default:
		return f
	}
}

var specs = []Spec{
	{
		Name: "Moldy", Model: "native RMA",
		Inputs: map[Scale]string{
			Test: "96 atoms, 2 iterations", Small: "768 atoms, 4 iterations",
			Full: "2000 atoms (immunoglobin-sized), 10 iterations",
		},
		New: func(sc Scale) apps.App {
			return moldy.New(pick(sc, 96, 768, 2000), pick(sc, 2, 4, 10))
		},
	},
	{
		Name: "LU", Model: "CRL",
		Inputs: map[Scale]string{
			Test: "48x48, 8x8 blocks", Small: "192x192, 8x8 blocks",
			Full: "500x500, 10x10 blocks",
		},
		New: func(sc Scale) apps.App {
			if sc == Full {
				return lu.New(500, 10)
			}
			return lu.New(pick(sc, 48, 192, 500), 8)
		},
	},
	{
		Name: "Barnes-Hut", Model: "CRL",
		Inputs: map[Scale]string{
			Test: "96 bodies, 2 steps", Small: "1024 bodies, 2 steps",
			Full: "4096 bodies, 3 steps",
		},
		New: func(sc Scale) apps.App {
			return barnes.New(pick(sc, 96, 1024, 4096), pick(sc, 2, 2, 3))
		},
	},
	{
		Name: "Water", Model: "CRL",
		Inputs: map[Scale]string{
			Test: "48 molecules, 2 steps", Small: "216 molecules, 3 steps",
			Full: "512 molecules, 3 steps",
		},
		New: func(sc Scale) apps.App {
			return water.New(pick(sc, 48, 216, 512), pick(sc, 2, 3, 3))
		},
	},
	{
		Name: "MM", Model: "Split-C",
		Inputs: map[Scale]string{
			Test: "32x32, 8x8 blocks", Small: "128x128, 8x8 blocks",
			Full: "256x256, 8x8 blocks",
		},
		New: func(sc Scale) apps.App {
			return mm.New(pick(sc, 32, 128, 256), 8)
		},
	},
	{
		Name: "FFT", Model: "Split-C",
		Inputs: map[Scale]string{
			Test: "512 points", Small: "16K points", Full: "1M points",
		},
		New: func(sc Scale) apps.App {
			n1 := pick(sc, 16, 128, 1024)
			n2 := pick(sc, 32, 128, 1024)
			return fft.New(n1, n2)
		},
	},
	{
		Name: "Sample", Model: "Split-C",
		Inputs: map[Scale]string{
			Test: "600 keys", Small: "16K keys", Full: "1M keys",
		},
		New: func(sc Scale) apps.App {
			return sortapp.New(pick(sc, 600, 16384, 1<<20), false)
		},
	},
	{
		Name: "Sampleb", Model: "Split-C",
		Inputs: map[Scale]string{
			Test: "2000 keys", Small: "64K keys", Full: "1M keys",
		},
		New: func(sc Scale) apps.App {
			return sortapp.New(pick(sc, 2000, 1<<16, 1<<20), true)
		},
	},
	{
		Name: "P-Ray", Model: "Split-C",
		Inputs: map[Scale]string{
			Test: "32x24 image, 8 objects", Small: "128x96 image, 8 objects",
			Full: "512x512 image, 8 objects",
		},
		New: func(sc Scale) apps.App {
			return pray.New(pick(sc, 32, 128, 512), pick(sc, 24, 96, 512))
		},
	},
	{
		Name: "Wator", Model: "Split-C",
		Inputs: map[Scale]string{
			Test: "48 fish, 2 steps", Small: "256 fish, 3 steps",
			Full: "400 fish, 10 steps",
		},
		New: func(sc Scale) apps.App {
			return wator.New(pick(sc, 48, 256, 400), pick(sc, 2, 3, 10))
		},
	},
}

// Names returns the suite's application names in Table 5 order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// All returns the specs in Table 5 order.
func All() []Spec { return append([]Spec(nil), specs...) }

// ByName returns the spec for an application (case-sensitive).
func ByName(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	var have []string
	for _, s := range specs {
		have = append(have, s.Name)
	}
	sort.Strings(have)
	return Spec{}, fmt.Errorf("unknown application %q (have %v)", name, have)
}
