package registry

import "testing"

func TestSuiteMatchesTable5(t *testing.T) {
	names := Names()
	want := []string{"Moldy", "LU", "Barnes-Hut", "Water", "MM", "FFT",
		"Sample", "Sampleb", "P-Ray", "Wator"}
	if len(names) != len(want) {
		t.Fatalf("suite size = %d", len(names))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("suite[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Water")
	if err != nil || s.Name != "Water" || s.Model != "CRL" {
		t.Fatalf("Water = %+v, %v", s, err)
	}
	if _, err := ByName("water"); err == nil {
		t.Fatal("lookup is case-sensitive by design")
	}
}

func TestEverySpecBuildsAtEveryScale(t *testing.T) {
	for _, spec := range All() {
		for _, sc := range []Scale{Test, Small, Full} {
			app := spec.New(sc)
			if app == nil || app.Name() != spec.Name {
				t.Errorf("%s at %v: bad instance", spec.Name, sc)
			}
			if spec.Inputs[sc] == "" {
				t.Errorf("%s at %v: missing input description", spec.Name, sc)
			}
		}
	}
}

func TestScaleStrings(t *testing.T) {
	if Test.String() != "test" || Small.String() != "small" || Full.String() != "full" {
		t.Fatal("scale names wrong")
	}
}
