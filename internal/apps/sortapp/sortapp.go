// Package sortapp reimplements Sample and Sampleb, the paper's Split-C
// sample-sort applications (Table 5: 1M keys each). Sample exchanges keys
// with am_request messages carrying two doubles each — the most
// communication-intensive program in the suite — while Sampleb is the bulk
// variant that batches each destination's keys into bulk stores.
package sortapp

import (
	"fmt"
	"math"
	"sort"

	"mproxy/internal/am"
	"mproxy/internal/apps"
	"mproxy/internal/coll"
	"mproxy/internal/costmodel"
	"mproxy/internal/splitc"
)

const oversample = 8

// Sort is one run of sample sort.
type Sort struct {
	Keys int  // total keys
	Bulk bool // Sampleb: batch the key exchange

	hKey    int // AM handler (Sample variant)
	nRemote []int
	recvd   [][]float64
	buckets [][]float64 // final sorted buckets
	input   summary
}

type summary struct {
	count int
	sum   float64
	min   float64
	max   float64
}

func (s *summary) add(k float64) {
	if s.count == 0 || k < s.min {
		s.min = k
	}
	if s.count == 0 || k > s.max {
		s.max = k
	}
	s.count++
	s.sum += k
}

// New returns a sample-sort instance.
func New(keys int, bulk bool) *Sort { return &Sort{Keys: keys, Bulk: bulk} }

// Name implements apps.App.
func (s *Sort) Name() string {
	if s.Bulk {
		return "Sampleb"
	}
	return "Sample"
}

// key generates the deterministic input key stream.
func key(g int) float64 {
	x := uint64(g)*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return float64(x%1000000007) / 1000.0
}

// Setup implements apps.App.
func (s *Sort) Setup(env *apps.Env) {
	p := env.Procs()
	s.recvd = make([][]float64, p)
	s.nRemote = make([]int, p)
	s.buckets = make([][]float64, p)
	for g := 0; g < s.Keys; g++ {
		s.input.add(key(g))
	}
	if !s.Bulk {
		s.hKey = env.AM.Register(func(port *am.Port, src int, args []int64, _ []byte) {
			s.recvd[port.Rank()] = append(s.recvd[port.Rank()], am.I2F(args[0]))
			s.nRemote[port.Rank()]++
		})
	}
}

// localKeys returns rank's cyclic share of the input.
func localKeys(total, p, rank int) []float64 {
	var out []float64
	for g := rank; g < total; g += p {
		out = append(out, key(g))
	}
	return out
}

// splitters computes the P-1 splitters from the gathered sample.
func splitters(sample []float64, p int) []float64 {
	sort.Float64s(sample)
	sp := make([]float64, p-1)
	for i := 1; i < p; i++ {
		sp[i-1] = sample[i*len(sample)/p]
	}
	return sp
}

// bucketOf returns the destination bucket for a key.
func bucketOf(sp []float64, k float64) int {
	lo, hi := 0, len(sp)
	for lo < hi {
		mid := (lo + hi) / 2
		if k < sp[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Body implements apps.App.
func (s *Sort) Body(env *apps.Env, rank int) {
	c := env.SC.Ctx(rank)
	p := c.Procs()
	co := c.Comm()
	port := c.Port()
	mine := localKeys(s.Keys, p, rank)

	env.MarkStart(rank)

	// Phase 1: local sort and sampling.
	sort.Float64s(mine)
	c.Endpoint().Compute(costmodel.IntOps(3 * len(mine) * log2(len(mine)+1)))
	mySample := make([]float64, 0, oversample)
	for i := 0; i < oversample; i++ {
		mySample = append(mySample, mine[(2*i+1)*len(mine)/(2*oversample)])
	}

	// Phase 2: splitter selection. Rank 0 gathers samples through the
	// collective scan-free path: each rank contributes its samples via
	// AllReduce slots (one reduce per slot keeps the protocol simple and
	// log-depth).
	var sp []float64
	if p > 1 {
		all := make([]float64, p*oversample)
		for slot := 0; slot < p*oversample; slot++ {
			v := 0.0
			if slot/oversample == rank {
				v = mySample[slot%oversample]
			}
			all[slot] = co.AllReduce(v, coll.Sum)
		}
		sp = splitters(all, p)
	}

	// Phase 3: key exchange.
	if p > 1 {
		if s.Bulk {
			s.exchangeBulk(env, c, rank, mine, sp)
		} else {
			s.exchangeFine(env, c, rank, mine, sp)
		}
	} else {
		c.Endpoint().Compute(costmodel.IntOps(400 * len(mine)))
		s.recvd[0] = mine
	}

	// Phase 4: sort the received bucket.
	bucket := append([]float64(nil), s.recvd[rank]...)
	sort.Float64s(bucket)
	c.Endpoint().Compute(costmodel.IntOps(3 * len(bucket) * log2(len(bucket)+1)))
	s.buckets[rank] = bucket
	env.MarkStop(rank)
	_ = port
}

// exchangeFine sends every key in its own am_request carrying two doubles
// (key and sequence tag), exactly as the paper describes Sample's main
// communication phase.
func (s *Sort) exchangeFine(env *apps.Env, c *splitc.Ctx, rank int, mine []float64, sp []float64) {
	port := c.Port()
	co := c.Comm()
	sent := 0
	for i, k := range mine {
		// Per-key record processing (~6 us serial per key, which is what
		// the paper's T(1) = 6.06 s over 1M keys implies).
		c.Endpoint().Compute(costmodel.IntOps(400))
		dst := bucketOf(sp, k)
		if dst == rank {
			s.recvd[rank] = append(s.recvd[rank], k)
			continue
		}
		port.Request(dst, s.hKey, am.F2I(k), int64(i))
		sent++
		// Poll between sends so incoming keys are drained promptly.
		port.PollAll()
	}
	// Termination: iterate until globally sent == received.
	for {
		port.PollAll()
		co.Barrier()
		total := co.AllReduce(float64(sent), coll.Sum)
		got := co.AllReduce(float64(s.nRemote[rank]), coll.Sum)
		if total == got {
			co.Barrier()
			return
		}
	}
}

// exchangeBulk batches keys per destination: an all-gather of counts fixes
// the receive layout, then one bulk store per destination moves the data.
func (s *Sort) exchangeBulk(env *apps.Env, c *splitc.Ctx, rank int, mine []float64, sp []float64) {
	p := c.Procs()
	co := c.Comm()

	// Bucketize locally into per-destination runs (same per-key record
	// processing as the fine-grained variant).
	runs := make([][]float64, p)
	for _, k := range mine {
		dst := bucketOf(sp, k)
		runs[dst] = append(runs[dst], k)
	}
	c.Endpoint().Compute(costmodel.IntOps(400 * len(mine)))

	// All-gather the p x p count matrix, one AllReduce per cell.
	counts := make([][]int, p)
	for src := range counts {
		counts[src] = make([]int, p)
	}
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			v := 0.0
			if src == rank {
				v = float64(len(runs[dst]))
			}
			counts[src][dst] = int(co.AllReduce(v, coll.Sum))
		}
	}

	// My receive buffer: contributions ordered by source. Heap layout
	// must be symmetric across ranks, so size both areas by the global
	// maxima (every rank has the full count matrix).
	recvTotal := 0
	for src := 0; src < p; src++ {
		recvTotal += counts[src][rank]
	}
	maxRecv, maxSend := 0, 0
	for dst := 0; dst < p; dst++ {
		tot := 0
		for src := 0; src < p; src++ {
			tot += counts[src][dst]
			if counts[src][dst] > maxSend {
				maxSend = counts[src][dst]
			}
		}
		if tot > maxRecv {
			maxRecv = tot
		}
	}
	recvBase := c.AllAlloc((maxRecv + 1) * 8)
	sendBase := c.AllAlloc((maxSend + 1) * 8 * p)

	// Offset of my block within dst's receive buffer.
	offsetAt := func(dst int) int {
		off := 0
		for src := 0; src < rank; src++ {
			off += counts[src][dst]
		}
		return off
	}
	for dst := 0; dst < p; dst++ {
		if len(runs[dst]) == 0 {
			continue
		}
		if dst == rank {
			s.recvd[rank] = append(s.recvd[rank], runs[dst]...)
			continue
		}
		buf := c.LocalF64(sendBase+dst*(maxSend+1)*8, len(runs[dst]))
		buf.Store(runs[dst])
		c.Endpoint().Compute(costmodel.Copy(len(runs[dst]) * 8))
		c.StoreBulk(sendBase+dst*(maxSend+1)*8,
			splitc.GPtr{Proc: dst, Off: recvBase + offsetAt(dst)*8}, len(runs[dst])*8)
	}
	c.AllStoreSync()

	// Unpack the receive buffer.
	view := c.LocalF64(recvBase, recvTotal)
	off := 0
	for src := 0; src < p; src++ {
		n := counts[src][rank]
		if src == rank {
			off += n // already appended locally
			continue
		}
		for i := 0; i < n; i++ {
			s.recvd[rank] = append(s.recvd[rank], view.Get(off+i))
		}
		off += n
	}
	c.Endpoint().Compute(costmodel.Copy(recvTotal * 8))
}

func log2(n int) int {
	k := 0
	for v := 1; v < n; v *= 2 {
		k++
	}
	return k
}

// Verify implements apps.App.
func (s *Sort) Verify() error {
	var out summary
	prevMax := math.Inf(-1)
	for r, b := range s.buckets {
		for i, k := range b {
			if i > 0 && b[i-1] > k {
				return fmt.Errorf("bucket %d not sorted at %d", r, i)
			}
			out.add(k)
		}
		if len(b) > 0 {
			if b[0] < prevMax {
				return fmt.Errorf("bucket %d overlaps bucket %d", r, r-1)
			}
			prevMax = b[len(b)-1]
		}
	}
	if out.count != s.input.count {
		return fmt.Errorf("key count %d, want %d", out.count, s.input.count)
	}
	if math.Abs(out.sum-s.input.sum) > 1e-6*math.Max(1, math.Abs(s.input.sum)) {
		return fmt.Errorf("key sum %.9g, want %.9g", out.sum, s.input.sum)
	}
	if out.min != s.input.min || out.max != s.input.max {
		return fmt.Errorf("min/max mismatch")
	}
	return nil
}
