package sortapp

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestBucketOfAgainstLinearScan(t *testing.T) {
	sp := []float64{10, 20, 30}
	cases := map[float64]int{5: 0, 10: 1, 15: 1, 29.9: 2, 30: 3, 99: 3}
	for k, want := range cases {
		if got := bucketOf(sp, k); got != want {
			t.Fatalf("bucketOf(%v) = %d, want %d", k, got, want)
		}
	}
}

func TestPropertyBucketOfOrderPreserving(t *testing.T) {
	f := func(raw []float64, k float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 15 {
			raw = raw[:15]
		}
		sp := append([]float64(nil), raw...)
		sort.Float64s(sp)
		b := bucketOf(sp, k)
		// All splitters below the bucket are <= k; all at/after are > k.
		for i := 0; i < b; i++ {
			if !(sp[i] <= k) {
				return false
			}
		}
		for i := b; i < len(sp); i++ {
			if !(sp[i] > k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplittersMonotone(t *testing.T) {
	sample := make([]float64, 64)
	for i := range sample {
		sample[i] = key(i)
	}
	sp := splitters(sample, 8)
	if len(sp) != 7 {
		t.Fatalf("splitters = %d", len(sp))
	}
	for i := 1; i < len(sp); i++ {
		if sp[i] < sp[i-1] {
			t.Fatalf("splitters not sorted: %v", sp)
		}
	}
}

func TestKeyStreamDeterministicPositive(t *testing.T) {
	for g := 0; g < 1000; g++ {
		if key(g) != key(g) || key(g) < 0 {
			t.Fatalf("bad key at %d", g)
		}
	}
}
