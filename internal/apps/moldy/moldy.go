// Package moldy reimplements Moldy, the paper's native-RMA application: a
// Monte-Carlo molecular-dynamics simulation whose main communication is a
// broadcast of each processor's updated atom slice between iterations,
// performed with PUT operations into every other processor's replica
// (Table 5: 1 immunoglobin molecule, 10 iterations).
package moldy

import (
	"fmt"
	"math"

	"mproxy/internal/apps"
	"mproxy/internal/coll"
	"mproxy/internal/costmodel"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
)

// doublesPerAtom: position (3) and velocity (3).
const doublesPerAtom = 6

// Moldy is one run of the program.
type Moldy struct {
	Atoms int
	Iters int

	replicas []*memory.Segment // per-rank replica of the whole system
	arrive   []memory.FlagRef  // per-rank slice-arrival counters
	energy   []float64         // per-rank final energy (must agree)
	serial   float64           // reference energy from a serial run
}

// New returns a Moldy instance. atoms is the molecule size.
func New(atoms, iters int) *Moldy { return &Moldy{Atoms: atoms, Iters: iters} }

// Name implements apps.App.
func (m *Moldy) Name() string { return "Moldy" }

// lcg is the deterministic pseudo-random stream used for the Monte-Carlo
// moves; identical in the simulated and serial runs.
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(*r>>11) / float64(1<<53)
}

// Setup implements apps.App.
func (m *Moldy) Setup(env *apps.Env) {
	p := env.Procs()
	reg := env.Fab.Registry()
	bytes := m.Atoms * doublesPerAtom * 8
	m.replicas = make([]*memory.Segment, p)
	m.arrive = make([]memory.FlagRef, p)
	m.energy = make([]float64, p)
	for r := 0; r < p; r++ {
		m.replicas[r] = reg.NewSegment(r, bytes)
		m.replicas[r].GrantAll(p)
		m.arrive[r] = reg.NewFlag(r)
	}
	// Identical initial configuration in every replica.
	init := initialState(m.Atoms)
	for r := 0; r < p; r++ {
		memory.Float64s(m.replicas[r], 0, m.Atoms*doublesPerAtom).Store(init)
	}
	m.serial = serialEnergy(m.Atoms, m.Iters, p)
}

func initialState(n int) []float64 {
	state := make([]float64, n*doublesPerAtom)
	rng := lcg(12345)
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			state[i*doublesPerAtom+d] = rng.next() * 10
		}
	}
	return state
}

// sliceBounds returns the atom range owned by a rank.
func sliceBounds(atoms, procs, rank int) (lo, hi int) {
	per := (atoms + procs - 1) / procs
	lo = rank * per
	hi = lo + per
	if hi > atoms {
		hi = atoms
	}
	if lo > hi {
		lo = hi
	}
	return
}

// step performs one Monte-Carlo sweep over [lo,hi) against the full system
// held in state, returning the slice's potential-energy contribution.
func step(state []float64, atoms, lo, hi, iter, rank int) float64 {
	rng := lcg(uint64(1000*iter + rank + 7))
	energy := 0.0
	for i := lo; i < hi; i++ {
		// Propose a move.
		for d := 0; d < 3; d++ {
			state[i*doublesPerAtom+d] += (rng.next() - 0.5) * 0.1
		}
		// Lennard-Jones-ish pair energy against all atoms.
		for j := 0; j < atoms; j++ {
			if j == i {
				continue
			}
			var r2 float64
			for d := 0; d < 3; d++ {
				dx := state[i*doublesPerAtom+d] - state[j*doublesPerAtom+d]
				r2 += dx * dx
			}
			r2 += 0.5 // softening
			inv := 1 / r2
			inv3 := inv * inv * inv
			energy += inv3*inv3 - inv3
		}
	}
	return energy
}

// serialEnergy computes the reference result with the parallel program's
// data dependences: every rank's sweep in iteration k reads the global
// state produced by iteration k-1.
func serialEnergy(atoms, iters, procs int) float64 {
	prev := initialState(atoms)
	total := 0.0
	for it := 0; it < iters; it++ {
		cur := append([]float64(nil), prev...)
		total = 0
		for r := 0; r < procs; r++ {
			lo, hi := sliceBounds(atoms, procs, r)
			work := append([]float64(nil), prev...)
			total += step(work, atoms, lo, hi, it, r)
			copy(cur[lo*doublesPerAtom:hi*doublesPerAtom], work[lo*doublesPerAtom:hi*doublesPerAtom])
		}
		prev = cur
	}
	return total
}

// Body implements apps.App.
func (m *Moldy) Body(env *apps.Env, rank int) {
	p := env.Procs()
	ep := env.Fab.Endpoint(rank)
	lo, hi := sliceBounds(m.Atoms, p, rank)
	mine := m.replicas[rank]
	view := memory.Float64s(mine, 0, m.Atoms*doublesPerAtom)
	sliceOff := lo * doublesPerAtom * 8
	sliceBytes := (hi - lo) * doublesPerAtom * 8

	env.MarkStart(rank)
	var local float64
	co := env.Coll.Comm(rank)
	for it := 0; it < m.Iters; it++ {
		// Read the iteration's input state; the barrier below guarantees
		// nobody overwrites a replica before every rank has read its own.
		state := view.Load()
		co.Barrier()
		local = step(state, m.Atoms, lo, hi, it, rank)
		// Write back only this rank's slice.
		view.Slice(lo*doublesPerAtom, hi*doublesPerAtom).Store(
			state[lo*doublesPerAtom : hi*doublesPerAtom])
		// Charge the sweep: ~11 flops per pair plus the proposal moves.
		pairs := (hi - lo) * (m.Atoms - 1)
		ep.Compute(costmodel.Flops(11*pairs + 6*(hi-lo)))

		// Broadcast the updated slice into every replica with PUTs; the
		// arrival counter at each destination tracks slice delivery.
		for r := 0; r < p; r++ {
			if r == rank {
				continue
			}
			err := ep.Put(mine.Addr(sliceOff), m.replicas[r].Addr(sliceOff), sliceBytes,
				memory.FlagRef{}, m.arrive[r])
			if err != nil {
				panic(fmt.Sprintf("moldy: %v", err))
			}
		}
		// Wait until all other ranks' slices for this iteration arrived.
		ep.WaitFlag(m.arrive[rank], int64((it+1)*(p-1)))
	}
	// Combine the per-slice energies.
	total := co.AllReduce(local, coll.Sum)
	m.energy[rank] = total
	env.MarkStop(rank)
	_ = sim.Time(0)
}

// Verify implements apps.App.
func (m *Moldy) Verify() error {
	for r, e := range m.energy {
		if math.Abs(e-m.serial) > 1e-6*math.Max(1, math.Abs(m.serial)) {
			return fmt.Errorf("rank %d energy %.9g, serial %.9g", r, e, m.serial)
		}
	}
	return nil
}
