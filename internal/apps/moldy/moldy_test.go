package moldy

import (
	"math"
	"testing"
)

func TestSliceBoundsPartition(t *testing.T) {
	// Every atom belongs to exactly one slice, slices are contiguous.
	for _, tc := range []struct{ atoms, procs int }{{10, 3}, {16, 4}, {7, 8}, {100, 16}} {
		covered := 0
		prevHi := 0
		for r := 0; r < tc.procs; r++ {
			lo, hi := sliceBounds(tc.atoms, tc.procs, r)
			if lo < prevHi {
				t.Fatalf("atoms=%d procs=%d: slice %d overlaps", tc.atoms, tc.procs, r)
			}
			if lo > hi {
				t.Fatalf("inverted bounds %d>%d", lo, hi)
			}
			covered += hi - lo
			if hi > prevHi {
				prevHi = hi
			}
		}
		if covered != tc.atoms || prevHi != tc.atoms {
			t.Fatalf("atoms=%d procs=%d: covered %d up to %d", tc.atoms, tc.procs, covered, prevHi)
		}
	}
}

func TestStepEnergyFinite(t *testing.T) {
	state := initialState(32)
	e := step(state, 32, 0, 16, 0, 0)
	if math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("energy = %v", e)
	}
}

func TestSerialEnergyDeterministic(t *testing.T) {
	// The Monte-Carlo move streams are seeded per (iteration, rank), so
	// the trajectory depends on the decomposition by design; what must
	// hold is bit-for-bit determinism for a fixed configuration.
	if a, b := serialEnergy(48, 2, 4), serialEnergy(48, 2, 4); a != b {
		t.Fatalf("not deterministic: %v vs %v", a, b)
	}
	if e := serialEnergy(48, 2, 4); math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("energy = %v", e)
	}
}

func TestLCGDeterministic(t *testing.T) {
	a, b := lcg(7), lcg(7)
	for i := 0; i < 10; i++ {
		if a.next() != b.next() {
			t.Fatal("lcg not deterministic")
		}
	}
}
