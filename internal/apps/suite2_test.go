package apps_test

import (
	"testing"

	"mproxy/internal/apps/fft"
	"mproxy/internal/apps/mm"
	"mproxy/internal/arch"
)

func TestMMCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		d := runApp(t, mm.New(32, 8), n, arch.MP1)
		t.Logf("mm P=%d: %v", n, d)
	}
	runApp(t, mm.New(32, 8), 2, arch.SW1)
}

func TestFFTCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		d := runApp(t, fft.New(16, 32), n, arch.MP1)
		t.Logf("fft P=%d: %v", n, d)
	}
	runApp(t, fft.New(16, 16), 4, arch.HW1)
}
