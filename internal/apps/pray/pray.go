// Package pray reimplements P-Ray, the paper's Split-C ray tracer
// (Table 5: 512x512 image, 8 objects). Rows are handed out by a master
// through small am_request/am_reply messages; with long render times per
// row, messages are small and infrequent, which is why P-Ray is largely
// unaffected by the choice of communication architecture (Section 5.3).
package pray

import (
	"fmt"
	"math"

	"mproxy/internal/am"
	"mproxy/internal/apps"
	"mproxy/internal/coll"
	"mproxy/internal/costmodel"
)

// rowChunk is the number of image rows handed out per work request.
const rowChunk = 4

// sphere is one scene object.
type sphere struct {
	cx, cy, cz, r float64
	shade         float64
}

// scene returns the 8-object scene.
func scene() []sphere {
	out := make([]sphere, 8)
	for i := range out {
		a := float64(i) * math.Pi / 4
		out[i] = sphere{
			cx: 2.5 * math.Cos(a), cy: 2.5 * math.Sin(a), cz: 8 + float64(i%3),
			r: 0.9 + 0.1*float64(i%4), shade: 0.3 + 0.1*float64(i),
		}
	}
	return out
}

// tracePixel intersects the ray through pixel (x,y) with the scene.
func tracePixel(objs []sphere, w, h, x, y int) float64 {
	// Camera at origin, image plane at z=1.
	dx := (float64(x)/float64(w) - 0.5) * 1.2
	dy := (float64(y)/float64(h) - 0.5) * 1.2
	dz := 1.0
	n := math.Sqrt(dx*dx + dy*dy + dz*dz)
	dx, dy, dz = dx/n, dy/n, dz/n

	best := math.Inf(1)
	val := 0.05 // background
	for _, s := range objs {
		// |o + t d - c|^2 = r^2 with o = 0.
		b := dx*s.cx + dy*s.cy + dz*s.cz
		c := s.cx*s.cx + s.cy*s.cy + s.cz*s.cz - s.r*s.r
		disc := b*b - c
		if disc < 0 {
			continue
		}
		t := b - math.Sqrt(disc)
		if t > 1e-6 && t < best {
			best = t
			// Lambert shading against a fixed light direction.
			px, py, pz := t*dx, t*dy, t*dz
			nx, ny, nz := (px-s.cx)/s.r, (py-s.cy)/s.r, (pz-s.cz)/s.r
			lambert := nx*0.57 + ny*0.57 - nz*0.57
			if lambert < 0 {
				lambert = 0
			}
			val = s.shade * (0.2 + 0.8*lambert)
		}
	}
	return val
}

// renderRow computes the checksum contribution of one row.
func renderRow(objs []sphere, w, h, y int) float64 {
	sum := 0.0
	for x := 0; x < w; x++ {
		sum += tracePixel(objs, w, h, x, y) * float64(1+(x+y)%7)
	}
	return sum
}

// PRay is one run of the program.
type PRay struct {
	W, H int

	hAsk, hGrant int
	nextRow      int
	granted      []int // per-rank last granted row (-1 = done, -2 = waiting)
	sums         []float64
	serial       float64
}

// New returns a P-Ray instance.
func New(w, h int) *PRay { return &PRay{W: w, H: h} }

// Name implements apps.App.
func (p *PRay) Name() string { return "P-Ray" }

// Setup implements apps.App.
func (p *PRay) Setup(env *apps.Env) {
	n := env.Procs()
	p.granted = make([]int, n)
	p.sums = make([]float64, n)
	objs := scene()
	p.serial = 0
	for y := 0; y < p.H; y++ {
		p.serial += renderRow(objs, p.W, p.H, y)
	}
	p.hGrant = env.AM.Register(func(port *am.Port, src int, args []int64, _ []byte) {
		p.granted[port.Rank()] = int(args[0])
	})
	p.hAsk = env.AM.Register(func(port *am.Port, src int, args []int64, _ []byte) {
		// Hand out chunks of rows; with a long render time per chunk the
		// messages stay small and infrequent, the property Section 5.3
		// credits for P-Ray's insensitivity to the design points.
		row := -1
		if p.nextRow < p.H {
			row = p.nextRow
			p.nextRow += rowChunk
		}
		port.Reply(src, p.hGrant, int64(row))
	})
}

// Body implements apps.App.
func (p *PRay) Body(env *apps.Env, rank int) {
	port := env.AM.Port(rank)
	ep := env.Fab.Endpoint(rank)
	objs := scene()
	env.MarkStart(rank)
	sum := 0.0
	for {
		p.granted[rank] = -2
		port.Request(0, p.hAsk)
		port.WaitUntil(func() bool { return p.granted[rank] != -2 })
		row := p.granted[rank]
		if row < 0 {
			break
		}
		for y := row; y < row+rowChunk && y < p.H; y++ {
			sum += renderRow(objs, p.W, p.H, y)
			// ~200 flops per pixel (intersections, shadow ray, shading).
			ep.Compute(costmodel.Flops(200 * p.W))
		}
	}
	total := env.Coll.Comm(rank).AllReduce(sum, coll.Sum)
	p.sums[rank] = total
	env.MarkStop(rank)
}

// Verify implements apps.App.
func (p *PRay) Verify() error {
	for r, s := range p.sums {
		if math.Abs(s-p.serial) > 1e-9*math.Max(1, math.Abs(p.serial)) {
			return fmt.Errorf("rank %d checksum %.12g, serial %.12g", r, s, p.serial)
		}
	}
	return nil
}
