package pray

import (
	"math"
	"testing"
)

func TestSceneHasEightObjects(t *testing.T) {
	if len(scene()) != 8 {
		t.Fatalf("objects = %d", len(scene()))
	}
}

func TestTracePixelBackgroundAndHit(t *testing.T) {
	objs := scene()
	// A corner ray misses everything: background value.
	bg := tracePixel(objs, 100, 100, 0, 0)
	if bg != 0.05 {
		t.Fatalf("background = %v", bg)
	}
	// Some pixel in the image must hit a sphere (value differs from
	// background and is a plausible shade).
	hit := false
	for y := 0; y < 64 && !hit; y++ {
		for x := 0; x < 64; x++ {
			v := tracePixel(objs, 64, 64, x, y)
			if v != 0.05 {
				if v < 0 || v > 1.2 {
					t.Fatalf("shade out of range: %v", v)
				}
				hit = true
				break
			}
		}
	}
	if !hit {
		t.Fatal("no ray hit any sphere")
	}
}

func TestRenderRowDeterministic(t *testing.T) {
	objs := scene()
	a := renderRow(objs, 64, 64, 10)
	if a != renderRow(objs, 64, 64, 10) {
		t.Fatal("row render not deterministic")
	}
	if math.IsNaN(a) {
		t.Fatal("NaN checksum")
	}
}
