// Package apps provides the harness for the paper's ten-application suite
// (Table 5): the software stack an application runs on (machine, fabric,
// active messages, collectives, CRL, Split-C), the SPMD launch logic, and
// the timing protocol. Applications implement App and compute their real
// results inside the simulation, charging deterministic compute time via
// the cost model.
package apps

import (
	"fmt"

	"mproxy/internal/am"
	"mproxy/internal/arch"
	"mproxy/internal/coll"
	"mproxy/internal/comm"
	"mproxy/internal/crl"
	"mproxy/internal/machine"
	"mproxy/internal/mpi"
	"mproxy/internal/sim"
	"mproxy/internal/splitc"
	"mproxy/internal/trace"
)

// App is one benchmark program.
type App interface {
	// Name returns the program name as in Table 5.
	Name() string
	// Setup runs host-side before the simulation starts: allocate regions,
	// heaps and initial data.
	Setup(env *Env)
	// Body is the SPMD program body, run by every rank inside the
	// simulation. Implementations bracket their measured phase with
	// env.MarkStart / env.MarkStop.
	Body(env *Env, rank int)
	// Verify checks the computed result host-side after the run.
	Verify() error
}

// Env is the full software stack for one run.
type Env struct {
	Eng  *sim.Engine
	Cl   *machine.Cluster
	Fab  *comm.Fabric
	AM   *am.Layer
	Coll *coll.Group
	CRL  *crl.Layer
	SC   *splitc.World
	MPI  *mpi.World

	timerStart sim.Time
	timerStop  sim.Time
	started    bool
}

// EnvOptions carries per-run simulation parameters that the default stack
// leaves zero: fabric tuning (command-queue capacity, reliable transport),
// an optional fault plane, and an optional per-run tracer. The zero value
// is the fault-free default configuration.
type EnvOptions struct {
	Fabric comm.Options
	Fault  machine.FaultPlane
	// Tracer, when non-nil, is installed on the run's engine before the
	// machine is built, so the trace stream covers the whole construction —
	// the same coverage the golden-trace scenarios get by calling SetTracer
	// immediately after NewEngine. Unlike the deprecated process-global
	// tracer (sim.SetGlobalTracer), a per-run tracer composes with parallel
	// runs: each engine gets its own, with no shared state. The tracer must
	// not be shared between concurrently running engines.
	Tracer trace.Tracer
}

// NewEnv builds the stack for a cluster of cfg under design point a.
// heapBytes sizes the per-processor Split-C global heap.
func NewEnv(cfg machine.Config, a arch.Params, heapBytes int) *Env {
	return NewEnvWith(cfg, a, heapBytes, EnvOptions{})
}

// NewEnvWith is NewEnv with explicit simulation options.
func NewEnvWith(cfg machine.Config, a arch.Params, heapBytes int, opt EnvOptions) *Env {
	eng := sim.NewEngine()
	if opt.Tracer != nil {
		eng.SetTracer(opt.Tracer)
	}
	cl := machine.New(eng, cfg, a)
	if opt.Fault != nil {
		cl.SetFaultPlane(opt.Fault)
	}
	fab := comm.NewWith(cl, opt.Fabric)
	l := am.New(fab)
	g := coll.NewGroup(l)
	return &Env{
		Eng: eng, Cl: cl, Fab: fab, AM: l, Coll: g,
		CRL: crl.New(l), SC: splitc.New(l, g, heapBytes),
		MPI: mpi.New(l, g),
	}
}

// Procs returns the number of compute processors.
func (e *Env) Procs() int { return e.Cl.Cfg.Procs() }

// MarkStart opens the measured phase: a barrier, then rank 0 records the
// time. Call from every rank.
func (e *Env) MarkStart(rank int) {
	e.Coll.Comm(rank).Barrier()
	if rank == 0 {
		e.timerStart = e.Eng.Now()
		e.started = true
	}
}

// MarkStop closes the measured phase symmetrically.
func (e *Env) MarkStop(rank int) {
	e.Coll.Comm(rank).Barrier()
	if rank == 0 {
		e.timerStop = e.Eng.Now()
	}
}

// Elapsed returns the measured-phase duration.
func (e *Env) Elapsed() sim.Time {
	if !e.started {
		return 0
	}
	return e.timerStop - e.timerStart
}

// Run launches app on every rank, runs the simulation to completion, and
// verifies the result. It returns the measured-phase duration.
func Run(env *Env, app App) (sim.Time, error) {
	app.Setup(env)
	n := env.Procs()
	for r := 0; r < n; r++ {
		r := r
		env.Eng.Spawn(fmt.Sprintf("%s-rank%d", app.Name(), r), func(p *sim.Proc) {
			env.Fab.Endpoint(r).Bind(p)
			app.Body(env, r)
			// Final barrier: every rank keeps serving protocol requests
			// (CRL homes, AM queues) until the whole program is done.
			env.Coll.Comm(r).Barrier()
		})
	}
	if err := env.Eng.Run(); err != nil {
		return 0, fmt.Errorf("%s: %w", app.Name(), err)
	}
	if err := app.Verify(); err != nil {
		return 0, fmt.Errorf("%s: verification: %w", app.Name(), err)
	}
	return env.Elapsed(), nil
}
