package apps_test

import (
	"testing"

	"mproxy/internal/apps/moldy"
	"mproxy/internal/apps/wator"
	"mproxy/internal/arch"
)

func TestMoldyCorrectAcrossArchsAndSizes(t *testing.T) {
	for _, a := range []arch.Params{arch.MP1, arch.HW1, arch.SW1} {
		for _, n := range []int{1, 2, 4} {
			d := runApp(t, moldy.New(64, 3), n, a)
			t.Logf("moldy %s P=%d: %v", a.Name, n, d)
		}
	}
}

func TestWatorCorrectAcrossArchsAndSizes(t *testing.T) {
	for _, a := range []arch.Params{arch.MP1, arch.HW0} {
		for _, n := range []int{1, 2, 4} {
			d := runApp(t, wator.New(48, 2), n, a)
			t.Logf("wator %s P=%d: %v", a.Name, n, d)
		}
	}
}

func TestMoldySpeedsUp(t *testing.T) {
	t1 := runApp(t, moldy.New(96, 2), 1, arch.HW1)
	t4 := runApp(t, moldy.New(96, 2), 4, arch.HW1)
	if float64(t1)/float64(t4) < 2.0 {
		t.Errorf("moldy speedup on 4 procs = %.2f, want > 2", float64(t1)/float64(t4))
	}
}
