package wator

import (
	"math"
	"testing"
)

func TestForceSymmetryOfPairTerm(t *testing.T) {
	// Two isolated equal-mass fish attract each other along the line
	// joining them (before the drift field is added).
	snap := make([]float64, 2*fishWords)
	snap[0], snap[1], snap[2] = 0, 0, 1 // fish 0 at origin
	snap[4], snap[5], snap[6] = 3, 4, 1 // fish 1 at (3,4)
	fx0, fy0 := force(snap, 2, 0)
	fx1, fy1 := force(snap, 2, 1)
	// Remove the drift contributions.
	fx0 -= 0.3 - 0.01*snap[0]
	fy0 -= -0.01 * snap[1]
	fx1 -= 0.3 - 0.01*snap[4]
	fy1 -= -0.01 * snap[5]
	if math.Abs(fx0+fx1) > 1e-12 || math.Abs(fy0+fy1) > 1e-12 {
		t.Fatalf("pair forces not equal and opposite: (%v,%v) vs (%v,%v)", fx0, fy0, fx1, fy1)
	}
	if fx0 <= 0 || fy0 <= 0 {
		t.Fatalf("fish 0 should be pulled toward (3,4): %v %v", fx0, fy0)
	}
}

func TestSerialRunDeterministicAndFinite(t *testing.T) {
	a := serialRun(64, 3)
	if a != serialRun(64, 3) {
		t.Fatal("not deterministic")
	}
	if math.IsNaN(a) || math.IsInf(a, 0) {
		t.Fatalf("checksum = %v", a)
	}
}

func TestInitFishDistinctPositions(t *testing.T) {
	f := initFish(100)
	seen := map[[2]float64]bool{}
	for i := 0; i < 100; i++ {
		key := [2]float64{f[i*fishWords], f[i*fishWords+1]}
		if seen[key] {
			t.Fatalf("duplicate fish position %v", key)
		}
		seen[key] = true
	}
}
