// Package wator reimplements Wator, the paper's Split-C n-body simulation
// of fish in a current (Table 5: 400 fish, 10 simulated seconds). Each
// processor owns a cyclic slice of the fish; computing the forces on local
// fish requires GETs of the positions and masses of remotely mapped fish —
// small, frequent reads that make Wator one of the two applications that
// stress the communication subsystem hardest (Section 5.3).
package wator

import (
	"fmt"
	"math"

	"mproxy/internal/apps"
	"mproxy/internal/costmodel"
	"mproxy/internal/splitc"
)

// fishWords is the per-fish record: x, y, mass, generation pad.
const fishWords = 4

// Wator is one run of the program.
type Wator struct {
	Fish  int
	Steps int

	sums   []float64 // per-rank final position checksums
	serial float64
}

// New returns a Wator instance.
func New(fish, steps int) *Wator { return &Wator{Fish: fish, Steps: steps} }

// Name implements apps.App.
func (w *Wator) Name() string { return "Wator" }

// initFish places fish deterministically on a disc with varied masses.
func initFish(n int) []float64 {
	fish := make([]float64, n*fishWords)
	for i := 0; i < n; i++ {
		a := float64(i) * 2.399963 // golden-angle spiral
		r := math.Sqrt(float64(i+1)) * 0.7
		fish[i*fishWords+0] = r * math.Cos(a)
		fish[i*fishWords+1] = r * math.Sin(a)
		fish[i*fishWords+2] = 1 + float64(i%7)*0.25 // mass
	}
	return fish
}

// force computes the current-plus-attraction force on fish i given the
// full snapshot.
func force(snap []float64, n, i int) (fx, fy float64) {
	xi := snap[i*fishWords]
	yi := snap[i*fishWords+1]
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		dx := snap[j*fishWords] - xi
		dy := snap[j*fishWords+1] - yi
		r2 := dx*dx + dy*dy + 0.05
		w := snap[j*fishWords+2] / (r2 * math.Sqrt(r2))
		fx += dx * w
		fy += dy * w
	}
	// The current: a steady drift field.
	fx += 0.3 - 0.01*xi
	fy += -0.01 * yi
	return
}

const dt = 0.05

// advance moves fish i (positions only; the overdamped dynamics fold the
// velocity into the position update).
func advance(snap []float64, out []float64, n, i int) {
	fx, fy := force(snap, n, i)
	m := snap[i*fishWords+2]
	out[0] = snap[i*fishWords] + dt*fx/m
	out[1] = snap[i*fishWords+1] + dt*fy/m
}

// serialRun produces the reference checksum.
func serialRun(n, steps int) float64 {
	fish := initFish(n)
	next := append([]float64(nil), fish...)
	for s := 0; s < steps; s++ {
		var out [2]float64
		for i := 0; i < n; i++ {
			advance(fish, out[:], n, i)
			next[i*fishWords] = out[0]
			next[i*fishWords+1] = out[1]
		}
		fish, next = next, fish
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += fish[i*fishWords] + 2*fish[i*fishWords+1]
	}
	return sum
}

// Setup implements apps.App.
func (w *Wator) Setup(env *apps.Env) {
	w.sums = make([]float64, env.Procs())
	w.serial = serialRun(w.Fish, w.Steps)
}

// Body implements apps.App.
func (w *Wator) Body(env *apps.Env, rank int) {
	c := env.SC.Ctx(rank)
	p := c.Procs()
	n := w.Fish
	maxLocal := (n + p - 1) / p

	// Layout: local fish records, then a full-system snapshot buffer.
	localBase := c.AllAlloc(maxLocal * fishWords * 8)
	snapBase := c.AllAlloc(n * fishWords * 8)

	// Load this rank's fish (global fish k*p+rank is local slot k).
	init := initFish(n)
	local := c.LocalF64(localBase, maxLocal*fishWords)
	myCount := 0
	for g := rank; g < n; g += p {
		for d := 0; d < fishWords; d++ {
			local.Set(myCount*fishWords+d, init[g*fishWords+d])
		}
		myCount++
	}
	c.Barrier()

	env.MarkStart(rank)
	snap := c.LocalF64(snapBase, n*fishWords)
	var out [2]float64
	for s := 0; s < w.Steps; s++ {
		// Snapshot every fish: local ones by copy, remote ones with a GET
		// of the 32-byte fish record (the paper's hot loop).
		for g := 0; g < n; g++ {
			owner := g % p
			slot := g / p
			if owner == rank {
				for d := 0; d < fishWords; d++ {
					snap.Set(g*fishWords+d, local.Get(slot*fishWords+d))
				}
				c.Endpoint().Compute(costmodel.MemRefs(4))
				continue
			}
			c.GetBulk(snapBase+g*fishWords*8, splitc.GPtr{Proc: owner, Off: localBase + slot*fishWords*8}, fishWords*8)
			c.Sync()
		}
		// All snapshots must be complete before anyone moves a fish.
		c.Barrier()
		snapVals := snap.Load()
		for k := 0; k < myCount; k++ {
			g := k*p + rank
			advance(snapVals, out[:], n, g)
			local.Set(k*fishWords, out[0])
			local.Set(k*fishWords+1, out[1])
		}
		c.Endpoint().Compute(costmodel.Flops(myCount * (60*n + 10)))
		c.Barrier()
	}
	// Checksum over the final positions (gather via one more snapshot).
	for g := 0; g < n; g++ {
		owner := g % p
		slot := g / p
		if owner == rank {
			for d := 0; d < fishWords; d++ {
				snap.Set(g*fishWords+d, local.Get(slot*fishWords+d))
			}
			continue
		}
		c.GetBulk(snapBase+g*fishWords*8, splitc.GPtr{Proc: owner, Off: localBase + slot*fishWords*8}, fishWords*8)
	}
	c.Sync()
	sum := 0.0
	final := snap.Load()
	for i := 0; i < n; i++ {
		sum += final[i*fishWords] + 2*final[i*fishWords+1]
	}
	w.sums[rank] = sum
	env.MarkStop(rank)
}

// Verify implements apps.App.
func (w *Wator) Verify() error {
	for r, s := range w.sums {
		if math.Abs(s-w.serial) > 1e-9*math.Max(1, math.Abs(w.serial)) {
			return fmt.Errorf("rank %d checksum %.12g, serial %.12g", r, s, w.serial)
		}
	}
	return nil
}
