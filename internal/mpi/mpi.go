// Package mpi implements a message-passing layer with MPI semantics on the
// paper's RMA and RQ primitives — the other higher-level protocol (besides
// Active Messages) that Section 3 names as a natural client of the
// communication model. It provides tagged, source-matched, non-overtaking
// point-to-point sends and receives with the two classic protocols:
//
//   - eager: small messages travel inside an active message and are
//     buffered at the receiver if no matching receive is posted yet;
//   - rendezvous: large messages send only an envelope; when a matching
//     receive is posted, the receiver pulls the payload with a zero-copy
//     GET straight out of the sender's buffer and acknowledges — the
//     remote-memory-access style the paper advocates.
//
// Collectives delegate to the coll package.
package mpi

import (
	"fmt"

	"mproxy/internal/am"
	"mproxy/internal/coll"
	"mproxy/internal/comm"
	"mproxy/internal/costmodel"
	"mproxy/internal/memory"
)

// Any matches any source or any tag in a receive.
const Any = -1

// EagerLimit is the largest payload sent eagerly (inside the envelope
// message); larger messages use the rendezvous protocol.
const EagerLimit = 1024

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// Request is a handle on an outstanding Isend or Irecv.
type Request struct {
	done    bool
	status  Status
	pending *pendingGet // rendezvous receive awaiting its GET
}

// Done reports whether the operation has completed. Rendezvous receives
// finish inside Wait.
func (r *Request) Done() bool { return r.done }

// pendingGet tracks a rendezvous pull in flight.
type pendingGet struct {
	flag   memory.FlagRef
	sendID int64
	src    int
}

// envelope is the control record for one message.
type envelope struct {
	src, tag, n int
	eager       []byte      // eager payload (nil for rendezvous)
	srcAddr     memory.Addr // rendezvous source buffer
	sendID      int64       // rendezvous completion token at the sender
}

type postedRecv struct {
	src, tag int
	buf      memory.Addr
	max      int
	req      *Request
}

// World is the cluster-wide MPI state.
type World struct {
	l     *am.Layer
	g     *coll.Group
	comms []*Comm

	hSend int // envelope (eager payload or rendezvous header)
	hDone int // rendezvous completion ack to the sender
}

// Comm is one rank's communicator.
type Comm struct {
	w    *World
	rank int
	ep   *comm.Endpoint
	port *am.Port
	co   *coll.Comm

	posted     []*postedRecv
	unexpected []*envelope

	nextSendID int64
	sendReqs   map[int64]*Request
}

// New builds the MPI layer over the AM layer and collectives.
func New(l *am.Layer, g *coll.Group) *World {
	w := &World{l: l, g: g}
	for r := 0; r < l.Ranks(); r++ {
		w.comms = append(w.comms, &Comm{
			w: w, rank: r, ep: l.Fabric().Endpoint(r), port: l.Port(r),
			co: g.Comm(r), sendReqs: make(map[int64]*Request),
		})
	}
	w.hSend = l.Register(func(p *am.Port, src int, args []int64, payload []byte) {
		c := w.comms[p.Rank()]
		env := &envelope{
			src: src, tag: int(args[0]), n: int(args[1]), sendID: args[2],
			srcAddr: memory.Addr{Seg: memory.ASID(args[3]), Off: int(args[4])},
		}
		if env.n <= EagerLimit {
			env.eager = append([]byte(nil), payload...)
		}
		c.arrive(env)
	})
	w.hDone = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		c := w.comms[p.Rank()]
		if req, ok := c.sendReqs[args[0]]; ok {
			req.done = true
			delete(c.sendReqs, args[0])
		}
	})
	return w
}

// Comm returns rank's communicator.
func (w *World) Comm(rank int) *Comm { return w.comms[rank] }

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.w.comms) }

// Coll exposes the collective operations (AllReduce, Bcast, Scan, ...).
func (c *Comm) Coll() *coll.Comm { return c.co }

// Barrier synchronizes all ranks.
func (c *Comm) Barrier() { c.co.Barrier() }

// Isend starts sending n bytes at buf (in this rank's address space) to
// dst with the given tag. The buffer must stay untouched until Wait
// (rendezvous pulls it remotely).
func (c *Comm) Isend(buf memory.Addr, n, dst, tag int) *Request {
	r := &Request{}
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mpi: rank %d sends to %d", c.rank, dst))
	}
	if n <= EagerLimit {
		seg, ok := c.w.l.Fabric().Registry().Segment(buf.Seg)
		if !ok {
			panic("mpi: send buffer in unknown segment")
		}
		payload := append([]byte(nil), seg.Data[buf.Off:buf.Off+n]...)
		c.ep.Compute(costmodel.Copy(n))
		c.port.Send(dst, c.w.hSend, []int64{int64(tag), int64(n), 0, 0, 0}, payload)
		r.done = true // eager: the payload left with the message
		return r
	}
	c.nextSendID++
	id := c.nextSendID
	c.sendReqs[id] = r
	c.port.Request(dst, c.w.hSend,
		int64(tag), int64(n), id, int64(buf.Seg), int64(buf.Off))
	return r
}

// Irecv posts a receive of up to max bytes into buf, from src (or Any)
// with the given tag (or Any).
func (c *Comm) Irecv(buf memory.Addr, max, src, tag int) *Request {
	r := &Request{}
	pr := &postedRecv{src: src, tag: tag, buf: buf, max: max, req: r}
	// Match the unexpected queue first, in arrival order.
	for i, env := range c.unexpected {
		if matches(pr, env) {
			c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
			c.deliver(env, pr)
			return r
		}
	}
	c.posted = append(c.posted, pr)
	return r
}

// Send is a blocking Isend.
func (c *Comm) Send(buf memory.Addr, n, dst, tag int) {
	c.Wait(c.Isend(buf, n, dst, tag))
}

// Recv is a blocking Irecv.
func (c *Comm) Recv(buf memory.Addr, max, src, tag int) Status {
	return c.Wait(c.Irecv(buf, max, src, tag))
}

// Wait blocks until the request completes, serving incoming messages
// (matching, protocol processing) meanwhile. It returns the receive
// status.
func (c *Comm) Wait(r *Request) Status {
	c.port.WaitUntil(func() bool { return r.done || r.pending != nil })
	if r.pending != nil {
		pg := r.pending
		// The zero-copy pull: wait for the GET's data, then release the
		// sender's buffer with an ack.
		c.ep.WaitFlag(pg.flag, 1)
		c.port.Request(pg.src, c.w.hDone, pg.sendID)
		r.pending = nil
		r.done = true
	}
	return r.status
}

// WaitAll waits on several requests.
func (c *Comm) WaitAll(rs ...*Request) {
	for _, r := range rs {
		c.Wait(r)
	}
}

// arrive matches an incoming envelope against posted receives (in post
// order) or queues it as unexpected.
func (c *Comm) arrive(env *envelope) {
	for i, pr := range c.posted {
		if matches(pr, env) {
			c.posted = append(c.posted[:i], c.posted[i+1:]...)
			c.deliver(env, pr)
			return
		}
	}
	c.unexpected = append(c.unexpected, env)
}

func matches(pr *postedRecv, env *envelope) bool {
	return (pr.src == Any || pr.src == env.src) && (pr.tag == Any || pr.tag == env.tag)
}

// deliver completes a matched receive: copy an eager payload, or start the
// rendezvous pull. Runs inside an active-message handler, so it must not
// block; rendezvous completion is finished by Wait.
func (c *Comm) deliver(env *envelope, pr *postedRecv) {
	n := env.n
	if n > pr.max {
		panic(fmt.Sprintf("mpi: rank %d receive truncation: %d > %d (src %d tag %d)",
			c.rank, n, pr.max, env.src, env.tag))
	}
	pr.req.status = Status{Source: env.src, Tag: env.tag, Bytes: n}
	if n <= EagerLimit {
		seg, ok := c.w.l.Fabric().Registry().Segment(pr.buf.Seg)
		if !ok {
			panic("mpi: receive buffer in unknown segment")
		}
		copy(seg.Data[pr.buf.Off:pr.buf.Off+n], env.eager)
		c.ep.Compute(costmodel.Copy(n))
		pr.req.done = true
		return
	}
	// Rendezvous: one fresh flag per transfer (completions of concurrent
	// pulls must not be confused).
	flag := c.w.l.Fabric().Registry().NewFlag(c.rank)
	if err := c.ep.Get(pr.buf, env.srcAddr, n, flag, memory.FlagRef{}); err != nil {
		panic(fmt.Sprintf("mpi: rendezvous get: %v", err))
	}
	pr.req.pending = &pendingGet{flag: flag, sendID: env.sendID, src: env.src}
}
