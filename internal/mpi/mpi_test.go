package mpi

import (
	"testing"

	"mproxy/internal/am"
	"mproxy/internal/arch"
	"mproxy/internal/coll"
	"mproxy/internal/comm"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
)

// world runs body on every rank with an MPI layer and a per-rank buffer
// segment granted to all (rendezvous pulls need remote read access).
func world(t *testing.T, n int, a arch.Params, segBytes int,
	body func(c *Comm, seg *memory.Segment)) {
	t.Helper()
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: n, ProcsPerNode: 1}, a)
	f := comm.New(cl)
	l := am.New(f)
	g := coll.NewGroup(l)
	w := New(l, g)
	segs := make([]*memory.Segment, n)
	for r := 0; r < n; r++ {
		segs[r] = f.Registry().NewSegment(r, segBytes)
		segs[r].GrantAll(n)
	}
	for r := 0; r < n; r++ {
		r := r
		eng.Spawn("rank", func(p *sim.Proc) {
			f.Endpoint(r).Bind(p)
			body(w.Comm(r), segs[r])
			g.Comm(r).Barrier()
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEagerSendRecv(t *testing.T) {
	for _, a := range arch.All {
		t.Run(a.Name, func(t *testing.T) {
			world(t, 2, a, 256, func(c *Comm, seg *memory.Segment) {
				if c.Rank() == 0 {
					copy(seg.Data, "eager payload")
					c.Send(seg.Addr(0), 13, 1, 7)
				} else {
					st := c.Recv(seg.Addr(0), 256, 0, 7)
					if st.Source != 0 || st.Tag != 7 || st.Bytes != 13 {
						t.Errorf("status = %+v", st)
					}
					if string(seg.Data[:13]) != "eager payload" {
						t.Errorf("data = %q", seg.Data[:13])
					}
				}
			})
		})
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	const n = 3 * 4096 // well past EagerLimit, multi-page
	for _, a := range []arch.Params{arch.HW1, arch.MP1, arch.SW1} {
		t.Run(a.Name, func(t *testing.T) {
			world(t, 2, a, n, func(c *Comm, seg *memory.Segment) {
				if c.Rank() == 0 {
					for i := range seg.Data {
						seg.Data[i] = byte(i % 251)
					}
					c.Send(seg.Addr(0), n, 1, 0)
					// Send returned: the ack came back, so the buffer is
					// reusable.
					seg.Data[0] = 0xFF
				} else {
					st := c.Recv(seg.Addr(0), n, 0, Any)
					if st.Bytes != n {
						t.Fatalf("bytes = %d", st.Bytes)
					}
					for i := range seg.Data {
						if seg.Data[i] != byte(i%251) {
							t.Fatalf("byte %d corrupt", i)
						}
					}
				}
			})
		})
	}
}

func TestUnexpectedMessageBuffered(t *testing.T) {
	// Send long before the receive is posted.
	world(t, 2, arch.MP1, 256, func(c *Comm, seg *memory.Segment) {
		if c.Rank() == 0 {
			copy(seg.Data, "early")
			c.Send(seg.Addr(0), 5, 1, 3)
		} else {
			c.Coll().Port().Endpoint().Compute(200 * sim.Microsecond)
			st := c.Recv(seg.Addr(0), 256, 0, 3)
			if st.Bytes != 5 || string(seg.Data[:5]) != "early" {
				t.Errorf("got %+v %q", st, seg.Data[:5])
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	// Two messages with different tags; receives posted in reverse tag
	// order must match by tag, not arrival.
	world(t, 2, arch.HW1, 512, func(c *Comm, seg *memory.Segment) {
		if c.Rank() == 0 {
			copy(seg.Data[0:], "tagged-A")
			copy(seg.Data[16:], "tagged-B")
			c.Send(seg.Addr(0), 8, 1, 1)
			c.Send(seg.Addr(16), 8, 1, 2)
		} else {
			stB := c.Recv(seg.Addr(0), 8, 0, 2)
			stA := c.Recv(seg.Addr(16), 8, 0, 1)
			if string(seg.Data[:8]) != "tagged-B" || string(seg.Data[16:24]) != "tagged-A" {
				t.Errorf("tag matching failed: %q %q", seg.Data[:8], seg.Data[16:24])
			}
			if stA.Tag != 1 || stB.Tag != 2 {
				t.Errorf("status tags %d %d", stA.Tag, stB.Tag)
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	world(t, 4, arch.MP1, 256, func(c *Comm, seg *memory.Segment) {
		if c.Rank() != 0 {
			memory.PutI64(seg.Data, int64(100+c.Rank()))
			c.Send(seg.Addr(0), 8, 0, c.Rank())
			return
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			st := c.Recv(seg.Addr(0), 8, Any, Any)
			v := memory.GetI64(seg.Data)
			if int(v) != 100+st.Source || st.Tag != st.Source {
				t.Errorf("recv %d: v=%d st=%+v", i, v, st)
			}
			seen[st.Source] = true
		}
		if len(seen) != 3 {
			t.Errorf("sources = %v", seen)
		}
	})
}

func TestNonOvertakingSameSourceTag(t *testing.T) {
	// MPI ordering: two same-(src,tag) messages must be received in send
	// order.
	world(t, 2, arch.MP2, 256, func(c *Comm, seg *memory.Segment) {
		if c.Rank() == 0 {
			memory.PutI64(seg.Data, 1)
			c.Send(seg.Addr(0), 8, 1, 5)
			memory.PutI64(seg.Data, 2)
			c.Send(seg.Addr(0), 8, 1, 5)
		} else {
			c.Recv(seg.Addr(0), 8, 0, 5)
			first := memory.GetI64(seg.Data)
			c.Recv(seg.Addr(0), 8, 0, 5)
			second := memory.GetI64(seg.Data)
			if first != 1 || second != 2 {
				t.Errorf("order: %d then %d", first, second)
			}
		}
	})
}

func TestIsendIrecvOverlap(t *testing.T) {
	// Both ranks post receives first, then send: no deadlock thanks to
	// nonblocking posts.
	world(t, 2, arch.MP1, 8192, func(c *Comm, seg *memory.Segment) {
		peer := 1 - c.Rank()
		recv := c.Irecv(seg.Addr(4096), 4096, peer, 0)
		for i := 0; i < 2048; i++ {
			seg.Data[i] = byte(c.Rank() + 1)
		}
		send := c.Isend(seg.Addr(0), 2048, peer, 0)
		c.WaitAll(recv, send)
		if seg.Data[4096] != byte(peer+1) {
			t.Errorf("rank %d got %d", c.Rank(), seg.Data[4096])
		}
	})
}

func TestPingPongLatencyOrdering(t *testing.T) {
	// The MPI layer inherits the architecture ordering: MP1 ping-pong sits
	// between HW1 and SW1.
	lat := map[string]sim.Time{}
	for _, a := range []arch.Params{arch.HW1, arch.MP1, arch.SW1} {
		var took sim.Time
		world(t, 2, a, 256, func(c *Comm, seg *memory.Segment) {
			const reps = 10
			if c.Rank() == 0 {
				start := c.port.Endpoint().Proc().Now()
				for i := 0; i < reps; i++ {
					c.Send(seg.Addr(0), 8, 1, 0)
					c.Recv(seg.Addr(0), 8, 1, 0)
				}
				took = c.port.Endpoint().Proc().Now() - start
			} else {
				for i := 0; i < reps; i++ {
					c.Recv(seg.Addr(0), 8, 0, 0)
					c.Send(seg.Addr(0), 8, 0, 0)
				}
			}
		})
		lat[a.Name] = took
	}
	if !(lat["HW1"] < lat["MP1"] && lat["MP1"] < lat["SW1"]) {
		t.Errorf("latency ordering violated: %v", lat)
	}
}

func TestCollectivesThroughMPI(t *testing.T) {
	world(t, 4, arch.MP1, 64, func(c *Comm, seg *memory.Segment) {
		sum := c.Coll().AllReduce(float64(c.Rank()+1), coll.Sum)
		if sum != 10 {
			t.Errorf("allreduce = %v", sum)
		}
		c.Barrier()
	})
}

func TestTruncationPanics(t *testing.T) {
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, arch.MP1)
	f := comm.New(cl)
	l := am.New(f)
	g := coll.NewGroup(l)
	w := New(l, g)
	seg0 := f.Registry().NewSegment(0, 256)
	seg1 := f.Registry().NewSegment(1, 256)
	seg0.GrantAll(2)
	seg1.GrantAll(2)
	eng.Spawn("r0", func(p *sim.Proc) {
		f.Endpoint(0).Bind(p)
		w.Comm(0).Send(seg0.Addr(0), 100, 1, 0)
	})
	eng.Spawn("r1", func(p *sim.Proc) {
		f.Endpoint(1).Bind(p)
		w.Comm(1).Recv(seg1.Addr(0), 10, 0, 0) // too small
	})
	if err := eng.Run(); err == nil {
		t.Fatal("expected truncation failure")
	}
}
