package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUtilizationScalesLinearly(t *testing.T) {
	p := Proxy{ServiceUs: 10, RatePerProcUs: 0.01}
	if got := p.Utilization(1); got != 0.1 {
		t.Fatalf("util(1) = %v", got)
	}
	if got := p.Utilization(5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("util(5) = %v", got)
	}
}

func TestWaitGrowsAndSaturates(t *testing.T) {
	p := Proxy{ServiceUs: 10, RatePerProcUs: 0.01}
	w2, w5, w9 := p.WaitUs(2), p.WaitUs(5), p.WaitUs(9)
	if !(w2 < w5 && w5 < w9) {
		t.Fatalf("waits not increasing: %v %v %v", w2, w5, w9)
	}
	// M/D/1 at rho=0.5: wait = 0.5*10/(2*0.5) = 5us (half a service time).
	if math.Abs(w5-5) > 1e-9 {
		t.Fatalf("wait at rho=0.5 = %v, want 5", w5)
	}
	if !math.IsInf(p.WaitUs(10), 1) {
		t.Fatal("saturated proxy should have infinite wait")
	}
}

func TestSupportedMatchesStabilityRule(t *testing.T) {
	// The paper's Table 6 LU-like load: ~7.5 ops/ms at ~25 us service
	// would put four processors past 50%.
	p := Proxy{ServiceUs: 25, RatePerProcUs: 0.0075}
	n := p.Supported()
	if p.Utilization(n) > MaxStableUtilization+1e-12 {
		t.Fatalf("supported=%d exceeds threshold: %v", n, p.Utilization(n))
	}
	if p.Utilization(n+1) <= MaxStableUtilization {
		t.Fatalf("supported=%d not maximal", n)
	}
	if n != 2 {
		t.Fatalf("supported = %d, want 2 (the paper's prediction for the heavy apps)", n)
	}
}

func TestFromMeasurementRoundTrip(t *testing.T) {
	// Table 6 Water under MP1: 14.48 ops/ms per proc, 25.7% utilization
	// at 16 processors implies ~1.1 us of proxy time per op... but those
	// are per-processor rates over 16 procs sharing nothing; reconstruct
	// and check consistency.
	p := FromMeasurement(14.48, 0.257, 16)
	if got := p.Utilization(16); math.Abs(got-0.257) > 1e-9 {
		t.Fatalf("reconstructed utilization = %v", got)
	}
	if p.Supported() >= 32 {
		t.Fatalf("supported = %d, want < 32", p.Supported())
	}
}

func TestUseProxyOverSyscalls(t *testing.T) {
	// Five-processor nodes: factor 1.25. MP2 vs SW1 on the heavy apps
	// (Figure 9 discussion): better by >1.25x, so use the proxy.
	if !UseProxyOverSyscalls(1.0, 1.5, 5) {
		t.Error("1.5x improvement on 5-proc nodes should favor the proxy")
	}
	if UseProxyOverSyscalls(1.0, 1.1, 5) {
		t.Error("1.1x improvement should not justify losing a processor")
	}
	if UseProxyOverSyscalls(1.0, 100, 1) {
		t.Error("uniprocessor node cannot give up its only processor")
	}
}

func TestPropertyWaitMonotoneInLoad(t *testing.T) {
	f := func(svc, rate uint8, n uint8) bool {
		p := Proxy{ServiceUs: float64(svc%50) + 1, RatePerProcUs: (float64(rate%100) + 1) / 10000}
		k := int(n%20) + 1
		w1, w2 := p.WaitUs(k), p.WaitUs(k+1)
		return w2 >= w1 || math.IsInf(w1, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlowdown(t *testing.T) {
	p := Proxy{ServiceUs: 10, RatePerProcUs: 0.01}
	if s := p.Slowdown(5); math.Abs(s-1.5) > 1e-9 {
		t.Fatalf("slowdown at rho=0.5 = %v, want 1.5", s)
	}
	if !math.IsInf(p.Slowdown(100), 1) {
		t.Fatal("over-saturated slowdown should be infinite")
	}
}
