// Package queueing provides the Section 5.4 contention analysis: how many
// compute processors a single message proxy can support. The paper states
// that "a simple queuing model analysis indicates that the utilization of
// a communication agent should be below 50% for stable behavior"; this
// package derives waiting times from an M/D/1 model of the proxy (Poisson
// command arrivals, near-deterministic service) and applies the rule to
// measured per-processor loads.
package queueing

import "math"

// MaxStableUtilization is the paper's stability rule: beyond 50%
// utilization, queueing delay exceeds the service time itself and the
// proxy becomes the bottleneck.
const MaxStableUtilization = 0.5

// Proxy models a message proxy serving command arrivals.
type Proxy struct {
	// ServiceUs is the mean proxy occupancy per operation (microseconds).
	ServiceUs float64
	// RatePerProcUs is one compute processor's operation arrival rate
	// (operations per microsecond).
	RatePerProcUs float64
}

// Utilization returns the proxy utilization with n compute processors.
func (p Proxy) Utilization(n int) float64 {
	return float64(n) * p.RatePerProcUs * p.ServiceUs
}

// WaitUs returns the expected M/D/1 queueing delay (time a command waits
// before the proxy picks it up) with n compute processors, in
// microseconds. It returns +Inf at or beyond saturation.
func (p Proxy) WaitUs(n int) float64 {
	rho := p.Utilization(n)
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho * p.ServiceUs / (2 * (1 - rho))
}

// ResponseUs returns queueing delay plus service time.
func (p Proxy) ResponseUs(n int) float64 {
	w := p.WaitUs(n)
	if math.IsInf(w, 1) {
		return w
	}
	return w + p.ServiceUs
}

// Supported returns the largest processor count that keeps the proxy
// below the stability threshold.
func (p Proxy) Supported() int {
	if p.RatePerProcUs <= 0 || p.ServiceUs <= 0 {
		return math.MaxInt32
	}
	n := int(MaxStableUtilization / (p.RatePerProcUs * p.ServiceUs))
	if n < 0 {
		n = 0
	}
	return n
}

// Slowdown returns the factor by which mean response time exceeds bare
// service time at n processors — the visible cost of sharing the proxy.
func (p Proxy) Slowdown(n int) float64 {
	r := p.ResponseUs(n)
	if math.IsInf(r, 1) {
		return math.Inf(1)
	}
	return r / p.ServiceUs
}

// FromMeasurement builds a Proxy from a measured per-processor message
// rate (operations per millisecond, as in Table 6) and a measured
// utilization at that load with nProcs processors.
func FromMeasurement(ratePerMs float64, utilization float64, nProcs int) Proxy {
	rateUs := ratePerMs / 1000
	service := 0.0
	if rateUs > 0 && nProcs > 0 {
		service = utilization / (float64(nProcs) * rateUs)
	}
	return Proxy{ServiceUs: service, RatePerProcUs: rateUs}
}

// UseProxyOverSyscalls evaluates the Section 5.4 "compute or communicate"
// rule: with P-processor SMP nodes, dedicating one processor to a proxy
// pays off when it improves on system-call communication by more than
// P/(P-1). proxyTime and syscallTime are application execution times under
// the two alternatives with equal numbers of compute processors.
func UseProxyOverSyscalls(proxyTime, syscallTime float64, smpProcs int) bool {
	if smpProcs <= 1 {
		return false
	}
	factor := float64(smpProcs) / float64(smpProcs-1)
	return syscallTime/proxyTime > factor
}
