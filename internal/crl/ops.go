package crl

import (
	"fmt"

	"mproxy/internal/costmodel"
	"mproxy/internal/memory"
)

// Region operations (the CRL API): rgn_start_read / rgn_end_read /
// rgn_start_write / rgn_end_write / rgn_flush. Operations on a valid
// mapping are local (a few instructions); misses run the coherence
// protocol against the region's home.

// StartRead opens a read section: the caller may read the region's data
// until EndRead. It blocks until a coherent copy is local.
func (rg *Region) StartRead() {
	n := rg.node
	n.port.PollAll() // service protocol work before (possibly) blocking
	if rg.st != Invalid {
		rg.readers++
		n.hits++
		n.port.Endpoint().Compute(costmodel.IntOps(10))
		return
	}
	n.misses++
	rg.granted = false
	n.ly.protoMsgs++
	n.port.Request(rg.meta.home, n.ly.hRead, int64(rg.meta.rid), int64(n.rank))
	n.port.WaitUntil(func() bool { return rg.granted })
	rg.readers++
}

// EndRead closes a read section, performing any deferred invalidation.
func (rg *Region) EndRead() {
	n := rg.node
	if rg.readers <= 0 {
		panic(fmt.Sprintf("crl: rank %d EndRead on region %d with no open read", n.rank, rg.meta.rid))
	}
	rg.readers--
	n.port.Endpoint().Compute(costmodel.IntOps(8))
	rg.settleDeferred()
}

// StartWrite opens a write section, acquiring the exclusive copy.
func (rg *Region) StartWrite() {
	n := rg.node
	n.port.PollAll()
	if rg.st == Exclusive {
		rg.writers++
		n.hits++
		n.port.Endpoint().Compute(costmodel.IntOps(10))
		return
	}
	n.misses++
	rg.granted = false
	n.ly.protoMsgs++
	n.port.Request(rg.meta.home, n.ly.hWrite, int64(rg.meta.rid), int64(n.rank))
	n.port.WaitUntil(func() bool { return rg.granted })
	rg.writers++
}

// EndWrite closes a write section, performing any deferred recall.
func (rg *Region) EndWrite() {
	n := rg.node
	if rg.writers <= 0 {
		panic(fmt.Sprintf("crl: rank %d EndWrite on region %d with no open write", n.rank, rg.meta.rid))
	}
	rg.writers--
	n.port.Endpoint().Compute(costmodel.IntOps(8))
	rg.settleDeferred()
}

// settleDeferred performs invalidations and flushes that arrived while the
// region was in use.
func (rg *Region) settleDeferred() {
	if rg.readers > 0 || rg.writers > 0 {
		return
	}
	n := rg.node
	if rg.pendingInv {
		rg.pendingInv = false
		rg.st = Invalid
		n.ly.protoMsgs++
		n.port.Request(rg.meta.home, n.ly.hInvAck, int64(rg.meta.rid))
	}
	if rg.pendingFlush {
		rg.pendingFlush = false
		if rg.st != Invalid {
			rg.flushHome()
		}
	}
}

// Flush voluntarily writes the region home and invalidates the local copy
// (rgn_flush). A no-op unless this rank holds the current copy.
func (rg *Region) Flush() {
	if rg.readers > 0 || rg.writers > 0 {
		panic("crl: Flush inside an open read/write section")
	}
	if rg.st == Invalid || rg.meta.owner != rg.node.rank {
		return
	}
	rg.flushHome()
}

// State returns the mapping's coherence state.
func (rg *Region) State() State { return rg.st }

// Size returns the region size in bytes.
func (rg *Region) Size() int { return rg.meta.size }

// RID returns the region's identifier.
func (rg *Region) RID() RID { return rg.meta.rid }

// F64 returns a float64 view of the local copy: count elements starting at
// byte offset off. Only touch it inside a read or write section.
func (rg *Region) F64(off, count int) memory.F64 {
	return memory.Float64s(rg.buf, off, count)
}

// I64 returns an int64 view of the local copy.
func (rg *Region) I64(off, count int) memory.I64 {
	return memory.Int64s(rg.buf, off, count)
}

// Bytes exposes the raw local copy.
func (rg *Region) Bytes() []byte { return rg.buf.Data }
