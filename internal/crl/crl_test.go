package crl

import (
	"math/rand"
	"testing"

	"mproxy/internal/am"
	"mproxy/internal/arch"
	"mproxy/internal/coll"
	"mproxy/internal/comm"
	"mproxy/internal/machine"
	"mproxy/internal/sim"
)

// world builds an n-rank cluster with a CRL layer, calls setup on the host
// (region creation), then runs body on every rank.
func world(t *testing.T, n int, a arch.Params, setup func(ly *Layer), body func(nd *Node)) {
	t.Helper()
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: n, ProcsPerNode: 1}, a)
	f := comm.New(cl)
	l := am.New(f)
	ly := New(l)
	g := coll.NewGroup(l)
	setup(ly)
	for r := 0; r < n; r++ {
		r := r
		eng.Spawn("rank", func(p *sim.Proc) {
			f.Endpoint(r).Bind(p)
			body(ly.Node(r))
			// Keep serving protocol requests until every rank is done:
			// a CRL home must stay responsive for the lifetime of the
			// program, exactly as in real CRL.
			g.Comm(r).Barrier()
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankReadWrite(t *testing.T) {
	var rid RID
	world(t, 1, arch.MP1,
		func(ly *Layer) { rid = ly.Create(0, 64) },
		func(nd *Node) {
			rg := nd.Map(rid)
			rg.StartWrite()
			rg.F64(0, 8).Set(3, 2.5)
			rg.EndWrite()
			rg.StartRead()
			if got := rg.F64(0, 8).Get(3); got != 2.5 {
				t.Errorf("got %v", got)
			}
			rg.EndRead()
		})
}

func TestWriteThenRemoteRead(t *testing.T) {
	for _, a := range arch.All {
		t.Run(a.Name, func(t *testing.T) {
			var rid RID
			world(t, 2, a,
				func(ly *Layer) { rid = ly.Create(0, 64) },
				func(nd *Node) {
					rg := nd.Map(rid)
					if nd.Rank() == 1 {
						rg.StartWrite()
						rg.F64(0, 8).Set(0, 7.25)
						rg.EndWrite()
					} else {
						// Rank 0 (the home) waits for rank 1's value. Retry
						// reads until the write is visible.
						for {
							rg.StartRead()
							v := rg.F64(0, 8).Get(0)
							rg.EndRead()
							if v == 7.25 {
								break
							}
							// Drop the copy so the next read re-fetches.
							rg.Flush()
							nd.port.Endpoint().Compute(50 * sim.Microsecond)
						}
					}
				})
		})
	}
}

func TestReadYourOwnWriteAfterRemoteWrite(t *testing.T) {
	// Two ranks alternate exclusive writes, each incrementing a counter;
	// sequential consistency per region means no increment is lost.
	const rounds = 20
	var rid RID
	world(t, 2, arch.MP2,
		func(ly *Layer) { rid = ly.Create(0, 8) },
		func(nd *Node) {
			rg := nd.Map(rid)
			for i := 0; i < rounds; i++ {
				rg.StartWrite()
				v := rg.I64(0, 1)
				v.Set(0, v.Get(0)+1)
				rg.EndWrite()
			}
			// Everyone waits until both ranks' increments are visible.
			for {
				rg.StartRead()
				total := rg.I64(0, 1).Get(0)
				rg.EndRead()
				if total == 2*rounds {
					return
				}
				nd.port.Endpoint().Compute(20 * sim.Microsecond)
			}
		})
}

func TestMultipleConcurrentReaders(t *testing.T) {
	var rid RID
	world(t, 4, arch.MP1,
		func(ly *Layer) { rid = ly.Create(0, 32) },
		func(nd *Node) {
			rg := nd.Map(rid)
			if nd.Rank() == 0 {
				rg.StartWrite()
				rg.F64(0, 4).Store([]float64{1, 2, 3, 4})
				rg.EndWrite()
			} else {
				for {
					rg.StartRead()
					ok := rg.F64(0, 4).Get(3) == 4
					rg.EndRead()
					if ok {
						break
					}
					rg.Flush()
					nd.port.Endpoint().Compute(30 * sim.Microsecond)
				}
			}
		})
}

func TestReadHitIsLocal(t *testing.T) {
	var rid RID
	world(t, 2, arch.MP1,
		func(ly *Layer) { rid = ly.Create(0, 16) },
		func(nd *Node) {
			if nd.Rank() != 1 {
				return
			}
			rg := nd.Map(rid)
			rg.StartRead()
			rg.EndRead()
			missesAfterFirst := nd.Misses()
			for i := 0; i < 10; i++ {
				rg.StartRead()
				rg.EndRead()
			}
			if nd.Misses() != missesAfterFirst {
				t.Errorf("repeat reads missed: %d -> %d", missesAfterFirst, nd.Misses())
			}
			if nd.Hits() < 10 {
				t.Errorf("hits = %d", nd.Hits())
			}
		})
}

func TestWriterInvalidatesReaders(t *testing.T) {
	// After rank 1 writes, rank 2's old copy must be invalidated: its next
	// read fetches the new value without an explicit Flush.
	var rid, token RID
	world(t, 3, arch.HW1,
		func(ly *Layer) {
			rid = ly.Create(0, 8)
			token = ly.Create(0, 8)
		},
		func(nd *Node) {
			rg := nd.Map(rid)
			tk := nd.Map(token)
			switch nd.Rank() {
			case 2:
				// Take a shared copy of rid, then announce readiness.
				rg.StartRead()
				rg.EndRead()
				tk.StartWrite()
				tk.I64(0, 1).Set(0, 1)
				tk.EndWrite()
				// Wait for the writer's announcement.
				for {
					tk.StartRead()
					done := tk.I64(0, 1).Get(0) == 2
					tk.EndRead()
					if done {
						break
					}
					nd.port.Endpoint().Compute(20 * sim.Microsecond)
				}
				rg.StartRead()
				got := rg.F64(0, 1).Get(0)
				rg.EndRead()
				if got != 9.5 {
					t.Errorf("stale read: %v (invalidation failed)", got)
				}
			case 1:
				// Wait for rank 2's shared copy, then write.
				for {
					tk.StartRead()
					ready := tk.I64(0, 1).Get(0) == 1
					tk.EndRead()
					if ready {
						break
					}
					nd.port.Endpoint().Compute(20 * sim.Microsecond)
				}
				rg.StartWrite()
				rg.F64(0, 1).Set(0, 9.5)
				rg.EndWrite()
				tk.StartWrite()
				tk.I64(0, 1).Set(0, 2)
				tk.EndWrite()
			}
		})
}

func TestManyRegions(t *testing.T) {
	// Each rank owns a slice of regions and updates its own; then all
	// ranks read all regions and verify.
	const perRank = 8
	const ranks = 4
	var rids [ranks * perRank]RID
	world(t, ranks, arch.MP1,
		func(ly *Layer) {
			for i := range rids {
				rids[i] = ly.Create(i%ranks, 16)
			}
		},
		func(nd *Node) {
			regs := make([]*Region, len(rids))
			for i, rid := range rids {
				regs[i] = nd.Map(rid)
			}
			for i, rg := range regs {
				if i%ranks != nd.Rank() {
					continue
				}
				rg.StartWrite()
				rg.I64(0, 2).Set(0, int64(1000+i))
				rg.EndWrite()
			}
			for i, rg := range regs {
				for {
					rg.StartRead()
					v := rg.I64(0, 2).Get(0)
					rg.EndRead()
					if v == int64(1000+i) {
						break
					}
					rg.Flush()
					nd.port.Endpoint().Compute(30 * sim.Microsecond)
				}
			}
		})
}

func TestProtocolStressRandomOps(t *testing.T) {
	// Deterministic random workload: every rank performs a random sequence
	// of read and increment-write sections on shared counters. Sequential
	// consistency per region demands that no increment is lost.
	const ranks = 4
	const regions = 6
	const opsPerRank = 60
	var rids [regions]RID
	expected := make([]int64, regions)
	var plans [ranks][]int
	rng := rand.New(rand.NewSource(12345))
	for r := 0; r < ranks; r++ {
		for k := 0; k < opsPerRank; k++ {
			reg := rng.Intn(regions)
			write := rng.Intn(2) == 0
			op := reg * 2
			if write {
				op++
				expected[reg]++
			}
			plans[r] = append(plans[r], op)
		}
	}
	var finals [ranks][regions]int64
	world(t, ranks, arch.MP1,
		func(ly *Layer) {
			for i := range rids {
				rids[i] = ly.Create(i%ranks, 8)
			}
		},
		func(nd *Node) {
			regs := make([]*Region, regions)
			for i, rid := range rids {
				regs[i] = nd.Map(rid)
			}
			for _, op := range plans[nd.Rank()] {
				rg := regs[op/2]
				if op%2 == 1 {
					rg.StartWrite()
					v := rg.I64(0, 1)
					v.Set(0, v.Get(0)+1)
					rg.EndWrite()
				} else {
					rg.StartRead()
					_ = rg.I64(0, 1).Get(0)
					rg.EndRead()
				}
			}
			// Converge: read until all expected increments are visible.
			for i, rg := range regs {
				for {
					rg.StartRead()
					v := rg.I64(0, 1).Get(0)
					rg.EndRead()
					if v == expected[i] {
						finals[nd.Rank()][i] = v
						break
					}
					if v > expected[i] {
						t.Errorf("region %d overshot: %d > %d", i, v, expected[i])
						return
					}
					rg.Flush()
					nd.port.Endpoint().Compute(20 * sim.Microsecond)
				}
			}
		})
	for r := 0; r < ranks; r++ {
		for i := 0; i < regions; i++ {
			if finals[r][i] != expected[i] {
				t.Errorf("rank %d region %d: %d increments, want %d", r, i, finals[r][i], expected[i])
			}
		}
	}
}

func TestEndWithoutStartPanics(t *testing.T) {
	var rid RID
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 1, ProcsPerNode: 1}, arch.MP1)
	f := comm.New(cl)
	ly := New(am.New(f))
	rid = ly.Create(0, 8)
	eng.Spawn("rank", func(p *sim.Proc) {
		f.Endpoint(0).Bind(p)
		ly.Node(0).Map(rid).EndRead()
	})
	if err := eng.Run(); err == nil {
		t.Fatal("expected failure")
	}
}

func TestStateTransitions(t *testing.T) {
	var rid RID
	world(t, 2, arch.MP1,
		func(ly *Layer) { rid = ly.Create(0, 8) },
		func(nd *Node) {
			if nd.Rank() != 1 {
				return
			}
			rg := nd.Map(rid)
			if rg.State() != Invalid {
				t.Errorf("initial state %v", rg.State())
			}
			rg.StartRead()
			if rg.State() != Shared {
				t.Errorf("after StartRead: %v", rg.State())
			}
			rg.EndRead()
			rg.StartWrite()
			if rg.State() != Exclusive {
				t.Errorf("after StartWrite: %v", rg.State())
			}
			rg.EndWrite()
			rg.Flush()
			if rg.State() != Invalid {
				t.Errorf("after Flush: %v", rg.State())
			}
		})
}

func TestProtocolMessageAccounting(t *testing.T) {
	var rid RID
	var msgs int64
	var ly2 *Layer
	world(t, 2, arch.MP1,
		func(ly *Layer) { ly2 = ly; rid = ly.Create(0, 8) },
		func(nd *Node) {
			if nd.Rank() != 1 {
				return
			}
			rg := nd.Map(rid)
			rg.StartRead()
			rg.EndRead()
			msgs = ly2.ProtocolMessages()
		})
	if msgs < 2 { // request + data grant
		t.Errorf("protocol messages = %d", msgs)
	}
}
