package crl

import (
	"fmt"
	"sort"

	"mproxy/internal/am"
	"mproxy/internal/costmodel"
)

// crlDebug enables protocol tracing in debug builds.
var crlDebug = false

func int64FromBuf(b []byte) int64 {
	var v int64
	for i := 7; i >= 0; i-- {
		v = v<<8 | int64(b[i])
	}
	return v
}

// txnPhase tracks what the home's in-flight transaction is waiting for, so
// that unsolicited protocol traffic (voluntary flushes, stale acks) cannot
// resume it twice.
type txnPhase int

const (
	phaseNone      txnPhase = iota
	phaseFlushWait          // waiting for the exclusive owner's data
	phaseInvWait            // waiting for sharers' invalidation acks
)

// The fixed-home coherence protocol. All directory mutations run inside
// active-message handlers on the home rank's process, so each region's
// directory is single-threaded by construction; conflicting transactions
// queue at the home and are served in arrival order, giving sequential
// consistency per region.

// homeRequest is the entry point for MsgRead/MsgWrite at the home.
func (ly *Layer) homeRequest(p *am.Port, t txn, rid RID) {
	m := ly.metas[rid]
	if p.Rank() != m.home {
		panic(fmt.Sprintf("crl: request for region %d routed to rank %d (home %d)", rid, p.Rank(), m.home))
	}
	p.Endpoint().Compute(costmodel.IntOps(20))
	if m.busy {
		m.waitq = append(m.waitq, t)
		return
	}
	ly.startTxn(p, m, t)
}

func (ly *Layer) startTxn(p *am.Port, m *regionMeta, t txn) {
	m.busy = true
	m.cur = t
	m.phase = phaseNone
	if m.owner != -1 && m.owner != t.req {
		// Someone else holds the exclusive copy: recall it first. The
		// transaction continues in hFlushData when the data lands.
		m.phase = phaseFlushWait
		ly.protoMsgs++
		p.Request(m.owner, ly.hFlush, int64(m.rid))
		return
	}
	ly.continueTxn(p, m)
}

// continueTxn runs once the home copy is valid (or the requester is the
// owner).
func (ly *Layer) continueTxn(p *am.Port, m *regionMeta) {
	m.phase = phaseNone
	switch m.cur.kind {
	case txnRead:
		ly.grantRead(p, m)
	case txnWrite:
		ly.proceedWrite(p, m)
	}
}

func (ly *Layer) grantRead(p *am.Port, m *regionMeta) {
	req := m.cur.req
	if m.owner == req {
		// The requester already holds the only up-to-date copy: downgrade
		// in place, no data motion. The home copy remains stale, so the
		// ownership record stays until the copy is recalled.
		ly.protoMsgs++
		p.Request(req, ly.hGrantR, int64(m.rid))
	} else {
		m.copyset[req] = true
		ly.sendRegionData(p, m, req, ly.hDataR)
	}
	ly.endTxn(p, m)
}

func (ly *Layer) proceedWrite(p *am.Port, m *regionMeta) {
	req := m.cur.req
	// Invalidate all shared copies except the requester's, in rank order:
	// Go map iteration order is randomized, and the send order shapes the
	// event schedule, so an unsorted walk would make whole-application
	// timing vary run to run.
	sharers := make([]int, 0, len(m.copyset))
	for s := range m.copyset {
		if s != req {
			sharers = append(sharers, s)
		}
	}
	sort.Ints(sharers)
	m.reqHadShared = m.copyset[req]
	if len(sharers) > 0 {
		m.phase = phaseInvWait
		m.invAcksNeeded = len(sharers)
		for _, s := range sharers {
			ly.protoMsgs++
			p.Request(s, ly.hInv, int64(m.rid))
		}
		clear(m.copyset)
		return // continues in hInvAck
	}
	clear(m.copyset)
	ly.finishWrite(p, m)
}

func (ly *Layer) finishWrite(p *am.Port, m *regionMeta) {
	req := m.cur.req
	hadCopy := m.owner == req || m.reqHadShared
	m.owner = req
	if hadCopy {
		// Upgrade in place (the requester's exclusive copy is current).
		ly.protoMsgs++
		p.Request(req, ly.hDataW, int64(m.rid))
	} else {
		ly.sendRegionData(p, m, req, ly.hDataW)
	}
	ly.endTxn(p, m)
}

// sendRegionData ships the home copy to a requester: a PUT of the region
// bytes followed by the grant handler (an am_store).
func (ly *Layer) sendRegionData(p *am.Port, m *regionMeta, req, handler int) {
	ly.protoMsgs++
	if crlDebug && m.rid == 1 {
		fmt.Printf("t=%v GRANT data region %d to rank %d homeval=%d\n", p.Endpoint().Proc().Now(), m.rid, req, int64FromBuf(m.homeBuf.Data))
	}
	if req == m.home {
		// The home's mapping aliases the home buffer: grant without data.
		p.Request(req, handler, int64(m.rid))
		return
	}
	dst := ly.nodes[req].maps[m.rid]
	if dst == nil {
		panic(fmt.Sprintf("crl: rank %d requested unmapped region %d", req, m.rid))
	}
	p.Store(req, m.homeBuf.Addr(0), dst.buf.Addr(0), m.size, handler, int64(m.rid))
}

func (ly *Layer) endTxn(p *am.Port, m *regionMeta) {
	m.busy = false
	m.phase = phaseNone
	if len(m.waitq) > 0 {
		next := m.waitq[0]
		m.waitq = m.waitq[1:]
		ly.startTxn(p, m, next)
	}
}

// invalidate handles MsgInvalidate at a sharer.
func (n *Node) invalidate(rid RID) {
	rg := n.maps[rid]
	n.port.Endpoint().Compute(costmodel.IntOps(10))
	if rg.readers > 0 || rg.writers > 0 {
		rg.pendingInv = true
		return
	}
	rg.st = Invalid
	n.ly.protoMsgs++
	n.port.Request(rg.meta.home, n.ly.hInvAck, int64(rid))
}

// flushRequest handles MsgFlush at the exclusive owner.
func (n *Node) flushRequest(rid RID) {
	rg := n.maps[rid]
	n.port.Endpoint().Compute(costmodel.IntOps(10))
	if rg.readers > 0 || rg.writers > 0 {
		rg.pendingFlush = true
		return
	}
	if rg.st == Invalid {
		// A voluntary flush already carried the data home; the in-flight
		// hFlushData will resume the home's transaction.
		return
	}
	rg.flushHome()
}

// flushHome writes the owner's copy back to the home buffer and notifies
// the home, which resumes the stalled transaction.
func (rg *Region) flushHome() {
	n := rg.node
	rg.st = Invalid
	m := rg.meta
	if crlDebug && m.rid == 1 {
		fmt.Printf("t=%v FLUSH rank %d region %d value=%d\n", n.port.Endpoint().Proc().Now(), n.rank, m.rid, int64FromBuf(rg.buf.Data))
	}
	n.ly.protoMsgs++
	if n.rank == m.home {
		// Home mapping aliases the home buffer: nothing to copy.
		n.port.Request(m.home, n.ly.hFlushData, int64(m.rid))
		return
	}
	n.port.Store(m.home, rg.buf.Addr(0), m.homeBuf.Addr(0), m.size, n.ly.hFlushData, int64(m.rid))
}
