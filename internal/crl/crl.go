// Package crl implements CRL-style all-software distributed shared memory
// (Johnson, Kaashoek, Wallach, SOSP'95), the programming system three of
// the paper's applications (LU, Barnes-Hut, Water) are written in. Shared
// data lives in regions; programs bracket accesses with StartRead/EndRead
// and StartWrite/EndWrite, and the library keeps region copies coherent
// with a fixed-home, invalidation-based protocol built entirely on the
// active-message layer — so every coherence action exercises the RMA/RQ
// primitives of whichever communication architecture is being simulated.
package crl

import (
	"fmt"
	"sort"

	"mproxy/internal/am"
	"mproxy/internal/costmodel"
	"mproxy/internal/memory"
)

// RID names a region cluster-wide.
type RID int32

// State is a mapping's coherence state.
type State int

const (
	Invalid State = iota
	Shared
	Exclusive
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "Invalid"
	case Shared:
		return "Shared"
	default:
		return "Exclusive"
	}
}

type txnKind int

const (
	txnRead txnKind = iota
	txnWrite
)

type txn struct {
	kind txnKind
	req  int
}

// regionMeta is the home-side directory entry. It is only ever touched by
// handlers running on the home rank's process.
type regionMeta struct {
	rid  RID
	home int
	size int

	homeBuf *memory.Segment

	owner   int // rank with the exclusive copy; -1 when the home copy is valid
	copyset map[int]bool

	busy          bool
	cur           txn
	phase         txnPhase
	waitq         []txn
	invAcksNeeded int
	reqHadShared  bool // requester held a shared copy when the write began
}

// Layer is the cluster-wide CRL runtime.
type Layer struct {
	l     *am.Layer
	nodes []*Node
	metas []*regionMeta

	hRead, hWrite, hInv, hInvAck, hFlush, hFlushData, hGrantR, hDataR, hDataW int

	// protocol message counter, for the traffic analysis
	protoMsgs int64
}

// Node is one rank's handle on the CRL runtime.
type Node struct {
	ly   *Layer
	rank int
	port *am.Port
	maps map[RID]*Region

	misses int64 // region operations that required communication
	hits   int64 // region operations satisfied locally
}

// Region is a rank's mapping of a region.
type Region struct {
	node *Node
	meta *regionMeta
	buf  *memory.Segment

	st           State
	readers      int
	writers      int
	granted      bool
	pendingInv   bool
	pendingFlush bool
}

// New builds the CRL runtime over the AM layer.
func New(l *am.Layer) *Layer {
	ly := &Layer{l: l}
	for r := 0; r < l.Ranks(); r++ {
		ly.nodes = append(ly.nodes, &Node{ly: ly, rank: r, port: l.Port(r), maps: make(map[RID]*Region)})
	}
	ly.hRead = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		ly.homeRequest(p, txn{txnRead, int(args[1])}, RID(args[0]))
	})
	ly.hWrite = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		ly.homeRequest(p, txn{txnWrite, int(args[1])}, RID(args[0]))
	})
	ly.hInv = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		ly.nodes[p.Rank()].invalidate(RID(args[0]))
	})
	ly.hInvAck = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		m := ly.metas[args[0]]
		if !m.busy || m.phase != phaseInvWait {
			return // stale ack from an abandoned invalidation round
		}
		m.invAcksNeeded--
		if m.invAcksNeeded == 0 {
			ly.finishWrite(p, m)
		}
	})
	ly.hFlush = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		ly.nodes[p.Rank()].flushRequest(RID(args[0]))
	})
	ly.hFlushData = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		if crlDebug && args[0] == 1 {
			fmt.Printf("t=%v FLUSHDATA at home region %d homeval=%d busy=%v\n", p.Endpoint().Proc().Now(), args[0], int64FromBuf(ly.metas[args[0]].homeBuf.Data), ly.metas[args[0]].busy)
		}
		// The owner's data has landed in the home buffer. Resume the
		// stalled transaction only if one is actually waiting for a
		// recall; a voluntary rgn_flush can deliver data at any time.
		m := ly.metas[args[0]]
		m.owner = -1
		if m.busy && m.phase == phaseFlushWait {
			ly.continueTxn(p, m)
		}
	})
	ly.hGrantR = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		// Read grant without data (the requester was the exclusive owner).
		rg := ly.nodes[p.Rank()].maps[RID(args[0])]
		rg.st = Shared
		rg.granted = true
	})
	ly.hDataR = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		rg := ly.nodes[p.Rank()].maps[RID(args[0])]
		rg.st = Shared
		rg.granted = true
	})
	ly.hDataW = l.Register(func(p *am.Port, src int, args []int64, _ []byte) {
		rg := ly.nodes[p.Rank()].maps[RID(args[0])]
		rg.st = Exclusive
		rg.granted = true
	})
	return ly
}

// Node returns rank's CRL handle.
func (ly *Layer) Node(rank int) *Node { return ly.nodes[rank] }

// ProtocolMessages returns the number of coherence protocol messages sent.
func (ly *Layer) ProtocolMessages() int64 { return ly.protoMsgs }

// Create allocates a region homed at rank home. Call during program setup,
// before the simulation starts; ranks then Map the returned RID.
func (ly *Layer) Create(home, size int) RID {
	buf := ly.registry().NewSegment(home, size)
	buf.GrantAll(ly.l.Ranks())
	m := &regionMeta{
		rid: RID(len(ly.metas)), home: home, size: size,
		homeBuf: buf, owner: -1, copyset: make(map[int]bool),
	}
	ly.metas = append(ly.metas, m)
	return m.rid
}

// SetDebug toggles protocol tracing.
func SetDebug(v bool) { crlDebug = v }

func (ly *Layer) registry() *memory.Registry { return ly.l.Fabric().Registry() }

// Size returns a region's size in bytes.
func (ly *Layer) Size(rid RID) int { return ly.metas[rid].size }

// Home returns a region's home rank.
func (ly *Layer) Home(rid RID) int { return ly.metas[rid].home }

// Map attaches the calling rank to a region, allocating a local buffer for
// its copy. The home rank's mapping aliases the home buffer.
func (n *Node) Map(rid RID) *Region {
	if rg, ok := n.maps[rid]; ok {
		return rg
	}
	m := n.ly.metas[rid]
	rg := &Region{node: n, meta: m}
	if n.rank == m.home {
		rg.buf = m.homeBuf
	} else {
		rg.buf = n.ly.registry().NewSegment(n.rank, m.size)
		rg.buf.Grant(m.home)
	}
	n.maps[rid] = rg
	n.port.Endpoint().Compute(costmodel.IntOps(30))
	return rg
}

// Rank returns the mapping's rank.
func (n *Node) Rank() int { return n.rank }

// Port returns the node's active-message port.
func (n *Node) Port() *am.Port { return n.port }

// Hits and Misses report how many region operations were satisfied locally
// versus requiring protocol communication.
func (n *Node) Hits() int64   { return n.hits }
func (n *Node) Misses() int64 { return n.misses }

// DebugMeta formats a region's directory state for diagnostics.
func (ly *Layer) DebugMeta(rid RID) string {
	m := ly.metas[rid]
	cs := []int{}
	for s := range m.copyset {
		cs = append(cs, s)
	}
	sort.Ints(cs)
	states := ""
	for r, nd := range ly.nodes {
		if rg, ok := nd.maps[rid]; ok {
			states += fmt.Sprintf(" r%d:%v(rd%d,wr%d,pI%v,pF%v,gr%v)", r, rg.st, rg.readers, rg.writers, rg.pendingInv, rg.pendingFlush, rg.granted)
		}
	}
	return fmt.Sprintf("owner=%d copyset=%v busy=%v phase=%d waitq=%d acks=%d |%s",
		m.owner, cs, m.busy, m.phase, len(m.waitq), m.invAcksNeeded, states)
}
