package workload

import (
	"reflect"
	"testing"

	"mproxy/internal/apps"
	"mproxy/internal/apps/registry"
	"mproxy/internal/arch"
	"mproxy/internal/trace"
)

func factory(t *testing.T, name string) func() apps.App {
	t.Helper()
	spec, err := registry.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return func() apps.App { return spec.New(registry.Test) }
}

// TestParallelMatrixBitIdenticalToSerial is the contract of the worker
// pool: every cell owns an independent engine, so running the Figure 8
// matrix on 4 workers must produce byte-for-byte the curves of the serial
// Speedups path — times, speedups, ordering, everything.
func TestParallelMatrixBitIdenticalToSerial(t *testing.T) {
	newApp := factory(t, "Sample")
	archs := []arch.Params{arch.HW1, arch.MP1, arch.SW1}
	procs := []int{1, 2, 4}

	serial, err := Speedups(newApp, archs, procs, "HW1")
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SpeedupsJ(newApp, archs, procs, "HW1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel curves diverge from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	single, err := SpeedupsJ(newApp, archs, procs, "HW1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, single) {
		t.Fatalf("single-worker pool diverges from serial:\nserial: %+v\npool:   %+v", serial, single)
	}
}

// TestRunJobsOrderAndResults checks results land at their job's index
// regardless of completion order.
func TestRunJobsOrderAndResults(t *testing.T) {
	newApp := factory(t, "Sample")
	var jobs []Job
	want := []struct {
		archName string
		nodes    int
	}{{"HW1", 1}, {"MP1", 2}, {"SW1", 4}, {"MP1", 4}}
	for _, w := range want {
		a, _ := arch.ByName(w.archName)
		jobs = append(jobs, Job{Factory: newApp, Arch: a, Nodes: w.nodes, PPN: 1})
	}
	results, err := RunJobs(jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if results[i].Arch != w.archName || results[i].Nodes != w.nodes {
			t.Errorf("result %d = %s %dx%d, want %s %dx1",
				i, results[i].Arch, results[i].Nodes, results[i].PPN, w.archName, w.nodes)
		}
		if results[i].Time <= 0 {
			t.Errorf("result %d has no elapsed time", i)
		}
	}
}

// TestPerJobTracersComposeWithParallelism is the contract of
// Options.Tracer: tracing no longer forces the pool serial (that was the
// process-global tracer's limitation), and each job's digest is identical
// whether the matrix ran on one worker or four — per-engine trace streams
// don't interleave.
func TestPerJobTracersComposeWithParallelism(t *testing.T) {
	newApp := factory(t, "Sample")
	cells := []struct {
		a     arch.Params
		nodes int
	}{
		{arch.MP1, 1}, {arch.MP1, 2}, {arch.HW1, 2}, {arch.SW1, 2},
	}
	run := func(workers int) []string {
		t.Helper()
		digests := make([]*trace.Digest, len(cells))
		jobs := make([]Job, len(cells))
		for i, c := range cells {
			digests[i] = trace.NewDigest()
			jobs[i] = Job{Factory: newApp, Arch: c.a, Nodes: c.nodes, PPN: 1,
				Opts: Options{Tracer: digests[i]}}
		}
		if _, err := RunJobs(jobs, workers); err != nil {
			t.Fatal(err)
		}
		sums := make([]string, len(digests))
		for i, d := range digests {
			if d.Count() == 0 {
				t.Fatalf("cell %d: tracer saw no events", i)
			}
			sums[i] = d.Sum()
		}
		return sums
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("per-job digests diverge between pool sizes:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}
