// Package workload drives the paper's application experiments: the
// self-relative speedup curves of Figure 8 (1-16 processors, one compute
// processor per node), the message-traffic statistics of Table 6, and the
// SMP-contention configuration of Figure 9 (4 nodes x 4 compute processors).
package workload

import (
	"fmt"

	"mproxy/internal/apps"
	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/machine"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// DefaultHeapBytes is the per-rank Split-C heap used when Options leaves
// HeapBytes zero. It suits the test and small scales; the full-scale
// presets raise it (FFT over 1M points needs ~64 MiB per rank at low
// processor counts).
const DefaultHeapBytes = 8 << 20

// Options carries per-run simulation parameters. The zero value is the
// fault-free default configuration every test and driver used before
// options existed, so Run(app, a, nodes, ppn) behaves unchanged.
type Options struct {
	// Fabric tunes the communication fabric (command-queue capacity,
	// reliable transport).
	Fabric comm.Options
	// Fault, when non-nil, is installed on the run's cluster before any
	// traffic flows.
	Fault machine.FaultPlane
	// HeapBytes sizes the per-rank Split-C heap; zero means
	// DefaultHeapBytes.
	HeapBytes int
	// Tracer, when non-nil, receives the run's full trace stream (see
	// apps.EnvOptions.Tracer). Because it is per-run state rather than the
	// deprecated process-global tracer, RunJobs parallelism and tracing
	// compose: give each job its own tracer. A single tracer must not be
	// shared across jobs that may run concurrently.
	Tracer trace.Tracer
}

func (o Options) heapBytes() int {
	if o.HeapBytes > 0 {
		return o.HeapBytes
	}
	return DefaultHeapBytes
}

func (o Options) envOptions() apps.EnvOptions {
	return apps.EnvOptions{Fabric: o.Fabric, Fault: o.Fault, Tracer: o.Tracer}
}

// Result captures one application run.
type Result struct {
	App   string
	Arch  string
	Nodes int
	PPN   int // compute processors per node

	Time sim.Time // measured-phase duration

	// Traffic statistics (Table 6).
	Msgs       int64   // inter-node RMA/RQ operations
	IntraOps   int64   // operations that stayed inside a node
	AvgMsgSize float64 // bytes per operation
	MsgRate    float64 // per-processor operations per millisecond
	// AgentUtil is the busiest node agent's utilization over the run
	// ("interface utilization"); zero under SW, which has no agent.
	AgentUtil float64
	// CPUStolen is the largest fraction of a compute processor consumed
	// by interrupt handling (SW only).
	CPUStolen float64
	// Latency holds observed one-way operation latencies under the
	// application's load (contrast with Table 4's quiescent round trips).
	Latency map[comm.OpKind]comm.LatencyStat
}

// Procs returns the total compute processors.
func (r Result) Procs() int { return r.Nodes * r.PPN }

// Run executes one application instance on nodes x ppn processors under a
// with default options.
func Run(app apps.App, a arch.Params, nodes, ppn int) (Result, error) {
	return RunOpts(app, a, machine.Config{Nodes: nodes, ProcsPerNode: ppn}, Options{})
}

// RunConfig is Run with full topology control (e.g. multiple proxies per
// node for the Section 5.4 multi-proxy experiment).
func RunConfig(app apps.App, a arch.Params, cfg machine.Config) (Result, error) {
	return RunOpts(app, a, cfg, Options{})
}

// RunOpts is RunConfig with explicit simulation options.
func RunOpts(app apps.App, a arch.Params, cfg machine.Config, opt Options) (Result, error) {
	env := apps.NewEnvWith(cfg, a, opt.heapBytes(), opt.envOptions())
	elapsed, err := apps.Run(env, app)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		App: app.Name(), Arch: a.Name, Nodes: cfg.Nodes, PPN: cfg.ProcsPerNode, Time: elapsed,
	}
	stats := env.Fab.Stats()
	res.Msgs = stats.TotalOps() - stats.Intra
	res.IntraOps = stats.Intra
	res.AvgMsgSize = stats.AvgMsgSize()
	total := env.Eng.Now()
	if elapsed > 0 {
		res.MsgRate = float64(res.Msgs) / float64(res.Procs()) / elapsed.Millis()
	}
	for _, nd := range env.Cl.Nodes {
		for _, ag := range nd.Agents {
			if u := ag.Utilization(total); u > res.AgentUtil {
				res.AgentUtil = u
			}
		}
	}
	for _, cpu := range env.Cl.CPUs {
		if total > 0 {
			if f := float64(cpu.Stolen()) / float64(total); f > res.CPUStolen {
				res.CPUStolen = f
			}
		}
	}
	res.Latency = env.Fab.LatencyStats()
	return res, nil
}

// Curve is one app x arch speedup series.
type Curve struct {
	App     string
	Arch    string
	Procs   []int
	Times   []sim.Time
	Speedup []float64 // relative to the reference T(1)
}

// Speedups runs an application factory over the processor counts for each
// design point and normalizes to the single-processor time of refArch
// (the paper uses T(1) on HW1).
func Speedups(newApp func() apps.App, archs []arch.Params, procs []int, refArch string) ([]Curve, error) {
	var t1 sim.Time
	ref, ok := arch.ByName(refArch)
	if !ok {
		return nil, fmt.Errorf("unknown reference architecture %q", refArch)
	}
	refRes, err := Run(newApp(), ref, 1, 1)
	if err != nil {
		return nil, err
	}
	t1 = refRes.Time

	var curves []Curve
	for _, a := range archs {
		c := Curve{App: refRes.App, Arch: a.Name}
		for _, p := range procs {
			res, err := Run(newApp(), a, p, 1)
			if err != nil {
				return nil, fmt.Errorf("%s on %s x%d: %w", refRes.App, a.Name, p, err)
			}
			c.Procs = append(c.Procs, p)
			c.Times = append(c.Times, res.Time)
			c.Speedup = append(c.Speedup, float64(t1)/float64(res.Time))
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// SMPRun executes the Figure 9 configuration: SMP nodes with several
// compute processors sharing one interface.
func SMPRun(newApp func() apps.App, a arch.Params, nodes, ppn int) (Result, error) {
	return Run(newApp(), a, nodes, ppn)
}

// SMPRunOpts is SMPRun with full topology control and explicit options.
func SMPRunOpts(newApp func() apps.App, a arch.Params, cfg machine.Config, opt Options) (Result, error) {
	return RunOpts(newApp(), a, cfg, opt)
}
