package workload

import (
	"testing"

	"mproxy/internal/apps"
	"mproxy/internal/apps/registry"
	"mproxy/internal/arch"
	"mproxy/internal/machine"
)

// These tests pin the paper's headline qualitative results at Test scale;
// they are the regression suite for the Figure 8 / Figure 9 shapes.

func run(t *testing.T, name string, a arch.Params, nodes, ppn int) Result {
	t.Helper()
	spec, err := registry.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec.New(registry.Test), a, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestArchitectureOrderingOnCommIntensiveApps(t *testing.T) {
	// Paper, Section 5.3: on the communication-intensive applications,
	// execution time orders HW1 < MP2 < MP1 < SW1.
	for _, app := range []string{"Wator", "Water", "Sample"} {
		hw := run(t, app, arch.HW1, 4, 1).Time
		mp2 := run(t, app, arch.MP2, 4, 1).Time
		mp1 := run(t, app, arch.MP1, 4, 1).Time
		sw := run(t, app, arch.SW1, 4, 1).Time
		if !(hw <= mp2 && mp2 <= mp1 && mp1 <= sw) {
			t.Errorf("%s: ordering violated: HW1=%v MP2=%v MP1=%v SW1=%v",
				app, hw, mp2, mp1, sw)
		}
	}
}

func TestBandwidthAppsInsensitive(t *testing.T) {
	// Moldy (bulk broadcasts) stays close to custom hardware — the
	// paper's "message proxies match custom hardware" class — while the
	// communication-intensive apps diverge far more at the same scale.
	hw := run(t, "Moldy", arch.HW1, 4, 1).Time
	mp := run(t, "Moldy", arch.MP1, 4, 1).Time
	sw := run(t, "Moldy", arch.SW1, 4, 1).Time
	if float64(mp)/float64(hw) > 1.25 {
		t.Errorf("Moldy MP1/HW1 = %.2f, want < 1.25", float64(mp)/float64(hw))
	}
	if float64(sw)/float64(hw) > 1.5 {
		t.Errorf("Moldy SW1/HW1 = %.2f, want < 1.5", float64(sw)/float64(hw))
	}
	// ...and far tighter than the fine-grained Sample at the same scale.
	hwS := run(t, "Sample", arch.HW1, 4, 1).Time
	swS := run(t, "Sample", arch.SW1, 4, 1).Time
	if float64(sw)/float64(hw) > float64(swS)/float64(hwS) {
		t.Errorf("Moldy more SW-sensitive (%.2f) than Sample (%.2f)",
			float64(sw)/float64(hw), float64(swS)/float64(hwS))
	}
}

func TestSpeedupsHelper(t *testing.T) {
	spec, err := registry.ByName("Moldy")
	if err != nil {
		t.Fatal(err)
	}
	curves, err := Speedups(func() apps.App { return spec.New(registry.Test) },
		[]arch.Params{arch.HW1, arch.MP1}, []int{1, 2, 4}, "HW1")
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 || len(curves[0].Speedup) != 3 {
		t.Fatalf("curves = %+v", curves)
	}
	// HW1 self-relative speedup at 1 proc is exactly 1.
	if s := curves[0].Speedup[0]; s < 0.999 || s > 1.001 {
		t.Errorf("T(1)/T(1) = %v", s)
	}
	// Speedup grows with processors.
	if !(curves[0].Speedup[2] > curves[0].Speedup[0]) {
		t.Errorf("no speedup: %v", curves[0].Speedup)
	}
	if _, err := Speedups(nil, nil, nil, "XXX"); err == nil {
		t.Error("unknown reference arch must fail")
	}
}

func TestSMPContentionRaisesProxyUtilization(t *testing.T) {
	// Figure 9: four compute processors sharing one proxy push its
	// utilization well above the uniprocessor-node configuration.
	uni := run(t, "Water", arch.MP1, 4, 1)
	smp := run(t, "Water", arch.MP1, 1, 4)
	_ = smp
	smp4 := run(t, "Water", arch.MP1, 2, 4)
	if smp4.AgentUtil <= uni.AgentUtil {
		t.Errorf("SMP proxy util %.2f not above uniprocessor-node %.2f",
			smp4.AgentUtil, uni.AgentUtil)
	}
	// Intra-node traffic exists only with multiple processors per node.
	if uni.IntraOps != 0 {
		t.Errorf("uniprocessor nodes recorded intra ops: %d", uni.IntraOps)
	}
	if smp4.IntraOps == 0 {
		t.Error("SMP nodes recorded no intra-node communication")
	}
}

func TestSWStealsComputeCycles(t *testing.T) {
	res := run(t, "Water", arch.SW1, 4, 1)
	if res.CPUStolen <= 0 {
		t.Error("SW1 run recorded no interrupt-stolen cycles")
	}
	if res.AgentUtil != 0 {
		t.Error("SW1 has no communication agent")
	}
	hw := run(t, "Water", arch.HW1, 4, 1)
	if hw.CPUStolen != 0 {
		t.Error("HW1 must not steal compute cycles")
	}
}

func TestResultTrafficFields(t *testing.T) {
	res := run(t, "Wator", arch.MP1, 2, 1)
	if res.Msgs <= 0 || res.AvgMsgSize <= 0 || res.MsgRate <= 0 {
		t.Errorf("traffic stats empty: %+v", res)
	}
	if res.Procs() != 2 {
		t.Errorf("procs = %d", res.Procs())
	}
	// Wator's dominant message is the 32-byte fish record.
	if res.AvgMsgSize > 64 {
		t.Errorf("Wator avg msg size = %.0f, want small", res.AvgMsgSize)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := run(t, "Sample", arch.MP2, 4, 1)
	b := run(t, "Sample", arch.MP2, 4, 1)
	if a.Time != b.Time || a.Msgs != b.Msgs || a.AgentUtil != b.AgentUtil {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMultipleProxiesRelieveContention(t *testing.T) {
	// Section 5.4: "multiple message proxies may help". On an overloaded
	// 4-processor node, two proxies must cut peak proxy utilization and
	// not slow the program down.
	spec, err := registry.ByName("Water")
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunConfig(spec.New(registry.Test), arch.MP1,
		machine.Config{Nodes: 2, ProcsPerNode: 4, ProxiesPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	two, err := RunConfig(spec.New(registry.Test), arch.MP1,
		machine.Config{Nodes: 2, ProcsPerNode: 4, ProxiesPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if two.AgentUtil >= one.AgentUtil {
		t.Errorf("2 proxies did not reduce peak utilization: %.2f vs %.2f",
			two.AgentUtil, one.AgentUtil)
	}
	if two.Time > one.Time {
		t.Errorf("2 proxies slowed the run: %v vs %v", two.Time, one.Time)
	}
}
