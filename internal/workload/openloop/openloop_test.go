package openloop

import (
	"math"
	"testing"

	"mproxy/internal/arch"
	"mproxy/internal/fault"
)

func mustArch(t *testing.T, name string) arch.Params {
	t.Helper()
	a, ok := arch.ByName(name)
	if !ok {
		t.Fatalf("unknown arch %q", name)
	}
	return a
}

func smokeConfig(t *testing.T) Config {
	return Config{
		Arch:            mustArch(t, "MP1"),
		Nodes:           4,
		Clients:         2,
		Topo:            "fat-tree",
		CommandQueueCap: 64,
		ValueBytes:      64,
		ScanCount:       8,
		Replication:     2,
		Keys:            1 << 10,
		Theta:           0.99,
		Requests:        400,
		Warmup:          80,
		LoadUs:          []float64{40, 10},
		Seed:            7,
	}
}

func TestRunCountsAndKnee(t *testing.T) {
	cfg := smokeConfig(t)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	wantIssued := int64(cfg.Requests + cfg.Warmup)
	for i, pt := range res.Points {
		if pt.Issued != wantIssued {
			t.Errorf("point %d issued %d, want %d", i, pt.Issued, wantIssued)
		}
		if got := pt.Latency.Count; got != uint64(cfg.Requests) {
			t.Errorf("point %d measured %d replies, want %d", i, got, cfg.Requests)
		}
		if pt.Gets+pt.Puts+pt.Scans != int64(cfg.Requests) {
			t.Errorf("point %d op counts %d+%d+%d != %d", i, pt.Gets, pt.Puts, pt.Scans, cfg.Requests)
		}
		if pt.Gets <= pt.Puts || pt.Puts <= pt.Scans {
			t.Errorf("point %d mix not read-heavy: GET %d PUT %d SCAN %d", i, pt.Gets, pt.Puts, pt.Scans)
		}
		// Replication 2 writes one follower copy per PUT, warmup included.
		if pt.Replicated < pt.Puts {
			t.Errorf("point %d replicated %d < measured puts %d", i, pt.Replicated, pt.Puts)
		}
		if pt.Latency.P50Us <= 0 || pt.Latency.P999Us < pt.Latency.P99Us || pt.Latency.P99Us < pt.Latency.P50Us {
			t.Errorf("point %d quantiles disordered: %+v", i, pt.Latency)
		}
		if pt.MeanHops < 2 {
			t.Errorf("point %d mean hops %v, want >= 2 through the fat-tree", i, pt.MeanHops)
		}
		if pt.AchievedRPS <= 0 {
			t.Errorf("point %d achieved rate %v", i, pt.AchievedRPS)
		}
	}
	if res.TotalIssued != 2*wantIssued {
		t.Errorf("total issued %d, want %d", res.TotalIssued, 2*wantIssued)
	}
	if res.KneeLoadUs == 0 || res.SaturationRPS == 0 {
		t.Errorf("no knee reported: %+v", res)
	}
	// The heavier point offers 4x the load of the lighter one.
	if r := res.Points[1].OfferedRPS / res.Points[0].OfferedRPS; math.Abs(r-4) > 1e-9 {
		t.Errorf("offered ratio %v, want 4", r)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := smokeConfig(t)
	cfg.LoadUs = []float64{20}
	cfg.Requests, cfg.Warmup = 200, 40
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points[0].ElapsedUs != b.Points[0].ElapsedUs ||
		a.Points[0].Latency != b.Points[0].Latency ||
		a.Points[0].Gets != b.Points[0].Gets {
		t.Errorf("reruns differ:\n%+v\n%+v", a.Points[0], b.Points[0])
	}
}

func TestRunOnOffTailsHeavier(t *testing.T) {
	cfg := smokeConfig(t)
	cfg.Topo = "" // flat model keeps this fast
	cfg.LoadUs = []float64{20}
	cfg.Requests, cfg.Warmup = 600, 100
	pois, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Arrival = "onoff"
	burst, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bursty arrivals at the same mean rate must not improve the tail.
	if burst.Points[0].Latency.P99Us < pois.Points[0].Latency.P99Us {
		t.Errorf("on/off p99 %v below poisson p99 %v",
			burst.Points[0].Latency.P99Us, pois.Points[0].Latency.P99Us)
	}
}

func TestArrivalsMeanAndSchedule(t *testing.T) {
	// The empirical mean inter-arrival must track the configured mean,
	// and the schedule must be monotone (sub-ns draws may truncate to the
	// same nanosecond, so non-decreasing, not strictly increasing).
	for _, onoff := range []bool{false, true} {
		a := newArrivals(1, 42, 0, 10, onoff) // 10 us mean
		const n = 200000
		var last int64
		for i := 0; i < n; i++ {
			v := a.next()
			if v < last {
				t.Fatalf("onoff=%v: arrival %d decreasing: %d after %d", onoff, i, v, last)
			}
			last = v
		}
		mean := float64(last) / n / 1e3
		if math.Abs(mean-10) > 1.0 {
			t.Errorf("onoff=%v: empirical mean %.2f us, want ~10", onoff, mean)
		}
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	zp := zipfFor(1024, 0.99)
	z := zipfGen{s: fault.NewStream(3, fault.DomainKey, 0, 0), p: zp}
	counts := make(map[uint64]int)
	const n = 100000
	for i := 0; i < n; i++ {
		k := z.next()
		if k >= 1024 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	if counts[0] < n/20 {
		t.Errorf("hottest key drew %d of %d; want Zipfian skew", counts[0], n)
	}
	uni := zipfGen{s: fault.NewStream(3, fault.DomainKey, 0, 1), p: zipfFor(1024, 0)}
	uc := make(map[uint64]int)
	for i := 0; i < n; i++ {
		uc[uni.next()]++
	}
	if uc[0] > n/100 {
		t.Errorf("uniform hottest key drew %d of %d; too skewed", uc[0], n)
	}
}
