package openloop

import (
	"math"

	"mproxy/internal/fault"
)

// arrivals generates one client's open-loop request schedule: absolute
// arrival times in nanoseconds, drawn from the client's own keyed
// streams so the schedule is a pure function of (seed, client rank,
// load-point index) — independent of how many other clients exist and
// of how the simulation interleaves.
type arrivals struct {
	s      fault.Stream // inter-arrival draws
	st     fault.Stream // on/off state sojourns (onoff only)
	meanNs float64      // overall mean inter-arrival
	onoff  bool
	clock  float64 // last arrival time
	onEnd  float64 // current ON window's end (onoff only)
}

// onOffSojourns is the mean ON (and OFF) window length in units of the
// mean inter-arrival time. With equal on/off sojourns the process is ON
// half the time, so the ON-state rate is doubled to preserve the overall
// mean — a classic interrupted-Poisson burst shape.
const onOffSojourns = 32

func newArrivals(seed uint64, client, point uint64, meanUs float64, onoff bool) *arrivals {
	a := &arrivals{
		s:      fault.NewStream(seed, fault.DomainArrival, client, point),
		meanNs: meanUs * 1e3,
		onoff:  onoff,
	}
	if onoff {
		a.st = fault.NewStream(seed, fault.DomainState, client, point)
		a.onEnd = a.expSt(onOffSojourns * a.meanNs)
	}
	return a
}

// exp draws an exponential with the given mean from the arrival stream.
func (a *arrivals) exp(mean float64) float64 {
	return -math.Log(1-a.s.Float64()) * mean
}

// expSt draws an exponential from the state stream.
func (a *arrivals) expSt(mean float64) float64 {
	return -math.Log(1-a.st.Float64()) * mean
}

// next returns the next absolute arrival time in nanoseconds.
func (a *arrivals) next() int64 {
	if !a.onoff {
		a.clock += a.exp(a.meanNs)
		return int64(a.clock)
	}
	for {
		t := a.clock + a.exp(a.meanNs/2) // doubled rate while ON
		if t <= a.onEnd {
			a.clock = t
			return int64(t)
		}
		// The window closed before this arrival: jump over an OFF
		// sojourn into the next ON window and redraw.
		start := a.onEnd + a.expSt(onOffSojourns*a.meanNs)
		a.clock = start
		a.onEnd = start + a.expSt(onOffSojourns*a.meanNs)
	}
}

// zipfParams holds the key-space-wide constants of YCSB's Zipfian
// generator. Computing zetan is O(n) in the key count, so the params are
// built once per run and shared by every client's generator.
type zipfParams struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

func zipfFor(n int, theta float64) *zipfParams {
	z := &zipfParams{n: n, theta: theta}
	if theta <= 0 {
		return z
	}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + math.Pow(0.5, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// zipfGen draws keys with YCSB's Zipfian generator (theta-skewed over
// [0, n)), or uniformly when theta is zero. Each client has its own draw
// stream over the shared params.
type zipfGen struct {
	s fault.Stream
	p *zipfParams
}

func (z *zipfGen) next() uint64 {
	if z.p.theta <= 0 {
		return uint64(z.s.Intn(z.p.n))
	}
	u := z.s.Float64()
	uz := u * z.p.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.p.theta) {
		return 1
	}
	k := uint64(float64(z.p.n) * math.Pow(z.p.eta*u-z.p.eta+1, z.p.alpha))
	if k >= uint64(z.p.n) {
		k = uint64(z.p.n) - 1
	}
	return k
}
