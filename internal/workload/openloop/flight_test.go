package openloop

import (
	"reflect"
	"testing"

	"mproxy/internal/trace/flight"
)

// TestFlightHeisenbergFree checks the flight recorder never perturbs the
// simulation: a recorder-on run reproduces the recorder-off latency
// results bit for bit. Request IDs ride the high bits of the echoed
// flags word, whose value never affects simulated cost.
func TestFlightHeisenbergFree(t *testing.T) {
	cfg := smokeConfig(t)
	off, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Flight = &flight.Config{TopK: 8}
	on, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range off.Points {
		po, pn := off.Points[i], on.Points[i]
		pn.Flight = nil
		if !reflect.DeepEqual(po, pn) {
			t.Fatalf("point %d differs with recorder on:\noff %+v\non  %+v", i, po, pn)
		}
	}
	if off.KneeLoadUs != on.KneeLoadUs || off.SaturationRPS != on.SaturationRPS {
		t.Fatalf("knee moved: off (%v, %v) on (%v, %v)",
			off.KneeLoadUs, off.SaturationRPS, on.KneeLoadUs, on.SaturationRPS)
	}
}

// TestFlightRecordsTileAndTrack checks every harvested record against
// the invariants the forensics report relies on: segments tile the
// measured latency exactly, hop counts match the topology, wire
// minimums fit inside their flight segments, and the windowed series
// conserves the measured request count.
func TestFlightRecordsTileAndTrack(t *testing.T) {
	cfg := smokeConfig(t)
	cfg.Flight = &flight.Config{TopK: 16}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pi, pt := range res.Points {
		fd := pt.Flight
		if fd == nil {
			t.Fatalf("point %d has no flight data", pi)
		}
		if fd.Tracked != uint64(cfg.Requests) {
			t.Errorf("point %d tracked %d, want %d", pi, fd.Tracked, cfg.Requests)
		}
		if fd.Dropped != 0 || fd.Late != 0 || fd.Clamped != 0 {
			t.Errorf("point %d quality counters moved: %+v", pi, fd)
		}
		if len(fd.Slowest) != 16 {
			t.Errorf("point %d reservoir has %d records, want 16", pi, len(fd.Slowest))
		}
		for i := range fd.Slowest {
			r := &fd.Slowest[i]
			var sum int64
			for _, s := range r.Seg {
				sum += s
			}
			if sum != r.Latency() {
				t.Errorf("point %d record %d: segments sum %d != latency %d", pi, i, sum, r.Latency())
			}
			if i > 0 && r.Latency() > fd.Slowest[i-1].Latency() {
				t.Errorf("point %d reservoir not sorted at %d", pi, i)
			}
			if r.Seg[flight.SegReq] < r.WireReqNs {
				t.Errorf("point %d record %d: req segment %d below wire minimum %d",
					pi, i, r.Seg[flight.SegReq], r.WireReqNs)
			}
			if r.Seg[flight.SegReply] < r.WireRepNs {
				t.Errorf("point %d record %d: reply segment %d below wire minimum %d",
					pi, i, r.Seg[flight.SegReply], r.WireRepNs)
			}
			if i < len(fd.Routes) {
				if got := len(fd.Routes[i]); got != int(r.Hops) {
					t.Errorf("point %d record %d: route has %d links, hops %d", pi, i, got, r.Hops)
				}
			}
			if r.Op == uint8(1) && r.Seg[flight.SegRepWait] == 0 && cfg.Replication > 1 {
				t.Errorf("point %d record %d: replicated PUT with zero replica-wait", pi, i)
			}
			if r.Op != uint8(1) && r.Seg[flight.SegRepWait] != 0 {
				t.Errorf("point %d record %d: non-PUT with replica-wait %d", pi, i, r.Seg[flight.SegRepWait])
			}
		}
		var dones uint64
		for wi := range fd.Windows {
			for _, row := range fd.Windows[wi].ShardRows() {
				dones += uint64(row.Dones)
			}
		}
		if dones != fd.Tracked {
			t.Errorf("point %d series has %d completions, tracked %d", pi, dones, fd.Tracked)
		}
		if len(fd.Tiers) == 0 {
			t.Errorf("point %d has no tier series despite fat-tree", pi)
		}
	}
}
