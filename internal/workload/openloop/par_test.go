package openloop

import (
	"encoding/json"
	"testing"
)

// pointsJSON serializes a sweep's points with the Par stats stripped:
// wall-clock shard timings legitimately differ between runs, everything
// else must not.
func pointsJSON(t *testing.T, res Result) string {
	t.Helper()
	for i := range res.Points {
		res.Points[i].Par = nil
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestParallelMatchesSequential holds the sharded driver to the
// sequential result: same simulated clocks, same latency histogram, same
// op counts, at every shard count that divides the cluster.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := smokeConfig(t)
	cfg.Nodes = 8
	cfg.Requests, cfg.Warmup = 600, 100
	cfg.LoadUs = []float64{20}
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := pointsJSON(t, seq)
	for _, shards := range []int{1, 2, 4, 8} {
		pcfg := cfg
		pcfg.SimShards = shards
		got, err := Run(pcfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if shards > 1 {
			st := got.Points[0].Par
			if st == nil {
				t.Fatalf("shards=%d: no parallel stats on the point", shards)
			}
			if st.Shards != shards || st.Windows <= 0 {
				t.Errorf("shards=%d: stats %+v", shards, st)
			}
			var events int64
			for _, e := range st.Events {
				events += e
			}
			if events == 0 {
				t.Errorf("shards=%d: no events executed", shards)
			}
		}
		if g := pointsJSON(t, got); g != want {
			t.Errorf("shards=%d diverges from sequential:\nseq: %s\npar: %s", shards, want, g)
		}
	}
}

// TestParallelRepeatRunsIdentical pins bit-determinism of the parallel
// driver itself: two runs with OS-thread scheduling free to differ must
// produce identical results. Run under -race this also exercises the
// cross-shard happens-before edges.
func TestParallelRepeatRunsIdentical(t *testing.T) {
	cfg := smokeConfig(t)
	cfg.Nodes = 8
	cfg.SimShards = 4
	cfg.Requests, cfg.Warmup = 600, 100
	cfg.LoadUs = []float64{40, 10}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ja, jb := pointsJSON(t, a), pointsJSON(t, b); ja != jb {
		t.Errorf("parallel reruns differ:\n%s\n%s", ja, jb)
	}
}

// TestParallelFlatModel covers the single-switch interconnect, whose
// cross-shard crossings route at the node output links rather than in
// the switched fabric.
func TestParallelFlatModel(t *testing.T) {
	cfg := smokeConfig(t)
	cfg.Topo = ""
	cfg.Nodes = 4
	cfg.Requests, cfg.Warmup = 400, 80
	cfg.LoadUs = []float64{20}
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SimShards = 2
	parr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w, g := pointsJSON(t, seq), pointsJSON(t, parr); w != g {
		t.Errorf("flat-model parallel diverges:\nseq: %s\npar: %s", w, g)
	}
}

// TestParallelRejectsBadConfigs exercises the eligibility guards.
func TestParallelRejectsBadConfigs(t *testing.T) {
	cfg := smokeConfig(t)
	cfg.SimShards = 3 // 4 nodes: not divisible
	if _, err := Run(cfg); err == nil {
		t.Error("3 shards over 4 nodes accepted")
	}
	cfg = smokeConfig(t)
	cfg.SimShards = 8 // more shards than nodes
	if _, err := Run(cfg); err == nil {
		t.Error("8 shards over 4 nodes accepted")
	}
	cfg = smokeConfig(t)
	cfg.SimShards = 2
	cfg.Arch.NetLatency = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero wire latency accepted: no lookahead exists")
	}
}
