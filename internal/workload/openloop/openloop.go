// Package openloop drives the KV service with seeded open-loop request
// generators and reports tail latency. Open-loop means arrivals are
// scheduled by the generator's clock, not by reply receipt: a request's
// latency is measured from its *scheduled* arrival time, so queueing that
// builds up when the service saturates is charged to the requests — the
// coordinated-omission-free methodology closed-loop harnesses get wrong.
// Each client draws its schedule, key popularity, and op mix from its own
// keyed splitmix64 streams (see internal/fault), so a run is a pure
// function of (seed, topology, load ladder). Sweeping the ladder from
// light to heavy load exposes the saturation knee: the last offered load
// whose p99 stays within 3x of the lightest point's.
package openloop

import (
	"fmt"

	"mproxy/internal/am"
	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/fault"
	"mproxy/internal/kv"
	"mproxy/internal/machine"
	"mproxy/internal/machine/topo"
	"mproxy/internal/sim"
	"mproxy/internal/sim/par"
	"mproxy/internal/trace/flight"
	"mproxy/internal/trace/metrics"
)

// Config parameterizes a serving sweep. Every load point builds a fresh
// cluster, so points are independent and any one can be rerun alone.
type Config struct {
	Arch    arch.Params
	Nodes   int
	Clients int // client processes per node (slot 0 is the KV server)
	Proxies int // proxy processors per node (message-proxy archs)
	// ProxySched names the proxy-scheduling policy binding client/server
	// command streams to proxies (proxy.SchedByName; "" = static).
	ProxySched string
	// Topo selects the interconnect: "" for the flat single-switch
	// model, else a topo.ByName kind ("fat-tree", "dragonfly").
	Topo            string
	CommandQueueCap int

	ValueBytes  int
	ScanCount   int
	Replication int
	Keys        int     // key-space size
	Theta       float64 // Zipfian skew (0 = uniform)
	Arrival     string  // "poisson" (default) or "onoff"

	Requests int // measured requests per load point, across all clients
	Warmup   int // unmeasured lead-in requests per load point
	// Flight, when set, runs a flight recorder per load point: every
	// measured request gets an end-to-end phase record, and the point's
	// harvest (slowest requests, windowed per-shard/per-tier series)
	// lands in Point.Flight. Recording is timing-free — request IDs ride
	// the high bits of the echoed flags word, whose value never affects
	// simulated cost — so results match a recorder-off run exactly.
	Flight *flight.Config
	// LoadUs is the sweep ladder: per-client mean inter-arrival time in
	// microseconds per point, ordered lightest load (largest) first.
	LoadUs []float64
	Seed   uint64

	// SimShards > 1 runs every load point on a sharded cluster: nodes
	// partition into contiguous equal blocks, each block simulated by its
	// own engine on its own OS thread, synchronized in lookahead windows
	// of the wire latency (see internal/sim/par). Results are
	// bit-deterministic across repeat runs. Requires Nodes divisible by
	// SimShards, a positive Arch.NetLatency, no Flight recorder, and no
	// process-global tracer. 0 or 1 = sequential.
	SimShards int
}

// opMix is the fixed GET/PUT/SCAN request mix (YCSB-style read-heavy).
const (
	pGet = 0.70
	pPut = 0.25 // SCAN takes the remaining 5%
)

// Point is one load point's outcome.
type Point struct {
	LoadUs      float64              `json:"load_us"`
	OfferedRPS  float64              `json:"offered_rps"`
	AchievedRPS float64              `json:"achieved_rps"`
	Latency     metrics.HistSnapshot `json:"latency"`
	Gets        int64                `json:"gets"`
	Puts        int64                `json:"puts"`
	Scans       int64                `json:"scans"`
	Replicated  int64                `json:"replicated"`
	Issued      int64                `json:"issued"`
	MeanHops    float64              `json:"mean_hops,omitempty"`
	Tiers       []topo.TierUtil      `json:"tiers,omitempty"`
	// ProxyUtil[k] is proxy slot k's utilization averaged across nodes;
	// Mean/Max summarize every proxy agent in the cluster (message-proxy
	// design points only). Max is the answer to "is one proxy core the
	// bottleneck?" when placement is skewed.
	ProxyUtil     []float64 `json:"proxy_util,omitempty"`
	ProxyUtilMean float64   `json:"proxy_util_mean,omitempty"`
	ProxyUtilMax  float64   `json:"proxy_util_max,omitempty"`
	ElapsedUs     float64   `json:"elapsed_us"`
	// Par carries the parallel driver's per-shard execution statistics
	// (events, wall-clock busy and barrier-blocked time per shard) when
	// the point ran under Config.SimShards > 1; nil on sequential runs,
	// so sequential JSON output is unchanged.
	Par *par.Stats `json:"par,omitempty"`
	// Flight is the flight recorder's harvest, present when
	// Config.Flight was set.
	Flight *flight.PointData `json:"-"`
}

// Result is a full sweep: every point plus the saturation summary.
type Result struct {
	Points []Point `json:"points"`
	// KneeLoadUs is the heaviest load whose p99 stayed within 3x of the
	// lightest point's p99; SaturationRPS is its achieved throughput.
	KneeLoadUs    float64 `json:"knee_load_us"`
	SaturationRPS float64 `json:"saturation_rps"`
	TotalIssued   int64   `json:"total_issued"`
}

// Run executes the sweep.
func Run(cfg Config) (Result, error) {
	if cfg.Nodes <= 0 || cfg.Clients <= 0 {
		return Result{}, fmt.Errorf("openloop: need nodes and clients, got %d x %d", cfg.Nodes, cfg.Clients)
	}
	if cfg.Requests <= 0 || len(cfg.LoadUs) == 0 {
		return Result{}, fmt.Errorf("openloop: need requests and a load ladder")
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1 << 16
	}
	switch cfg.Arrival {
	case "", "poisson", "onoff":
	default:
		return Result{}, fmt.Errorf("openloop: unknown arrival process %q (want poisson or onoff)", cfg.Arrival)
	}
	if cfg.SimShards > 1 {
		if cfg.Nodes%cfg.SimShards != 0 || cfg.SimShards > cfg.Nodes {
			return Result{}, fmt.Errorf("openloop: %d nodes cannot split into %d equal shards", cfg.Nodes, cfg.SimShards)
		}
		if cfg.Arch.NetLatency <= 0 {
			return Result{}, fmt.Errorf("openloop: parallel execution needs a positive wire latency for lookahead, got %v", cfg.Arch.NetLatency)
		}
		if cfg.Flight != nil {
			return Result{}, fmt.Errorf("openloop: the flight recorder is sequential-only; unset Flight or SimShards")
		}
		if sim.GlobalTracerInstalled() {
			return Result{}, fmt.Errorf("openloop: a process-global tracer is installed; parallel shards cannot share it")
		}
	}
	zp := zipfFor(cfg.Keys, cfg.Theta)
	var res Result
	for idx, loadUs := range cfg.LoadUs {
		if loadUs <= 0 {
			return Result{}, fmt.Errorf("openloop: load point %d is %v us", idx, loadUs)
		}
		pt, err := runPoint(&cfg, zp, idx, loadUs)
		if err != nil {
			return Result{}, err
		}
		res.Points = append(res.Points, pt)
		res.TotalIssued += pt.Issued
	}
	res.KneeLoadUs, res.SaturationRPS = knee(res.Points)
	return res, nil
}

// knee finds the saturation point: the last point (in ladder order) whose
// p99 is within 3x of the first point's. Beyond it the latency curve has
// left the flat region — the classic tail-latency definition of usable
// capacity.
func knee(pts []Point) (loadUs, rps float64) {
	if len(pts) == 0 {
		return 0, 0
	}
	limit := 3 * pts[0].Latency.P99Us
	best := pts[0]
	for _, p := range pts[1:] {
		if p.Latency.P99Us <= limit {
			best = p
		}
	}
	return best.LoadUs, best.AchievedRPS
}

// share splits total across n parties: party i gets the floor share plus
// one of the remainder if i is low enough.
func share(total, n, i int) int {
	s := total / n
	if i < total%n {
		s++
	}
	return s
}

// client is one generator process: an issuer task walking its arrival
// schedule and a receiver task serving replies on the same port.
type client struct {
	eng   *sim.Engine
	svc   *kv.Service
	port  *am.Port
	arr   *arrivals
	keys  zipfGen
	ops   fault.Stream
	quota int // total requests to issue
	warm  int // leading requests that are unmeasured
	sent  int

	// Flight-recorder context, nil/zero when recording is off.
	rec     *flight.Recorder
	net     *topo.Net
	rank    int
	ppn     int
	perHop  *[3]int64 // per-hop modeled request wire ns by op
	perHopR *[3]int64 // per-hop modeled reply wire ns by op
}

func (c *client) issue(t *sim.Task) { c.step(t) }

func (c *client) step(t *sim.Task) {
	if c.sent >= c.quota {
		return // task settles; the receiver finishes on the last reply
	}
	at := c.arr.next()
	if now := int64(c.eng.Now()); at > now {
		t.Hold(sim.Time(at-now), func() { c.fire(t, at) })
		return
	}
	// Behind schedule: the open-loop clock does not wait for the
	// service, so issue immediately but timestamp the scheduled arrival.
	c.fire(t, at)
}

func (c *client) fire(t *sim.Task, at int64) {
	var flags int64
	measured := c.sent >= c.warm
	if measured {
		flags = 1
	}
	c.sent++
	key := c.keys.next()
	u := c.ops.Float64()
	var op kv.Op
	switch {
	case u < pGet:
		op = kv.OpGet
	case u < pGet+pPut:
		op = kv.OpPut
	default:
		op = kv.OpScan
	}
	if measured && c.rec != nil {
		flags = flight.FlagsWithID(flags, c.track(op, key, at))
	}
	k := func() { c.step(t) }
	switch op {
	case kv.OpGet:
		c.svc.GetTask(c.port, t, key, flags, at, k)
	case kv.OpPut:
		c.svc.PutTask(c.port, t, key, flags, at, k)
	default:
		c.svc.ScanTask(c.port, t, key, flags, at, k)
	}
}

// track opens the flight record for a measured request: route length
// and modeled wire minimums from the topology, command-queue depth at
// enqueue from the endpoint's probe accessor.
func (c *client) track(op kv.Op, key uint64, at int64) uint64 {
	server := c.svc.Primary(key)
	shard := c.svc.ShardIndex(key)
	hops := 0
	if sn, dn := c.rank/c.ppn, server/c.ppn; sn != dn {
		if c.net != nil {
			hops = c.net.Hops(sn, dn)
		} else {
			hops = 1 // flat model: the single shared switch
		}
	}
	depth := 0
	if q := c.port.Endpoint().CommandQueue(); q != nil {
		depth = q.Len()
	}
	return c.rec.Issue(uint8(op), int32(c.rank), int32(server), int32(shard),
		int32(hops), int32(depth), key, at,
		int64(hops)*c.perHop[op], int64(hops)*c.perHopR[op])
}

func runPoint(cfg *Config, zp *zipfParams, idx int, loadUs float64) (Point, error) {
	shards := cfg.SimShards
	if shards < 1 {
		shards = 1
	}
	engs := make([]*sim.Engine, shards)
	for i := range engs {
		engs[i] = sim.NewEngine()
	}
	eng := engs[0]
	ppn := 1 + cfg.Clients
	mcfg := machine.Config{
		Nodes:          cfg.Nodes,
		ProcsPerNode:   ppn,
		ProxiesPerNode: cfg.Proxies,
		ProxySched:     cfg.ProxySched,
	}
	var cl *machine.Cluster
	var ps *par.Sim
	if shards > 1 {
		mcfg.SimShards = shards
		cl = machine.NewSharded(engs, mcfg, cfg.Arch)
		var err error
		if ps, err = par.New(engs, cfg.Arch.NetLatency); err != nil {
			return Point{}, fmt.Errorf("openloop: %w", err)
		}
	} else {
		cl = machine.New(eng, mcfg, cfg.Arch)
	}
	var net *topo.Net
	if cfg.Topo != "" {
		g, err := topo.ByName(cfg.Topo, cfg.Nodes)
		if err != nil {
			return Point{}, err
		}
		net = topo.NewNet(cl, g)
		cl.SetInterconnect(net)
	}
	f := comm.NewWith(cl, comm.Options{CommandQueueCap: cfg.CommandQueueCap})
	if ps != nil {
		if net != nil {
			net.Parallelize(ps)
		}
		f.Parallelize(ps)
	}
	l := am.New(f)
	servers := make([]int, cfg.Nodes)
	for n := range servers {
		servers[n] = n * ppn // slot 0 on every node
	}
	svc := kv.New(l, kv.Config{
		Servers:     servers,
		ValueBytes:  cfg.ValueBytes,
		ScanCount:   cfg.ScanCount,
		Replication: cfg.Replication,
	})

	var rec *flight.Recorder
	var perHop, perHopR [3]int64
	if cfg.Flight != nil {
		fc := *cfg.Flight
		fc.Shards = cfg.Nodes
		rec = flight.New(fc, func() int64 { return int64(eng.Now()) })
		svc.Flight = rec
		for op := kv.OpGet; op <= kv.OpScan; op++ {
			req, rep := svc.WireBytes(op)
			perHop[op] = int64(arch.XferTime(comm.HeaderSize+req, cfg.Arch.NetBW) + cfg.Arch.NetLatency)
			perHopR[op] = int64(arch.XferTime(comm.HeaderSize+rep, cfg.Arch.NetBW) + cfg.Arch.NetLatency)
		}
		if net != nil {
			links := net.TierLinks()
			var meta []flight.TierInfo
			var idxs []int
			for t := 0; t < topo.NumTiers; t++ {
				if links[t] == 0 {
					continue
				}
				meta = append(meta, flight.TierInfo{Name: topo.Tier(t).String(), Links: links[t]})
				idxs = append(idxs, t)
			}
			full := make([]int64, topo.NumTiers)
			rec.SetTiers(meta, func(buf []int64) []int64 {
				net.TierBusy(full)
				buf = buf[:0]
				for _, ti := range idxs {
					buf = append(buf, full[ti])
				}
				return buf
			})
		}
		if cfg.Proxies > 1 && cfg.Arch.Kind == arch.Proxy {
			pmeta := make([]flight.TierInfo, cfg.Proxies)
			for k := range pmeta {
				pmeta[k] = flight.TierInfo{Name: fmt.Sprintf("proxy%d", k), Links: cfg.Nodes}
			}
			rec.SetProxies(pmeta, func(buf []int64) []int64 {
				buf = buf[:0]
				for k := 0; k < cfg.Proxies; k++ {
					var busy int64
					for _, nd := range cl.Nodes {
						busy += int64(nd.Agents[k].BusyTime())
					}
					buf = append(buf, busy)
				}
				return buf
			})
		}
	}

	active := cfg.Nodes * cfg.Clients
	got := make([]int64, active)
	quota := make([]int64, active)
	// Reply accounting is per shard: a reply runs in its client's node
	// event context, so each accumulator is touched by exactly one worker
	// and the merge below is deterministic (sums, minima and maxima
	// commute; Hist.Merge is order-independent).
	type replyAcc struct {
		hist      metrics.Hist
		ops       [3]int64
		measured  int64
		minIssued int64
		lastReply int64
	}
	accs := make([]replyAcc, shards)
	for i := range accs {
		accs[i].minIssued = -1
	}
	shardOf := cl.NodeShard
	if shardOf == nil {
		shardOf = make([]int32, cfg.Nodes)
	}
	svc.OnReply = func(rank int, op kv.Op, flags, issued int64) {
		node := rank / ppn
		ci := node*cfg.Clients + rank%ppn - 1
		got[ci]++
		if flags&1 == 0 {
			return
		}
		a := &accs[shardOf[node]]
		now := int64(cl.EngOf(node).Now())
		a.hist.Add(now - issued)
		a.ops[op]++
		a.measured++
		if a.minIssued < 0 || issued < a.minIssued {
			a.minIssued = issued
		}
		if now > a.lastReply {
			a.lastReply = now
		}
	}

	for _, rank := range servers {
		port := l.Port(rank)
		cl.EngOf(rank/ppn).SpawnTaskDaemon(fmt.Sprintf("kv.server.%d", rank), func(t *sim.Task) {
			port.ServeWhileTask(t, func() bool { return false })
		})
	}

	onoff := cfg.Arrival == "onoff"
	var issuedTotal int64
	for n := 0; n < cfg.Nodes; n++ {
		for s := 0; s < cfg.Clients; s++ {
			rank := n*ppn + 1 + s
			ci := n*cfg.Clients + s
			q := share(cfg.Warmup+cfg.Requests, active, ci)
			if q == 0 {
				continue
			}
			quota[ci] = int64(q)
			issuedTotal += int64(q)
			c := &client{
				eng:   cl.EngOf(n),
				svc:   svc,
				port:  l.Port(rank),
				arr:   newArrivals(cfg.Seed, uint64(rank), uint64(idx), loadUs, onoff),
				keys:  zipfGen{s: fault.NewStream(cfg.Seed, fault.DomainKey, uint64(rank), uint64(idx)), p: zp},
				ops:   fault.NewStream(cfg.Seed, fault.DomainOpMix, uint64(rank), uint64(idx)),
				quota: q,
				warm:  share(cfg.Warmup, active, ci),
				rec:   rec,
				net:   net,
				rank:  rank,
				ppn:   ppn,
			}
			c.perHop, c.perHopR = &perHop, &perHopR
			ne := cl.EngOf(n)
			ne.SpawnTask(fmt.Sprintf("kv.client.%d", rank), c.issue)
			port, qci := c.port, ci
			ne.SpawnTask(fmt.Sprintf("kv.recv.%d", rank), func(t *sim.Task) {
				port.ServeWhileTask(t, func() bool { return got[qci] >= quota[qci] })
			})
		}
	}

	var pst *par.Stats
	if ps != nil {
		st, err := ps.Run()
		if err != nil {
			return Point{}, fmt.Errorf("openloop: load point %v us: %w", loadUs, err)
		}
		pst = st
	} else if err := eng.Run(); err != nil {
		return Point{}, fmt.Errorf("openloop: load point %v us: %w", loadUs, err)
	}

	agg := &accs[0]
	for i := 1; i < len(accs); i++ {
		a := &accs[i]
		agg.hist.Merge(&a.hist)
		for op := range agg.ops {
			agg.ops[op] += a.ops[op]
		}
		agg.measured += a.measured
		if a.minIssued >= 0 && (agg.minIssued < 0 || a.minIssued < agg.minIssued) {
			agg.minIssued = a.minIssued
		}
		if a.lastReply > agg.lastReply {
			agg.lastReply = a.lastReply
		}
	}

	pt := Point{
		LoadUs:     loadUs,
		OfferedRPS: float64(active) * 1e6 / loadUs,
		Latency:    agg.hist.Snapshot(),
		Gets:       agg.ops[kv.OpGet],
		Puts:       agg.ops[kv.OpPut],
		Scans:      agg.ops[kv.OpScan],
		Replicated: svc.Replicated(),
		Issued:     issuedTotal,
		ElapsedUs:  eng.Now().Micros(),
		Par:        pst,
	}
	if window := agg.lastReply - agg.minIssued; window > 0 && agg.minIssued >= 0 {
		pt.AchievedRPS = float64(agg.measured) * 1e9 / float64(window)
	}
	if net != nil {
		pt.MeanHops = net.MeanHops()
		pt.Tiers = net.TierUtilization(eng.Now())
	}
	if cfg.Arch.Kind == arch.Proxy {
		nprox := len(cl.Nodes[0].Agents)
		elapsed := eng.Now()
		pt.ProxyUtil = make([]float64, nprox)
		for k := 0; k < nprox; k++ {
			var sum float64
			for _, nd := range cl.Nodes {
				u := nd.Agents[k].Utilization(elapsed)
				sum += u
				if u > pt.ProxyUtilMax {
					pt.ProxyUtilMax = u
				}
			}
			pt.ProxyUtil[k] = sum / float64(len(cl.Nodes))
			pt.ProxyUtilMean += pt.ProxyUtil[k]
		}
		pt.ProxyUtilMean /= float64(nprox)
	}
	if rec != nil {
		pd := rec.Finish()
		if net != nil {
			// Resolve route tiers for the retained stragglers only: the
			// hot path stores hop counts, never per-request paths.
			for i := range pd.Slowest {
				r := &pd.Slowest[i]
				sn, dn := int(r.Client)/ppn, int(r.Server)/ppn
				if sn == dn {
					pd.Routes = append(pd.Routes, nil)
					continue
				}
				tiers := net.RouteTiers(sn, dn)
				names := make([]string, len(tiers))
				for j, tt := range tiers {
					names[j] = tt.String()
				}
				pd.Routes = append(pd.Routes, names)
			}
		}
		pt.Flight = &pd
	}
	return pt, nil
}
