package workload

import (
	"fmt"
	"runtime"
	"sync"

	"mproxy/internal/apps"
	"mproxy/internal/arch"
	"mproxy/internal/machine"
	"mproxy/internal/sim"
)

// Job is one cell of an experiment matrix: an application instance on a
// topology under a design point. Factory must build a fresh App per call;
// a Job may run on any worker goroutine. Opts is the cell's simulation
// options; a shared fault plane is safe (fault planes are stateless and
// keyed by component/sequence, so concurrent engines never interfere).
type Job struct {
	Factory func() apps.App
	Arch    arch.Params
	Nodes   int
	PPN     int
	Opts    Options
}

// RunJobs executes every job and returns their results in job order.
// Jobs run on a bounded pool of worker goroutines — each cell owns an
// independent sim.Engine, and the simulator keeps all mutable state
// inside the engine, so cells are embarrassingly parallel and results
// are bit-identical to a serial run. workers <= 0 picks GOMAXPROCS.
// When a process-wide tracer is installed (tracecli) the pool degrades
// to a single worker: the shared tracer is not synchronized, and trace
// streams interleaved across engines would be meaningless anyway.
//
// The first job error aborts scheduling of not-yet-started jobs and is
// returned; completed results are still valid.
func RunJobs(jobs []Job, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if sim.GlobalTracerInstalled() {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range errs {
			if e != nil {
				return true
			}
		}
		return false
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(jobs) || failed() {
					return
				}
				j := jobs[i]
				res, err := RunOpts(j.Factory(), j.Arch, machine.Config{Nodes: j.Nodes, ProcsPerNode: j.PPN}, j.Opts)
				mu.Lock()
				results[i], errs[i] = res, err
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			j := jobs[i]
			return results, fmt.Errorf("job %d (%s %dx%d): %w", i, j.Arch.Name, j.Nodes, j.PPN, err)
		}
	}
	return results, nil
}

// SpeedupsJ is Speedups over a bounded worker pool: the whole
// (arch x procs) matrix — plus the reference cell — is dispatched as
// independent jobs and assembled into the same curves Speedups returns.
func SpeedupsJ(newApp func() apps.App, archs []arch.Params, procs []int, refArch string, workers int) ([]Curve, error) {
	return SpeedupsJOpts(newApp, archs, procs, refArch, workers, Options{})
}

// SpeedupsJOpts is SpeedupsJ with explicit simulation options applied to
// every cell of the matrix.
func SpeedupsJOpts(newApp func() apps.App, archs []arch.Params, procs []int, refArch string, workers int, opt Options) ([]Curve, error) {
	ref, ok := arch.ByName(refArch)
	if !ok {
		return nil, fmt.Errorf("unknown reference architecture %q", refArch)
	}
	jobs := []Job{{Factory: newApp, Arch: ref, Nodes: 1, PPN: 1, Opts: opt}}
	for _, a := range archs {
		for _, p := range procs {
			jobs = append(jobs, Job{Factory: newApp, Arch: a, Nodes: p, PPN: 1, Opts: opt})
		}
	}
	results, err := RunJobs(jobs, workers)
	if err != nil {
		return nil, err
	}
	t1 := results[0].Time
	var curves []Curve
	i := 1
	for _, a := range archs {
		c := Curve{App: results[0].App, Arch: a.Name}
		for _, p := range procs {
			res := results[i]
			i++
			c.Procs = append(c.Procs, p)
			c.Times = append(c.Times, res.Time)
			c.Speedup = append(c.Speedup, float64(t1)/float64(res.Time))
		}
		curves = append(curves, c)
	}
	return curves, nil
}
