package fault

// splitmix64 is the PRNG underlying the fault plane. Every decision stream
// is keyed by (seed, component, seq): the key is mixed into a splitmix64
// state and successive outputs drive the per-packet (or per-work-item)
// draws. Because the stream depends only on the key — never on call order,
// wall time, or global state — fault schedules are bit-reproducible across
// runs, across GOMAXPROCS settings, and across concurrently running
// engines, which is what lets faulty runs be golden-traced.

// mix64 advances a splitmix64 state and returns the next output.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stream is a deterministic sequence of uniform draws for one keyed
// decision point.
type stream struct {
	state uint64
}

// newStream derives the stream for (seed, component, seq). The three key
// words are folded through the mixer so that adjacent keys (node 0 vs node
// 1, seq n vs n+1) produce unrelated streams.
func newStream(seed, component, seq uint64) stream {
	s := mix64(seed)
	s = mix64(s ^ mix64(component+0x632be59bd9b4e019))
	s = mix64(s ^ mix64(seq+0x9e6c63d0876a9a47))
	return stream{state: s}
}

// next returns the next raw 64-bit output.
func (s *stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (s *stream) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// uint32 returns a uniform 32-bit draw.
func (s *stream) uint32() uint32 {
	return uint32(s.next() >> 32)
}

// fnv1a hashes a name to a component key (agent names are strings).
func fnv1a(name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}
