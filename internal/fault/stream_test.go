package fault

import "testing"

// TestStreamGolden pins the exported stream outputs for a handful of keys.
// These constants are load-bearing: open-loop arrival schedules (and the
// serving results tables built from them) are pure functions of these
// draws, so a change here silently re-rolls every serving experiment.
func TestStreamGolden(t *testing.T) {
	cases := []struct {
		seed      uint64
		dom       Domain
		comp, seq uint64
		want      [4]uint64
	}{
		{1, DomainArrival, 0, 0, [4]uint64{
			0xfd45d6a473b9a4a5, 0xb9252ef2695b91b0, 0xc823361ccf5e2260, 0x3094ea054bdb4c00}},
		{1, DomainArrival, 1, 0, [4]uint64{
			0xbb2d7fd050c70033, 0xf5dc245d04e8667d, 0x5ce5c723a07ebd20, 0x64e98ccbc4c9952e}},
		{1, DomainKey, 0, 0, [4]uint64{
			0x138d91867d3a6950, 0x079651b5c698f6c0, 0x17ba2d136e3f7e85, 0xec33b830069547ac}},
		{7, DomainOpMix, 3, 2, [4]uint64{
			0x275b75a1ff8c60b0, 0xa4f76df5f6954254, 0x6d5c2cf32675c9c5, 0xf93dd5759006c242}},
	}
	for _, c := range cases {
		s := NewStream(c.seed, c.dom, c.comp, c.seq)
		for i, want := range c.want {
			if got := s.Uint64(); got != want {
				t.Errorf("NewStream(%d,%d,%d,%d) draw %d = %#x, want %#x",
					c.seed, c.dom, c.comp, c.seq, i, got, want)
			}
		}
	}
}

// TestStreamDisjointFromPlane verifies the domain-separation contract:
// an exported stream never reproduces the fault plane's internal stream
// for the same (seed, component, seq) key, so arrival schedules and fault
// schedules drawn under one seed are unrelated.
func TestStreamDisjointFromPlane(t *testing.T) {
	for comp := uint64(0); comp < 8; comp++ {
		for seq := uint64(0); seq < 8; seq++ {
			internal := newStream(1, comp, seq)
			for _, d := range []Domain{DomainArrival, DomainKey, DomainOpMix, DomainState} {
				ext := NewStream(1, d, comp, seq)
				same := 0
				in := internal
				for i := 0; i < 8; i++ {
					if ext.Uint64() == in.next() {
						same++
					}
				}
				if same == 8 {
					t.Fatalf("domain %d stream (comp=%d seq=%d) collides with the fault plane's", d, comp, seq)
				}
			}
		}
	}
}

// TestStreamStableAcrossClientCounts is the reconfiguration property:
// client c's draw sequence is keyed by c alone, so the same seed yields
// the same per-client schedule no matter how many other clients exist.
func TestStreamStableAcrossClientCounts(t *testing.T) {
	schedule := func(clients int) [][]uint64 {
		out := make([][]uint64, clients)
		for c := 0; c < clients; c++ {
			s := NewStream(42, DomainArrival, uint64(c), 0)
			for i := 0; i < 16; i++ {
				out[c] = append(out[c], s.Uint64())
			}
		}
		return out
	}
	small, big := schedule(4), schedule(64)
	for c := range small {
		for i := range small[c] {
			if small[c][i] != big[c][i] {
				t.Fatalf("client %d draw %d changed with client count: %#x vs %#x",
					c, i, small[c][i], big[c][i])
			}
		}
	}
}

// TestStreamDomainsIndependent checks that the four domains give distinct
// sequences for one (seed, component, seq) key.
func TestStreamDomainsIndependent(t *testing.T) {
	doms := []Domain{DomainArrival, DomainKey, DomainOpMix, DomainState}
	firsts := map[uint64]Domain{}
	for _, d := range doms {
		s := NewStream(9, d, 5, 1)
		v := s.Uint64()
		if prev, dup := firsts[v]; dup {
			t.Fatalf("domains %d and %d share first draw %#x", prev, d, v)
		}
		firsts[v] = d
	}
}
