// Package faultcli wires the fault plane and reliable transport into the
// cmd/mproxy-* binaries. Like tracecli, it works through process-wide
// installation (machine.SetGlobalFaultPlane, comm.SetGlobalRel): the
// experiment drivers construct clusters and fabrics internally, so the
// binaries configure faults once and every simulation the driver builds
// inherits them.
package faultcli

import (
	"flag"
	"fmt"

	"mproxy/internal/comm"
	"mproxy/internal/fault"
	"mproxy/internal/machine"
	"mproxy/internal/rel"
)

// Flags holds the fault-injection command-line options.
type Flags struct {
	Fault *string
	Seed  *uint64
	Rel   *bool
}

// AddFlags registers -fault, -seed and -rel on the default flag set. Call
// before flag.Parse.
func AddFlags() *Flags {
	return &Flags{
		Fault: flag.String("fault", "",
			`fault-injection spec, e.g. "drop=1e-3,corrupt=1e-4,down=0@1ms-2ms" (see internal/fault.Parse)`),
		Seed: flag.Uint64("seed", 1,
			"fault plane PRNG seed; schedules are pure functions of (seed, spec)"),
		Rel: flag.Bool("rel", true,
			"run inter-node traffic over the reliable transport when faults are active"),
	}
}

// Install parses the spec and installs the fault plane (and, unless
// disabled, the reliable transport) process-wide. With an empty spec it
// installs nothing and the simulation runs the exact zero-fault event
// schedule. It returns a one-line description of what was installed, or
// "" when nothing was.
func (f *Flags) Install() (string, error) {
	cfg, err := fault.Parse(*f.Fault, *f.Seed)
	if err != nil {
		return "", err
	}
	if !cfg.Active() {
		return "", nil
	}
	machine.SetGlobalFaultPlane(fault.NewPlane(cfg))
	if *f.Rel {
		relCfg := rel.DefaultConfig()
		comm.SetGlobalRel(&relCfg)
		return fmt.Sprintf("faults: %s (seed %d), reliable transport on", *f.Fault, *f.Seed), nil
	}
	return fmt.Sprintf("faults: %s (seed %d), reliable transport OFF (operations may hang or lose data)", *f.Fault, *f.Seed), nil
}
