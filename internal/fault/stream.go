package fault

// Keyed random streams for workload generators.
//
// The fault plane's internal streams are keyed (seed, component, seq) and
// folded through three mixer rounds (see splitmix.go). Workload layers —
// open-loop arrival processes, key-popularity draws, request-type mixes —
// need the same reproducibility contract (a stream is a pure function of
// its key, never of call order or global state), but their draws must not
// overlap the fault plane's: a client whose arrival schedule reuses the
// packet-drop stream would correlate load with loss. Exported streams
// therefore prepend a Domain word and fold FOUR mixer rounds; the fault
// plane folds three with no domain word, so no exported key can collide
// with an internal one short of a mixer-chain collision.
//
// Keying by the client's own identity (component = global client rank) —
// never by the client count — is what makes schedules stable under
// reconfiguration: the same seed reproduces client 7's exact arrival
// sequence whether the run has 8 clients or 8000.

// Domain separates independent stream families drawn under one seed.
// Each generator kind gets its own domain so that, e.g., a client's
// arrival stream and its key-popularity stream are unrelated even though
// both are keyed by the same (seed, client) pair.
type Domain uint64

const (
	// DomainArrival keys open-loop inter-arrival draws (component =
	// client rank, seq = load-point index).
	DomainArrival Domain = 1 + iota
	// DomainKey keys key-popularity draws (Zipfian and uniform).
	DomainKey
	// DomainOpMix keys request-type selection (GET/PUT/SCAN).
	DomainOpMix
	// DomainState keys modulated-process state transitions (MMPP on/off).
	DomainState
)

// Stream is an exported deterministic splitmix64 draw sequence for one
// (seed, domain, component, seq) key.
type Stream struct {
	s stream
}

// NewStream derives the stream for (seed, domain, component, seq). The
// extra domain round keeps every exported stream disjoint from the fault
// plane's three-round internal streams under the same seed.
func NewStream(seed uint64, d Domain, component, seq uint64) Stream {
	s := mix64(seed)
	s = mix64(s ^ mix64(uint64(d)+0xd1342543de82ef95))
	s = mix64(s ^ mix64(component+0x632be59bd9b4e019))
	s = mix64(s ^ mix64(seq+0x9e6c63d0876a9a47))
	return Stream{s: stream{state: s}}
}

// Uint64 returns the next raw 64-bit draw.
func (s *Stream) Uint64() uint64 { return s.s.next() }

// Float64 returns a uniform draw in [0, 1).
func (s *Stream) Float64() float64 { return s.s.float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("fault: Intn with non-positive bound")
	}
	return int(s.s.next() % uint64(n))
}
