package fault

import (
	"math"
	"testing"

	"mproxy/internal/machine"
	"mproxy/internal/sim"
)

func TestStreamsAreDeterministicAndKeyed(t *testing.T) {
	a := newStream(1, 2, 3)
	b := newStream(1, 2, 3)
	for i := 0; i < 16; i++ {
		if x, y := a.next(), b.next(); x != y {
			t.Fatalf("draw %d diverged: %x vs %x", i, x, y)
		}
	}
	// Adjacent keys must give unrelated streams.
	keys := []stream{newStream(1, 2, 3), newStream(2, 2, 3), newStream(1, 3, 3), newStream(1, 2, 4)}
	seen := map[uint64]int{}
	for i := range keys {
		seen[keys[i].next()] = i
	}
	if len(seen) != len(keys) {
		t.Fatalf("adjacent keys collided: %v", seen)
	}
}

func TestFloat64InRange(t *testing.T) {
	s := newStream(7, 0, 0)
	for i := 0; i < 1000; i++ {
		v := s.float64()
		if v < 0 || v >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, v)
		}
	}
}

func TestPacketFateRates(t *testing.T) {
	p := NewPlane(Config{Seed: 42, Drop: 0.1, Corrupt: 0.05, Dup: 0.05, Reorder: 0.2})
	const n = 20000
	var drops, corrupts, dups, delays int
	for seq := uint64(0); seq < n; seq++ {
		f := p.PacketFate("node0.out", 0, seq, 0)
		if f.Drop {
			drops++
		}
		if f.Corrupt {
			corrupts++
		}
		if f.Dup {
			dups++
		}
		if f.Delay > 0 {
			delays++
			if f.Delay > p.Config().ReorderMax+1 {
				t.Fatalf("seq %d: delay %v exceeds bound %v", seq, f.Delay, p.Config().ReorderMax)
			}
		}
	}
	check := func(name string, got int, want float64) {
		t.Helper()
		ratio := float64(got) / n
		if math.Abs(ratio-want) > want*0.25 {
			t.Errorf("%s rate = %.4f, want ~%.4f", name, ratio, want)
		}
	}
	check("drop", drops, 0.1)
	// Corrupt/dup/reorder are drawn only for undropped packets.
	check("corrupt", corrupts, 0.05*0.9)
	check("dup", dups, 0.05*0.9)
	check("reorder", delays, 0.2*0.9)
}

func TestPacketFateIsPure(t *testing.T) {
	p := NewPlane(Config{Seed: 9, Drop: 0.3, Corrupt: 0.3, Dup: 0.3, Reorder: 0.3})
	for seq := uint64(0); seq < 200; seq++ {
		a := p.PacketFate("l", 3, seq, 100)
		b := p.PacketFate("l", 3, seq, 100)
		if a != b {
			t.Fatalf("seq %d: fate not pure: %+v vs %+v", seq, a, b)
		}
	}
	// Different nodes see different schedules.
	same := 0
	for seq := uint64(0); seq < 200; seq++ {
		if p.PacketFate("l", 0, seq, 0) == p.PacketFate("l", 1, seq, 0) {
			same++
		}
	}
	if same == 200 {
		t.Error("node 0 and node 1 share an identical fault schedule")
	}
}

func TestLinkDownWindows(t *testing.T) {
	p := NewPlane(Config{Seed: 1, Down: []Window{
		{Node: 0, From: 100, To: 200},
		{Node: -1, From: 500, To: 600},
	}})
	cases := []struct {
		node int
		now  sim.Time
		down bool
	}{
		{0, 50, false}, {0, 100, true}, {0, 199, true}, {0, 200, false},
		{1, 150, false}, {1, 550, true}, {0, 550, true}, {2, 650, false},
	}
	for _, c := range cases {
		f := p.PacketFate("l", c.node, 0, c.now)
		if f.Down != c.down {
			t.Errorf("node %d at %v: down = %v, want %v", c.node, c.now, f.Down, c.down)
		}
	}
}

func TestAgentFaults(t *testing.T) {
	p := NewPlane(Config{Seed: 3, Stall: 0.2, Crash: 0.05})
	var stalls, crashes int
	const n = 5000
	for item := int64(0); item < n; item++ {
		f := p.AgentFault("node0.proxy0", item, 0)
		if f.Restart {
			crashes++
			if f.Stall != p.Config().CrashDowntime {
				t.Fatalf("crash without downtime: %+v", f)
			}
		} else if f.Stall > 0 {
			stalls++
			if f.Stall > p.Config().StallMax+1 {
				t.Fatalf("stall %v exceeds bound", f.Stall)
			}
		}
		if g := p.AgentFault("node0.proxy0", item, 0); g != f {
			t.Fatalf("agent fate not pure at item %d", item)
		}
	}
	if crashes == 0 || stalls == 0 {
		t.Fatalf("expected both stalls and crashes, got %d/%d", stalls, crashes)
	}
	if math.Abs(float64(crashes)/n-0.05) > 0.02 {
		t.Errorf("crash rate %.3f, want ~0.05", float64(crashes)/n)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	p := NewPlane(Config{Seed: 99})
	for seq := uint64(0); seq < 100; seq++ {
		if f := p.PacketFate("l", 0, seq, sim.Time(seq)); f != (machine.PacketFate{}) {
			t.Fatalf("zero config produced fate %+v", f)
		}
		if f := p.AgentFault("a", int64(seq), 0); f != (machine.AgentFate{}) {
			t.Fatalf("zero config produced agent fate %+v", f)
		}
	}
	if NewPlane(Config{}).Config().Active() {
		t.Error("zero config reports Active")
	}
	if !NewPlane(Config{Drop: 0.1}).Config().Active() {
		t.Error("drop config not Active")
	}
}

func TestParse(t *testing.T) {
	cfg, err := Parse("drop=1e-3,corrupt=1e-4,dup=2e-4,reorder=0.01,reordermax=30us,stall=1e-3,crash=1e-5,down=0@100us-300us,down=-1@1ms-1.5ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Drop != 1e-3 || cfg.Corrupt != 1e-4 || cfg.Dup != 2e-4 {
		t.Errorf("probabilities wrong: %+v", cfg)
	}
	if cfg.ReorderMax != 30*sim.Microsecond {
		t.Errorf("reordermax = %v", cfg.ReorderMax)
	}
	if len(cfg.Down) != 2 || cfg.Down[0] != (Window{Node: 0, From: 100 * sim.Microsecond, To: 300 * sim.Microsecond}) {
		t.Errorf("down windows wrong: %+v", cfg.Down)
	}
	if cfg.Down[1].Node != -1 || cfg.Down[1].To != sim.Time(1.5*float64(sim.Millisecond)) {
		t.Errorf("wildcard window wrong: %+v", cfg.Down[1])
	}

	// Bare float shorthand for drop.
	cfg, err = Parse("1e-2", 1)
	if err != nil || cfg.Drop != 1e-2 {
		t.Errorf("shorthand: cfg=%+v err=%v", cfg, err)
	}
	// Empty spec is a no-fault config.
	if cfg, err := Parse("  ", 0); err != nil || cfg.Active() {
		t.Errorf("empty spec: %+v %v", cfg, err)
	}
	for _, bad := range []string{"drop=2", "nope=1", "down=100us-300us", "down=0@300us-100us", "reordermax=10", "drop=x"} {
		if _, err := Parse(bad, 0); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
