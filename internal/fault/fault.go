// Package fault is the simulator's deterministic fault plane: a seeded
// model of the failure modes a production cluster fabric exhibits but the
// paper's SP2 switch was assumed not to — packet drop, payload corruption
// (CRC-detectable), duplication, bounded reordering, link-down windows,
// and communication-agent stalls and crashes.
//
// Every decision is drawn from a splitmix64 stream keyed by (seed,
// component, sequence number), so fault schedules are pure functions of
// the configuration: runs are bit-reproducible, golden-traceable, and
// safe to consult from concurrently running engines. A Plane implements
// machine.FaultPlane; install it with Cluster.SetFaultPlane, or carry it
// in a driver's options (workload.Options, micro.Options, scenario.Spec).
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mproxy/internal/machine"
	"mproxy/internal/sim"
)

// Window is a time interval during which a node's output link is down.
type Window struct {
	Node     int // node whose output link is down; -1 for every node
	From, To sim.Time
}

// Config parameterizes a fault plane. Probabilities are per packet (or
// per agent work item); zero values inject nothing.
type Config struct {
	// Seed keys every PRNG stream.
	Seed uint64

	// Drop is the probability a packet vanishes in flight.
	Drop float64
	// Corrupt is the probability a packet arrives with a flipped payload
	// bit (detected and discarded by the receiver's CRC check).
	Corrupt float64
	// Dup is the probability a packet is delivered twice.
	Dup float64
	// DupDelay separates the duplicate from the original (default 5us).
	DupDelay sim.Time
	// Reorder is the probability a packet is held back by a uniform
	// extra delay in (0, ReorderMax], letting later packets overtake it.
	Reorder float64
	// ReorderMax bounds the reordering delay (default 20us).
	ReorderMax sim.Time

	// Down lists link-down windows.
	Down []Window

	// Stall is the per-work-item probability that an agent pauses for a
	// uniform duration in (0, StallMax] (default StallMax 50us).
	Stall float64
	// StallMax bounds stall durations.
	StallMax sim.Time
	// Crash is the per-work-item probability that an agent crashes: it
	// stalls for CrashDowntime (default 200us) and then restarts its
	// dispatch loop from scratch.
	Crash float64
	// CrashDowntime is the restart latency after a crash.
	CrashDowntime sim.Time
}

// withDefaults fills the duration knobs left at zero.
func (c Config) withDefaults() Config {
	if c.DupDelay == 0 {
		c.DupDelay = 5 * sim.Microsecond
	}
	if c.ReorderMax == 0 {
		c.ReorderMax = 20 * sim.Microsecond
	}
	if c.StallMax == 0 {
		c.StallMax = 50 * sim.Microsecond
	}
	if c.CrashDowntime == 0 {
		c.CrashDowntime = 200 * sim.Microsecond
	}
	return c
}

// Active reports whether the configuration injects any fault at all.
func (c Config) Active() bool {
	return c.Drop > 0 || c.Corrupt > 0 || c.Dup > 0 || c.Reorder > 0 ||
		len(c.Down) > 0 || c.Stall > 0 || c.Crash > 0
}

// Plane is a deterministic fault injector. It is immutable after
// construction and therefore safe to share across engines.
type Plane struct {
	cfg Config
}

// NewPlane returns a plane for cfg.
func NewPlane(cfg Config) *Plane {
	cfg = cfg.withDefaults()
	sort.SliceStable(cfg.Down, func(i, j int) bool { return cfg.Down[i].From < cfg.Down[j].From })
	return &Plane{cfg: cfg}
}

// Config returns the plane's (defaulted) configuration.
func (p *Plane) Config() Config { return p.cfg }

// PacketFate implements machine.FaultPlane. The decision stream for a
// packet is keyed by (seed, node, seq); draws are consumed in a fixed
// order (drop, corrupt, dup, reorder) so adding a fault kind to a config
// does not reshuffle the others' schedules beyond the necessary.
func (p *Plane) PacketFate(link string, node int, seq uint64, now sim.Time) machine.PacketFate {
	for _, w := range p.cfg.Down {
		if (w.Node < 0 || w.Node == node) && now >= w.From && now < w.To {
			return machine.PacketFate{Down: true}
		}
	}
	if !p.cfg.Active() {
		return machine.PacketFate{}
	}
	s := newStream(p.cfg.Seed, uint64(node), seq)
	var fate machine.PacketFate
	if s.float64() < p.cfg.Drop {
		fate.Drop = true
		return fate
	}
	if s.float64() < p.cfg.Corrupt {
		fate.Corrupt = true
		fate.CorruptBit = s.uint32()
	}
	if s.float64() < p.cfg.Dup {
		fate.Dup = true
		fate.DupDelay = p.cfg.DupDelay
	}
	if s.float64() < p.cfg.Reorder {
		fate.Delay = 1 + sim.Time(s.float64()*float64(p.cfg.ReorderMax))
	}
	return fate
}

// AgentFault implements machine.FaultPlane, keyed by (seed, agent, item).
func (p *Plane) AgentFault(agent string, item int64, now sim.Time) machine.AgentFate {
	if p.cfg.Stall == 0 && p.cfg.Crash == 0 {
		return machine.AgentFate{}
	}
	s := newStream(p.cfg.Seed, fnv1a(agent), uint64(item))
	if s.float64() < p.cfg.Crash {
		return machine.AgentFate{Stall: p.cfg.CrashDowntime, Restart: true}
	}
	if s.float64() < p.cfg.Stall {
		return machine.AgentFate{Stall: 1 + sim.Time(s.float64()*float64(p.cfg.StallMax))}
	}
	return machine.AgentFate{}
}

// Parse builds a Config from a comma-separated spec like
//
//	drop=1e-3,corrupt=1e-4,dup=1e-4,reorder=0.01,reordermax=20us,
//	stall=1e-3,crash=1e-4,down=0@100us-300us,down=-1@1ms-1.5ms
//
// Probabilities are bare floats; durations take a us/ms/s suffix. A bare
// float with no key is shorthand for drop=<p>. Seed comes from the -seed
// flag, not the spec.
func Parse(spec string, seed uint64) (Config, error) {
	cfg := Config{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, found := strings.Cut(field, "=")
		if !found {
			p, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return cfg, fmt.Errorf("fault: bad spec field %q", field)
			}
			cfg.Drop = p
			continue
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "drop":
			cfg.Drop, err = parseProb(val)
		case "corrupt":
			cfg.Corrupt, err = parseProb(val)
		case "dup":
			cfg.Dup, err = parseProb(val)
		case "dupdelay":
			cfg.DupDelay, err = parseDur(val)
		case "reorder":
			cfg.Reorder, err = parseProb(val)
		case "reordermax":
			cfg.ReorderMax, err = parseDur(val)
		case "stall":
			cfg.Stall, err = parseProb(val)
		case "stallmax":
			cfg.StallMax, err = parseDur(val)
		case "crash":
			cfg.Crash, err = parseProb(val)
		case "crashdowntime":
			cfg.CrashDowntime, err = parseDur(val)
		case "down":
			var w Window
			w, err = parseWindow(val)
			cfg.Down = append(cfg.Down, w)
		default:
			return cfg, fmt.Errorf("fault: unknown spec key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("fault: %s=%s: %w", key, val, err)
		}
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

func parseDur(s string) (sim.Time, error) {
	for _, u := range []struct {
		suffix string
		unit   sim.Time
	}{{"us", sim.Microsecond}, {"ms", sim.Millisecond}, {"ns", sim.Nanosecond}, {"s", sim.Second}} {
		if v, ok := strings.CutSuffix(s, u.suffix); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return 0, err
			}
			if f < 0 {
				return 0, fmt.Errorf("negative duration %q", s)
			}
			return sim.Time(f * float64(u.unit)), nil
		}
	}
	return 0, fmt.Errorf("duration %q needs a ns/us/ms/s suffix", s)
}

// parseWindow parses node@from-to, e.g. 0@100us-300us or -1@1ms-2ms.
func parseWindow(s string) (Window, error) {
	nodeS, span, found := strings.Cut(s, "@")
	if !found {
		return Window{}, fmt.Errorf("window %q needs node@from-to", s)
	}
	node, err := strconv.Atoi(nodeS)
	if err != nil {
		return Window{}, err
	}
	fromS, toS, found := strings.Cut(span, "-")
	if !found {
		return Window{}, fmt.Errorf("window span %q needs from-to", span)
	}
	from, err := parseDur(fromS)
	if err != nil {
		return Window{}, err
	}
	to, err := parseDur(toS)
	if err != nil {
		return Window{}, err
	}
	if to <= from {
		return Window{}, fmt.Errorf("window %q is empty", s)
	}
	return Window{Node: node, From: from, To: to}, nil
}
