package span

import (
	"strings"
	"testing"

	"mproxy/internal/trace"
)

// feed replays a synthetic event stream mimicking the engine's emission
// contract: KSchedule/KFire pair by Seq, KSpawn/KUnpark open a process
// context, KPark/KProcEnd/KFire close it.
func feed(a *Assembler, evs []trace.Event) {
	for _, ev := range evs {
		a.Record(ev)
	}
}

// putStream is the minimal proxy-architecture PUT lifecycle: submit,
// command-queue wait, service, wire, input wait, deliver.
func putStream() []trace.Event {
	return []trace.Event{
		{At: 0, Kind: trace.KSpawn, Comp: "user"},
		{At: 0, Kind: trace.KOpSubmit, Comp: "PUT", Arg: 64},
		{At: 100, Kind: trace.KEnqueue, Comp: "p0.q", Arg: 1}, // submission lands
		{At: 100, Kind: trace.KPark, Comp: "user"},
		{At: 150, Kind: trace.KUnpark, Comp: "p0"}, // local agent picks up
		{At: 150, Kind: trace.KDequeue, Comp: "p0.q", Arg: 0},
		{At: 200, Kind: trace.KPoll, Comp: "p0", Arg: 100},
		{At: 210, Kind: trace.KScan, Comp: "p0.scan", Arg: trace.ScanArg(3, 1, true)},
		{At: 300, Kind: trace.KSchedule, Seq: 7, Arg: 150}, // packet flight (agent ctx would be set... )
		{At: 300, Kind: trace.KPark, Comp: "p0"},
		{At: 450, Kind: trace.KFire, Seq: 7},
		{At: 450, Kind: trace.KEnqueue, Comp: "p1.q", Arg: 1}, // delivery hop
		{At: 460, Kind: trace.KUnpark, Comp: "p1"},
		{At: 460, Kind: trace.KDequeue, Comp: "p1.q", Arg: 0},
		{At: 500, Kind: trace.KPoll, Comp: "p1", Arg: 50},
		{At: 600, Kind: trace.KOpDone, Comp: "PUT", Arg: 600},
		{At: 600, Kind: trace.KPark, Comp: "p1"},
	}
}

// The schedule at 300 must happen in agent context (after p0's KPoll,
// before its KPark); the stream above interleaves exactly as the engine
// does: the agent is "current" from KUnpark until KPark.

func TestAssemblePUT(t *testing.T) {
	a := NewAssembler()
	feed(a, putStream())
	spans := a.CompleteSpans()
	if len(spans) != 1 {
		t.Fatalf("got %d complete spans, want 1: %+v", len(spans), a.Stats())
	}
	s := spans[0]
	if s.Op != "PUT" || s.Bytes != 64 || s.Origin != "user" {
		t.Errorf("span header wrong: %+v", s)
	}
	if s.Submit != 0 || s.Done != 600 || s.Latency != 600 {
		t.Errorf("span times wrong: submit=%d done=%d lat=%d", s.Submit, s.Done, s.Latency)
	}
	if s.Total() != 600 {
		t.Errorf("phase sum %d != 600", s.Total())
	}
	wantPhases := map[Phase]int64{
		PhaseSubmit:     100, // 0 -> enqueue at 100
		PhaseCmdQueue:   100, // 100 -> poll at 200
		PhaseService:    100, // 200 -> launch at 300
		PhaseWire:       150, // 300 -> arrival at 450
		PhaseInputQueue: 50,  // 450 -> poll at 500
		PhaseDeliver:    100, // 500 -> done at 600
	}
	for p, want := range wantPhases {
		if got := s.PhaseTotal(p); got != want {
			t.Errorf("phase %s = %d, want %d", p, got, want)
		}
	}
	if got, want := s.Flow(), "user>p0>p1"; got != want {
		t.Errorf("flow = %q, want %q", got, want)
	}
	if s.Probes != 3 || s.HeadChecks != 1 {
		t.Errorf("scan attribution: probes=%d checks=%d, want 3/1", s.Probes, s.HeadChecks)
	}
	if s.Approx {
		t.Error("span marked approximate")
	}
	st := a.Stats()
	if st.UnattributedItems != 0 || st.FallbackDone != 0 || st.OrphanDone != 0 || st.FifoDesyncs != 0 {
		t.Errorf("attribution counters nonzero: %+v", st)
	}
}

// TestRollover replays the same stream twice, as a driver building two
// engines does: time runs backwards at the boundary and the assembler
// must keep the runs separate.
func TestRollover(t *testing.T) {
	a := NewAssembler()
	feed(a, putStream())
	feed(a, putStream())
	spans := a.CompleteSpans()
	if len(spans) != 2 {
		t.Fatalf("got %d complete spans, want 2", len(spans))
	}
	if spans[0].Run != 0 || spans[1].Run != 1 {
		t.Errorf("runs = %d,%d, want 0,1", spans[0].Run, spans[1].Run)
	}
	if spans[1].Total() != 600 {
		t.Errorf("second run phase sum %d != 600", spans[1].Total())
	}
}

// TestIncompleteSpan: a stream ending before KOpDone leaves the span open
// and out of the complete set, without disturbing counters.
func TestIncompleteSpan(t *testing.T) {
	a := NewAssembler()
	evs := putStream()
	feed(a, evs[:8]) // stop after the scan, mid-service
	if got := len(a.CompleteSpans()); got != 0 {
		t.Fatalf("got %d complete spans, want 0", got)
	}
	if st := a.Stats(); st.Spans != 1 || st.Completed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestUnattributedPoison: a nil work item (an agent shutdown pill) must
// flow through the FIFO mirror without desyncing later attribution.
func TestUnattributedPoison(t *testing.T) {
	a := NewAssembler()
	evs := []trace.Event{
		// An enqueue from an unknown engine-context source (no fire info).
		{At: 10, Kind: trace.KEnqueue, Comp: "p0.q", Arg: 1},
		{At: 20, Kind: trace.KUnpark, Comp: "p0"},
		{At: 20, Kind: trace.KDequeue, Comp: "p0.q", Arg: 0},
		{At: 30, Kind: trace.KPoll, Comp: "p0", Arg: 20},
		{At: 40, Kind: trace.KPark, Comp: "p0"},
	}
	feed(a, evs)
	st := a.Stats()
	if st.UnattributedItems != 1 {
		t.Errorf("unattributed = %d, want 1", st.UnattributedItems)
	}
	if st.FifoDesyncs != 0 {
		t.Errorf("fifo desyncs = %d, want 0", st.FifoDesyncs)
	}
	// A subsequent attributed command still assembles cleanly.
	feed(a, putStream()) // time goes backwards -> rollover, fresh state
	if got := len(a.CompleteSpans()); got != 1 {
		t.Errorf("complete spans after poison = %d, want 1", got)
	}
}

// TestClampedPhase: a phase boundary earlier than the span's mark (an
// overlapped pipeline) clamps to zero length, flags Approx, and keeps the
// exact-sum invariant.
func TestClampedPhase(t *testing.T) {
	s := &Span{Submit: 100, mark: 100}
	s.phase(PhaseSubmit, "u", 200)
	s.phase(PhaseService, "a", 150) // earlier than mark: clamp
	s.phase(PhaseDeliver, "b", 300)
	if !s.Approx {
		t.Error("clamped span not marked approximate")
	}
	if got := s.Total(); got != 200 {
		t.Errorf("total = %d, want 200 (exact tiling preserved)", got)
	}
	if s.PhaseTotal(PhaseService) != 0 {
		t.Errorf("clamped phase duration = %d, want 0", s.PhaseTotal(PhaseService))
	}
}

func TestBreakdownAggregate(t *testing.T) {
	a := NewAssembler()
	feed(a, putStream())
	feed(a, putStream())
	bd := Aggregate(a.Spans())
	g := bd.ByOp["PUT"]
	if g == nil || g.Count != 2 {
		t.Fatalf("PUT group missing or wrong count: %+v", g)
	}
	if g.MeanUs() != 0.6 {
		t.Errorf("mean latency = %v us, want 0.6", g.MeanUs())
	}
	if g.PhaseMeanUs(PhaseWire) != 0.15 {
		t.Errorf("wire mean = %v us, want 0.15", g.PhaseMeanUs(PhaseWire))
	}
	// Phase means must sum to the total mean: the exact-sum invariant
	// survives aggregation.
	var sum float64
	for p := 0; p < NumPhases; p++ {
		sum += g.PhaseMeanUs(Phase(p))
	}
	if diff := sum - g.MeanUs(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("phase means sum %v != total mean %v", sum, g.MeanUs())
	}
	tbl := bd.Table()
	if !strings.Contains(tbl, "PUT user>p0>p1") || !strings.Contains(tbl, "agent-service") {
		t.Errorf("table missing expected content:\n%s", tbl)
	}
	snap := bd.Snapshot()
	if len(snap.ByOp) != 1 || len(snap.ByFlow) != 1 {
		t.Errorf("snapshot groups: %d/%d, want 1/1", len(snap.ByOp), len(snap.ByFlow))
	}
}
