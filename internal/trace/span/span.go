// Package span stitches the simulator's flat trace stream into
// per-message lifecycle spans: one Span per RMA/RQ operation, decomposed
// into the named phases of the paper's Table 2 critical path (sender
// overhead, command-queue wait, agent service, wire, input-FIFO wait,
// delivery). The Assembler is a trace.Tracer, so it consumes the existing
// fan-out — zero new emit sites — and reconstructs attribution purely
// from event order and the engine's context-switch events:
//
//	KOpSubmit            the issuing process opens a span
//	KEnqueue  (user ctx) the command reached a queue feeding the agent:
//	                     the per-user command queue ("rank<N>.cmdq") under
//	                     the proxy design points, the agent's work queue
//	                     ("<agent>.q") otherwise
//	KPoll                the agent picked a work item up
//	KDequeue  (.cmdq)    the proxy's scan drained a specific command queue;
//	                     the span that queue carries binds to the running
//	                     work item (queue wait ends)
//	KSchedule/KFire      a packet launched during service crosses the wire
//	KEnqueue  (eng ctx)  the delivery reached the receiving agent's queue
//	KOpDone              the data deposited; the span closes
//
// The command-queue events exist because proxy work tokens are fungible:
// the agent work item submitted for one endpoint's command may service a
// different endpoint's queue (the scan is round-robin across the node's
// registered queues). Pairing spans with work items in FIFO order would
// cross identities whenever two endpoints on a node have commands in
// flight; riding the span on the command queue itself keeps attribution
// exact.
//
// Phase boundaries chain through a per-span monotone mark, so the phase
// durations of every span sum exactly to Done-Submit — the assembler
// never loses or double-counts time, even when it cannot attribute a
// boundary (the residual lands in the enclosing phase and the span is
// flagged Approx). Serialized request/response traffic (the Table 4
// micro-benchmark shape) attributes exactly; pipelined DMA pages and
// system-call kernel chains degrade gracefully to coarser phases.
package span

import (
	"fmt"
	"strings"

	"mproxy/internal/trace"
)

// Phase names one segment of a message's lifecycle. The mapping to the
// paper's Table 2 terms:
//
//	PhaseSubmit     user enqueues the command (2 misses + instr)
//	PhaseCmdQueue   polling delay P + queueing until the proxy's scan
//	                reaches the command queue (zero for custom hardware)
//	PhaseService    agent occupancy building/launching packets: decode,
//	                vm_att, header setup, source read, PIO/DMA feed
//	PhaseWire       link serialization + network transit L, per hop
//	PhaseInputQueue polling delay P + queueing at the receiving agent's
//	                network input FIFO
//	PhaseRQWait     DEQ only: waiting for a record to arrive in the
//	                remote queue (includes the request's service time)
//	PhaseDeliver    receive-side handler up to data deposit: header read,
//	                vm_att, payload read, copy to destination
//	PhaseIntra      same-node shared-memory fast path (whole operation)
type Phase uint8

const (
	PhaseSubmit Phase = iota
	PhaseCmdQueue
	PhaseService
	PhaseWire
	PhaseInputQueue
	PhaseRQWait
	PhaseDeliver
	PhaseIntra
	// NumPhases is the number of phases.
	NumPhases = int(PhaseIntra) + 1
)

var phaseNames = [NumPhases]string{
	"submit", "cmdq-wait", "agent-service", "wire", "input-queue",
	"rq-wait", "deliver", "intra",
}

func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Interval is one contiguous slice of a span's lifetime attributed to a
// phase. Intervals chain: each starts where the previous ended.
type Interval struct {
	Phase Phase
	// Where names the component the time was spent at: the issuing
	// process, an agent or its work queue, or "wire".
	Where string
	// Hop counts network deliveries completed when the interval was
	// recorded (0 = before the first hop).
	Hop      int
	From, To int64 // nanoseconds
}

// Dur returns the interval length in nanoseconds.
func (iv Interval) Dur() int64 { return iv.To - iv.From }

// Span is one operation's reconstructed lifecycle.
type Span struct {
	ID     int
	Run    int // engine segment (0, 1, ... as drivers build fresh engines)
	Op     string
	Bytes  int64
	Origin string // issuing process
	Submit int64  // nanoseconds
	Done   int64
	// Latency is the one-way latency KOpDone reported (== Done-Submit
	// unless the submit event predates the tracer).
	Latency int64
	// Complete marks spans that reached KOpDone before the run ended.
	Complete bool
	// Approx marks spans with at least one fallback-attributed or
	// clamped boundary (overlapping DMA pages, kernel chains).
	Approx bool
	// Intra marks same-node shared-memory operations.
	Intra bool
	// Route lists the agents that serviced the span's work items, in
	// pickup order.
	Route []string
	// Probes and HeadChecks total the command-queue scan work observed
	// during this span's agent service (KScan attribution).
	Probes     int64
	HeadChecks int64
	Intervals  []Interval

	mark    int64 // end of the last recorded interval
	engHops int   // network deliveries attributed so far
	closed  bool
}

// phase appends an interval [mark, to] of phase p. A boundary earlier
// than the mark (overlapped pipeline stages) clamps to zero length and
// flags the span approximate; the mark never moves backward, so the
// intervals always tile [Submit, Done] exactly.
func (s *Span) phase(p Phase, where string, to int64) {
	if s.closed {
		return
	}
	from := s.mark
	if to < from {
		s.Approx = true
		to = from
	}
	s.Intervals = append(s.Intervals, Interval{Phase: p, Where: where, Hop: s.engHops, From: from, To: to})
	s.mark = to
}

// PhaseTotal returns the span's total time in phase p across all hops.
func (s *Span) PhaseTotal(p Phase) int64 {
	var t int64
	for _, iv := range s.Intervals {
		if iv.Phase == p {
			t += iv.Dur()
		}
	}
	return t
}

// HasPhase reports whether any interval of phase p was recorded.
func (s *Span) HasPhase(p Phase) bool {
	for _, iv := range s.Intervals {
		if iv.Phase == p {
			return true
		}
	}
	return false
}

// Total returns the sum of all interval durations. For a complete span it
// equals Done-Submit exactly.
func (s *Span) Total() int64 {
	var t int64
	for _, iv := range s.Intervals {
		t += iv.Dur()
	}
	return t
}

// Flow identifies the span's path: origin process and the agents visited.
// Consecutive visits to the same agent (a multi-packet DMA stream lands
// one hop per page on the receiving proxy) collapse to one entry, so
// flows group by path rather than by packet count. Same-node operations
// report the shared-memory fast path.
func (s *Span) Flow() string {
	if s.Intra {
		return s.Origin + ">intra"
	}
	hops := []string{s.Origin}
	for _, r := range s.Route {
		if r != hops[len(hops)-1] {
			hops = append(hops, r)
		}
	}
	return strings.Join(hops, ">")
}

// Report renders the span's critical path as one line per interval — the
// per-message "where did the time go" answer.
func (s *Span) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "span %d run %d: %s %dB %s", s.ID, s.Run, s.Op, s.Bytes, s.Flow())
	if s.Complete {
		fmt.Fprintf(&b, "  latency %.3fus", float64(s.Latency)/1e3)
	} else {
		b.WriteString("  (incomplete)")
	}
	if s.Approx {
		b.WriteString("  [approx]")
	}
	b.WriteByte('\n')
	for _, iv := range s.Intervals {
		fmt.Fprintf(&b, "  %10.3fus .. %10.3fus  %-13s %8.3fus  hop %d  %s\n",
			float64(iv.From)/1e3, float64(iv.To)/1e3, iv.Phase.String(),
			float64(iv.Dur())/1e3, iv.Hop, iv.Where)
	}
	if s.Probes > 0 || s.HeadChecks > 0 {
		fmt.Fprintf(&b, "  scan work during service: %d probes, %d head checks\n",
			s.Probes, s.HeadChecks)
	}
	return b.String()
}

// Stats counts the assembler's attribution quality. Unattributed items
// and orphan completions measure how much of the stream fell back to
// heuristics (zero on the serialized micro-benchmark scenarios).
type Stats struct {
	Spans             int `json:"spans"`
	Completed         int `json:"completed"`
	Approximate       int `json:"approximate"`
	Intra             int `json:"intra"`
	LatencyMismatches int `json:"latency_mismatches"`
	UnattributedItems int `json:"unattributed_items"`
	FallbackDone      int `json:"fallback_done"`
	OrphanDone        int `json:"orphan_done"`
	FifoDesyncs       int `json:"fifo_desyncs"`
	Runs              int `json:"runs"`
}

// workItem mirrors one entry of an agent's work queue.
type workItem struct {
	span  *Span
	enqAt int64
	// send marks a user command submission (phase boundary: command-queue
	// wait); network delivery hops wait in the input FIFO instead.
	send bool
	// deqReq marks the first delivery hop of a DEQ: its service parks the
	// span until the remote queue produces a record.
	deqReq bool
	// probes and headChecks stash scan work observed before the item bound
	// a span (proxy tokens bind at the command-queue dequeue, which the
	// scan itself precedes); the rebind transfers them to the span.
	probes, headChecks int64
}

// schedInfo remembers who created an engine event, so the packet-flight
// schedules a service launches can carry span attribution to the delivery.
type schedInfo struct {
	at      int64 // creation time (= packet launch time for wire events)
	span    *Span
	creator string
	// fromUser marks schedules created by a user process with a pending
	// submission — under SW these are the wire flights themselves.
	fromUser bool
	owner    string
}

// Assembler reconstructs spans from a trace stream. It is a trace.Tracer;
// install it alongside other tracers via trace.Multi. Like the metrics
// collector it is not safe for concurrent engines.
type Assembler struct {
	spans []*Span
	stats Stats

	cur       string // running process ("" = engine context)
	pending   map[string]*Span
	scheds    map[uint64]schedInfo
	curFire   schedInfo
	tent      schedInfo // fromUser fire awaiting wire-vs-resume resolution
	tentAt    int64
	haveTent  bool
	qfifo     map[string][]*workItem // per-agent work-queue mirror
	ready     map[string]*workItem   // dequeued, awaiting KPoll
	active    map[string]*workItem   // in service
	cmdq      map[string][]*Span     // per-command-queue span FIFO (proxy)
	owed      map[string]int         // user procs whose span rode the cmdq
	dormant   []*Span                // DEQ spans parked on empty remote queues
	openByOp  map[string][]*Span
	lastAt    int64
	curRun    int
	runActive bool
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	a := &Assembler{}
	a.resetRun()
	return a
}

func (a *Assembler) resetRun() {
	a.cur = ""
	a.pending = make(map[string]*Span)
	a.scheds = make(map[uint64]schedInfo)
	a.curFire = schedInfo{}
	a.haveTent = false
	a.qfifo = make(map[string][]*workItem)
	a.ready = make(map[string]*workItem)
	a.active = make(map[string]*workItem)
	a.cmdq = make(map[string][]*Span)
	a.owed = make(map[string]int)
	a.dormant = nil
	a.openByOp = make(map[string][]*Span)
}

// Spans returns every span opened so far, in submission order.
func (a *Assembler) Spans() []*Span { return a.spans }

// CompleteSpans returns the spans that reached KOpDone.
func (a *Assembler) CompleteSpans() []*Span {
	out := make([]*Span, 0, a.stats.Completed)
	for _, s := range a.spans {
		if s.Complete {
			out = append(out, s)
		}
	}
	return out
}

// Stats returns attribution-quality counters.
func (a *Assembler) Stats() Stats {
	st := a.stats
	if a.runActive {
		st.Runs = a.curRun + 1
	}
	return st
}

// agentOf maps an agent work-queue trace name to its agent, following the
// machine.NewAgent contract that agent queues are named "<agent>.q" (the
// only named sim.Queues in the tree). Command-queue components
// ("rank<N>.cmdq") do not match: their suffix is ".cmdq", not ".q".
func agentOf(comp string) (string, bool) {
	return strings.CutSuffix(comp, ".q")
}

// isCmdq reports whether comp names a per-user command queue, following
// the comm fabric contract that they are named "rank<N>.cmdq".
func isCmdq(comp string) bool {
	return strings.HasSuffix(comp, ".cmdq")
}

// Record implements trace.Tracer.
func (a *Assembler) Record(ev trace.Event) {
	if ev.At < a.lastAt {
		// Time ran backwards: the driver built a fresh engine. In-flight
		// state is per-engine; open spans stay incomplete.
		a.curRun++
		a.resetRun()
	}
	a.lastAt = ev.At
	a.runActive = true
	if a.haveTent {
		// A user-context schedule fired as the previous event. If the
		// process merely resumed (a Hold or a flag wake), this event is
		// its KUnpark; anything else means the schedule was a packet
		// flight launched inline from user context (the SW send path).
		if ev.Kind == trace.KUnpark {
			a.haveTent = false
		} else {
			a.commitTent()
		}
	}
	switch ev.Kind {
	case trace.KSchedule:
		si := schedInfo{at: ev.At, creator: a.cur}
		if a.cur == "" {
			si.span = a.curFire.span
		} else if item := a.active[a.cur]; item != nil {
			si.span = item.span
		} else if sp := a.pending[a.cur]; sp != nil {
			si.span = sp
			si.fromUser = true
			si.owner = a.cur
		}
		if si.span != nil {
			a.scheds[ev.Seq] = si
		}
	case trace.KFire:
		a.cur = ""
		a.curFire = a.scheds[ev.Seq]
		delete(a.scheds, ev.Seq)
		if a.curFire.fromUser && a.curFire.span != nil && !a.curFire.span.closed {
			a.tent = a.curFire
			a.tentAt = ev.At
			a.haveTent = true
		}
	case trace.KSpawn, trace.KUnpark:
		a.cur = ev.Comp
	case trace.KPark, trace.KProcEnd:
		a.cur = ""
	case trace.KOpSubmit:
		sp := &Span{
			ID: len(a.spans), Run: a.curRun, Op: ev.Comp, Bytes: ev.Arg,
			Origin: a.cur, Submit: ev.At, mark: ev.At,
		}
		a.spans = append(a.spans, sp)
		a.stats.Spans++
		if a.cur != "" {
			a.pending[a.cur] = sp
		}
		a.openByOp[sp.Op] = append(a.openByOp[sp.Op], sp)
	case trace.KEnqueue:
		if isCmdq(ev.Comp) {
			a.onCmdqEnqueue(ev)
			return
		}
		a.onEnqueue(ev)
	case trace.KDequeue:
		if isCmdq(ev.Comp) {
			a.onCmdqDequeue(ev)
			return
		}
		agent, ok := agentOf(ev.Comp)
		if !ok {
			return
		}
		delete(a.active, agent)
		if fifo := a.qfifo[agent]; len(fifo) > 0 {
			a.ready[agent] = fifo[0]
			a.qfifo[agent] = fifo[1:]
		} else {
			delete(a.ready, agent)
			a.stats.FifoDesyncs++
		}
	case trace.KPoll:
		agent := ev.Comp
		item := a.ready[agent]
		delete(a.ready, agent)
		if item == nil {
			a.stats.FifoDesyncs++
			return
		}
		a.active[agent] = item
		sp := item.span
		if sp == nil || sp.closed {
			return
		}
		sp.Route = append(sp.Route, agent)
		if item.send {
			sp.phase(PhaseCmdQueue, agent+".q", ev.At)
		} else {
			sp.phase(PhaseInputQueue, agent+".q", ev.At)
		}
		if item.deqReq {
			a.dormant = append(a.dormant, sp)
		}
	case trace.KScan:
		agent := strings.TrimSuffix(ev.Comp, ".scan")
		if item := a.active[agent]; item != nil {
			s := trace.DecodeScanArg(ev.Arg)
			if sp := item.span; sp != nil {
				if !sp.closed {
					sp.Probes += s.Probes
					sp.HeadChecks += s.HeadChecks
				}
			} else {
				// The scan precedes the command-queue dequeue that binds
				// this item's span; stash until the rebind.
				item.probes += s.Probes
				item.headChecks += s.HeadChecks
			}
		}
	case trace.KOpDone:
		a.onDone(ev)
	}
}

// onEnqueue mirrors a put to an agent work queue and attributes it.
func (a *Assembler) onEnqueue(ev trace.Event) {
	agent, ok := agentOf(ev.Comp)
	if !ok {
		return
	}
	item := &workItem{enqAt: ev.At}
	switch {
	case a.cur == "":
		// Engine context: a packet delivery scheduled by some earlier
		// service (or a shutdown pill / retransmission, which stay
		// unattributed). The firing schedule carries the span and the
		// launch instant, splitting service time from wire time.
		if sp := a.curFire.span; sp != nil && !sp.closed {
			item.span = sp
			sp.phase(PhaseService, a.curFire.creator, a.curFire.at)
			sp.phase(PhaseWire, "wire", ev.At)
			sp.engHops++
			if sp.Op == "DEQ" && sp.engHops == 1 {
				item.deqReq = true
			}
		} else {
			a.stats.UnattributedItems++
		}
	case a.active[a.cur] != nil:
		// Agent context mid-service: the only agent-side submissions are
		// DEQ replies materializing from a remote queue's TakeAsync.
		if len(a.dormant) > 0 {
			sp := a.dormant[0]
			a.dormant = a.dormant[1:]
			if !sp.closed {
				item.span = sp
				sp.phase(PhaseRQWait, ev.Comp, ev.At)
			}
		} else {
			a.stats.UnattributedItems++
		}
	case a.pending[a.cur] != nil:
		// User context: the submitted command reached the agent's queue.
		sp := a.pending[a.cur]
		delete(a.pending, a.cur)
		if !sp.closed {
			item.span = sp
			item.send = true
			sp.phase(PhaseSubmit, sp.Origin, ev.At)
		}
	case a.owed[a.cur] > 0:
		// Proxy notification token: the span already rode the command
		// queue at onCmdqEnqueue; this work item stays span-less until
		// the scan's dequeue binds whichever span it actually drains.
		a.owed[a.cur]--
	default:
		a.stats.UnattributedItems++
	}
	a.qfifo[agent] = append(a.qfifo[agent], item)
}

// onCmdqEnqueue records a user command entering its per-user command
// queue under the proxy design points: the submit phase ends here, and
// the span rides the command queue — not the agent work token — so the
// round-robin scan's pick binds the right identity.
func (a *Assembler) onCmdqEnqueue(ev trace.Event) {
	if a.cur == "" {
		a.cmdq[ev.Comp] = append(a.cmdq[ev.Comp], nil)
		a.stats.UnattributedItems++
		return
	}
	a.owed[a.cur]++
	sp := a.pending[a.cur]
	if sp != nil {
		delete(a.pending, a.cur)
		sp.phase(PhaseSubmit, sp.Origin, ev.At)
	} else {
		a.stats.UnattributedItems++
	}
	a.cmdq[ev.Comp] = append(a.cmdq[ev.Comp], sp)
}

// onCmdqDequeue binds the oldest span waiting in the drained command
// queue to the agent work item currently in service: command-queue wait
// ends, and the rest of the item's service attributes to this span.
func (a *Assembler) onCmdqDequeue(ev trace.Event) {
	fifo := a.cmdq[ev.Comp]
	if len(fifo) == 0 {
		a.stats.FifoDesyncs++
		return
	}
	sp := fifo[0]
	a.cmdq[ev.Comp] = fifo[1:]
	item := a.active[a.cur]
	if item == nil {
		a.stats.FifoDesyncs++
		return
	}
	item.span = sp
	if sp == nil || sp.closed {
		return
	}
	sp.Route = append(sp.Route, a.cur)
	sp.phase(PhaseCmdQueue, a.cur+".q", ev.At)
	sp.Probes += item.probes
	sp.HeadChecks += item.headChecks
	item.probes, item.headChecks = 0, 0
}

// commitTent resolves a user-context schedule as a wire flight: under the
// system-call architecture the kernel send runs inline on the user's
// processor and ships directly, so the span's submit phase ends at the
// launch and the flight time is wire.
func (a *Assembler) commitTent() {
	a.haveTent = false
	t := a.tent
	if t.owner != "" && a.pending[t.owner] == t.span {
		delete(a.pending, t.owner)
	}
	sp := t.span
	if sp == nil || sp.closed {
		return
	}
	sp.phase(PhaseSubmit, t.creator, t.at)
	sp.phase(PhaseWire, "wire", a.tentAt)
	sp.engHops++
}

// onDone closes the span a KOpDone belongs to. Resolution order: the
// serving agent's active item, the issuing user's pending submission
// (intra-node fast path), the firing schedule's span (system-call kernel
// chains), then the oldest open span of the operation kind.
func (a *Assembler) onDone(ev trace.Event) {
	var sp *Span
	intra := false
	if a.cur != "" {
		if item := a.active[a.cur]; item != nil && item.span != nil &&
			!item.span.closed && item.span.Op == ev.Comp {
			sp = item.span
		} else if p := a.pending[a.cur]; p != nil && !p.closed && p.Op == ev.Comp {
			sp = p
			intra = true
			delete(a.pending, a.cur)
		}
	} else if p := a.curFire.span; p != nil && !p.closed && p.Op == ev.Comp {
		sp = p
	}
	if sp == nil {
		open := a.openByOp[ev.Comp]
		for len(open) > 0 && open[0].closed {
			open = open[1:]
		}
		a.openByOp[ev.Comp] = open
		if len(open) > 0 {
			sp = open[0]
			sp.Approx = true
			a.stats.FallbackDone++
		}
	}
	if sp == nil {
		a.stats.OrphanDone++
		return
	}
	where := a.cur
	if where == "" {
		where = "engine"
	}
	if intra {
		sp.Intra = true
		a.stats.Intra++
		sp.phase(PhaseIntra, where, ev.At)
	} else {
		sp.phase(PhaseDeliver, where, ev.At)
	}
	sp.Done = ev.At
	sp.Latency = ev.Arg
	sp.Complete = true
	sp.closed = true
	a.stats.Completed++
	if sp.Approx {
		a.stats.Approximate++
	}
	if sp.Done-sp.Submit != sp.Latency {
		a.stats.LatencyMismatches++
	}
}
