package span

import (
	"fmt"
	"sort"
	"strings"

	"mproxy/internal/trace/metrics"
)

// Group aggregates the phase breakdown of a set of spans sharing a key
// (an operation kind, or an operation+flow pair). Each phase carries a
// full histogram, so per-flow p50/p95/p99 come for free.
type Group struct {
	Key   string
	Count int
	// Total is the end-to-end latency distribution (Done-Submit).
	Total metrics.Hist
	// Phases[p] distributes each span's total time in phase p (summed
	// across hops). Spans that never enter a phase do not contribute a
	// zero sample; PhaseCounts tracks how many did.
	Phases      [NumPhases]metrics.Hist
	PhaseCounts [NumPhases]int
	Approx      int
	Bytes       int64 // payload size, if uniform across the group; else -1
}

// Breakdown holds per-operation and per-flow groups over a span set —
// the data behind the Table 2-shaped latency-decomposition tables.
type Breakdown struct {
	ByOp   map[string]*Group
	ByFlow map[string]*Group
}

// Aggregate builds a breakdown from the complete spans of the slice.
func Aggregate(spans []*Span) *Breakdown {
	b := &Breakdown{ByOp: make(map[string]*Group), ByFlow: make(map[string]*Group)}
	for _, s := range spans {
		if !s.Complete {
			continue
		}
		b.group(b.ByOp, s.Op).add(s)
		b.group(b.ByFlow, s.Op+" "+s.Flow()).add(s)
	}
	return b
}

func (b *Breakdown) group(m map[string]*Group, key string) *Group {
	g := m[key]
	if g == nil {
		g = &Group{Key: key}
		m[key] = g
	}
	return g
}

func (g *Group) add(s *Span) {
	if g.Count == 0 {
		g.Bytes = s.Bytes
	} else if g.Bytes != s.Bytes {
		g.Bytes = -1
	}
	g.Count++
	g.Total.Add(s.Done - s.Submit)
	if s.Approx {
		g.Approx++
	}
	for p := 0; p < NumPhases; p++ {
		if s.HasPhase(Phase(p)) {
			g.Phases[p].Add(s.PhaseTotal(Phase(p)))
			g.PhaseCounts[p]++
		}
	}
}

// PhaseMeanUs returns the mean time in phase p, in microseconds, over the
// spans that entered it (0 if none did).
func (g *Group) PhaseMeanUs(p Phase) float64 {
	return g.Phases[p].Mean() / 1e3
}

// MeanUs returns the mean end-to-end latency in microseconds.
func (g *Group) MeanUs() float64 { return g.Total.Mean() / 1e3 }

// PhaseSnapshot summarizes one phase of a group.
type PhaseSnapshot struct {
	Phase string `json:"phase"`
	Count int    `json:"count"`
	metrics.HistSnapshot
}

// GroupSnapshot is the JSON form of a Group.
type GroupSnapshot struct {
	Key    string               `json:"key"`
	Count  int                  `json:"count"`
	Bytes  int64                `json:"bytes"`
	Approx int                  `json:"approx,omitempty"`
	Total  metrics.HistSnapshot `json:"total"`
	Phases []PhaseSnapshot      `json:"phases"`
}

func (g *Group) snapshot() GroupSnapshot {
	gs := GroupSnapshot{
		Key: g.Key, Count: g.Count, Bytes: g.Bytes, Approx: g.Approx,
		Total: g.Total.Snapshot(),
	}
	for p := 0; p < NumPhases; p++ {
		if g.PhaseCounts[p] == 0 {
			continue
		}
		gs.Phases = append(gs.Phases, PhaseSnapshot{
			Phase:        Phase(p).String(),
			Count:        g.PhaseCounts[p],
			HistSnapshot: g.Phases[p].Snapshot(),
		})
	}
	return gs
}

// BreakdownSnapshot is the JSON form of a Breakdown, groups sorted by key
// for deterministic output.
type BreakdownSnapshot struct {
	ByOp   []GroupSnapshot `json:"by_op"`
	ByFlow []GroupSnapshot `json:"by_flow"`
}

// Snapshot renders the breakdown deterministically.
func (b *Breakdown) Snapshot() BreakdownSnapshot {
	return BreakdownSnapshot{ByOp: snapGroups(b.ByOp), ByFlow: snapGroups(b.ByFlow)}
}

func snapGroups(m map[string]*Group) []GroupSnapshot {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]GroupSnapshot, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k].snapshot())
	}
	return out
}

// Table renders the per-flow breakdown as a text table: one row per flow,
// one column per phase (mean microseconds), plus the end-to-end mean —
// the shape of the paper's Table 2, measured instead of modeled.
func (b *Breakdown) Table() string {
	keys := make([]string, 0, len(b.ByFlow))
	for k := range b.ByFlow {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Only print phases some flow actually entered.
	var used [NumPhases]bool
	for _, g := range b.ByFlow {
		for p := 0; p < NumPhases; p++ {
			if g.PhaseCounts[p] > 0 {
				used[p] = true
			}
		}
	}
	var bld strings.Builder
	bld.WriteString("phase-latency breakdown (mean us per message)\n")
	fmt.Fprintf(&bld, "%-34s %5s", "flow", "n")
	for p := 0; p < NumPhases; p++ {
		if used[p] {
			fmt.Fprintf(&bld, " %13s", Phase(p).String())
		}
	}
	fmt.Fprintf(&bld, " %13s\n", "total")
	for _, k := range keys {
		g := b.ByFlow[k]
		fmt.Fprintf(&bld, "%-34s %5d", k, g.Count)
		for p := 0; p < NumPhases; p++ {
			if !used[p] {
				continue
			}
			if g.PhaseCounts[p] == 0 {
				fmt.Fprintf(&bld, " %13s", "-")
			} else {
				fmt.Fprintf(&bld, " %13.3f", g.PhaseMeanUs(Phase(p)))
			}
		}
		fmt.Fprintf(&bld, " %13.3f", g.MeanUs())
		if g.Approx > 0 {
			fmt.Fprintf(&bld, "  [%d approx]", g.Approx)
		}
		bld.WriteByte('\n')
	}
	return bld.String()
}
