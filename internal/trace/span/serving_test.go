package span_test

import (
	"testing"

	"mproxy/internal/arch"
	"mproxy/internal/sim"
	"mproxy/internal/trace/span"
	"mproxy/internal/workload/openloop"
)

// TestServingMultiHopAttribution runs the serving stack over a 64-node
// fat-tree with the span assembler installed as the global tracer and
// requires clean attribution quality: requests routed hop by hop through
// topo.Net switches must neither orphan their completions nor degrade to
// fallback/approximate attribution. Before the multi-hop fix the
// assembler treated every switch-hop re-schedule as a fresh service
// launch, so the serving stream showed thousands of approximate spans.
func TestServingMultiHopAttribution(t *testing.T) {
	asm := span.NewAssembler()
	sim.SetGlobalTracer(asm)
	defer sim.SetGlobalTracer(nil)

	a, ok := arch.ByName("MP1")
	if !ok {
		t.Fatal("MP1 missing")
	}
	res, err := openloop.Run(openloop.Config{
		Arch: a, Nodes: 64, Clients: 1, Proxies: 1,
		Topo: "fat-tree", CommandQueueCap: 64,
		ValueBytes: 64, ScanCount: 4, Replication: 2,
		Keys: 512, Theta: 0.99,
		Requests: 400, Warmup: 50,
		LoadUs: []float64{80}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIssued == 0 {
		t.Fatal("no requests issued")
	}
	st := asm.Stats()
	if st.Spans == 0 || st.Completed == 0 {
		t.Fatalf("serving traffic opened no spans: %+v", st)
	}
	if st.OrphanDone != 0 {
		t.Errorf("%d orphan completions on multi-hop serving traffic", st.OrphanDone)
	}
	if st.FallbackDone != 0 {
		t.Errorf("%d fallback completions on multi-hop serving traffic", st.FallbackDone)
	}
	if st.Approximate != 0 {
		t.Errorf("%d approximate spans on multi-hop serving traffic (of %d)", st.Approximate, st.Spans)
	}
	if st.UnattributedItems != 0 {
		t.Errorf("%d unattributed work items on multi-hop serving traffic", st.UnattributedItems)
	}
	if st.FifoDesyncs != 0 {
		t.Errorf("%d FIFO desyncs on multi-hop serving traffic", st.FifoDesyncs)
	}
	if st.LatencyMismatches != 0 {
		t.Errorf("%d latency mismatches on multi-hop serving traffic", st.LatencyMismatches)
	}
}
