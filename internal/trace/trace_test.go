package trace

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if got := Kind(200).String(); !strings.HasPrefix(got, "Kind(") {
		t.Errorf("out-of-range kind stringified as %q", got)
	}
}

func TestScanArgRoundTrip(t *testing.T) {
	prop := func(probesRaw, checksRaw uint16, found bool) bool {
		probes, checks := int64(probesRaw), int64(checksRaw)
		p, c, f := ScanStats(ScanArg(probes, checks, found))
		return p == probes && c == checks && f == found
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDigestSensitivity checks the digest distinguishes streams that
// differ in any field, order, or length — the property that makes it a
// sound regression oracle.
func TestDigestSensitivity(t *testing.T) {
	base := []Event{
		{At: 10, Seq: 1, Kind: KSchedule, Arg: 5},
		{At: 10, Seq: 2, Kind: KFire, Comp: "x"},
	}
	sum := func(evs []Event) string {
		d := NewDigest()
		for _, ev := range evs {
			d.Record(ev)
		}
		return d.Sum()
	}
	ref := sum(base)
	if got := sum(base); got != ref {
		t.Fatal("identical streams digest differently")
	}
	variants := [][]Event{
		{base[1], base[0]}, // order
		{base[0]},          // length
		{{At: 11, Seq: 1, Kind: KSchedule, Arg: 5}, base[1]},            // At
		{{At: 10, Seq: 3, Kind: KSchedule, Arg: 5}, base[1]},            // Seq
		{{At: 10, Seq: 1, Kind: KFire, Arg: 5}, base[1]},                // Kind
		{{At: 10, Seq: 1, Kind: KSchedule, Arg: 6}, base[1]},            // Arg
		{base[0], {At: 10, Seq: 2, Kind: KFire, Comp: "y"}},             // Comp
		{base[0], {At: 10, Seq: 2, Kind: KFire, Comp: "x", Arg: 1}},     // extra field
		{base[0], base[1], {At: 10, Seq: 3, Kind: KFire, Comp: "tail"}}, // suffix
	}
	for i, v := range variants {
		if sum(v) == ref {
			t.Errorf("variant %d digests identically to the base stream", i)
		}
	}
	d := NewDigest()
	for _, ev := range base {
		d.Record(ev)
	}
	if d.Count() != 2 || d.LastAt() != 10 {
		t.Errorf("Count/LastAt = %d/%d, want 2/10", d.Count(), d.LastAt())
	}
}

func TestWriterFormatsAndSticksOnError(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Record(Event{At: 100, Seq: 7, Kind: KPoll, Comp: "node0.agent0", Arg: 42})
	if got := b.String(); got != "100ns #7 poll node0.agent0 42\n" {
		t.Errorf("line = %q", got)
	}
	fw := NewWriter(failWriter{})
	fw.Record(Event{})
	fw.Record(Event{})
	if fw.Err() == nil {
		t.Fatal("write error not surfaced")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("closed") }

// TestMultiNilHandling covers the fan-out edge cases. Note Multi filters
// nil interface values only; callers must not wrap nil concrete pointers
// in the Tracer interface (tracecli builds its tracer list accordingly).
func TestMultiNilHandling(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() != nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) != nil")
	}
	r := &Recorder{}
	if got := Multi(nil, r, nil); got != Tracer(r) {
		t.Error("single live tracer should be returned unwrapped")
	}
	r2 := &Recorder{}
	m := Multi(r, r2)
	m.Record(Event{Kind: KFire})
	if len(r.Events()) != 1 || len(r2.Events()) != 1 {
		t.Errorf("fan-out reached %d/%d tracers, want 1/1", len(r.Events()), len(r2.Events()))
	}
}

func TestRecorderReset(t *testing.T) {
	r := &Recorder{Limit: 1}
	r.Record(Event{})
	r.Record(Event{})
	if len(r.Events()) != 1 || r.Dropped() != 1 {
		t.Fatalf("events/dropped = %d/%d, want 1/1", len(r.Events()), r.Dropped())
	}
	r.Reset()
	if len(r.Events()) != 0 || r.Dropped() != 0 {
		t.Fatal("Reset did not clear state")
	}
}
