// Package tracecli wires the trace/metrics observability layer into the
// cmd/mproxy-* binaries. The experiment drivers construct their engines
// internally, so the binaries install a process-wide tracer via
// sim.SetGlobalTracer; every engine the driver builds then feeds the same
// collectors, and a single report summarizes the whole invocation.
package tracecli

import (
	"flag"
	"fmt"
	"os"

	"mproxy/internal/sim"
	"mproxy/internal/trace"
	"mproxy/internal/trace/metrics"
)

// Flags holds the observability command-line options.
type Flags struct {
	Trace   *bool
	Metrics *string
}

// AddFlags registers -trace and -metrics on the default flag set. Call
// before flag.Parse.
func AddFlags() *Flags {
	return &Flags{
		Trace: flag.Bool("trace", false,
			"trace all simulation events; print the stream digest and event count at exit"),
		Metrics: flag.String("metrics", "",
			`collect per-component counters/histograms and print them at exit: "text" or "json"`),
	}
}

// Install activates the requested collectors. It returns a report function
// to run once the experiment is done (a no-op when nothing was enabled)
// and any flag-usage error.
func (f *Flags) Install() (report func(), err error) {
	var digest *trace.Digest
	var coll *metrics.Collector
	var tracers []trace.Tracer
	if *f.Trace {
		digest = trace.NewDigest()
		tracers = append(tracers, digest)
	}
	switch *f.Metrics {
	case "":
	case "text", "json":
		coll = metrics.NewCollector()
		tracers = append(tracers, coll)
	default:
		return nil, fmt.Errorf("-metrics must be \"text\" or \"json\", got %q", *f.Metrics)
	}
	if t := trace.Multi(tracers...); t != nil {
		sim.SetGlobalTracer(t)
	}
	mode := *f.Metrics
	return func() {
		if coll != nil {
			switch mode {
			case "json":
				out, err := coll.JSON()
				if err != nil {
					fmt.Fprintln(os.Stderr, "metrics:", err)
					return
				}
				fmt.Println(out)
			default:
				fmt.Print(coll.Summary())
			}
		}
		if digest != nil {
			fmt.Printf("trace digest: sha256:%s over %d events (last at %v)\n",
				digest.Sum(), digest.Count(), sim.Time(digest.LastAt()))
		}
	}, nil
}
