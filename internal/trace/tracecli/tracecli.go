// Package tracecli wires the trace/metrics observability layer into the
// cmd/mproxy-* binaries. The experiment drivers construct their engines
// internally, so the binaries install a process-wide tracer via
// sim.SetGlobalTracer; every engine the driver builds then feeds the same
// collectors, and a single report summarizes the whole invocation.
package tracecli

import (
	"flag"
	"fmt"
	"os"

	"mproxy/internal/sim"
	"mproxy/internal/trace"
	"mproxy/internal/trace/metrics"
	"mproxy/internal/trace/span"
	"mproxy/internal/trace/timeline"
)

// Flags holds the observability command-line options.
type Flags struct {
	Trace     *bool
	Metrics   *string
	Prof      *string
	Chrome    *string
	Breakdown *bool
}

// AddFlags registers the observability flags on the default flag set.
// Call before flag.Parse.
func AddFlags() *Flags {
	return &Flags{
		Trace: flag.Bool("trace", false,
			"trace all simulation events; print the stream digest and event count at exit"),
		Metrics: flag.String("metrics", "",
			`collect per-component counters/histograms and print them at exit: "text" or "json"`),
		Prof: flag.String("prof", "",
			"assemble message-lifecycle spans and utilization timelines; write the profile JSON to this file"),
		Chrome: flag.String("chrome", "",
			"write the assembled spans and timelines as Chrome trace-event JSON to this file"),
		Breakdown: flag.Bool("breakdown", false,
			"assemble message-lifecycle spans and print the per-flow phase-latency breakdown at exit"),
	}
}

// profiling reports whether any span/timeline consumer is requested.
func (f *Flags) profiling() bool {
	return *f.Prof != "" || *f.Chrome != "" || *f.Breakdown
}

// Install activates the requested collectors. It returns a report function
// to run once the experiment is done (a no-op when nothing was enabled)
// and any flag-usage error.
func (f *Flags) Install() (report func(), err error) {
	var digest *trace.Digest
	var coll *metrics.Collector
	var asm *span.Assembler
	var smp *timeline.Sampler
	var tracers []trace.Tracer
	if *f.Trace {
		digest = trace.NewDigest()
		tracers = append(tracers, digest)
	}
	switch *f.Metrics {
	case "":
	case "text", "json":
		coll = metrics.NewCollector()
		tracers = append(tracers, coll)
	default:
		return nil, fmt.Errorf("-metrics must be \"text\" or \"json\", got %q", *f.Metrics)
	}
	if f.profiling() {
		asm = span.NewAssembler()
		smp = timeline.NewSampler(0)
		timeline.Attach(smp)
		tracers = append(tracers, asm, smp)
	}
	if t := trace.Multi(tracers...); t != nil {
		sim.SetGlobalTracer(t)
	}
	mode := *f.Metrics
	profOut, chromeOut, breakdown := *f.Prof, *f.Chrome, *f.Breakdown
	return func() {
		if coll != nil {
			switch mode {
			case "json":
				out, err := coll.JSON()
				if err != nil {
					fmt.Fprintln(os.Stderr, "metrics:", err)
					return
				}
				fmt.Println(out)
			default:
				fmt.Print(coll.Summary())
			}
		}
		if asm != nil {
			smp.Flush()
			if breakdown {
				fmt.Print(span.Aggregate(asm.Spans()).Table())
			}
			if profOut != "" {
				p := timeline.BuildProfile(asm, smp, "")
				if b, err := p.JSON(); err != nil {
					fmt.Fprintln(os.Stderr, "prof:", err)
				} else if err := os.WriteFile(profOut, b, 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "prof:", err)
				}
			}
			if chromeOut != "" {
				if b, err := timeline.ChromeTrace(asm.Spans(), smp.Windows()); err != nil {
					fmt.Fprintln(os.Stderr, "chrome:", err)
				} else if err := os.WriteFile(chromeOut, b, 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "chrome:", err)
				}
			}
		}
		if digest != nil {
			fmt.Printf("trace digest: sha256:%s over %d events (last at %v)\n",
				digest.Sum(), digest.Count(), sim.Time(digest.LastAt()))
		}
	}, nil
}
