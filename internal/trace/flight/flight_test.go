package flight

import (
	"strings"
	"testing"
)

// clock is a hand-cranked engine clock for driving the recorder.
type clock struct{ ns int64 }

func (c *clock) now() int64 { return c.ns }

func opName(o uint8) string { return [...]string{"GET", "PUT", "SCAN"}[o] }

// TestSegmentsTile drives one replicated PUT through every hook and
// checks the segments tile the measured latency exactly.
func TestSegmentsTile(t *testing.T) {
	c := &clock{ns: 1000}
	r := New(Config{Shards: 4}, c.now)
	id := r.Issue(1, 5, 0, 2, 4, 3, 0xfeed, 800, 120, 40)
	if id == 0 {
		t.Fatal("issue returned 0")
	}
	c.ns = 1500
	r.ServerStart(id, 2)
	c.ns = 1700
	r.ServiceDone(id)
	c.ns = 2600
	r.RepAcked(id)
	c.ns = 3000
	r.Done(id)

	d := r.Finish()
	if len(d.Slowest) != 1 {
		t.Fatalf("slowest has %d records", len(d.Slowest))
	}
	rec := d.Slowest[0]
	want := [NumSegs]int64{200, 500, 200, 900, 400}
	if rec.Seg != want {
		t.Fatalf("segments %v, want %v", rec.Seg, want)
	}
	var sum int64
	for _, s := range rec.Seg {
		sum += s
	}
	if sum != rec.Latency() || rec.Latency() != 3000-800 {
		t.Fatalf("segments sum %d, latency %d", sum, rec.Latency())
	}
	if rec.CmdQDepth != 3 || rec.SrvQDepth != 2 || rec.Hops != 4 {
		t.Fatalf("depth/hops wrong: %+v", rec)
	}
	if d.Clamped != 0 || d.Dropped != 0 || d.Late != 0 {
		t.Fatalf("quality counters moved: %+v", d)
	}
}

// TestTopKDeterministic checks the reservoir keeps exactly the K slowest
// records, breaking latency ties toward the earliest request, however
// the completions interleave.
func TestTopKDeterministic(t *testing.T) {
	c := &clock{}
	r := New(Config{TopK: 3, Shards: 1}, c.now)
	// Latencies: 10, 50, 30, 50, 20, 40 — top-3 = 50(id2), 50(id4), 40(id6).
	lats := []int64{10, 50, 30, 50, 20, 40}
	for _, l := range lats {
		c.ns += 100
		issueAt := c.ns
		id := r.Issue(0, 1, 0, 0, 1, 0, 7, issueAt, 0, 0)
		c.ns = issueAt + l
		r.Done(id)
	}
	d := r.Finish()
	var got []int64
	var ids []uint64
	for _, rec := range d.Slowest {
		got = append(got, rec.Latency())
		ids = append(ids, rec.ID)
	}
	if len(got) != 3 || got[0] != 50 || got[1] != 50 || got[2] != 40 {
		t.Fatalf("latencies %v", got)
	}
	if ids[0] != 2 || ids[1] != 4 || ids[2] != 6 {
		t.Fatalf("ids %v (ties must keep the earlier request first)", ids)
	}
}

// TestRingWraps checks the ring keeps the most recent RingCap records.
func TestRingWraps(t *testing.T) {
	c := &clock{}
	r := New(Config{RingCap: 4, Shards: 1}, c.now)
	for i := 0; i < 10; i++ {
		c.ns += 10
		id := r.Issue(0, 0, 0, 0, 0, 0, 0, c.ns, 0, 0)
		c.ns += 5
		r.Done(id)
	}
	ring, total := r.Ring()
	if total != 10 || len(ring) != 4 {
		t.Fatalf("ring %d records, total %d", len(ring), total)
	}
	for i, rec := range ring {
		if rec.ID != uint64(7+i) {
			t.Fatalf("ring[%d] = id %d, want %d", i, rec.ID, 7+i)
		}
	}
}

// TestSaturationDrops checks the recorder sheds load instead of growing
// when MaxOpen in-flight records are exceeded.
func TestSaturationDrops(t *testing.T) {
	c := &clock{}
	r := New(Config{MaxOpen: 2, Shards: 1}, c.now)
	a := r.Issue(0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	b := r.Issue(0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	if a == 0 || b == 0 {
		t.Fatal("first two issues must be tracked")
	}
	if id := r.Issue(0, 0, 0, 0, 0, 0, 0, 0, 0, 0); id != 0 {
		t.Fatalf("third issue tracked (id %d), want dropped", id)
	}
	r.ServerStart(0, 1) // untracked id: must be a no-op
	r.Done(a)
	if id := r.Issue(0, 0, 0, 0, 0, 0, 0, 0, 0, 0); id == 0 {
		t.Fatal("slot not recycled after Done")
	}
	d := r.Finish()
	if d.Dropped != 1 {
		t.Fatalf("dropped %d, want 1", d.Dropped)
	}
}

// TestWindowFold checks the series stays within the window budget by
// doubling, and that folding conserves the traffic counts.
func TestWindowFold(t *testing.T) {
	c := &clock{}
	r := New(Config{WindowNs: 100, MaxWindows: 4, Shards: 2}, c.now)
	const n = 400
	for i := 0; i < n; i++ {
		c.ns = int64(i) * 25 // four arrivals per initial window
		id := r.Issue(0, 0, 0, int32(i%2), 0, int32(i%3), 0, c.ns, 0, 0)
		r.Done(id)
	}
	d := r.Finish()
	if len(d.Windows) > 4 {
		t.Fatalf("%d windows, budget 4", len(d.Windows))
	}
	if d.WindowNs <= 100 {
		t.Fatalf("window did not fold: %d ns", d.WindowNs)
	}
	var arr, done int32
	for i := range d.Windows {
		for _, row := range d.Windows[i].ShardRows() {
			arr += row.Arrivals
			done += row.Dones
		}
	}
	if arr != n || done != n {
		t.Fatalf("fold lost traffic: %d arrivals, %d dones, want %d", arr, done, n)
	}
	for i := range d.Windows {
		w := &d.Windows[i]
		if w.EndNs-w.StartNs != d.WindowNs {
			t.Fatalf("window %d is [%d,%d), want length %d", i, w.StartNs, w.EndNs, d.WindowNs)
		}
		if i > 0 && w.StartNs < d.Windows[i-1].EndNs {
			t.Fatalf("windows overlap at %d", i)
		}
	}
}

// TestTierSeries checks per-tier busy deltas land in the right windows.
func TestTierSeries(t *testing.T) {
	c := &clock{}
	busy := []int64{0, 0}
	r := New(Config{WindowNs: 100, Shards: 1}, c.now)
	r.SetTiers([]TierInfo{{Name: "edge", Links: 2}, {Name: "core", Links: 4}},
		func(buf []int64) []int64 { return append(buf[:0], busy...) })
	id := r.Issue(0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	r.Done(id)
	busy[0], busy[1] = 40, 10
	c.ns = 150 // crosses the first boundary
	id = r.Issue(0, 0, 0, 0, 0, 0, 0, 140, 0, 0)
	r.Done(id)
	busy[0], busy[1] = 100, 30
	d := r.Finish()
	if len(d.Windows) != 2 {
		t.Fatalf("%d windows, want 2", len(d.Windows))
	}
	if tb := d.Windows[0].TierBusy(); tb[0] != 40 || tb[1] != 10 {
		t.Fatalf("window 0 tier busy %v", tb)
	}
	if tb := d.Windows[1].TierBusy(); tb[0] != 60 || tb[1] != 20 {
		t.Fatalf("window 1 tier busy %v", tb)
	}
}

// TestSteadyStateAllocs pins the per-request recording path at zero
// allocations once the recorder is warm (ring full, reservoir full, no
// window crossings): always-on must mean bounded, not growing.
func TestSteadyStateAllocs(t *testing.T) {
	c := &clock{}
	r := New(Config{RingCap: 8, TopK: 2, MaxOpen: 8, WindowNs: 1 << 60, Shards: 4}, c.now)
	cycle := func() {
		c.ns += 7
		id := r.Issue(1, 3, 0, 1, 2, 1, 0xabc, c.ns, 10, 10)
		c.ns += 3
		r.ServerStart(id, 1)
		c.ns += 2
		r.ServiceDone(id)
		c.ns += 4
		r.RepAcked(id)
		c.ns += 1
		r.Done(id)
	}
	for i := 0; i < 64; i++ {
		cycle() // warm: fill ring, reservoir, map buckets
	}
	if got := testing.AllocsPerRun(200, cycle); got != 0 {
		t.Fatalf("steady-state recording allocates %.1f/op, want 0", got)
	}
}

// TestReportDeterminism checks the renderers are pure functions of the
// record stream: two identical runs produce byte-identical output.
func TestReportDeterminism(t *testing.T) {
	run := func() (string, string) {
		c := &clock{}
		r := New(Config{TopK: 4, WindowNs: 1000, Shards: 3}, c.now)
		r.SetTiers([]TierInfo{{Name: "edge", Links: 2}},
			func(buf []int64) []int64 { return append(buf[:0], c.ns/2) })
		for i := 0; i < 50; i++ {
			c.ns += 31
			id := r.Issue(uint8(i%3), int32(i%5), 0, int32(i%3), 2, int32(i%4), uint64(i), c.ns, 5, 5)
			c.ns += int64(13 * (i % 7))
			r.ServerStart(id, i%2)
			c.ns += 11
			r.ServiceDone(id)
			c.ns += 2
			r.Done(id)
		}
		d := r.Finish()
		pts := []NamedPoint{{Arch: "MP1", LoadUs: 160, Data: d}}
		var sb strings.Builder
		WriteSlowest(&sb, pts, opName)
		j, err := ReportJSON(pts, opName)
		if err != nil {
			t.Fatal(err)
		}
		return sb.String(), string(j)
	}
	t1, j1 := run()
	t2, j2 := run()
	if t1 != t2 {
		t.Fatal("slowest table not deterministic")
	}
	if j1 != j2 {
		t.Fatal("report JSON not deterministic")
	}
	if !strings.Contains(t1, "replica-wait") && !strings.Contains(t1, "rep_wait") {
		t.Fatalf("table missing segment columns:\n%s", t1)
	}
	if !strings.Contains(j1, `"schema": "mproxy-forensics/v1"`) {
		t.Fatal("JSON missing schema")
	}
}
