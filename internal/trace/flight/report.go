package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// NamedPoint labels one load point's harvested data for the report
// renderers: the design point and the ladder position it came from.
type NamedPoint struct {
	Arch   string
	LoadUs float64
	Data   PointData
}

func usf(ns int64) float64 { return float64(ns) / 1e3 }

// round6 trims derived ratios to a stable, readable precision.
func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }

// WriteSlowest renders the byte-deterministic slowest-requests table:
// per load point, the reservoir's records slowest-first with their full
// hop/phase/shard attribution. opName maps Record.Op to its wire name.
func WriteSlowest(w io.Writer, points []NamedPoint, opName func(uint8) string) {
	fmt.Fprintf(w, "flight recorder: slowest requests\n")
	fmt.Fprintf(w, "segments tile scheduled->done exactly; wire_us is the modeled minimum\n")
	fmt.Fprintf(w, "transit over the route, the rest of req/reply flight is queueing\n")
	for _, p := range points {
		d := &p.Data
		fmt.Fprintf(w, "\n== %s @ %g us/client: tracked %d dropped %d late %d clamped %d\n",
			p.Arch, p.LoadUs, d.Tracked, d.Dropped, d.Late, d.Clamped)
		fmt.Fprintf(w, " %2s %-4s %9s %6s %6s %5s %4s %4s %4s %9s %9s %9s %9s %9s %8s\n",
			"#", "op", "lat_us", "clnt", "srv", "shard", "hops", "cmdq", "srvq",
			"backlog", "req_fl", "service", "rep_wait", "reply_fl", "wire_us")
		for i := range d.Slowest {
			r := &d.Slowest[i]
			fmt.Fprintf(w, " %2d %-4s %9.1f %6d %6d %5d %4d %4d %4d %9.1f %9.1f %9.1f %9.1f %9.1f %8.1f\n",
				i+1, opName(r.Op), usf(r.Latency()), r.Client, r.Server, r.Shard,
				r.Hops, r.CmdQDepth, r.SrvQDepth,
				usf(r.Seg[SegSched]), usf(r.Seg[SegReq]), usf(r.Seg[SegService]),
				usf(r.Seg[SegRepWait]), usf(r.Seg[SegReply]),
				usf(r.WireReqNs+r.WireRepNs))
			route := ""
			if i < len(d.Routes) && len(d.Routes[i]) > 0 {
				route = "  route " + strings.Join(d.Routes[i], ">")
			}
			fmt.Fprintf(w, "    key %016x  issued %.1f us%s\n", r.Key, usf(r.ScheduledNs), route)
		}
	}
}

// jsonSeg is one segment of a slow request in the report JSON.
type jsonSeg struct {
	Name string  `json:"name"`
	Us   float64 `json:"us"`
}

type jsonSlow struct {
	ID        uint64    `json:"id"`
	Op        string    `json:"op"`
	Client    int32     `json:"client"`
	Server    int32     `json:"server"`
	Shard     int32     `json:"shard"`
	Key       string    `json:"key"`
	Hops      int32     `json:"hops"`
	CmdQDepth int32     `json:"cmdq_depth"`
	SrvQDepth int32     `json:"srvq_depth"`
	IssuedUs  float64   `json:"issued_us"`
	LatencyUs float64   `json:"latency_us"`
	WireUs    float64   `json:"wire_us"`
	Segments  []jsonSeg `json:"segments"`
	Route     []string  `json:"route,omitempty"`
}

type jsonShard struct {
	Shard     int32   `json:"shard"`
	Arrivals  int32   `json:"arrivals"`
	Dones     int32   `json:"dones"`
	RPS       float64 `json:"rps"`
	DepthMean float64 `json:"depth_mean"`
	DepthMax  int32   `json:"depth_max"`
	LatMeanUs float64 `json:"lat_mean_us"`
}

type jsonTier struct {
	Name string  `json:"name"`
	Util float64 `json:"util"`
}

type jsonWindow struct {
	StartUs float64     `json:"start_us"`
	EndUs   float64     `json:"end_us"`
	Shards  []jsonShard `json:"shards,omitempty"`
	Tiers   []jsonTier  `json:"tiers,omitempty"`
	Proxies []jsonTier  `json:"proxies,omitempty"`
}

type jsonPoint struct {
	Arch     string       `json:"arch"`
	LoadUs   float64      `json:"load_us"`
	Tracked  uint64       `json:"tracked"`
	Dropped  uint64       `json:"dropped"`
	WindowUs float64      `json:"window_us"`
	Tiers    []TierInfo   `json:"tiers,omitempty"`
	Proxies  []TierInfo   `json:"proxies,omitempty"`
	Series   []jsonWindow `json:"series"`
	Slowest  []jsonSlow   `json:"slowest"`
}

type jsonReport struct {
	Schema string      `json:"schema"`
	Points []jsonPoint `json:"points"`
}

// ReportJSON renders the per-shard and per-tier windowed time series
// plus the slowest-request records as deterministic JSON.
func ReportJSON(points []NamedPoint, opName func(uint8) string) ([]byte, error) {
	rep := jsonReport{Schema: "mproxy-forensics/v1"}
	for _, p := range points {
		d := &p.Data
		jp := jsonPoint{
			Arch: p.Arch, LoadUs: p.LoadUs,
			Tracked: d.Tracked, Dropped: d.Dropped,
			WindowUs: usf(d.WindowNs), Tiers: d.Tiers, Proxies: d.Proxies,
		}
		for wi := range d.Windows {
			win := &d.Windows[wi]
			jw := jsonWindow{StartUs: usf(win.StartNs), EndUs: usf(win.EndNs)}
			winNs := win.EndNs - win.StartNs
			for _, row := range win.ShardRows() {
				js := jsonShard{
					Shard: row.Shard, Arrivals: row.Arrivals, Dones: row.Dones,
					DepthMax: row.DepthMax,
				}
				if winNs > 0 {
					js.RPS = round6(float64(row.Dones) * 1e9 / float64(winNs))
				}
				if row.Arrivals > 0 {
					js.DepthMean = round6(float64(row.DepthSum) / float64(row.Arrivals))
				}
				if row.Dones > 0 {
					js.LatMeanUs = round6(usf(row.LatSumNs) / float64(row.Dones))
				}
				jw.Shards = append(jw.Shards, js)
			}
			for ti, busy := range win.TierBusy() {
				links := d.Tiers[ti].Links
				if links == 0 || winNs <= 0 {
					continue
				}
				jw.Tiers = append(jw.Tiers, jsonTier{
					Name: d.Tiers[ti].Name,
					Util: round6(float64(busy) / float64(winNs) / float64(links)),
				})
			}
			for pi, busy := range win.ProxyBusy() {
				nodes := d.Proxies[pi].Links
				if nodes == 0 || winNs <= 0 {
					continue
				}
				jw.Proxies = append(jw.Proxies, jsonTier{
					Name: d.Proxies[pi].Name,
					Util: round6(float64(busy) / float64(winNs) / float64(nodes)),
				})
			}
			if len(jw.Shards) == 0 && len(jw.Tiers) == 0 && len(jw.Proxies) == 0 {
				continue
			}
			jp.Series = append(jp.Series, jw)
		}
		for i := range d.Slowest {
			r := &d.Slowest[i]
			js := jsonSlow{
				ID: r.ID, Op: opName(r.Op), Client: r.Client, Server: r.Server,
				Shard: r.Shard, Key: fmt.Sprintf("%016x", r.Key), Hops: r.Hops,
				CmdQDepth: r.CmdQDepth, SrvQDepth: r.SrvQDepth,
				IssuedUs:  usf(r.ScheduledNs),
				LatencyUs: usf(r.Latency()),
				WireUs:    usf(r.WireReqNs + r.WireRepNs),
			}
			for s := Seg(0); s < NumSegs; s++ {
				js.Segments = append(js.Segments, jsonSeg{Name: s.String(), Us: usf(r.Seg[s])})
			}
			if i < len(d.Routes) {
				js.Route = d.Routes[i]
			}
			jp.Slowest = append(jp.Slowest, js)
		}
		rep.Points = append(rep.Points, jp)
	}
	b, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
