// Package flight is an always-on, bounded-overhead flight recorder for
// the serving stack: it stitches per-request end-to-end records — phase
// segments that tile the measured latency exactly, topology hop counts
// with modeled minimum wire time, the KV chain-replication breakdown
// (primary service vs follower-ack wait), and queue depth sampled at
// enqueue — into a fixed-size ring plus a deterministic top-K-slowest
// reservoir, so the p999 stragglers always survive however long the run.
// A windowed per-shard / per-tier time series (arrivals, completions,
// queue depth, link utilization) accumulates alongside; when a run
// outgrows the window budget the recorder doubles the window and folds,
// HDR-style, so memory stays bounded without losing coverage.
//
// The recorder is driven by direct nil-guarded calls from the KV service
// and the open-loop workload, not by the trace stream: request identity
// travels in the high bits of the AM flags word the protocol already
// echoes, and because an active message's simulated cost depends on its
// argument count, never on argument values, recorder-on runs replay the
// exact recorder-off event schedule.
package flight

import "sort"

// FlagsWithID embeds a record ID in the high bits of an AM flags word;
// bit 0 (the workload's measured bit) is untouched. Because an active
// message's simulated cost depends on its argument count, not values,
// carrying the ID is invisible to the event schedule.
func FlagsWithID(flags int64, id uint64) int64 { return flags | int64(id<<1) }

// FlagsID recovers the record ID from a flags word; 0 means untracked.
func FlagsID(flags int64) uint64 { return uint64(flags) >> 1 }

// Seg indexes one latency segment of a request record. The segments are
// chained marks on the engine clock, clamped non-negative, so they tile
// DoneNs-ScheduledNs exactly.
type Seg uint8

const (
	// SegSched is scheduled arrival to actual issue: the open-loop
	// client running behind its own arrival clock.
	SegSched Seg = iota
	// SegReq is issue to server handler start: command-queue wait,
	// request wire time, and server AM-queue wait.
	SegReq
	// SegService is the primary's handler: store access plus the reply
	// or replica-write submissions (including command-queue backpressure).
	SegService
	// SegRepWait is replica writes submitted to last follower ack —
	// zero for reads and unreplicated writes.
	SegRepWait
	// SegReply is reply submitted to reply delivered at the client.
	SegReply
	NumSegs = 5
)

// String names the segment for reports.
func (s Seg) String() string {
	switch s {
	case SegSched:
		return "client-backlog"
	case SegReq:
		return "req-flight"
	case SegService:
		return "primary-service"
	case SegRepWait:
		return "replica-wait"
	case SegReply:
		return "reply-flight"
	}
	return "?"
}

// Record is one request's complete flight record. It is a fixed-size
// value type: the ring, the reservoir and the in-flight slab hold them
// by value, so steady-state recording never allocates.
type Record struct {
	ID     uint64 `json:"id"`
	Op     uint8  `json:"op"`
	Client int32  `json:"client"`
	Server int32  `json:"server"`
	Shard  int32  `json:"shard"`
	Key    uint64 `json:"key"`
	// Hops is the link count of the request's route (0 = same node,
	// bypassing the network entirely).
	Hops int32 `json:"hops"`
	// CmdQDepth is the client's proxy command-queue depth at issue;
	// SrvQDepth the server's AM queue depth at handler start.
	CmdQDepth int32 `json:"cmdq_depth"`
	SrvQDepth int32 `json:"srvq_depth"`

	ScheduledNs int64 `json:"scheduled_ns"`
	IssueNs     int64 `json:"issue_ns"`
	DoneNs      int64 `json:"done_ns"`
	// WireReqNs/WireRepNs are the modeled minimum wire times for the
	// request and reply over the route (hops x (transfer + latency));
	// the rest of SegReq/SegReply is queueing and service.
	WireReqNs int64 `json:"wire_req_ns"`
	WireRepNs int64 `json:"wire_rep_ns"`

	Seg [NumSegs]int64 `json:"segments_ns"`

	mark int64 // last segment boundary on the engine clock
}

// Latency returns the end-to-end latency the segments tile.
func (r *Record) Latency() int64 { return r.DoneNs - r.ScheduledNs }

// TierInfo describes one interconnect tier for the windowed series.
type TierInfo struct {
	Name  string `json:"name"`
	Links int    `json:"links"`
}

// shardCell accumulates one shard's traffic inside one window.
type shardCell struct {
	arrivals int32
	dones    int32
	depthSum int64 // sum of CmdQDepth over arrivals
	depthMax int32
	latSum   int64 // sum of latency over completions
}

// Window is one closed time-series window: per-shard traffic cells and
// per-tier busy-time deltas.
type Window struct {
	StartNs int64
	EndNs   int64
	cells   []shardCell
	tier    []int64 // busy-ns delta per tier, aligned with the tier meta
	proxy   []int64 // busy-ns delta per proxy slot, aligned with the proxy meta
}

// ShardRow is one shard's exported view of a window.
type ShardRow struct {
	Shard    int32 `json:"shard"`
	Arrivals int32 `json:"arrivals"`
	Dones    int32 `json:"dones"`
	DepthSum int64 `json:"depth_sum"`
	DepthMax int32 `json:"depth_max"`
	LatSumNs int64 `json:"lat_sum_ns"`
}

// Config bounds the recorder. Zero values pick the defaults.
type Config struct {
	RingCap    int   // completed-record ring size (default 4096)
	TopK       int   // slowest records always retained (default 32)
	MaxOpen    int   // in-flight records tracked at once (default 65536)
	WindowNs   int64 // initial time-series window (default 10ms)
	MaxWindows int   // fold threshold: windows double past this (default 64)
	Shards     int   // shard count for the per-shard series
}

func (c *Config) fill() {
	if c.RingCap <= 0 {
		c.RingCap = 4096
	}
	if c.TopK <= 0 {
		c.TopK = 32
	}
	if c.MaxOpen <= 0 {
		c.MaxOpen = 65536
	}
	if c.WindowNs <= 0 {
		c.WindowNs = 10_000_000
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 64
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
}

// Recorder collects flight records for one engine run. All methods are
// nil-safe on the zero ID (untracked requests) and cheap enough for the
// per-request hot path: a map probe, a slab write, and window-cell
// arithmetic.
type Recorder struct {
	cfg Config
	now func() int64

	nextID uint64
	open   map[uint64]int32 // id -> slab index
	slab   []Record
	free   []int32

	ring     []Record
	ringN    uint64 // total completed records ever written
	topk     []Record
	tracked  uint64
	dropped  uint64 // issues not tracked: slab full
	late     uint64 // events for ids no longer tracked
	clamped  uint64 // segment marks that ran backwards (never, by design)
	windowNs int64
	windows  []Window
	cur      *Window
	curIdx   int64 // current window's index on the absolute-time grid

	tiers    []TierInfo
	tierNow  func(buf []int64) []int64 // cumulative busy-ns per tier
	tierPrev []int64
	tierBuf  []int64

	// The per-proxy-slot series mirrors the tier series: cumulative
	// busy-ns per proxy slot (summed across nodes), diffed at window
	// closes. Installed only for multi-proxy runs.
	proxies   []TierInfo
	proxyNow  func(buf []int64) []int64
	proxyPrev []int64
	proxyBuf  []int64
}

// New builds a recorder over the engine clock now.
func New(cfg Config, now func() int64) *Recorder {
	cfg.fill()
	r := &Recorder{cfg: cfg, now: now, windowNs: cfg.WindowNs}
	r.open = make(map[uint64]int32, cfg.MaxOpen)
	r.slab = make([]Record, cfg.MaxOpen)
	r.free = make([]int32, cfg.MaxOpen)
	for i := range r.free {
		r.free[i] = int32(cfg.MaxOpen - 1 - i)
	}
	r.ring = make([]Record, 0, cfg.RingCap)
	r.topk = make([]Record, 0, cfg.TopK)
	return r
}

// SetTiers installs the per-tier busy probe for the windowed series:
// probe fills buf with cumulative busy nanoseconds per tier (aligned
// with meta) and returns it; the recorder diffs snapshots at window
// closes.
func (r *Recorder) SetTiers(meta []TierInfo, probe func(buf []int64) []int64) {
	r.tiers = meta
	r.tierNow = probe
	r.tierBuf = make([]int64, len(meta))
	r.tierPrev = append([]int64(nil), probe(make([]int64, len(meta)))...)
}

// SetProxies installs the per-proxy-slot busy probe for the windowed
// series, with the same snapshot-and-diff contract as SetTiers: probe
// fills buf with cumulative busy nanoseconds per proxy slot (aligned
// with meta; Links carries the node count the slot is summed over).
func (r *Recorder) SetProxies(meta []TierInfo, probe func(buf []int64) []int64) {
	r.proxies = meta
	r.proxyNow = probe
	r.proxyBuf = make([]int64, len(meta))
	r.proxyPrev = append([]int64(nil), probe(make([]int64, len(meta)))...)
}

// Issue opens a record for a measured request and returns its non-zero
// ID (0 means the recorder is saturated and the request flies
// untracked). scheduledNs is the open-loop arrival the latency is
// measured from; wire times are the route's modeled minimums.
func (r *Recorder) Issue(op uint8, client, server, shard, hops, cmdqDepth int32, key uint64, scheduledNs, wireReqNs, wireRepNs int64) uint64 {
	now := r.now()
	r.roll(now)
	if shard >= 0 && int(shard) < r.cfg.Shards {
		c := &r.cur.cells[shard]
		c.arrivals++
		c.depthSum += int64(cmdqDepth)
		if cmdqDepth > c.depthMax {
			c.depthMax = cmdqDepth
		}
	}
	if len(r.free) == 0 {
		r.dropped++
		return 0
	}
	r.nextID++
	id := r.nextID
	si := r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	r.open[id] = si
	rec := &r.slab[si]
	*rec = Record{
		ID: id, Op: op, Client: client, Server: server, Shard: shard,
		Key: key, Hops: hops, CmdQDepth: cmdqDepth, SrvQDepth: -1,
		ScheduledNs: scheduledNs, IssueNs: now,
		WireReqNs: wireReqNs, WireRepNs: wireRepNs,
		mark: scheduledNs,
	}
	rec.Seg[SegSched] = r.seg(rec, now)
	r.tracked++
	return id
}

// seg closes a segment at now against the record's running mark.
func (r *Recorder) seg(rec *Record, now int64) int64 {
	d := now - rec.mark
	if d < 0 {
		d = 0
		r.clamped++
	}
	rec.mark += d
	return d
}

// lookup resolves an in-flight record, counting unknown ids as late.
func (r *Recorder) lookup(id uint64) *Record {
	if id == 0 {
		return nil
	}
	si, ok := r.open[id]
	if !ok {
		r.late++
		return nil
	}
	return &r.slab[si]
}

// ServerStart marks the request's arrival in its primary's handler,
// sampling the server's AM queue depth behind it.
func (r *Recorder) ServerStart(id uint64, srvQDepth int) {
	rec := r.lookup(id)
	if rec == nil {
		return
	}
	rec.SrvQDepth = int32(srvQDepth)
	rec.Seg[SegReq] = r.seg(rec, r.now())
}

// ServiceDone marks the primary's handler complete: the reply (or the
// last replica write) has been submitted.
func (r *Recorder) ServiceDone(id uint64) {
	rec := r.lookup(id)
	if rec == nil {
		return
	}
	rec.Seg[SegService] = r.seg(rec, r.now())
}

// RepAcked marks the last follower ack's arrival at the primary.
func (r *Recorder) RepAcked(id uint64) {
	rec := r.lookup(id)
	if rec == nil {
		return
	}
	rec.Seg[SegRepWait] = r.seg(rec, r.now())
}

// Done closes the record at reply delivery and retains it in the ring
// and, if slow enough, the top-K reservoir.
func (r *Recorder) Done(id uint64) {
	si, ok := r.open[id]
	if !ok {
		if id != 0 {
			r.late++
		}
		return
	}
	rec := &r.slab[si]
	now := r.now()
	r.roll(now)
	rec.Seg[SegReply] = r.seg(rec, now)
	rec.DoneNs = now
	if s := rec.Shard; s >= 0 && int(s) < r.cfg.Shards {
		c := &r.cur.cells[s]
		c.dones++
		c.latSum += rec.Latency()
	}
	r.retain(*rec)
	delete(r.open, id)
	r.free = append(r.free, si)
}

// retain writes the completed record to the ring and offers it to the
// top-K min-heap. Heap order is (latency, then younger ID) so ties keep
// the earliest requests — a pure function of the record stream.
func (r *Recorder) retain(rec Record) {
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.ringN%uint64(cap(r.ring))] = rec
	}
	r.ringN++
	k := r.cfg.TopK
	if len(r.topk) < k {
		r.topk = append(r.topk, rec)
		r.siftUp(len(r.topk) - 1)
		return
	}
	if heapLess(r.topk[0], rec) {
		r.topk[0] = rec
		r.siftDown(0)
	}
}

// heapLess orders the reservoir min-heap: a is evicted before b when it
// is faster, or equally slow but issued later.
func heapLess(a, b Record) bool {
	al, bl := a.Latency(), b.Latency()
	if al != bl {
		return al < bl
	}
	return a.ID > b.ID
}

func (r *Recorder) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(r.topk[i], r.topk[p]) {
			return
		}
		r.topk[i], r.topk[p] = r.topk[p], r.topk[i]
		i = p
	}
}

func (r *Recorder) siftDown(i int) {
	n := len(r.topk)
	for {
		l, s := 2*i+1, i
		if l < n && heapLess(r.topk[l], r.topk[s]) {
			s = l
		}
		if rt := l + 1; rt < n && heapLess(r.topk[rt], r.topk[s]) {
			s = rt
		}
		if s == i {
			return
		}
		r.topk[i], r.topk[s] = r.topk[s], r.topk[i]
		i = s
	}
}

// roll advances the window clock to now, closing any windows the clock
// has crossed and folding when the budget is exceeded.
func (r *Recorder) roll(now int64) {
	idx := now / r.windowNs
	if r.cur == nil {
		r.openWindow(idx)
		return
	}
	for idx > r.curIdx {
		r.closeWindow()
		if len(r.windows) >= r.cfg.MaxWindows {
			r.fold()
			idx = now / r.windowNs
		}
		r.openWindow(r.curIdx + 1)
	}
}

func (r *Recorder) openWindow(idx int64) {
	r.windows = append(r.windows, Window{
		StartNs: idx * r.windowNs,
		EndNs:   (idx + 1) * r.windowNs,
		cells:   make([]shardCell, r.cfg.Shards),
		tier:    make([]int64, len(r.tiers)),
		proxy:   make([]int64, len(r.proxies)),
	})
	r.cur = &r.windows[len(r.windows)-1]
	r.curIdx = idx
}

// closeWindow snapshots the tier busy counters into the current window.
func (r *Recorder) closeWindow() {
	if r.tierNow != nil {
		busy := r.tierNow(r.tierBuf)
		for i := range busy {
			r.cur.tier[i] = busy[i] - r.tierPrev[i]
			r.tierPrev[i] = busy[i]
		}
	}
	if r.proxyNow != nil {
		busy := r.proxyNow(r.proxyBuf)
		for i := range busy {
			r.cur.proxy[i] = busy[i] - r.proxyPrev[i]
			r.proxyPrev[i] = busy[i]
		}
	}
}

// fold doubles the window length and merges windows landing on the same
// doubled grid slot, keeping the series bounded however long the run
// (HDR-style). Grid alignment, not slice position, decides the pairing.
func (r *Recorder) fold() {
	r.windowNs *= 2
	out := r.windows[:0]
	for i := range r.windows {
		w := r.windows[i]
		start := (w.StartNs / r.windowNs) * r.windowNs
		if n := len(out); n > 0 && out[n-1].StartNs == start {
			p := &out[n-1]
			for s := range w.cells {
				c, oc := &p.cells[s], &w.cells[s]
				c.arrivals += oc.arrivals
				c.dones += oc.dones
				c.depthSum += oc.depthSum
				c.latSum += oc.latSum
				if oc.depthMax > c.depthMax {
					c.depthMax = oc.depthMax
				}
			}
			for t := range w.tier {
				p.tier[t] += w.tier[t]
			}
			for t := range w.proxy {
				p.proxy[t] += w.proxy[t]
			}
			continue
		}
		w.StartNs, w.EndNs = start, start+r.windowNs
		out = append(out, w)
	}
	r.windows = out
	r.cur = &r.windows[len(r.windows)-1]
	r.curIdx = r.cur.StartNs / r.windowNs
}

// PointData is the harvested outcome of one load point: the reservoir,
// the windowed series, and the recorder's quality counters.
type PointData struct {
	Tracked uint64 `json:"tracked"`
	Dropped uint64 `json:"dropped"`
	Late    uint64 `json:"late"`
	Clamped uint64 `json:"clamped"`
	// Slowest is the reservoir sorted slowest-first (ties by earlier
	// issue); Routes, when filled by the caller, aligns with it and
	// names the tier of each link on the record's route.
	Slowest  []Record   `json:"slowest"`
	Routes   [][]string `json:"routes,omitempty"`
	WindowNs int64      `json:"window_ns"`
	Windows  []Window   `json:"-"`
	Tiers    []TierInfo `json:"tiers,omitempty"`
	// Proxies mirrors Tiers for the per-proxy-slot busy series; Links is
	// the number of nodes each slot's busy time is summed over.
	Proxies []TierInfo `json:"proxies,omitempty"`
}

// Finish closes the current window and harvests the point. The recorder
// stays usable for inspection but not for further recording.
func (r *Recorder) Finish() PointData {
	if r.cur != nil {
		r.closeWindow()
	}
	slow := append([]Record(nil), r.topk...)
	sort.Slice(slow, func(i, j int) bool { return heapLess(slow[j], slow[i]) })
	return PointData{
		Tracked: r.tracked, Dropped: r.dropped, Late: r.late, Clamped: r.clamped,
		Slowest: slow, WindowNs: r.windowNs, Windows: r.windows, Tiers: r.tiers,
		Proxies: r.proxies,
	}
}

// Ring returns the retained recent records, oldest first, plus the total
// ever completed.
func (r *Recorder) Ring() ([]Record, uint64) {
	if r.ringN <= uint64(cap(r.ring)) {
		return r.ring, r.ringN
	}
	out := make([]Record, 0, cap(r.ring))
	start := r.ringN % uint64(cap(r.ring))
	out = append(out, r.ring[start:]...)
	out = append(out, r.ring[:start]...)
	return out, r.ringN
}

// ShardRows exports a window's active shard cells.
func (w *Window) ShardRows() []ShardRow {
	var rows []ShardRow
	for s, c := range w.cells {
		if c.arrivals == 0 && c.dones == 0 {
			continue
		}
		rows = append(rows, ShardRow{
			Shard: int32(s), Arrivals: c.arrivals, Dones: c.dones,
			DepthSum: c.depthSum, DepthMax: c.depthMax, LatSumNs: c.latSum,
		})
	}
	return rows
}

// TierBusy returns the window's per-tier busy-ns deltas.
func (w *Window) TierBusy() []int64 { return w.tier }

// ProxyBusy returns the window's per-proxy-slot busy-ns deltas.
func (w *Window) ProxyBusy() []int64 { return w.proxy }
