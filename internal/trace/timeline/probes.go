package timeline

import (
	"fmt"

	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/machine"
	"mproxy/internal/machine/topo"
	"mproxy/internal/sim"
)

// ClusterProbes builds utilization/depth probes for every communication
// agent (with its work-queue depth), NIC output port and DMA engine in
// the cluster.
func ClusterProbes(c *machine.Cluster) []Probe {
	agentKind := "proxy"
	if c.Arch.Kind == arch.CustomHW {
		agentKind = "adapter"
	}
	var ps []Probe
	for _, nd := range c.Nodes {
		for _, ag := range nd.Agents {
			ag := ag
			ps = append(ps, Probe{
				Name: ag.Name, Kind: agentKind,
				Busy: func() int64 { return int64(ag.BusyTime()) },
				Util: func(since, busyAt int64) float64 {
					return ag.UtilizationSince(sim.Time(since), sim.Time(busyAt))
				},
				Depth: ag.QueueLen,
			})
		}
		for _, lk := range []struct {
			l    *machine.Link
			kind string
		}{{nd.OutLink, "nic"}, {nd.DMA, "dma"}} {
			l := lk.l
			ps = append(ps, Probe{
				Name: l.Name(), Kind: lk.kind,
				Busy: func() int64 { return int64(l.BusyTime()) },
				Util: func(since, busyAt int64) float64 {
					return l.UtilizationSince(sim.Time(since), sim.Time(busyAt))
				},
			})
		}
	}
	return ps
}

// FabricProbes builds depth probes for every endpoint's proxy command
// queue (empty on design points without command queues).
func FabricProbes(f *comm.Fabric) []Probe {
	var ps []Probe
	for _, ep := range f.Endpoints() {
		q := ep.CommandQueue()
		if q == nil {
			continue
		}
		ps = append(ps, Probe{
			Name:  fmt.Sprintf("rank%d.cmdq", ep.Rank()),
			Kind:  "cmdq",
			Depth: q.Len,
		})
	}
	return ps
}

// NetProbes builds utilization probes for every switch output link of a
// multi-switch interconnect, so topology runs show per-tier wire load in
// Chrome trace/utilization reports alongside the node NICs (which only
// cover the edge).
func NetProbes(n *topo.Net) []Probe {
	var ps []Probe
	n.EachLink(func(t topo.Tier, l *machine.Link) {
		ps = append(ps, Probe{
			Name: l.Name(), Kind: "switch." + t.String(),
			Busy: func() int64 { return int64(l.BusyTime()) },
			Util: func(since, busyAt int64) float64 {
				return l.UtilizationSince(sim.Time(since), sim.Time(busyAt))
			},
		})
	})
	return ps
}

// Attach wires the sampler to every cluster, interconnect and fabric the
// process builds from now on, via the machine/topo/comm construction
// hooks — the same pattern the tracecli uses for the global tracer. Each
// new cluster replaces the probe set (keeping windows already
// collected); its interconnect's switch links and its fabric's command
// queues are appended when those are built moments later.
func Attach(s *Sampler) {
	machine.OnNewCluster(func(c *machine.Cluster) { s.SetProbes(ClusterProbes(c)) })
	topo.OnNewNet(func(n *topo.Net) { s.AddProbes(NetProbes(n)) })
	comm.OnNewFabric(func(f *comm.Fabric) { s.AddProbes(FabricProbes(f)) })
}

// Detach removes the construction hooks installed by Attach.
func Detach() {
	machine.OnNewCluster(nil)
	topo.OnNewNet(nil)
	comm.OnNewFabric(nil)
}
