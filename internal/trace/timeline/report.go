package timeline

import (
	"encoding/json"

	"mproxy/internal/trace/span"
)

// Profile is the combined observability report for one run (or driver
// session): span attribution quality, the per-operation and per-flow
// phase breakdowns, utilization/depth windows, and the critical path of
// the slowest message.
type Profile struct {
	Scenario     string                 `json:"scenario,omitempty"`
	SpanStats    span.Stats             `json:"span_stats"`
	Breakdown    span.BreakdownSnapshot `json:"breakdown"`
	Windows      []Window               `json:"windows"`
	CriticalPath string                 `json:"critical_path,omitempty"`
}

// BuildProfile assembles a Profile from an assembler and (optionally) a
// sampler. The sampler is flushed; pass nil to skip the timeline section.
func BuildProfile(asm *span.Assembler, smp *Sampler, scenario string) Profile {
	p := Profile{Scenario: scenario, SpanStats: asm.Stats()}
	p.Breakdown = span.Aggregate(asm.Spans()).Snapshot()
	if smp != nil {
		smp.Flush()
		p.Windows = smp.Windows()
	}
	if worst := SlowestSpan(asm.Spans()); worst != nil {
		p.CriticalPath = worst.Report()
	}
	return p
}

// SlowestSpan returns the complete span with the largest end-to-end
// latency (ties broken by lowest ID), or nil if none completed.
func SlowestSpan(spans []*span.Span) *span.Span {
	var worst *span.Span
	for _, s := range spans {
		if s.Complete && (worst == nil || s.Done-s.Submit > worst.Done-worst.Submit) {
			worst = s
		}
	}
	return worst
}

// JSON renders the profile as indented, deterministic JSON.
func (p Profile) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}
