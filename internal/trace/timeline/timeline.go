// Package timeline samples component utilization and queue depth over
// windows of simulated time, turning the end-of-run averages the drivers
// already report (Table 6's interface utilization) into time series: how
// busy each proxy, DMA engine and NIC port was during each window, and
// how deep each command queue and agent work queue ran.
//
// The Sampler is a trace.Tracer. It takes no samples of its own accord —
// scheduling periodic engine events would keep the event loop alive
// forever — but instead piggybacks on the trace stream: whenever an
// event's timestamp crosses the current window boundary, the window
// closes at that event's instant. Windows are therefore at least Period
// long, aligned to event times, and perfectly deterministic. Utilization
// inside a window is exact even when a hold straddles the boundary: the
// sampler snapshots each component's cumulative BusyTime at every close
// and feeds it back through the component's UtilizationSince.
package timeline

import (
	"mproxy/internal/trace"
)

// Probe reads one component's instantaneous counters. Accessors are
// optional: a command queue has depth but no busy time; a link has busy
// time but no depth.
type Probe struct {
	Name string
	// Kind classifies the component: "proxy", "adapter", "nic", "dma",
	// "cmdq", "agentq".
	Kind string
	// Busy returns cumulative busy nanoseconds up to the present instant.
	Busy func() int64
	// Util returns the fraction of [sinceNs, now] the component was busy,
	// given the cumulative Busy observed at sinceNs.
	Util func(sinceNs, busyAtSinceNs int64) float64
	// Depth returns the instantaneous queue depth.
	Depth func() int
}

// Window is one closed sampling window for one probe.
type Window struct {
	Run   int    `json:"run"`
	Probe string `json:"probe"`
	Kind  string `json:"kind"`
	Start int64  `json:"start_ns"`
	End   int64  `json:"end_ns"`
	// Util is the fraction of the window the component was busy, or -1
	// for depth-only probes.
	Util float64 `json:"util"`
	// Depth is the queue depth at the window's close, or -1 for probes
	// without a queue.
	Depth int `json:"depth"`
}

type probeState struct {
	Probe
	prevBusy int64
}

// Sampler collects windows from a trace stream. Install probes with
// SetProbes/AddProbes (or timeline.Attach, which wires them to every
// cluster the drivers build), then fan the sampler into the engine's
// tracer next to the other consumers.
type Sampler struct {
	// Period is the minimum window length in nanoseconds.
	Period int64

	probes   []*probeState
	windows  []Window
	run      int
	lastAt   int64
	winStart int64
	sawEvent bool
}

// NewSampler returns a sampler with the given window period (ns).
func NewSampler(periodNs int64) *Sampler {
	if periodNs <= 0 {
		periodNs = 50_000 // 50us: a few windows per micro-benchmark rep
	}
	return &Sampler{Period: periodNs}
}

// SetProbes replaces the probe set, closing any window in progress first.
// Drivers that build several clusters call this (via the Attach hooks)
// once per cluster; windows from earlier clusters are kept.
func (s *Sampler) SetProbes(ps []Probe) {
	s.closeWindow(s.lastAt)
	s.probes = s.probes[:0]
	s.AddProbes(ps)
}

// AddProbes appends probes, snapshotting their current busy counters so
// the first window starts clean.
func (s *Sampler) AddProbes(ps []Probe) {
	for _, p := range ps {
		st := &probeState{Probe: p}
		if p.Busy != nil {
			st.prevBusy = p.Busy()
		}
		s.probes = append(s.probes, st)
	}
}

// Record implements trace.Tracer.
func (s *Sampler) Record(ev trace.Event) {
	if ev.At < s.lastAt {
		// Fresh engine: close out the old run's final window and restart.
		s.closeWindow(s.lastAt)
		s.run++
		s.winStart = ev.At
		s.sawEvent = false
	}
	if !s.sawEvent {
		s.winStart = ev.At
		s.sawEvent = true
	}
	s.lastAt = ev.At
	if ev.At-s.winStart >= s.Period {
		// The engine's clock sits at ev.At while this event is traced, so
		// the probes' UtilizationSince close the window exactly here.
		s.closeWindow(ev.At)
	}
}

// closeWindow emits one Window per probe for [winStart, end) and starts
// the next window at end. Empty or zero-length windows are skipped.
func (s *Sampler) closeWindow(end int64) {
	if !s.sawEvent || end <= s.winStart {
		return
	}
	for _, st := range s.probes {
		w := Window{
			Run: s.run, Probe: st.Name, Kind: st.Kind,
			Start: s.winStart, End: end, Util: -1, Depth: -1,
		}
		if st.Util != nil && st.Busy != nil {
			w.Util = st.Util(s.winStart, st.prevBusy)
			st.prevBusy = st.Busy()
		}
		if st.Depth != nil {
			w.Depth = st.Depth()
		}
		s.windows = append(s.windows, w)
	}
	s.winStart = end
}

// Flush closes the final partial window. Call after the simulation
// quiesces (the engine's clock has stopped, so the close is exact).
func (s *Sampler) Flush() { s.closeWindow(s.lastAt) }

// Windows returns every closed window in emission order.
func (s *Sampler) Windows() []Window { return s.windows }
