package timeline

import (
	"encoding/json"
	"fmt"
	"sort"

	"mproxy/internal/trace/span"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing, Perfetto). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// ChromeTrace renders spans and sampling windows as Chrome trace-event
// JSON. Each engine run becomes a process; each component (issuing
// process, agent queue, agent, wire) becomes a thread carrying the span
// intervals attributed to it as complete ("X") events, and each
// utilization/depth probe becomes a counter ("C") track. Output is fully
// deterministic: tracks are sorted by name, events follow span and window
// emission order.
func ChromeTrace(spans []*span.Span, windows []Window) ([]byte, error) {
	// Collect track names per run: interval locations plus counter probes.
	type trackKey struct {
		run  int
		name string
	}
	trackSet := make(map[trackKey]bool)
	runs := make(map[int]bool)
	for _, s := range spans {
		runs[s.Run] = true
		for _, iv := range s.Intervals {
			trackSet[trackKey{s.Run, iv.Where}] = true
		}
	}
	for _, w := range windows {
		runs[w.Run] = true
	}
	tids := make(map[trackKey]int)
	var evs []chromeEvent

	runList := make([]int, 0, len(runs))
	for r := range runs {
		runList = append(runList, r)
	}
	sort.Ints(runList)
	for _, r := range runList {
		pid := r + 1
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("run %d", r)},
		})
		var names []string
		for k := range trackSet {
			if k.run == r {
				names = append(names, k.name)
			}
		}
		sort.Strings(names)
		for i, n := range names {
			tids[trackKey{r, n}] = i + 1
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
				Args: map[string]any{"name": n},
			})
		}
	}
	for _, s := range spans {
		pid := s.Run + 1
		for _, iv := range s.Intervals {
			d := us(iv.Dur())
			evs = append(evs, chromeEvent{
				Name: iv.Phase.String(), Ph: "X",
				Pid: pid, Tid: tids[trackKey{s.Run, iv.Where}],
				Ts: us(iv.From), Dur: &d, Cat: s.Op,
				Args: map[string]any{"span": s.ID, "bytes": s.Bytes, "hop": iv.Hop},
			})
		}
	}
	for _, w := range windows {
		pid := w.Run + 1
		if w.Util >= 0 {
			evs = append(evs, chromeEvent{
				Name: w.Probe + " util", Ph: "C", Pid: pid,
				Ts:   us(w.Start),
				Args: map[string]any{"util": w.Util},
			})
		}
		if w.Depth >= 0 {
			evs = append(evs, chromeEvent{
				Name: w.Probe + " depth", Ph: "C", Pid: pid,
				Ts:   us(w.Start),
				Args: map[string]any{"depth": w.Depth},
			})
		}
	}
	return json.MarshalIndent(chromeFile{TraceEvents: evs, DisplayTimeUnit: "ms"}, "", " ")
}

// Slice is one complete interval on a named track, for renderers that
// build Chrome traces from sources other than the span assembler — the
// flight recorder's exemplar dumps use it.
type Slice struct {
	Track   string
	Name    string
	StartNs int64
	DurNs   int64
	Cat     string
	Args    map[string]any
}

// ChromeSlices renders labeled intervals as Chrome trace-event JSON with
// the same deterministic shaping as ChromeTrace: one process (named
// process), tracks sorted by name, slices in input order.
func ChromeSlices(process string, slices []Slice) ([]byte, error) {
	const pid = 1
	evs := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": process},
	}}
	var names []string
	seen := make(map[string]bool)
	for _, s := range slices {
		if !seen[s.Track] {
			seen[s.Track] = true
			names = append(names, s.Track)
		}
	}
	sort.Strings(names)
	tids := make(map[string]int, len(names))
	for i, n := range names {
		tids[n] = i + 1
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
			Args: map[string]any{"name": n},
		})
	}
	for _, s := range slices {
		d := us(s.DurNs)
		evs = append(evs, chromeEvent{
			Name: s.Name, Ph: "X", Pid: pid, Tid: tids[s.Track],
			Ts: us(s.StartNs), Dur: &d, Cat: s.Cat, Args: s.Args,
		})
	}
	return json.MarshalIndent(chromeFile{TraceEvents: evs, DisplayTimeUnit: "ms"}, "", " ")
}
