package timeline

import (
	"testing"

	"mproxy/internal/trace"
)

// fakeComponent is a synthetic busy counter driven by the test: busy
// nanoseconds accumulate linearly between markers the test sets.
type fakeComponent struct {
	now  int64
	busy int64
}

func (c *fakeComponent) probe(name string) Probe {
	return Probe{
		Name: name,
		Kind: "proxy",
		Busy: func() int64 { return c.busy },
		Util: func(sinceNs, busyAtSinceNs int64) float64 {
			if c.now <= sinceNs {
				return 0
			}
			return float64(c.busy-busyAtSinceNs) / float64(c.now-sinceNs)
		},
	}
}

func tick(s *Sampler, c *fakeComponent, at, busy int64) {
	c.now, c.busy = at, busy
	s.Record(trace.Event{At: at, Kind: trace.KEnqueue, Comp: "x"})
}

// TestSamplerWindows drives the sampler with a synthetic stream and checks
// the windowing contract: windows are at least Period long, aligned to
// event times, and utilization uses the busy-at-close feedback so a busy
// stretch straddling a boundary splits exactly.
func TestSamplerWindows(t *testing.T) {
	s := NewSampler(100)
	c := &fakeComponent{}
	s.SetProbes([]Probe{c.probe("p0")})

	tick(s, c, 0, 0)
	tick(s, c, 60, 30)   // within the first window
	tick(s, c, 120, 90)  // crosses: window [0,120) closes, busy 90 -> 0.75
	tick(s, c, 150, 120) // within the second window
	tick(s, c, 230, 120) // crosses: window [120,230) closes, busy 30 -> 30/110
	c.now = 260
	s.lastAt = 260 // quiesce instant
	s.Flush()      // partial window [230,260), idle -> 0

	ws := s.Windows()
	if len(ws) != 3 {
		t.Fatalf("got %d windows, want 3: %+v", len(ws), ws)
	}
	type wnt struct {
		start, end int64
		util       float64
	}
	want := []wnt{
		{0, 120, 0.75},
		{120, 230, 30.0 / 110.0},
		{230, 260, 0},
	}
	for i, w := range want {
		g := ws[i]
		if g.Start != w.start || g.End != w.end {
			t.Errorf("window %d = [%d,%d), want [%d,%d)", i, g.Start, g.End, w.start, w.end)
		}
		if g.Util != w.util {
			t.Errorf("window %d util = %v, want %v", i, g.Util, w.util)
		}
		if g.Depth != -1 {
			t.Errorf("window %d depth = %d, want -1 (no depth accessor)", i, g.Depth)
		}
		if g.End-g.Start < 30 {
			t.Errorf("window %d shorter than any event gap", i)
		}
	}
}

// TestSamplerRollover: a driver that builds a second engine re-attaches
// probes for the fresh cluster (SetProbes) and the first backwards
// timestamp starts a new run; windows from the old run are kept.
func TestSamplerRollover(t *testing.T) {
	s := NewSampler(100)
	c := &fakeComponent{}
	s.SetProbes([]Probe{c.probe("p0")})
	tick(s, c, 0, 0)
	tick(s, c, 150, 150) // run 0 window [0,150), fully busy
	c2 := &fakeComponent{}
	s.SetProbes([]Probe{c2.probe("p0")}) // fresh cluster, fresh counters
	tick(s, c2, 10, 0)                   // time runs backwards: new run
	tick(s, c2, 120, 55)
	s.Flush()
	ws := s.Windows()
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(ws), ws)
	}
	if ws[0].Run != 0 || ws[0].Util != 1.0 {
		t.Errorf("run-0 window = %+v, want run 0 util 1.0", ws[0])
	}
	if ws[1].Run != 1 || ws[1].Start != 10 || ws[1].End != 120 || ws[1].Util != 0.5 {
		t.Errorf("run-1 window = %+v, want run 1 [10,120) util 0.5", ws[1])
	}
}

// TestSamplerDepthOnly: probes without busy accessors report depth and the
// -1 utilization sentinel.
func TestSamplerDepthOnly(t *testing.T) {
	s := NewSampler(100)
	depth := 0
	s.SetProbes([]Probe{{Name: "q", Kind: "cmdq", Depth: func() int { return depth }}})
	s.Record(trace.Event{At: 0, Kind: trace.KEnqueue, Comp: "x"})
	depth = 3
	s.Record(trace.Event{At: 200, Kind: trace.KEnqueue, Comp: "x"})
	ws := s.Windows()
	if len(ws) != 1 {
		t.Fatalf("got %d windows, want 1", len(ws))
	}
	if ws[0].Util != -1 || ws[0].Depth != 3 {
		t.Errorf("depth-only window = %+v, want util -1 depth 3", ws[0])
	}
}
