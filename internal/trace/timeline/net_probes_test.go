package timeline

import (
	"strings"
	"testing"

	"mproxy/internal/arch"
	"mproxy/internal/machine"
	"mproxy/internal/machine/topo"
	"mproxy/internal/sim"
)

// TestNetProbesCoverSwitchLinks checks a multi-switch interconnect's
// links all get utilization probes, tiered by kind, and that Attach's
// construction hook wires them automatically.
func TestNetProbesCoverSwitchLinks(t *testing.T) {
	a, _ := arch.ByName("MP1")
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 16, ProcsPerNode: 2, ProxiesPerNode: 1}, a)
	g, err := topo.ByName("fat-tree", 16)
	if err != nil {
		t.Fatal(err)
	}
	n := topo.NewNet(cl, g)

	ps := NetProbes(n)
	want := 0
	n.EachLink(func(topo.Tier, *machine.Link) { want++ })
	if want == 0 || len(ps) != want {
		t.Fatalf("probes cover %d of %d switch links", len(ps), want)
	}
	kinds := map[string]bool{}
	for _, p := range ps {
		if p.Busy == nil || p.Util == nil {
			t.Fatalf("probe %s missing busy/util accessors", p.Name)
		}
		if !strings.HasPrefix(p.Kind, "switch.") {
			t.Fatalf("probe %s kind %q, want switch.<tier>", p.Name, p.Kind)
		}
		kinds[p.Kind] = true
	}
	if !kinds["switch.edge"] || !kinds["switch.core"] {
		t.Fatalf("probe kinds %v missing edge/core tiers", kinds)
	}

	// Attach: a fresh cluster+net lands every switch link in the sampler.
	s := NewSampler(1000)
	Attach(s)
	defer Detach()
	eng2 := sim.NewEngine()
	cl2 := machine.New(eng2, machine.Config{Nodes: 16, ProcsPerNode: 2, ProxiesPerNode: 1}, a)
	topo.NewNet(cl2, g)
	got := 0
	for _, p := range s.probeNames() {
		if strings.Contains(p, ".sw") {
			got++
		}
	}
	if got != want {
		t.Fatalf("Attach wired %d switch-link probes, want %d", got, want)
	}
}

// probeNames exposes the sampler's probe set to the test.
func (s *Sampler) probeNames() []string {
	var out []string
	for _, st := range s.probes {
		out = append(out, st.Name)
	}
	return out
}

// TestChromeSlicesDeterministic pins the generic slice writer's
// determinism and shaping: sorted tracks, input-order events.
func TestChromeSlicesDeterministic(t *testing.T) {
	slices := []Slice{
		{Track: "b", Name: "x", StartNs: 1000, DurNs: 500, Cat: "PUT"},
		{Track: "a", Name: "y", StartNs: 2000, DurNs: 250, Cat: "GET",
			Args: map[string]any{"shard": 3}},
	}
	j1, err := ChromeSlices("flight", slices)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := ChromeSlices("flight", slices)
	if string(j1) != string(j2) {
		t.Fatal("ChromeSlices not deterministic")
	}
	out := string(j1)
	for _, want := range []string{`"flight"`, `"thread_name"`, `"x"`, `"shard": 3`, `"displayTimeUnit": "ms"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %s:\n%s", want, out)
		}
	}
	// Track "a" sorts first: it must get tid 1.
	if strings.Index(out, `"name": "a"`) > strings.Index(out, `"name": "b"`) {
		t.Fatal("tracks not sorted by name")
	}
}
