// Package metrics turns the simulator's trace stream into per-component
// counters and histograms: how many events of each kind every resource,
// queue, agent and operation type produced, plus latency distributions for
// the kinds whose Arg carries a duration (resource waits, agent work-item
// waits, operation completions). A Collector is a trace.Tracer, so it can
// be installed alone or fanned out next to a digest via trace.Multi.
package metrics

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"mproxy/internal/trace"
)

// durationKinds are the kinds whose Arg is a duration in nanoseconds.
var durationKinds = map[trace.Kind]bool{
	trace.KAcquire: true, // queue wait before seizing a resource
	trace.KRelease: true, // hold time
	trace.KPoll:    true, // agent work-item wait (notice + queueing)
	trace.KOpDone:  true, // one-way operation latency
}

// histBuckets is the bucket count of the log-linear layout below:
// 16 exact buckets for v < 16, then 16 sub-buckets per power of two for
// the 59 exponents 4..62 a positive int64 can carry (16 + 59*16 = 960).
const histBuckets = 960

// Hist is a log-linear (HDR-style) bucket histogram of nanosecond
// durations. Values below 16 count exactly; every larger value lands in
// one of 16 linear sub-buckets of its power-of-two range, so any bucket's
// bounds are within 1/16 (6.25%) of each other. That resolution is what
// keeps tail quantiles (p99, p999) honest at microsecond scale — the old
// power-of-two buckets quantized a 1000 ns p999 into "somewhere below
// 1024", a 2x-wide answer.
type Hist struct {
	Buckets [histBuckets]uint64
	N       uint64
	Sum     int64
	Min     int64
	Max     int64
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < 16 {
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1 // >= 4
	sub := int(v>>(uint(msb)-4)) & 15
	return 16 + (msb-4)*16 + sub
}

// bucketHi returns the bucket's inclusive upper bound.
func bucketHi(i int) int64 {
	if i < 16 {
		return int64(i)
	}
	msb := (i-16)/16 + 4
	sub := (i - 16) % 16
	return int64(16+sub+1)<<(uint(msb)-4) - 1
}

// Add folds a value into the histogram. Negative values clamp to zero.
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

// Mean returns the average value.
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Merge folds other into h. Buckets, counts and sums add; Min/Max combine.
// Merging is commutative and associative up to these fields, so snapshots
// of h after merging a set of histograms in any order are identical.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.N == 0 {
		return
	}
	if h.N == 0 || other.Min < h.Min {
		h.Min = other.Min
	}
	if other.Max > h.Max {
		h.Max = other.Max
	}
	h.N += other.N
	h.Sum += other.Sum
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// containing bucket's upper bound, clamped to the observed Max. Values
// below 16 resolve exactly; larger ones to within 1/16 relative error.
func (h *Hist) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	target := uint64(q * float64(h.N))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= target {
			hi := bucketHi(i)
			if hi > h.Max {
				hi = h.Max
			}
			return hi
		}
	}
	return h.Max
}

// HistSnapshot is the JSON-friendly summary of a histogram, in
// microseconds (the paper's unit).
type HistSnapshot struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	MinUs  float64 `json:"min_us"`
	MaxUs  float64 `json:"max_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
}

// Snapshot summarizes the histogram in microseconds (the paper's unit).
func (h *Hist) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count:  h.N,
		MeanUs: h.Mean() / 1e3,
		MinUs:  float64(h.Min) / 1e3,
		MaxUs:  float64(h.Max) / 1e3,
		P50Us:  float64(h.Quantile(0.50)) / 1e3,
		P95Us:  float64(h.Quantile(0.95)) / 1e3,
		P99Us:  float64(h.Quantile(0.99)) / 1e3,
		P999Us: float64(h.Quantile(0.999)) / 1e3,
	}
}

// comp accumulates per-component statistics.
type comp struct {
	byKind [trace.NumKinds]uint64
	durs   map[trace.Kind]*Hist
	scan   ScanSnapshot
}

// ScanSnapshot aggregates a scanner's KScan passes: total bit-vector word
// probes, queue-head checks, and how many passes dequeued a command.
type ScanSnapshot struct {
	Passes     uint64 `json:"passes"`
	Probes     int64  `json:"probes"`
	HeadChecks int64  `json:"head_checks"`
	Found      uint64 `json:"found"`
}

// Collector accumulates counters and histograms from a trace stream. It is
// not safe for concurrent use across simultaneously running engines; the
// experiment drivers run their simulations sequentially.
type Collector struct {
	total  uint64
	byKind [trace.NumKinds]uint64
	comps  map[string]*comp
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{comps: make(map[string]*comp)} }

// Record implements trace.Tracer.
func (c *Collector) Record(ev trace.Event) {
	c.total++
	c.byKind[ev.Kind]++
	// Engine-level schedule/fire events carry no component; counting them
	// globally is enough and keeps the per-component map small.
	if ev.Comp == "" {
		return
	}
	cp := c.comps[ev.Comp]
	if cp == nil {
		cp = &comp{}
		c.comps[ev.Comp] = cp
	}
	cp.byKind[ev.Kind]++
	if ev.Kind == trace.KScan {
		s := trace.DecodeScanArg(ev.Arg)
		cp.scan.Passes++
		cp.scan.Probes += s.Probes
		cp.scan.HeadChecks += s.HeadChecks
		if s.Found {
			cp.scan.Found++
		}
	}
	if durationKinds[ev.Kind] {
		if cp.durs == nil {
			cp.durs = make(map[trace.Kind]*Hist)
		}
		h := cp.durs[ev.Kind]
		if h == nil {
			h = &Hist{}
			cp.durs[ev.Kind] = h
		}
		h.Add(ev.Arg)
	}
}

// Total returns the number of events seen.
func (c *Collector) Total() uint64 { return c.total }

// CompSnapshot summarizes one component.
type CompSnapshot struct {
	Name      string                  `json:"name"`
	Events    uint64                  `json:"events"`
	ByKind    map[string]uint64       `json:"by_kind"`
	Durations map[string]HistSnapshot `json:"durations,omitempty"`
	Scan      *ScanSnapshot           `json:"scan,omitempty"`
}

// Snapshot is the collector's full state, ready for JSON encoding.
type Snapshot struct {
	TotalEvents uint64            `json:"total_events"`
	ByKind      map[string]uint64 `json:"by_kind"`
	Components  []CompSnapshot    `json:"components"`
}

// Snapshot captures the current counters, components sorted by name.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{TotalEvents: c.total, ByKind: make(map[string]uint64)}
	for k, n := range c.byKind {
		if n > 0 {
			s.ByKind[trace.Kind(k).String()] = n
		}
	}
	names := make([]string, 0, len(c.comps))
	for name := range c.comps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cp := c.comps[name]
		cs := CompSnapshot{Name: name, ByKind: make(map[string]uint64)}
		for k, n := range cp.byKind {
			if n > 0 {
				cs.ByKind[trace.Kind(k).String()] = n
				cs.Events += n
			}
		}
		if len(cp.durs) > 0 {
			cs.Durations = make(map[string]HistSnapshot, len(cp.durs))
			for k, h := range cp.durs {
				cs.Durations[k.String()] = h.Snapshot()
			}
		}
		if cp.scan.Passes > 0 {
			sc := cp.scan
			cs.Scan = &sc
		}
		s.Components = append(s.Components, cs)
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (c *Collector) JSON() (string, error) {
	b, err := json.MarshalIndent(c.Snapshot(), "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Summary renders a human-readable report: global kind counts, then one
// block per component with its counters and duration statistics.
func (c *Collector) Summary() string {
	s := c.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "trace metrics: %d events\n", s.TotalEvents)
	for _, k := range kindOrder(s.ByKind) {
		fmt.Fprintf(&b, "  %-10s %12d\n", k, s.ByKind[k])
	}
	for _, cs := range s.Components {
		fmt.Fprintf(&b, "%s: %d events\n", cs.Name, cs.Events)
		for _, k := range kindOrder(cs.ByKind) {
			fmt.Fprintf(&b, "  %-10s %12d", k, cs.ByKind[k])
			if d, ok := cs.Durations[k]; ok {
				fmt.Fprintf(&b, "   mean %.2fus  p50 %.2fus  p99 %.2fus  max %.2fus",
					d.MeanUs, d.P50Us, d.P99Us, d.MaxUs)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// kindOrder returns the map's kind names in Kind declaration order.
func kindOrder(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := 0; k < trace.NumKinds; k++ {
		name := trace.Kind(k).String()
		if _, ok := m[name]; ok {
			out = append(out, name)
		}
	}
	return out
}
