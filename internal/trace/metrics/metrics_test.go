package metrics

import (
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mproxy/internal/trace"
)

func TestHistBasics(t *testing.T) {
	var h Hist
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []int64{0, 1, 2, 1000, 1_000_000, -5} {
		h.Add(v)
	}
	if h.N != 6 {
		t.Fatalf("N = %d, want 6", h.N)
	}
	if h.Min != 0 {
		t.Errorf("Min = %d, want 0 (negative clamps)", h.Min)
	}
	if h.Max != 1_000_000 {
		t.Errorf("Max = %d", h.Max)
	}
	if h.Quantile(1.0) != h.Max {
		t.Errorf("Quantile(1.0) = %d, want Max %d", h.Quantile(1.0), h.Max)
	}
}

// TestHistQuantileBounds checks the power-of-two quantile against the
// exact order statistic on random data: the estimate must be an upper
// bound no more than 2x above it (one bucket of slack).
func TestHistQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var h Hist
		vals := make([]int64, 500)
		for i := range vals {
			vals[i] = int64(rng.Intn(1 << uint(4+rng.Intn(20))))
			h.Add(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			idx := int(q*float64(len(vals))) - 1
			if idx < 0 {
				idx = 0
			}
			exact := vals[idx]
			got := h.Quantile(q)
			if got < exact {
				t.Fatalf("trial %d: Quantile(%.2f) = %d below exact %d", trial, q, got, exact)
			}
			if exact > 0 && got > 2*exact {
				t.Fatalf("trial %d: Quantile(%.2f) = %d more than 2x exact %d", trial, q, got, exact)
			}
		}
	}
}

func TestCollectorSnapshot(t *testing.T) {
	c := NewCollector()
	c.Record(trace.Event{Kind: trace.KSchedule}) // global only: no comp
	c.Record(trace.Event{Kind: trace.KFire})     // global only
	c.Record(trace.Event{Kind: trace.KAcquire, Comp: "node0.agent", Arg: 1500})
	c.Record(trace.Event{Kind: trace.KAcquire, Comp: "node0.agent", Arg: 2500})
	c.Record(trace.Event{Kind: trace.KSpawn, Comp: "worker"})
	if c.Total() != 5 {
		t.Fatalf("Total = %d, want 5", c.Total())
	}
	s := c.Snapshot()
	if s.TotalEvents != 5 || s.ByKind["acquire"] != 2 || s.ByKind["schedule"] != 1 {
		t.Fatalf("snapshot counters wrong: %+v", s)
	}
	if len(s.Components) != 2 || s.Components[0].Name != "node0.agent" || s.Components[1].Name != "worker" {
		t.Fatalf("components not sorted by name: %+v", s.Components)
	}
	d, ok := s.Components[0].Durations["acquire"]
	if !ok {
		t.Fatal("acquire duration histogram missing")
	}
	if d.Count != 2 || d.MeanUs != 2.0 {
		t.Errorf("acquire stats = %+v, want count 2 mean 2.0us", d)
	}
	if _, ok := s.Components[1].Durations["spawn"]; ok {
		t.Error("spawn is not a duration kind")
	}
}

func TestCollectorJSONAndSummary(t *testing.T) {
	c := NewCollector()
	c.Record(trace.Event{Kind: trace.KOpDone, Comp: "PUT", Arg: 24_700})
	out, err := c.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(out), &s); err != nil {
		t.Fatalf("JSON output does not round-trip: %v", err)
	}
	if s.Components[0].Durations["op-done"].MeanUs != 24.7 {
		t.Errorf("mean = %v us, want 24.7", s.Components[0].Durations["op-done"].MeanUs)
	}
	sum := c.Summary()
	for _, want := range []string{"1 events", "PUT", "op-done", "24.70us"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
