package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// These tests pin the histogram's behavior at the extremes the open-loop
// serving driver actually hits: sub-bucket latencies (the intra-node
// fast path completes in a handful of nanoseconds, inside the 16 exact
// buckets) and saturation tails that reach the top power-of-two ranges,
// where Quantile's answer must clamp to the observed Max rather than a
// bucket bound gigantic compared to any real sample.

// TestSubBucketExact pins the layout contract for v < 16: each value has
// its own bucket, so every quantile of a sub-bucket population is exact,
// not an upper bound.
func TestSubBucketExact(t *testing.T) {
	for v := int64(0); v < 16; v++ {
		var h Hist
		for i := 0; i < 100; i++ {
			h.Add(v)
		}
		for _, q := range []float64{0.001, 0.5, 0.999, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("Quantile(%v) of 100x%d = %d, want exact", q, v, got)
			}
		}
	}
	// Mixed sub-bucket population: quantiles equal the exact order
	// statistics under the floor(q*N) target (p999 of 16 samples is the
	// 15th order statistic, p100 the largest value).
	var h Hist
	for v := int64(0); v < 16; v++ {
		h.Add(v)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.0625, 0}, {0.5, 7}, {0.75, 11}, {0.999, 14}, {1, 15}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("mixed sub-bucket Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

// TestNegativeClampsToZero pins Add's floor: negative durations (which a
// buggy probe could produce) count as zero, keeping Sum and Min sane.
func TestNegativeClampsToZero(t *testing.T) {
	var h Hist
	h.Add(-1)
	h.Add(-1 << 40)
	if h.Min != 0 || h.Max != 0 || h.Sum != 0 || h.N != 2 {
		t.Errorf("negative adds: %+v, want two zero samples", h)
	}
	if got := h.Quantile(0.999); got != 0 {
		t.Errorf("all-negative Quantile(0.999) = %d, want 0", got)
	}
}

// TestMaxBucketClamp drives the top of the value range: the largest
// int64s land in the final bucket, whose upper bound is MaxInt64, and
// Quantile must clamp that bound to the observed Max so a single huge
// outlier reports its own value, not 2^63-1.
func TestMaxBucketClamp(t *testing.T) {
	if got := bucketOf(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("MaxInt64 lands in bucket %d, want %d", got, histBuckets-1)
	}
	if got := bucketHi(histBuckets - 1); got != math.MaxInt64 {
		t.Fatalf("top bucket upper bound = %d, want MaxInt64", got)
	}
	outlier := int64(1)<<62 + 12345
	var h Hist
	for i := 0; i < 999; i++ {
		h.Add(1000)
	}
	h.Add(outlier)
	if got := h.Quantile(1); got != outlier {
		t.Errorf("p100 = %d, want the outlier %d (bucket bound must clamp to Max)", got, outlier)
	}
	// All mass beyond the second-to-last bucket bound: p999 clamps too.
	var top Hist
	for i := 0; i < 1000; i++ {
		top.Add(outlier)
	}
	if got := top.Quantile(0.999); got != outlier {
		t.Errorf("saturated p999 = %d, want clamp to Max %d", got, outlier)
	}
}

// TestP999MonotoneUnderMerge is the tail-quantile contract the per-shard
// serving metrics rely on when windows merge into the run summary:
// folding shard histograms together (in any order) must leave the
// quantile curve monotone in q, and the merged p999 must remain a valid
// upper bound on the exact combined order statistic, within the layout's
// 1/16 resolution. Samples deliberately span the extremes: sub-bucket
// values, microsecond midrange, and top-range outliers.
func TestP999MonotoneUnderMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	grid := []float64{0.5, 0.9, 0.99, 0.999, 0.9999, 1}
	for trial := 0; trial < 30; trial++ {
		shards := make([]*Hist, 2+rng.Intn(5))
		var samples []int64
		for i := range shards {
			shards[i] = &Hist{}
			for k := 200 + rng.Intn(800); k > 0; k-- {
				var v int64
				switch rng.Intn(10) {
				case 0: // sub-bucket
					v = rng.Int63n(16)
				case 1: // top-range outlier
					v = int64(1)<<uint(50+rng.Intn(12)) + rng.Int63n(1<<20)
				default: // microsecond midrange
					v = rng.Int63n(1 << uint(8+rng.Intn(16)))
				}
				shards[i].Add(v)
				samples = append(samples, v)
			}
		}
		var merged, reversed Hist
		for _, s := range shards {
			merged.Merge(s)
		}
		for i := len(shards) - 1; i >= 0; i-- {
			reversed.Merge(shards[i])
		}
		if merged != reversed {
			t.Fatalf("trial %d: merge order changed the histogram", trial)
		}
		prev := int64(-1)
		for _, q := range grid {
			got := merged.Quantile(q)
			if got < prev {
				t.Fatalf("trial %d: quantile curve not monotone: Quantile(%v)=%d after %d",
					trial, q, got, prev)
			}
			prev = got
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.999, 0.9999} {
			target := int(q * float64(len(samples)))
			if target == 0 {
				target = 1
			}
			exact := samples[target-1]
			got := merged.Quantile(q)
			if got < exact {
				t.Fatalf("trial %d: merged Quantile(%v) = %d below exact %d", trial, q, got, exact)
			}
			if slack := exact/16 + 1; got > exact+slack {
				t.Fatalf("trial %d: merged Quantile(%v) = %d exceeds exact %d beyond 1/16",
					trial, q, got, exact)
			}
		}
	}
}
