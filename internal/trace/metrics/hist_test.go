package metrics

import (
	"math/rand"
	"sort"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var h Hist
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", h.Mean())
	}
}

func TestQuantileSingle(t *testing.T) {
	var h Hist
	h.Add(1500)
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		// With one sample every quantile is that sample; the histogram may
		// only bound it, but Max clamping makes it exact here.
		if got := h.Quantile(q); got != 1500 {
			t.Errorf("single Quantile(%v) = %d, want 1500", q, got)
		}
	}
	if h.Min != 1500 || h.Max != 1500 || h.N != 1 {
		t.Errorf("single-sample summary wrong: %+v", h)
	}
}

func TestQuantileZero(t *testing.T) {
	var h Hist
	h.Add(0)
	h.Add(0)
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("all-zero Quantile(0.99) = %d, want 0", got)
	}
}

// TestQuantileDuplicateHeavy puts nearly all mass on one value: every
// quantile must land in that value's bucket, not drift to the outlier.
func TestQuantileDuplicateHeavy(t *testing.T) {
	var h Hist
	for i := 0; i < 999; i++ {
		h.Add(1000)
	}
	h.Add(1 << 20)
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	// Bucket bounds: 1000 lies in sub-bucket [992, 1024), upper bound 1023.
	if p50 != 1023 || p99 != 1023 {
		t.Errorf("duplicate-heavy p50=%d p99=%d, want both 1023", p50, p99)
	}
	if got := h.Quantile(1); got != 1<<20 {
		t.Errorf("p100 = %d, want the outlier %d", got, 1<<20)
	}
}

func TestQuantileUpperBound(t *testing.T) {
	var h Hist
	for v := int64(1); v <= 4096; v *= 2 {
		h.Add(v)
	}
	// A quantile is an upper bound: at least floor(q*N) samples (min 1)
	// lie at or below it.
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
		bound := h.Quantile(q)
		var below uint64
		for v := int64(1); v <= 4096; v *= 2 {
			if v <= bound {
				below++
			}
		}
		target := uint64(q * float64(h.N))
		if target == 0 {
			target = 1
		}
		if below < target {
			t.Errorf("Quantile(%v)=%d covers only %d/%d samples, want >= %d",
				q, bound, below, h.N, target)
		}
	}
}

// TestMergeCommutative is the property test for Hist.Merge: folding a set
// of histograms in any order yields identical state, and merging matches
// adding every sample to one histogram directly.
func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		parts := make([]*Hist, 1+rng.Intn(5))
		var direct Hist
		for i := range parts {
			parts[i] = &Hist{}
			for k := rng.Intn(20); k > 0; k-- {
				v := rng.Int63n(1 << uint(rng.Intn(40)))
				parts[i].Add(v)
				direct.Add(v)
			}
		}
		var forward, backward Hist
		for _, p := range parts {
			forward.Merge(p)
		}
		for i := len(parts) - 1; i >= 0; i-- {
			backward.Merge(parts[i])
		}
		if forward != backward {
			t.Fatalf("trial %d: merge order changed the result", trial)
		}
		if direct.N > 0 && forward != direct {
			t.Fatalf("trial %d: merged state differs from direct accumulation:\n%+v\n%+v",
				trial, forward, direct)
		}
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	var h Hist
	h.Add(5)
	before := h
	h.Merge(nil)
	h.Merge(&Hist{})
	if h != before {
		t.Errorf("merging nil/empty changed the histogram")
	}
	var empty Hist
	empty.Merge(&before)
	if empty != before {
		t.Errorf("merge into empty = %+v, want %+v", empty, before)
	}
}

// TestQuantileAccuracy pins the log-linear layout's resolution contract
// against exact order statistics: for random sample sets, every reported
// quantile must be an upper bound on the exact sorted-sample quantile and
// within 1/16 relative error of it (exact below 16). This is the property
// that makes p999 trustworthy at microsecond (≈ thousand-nanosecond)
// scale, where the old power-of-two buckets were 2x wide.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	quantiles := []float64{0.5, 0.9, 0.99, 0.999}
	for trial := 0; trial < 30; trial++ {
		n := 1000 + rng.Intn(9000)
		samples := make([]int64, n)
		var h Hist
		for i := range samples {
			// Mix scales so the tail spans several powers of two.
			v := rng.Int63n(1 << uint(4+rng.Intn(28)))
			samples[i] = v
			h.Add(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range quantiles {
			target := int(q * float64(n))
			if target == 0 {
				target = 1
			}
			exact := samples[target-1] // q-quantile as an order statistic
			got := h.Quantile(q)
			if got < exact {
				t.Fatalf("trial %d: Quantile(%v) = %d below exact %d", trial, q, got, exact)
			}
			slack := exact/16 + 1
			if got > exact+slack {
				t.Fatalf("trial %d: Quantile(%v) = %d exceeds exact %d by more than 1/16 (+%d)",
					trial, q, got, exact, got-exact)
			}
		}
	}
}

// TestBucketLayout checks the bucket index/bound functions are mutually
// consistent and tile the value range without gaps.
func TestBucketLayout(t *testing.T) {
	for v := int64(0); v < 1<<14; v++ {
		i := bucketOf(v)
		if hi := bucketHi(i); v > hi {
			t.Fatalf("value %d lands in bucket %d whose upper bound %d is below it", v, i, hi)
		}
		if i > 0 {
			if lo := bucketHi(i-1) + 1; v < lo {
				t.Fatalf("value %d lands in bucket %d starting above it (%d)", v, i, lo)
			}
		}
	}
	if got := bucketOf(int64(^uint64(0) >> 1)); got != histBuckets-1 {
		t.Fatalf("max int64 lands in bucket %d, want %d", got, histBuckets-1)
	}
}

func TestSnapshotFields(t *testing.T) {
	var h Hist
	for _, v := range []int64{1000, 2000, 3000, 4000} {
		h.Add(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.MinUs != 1.0 || s.MaxUs != 4.0 {
		t.Errorf("snapshot summary wrong: %+v", s)
	}
	if s.MeanUs != 2.5 {
		t.Errorf("snapshot mean = %v, want 2.5", s.MeanUs)
	}
	if s.P50Us <= 0 || s.P95Us < s.P50Us || s.P99Us < s.P95Us {
		t.Errorf("snapshot quantiles not monotone: %+v", s)
	}
}
