package metrics

import (
	"math/rand"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var h Hist
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", h.Mean())
	}
}

func TestQuantileSingle(t *testing.T) {
	var h Hist
	h.Add(1500)
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		// With one sample every quantile is that sample; the histogram may
		// only bound it, but Max clamping makes it exact here.
		if got := h.Quantile(q); got != 1500 {
			t.Errorf("single Quantile(%v) = %d, want 1500", q, got)
		}
	}
	if h.Min != 1500 || h.Max != 1500 || h.N != 1 {
		t.Errorf("single-sample summary wrong: %+v", h)
	}
}

func TestQuantileZero(t *testing.T) {
	var h Hist
	h.Add(0)
	h.Add(0)
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("all-zero Quantile(0.99) = %d, want 0", got)
	}
}

// TestQuantileDuplicateHeavy puts nearly all mass on one value: every
// quantile must land in that value's bucket, not drift to the outlier.
func TestQuantileDuplicateHeavy(t *testing.T) {
	var h Hist
	for i := 0; i < 999; i++ {
		h.Add(1000)
	}
	h.Add(1 << 20)
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	// Bucket bounds: 1000 lies in [512, 1024), so the upper bound is 1023.
	if p50 != 1023 || p99 != 1023 {
		t.Errorf("duplicate-heavy p50=%d p99=%d, want both 1023", p50, p99)
	}
	if got := h.Quantile(1); got != 1<<20 {
		t.Errorf("p100 = %d, want the outlier %d", got, 1<<20)
	}
}

func TestQuantileUpperBound(t *testing.T) {
	var h Hist
	for v := int64(1); v <= 4096; v *= 2 {
		h.Add(v)
	}
	// A quantile is an upper bound: at least floor(q*N) samples (min 1)
	// lie at or below it.
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
		bound := h.Quantile(q)
		var below uint64
		for v := int64(1); v <= 4096; v *= 2 {
			if v <= bound {
				below++
			}
		}
		target := uint64(q * float64(h.N))
		if target == 0 {
			target = 1
		}
		if below < target {
			t.Errorf("Quantile(%v)=%d covers only %d/%d samples, want >= %d",
				q, bound, below, h.N, target)
		}
	}
}

// TestMergeCommutative is the property test for Hist.Merge: folding a set
// of histograms in any order yields identical state, and merging matches
// adding every sample to one histogram directly.
func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		parts := make([]*Hist, 1+rng.Intn(5))
		var direct Hist
		for i := range parts {
			parts[i] = &Hist{}
			for k := rng.Intn(20); k > 0; k-- {
				v := rng.Int63n(1 << uint(rng.Intn(40)))
				parts[i].Add(v)
				direct.Add(v)
			}
		}
		var forward, backward Hist
		for _, p := range parts {
			forward.Merge(p)
		}
		for i := len(parts) - 1; i >= 0; i-- {
			backward.Merge(parts[i])
		}
		if forward != backward {
			t.Fatalf("trial %d: merge order changed the result", trial)
		}
		if direct.N > 0 && forward != direct {
			t.Fatalf("trial %d: merged state differs from direct accumulation:\n%+v\n%+v",
				trial, forward, direct)
		}
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	var h Hist
	h.Add(5)
	before := h
	h.Merge(nil)
	h.Merge(&Hist{})
	if h != before {
		t.Errorf("merging nil/empty changed the histogram")
	}
	var empty Hist
	empty.Merge(&before)
	if empty != before {
		t.Errorf("merge into empty = %+v, want %+v", empty, before)
	}
}

func TestSnapshotFields(t *testing.T) {
	var h Hist
	for _, v := range []int64{1000, 2000, 3000, 4000} {
		h.Add(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.MinUs != 1.0 || s.MaxUs != 4.0 {
		t.Errorf("snapshot summary wrong: %+v", s)
	}
	if s.MeanUs != 2.5 {
		t.Errorf("snapshot mean = %v, want 2.5", s.MeanUs)
	}
	if s.P50Us <= 0 || s.P95Us < s.P50Us || s.P99Us < s.P95Us {
		t.Errorf("snapshot quantiles not monotone: %+v", s)
	}
}
