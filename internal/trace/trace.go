// Package trace defines the simulator's observability layer: a pluggable
// Tracer interface that receives one Event per interesting occurrence in
// the discrete-event engine (event scheduled/fired, process park/unpark,
// resource acquire/release, queue enqueue/dequeue, proxy poll iterations,
// RMA/RQ operation submit/complete) and a small set of Tracer
// implementations — an in-memory recorder, a streaming digest for
// golden-trace regression tests, a line writer, and a fan-out.
//
// The package is deliberately free of dependencies on the sim package so
// that sim can emit into it without an import cycle; simulated times cross
// the boundary as int64 nanoseconds.
//
// A nil Tracer costs one predicted branch on the hot path: emit sites are
// guarded by a nil check before the Event is even composed (benchmarked in
// internal/sim: BenchmarkNilTracer vs BenchmarkRecordingTracer).
package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// KSchedule: an event was pushed onto the engine's event heap.
	// Arg is the scheduling delay in nanoseconds.
	KSchedule Kind = iota
	// KFire: a scheduled event reached the head of the heap and its
	// callback is about to run. Seq is the event's insertion sequence.
	KFire
	// KSpawn: a simulated process was created. Comp is the process name.
	KSpawn
	// KPark: a process handed control back to the engine. Comp is the
	// process name.
	KPark
	// KUnpark: a parked process resumed. Comp is the process name.
	KUnpark
	// KProcEnd: a process body returned (or was reaped at shutdown).
	// Comp is the process name; Arg is 1 when the process was killed.
	KProcEnd
	// KAcquire: a FIFO resource was seized. Comp is the resource name;
	// Arg is the time spent waiting in its queue, in nanoseconds.
	KAcquire
	// KRelease: a FIFO resource was freed. Comp is the resource name;
	// Arg is the hold duration in nanoseconds.
	KRelease
	// KEnqueue: an item was put on a blocking queue. Comp is the queue
	// name; Arg is the queue length after the put.
	KEnqueue
	// KDequeue: an item was taken from a blocking queue. Comp is the
	// queue name; Arg is the queue length after the take.
	KDequeue
	// KPoll: a communication agent picked up a work item (one turn of
	// the proxy dispatch loop of the paper's Figure 5). Comp is the
	// agent name; Arg is the item's wait between submit and service
	// start, in nanoseconds.
	KPoll
	// KScan: the proxy's command-queue scanner finished one scan pass.
	// Comp is the scanner name; Arg packs the pass's bit-vector word
	// probes (high 32 bits) and queue-head checks (low 31 bits), with
	// bit 31 set when the pass dequeued a command.
	KScan
	// KOpSubmit: an RMA/RQ operation was submitted at an endpoint.
	// Comp is the operation kind (PUT/GET/ENQ/DEQ); Arg is the payload
	// size in bytes.
	KOpSubmit
	// KOpDone: an RMA/RQ operation deposited its data at the
	// destination. Comp is the operation kind; Arg is the one-way
	// latency in nanoseconds.
	KOpDone
	// KDrop: the fault plane discarded a packet in flight. Comp is the
	// link name; Arg is the link-local packet sequence number.
	KDrop
	// KCorrupt: a packet arrived with payload damage and failed its CRC
	// check, so the receiver discarded it. Comp is the flow or link
	// name; Arg is the frame sequence (or link packet sequence).
	KCorrupt
	// KRetransmit: the reliable transport re-sent an unacknowledged
	// frame after a timeout. Comp is the flow name; Arg is the frame
	// sequence number.
	KRetransmit
	// KAck: the reliable transport sent a standalone acknowledgment
	// (piggybacked acks do not produce events). Comp is the flow name;
	// Arg is the cumulative ack sequence.
	KAck
	// KLinkDown: a packet was lost to a link-down window. Comp is the
	// link name; Arg is the link-local packet sequence number.
	KLinkDown
	// KStall: the fault plane stalled a communication agent (a proxy
	// hiccup or crash/restart window). Comp is the agent name; Arg is
	// the stall duration in nanoseconds.
	KStall

	// NumKinds is the number of event kinds.
	NumKinds = int(KStall) + 1
)

var kindNames = [NumKinds]string{
	"schedule", "fire", "spawn", "park", "unpark", "proc-end",
	"acquire", "release", "enqueue", "dequeue", "poll", "scan",
	"op-submit", "op-done", "drop", "corrupt", "retransmit", "ack",
	"link-down", "stall",
}

func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ScanArg packs a scan pass's statistics into a KScan Arg.
func ScanArg(probes, headChecks int64, found bool) int64 {
	arg := probes<<32 | (headChecks & 0x7fffffff)
	if found {
		arg |= 1 << 31
	}
	return arg
}

// ScanSample is one decoded KScan pass: how many bit-vector words the
// scanner probed, how many queue heads it touched (the cache-miss-prone
// part), and whether the pass dequeued a command.
type ScanSample struct {
	Probes     int64
	HeadChecks int64
	Found      bool
}

// DecodeScanArg unpacks a KScan Arg into a ScanSample. It is the single
// decoder for the packed word built by ScanArg; consumers (metrics, span
// assembly) must use it rather than re-implementing the bit layout.
func DecodeScanArg(arg int64) ScanSample {
	return ScanSample{
		Probes:     arg >> 32,
		HeadChecks: arg & 0x7fffffff,
		Found:      arg&(1<<31) != 0,
	}
}

// ScanStats unpacks a KScan Arg.
func ScanStats(arg int64) (probes, headChecks int64, found bool) {
	s := DecodeScanArg(arg)
	return s.Probes, s.HeadChecks, s.Found
}

// Event is one occurrence in a simulation run.
type Event struct {
	At   int64  // simulated time, nanoseconds
	Seq  uint64 // engine event sequence at record time
	Kind Kind
	Comp string // component: process, resource, queue, agent, or op kind
	Arg  int64  // kind-specific detail (see Kind constants)
}

func (ev Event) String() string {
	return fmt.Sprintf("%dns #%d %s %s %d", ev.At, ev.Seq, ev.Kind, ev.Comp, ev.Arg)
}

// Tracer receives events. Implementations are invoked from engine and
// simulated-process context — exactly one goroutine at a time, serialized
// by the engine's handoff — so they need no internal locking unless they
// are shared across concurrently running engines.
type Tracer interface {
	Record(Event)
}

// BatchTracer is a Tracer that can accept events in batches. The engine
// detects it and stages events in a small per-engine buffer, turning one
// interface call per occurrence into one per batch; RecordBatch receives
// the events in exactly the order Record would have.
//
// Implementations must consume the slice before returning — the caller
// reuses its backing array. Only tracers that fold events into their own
// state (digest, recorder, writer) should implement it; tracers that read
// live simulation state per event (the timeline sampler closes utilization
// windows by querying resources at record time) must NOT, because batching
// would delay their reads past the state they need to observe.
type BatchTracer interface {
	Tracer
	RecordBatch([]Event)
}

// Recorder keeps events in memory, up to Limit (unbounded when zero).
type Recorder struct {
	// Limit caps the number of retained events; further events are
	// counted in Dropped but not stored.
	Limit   int
	events  []Event
	dropped uint64
}

// Record implements Tracer.
func (r *Recorder) Record(ev Event) {
	if r.Limit > 0 && len(r.events) >= r.Limit {
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// RecordBatch implements BatchTracer, honoring Limit exactly as a
// per-event Record sequence would.
func (r *Recorder) RecordBatch(evs []Event) {
	if r.Limit > 0 {
		if room := r.Limit - len(r.events); room < len(evs) {
			if room < 0 {
				room = 0
			}
			r.dropped += uint64(len(evs) - room)
			evs = evs[:room]
		}
	}
	r.events = append(r.events, evs...)
}

// Events returns the retained events in record order.
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns the number of events discarded over Limit.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Reset discards all retained events.
func (r *Recorder) Reset() { r.events = r.events[:0]; r.dropped = 0 }

// Digest folds the event stream into a SHA-256 hash. Two runs produce the
// same digest if and only if they emitted an identical event sequence —
// the property the golden-trace regression harness locks down.
type Digest struct {
	h     hash.Hash
	n     uint64
	buf   []byte
	atMax int64
}

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{h: sha256.New()} }

// Record implements Tracer, folding the event into the hash.
func (d *Digest) Record(ev Event) {
	d.n++
	if ev.At > d.atMax {
		d.atMax = ev.At
	}
	d.buf = d.buf[:0]
	d.buf = binary.LittleEndian.AppendUint64(d.buf, uint64(ev.At))
	d.buf = binary.LittleEndian.AppendUint64(d.buf, ev.Seq)
	d.buf = append(d.buf, byte(ev.Kind))
	d.buf = binary.LittleEndian.AppendUint64(d.buf, uint64(ev.Arg))
	d.buf = binary.LittleEndian.AppendUint64(d.buf, uint64(len(ev.Comp)))
	d.buf = append(d.buf, ev.Comp...)
	d.h.Write(d.buf)
}

// RecordBatch implements BatchTracer: the whole batch is serialized into
// one reused buffer and folded with a single hash write. The resulting
// digest is identical to per-event Record calls — the serialization is a
// plain concatenation of the per-event encodings.
func (d *Digest) RecordBatch(evs []Event) {
	d.buf = d.buf[:0]
	for _, ev := range evs {
		d.n++
		if ev.At > d.atMax {
			d.atMax = ev.At
		}
		d.buf = binary.LittleEndian.AppendUint64(d.buf, uint64(ev.At))
		d.buf = binary.LittleEndian.AppendUint64(d.buf, ev.Seq)
		d.buf = append(d.buf, byte(ev.Kind))
		d.buf = binary.LittleEndian.AppendUint64(d.buf, uint64(ev.Arg))
		d.buf = binary.LittleEndian.AppendUint64(d.buf, uint64(len(ev.Comp)))
		d.buf = append(d.buf, ev.Comp...)
	}
	d.h.Write(d.buf)
}

// Sum returns the hex digest of the stream so far.
func (d *Digest) Sum() string { return fmt.Sprintf("%x", d.h.Sum(nil)) }

// Count returns the number of events folded in.
func (d *Digest) Count() uint64 { return d.n }

// LastAt returns the largest event timestamp seen, in nanoseconds.
func (d *Digest) LastAt() int64 { return d.atMax }

// Writer streams one line per event to an io.Writer, for interactive
// inspection of why a latency number changed.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter returns a Tracer that prints events to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Record implements Tracer. The first write error sticks and silences
// further output.
func (t *Writer) Record(ev Event) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintln(t.w, ev.String())
}

// RecordBatch implements BatchTracer.
func (t *Writer) RecordBatch(evs []Event) {
	for _, ev := range evs {
		t.Record(ev)
	}
}

// Err returns the first write error, if any.
func (t *Writer) Err() error { return t.err }

type multi []Tracer

func (m multi) Record(ev Event) {
	for _, t := range m {
		t.Record(ev)
	}
}

// batchMulti is the fan-out used when every child is batch-capable, so
// the whole fan-out stays on the engine's batched path.
type batchMulti []BatchTracer

func (m batchMulti) Record(ev Event) {
	for _, t := range m {
		t.Record(ev)
	}
}

func (m batchMulti) RecordBatch(evs []Event) {
	for _, t := range m {
		t.RecordBatch(evs)
	}
}

// Multi fans events out to several tracers. Nil entries are skipped; with
// zero live tracers it returns nil so emit sites keep their fast path.
// When every live tracer is a BatchTracer the fan-out is one too; a single
// non-batching child (e.g. the timeline sampler, which must observe live
// state per event) keeps the whole fan-out synchronous.
func Multi(ts ...Tracer) Tracer {
	var live multi
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	batched := make(batchMulti, 0, len(live))
	for _, t := range live {
		bt, ok := t.(BatchTracer)
		if !ok {
			return live
		}
		batched = append(batched, bt)
	}
	return batched
}
