package am

import (
	"testing"

	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/machine"
	"mproxy/internal/sim"
)

// build creates an n-rank cluster (one processor per node) with an AM layer.
func build(n int, a arch.Params) (*sim.Engine, *comm.Fabric, *Layer) {
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: n, ProcsPerNode: 1}, a)
	f := comm.New(cl)
	return eng, f, New(f)
}

func spawn(eng *sim.Engine, f *comm.Fabric, l *Layer, rank int, body func(p *Port)) {
	eng.Spawn("rank", func(sp *sim.Proc) {
		f.Endpoint(rank).Bind(sp)
		body(l.Port(rank))
	})
}

func TestRequestReply(t *testing.T) {
	for _, a := range arch.All {
		t.Run(a.Name, func(t *testing.T) {
			eng, f, l := build(2, a)
			var gotArgs []int64
			replied := false
			var hEcho, hDone int
			hDone = l.Register(func(p *Port, src int, args []int64, _ []byte) {
				replied = true
			})
			hEcho = l.Register(func(p *Port, src int, args []int64, _ []byte) {
				gotArgs = append([]int64(nil), args...)
				p.Reply(src, hDone, args[0]*2)
			})
			spawn(eng, f, l, 0, func(p *Port) {
				p.Request(1, hEcho, 21, 7)
				p.WaitUntil(func() bool { return replied })
			})
			spawn(eng, f, l, 1, func(p *Port) {
				p.WaitUntil(func() bool { return len(gotArgs) > 0 })
			})
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			if len(gotArgs) != 2 || gotArgs[0] != 21 || gotArgs[1] != 7 {
				t.Fatalf("args = %v", gotArgs)
			}
			if !replied {
				t.Fatal("no reply")
			}
		})
	}
}

func TestSelfSendDeliveredThroughQueue(t *testing.T) {
	eng, f, l := build(2, arch.MP1)
	count := 0
	h := l.Register(func(p *Port, src int, args []int64, _ []byte) {
		if src != 0 {
			t.Errorf("src = %d", src)
		}
		count++
	})
	spawn(eng, f, l, 0, func(p *Port) {
		p.Request(0, h, 1)
		p.Request(0, h, 2)
		if n := p.PollAll(); n != 2 {
			t.Errorf("PollAll = %d", n)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
	if f.Stats().TotalOps() != 0 {
		t.Fatal("self-send generated network traffic")
	}
}

func TestPayloadDelivery(t *testing.T) {
	eng, f, l := build(2, arch.HW1)
	var got []byte
	h := l.Register(func(p *Port, src int, args []int64, payload []byte) {
		got = append([]byte(nil), payload...)
	})
	spawn(eng, f, l, 0, func(p *Port) {
		p.Send(1, h, []int64{int64(3)}, []byte("key-batch-data"))
	})
	spawn(eng, f, l, 1, func(p *Port) {
		p.WaitUntil(func() bool { return got != nil })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "key-batch-data" {
		t.Fatalf("payload = %q", got)
	}
}

func TestStoreDataVisibleBeforeHandler(t *testing.T) {
	// am_store: the completion handler must observe the deposited data,
	// on every architecture (this exercises the FIFO deposit guarantee).
	for _, a := range arch.All {
		t.Run(a.Name, func(t *testing.T) {
			for _, n := range []int{64, 3 * 4096} { // PIO and DMA paths
				eng, f, l := build(2, a)
				reg := f.Registry()
				src := reg.NewSegment(0, n)
				dst := reg.NewSegment(1, n)
				dst.Grant(0)
				for i := range src.Data {
					src.Data[i] = byte(i%251 + 1)
				}
				ok := false
				h := l.Register(func(p *Port, s int, args []int64, _ []byte) {
					ok = true
					for i := range dst.Data {
						if dst.Data[i] != byte(i%251+1) {
							t.Errorf("n=%d: handler ran before byte %d deposited", n, i)
							return
						}
					}
				})
				spawn(eng, f, l, 0, func(p *Port) {
					p.Store(1, src.Addr(0), dst.Addr(0), n, h, int64(n))
				})
				spawn(eng, f, l, 1, func(p *Port) {
					p.WaitUntil(func() bool { return ok })
				})
				if err := eng.Run(); err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("n=%d: handler never ran", n)
				}
			}
		})
	}
}

func TestPollNonBlocking(t *testing.T) {
	eng, f, l := build(2, arch.MP2)
	hits := 0
	h := l.Register(func(p *Port, src int, args []int64, _ []byte) { hits++ })
	spawn(eng, f, l, 0, func(p *Port) {
		if p.Poll() {
			t.Error("poll on empty queue returned true")
		}
		p.Request(1, h)
		p.Request(1, h)
		p.Request(1, h)
	})
	spawn(eng, f, l, 1, func(p *Port) {
		p.Endpoint().Compute(sim.Micros(200)) // let messages accumulate
		if n := p.PollAll(); n != 3 {
			t.Errorf("PollAll = %d", n)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 3 {
		t.Fatalf("hits = %d", hits)
	}
	if l.Port(1).Delivered() != 3 {
		t.Fatalf("delivered = %d", l.Port(1).Delivered())
	}
}

func TestUnknownHandlerPanics(t *testing.T) {
	eng, f, l := build(2, arch.MP1)
	spawn(eng, f, l, 0, func(p *Port) {
		p.Request(1, 99)
	})
	if err := eng.Run(); err == nil {
		t.Fatal("expected failure for unknown handler")
	}
}

func TestF2IRoundTrip(t *testing.T) {
	for _, x := range []float64{0, 1.5, -3.25e10, 1e-300} {
		if I2F(F2I(x)) != x {
			t.Fatalf("round trip failed for %v", x)
		}
	}
}

func TestManyToOneRequests(t *testing.T) {
	// Four ranks bombard rank 0; all messages must arrive exactly once.
	const n = 4
	eng, f, l := build(n, arch.MP1)
	got := map[int64]int{}
	h := l.Register(func(p *Port, src int, args []int64, _ []byte) {
		got[args[0]]++
	})
	for r := 1; r < n; r++ {
		r := r
		spawn(eng, f, l, r, func(p *Port) {
			for i := 0; i < 10; i++ {
				p.Request(0, h, int64(r*100+i))
			}
		})
	}
	spawn(eng, f, l, 0, func(p *Port) {
		seen := 0
		p.WaitUntil(func() bool {
			seen = 0
			for _, c := range got {
				seen += c
			}
			return seen == 30
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		for i := 0; i < 10; i++ {
			if got[int64(r*100+i)] != 1 {
				t.Fatalf("message %d delivered %d times", r*100+i, got[int64(r*100+i)])
			}
		}
	}
}
