// Package am implements an Active Message layer on top of the RMA and RQ
// primitives, as in Section 5.1 of the paper: am_request and am_reply
// records are ENQ'd into per-process remote queues, and bulk transfers
// (am_store, am_get) combine a PUT with an ENQ of a completion handler that
// fires at the remote end once the data has landed.
package am

import (
	"encoding/binary"
	"fmt"
	"math"

	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
)

// Handler is an active-message handler. It runs on the destination process
// when the message is polled, with the sender's rank, the small argument
// words, and any payload bytes.
type Handler func(p *Port, src int, args []int64, payload []byte)

// Layer is the cluster-wide active-message state: the handler table
// (identical on every rank, SPMD style) and one message queue per rank.
type Layer struct {
	f        *comm.Fabric
	handlers []Handler
	// taskHandlers parallels handlers: a handler id resolves to exactly
	// one of the two tables, depending on whether it was registered for
	// blocking-poll or run-to-completion dispatch (see task.go).
	taskHandlers []TaskHandler
	queues       []*memory.RQueue
	refs         []memory.QueueRef
	ports        []*Port
}

// New builds the layer over a fabric, allocating each rank's message queue
// and granting every rank permission to enqueue into it.
func New(f *comm.Fabric) *Layer {
	n := len(f.Cl.CPUs)
	l := &Layer{f: f}
	for rank := 0; rank < n; rank++ {
		q := f.Registry().NewQueue(rank)
		q.GrantWorld()
		l.queues = append(l.queues, q)
		l.refs = append(l.refs, memory.QueueRef{Owner: rank, ID: q.ID})
		l.ports = append(l.ports, &Port{l: l, rank: rank, ep: f.Endpoint(rank)})
	}
	return l
}

// Register adds a handler to the table and returns its id. All handlers
// must be registered before communication starts.
func (l *Layer) Register(h Handler) int {
	l.handlers = append(l.handlers, h)
	l.taskHandlers = append(l.taskHandlers, nil)
	return len(l.handlers) - 1
}

// Port returns rank's active-message endpoint.
func (l *Layer) Port(rank int) *Port { return l.ports[rank] }

// Fabric returns the communication fabric the layer runs over.
func (l *Layer) Fabric() *comm.Fabric { return l.f }

// Ranks returns the number of ranks.
func (l *Layer) Ranks() int { return len(l.ports) }

// Port is one process's handle on the active-message layer.
type Port struct {
	l    *Layer
	rank int
	ep   *comm.Endpoint

	delivered int64 // messages dispatched on this port
	// stash hands one record from an empty-queue TakeAsync callback to
	// the parked task serve loop (see task.go).
	stash []byte
}

// Rank returns the port's rank.
func (p *Port) Rank() int { return p.rank }

// Endpoint returns the underlying communication endpoint.
func (p *Port) Endpoint() *comm.Endpoint { return p.ep }

// Delivered returns the number of messages dispatched on this port.
func (p *Port) Delivered() int64 { return p.delivered }

// message wire format: handler id (4 bytes), source rank (4), arg count
// (4), args (8 each), payload (rest).
const msgHeader = 12

func encode(handler, src int, args []int64, payload []byte) []byte {
	buf := make([]byte, msgHeader+8*len(args)+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(handler))
	binary.LittleEndian.PutUint32(buf[4:], uint32(src))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(args)))
	for i, a := range args {
		binary.LittleEndian.PutUint64(buf[msgHeader+8*i:], uint64(a))
	}
	copy(buf[msgHeader+8*len(args):], payload)
	return buf
}

func decode(rec []byte) (handler, src int, args []int64, payload []byte) {
	handler = int(binary.LittleEndian.Uint32(rec[0:]))
	src = int(binary.LittleEndian.Uint32(rec[4:]))
	nargs := int(binary.LittleEndian.Uint32(rec[8:]))
	args = make([]int64, nargs)
	for i := range args {
		args[i] = int64(binary.LittleEndian.Uint64(rec[msgHeader+8*i:]))
	}
	payload = rec[msgHeader+8*nargs:]
	return
}

// Request sends an active message to dst. Self-sends dispatch locally.
func (p *Port) Request(dst, handler int, args ...int64) {
	p.Send(dst, handler, args, nil)
}

// Reply is Request under its traditional name for use inside handlers.
func (p *Port) Reply(dst, handler int, args ...int64) {
	p.Send(dst, handler, args, nil)
}

// Send sends an active message with both argument words and a payload.
func (p *Port) Send(dst, handler int, args []int64, payload []byte) {
	if handler < 0 || handler >= len(p.l.handlers) {
		panic(fmt.Sprintf("am: rank %d sends unknown handler %d", p.rank, handler))
	}
	// Marshal the request record (touches a fresh buffer line).
	a := p.l.f.A
	p.ep.Compute(a.Instr(1.5) + a.CacheMiss)
	rec := encode(handler, p.rank, args, payload)
	if dst == p.rank {
		// Local delivery still goes through the message queue: handlers
		// must never run nested inside the sender (a handler that sends to
		// itself would otherwise observe half-completed state — the
		// classic active-message atomicity rule).
		p.ep.Compute(a.CacheMiss)
		p.l.queues[p.rank].Deliver(rec)
		return
	}
	if err := p.ep.EnqBytes(rec, p.l.refs[dst], memory.FlagRef{}); err != nil {
		panic(fmt.Sprintf("am: rank %d -> %d: %v", p.rank, dst, err))
	}
}

// Store performs an active-message bulk store (am_store): PUT the data into
// the destination's memory, then ENQ a completion message that invokes
// handler at dst once the data has landed. The PUT's rsync and the
// completion message ride the same FIFO channel, so the handler observes
// the deposited data.
func (p *Port) Store(dst int, local, remote memory.Addr, n int, handler int, args ...int64) {
	if err := p.ep.Put(local, remote, n, memory.FlagRef{}, memory.FlagRef{}); err != nil {
		panic(fmt.Sprintf("am: store rank %d -> %d: %v", p.rank, dst, err))
	}
	p.Send(dst, handler, args, nil)
}

// Pending returns the number of records waiting in the port's message
// queue — the depth a newly dispatched request found behind itself.
func (p *Port) Pending() int { return p.l.queues[p.rank].Len() }

// RecordBytes returns the wire size of an active-message record with
// nargs argument words and payload bytes: the AM header plus args plus
// payload. The network adds comm.HeaderSize per packet on top.
func RecordBytes(nargs, payload int) int { return msgHeader + 8*nargs + payload }

// Poll dispatches one pending message, if any. Returns whether a message
// was processed.
func (p *Port) Poll() bool {
	rec, ok := p.ep.TryRecv(p.l.queues[p.rank])
	if !ok {
		return false
	}
	p.ep.Compute(p.signalCost())
	h, src, args, payload := decode(rec)
	p.dispatch(h, src, args, payload)
	return true
}

// signalCost is the per-wakeup kernel signal delivered to an unbatched
// receiver under SW; batched drains (PollAll) pay it once in DrainStart.
func (p *Port) signalCost() sim.Time {
	a := p.l.f.A
	if a.Kind == arch.Syscall {
		return a.InterruptOvh
	}
	return 0
}

// PollAll dispatches all pending messages and returns how many ran. The
// drain is batched: the per-batch receive cost (a kernel crossing under
// SW) is paid once, then each record costs only its cache misses.
func (p *Port) PollAll() int {
	q := p.l.queues[p.rank]
	if !p.ep.DrainStart(q) {
		return 0
	}
	n := 0
	for {
		rec, ok := p.ep.TryRecvBatched(q)
		if !ok {
			return n
		}
		h, src, args, payload := decode(rec)
		p.dispatch(h, src, args, payload)
		n++
	}
}

// ServeOne blocks until a message arrives and dispatches it.
func (p *Port) ServeOne() {
	rec := p.ep.Recv(p.l.queues[p.rank])
	p.ep.Compute(p.signalCost())
	h, src, args, payload := decode(rec)
	p.dispatch(h, src, args, payload)
}

// WaitUntil serves messages until cond becomes true. cond is checked after
// every dispatched message (handlers are the only thing that can change
// the condition while the process is blocked here).
func (p *Port) WaitUntil(cond func() bool) {
	for !cond() {
		p.ServeOne()
	}
}

func (p *Port) dispatch(handler, src int, args []int64, payload []byte) {
	// Decode the record, walk the handler table, and set up the handler
	// frame: the queue-pop misses were charged by Recv; this is the rest
	// of the handler-invocation cost the paper's AM latency includes
	// (latencies are higher than PUT/GET "because it involves handler
	// invocation on processors at both ends").
	a := p.l.f.A
	n := msgHeader + 8*len(args) + len(payload)
	p.ep.Compute(a.Instr(2.0) + 2*a.CacheMiss + arch.XferTime(n, a.PIOBW))
	p.delivered++
	h := p.l.handlers[handler]
	if h == nil {
		panic(fmt.Sprintf("am: handler %d is task-registered; it cannot run from a blocking poll", handler))
	}
	h(p, src, args, payload)
}

// F2I and I2F pass float64 argument words through int64 argument slots.
func F2I(x float64) int64 { return int64(math.Float64bits(x)) }

// I2F recovers a float64 from an argument word.
func I2F(x int64) float64 { return math.Float64frombits(uint64(x)) }
