package am

import (
	"fmt"

	"mproxy/internal/arch"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
)

// Run-to-completion active messaging. The serving workloads run clients
// and servers as sim.Tasks; this file is the AM layer's task-side
// surface: SendTask submits a message in continuation-passing style, and
// ServeWhileTask turns a task into the port's message loop. Handlers
// registered for task dispatch receive the serving task and a
// continuation they must invoke exactly once — which lets a KV handler
// chain further sends (a reply, replication fan-out) before yielding the
// loop. Cost accounting matches the blocking API line for line.

// TaskHandler is an active-message handler dispatched on a
// run-to-completion serve loop. It must call k exactly once when its
// work (including any chained sends) is submitted.
type TaskHandler func(p *Port, t *sim.Task, src int, args []int64, payload []byte, k func())

// RegisterTask adds a task-dispatched handler to the table and returns
// its id. Ids share one space with Register's: a message addressed to a
// task handler must be consumed by ServeWhileTask, not a blocking poll.
func (l *Layer) RegisterTask(h TaskHandler) int {
	l.handlers = append(l.handlers, nil)
	l.taskHandlers = append(l.taskHandlers, h)
	return len(l.taskHandlers) - 1
}

// SendTask is Send for a run-to-completion caller: k runs when the
// message has been submitted (local deliveries complete first).
func (p *Port) SendTask(t *sim.Task, dst, handler int, args []int64, payload []byte, k func()) {
	if handler < 0 || handler >= len(p.l.handlers) {
		panic(fmt.Sprintf("am: rank %d sends unknown handler %d", p.rank, handler))
	}
	a := p.l.f.A
	p.ep.CPU().ComputeTask(t, a.Instr(1.5)+a.CacheMiss, func() {
		rec := encode(handler, p.rank, args, payload)
		if dst == p.rank {
			// Queue-mediated like Send: self-sends must not run nested.
			p.ep.CPU().ComputeTask(t, a.CacheMiss, func() {
				p.l.queues[p.rank].Deliver(rec)
				k()
			})
			return
		}
		if err := p.ep.EnqBytesTask(t, rec, p.l.refs[dst], memory.FlagRef{}, k); err != nil {
			panic(fmt.Sprintf("am: rank %d -> %d: %v", p.rank, dst, err))
		}
	})
}

// ServeWhileTask turns t into the port's message loop: every arriving
// record is dispatched to its task handler, and done is checked after
// each dispatch — when it reports true the loop returns and the task
// ends. A server that never finishes passes a false-returning done and
// is spawned as a daemon. The port's queue must have exactly one
// consumer.
func (p *Port) ServeWhileTask(t *sim.Task, done func() bool) {
	p.serveStep(t, done)
}

func (p *Port) serveStep(t *sim.Task, done func() bool) {
	q := p.l.queues[p.rank]
	rec, ok := q.TryTake()
	if !ok {
		eng := p.ep.Node().Eng // the queue's records arrive in the owner node's event context
		q.TakeAsync(func(r []byte) {
			p.stash = r
			eng.WakeTask(t)
		})
		t.Park(func() {
			rec := p.stash
			p.stash = nil
			p.dispatchTask(t, rec, done)
		})
		return
	}
	p.dispatchTask(t, rec, done)
}

// dispatchTask charges the receive-side costs (queue pop plus handler
// invocation, as Recv + dispatch would) and runs the task handler, whose
// continuation loops or finishes the serve.
func (p *Port) dispatchTask(t *sim.Task, rec []byte, done func() bool) {
	h, src, args, payload := decode(rec)
	a := p.l.f.A
	n := msgHeader + 8*len(args) + len(payload)
	cost := p.l.f.RecvCost() + a.Instr(2.0) + 2*a.CacheMiss + arch.XferTime(n, a.PIOBW)
	p.ep.CPU().ComputeTask(t, cost, func() {
		p.delivered++
		th := p.l.taskHandlers[h]
		if th == nil {
			panic(fmt.Sprintf("am: handler %d is poll-registered; it cannot run on a task serve loop", h))
		}
		th(p, t, src, args, payload, func() {
			if done() {
				return
			}
			p.serveStep(t, done)
		})
	})
}
