// Package bench is the repository's benchmark-gated performance harness:
// a fixed suite of engine and end-to-end measurements emitted in a stable
// JSON schema ("mproxy-bench/v1") that CI diffs against the checked-in
// BENCH_*.json baseline. The suite is hand-rolled rather than built on
// testing.B so it can run inside the mproxy CLI with fixed, reproducible
// operation counts; allocation figures come from runtime.MemStats deltas
// around each measured region and are exact (per-op noise is amortized
// over millions of operations).
//
// The north-star metric is engine-events: the same-timestamp schedule/fire
// chain that every process handoff in the simulator reduces to. The
// end-to-end rows (pingpong-e2e, figure8-small) tie engine-level wins to
// experiment wall-clock, so an "optimization" that speeds the microloop
// while slowing real runs is caught in the same suite.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"mproxy/internal/apps/registry"
	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
	"mproxy/internal/trace/flight"
	"mproxy/internal/workload"
	"mproxy/internal/workload/openloop"
)

// Schema identifies the Suite JSON layout. Bump only with a migration in
// Compare; CI parses strictly and rejects unknown schemas.
const Schema = "mproxy-bench/v1"

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Ops         int64   `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Suite is a full harness run.
type Suite struct {
	Schema string `json:"schema"`
	// Quick marks a reduced-op-count run (CI shards); per-op figures are
	// comparable across quick and full runs, totals are not.
	Quick   bool     `json:"quick"`
	Results []Result `json:"results"`
}

// Options configures a harness run.
type Options struct {
	// Quick trims the end-to-end rows (fewer pingpong round trips, test
	// scale for figure8) for CI latency; the engine microbenchmarks keep
	// full counts so their per-op figures stay gateable against a full-run
	// baseline.
	Quick bool
}

// Run executes the fixed suite and returns its results in suite order.
func Run(opt Options) (Suite, error) {
	s := Suite{Schema: Schema, Quick: opt.Quick}
	type bm struct {
		name string
		ops  int64 // full-run count
		qops int64 // -quick count; 0 means same as full
		fn   func(ops int64) error
	}
	// The microbenchmark rows keep full counts under -quick: they cost
	// tens of milliseconds each and need that window length (and the same
	// setup-cost amortization) for per-op figures stable enough to gate at
	// 10%. Quick trims the serving sweep and switches figure8 to test
	// scale, which dominate wall-clock.
	suite := []bm{
		{"engine-events", 2_000_000, 0, benchEngineEvents},
		{"engine-timer", 1_000_000, 0, benchEngineTimer},
		{"engine-traced", 1_000_000, 0, benchEngineTraced},
		{"pingpong-e2e", 2_000, 0, benchPingPong},
		{"serving-smoke", 4_000, 1_000, benchServing(nil, 1, "", 0)},
		{"serving-forensics", 4_000, 1_000, benchServing(&flight.Config{}, 1, "", 0)},
		{"serving-proxysched", 4_000, 1_000, benchServing(nil, 2, "steal", 0)},
		{"serving-smoke-par", 4_000, 1_000, benchServing(nil, 1, "", 2)},
		// engine-par-events keeps its full count under -quick: the
		// 1024-node cluster construction is a fixed cost large enough
		// that per-op figures at a reduced request count would not be
		// comparable against the full-run baseline.
		{"engine-par-events", 8_000, 0, benchServingPar()},
		{"figure8-small", 3, 0, benchFigure8(opt.Quick)},
	}
	for _, b := range suite {
		ops := b.ops
		if opt.Quick && b.qops > 0 {
			ops = b.qops
		}
		res, err := measure(b.name, ops, b.fn)
		if err != nil {
			return Suite{}, fmt.Errorf("bench %s: %w", b.name, err)
		}
		s.Results = append(s.Results, res)
	}
	return s, Validate(s)
}

// measureReps is how many times each benchmark runs; the fastest
// repetition is reported. Best-of-N is what keeps the -quick CI shard's
// short measurement windows comparable against the full-run baseline:
// scheduler hiccups and cold caches only ever slow a rep down, so the
// minimum converges on the benchmark's true cost. Five reps (up from
// three) keeps the end-to-end rows' minimum stable on loaded shared
// runners, where a single rep can be 20% off.
const measureReps = 5

// measure runs fn(ops) measureReps times between MemStats snapshots and
// reports the fastest repetition's per-op figures.
func measure(name string, ops int64, fn func(ops int64) error) (Result, error) {
	best := Result{Name: name, Ops: ops}
	for rep := 0; rep < measureReps; rep++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if err := fn(ops); err != nil {
			return Result{}, err
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		r := Result{
			Name:        name,
			Ops:         ops,
			NsPerOp:     float64(wall.Nanoseconds()) / float64(ops),
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
			BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops),
		}
		if wall > 0 {
			r.OpsPerSec = float64(ops) / wall.Seconds()
		}
		if rep == 0 || r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best, nil
}

// benchEngineEvents is the engine event-throughput benchmark: a
// self-rescheduling zero-delay chain, one schedule+fire per op — the
// pattern every Wake/park handoff reduces to.
func benchEngineEvents(ops int64) error {
	e := sim.NewEngine()
	var n int64
	var step func()
	step = func() {
		n++
		if n < ops {
			e.Schedule(0, step)
		}
	}
	e.Schedule(0, step)
	if err := e.Run(); err != nil {
		return err
	}
	if n < ops {
		return fmt.Errorf("ran %d of %d events", n, ops)
	}
	return nil
}

// benchEngineTimer exercises the 4-ary heap: 64 outstanding future events,
// each pop followed by a push at a varying delay.
func benchEngineTimer(ops int64) error {
	const outstanding = 64
	e := sim.NewEngine()
	var n int64
	var step func()
	step = func() {
		n++
		if n+outstanding <= ops {
			e.Schedule(sim.Time(1+n%7), step)
		}
	}
	for i := int64(0); i < outstanding && i < ops; i++ {
		e.Schedule(sim.Time(1+i), step)
	}
	return e.Run()
}

// benchEngineTraced is benchEngineEvents with the golden-trace digest
// installed: schedule + fire + two batched trace events per op.
func benchEngineTraced(ops int64) error {
	e := sim.NewEngine()
	e.SetTracer(trace.NewDigest())
	var n int64
	var step func()
	step = func() {
		n++
		if n < ops {
			e.Schedule(0, step)
		}
	}
	e.Schedule(0, step)
	return e.Run()
}

// benchPingPong is the end-to-end latency path: the golden-trace pingpong
// scenario (64-byte PUTs bounced between two MP1 nodes through command
// queue, proxy scan, wire, and remote deposit), one round trip per op.
func benchPingPong(ops int64) error {
	const n = 64
	a, ok := arch.ByName("MP1")
	if !ok {
		return fmt.Errorf("unknown arch MP1")
	}
	reps := int(ops)
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, a)
	f := comm.New(cl)
	reg := f.Registry()
	b0 := reg.NewSegment(0, n)
	b1 := reg.NewSegment(1, n)
	b0.Grant(1)
	b1.Grant(0)
	ping := reg.NewFlag(1)
	pong := reg.NewFlag(0)
	pingF, _ := reg.Flag(ping)
	pongF, _ := reg.Flag(pong)
	eng.Spawn("pinger", func(p *sim.Proc) {
		ep := f.Endpoint(0)
		ep.Bind(p)
		for i := 0; i < reps; i++ {
			if err := ep.Put(b0.Addr(0), b1.Addr(0), n, memory.FlagRef{}, ping); err != nil {
				panic(err)
			}
			pongF.Wait(p, int64(i+1))
		}
	})
	eng.Spawn("ponger", func(p *sim.Proc) {
		ep := f.Endpoint(1)
		ep.Bind(p)
		for i := 0; i < reps; i++ {
			pingF.Wait(p, int64(i+1))
			if err := ep.Put(b1.Addr(0), b0.Addr(0), n, memory.FlagRef{}, pong); err != nil {
				panic(err)
			}
		}
	})
	return eng.Run()
}

// benchServing measures the open-loop serving stack end-to-end: a small
// MP1 fat-tree cluster under the Poisson generator, one measured request
// per op. The row stacks multi-switch routing, AM dispatch, KV service
// and replication on top of the engine, so a regression anywhere in the
// serving path moves it even when the microloops hold steady. A non-nil
// fcfg turns the flight recorder on (the serving-forensics row), pinning
// the recorder's bounded-overhead contract against the identical
// recorder-off configuration. proxies/sched select the proxy-scheduling
// design point: the serving-proxysched row runs two proxies per node
// under work stealing, so the steal path's cost (idle-proxy victim
// scans, cross-queue AgentMiss charges) is gated alongside the static
// baseline. shards > 1 runs the point on the conservative-parallel
// executor (the serving-smoke-par row), gating the sharded driver's
// overhead — mailbox posts, window barriers, pooling disabled — against
// the identical sequential configuration next to it in the suite.
func benchServing(fcfg *flight.Config, proxies int, sched string, shards int) func(ops int64) error {
	return func(ops int64) error {
		a, ok := arch.ByName("MP1")
		if !ok {
			return fmt.Errorf("unknown arch MP1")
		}
		res, err := openloop.Run(openloop.Config{
			Arch: a, Nodes: 4, Clients: 2, Proxies: proxies, ProxySched: sched,
			Topo: "fat-tree", CommandQueueCap: 64,
			ValueBytes: 64, ScanCount: 16, Replication: 2,
			Keys: 1024, Theta: 0.99,
			Requests: int(ops), Warmup: int(ops / 10),
			LoadUs:    []float64{320},
			Seed:      7,
			Flight:    fcfg,
			SimShards: shards,
		})
		if err != nil {
			return err
		}
		if got := int64(res.Points[0].Latency.Count); got != ops {
			return fmt.Errorf("measured %d of %d requests", got, ops)
		}
		if fcfg != nil && res.Points[0].Flight == nil {
			return fmt.Errorf("flight recorder produced no data")
		}
		return nil
	}
}

// servingParConfig is the engine-par-events configuration: the 1k-node
// fat-tree serving point the parallel executor exists for, one load
// level, request count = ops.
func servingParConfig(a arch.Params, ops int64, shards int) openloop.Config {
	return openloop.Config{
		Arch: a, Nodes: 1024, Clients: 1,
		Topo: "fat-tree", CommandQueueCap: 64,
		ValueBytes: 64, ScanCount: 16, Replication: 2,
		Keys: 4096, Theta: 0.5,
		Requests: int(ops), Warmup: int(ops / 10),
		LoadUs:    []float64{160},
		Seed:      7,
		SimShards: shards,
	}
}

// benchServingPar measures the conservative-parallel executor at the
// scale it exists for: 1024 fat-tree nodes across 8 shards, one
// measured request per op. The first invocation also runs the identical
// sequential configuration once and reports the wall-clock ratio on
// stderr ("par-speedup: X.XXx") together with the parallel run's
// per-shard stats — ci.sh gates the ratio on hosts with enough cores,
// and the sequential twin stays out of the measured best-of-N (its rep
// can never be the fastest). The row's own per-op figures gate the
// sharded driver's scaling overhead against the baseline like any other
// row.
func benchServingPar() func(ops int64) error {
	const shards = 8
	first := true
	return func(ops int64) error {
		a, ok := arch.ByName("MP1")
		if !ok {
			return fmt.Errorf("unknown arch MP1")
		}
		var seqWall time.Duration
		if first {
			first = false
			start := time.Now()
			if _, err := openloop.Run(servingParConfig(a, ops, 0)); err != nil {
				return err
			}
			seqWall = time.Since(start)
		}
		start := time.Now()
		res, err := openloop.Run(servingParConfig(a, ops, shards))
		if err != nil {
			return err
		}
		parWall := time.Since(start)
		if got := int64(res.Points[0].Latency.Count); got != ops {
			return fmt.Errorf("measured %d of %d requests", got, ops)
		}
		st := res.Points[0].Par
		if st == nil || st.Shards != shards {
			return fmt.Errorf("parallel run reported no %d-shard stats", shards)
		}
		if seqWall > 0 {
			fmt.Fprintf(os.Stderr, "par-speedup: %.2fx (seq %v, par %v, %d shards, GOMAXPROCS %d)\n",
				seqWall.Seconds()/parWall.Seconds(), seqWall.Round(time.Millisecond),
				parWall.Round(time.Millisecond), shards, runtime.GOMAXPROCS(0))
			fmt.Fprintf(os.Stderr, "par-stats: %s\n", st)
		}
		return nil
	}
}

// benchFigure8 measures application wall-clock: the Sample kernel on MP1
// at 1, 2 and 4 processors (one cell per op), at small scale — or test
// scale under -quick.
func benchFigure8(quick bool) func(ops int64) error {
	return func(ops int64) error {
		spec, err := registry.ByName("Sample")
		if err != nil {
			return err
		}
		scale := registry.Small
		if quick {
			scale = registry.Test
		}
		a, ok := arch.ByName("MP1")
		if !ok {
			return fmt.Errorf("unknown arch MP1")
		}
		for _, nodes := range []int{1, 2, 4} {
			if _, err := workload.Run(spec.New(scale), a, nodes, 1); err != nil {
				return err
			}
		}
		return nil
	}
}

// Validate checks a suite for schema conformance: the exact schema tag,
// at least one result, unique names, and finite, sane figures.
func Validate(s Suite) error {
	if s.Schema != Schema {
		return fmt.Errorf("bench: schema %q, want %q", s.Schema, Schema)
	}
	if len(s.Results) == 0 {
		return fmt.Errorf("bench: empty result set")
	}
	seen := map[string]bool{}
	for _, r := range s.Results {
		if r.Name == "" {
			return fmt.Errorf("bench: result with empty name")
		}
		if seen[r.Name] {
			return fmt.Errorf("bench: duplicate result %q", r.Name)
		}
		seen[r.Name] = true
		if r.Ops <= 0 {
			return fmt.Errorf("bench %s: ops %d, want > 0", r.Name, r.Ops)
		}
		for _, v := range []struct {
			what string
			val  float64
		}{
			{"ns_per_op", r.NsPerOp}, {"ops_per_sec", r.OpsPerSec},
			{"allocs_per_op", r.AllocsPerOp}, {"bytes_per_op", r.BytesPerOp},
		} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
				return fmt.Errorf("bench %s: %s = %v, want finite and >= 0", r.Name, v.what, v.val)
			}
		}
		if r.NsPerOp <= 0 || r.OpsPerSec <= 0 {
			return fmt.Errorf("bench %s: zero timing (ns_per_op=%v ops_per_sec=%v)", r.Name, r.NsPerOp, r.OpsPerSec)
		}
	}
	return nil
}

// ParseJSON strictly decodes and validates a suite; unknown fields are an
// error, so baseline files can't silently rot.
func ParseJSON(data []byte) (Suite, error) {
	var s Suite
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Suite{}, fmt.Errorf("bench: parse: %w", err)
	}
	if err := Validate(s); err != nil {
		return Suite{}, err
	}
	return s, nil
}

// JSON renders the suite with stable formatting (sorted keys come free
// from the struct field order; indented for reviewable diffs).
func (s Suite) JSON() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // plain data struct; cannot fail
	}
	return append(out, '\n')
}

// Compare checks current against a baseline: every baseline benchmark must
// still be present, its throughput may not regress by more than tol
// (fractional, e.g. 0.10), and its allocs/op may not grow by more than tol
// plus half an allocation of absolute slack (so a 0-alloc baseline stays
// pinned at 0 while jittery fractional rates don't flap).
// WriteComparison renders a per-benchmark delta table of current against
// baseline — ns/op, allocs/op, and the throughput ratio — so every CI log
// shows where the time went, not just whether the gate tripped.
func WriteComparison(w io.Writer, current, baseline Suite) {
	base := map[string]Result{}
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	fmt.Fprintf(w, "%-16s %14s %14s %8s %12s %12s\n",
		"benchmark", "ns/op", "base ns/op", "speedup", "allocs/op", "base allocs")
	for _, c := range current.Results {
		b, ok := base[c.Name]
		if !ok {
			fmt.Fprintf(w, "%-16s %14.2f %14s %8s %12.2f %12s\n",
				c.Name, c.NsPerOp, "-", "-", c.AllocsPerOp, "-")
			continue
		}
		speedup := 0.0
		if c.NsPerOp > 0 {
			speedup = b.NsPerOp / c.NsPerOp
		}
		fmt.Fprintf(w, "%-16s %14.2f %14.2f %7.2fx %12.2f %12.2f\n",
			c.Name, c.NsPerOp, b.NsPerOp, speedup, c.AllocsPerOp, b.AllocsPerOp)
	}
}

func Compare(current, baseline Suite, tol float64) error {
	cur := map[string]Result{}
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	for _, b := range baseline.Results {
		c, ok := cur[b.Name]
		if !ok {
			return fmt.Errorf("bench %s: present in baseline, missing from current run", b.Name)
		}
		if floor := b.OpsPerSec * (1 - tol); c.OpsPerSec < floor {
			return fmt.Errorf("bench %s: throughput regression: %.0f ops/sec < %.0f (baseline %.0f, tolerance %.0f%%)",
				b.Name, c.OpsPerSec, floor, b.OpsPerSec, tol*100)
		}
		if ceil := b.AllocsPerOp*(1+tol) + 0.5; c.AllocsPerOp > ceil {
			return fmt.Errorf("bench %s: allocation regression: %.2f allocs/op > %.2f (baseline %.2f)",
				b.Name, c.AllocsPerOp, ceil, b.AllocsPerOp)
		}
	}
	return nil
}
