package bench

import "testing"

// Go-testing mirrors of the suite rows, so the hot paths can be profiled
// with the stock tooling (-benchmem, -cpuprofile, -memprofile) without
// going through the mproxy CLI harness.

func BenchmarkEngineEvents(b *testing.B) {
	if err := benchEngineEvents(int64(b.N)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngineTraced(b *testing.B) {
	if err := benchEngineTraced(int64(b.N)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPingPong(b *testing.B) {
	if err := benchPingPong(int64(b.N)); err != nil {
		b.Fatal(err)
	}
}
