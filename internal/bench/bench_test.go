package bench

import (
	"strings"
	"testing"
)

func goodSuite() Suite {
	return Suite{
		Schema: Schema,
		Results: []Result{
			{Name: "a", Ops: 100, NsPerOp: 10, OpsPerSec: 1e8, AllocsPerOp: 0, BytesPerOp: 0},
			{Name: "b", Ops: 50, NsPerOp: 200, OpsPerSec: 5e6, AllocsPerOp: 2.5, BytesPerOp: 128},
		},
	}
}

func TestValidateAcceptsGoodSuite(t *testing.T) {
	if err := Validate(goodSuite()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Suite)
		want string
	}{
		{"wrong schema", func(s *Suite) { s.Schema = "mproxy-bench/v0" }, "schema"},
		{"empty results", func(s *Suite) { s.Results = nil }, "empty"},
		{"empty name", func(s *Suite) { s.Results[0].Name = "" }, "empty name"},
		{"duplicate name", func(s *Suite) { s.Results[1].Name = "a" }, "duplicate"},
		{"zero ops", func(s *Suite) { s.Results[0].Ops = 0 }, "ops"},
		{"negative allocs", func(s *Suite) { s.Results[0].AllocsPerOp = -1 }, "allocs_per_op"},
		{"nan bytes", func(s *Suite) { s.Results[0].BytesPerOp = nan() }, "bytes_per_op"},
		{"zero timing", func(s *Suite) { s.Results[0].NsPerOp = 0 }, "timing"},
	}
	for _, tc := range cases {
		s := goodSuite()
		tc.mut(&s)
		err := Validate(s)
		if err == nil {
			t.Errorf("%s: Validate accepted a broken suite", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}

func TestJSONRoundTrip(t *testing.T) {
	s := goodSuite()
	got, err := ParseJSON(s.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(s.Results) || got.Schema != s.Schema {
		t.Fatalf("round trip mangled the suite: %+v", got)
	}
	for i := range s.Results {
		if got.Results[i] != s.Results[i] {
			t.Fatalf("result %d: got %+v, want %+v", i, got.Results[i], s.Results[i])
		}
	}
}

func TestParseJSONRejectsUnknownFields(t *testing.T) {
	data := []byte(`{"schema":"` + Schema + `","quick":false,"surprise":1,"results":[]}`)
	if _, err := ParseJSON(data); err == nil {
		t.Fatal("ParseJSON accepted an unknown field")
	}
}

func TestCompare(t *testing.T) {
	base := goodSuite()

	t.Run("identical passes", func(t *testing.T) {
		if err := Compare(goodSuite(), base, 0.10); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("missing row fails", func(t *testing.T) {
		cur := goodSuite()
		cur.Results = cur.Results[:1]
		if err := Compare(cur, base, 0.10); err == nil {
			t.Fatal("missing baseline row not reported")
		}
	})
	t.Run("extra current row ignored", func(t *testing.T) {
		cur := goodSuite()
		cur.Results = append(cur.Results, Result{Name: "new", Ops: 1, NsPerOp: 1, OpsPerSec: 1})
		if err := Compare(cur, base, 0.10); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("throughput within tolerance passes", func(t *testing.T) {
		cur := goodSuite()
		cur.Results[0].OpsPerSec = base.Results[0].OpsPerSec * 0.95
		if err := Compare(cur, base, 0.10); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("throughput regression fails", func(t *testing.T) {
		cur := goodSuite()
		cur.Results[0].OpsPerSec = base.Results[0].OpsPerSec * 0.85
		err := Compare(cur, base, 0.10)
		if err == nil || !strings.Contains(err.Error(), "throughput") {
			t.Fatalf("err = %v, want throughput regression", err)
		}
	})
	t.Run("half-alloc slack on zero baseline", func(t *testing.T) {
		cur := goodSuite()
		cur.Results[0].AllocsPerOp = 0.4 // baseline 0: jitter below 0.5 tolerated
		if err := Compare(cur, base, 0.10); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("alloc regression fails", func(t *testing.T) {
		cur := goodSuite()
		cur.Results[0].AllocsPerOp = 1.0 // baseline 0: a whole new alloc/op is real
		err := Compare(cur, base, 0.10)
		if err == nil || !strings.Contains(err.Error(), "allocation") {
			t.Fatalf("err = %v, want allocation regression", err)
		}
	})
}

// TestRunQuickSmoke runs the real suite end to end at quick settings and
// self-compares: the suite must validate, serialize, re-parse, and pass
// Compare against itself.
func TestRunQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	s, err := Run(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 10 {
		t.Fatalf("suite has %d results, want 10", len(s.Results))
	}
	reparsed, err := ParseJSON(s.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if err := Compare(reparsed, s, 0.0); err != nil {
		t.Fatal(err)
	}
}
