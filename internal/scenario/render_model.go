package scenario

import (
	"fmt"
	"io"

	"mproxy/internal/model"
)

// renderModel reproduces the analytic results of Section 4 of the
// paper: the primitive machine operations measured on the IBM G30 SMPs
// (Table 1), the critical-path trace of a one-word GET through two
// message proxies (Table 2), the GET/PUT latency equations, and the
// protection-cost comparison against streamlined system calls.
func renderModel(s Spec, w io.Writer) error {
	m := model.Primitives{C: s.Model.C, U: s.Model.U, V: s.Model.V, S: s.Model.S, P: s.Model.P, L: s.Model.L}

	fmt.Fprintln(w, "Table 1: primitive operations in the message proxy critical path")
	fmt.Fprintln(w, "  (IBM Model G30: four 75 MHz PowerPC 601s, SP2 prototype adapter)")
	fmt.Fprintf(w, "  %-42s %8s\n", "operation", "value")
	fmt.Fprintf(w, "  %-42s %7.2fus\n", "C: time to service a cache miss", m.C)
	fmt.Fprintf(w, "  %-42s %7.2fus\n", "U: uncached access to the adapter", m.U)
	fmt.Fprintf(w, "  %-42s %7.2fus\n", "V: vm_att/vm_det cross-memory attach", m.V)
	fmt.Fprintf(w, "  %-42s %7.2fx\n", "S: processor speed (75 MHz multiples)", m.S)
	fmt.Fprintf(w, "  %-42s %7.2fus\n", "P: polling delay", m.P)
	fmt.Fprintf(w, "  %-42s %7.2fus\n", "L: network transit time", m.L)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Table 2: latency components of a one-word GET")
	tr := model.GETTrace()
	var agent model.Agent = -1
	for _, st := range tr {
		if st.Agent != agent {
			agent = st.Agent
			fmt.Fprintf(w, "  -- %s\n", agent)
		}
		fmt.Fprintf(w, "     %-45s %-16s %6.2fus\n", st.Op, st.Symbolic(), st.Cost(m))
	}
	tot := tr.Totals()
	fmt.Fprintf(w, "  %-48s %-16s %6.2fus\n", "TOTAL", tot.Symbolic(), tr.Total(m))
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Critical path of a one-word PUT (one way):")
	ptr := model.PUTTrace()
	agent = -1
	for _, st := range ptr {
		if st.Agent != agent {
			agent = st.Agent
			fmt.Fprintf(w, "  -- %s\n", agent)
		}
		fmt.Fprintf(w, "     %-45s %-16s %6.2fus\n", st.Op, st.Symbolic(), st.Cost(m))
	}
	ptot := ptr.Totals()
	fmt.Fprintf(w, "  %-48s %-16s %6.2fus\n", "TOTAL", ptot.Symbolic(), ptr.Total(m))
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Latency model (Section 4.1):")
	fmt.Fprintf(w, "  GET = 10C + 6U + 3V + 3.6/S + 3P + 2L = %6.2fus\n", m.GETLatency())
	fmt.Fprintf(w, "  PUT =  7C + 4U + 2V + 2.2/S + 2P +  L = %6.2fus\n", m.PUTLatency())
	fmt.Fprintf(w, "  (paper measured on the G30: GET 27.5+L, PUT 18.5+L)\n")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Protection cost (message proxy vs streamlined system calls):")
	fmt.Fprintf(w, "  GET: proxy %5.2fus (3C+3V+3P)   syscall %5.2fus\n",
		m.GETProtectionCost(), model.SyscallGETProtectionCost)
	fmt.Fprintf(w, "  PUT: proxy %5.2fus (3C+2V+2P)   syscall %5.2fus\n",
		m.PUTProtectionCost(), model.SyscallPUTProtectionCost)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Predictions for other platforms (the model's purpose):")
	for _, pred := range []struct {
		name string
		m    model.Primitives
	}{
		{"G30 (MP0)", m},
		{"2x faster proxy (MP1-like: S=2, L=0.5)", model.Primitives{C: m.C, U: m.U, V: m.V, S: 2, P: m.P, L: 0.5}},
		{"cache update (MP2-like: C=0.25)", model.Primitives{C: 0.25, U: m.U, V: m.V, S: 2, P: m.P, L: 0.5}},
		{"64-bit PowerPC (V=0)", model.Primitives{C: m.C, U: m.U, V: 0, S: m.S, P: m.P, L: m.L}},
	} {
		fmt.Fprintf(w, "  %-42s GET %6.2fus  PUT %6.2fus\n", pred.name, pred.m.GETLatency(), pred.m.PUTLatency())
	}
	return nil
}
