package scenario

import (
	"fmt"
	"io"
	"os"
	"strings"

	"mproxy/internal/prof"
	"mproxy/internal/trace/timeline"
)

// renderProf runs the profiled latency scenarios: a serialized PUT or
// GET ping-pong per design point with the span assembler and timeline
// sampler attached, printing the measured per-phase latency breakdown
// next to the analytic model's phase predictions with a delta column.
func renderProf(s Spec, opt options, w io.Writer) error {
	var cfgs []prof.Config
	for _, a := range s.Archs {
		for _, op := range s.Ops {
			cfgs = append(cfgs, prof.Config{
				Arch: a, Op: op, Bytes: s.Bytes, Reps: s.Reps, PeriodNs: s.PeriodNs,
				Fabric: opt.fabric, Fault: opt.plane,
			})
		}
	}
	breakdown := s.Out.Breakdown == nil || *s.Out.Breakdown
	var allRows []prof.Row
	var profiles []timeline.Profile
	for _, cfg := range cfgs {
		r, err := prof.PingPong(cfg)
		if err != nil {
			return err
		}
		rows := r.BreakdownRows()
		allRows = append(allRows, rows...)
		if breakdown {
			printProfTable(w, cfg, rows, r.Asm.Stats().Completed)
		}
		if s.Out.Prof != "" {
			profiles = append(profiles, r.Profile())
		}
		if s.Out.Chrome != "" {
			path := s.Out.Chrome
			if len(cfgs) > 1 {
				path = insertSuffix(path, fmt.Sprintf("-%s-%s", cfg.Arch, cfg.Op))
			}
			b, err := timeline.ChromeTrace(r.Asm.Spans(), r.Smp.Windows())
			if err == nil {
				err = os.WriteFile(path, b, 0o644)
			}
			if err != nil {
				return fmt.Errorf("chrome: %w", err)
			}
		}
	}
	if s.Out.Prof != "" {
		if err := writeJSON(s.Out.Prof, struct {
			Profiles []timeline.Profile `json:"profiles"`
		}{profiles}); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
	}
	if s.Out.BenchJSON != "" {
		if err := writeJSON(s.Out.BenchJSON, struct {
			Benchmark string     `json:"benchmark"`
			Rows      []prof.Row `json:"rows"`
		}{"phase-breakdown", allRows}); err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
	}
	return nil
}

func printProfTable(w io.Writer, cfg prof.Config, rows []prof.Row, spans int) {
	fmt.Fprintf(w, "%s %dB on %s (%d spans, %d reps)\n", cfg.Op, cfg.Bytes, cfg.Arch, spans, cfg.Reps)
	fmt.Fprintf(w, "  %-14s %5s %13s %13s %9s\n", "phase", "n", "measured(us)", "model(us)", "delta%")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %5d %13.3f", r.Phase, r.Count, r.MeasuredUs)
		if r.Model {
			fmt.Fprintf(w, " %13.3f %+9.2f\n", r.ModelUs, r.DeltaPct)
		} else {
			fmt.Fprintf(w, " %13s %9s\n", "-", "-")
		}
	}
	fmt.Fprintln(w)
}

// insertSuffix turns "trace.json" + "-MP1-PUT" into "trace-MP1-PUT.json".
func insertSuffix(path, suffix string) string {
	if i := strings.LastIndex(path, "."); i > strings.LastIndex(path, "/") {
		return path[:i] + suffix + path[i:]
	}
	return path + suffix
}
