package scenario

import (
	"fmt"
	"io"
	"strings"

	"mproxy/internal/workload/openloop"
)

// renderProxySweep reproduces the multi-core proxy design-point sweep:
// the open-loop KV serving workload re-run over every (scheduling
// policy, proxies-per-node) cell of the spec's grid, reporting tail
// latency plus per-proxy utilization for each cell. The static policy
// with one proxy per node is exactly the serving kind's baseline, so
// the table reads as "what does adding proxy cores or changing their
// scheduling buy at this load" — the Section 5.4 question extended from
// the paper's fixed slot-modulo binding to a scheduled resource.
func renderProxySweep(s Spec, opt options, w io.Writer) error {
	sv := *s.Serving
	topoName := sv.Topo
	if topoName == "flat" {
		topoName = "" // openloop's single-switch model
	}
	counts := make([]string, len(sv.ProxyCounts))
	for i, c := range sv.ProxyCounts {
		counts[i] = fmt.Sprintf("%d", c)
	}
	fmt.Fprintf(w, "Proxy-scheduling sweep on %s: %d nodes x %d clients\n",
		sv.Topo, s.Topology.Nodes, sv.Clients)
	fmt.Fprintf(w, "  policies %s x %s proxies/node; util is proxy busy-time / elapsed (mean and max over all proxy cores)\n",
		strings.Join(sv.Scheds, ", "), strings.Join(counts, ", "))
	fmt.Fprintf(w, "  %d-byte values, scans of %d, replication %d, %d keys (zipf %.2f), %s arrivals\n",
		sv.ValueBytes, sv.ScanCount, sv.Replication, sv.Keys, sv.Theta, sv.Arrival)
	fmt.Fprintf(w, "  %d measured + %d warmup requests per load point; latency measured from the scheduled arrival\n",
		sv.Requests, sv.Warmup)

	type cell struct {
		sched  string
		nprox  int
		kneeUs float64
		kneeP  openloop.Point
		rps    float64
	}
	for _, a := range specArchs(s) {
		theta := sv.Theta
		if theta < 0 {
			theta = 0 // spec sentinel for uniform keys
		}
		fmt.Fprintf(w, "\n%s:\n", a.Name)
		fmt.Fprintf(w, "  %-7s %7s %10s %9s %9s %9s %9s %9s\n",
			"policy", "proxies", "us/client", "p50 us", "p99 us", "p999 us", "util avg", "util max")
		var cells []cell
		for _, sched := range sv.Scheds {
			for _, nprox := range sv.ProxyCounts {
				res, err := openloop.Run(openloop.Config{
					Arch:            a,
					Nodes:           s.Topology.Nodes,
					Clients:         sv.Clients,
					Proxies:         nprox,
					ProxySched:      sched,
					Topo:            topoName,
					CommandQueueCap: s.CommandQueueCap,
					ValueBytes:      sv.ValueBytes,
					ScanCount:       sv.ScanCount,
					Replication:     sv.Replication,
					Keys:            sv.Keys,
					Theta:           theta,
					Arrival:         sv.Arrival,
					Requests:        sv.Requests,
					Warmup:          sv.Warmup,
					LoadUs:          sv.LoadUs,
					Seed:            s.Fault.Seed,
				})
				if err != nil {
					return fmt.Errorf("scenario: proxy-sweep %s/%s x%d: %w", a.Name, sched, nprox, err)
				}
				c := cell{sched: sched, nprox: nprox, kneeUs: res.KneeLoadUs, rps: res.SaturationRPS}
				for _, pt := range res.Points {
					fmt.Fprintf(w, "  %-7s %7d %10.1f %9.1f %9.1f %9.1f %8.1f%% %8.1f%%\n",
						sched, nprox, pt.LoadUs,
						pt.Latency.P50Us, pt.Latency.P99Us, pt.Latency.P999Us,
						100*pt.ProxyUtilMean, 100*pt.ProxyUtilMax)
					if pt.LoadUs == res.KneeLoadUs {
						c.kneeP = pt
					}
				}
				cells = append(cells, c)
			}
		}
		fmt.Fprintf(w, "  saturation knee (last load with p99 within 3x of the lightest):\n")
		for _, c := range cells {
			fmt.Fprintf(w, "    %-7s x%d: %8.0f req/s at %g us/client (p99 %.1f us, proxy util max %.1f%%)\n",
				c.sched, c.nprox, c.rps, c.kneeUs, c.kneeP.Latency.P99Us, 100*c.kneeP.ProxyUtilMax)
		}
	}
	return nil
}
