package scenario

import (
	"fmt"
	"io"
	"math"

	"mproxy/internal/queueing"
	"mproxy/internal/workload"
)

// renderQueue reproduces the Section 5.4 contention analysis: given
// measured per-processor message rates and proxy utilizations (as in
// Table 6), how many compute processors can one message proxy support
// before queueing delay destabilizes it — the paper's "utilization
// below 50%" rule — and when is it better to use the extra SMP
// processor for a proxy rather than for computation.
func renderQueue(s Spec, opt options, w io.Writer) error {
	sc := specScale(s)
	ppn := s.Topology.PPN
	mp1 := mustArch("MP1")
	sw1 := mustArch("SW1")

	fmt.Fprintln(w, "Section 5.4: message proxy contention analysis")
	fmt.Fprintln(w, "  (per-processor load measured under MP1 with 16 uniprocessor nodes,")
	fmt.Fprintln(w, "   so each proxy serves exactly one compute processor)")
	fmt.Fprintf(w, "  %-12s %10s %10s %9s %9s %10s %12s\n",
		"Program", "rate op/ms", "util @1", "util @2", "util @4", "supported", "wait @2 (us)")
	for _, spec := range specApps(s) {
		res, err := workload.RunOpts(spec.New(sc), mp1, topo(16, 1), opt.workload())
		if err != nil {
			fmt.Fprintf(w, "  %-12s ERROR: %v\n", spec.Name, err)
			continue
		}
		p := queueing.FromMeasurement(res.MsgRate, res.AgentUtil, 1)
		wait := func(n int) string {
			v := p.WaitUs(n)
			if math.IsInf(v, 1) {
				return "unstable"
			}
			return fmt.Sprintf("%.2f", v)
		}
		fmt.Fprintf(w, "  %-12s %10.2f %9.1f%% %8.1f%% %8.1f%% %10d %12s\n",
			spec.Name, res.MsgRate, 100*p.Utilization(1), 100*p.Utilization(2),
			100*p.Utilization(4), p.Supported(), wait(2))
	}

	fmt.Fprintln(w)
	fmt.Fprintf(w, "To compute or to communicate (P = %d processors per SMP node):\n", ppn)
	fmt.Fprintf(w, "  a message proxy pays off when it beats system calls by more than "+
		"P/(P-1) = %.3f\n", float64(ppn)/float64(ppn-1))
	fmt.Fprintf(w, "  %-12s %12s %12s %8s %s\n", "Program", "MP2 time ms", "SW1 time ms", "ratio", "verdict")
	mp2 := mustArch("MP2")
	for _, spec := range specApps(s) {
		resMP, err1 := workload.RunOpts(spec.New(sc), mp2, topo(4, ppn), opt.workload())
		resSW, err2 := workload.RunOpts(spec.New(sc), sw1, topo(4, ppn), opt.workload())
		if err1 != nil || err2 != nil {
			fmt.Fprintf(w, "  %-12s ERROR: %v %v\n", spec.Name, err1, err2)
			continue
		}
		ratio := float64(resSW.Time) / float64(resMP.Time)
		verdict := "use SW (keep the processor)"
		if queueing.UseProxyOverSyscalls(float64(resMP.Time), float64(resSW.Time), ppn+1) {
			verdict = "use the message proxy"
		}
		fmt.Fprintf(w, "  %-12s %12.2f %12.2f %8.2f %s\n",
			spec.Name, resMP.Time.Millis(), resSW.Time.Millis(), ratio, verdict)
	}
	return nil
}
