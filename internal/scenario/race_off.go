//go:build !race

package scenario

// raceEnabled reports whether the binary was built with the race
// detector; the differential sweep shrinks its problem scales under it.
const raceEnabled = false
