package scenario

import (
	"bytes"
	"testing"

	"mproxy/internal/sim"
)

// diffScale picks the problem scale for the differential sweep. The full
// preset scales prove equivalence over the exact blessed workloads; under
// -short or the race detector (which multiplies simulation cost several
// times over) the app-driven presets drop to test scale — the protocol
// paths exercised are the same, only the iteration counts shrink.
func diffScale(spec Spec) Spec {
	if testing.Short() || raceEnabled {
		if spec.Scale != "" || spec.Kind == KindAppsFigure8 || spec.Kind == KindAppsTable6 {
			spec.Scale = "test"
		}
		if spec.Reps > 2 {
			spec.Reps = 2
		}
	}
	// The serving presets shrink unconditionally: the 1k-node sweeps issue
	// over a million requests each and belong to ci.sh full, not go test.
	// The shrunk runs still walk every protocol path (multi-switch routing,
	// replication fan-out, open-loop pacing) in both execution modes.
	if spec.Kind == KindServing || spec.Kind == KindProxySweep {
		if spec.Topology.Nodes > 8 {
			spec.Topology.Nodes = 8
		}
		if sv := spec.Serving; sv != nil {
			shrunk := *sv
			if shrunk.Requests > 800 {
				shrunk.Requests = 800
			}
			if shrunk.Warmup > 100 {
				shrunk.Warmup = 100
			}
			if len(shrunk.LoadUs) > 2 {
				shrunk.LoadUs = shrunk.LoadUs[:2]
			}
			// The sweep grid shrinks to its interesting corner — every
			// policy, but only the multi-proxy count that exercises the
			// steal and shard paths alongside the single-proxy baseline.
			if len(shrunk.ProxyCounts) > 2 {
				shrunk.ProxyCounts = []int{1, 2}
			}
			spec.Serving = &shrunk
		}
	}
	return spec
}

// runPresetInMode renders the preset with the default execution mode
// pinned to m, returning the manifest and the full output bytes.
func runPresetInMode(t *testing.T, spec Spec, m sim.ExecMode) (Manifest, []byte) {
	t.Helper()
	prev := sim.DefaultExecMode()
	sim.SetDefaultExecMode(m)
	defer sim.SetDefaultExecMode(prev)
	var buf bytes.Buffer
	mf, err := Run(spec, &buf)
	if err != nil {
		t.Fatalf("%s mode: %v", m, err)
	}
	return mf, buf.Bytes()
}

// TestDifferentialPresets renders every blessed preset under both
// execution models and requires bit-identical output bytes and manifests.
// The regress suite pins the raw event streams; this test pins the other
// end of the stack: every table, sweep and profile the repository
// publishes is reproduced exactly by the run-to-completion agents.
func TestDifferentialPresets(t *testing.T) {
	for _, name := range PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := PresetByName(name)
			if err != nil {
				t.Fatal(err)
			}
			spec := diffScale(p.Spec)
			if spec.Obs.Forensics != "" {
				// The preset's directory is relative to the repo root;
				// write the side-channel files somewhere real instead
				// (stdout still carries the forensics note, so the
				// differential comparison covers the recorder path).
				spec.Obs.Forensics = t.TempDir()
			}
			spec.Normalize()
			if err := spec.Validate(); err != nil {
				t.Fatal(err)
			}
			taskMF, taskOut := runPresetInMode(t, spec, sim.ExecTask)
			procMF, procOut := runPresetInMode(t, spec, sim.ExecProc)
			if !bytes.Equal(taskOut, procOut) {
				t.Fatalf("output bytes diverge: task mode %d bytes (sha %s), proc mode %d bytes (sha %s)",
					len(taskOut), taskMF.OutputSHA256, len(procOut), procMF.OutputSHA256)
			}
			if taskMF != procMF {
				t.Fatalf("manifests diverge:\n  task mode %+v\n  proc mode %+v", taskMF, procMF)
			}
		})
	}
}

// multiProxyServingSpec is the explicit multi-proxy open-loop case: two
// proxies per node under each scheduling policy, heavy enough load that
// proxies actually contend (and, under steal, actually steal).
func multiProxyServingSpec(sched string) Spec {
	return Spec{
		Name: "diff-multiproxy-" + sched, Kind: KindServing,
		Archs:           []string{"MP1"},
		Topology:        Topology{Nodes: 8, Proxies: 2, ProxySched: sched},
		CommandQueueCap: 64,
		Serving: &ServingSpec{
			Topo: "fat-tree", Clients: 2,
			Requests: 800, Warmup: 100,
			LoadUs: []float64{160, 40},
		},
	}
}

// TestDifferentialMultiProxyServing pins the proxy-scheduling layer's
// cross-mode determinism where it matters most: multi-proxy nodes under
// every policy, including the work-stealing path whose scan turns hop
// between sibling proxies, must render bit-identically in both
// execution modes.
func TestDifferentialMultiProxyServing(t *testing.T) {
	for _, sched := range []string{"static", "shard", "steal"} {
		t.Run(sched, func(t *testing.T) {
			spec := multiProxyServingSpec(sched)
			if err := spec.Validate(); err != nil {
				t.Fatal(err)
			}
			taskMF, taskOut := runPresetInMode(t, spec, sim.ExecTask)
			procMF, procOut := runPresetInMode(t, spec, sim.ExecProc)
			if !bytes.Equal(taskOut, procOut) {
				t.Fatalf("output bytes diverge: task mode %d bytes (sha %s), proc mode %d bytes (sha %s)",
					len(taskOut), taskMF.OutputSHA256, len(procOut), procMF.OutputSHA256)
			}
			if taskMF != procMF {
				t.Fatalf("manifests diverge:\n  task mode %+v\n  proc mode %+v", taskMF, procMF)
			}
		})
	}
}

// runWithShards renders the spec at the requested shard count, returning
// the manifest and the full output bytes.
func runWithShards(t *testing.T, spec Spec, shards int) (Manifest, []byte) {
	t.Helper()
	spec.Topology.SimShards = shards
	var buf bytes.Buffer
	mf, err := Run(spec, &buf)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return mf, buf.Bytes()
}

// parDiffSpecs collects the sharded-execution differential corpus: every
// parallel-eligible preset (shrunk like the mode differential) plus the
// explicit multi-proxy cases under each scheduling policy.
func parDiffSpecs(t *testing.T) []Spec {
	var specs []Spec
	for _, name := range PresetNames() {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := ParallelEligible(p.Spec); !ok {
			continue
		}
		specs = append(specs, diffScale(p.Spec))
	}
	if len(specs) == 0 {
		t.Fatal("no parallel-eligible presets: the [par] surface is dead")
	}
	for _, sched := range []string{"static", "shard", "steal"} {
		specs = append(specs, multiProxyServingSpec(sched))
	}
	return specs
}

// TestDifferentialParSequential holds sharded execution to the
// sequential render across the whole published surface: for every
// parallel-eligible preset and every proxy-scheduling policy, the
// output bytes AND the manifest must be identical at 1, 2 and 8 shards
// to the sequential run. Combined with the mode differential above this
// pins a three-way equivalence — one engine, P engines, and both
// execution models all produce the same bytes.
func TestDifferentialParSequential(t *testing.T) {
	for _, spec := range parDiffSpecs(t) {
		t.Run(spec.Name, func(t *testing.T) {
			seqMF, seqOut := runWithShards(t, spec, 0)
			for _, shards := range []int{1, 2, 8} {
				mf, out := runWithShards(t, spec, shards)
				if !bytes.Equal(out, seqOut) {
					t.Errorf("shards=%d output diverges: %d bytes (sha %s) vs sequential %d bytes (sha %s)",
						shards, len(out), mf.OutputSHA256, len(seqOut), seqMF.OutputSHA256)
				}
				if mf != seqMF {
					t.Errorf("shards=%d manifest diverges:\n  par %+v\n  seq %+v", shards, mf, seqMF)
				}
			}
		})
	}
}

// TestParallelRepeatRunDigest pins run-to-run determinism of the
// sharded executor at the scenario surface: with OS threads racing
// freely (and under -race, with the detector watching the cross-shard
// edges), two 8-shard runs must digest identically.
func TestParallelRepeatRunDigest(t *testing.T) {
	spec := multiProxyServingSpec("steal")
	first, firstOut := runWithShards(t, spec, 8)
	second, secondOut := runWithShards(t, spec, 8)
	if !bytes.Equal(firstOut, secondOut) || first != second {
		t.Fatalf("8-shard repeat run diverges:\n  first  %+v\n  second %+v", first, second)
	}
}

// TestParallelIneligibleFallsBack pins the warn-and-fall-back contract:
// a spec that cannot shard (here: the forensics recorder is engine-
// global) still runs — sequentially — and produces exactly the bytes
// and manifest of the unsharded run.
func TestParallelIneligibleFallsBack(t *testing.T) {
	p, err := PresetByName("serving-smoke-forensics")
	if err != nil {
		t.Fatal(err)
	}
	spec := diffScale(p.Spec)
	spec.Obs.Forensics = t.TempDir()
	seqMF, seqOut := runWithShards(t, spec, 0)
	parMF, parOut := runWithShards(t, spec, 8)
	if !bytes.Equal(seqOut, parOut) || seqMF != parMF {
		t.Fatalf("fallback diverges from sequential:\n  seq %+v\n  par %+v", seqMF, parMF)
	}
}

// TestStealRepeatRunDigest pins the stealing policy's run-to-run
// determinism: the victim order is a pure function of (node, steal
// count), so two runs of the same spec must digest identically — any
// map iteration or pointer-keyed ordering sneaking into the steal path
// would flip the manifest hash between repeats.
func TestStealRepeatRunDigest(t *testing.T) {
	spec := multiProxyServingSpec("steal")
	var first Manifest
	for rep := 0; rep < 2; rep++ {
		var buf bytes.Buffer
		mf, err := Run(spec, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if rep == 0 {
			first = mf
			continue
		}
		if mf != first {
			t.Fatalf("repeat run diverges:\n  first  %+v\n  second %+v", first, mf)
		}
	}
}
