package scenario

import (
	"fmt"
	"io"

	"mproxy/internal/apps"
	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/machine"
	"mproxy/internal/workload"
)

// topo builds a uniprocessor-interface topology of nodes x ppn.
func topo(nodes, ppn int) machine.Config {
	return machine.Config{Nodes: nodes, ProcsPerNode: ppn}
}

func mustArch(name string) arch.Params {
	a, ok := arch.ByName(name)
	if !ok {
		panic("scenario: unknown architecture " + name)
	}
	return a
}

// renderSMP reproduces Figure 9: the applications with significant
// communication workloads on SMP nodes where all processors on a node
// share one communication interface — the proxy-contention experiment.
func renderSMP(s Spec, opt options, w io.Writer) error {
	sc := specScale(s)
	archs := specArchs(s)
	nodes, ppn, proxies := s.Topology.Nodes, s.Topology.PPN, s.Topology.Proxies

	fmt.Fprintf(w, "Figure 9: speedups on %d SMP nodes x %d compute processors, "+
		"%d proxies/node (relative to T(1) on HW1)\n", nodes, ppn, proxies)
	fmt.Fprintf(w, "  %-12s", "Program")
	for _, a := range archs {
		fmt.Fprintf(w, " %8s", a.Name)
	}
	fmt.Fprintf(w, " %12s %12s %16s\n", "MP1 util", "intra share", "MP1 op lat us")

	for _, spec := range specApps(s) {
		spec := spec
		factory := func() apps.App { return spec.New(sc) }
		ref, err := workload.RunOpts(factory(), mustArch("HW1"), topo(1, 1), opt.workload())
		if err != nil {
			fmt.Fprintf(w, "  %-12s ERROR: %v\n", spec.Name, err)
			continue
		}
		fmt.Fprintf(w, "  %-12s", spec.Name)
		var mp1Util, intraShare, mp1PutUs float64
		for _, a := range archs {
			res, err := workload.RunOpts(factory(), a,
				machine.Config{Nodes: nodes, ProcsPerNode: ppn, ProxiesPerNode: proxies}, opt.workload())
			if err != nil {
				fmt.Fprintf(w, " ERROR:%v", err)
				continue
			}
			fmt.Fprintf(w, " %8.2f", float64(ref.Time)/float64(res.Time))
			if a.Name == "MP1" {
				mp1Util = res.AgentUtil
				if tot := float64(res.Msgs + res.IntraOps); tot > 0 {
					intraShare = float64(res.IntraOps) / tot
				}
				// Report the dominant operation's mean one-way latency.
				var best comm.LatencyStat
				for _, st := range res.Latency {
					if st.Count > best.Count {
						best = st
					}
				}
				mp1PutUs = best.MeanUs
			}
		}
		// The last column shows the dominant operation's mean one-way
		// delivery latency under load: the contention the proxy's queueing
		// adds over the ~12 us quiescent one-way time.
		fmt.Fprintf(w, " %11.1f%% %11.1f%% %15.1f\n", 100*mp1Util, 100*intraShare, mp1PutUs)
	}
	return nil
}
