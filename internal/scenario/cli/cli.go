// Package cli holds the flag plumbing shared by the mproxy subcommands:
// one registration point for the observability and fault-injection
// flags that every experiment accepts, mapping them onto the
// corresponding scenario.Spec fields. The legacy per-binary flags
// (-trace, -metrics, -prof, -chrome, -breakdown, -fault, -seed, -rel)
// keep working unchanged — they are aliases for Spec.Obs and Spec.Fault;
// nothing is installed process-wide from here, scenario.Run does all the
// wiring.
package cli

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"mproxy/internal/scenario"
)

// Apply copies parsed flag values onto a spec. Each Add*Flags call
// returns one.
type Apply func(*scenario.Spec)

// AddObsFlags registers the observability flags on fs. Call the
// returned Apply after fs.Parse to fill spec.Obs.
func AddObsFlags(fs *flag.FlagSet) Apply {
	trace := fs.Bool("trace", false,
		"trace all simulation events; print the stream digest and event count at exit")
	metrics := fs.String("metrics", "",
		`collect per-component counters/histograms and print them at exit: "text" or "json"`)
	prof := fs.String("prof", "",
		"assemble message-lifecycle spans and utilization timelines; write the profile JSON to this file")
	chrome := fs.String("chrome", "",
		"write the assembled spans and timelines as Chrome trace-event JSON to this file")
	breakdown := fs.Bool("breakdown", false,
		"assemble message-lifecycle spans and print the per-flow phase-latency breakdown at exit")
	return func(s *scenario.Spec) {
		s.Obs = scenario.ObsSpec{
			Trace: *trace, Metrics: *metrics, Prof: *prof,
			Chrome: *chrome, Breakdown: *breakdown,
		}
	}
}

// AddFaultFlags registers -fault, -seed and -rel on fs. Call the
// returned Apply after fs.Parse to fill spec.Fault.
func AddFaultFlags(fs *flag.FlagSet) Apply {
	spec := fs.String("fault", "",
		`fault-injection spec, e.g. "drop=1e-3,corrupt=1e-4,down=0@1ms-2ms" (see internal/fault.Parse)`)
	seed := fs.Uint64("seed", 1,
		"fault plane PRNG seed; schedules are pure functions of (seed, spec)")
	rel := fs.Bool("rel", true,
		"run inter-node traffic over the reliable transport when faults are active")
	return func(s *scenario.Spec) {
		r := *rel
		s.Fault = scenario.FaultSpec{Spec: *spec, Seed: *seed, Rel: &r}
	}
}

// SplitList splits a comma-separated flag value, trimming blanks.
func SplitList(cs string) []string {
	var out []string
	for _, part := range strings.Split(cs, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ParseInts parses a comma-separated integer list.
func ParseInts(cs string) ([]int, error) {
	var out []int
	for _, s := range SplitList(cs) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a comma-separated float list.
func ParseFloats(cs string) ([]float64, error) {
	var out []float64
	for _, s := range SplitList(cs) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}
