package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"unknown kind", Spec{Kind: "nonsense"}, "unknown kind"},
		{"unknown arch", Spec{Kind: KindMicroTable4, Archs: []string{"MP9"}}, "unknown architecture"},
		{"unknown app", Spec{Kind: KindAppsFigure8, Apps: []string{"Doom"}}, "unknown application"},
		{"unknown scale", Spec{Kind: KindAppsFigure8, Scale: "enormous"}, "unknown scale"},
		{"zero procs", Spec{Kind: KindAppsFigure8, Procs: []int{4, 0}}, "processor count"},
		{"zero sweep size", Spec{Kind: KindMicroSweep, Sizes: []int{8, 0}}, "message size"},
		{"negative reps", Spec{Kind: KindProf, Reps: -1}, "iteration count"},
		{"negative heap", Spec{Kind: KindAppsFigure8, HeapBytes: -1}, "heap size"},
		{"negative queue cap", Spec{Kind: KindMicroTable4, CommandQueueCap: -1}, "command-queue capacity"},
		{"bad op", Spec{Kind: KindProf, Ops: []string{"CAS"}}, "unsupported op"},
		{"rate out of range", Spec{Kind: KindLoss, Rates: []float64{0.5, 1.5}}, "drop rate"},
		{"bad fault spec", Spec{Kind: KindMicroTable4, Fault: FaultSpec{Spec: "drop=notanumber"}}, "fault"},
		{"bad topology", Spec{Kind: KindSMP, Topology: Topology{Nodes: -2}}, "topology"},
		{"bad format", Spec{Kind: KindMicroSweep, Out: OutSpec{Format: "xml"}}, "format"},
		{"bad metrics", Spec{Kind: KindMicroTable4, Obs: ObsSpec{Metrics: "yaml"}}, "metrics"},
		{"serving syscall arch", Spec{Kind: KindServing, Archs: []string{"SW1"}}, "syscall design point"},
		{"serving fault spec", Spec{Kind: KindServing, Fault: FaultSpec{Spec: "drop=1e-3"}}, "fault injection"},
		{"serving bad topo", Spec{Kind: KindServing, Serving: &ServingSpec{Topo: "torus"}}, "serving topology"},
		{"serving bad arrival", Spec{Kind: KindServing, Serving: &ServingSpec{Arrival: "bursty"}}, "arrival process"},
		{"serving negative count", Spec{Kind: KindServing, Serving: &ServingSpec{Clients: -1}}, "non-negative"},
		{"serving zero load point", Spec{Kind: KindServing, Serving: &ServingSpec{LoadUs: []float64{40, 0}}}, "load points"},
		{"bad proxy sched", Spec{Kind: KindServing, Topology: Topology{ProxySched: "round-robin"}}, "unknown sched policy"},
		{"serving takes no sweep grid", Spec{Kind: KindServing, Serving: &ServingSpec{ProxyCounts: []int{1, 2}}}, "proxy-sweep kind"},
		{"proxy-sweep zero count", Spec{Kind: KindProxySweep, Serving: &ServingSpec{ProxyCounts: []int{2, 0}}}, "proxy counts"},
		{"proxy-sweep bad policy", Spec{Kind: KindProxySweep, Serving: &ServingSpec{Scheds: []string{"static", "rr"}}}, "unknown sched policy"},
		{"proxy-sweep non-proxy arch", Spec{Kind: KindProxySweep, Archs: []string{"HW1"}}, "message-proxy design points"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.spec
			s.Normalize()
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsEveryPreset(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := p.Spec
		s.Normalize()
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s: %v", name, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, name := range PresetNames() {
		p, _ := PresetByName(name)
		s := p.Spec
		s.Normalize()
		data, err := s.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("%s: round trip changed the spec:\nbefore %+v\nafter  %+v", name, s, back)
		}
	}
}

// TestProxySchedJSONRoundTrip pins the scheduling layer's spec surface:
// the policy knob and the sweep grid survive a JSON round trip both as
// raw fields and through Normalize's defaulting, and an existing spec
// with no proxy_sched normalizes without gaining one (its hash — and
// so every blessed manifest — is unchanged by this layer).
func TestProxySchedJSONRoundTrip(t *testing.T) {
	s := Spec{
		Kind:     KindProxySweep,
		Topology: Topology{Nodes: 8, ProxySched: "steal"},
		Serving:  &ServingSpec{ProxyCounts: []int{1, 4}, Scheds: []string{"shard", "steal"}},
	}.Normalize()
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"proxy_sched": "steal"`) ||
		!strings.Contains(string(data), `"proxy_counts"`) ||
		!strings.Contains(string(data), `"scheds"`) {
		t.Fatalf("spec JSON missing proxy-sched fields:\n%s", data)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip changed the spec:\nbefore %+v\nafter  %+v", s, back)
	}

	plain := Spec{Kind: KindServing}.Normalize()
	if plain.Topology.ProxySched != "" {
		t.Errorf("Normalize invented a proxy_sched %q; existing spec hashes would change", plain.Topology.ProxySched)
	}
	pdata, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(pdata), "proxy_sched") || strings.Contains(string(pdata), "proxy_counts") {
		t.Errorf("default serving spec JSON leaks proxy-sched fields:\n%s", pdata)
	}
}

func TestParseJSONRejectsUnknownFields(t *testing.T) {
	if _, err := ParseJSON([]byte(`{"kind":"model","warp_factor":9}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// Every checked-in results table must have a preset that regenerates
// it, and every preset's Results must point at a real file.
func TestPresetsCoverResults(t *testing.T) {
	files, err := filepath.Glob("../../results/*.txt")
	if err != nil || len(files) == 0 {
		t.Fatalf("no results files found: %v", err)
	}
	covered := map[string]string{}
	for _, name := range PresetNames() {
		p, _ := PresetByName(name)
		if p.Results == "" {
			continue
		}
		if prev, dup := covered[p.Results]; dup {
			t.Errorf("results/%s claimed by both %s and %s", p.Results, prev, name)
		}
		covered[p.Results] = name
		if _, err := os.Stat(filepath.Join("../../results", p.Results)); err != nil {
			t.Errorf("preset %s points at missing results/%s", name, p.Results)
		}
	}
	for _, f := range files {
		if _, ok := covered[filepath.Base(f)]; !ok {
			t.Errorf("results/%s has no preset regenerating it", filepath.Base(f))
		}
	}
}

// Golden manifest: the spec hash and output digest of a cheap preset
// are part of the repository's deterministic contract. Update these
// constants deliberately when the spec schema or table output changes.
func TestRunManifestGolden(t *testing.T) {
	p, _ := PresetByName("table3")
	var out bytes.Buffer
	m, err := Run(p.Spec, &out)
	if err != nil {
		t.Fatal(err)
	}
	want := Manifest{
		Name:         "table3",
		Kind:         KindMicroParams,
		SpecSHA256:   "c27ac8bfa8b12e4421ade41ea91951fd5dd77555dcaa2644eb644cfae3c9484e",
		Seed:         1,
		OutputSHA256: "b645d3c20dbf1dd0c37d4b7421c89b4f1b0d865f13454fcbd4dc494f5300c486",
		OutputBytes:  1032,
	}
	if m != want {
		t.Errorf("manifest drifted:\ngot  %+v\nwant %+v", m, want)
	}
}

// The manifest must be a pure function of the spec: two runs of the
// same preset produce identical manifests and identical bytes.
func TestRunIsDeterministic(t *testing.T) {
	p, _ := PresetByName("section4-model")
	var a, b bytes.Buffer
	ma, err := Run(p.Spec, &a)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Run(p.Spec, &b)
	if err != nil {
		t.Fatal(err)
	}
	if ma != mb {
		t.Errorf("manifests differ: %+v vs %+v", ma, mb)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("output bytes differ between identical runs")
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	if _, err := Run(Spec{Kind: "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("Run accepted an invalid spec")
	}
}
