package scenario

import (
	"fmt"

	"mproxy/internal/sim"
)

// ParallelEligible reports whether s's experiment can execute on a
// sharded cluster (internal/sim/par), and the first blocking reason when
// it cannot. The shard count itself (whether it divides Nodes) is a
// separate run-time check: eligibility is a property of the experiment,
// not of how many cores the host happens to have.
func ParallelEligible(s Spec) (bool, string) {
	s = s.Normalize()
	if s.Kind != KindServing {
		return false, fmt.Sprintf("kind %q runs on the single-engine drivers", s.Kind)
	}
	if s.Fault.Spec != "" {
		return false, "fault injection draws from one global schedule"
	}
	if s.Obs.Enabled() {
		return false, "process-wide observability collectors assume one engine"
	}
	if s.Obs.Forensics != "" {
		return false, "the flight recorder's reservoirs are engine-global"
	}
	if sim.DefaultExecMode() != sim.ExecTask {
		return false, "proc execution mode pins agents to one scheduler"
	}
	for _, a := range specArchs(s) {
		if a.NetLatency <= 0 {
			return false, fmt.Sprintf("arch %s has no wire latency: the lookahead window would be empty", a.Name)
		}
	}
	return true, ""
}

// servingShards resolves the effective shard count for a serving run:
// the spec's requested SimShards, reduced to 1 — with the reason — when
// the spec is ineligible or the count does not split the cluster into
// equal node blocks.
func servingShards(s Spec) (int, string) {
	n := s.Topology.SimShards
	if n <= 1 {
		return 1, ""
	}
	if ok, why := ParallelEligible(s); !ok {
		return 1, why
	}
	nodes := s.Topology.Nodes
	if n > nodes {
		return 1, fmt.Sprintf("%d shards exceed %d nodes", n, nodes)
	}
	if nodes%n != 0 {
		return 1, fmt.Sprintf("%d nodes do not split into %d equal shards", nodes, n)
	}
	return n, ""
}

// AutoShards picks a shard count for nodes on a host with maxProcs
// schedulable threads: the largest divisor of nodes no bigger than
// either. `mproxy run -shards 0` uses it with runtime.GOMAXPROCS.
func AutoShards(nodes, maxProcs int) int {
	if nodes < 1 || maxProcs < 1 {
		return 1
	}
	n := min(maxProcs, nodes)
	for ; n > 1; n-- {
		if nodes%n == 0 {
			return n
		}
	}
	return 1
}
