package scenario

import (
	"fmt"
	"io"

	"mproxy/internal/micro"
)

// renderLoss sweeps the reliable transport across packet-loss rates:
// for each design point it reports small-PUT ping-pong latency and
// streamed large-PUT bandwidth over a seeded lossy wire, plus the
// recovery traffic the transport spent hiding the loss. Rate 0 runs the
// same protocol on a clean wire, so the first row is the pure
// protocol-overhead baseline. Everything is deterministic in
// (archs, seed).
func renderLoss(s Spec, opt options, w io.Writer) error {
	type row struct {
		Arch string `json:"arch"`
		micro.LossPoint
	}
	var rows []row
	for _, a := range specArchs(s) {
		for _, pt := range micro.LossSweepOpts(a, s.Rates, s.Fault.Seed, opt.micro()) {
			rows = append(rows, row{a.Name, pt})
		}
	}

	if s.Out.Format == "csv" {
		fmt.Fprintln(w, "arch,drop_rate,latency_us,bandwidth_mbs,retransmits,acks,lost,failed")
		for _, r := range rows {
			fmt.Fprintf(w, "%s,%g,%.2f,%.1f,%d,%d,%d,%t\n",
				r.Arch, r.Rate, r.LatencyUs, r.BWMBs, r.Retransmits, r.AcksSent, r.LinkLost, r.Failed)
		}
	} else {
		fmt.Fprintf(w, "Loss sweep: 64B PUT ping-pong latency and 64KiB streamed-PUT bandwidth\n")
		fmt.Fprintf(w, "over the reliable transport (seed %d); rate 0 is the clean-wire baseline\n\n", s.Fault.Seed)
		fmt.Fprintf(w, "%-6s %10s %12s %10s %8s %8s %6s %s\n",
			"arch", "drop", "latency us", "BW MB/s", "retrans", "acks", "lost", "status")
		for _, r := range rows {
			status := "ok"
			if r.Failed {
				status = "FLOW FAILED"
			}
			fmt.Fprintf(w, "%-6s %10g %12.2f %10.1f %8d %8d %6d %s\n",
				r.Arch, r.Rate, r.LatencyUs, r.BWMBs, r.Retransmits, r.AcksSent, r.LinkLost, status)
		}
	}

	if s.Out.BenchJSON != "" {
		doc := struct {
			Benchmark string `json:"benchmark"`
			Seed      uint64 `json:"seed"`
			Rows      []row  `json:"rows"`
		}{"loss-sweep", s.Fault.Seed, rows}
		if err := writeJSON(s.Out.BenchJSON, doc); err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
	}
	return nil
}
