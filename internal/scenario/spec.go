// Package scenario is the repository's single experiment-description
// layer: a declarative Spec names everything a run needs — the design
// points, the cluster topology, the workload and its scale, message
// sizes and repetition counts, the fault-injection and
// reliable-transport configuration, the observability sinks, and the
// output format. Every experiment the repository can reproduce (each
// results/*.txt table and figure of the paper) is a named preset; every
// entry point — the mproxy CLI subcommands, a spec.json file, the CI
// smoke matrix — funnels through Run, which validates the spec, wires
// the drivers, and emits a deterministic run manifest (spec hash, seed,
// output digest) alongside the rendered output.
package scenario

import (
	"encoding/json"
	"fmt"
	"strings"

	"mproxy/internal/apps/registry"
	"mproxy/internal/arch"
	"mproxy/internal/fault"
	"mproxy/internal/proxy"
)

// Kinds: one per experiment shape (table/figure family) the repository
// reproduces.
const (
	KindModel       = "model"        // Section 4 analytic model (section4_model.txt)
	KindMicroParams = "micro-params" // Table 3 design-point parameters
	KindMicroTable4 = "micro-table4" // Table 4 micro-benchmarks
	KindMicroSweep  = "micro-sweep"  // Figure 7 ping-pong sweeps
	KindAppsList    = "apps-list"    // Table 5 application listing
	KindAppsFigure8 = "apps-figure8" // Figure 8 speedup matrix
	KindAppsTable6  = "apps-table6"  // Table 6 message statistics
	KindSMP         = "smp"          // Figure 9 SMP-contention runs
	KindQueue       = "queue"        // Section 5.4 queueing analysis
	KindLoss        = "loss"         // reliable-transport loss sweep
	KindProf        = "prof"         // profiled phase-breakdown scenarios
	KindServing     = "serving"      // open-loop KV serving sweep (serving*.txt)
	KindProxySweep  = "proxy-sweep"  // proxies-per-node x sched-policy design sweep
)

// Kinds lists every valid Spec.Kind.
var Kinds = []string{
	KindModel, KindMicroParams, KindMicroTable4, KindMicroSweep,
	KindAppsList, KindAppsFigure8, KindAppsTable6,
	KindSMP, KindQueue, KindLoss, KindProf, KindServing, KindProxySweep,
}

// Topology describes the simulated cluster shape for kinds that run
// applications.
type Topology struct {
	Nodes   int `json:"nodes,omitempty"`   // SMP nodes
	PPN     int `json:"ppn,omitempty"`     // compute processors per node
	Proxies int `json:"proxies,omitempty"` // message proxies per node (MP points)
	// ProxySched names the proxy-scheduling policy binding endpoints to
	// proxies (proxy.SchedByName: static, shard, steal). Empty keeps the
	// default static slot-modulo binding, so every pre-existing spec
	// hashes and runs unchanged.
	ProxySched string `json:"proxy_sched,omitempty"`
	// SimShards > 1 asks the serving kind to simulate each load point on
	// a sharded cluster: nodes split into contiguous equal blocks, one
	// engine per block on its own OS thread, synchronized in lookahead
	// windows of the wire latency (internal/sim/par). Experiment output
	// is identical to the sequential run; only wall-clock time changes.
	// Ineligible specs (see ParallelEligible) warn and run sequentially.
	// 0 or 1 keeps sequential execution, so pre-existing specs hash and
	// run unchanged.
	SimShards int `json:"sim_shards,omitempty"`
}

// FaultSpec configures deterministic fault injection for the run.
type FaultSpec struct {
	// Spec is the fault-injection description, e.g.
	// "drop=1e-3,corrupt=1e-4,down=0@1ms-2ms" (see internal/fault.Parse).
	// Empty injects nothing and runs the exact zero-fault schedule.
	Spec string `json:"spec,omitempty"`
	// Seed keys every fault PRNG stream; default 1. Loss sweeps also use
	// it as the per-rate plane seed.
	Seed uint64 `json:"seed,omitempty"`
	// Rel runs inter-node traffic over the reliable transport when faults
	// are active; default true.
	Rel *bool `json:"rel,omitempty"`
}

// ObsSpec selects process-wide observability collectors for the run
// (the trace digest, metrics counters, span/timeline profiling). Their
// reports are appended to the run's output after the experiment.
type ObsSpec struct {
	Trace     bool   `json:"trace,omitempty"`
	Metrics   string `json:"metrics,omitempty"` // "", "text" or "json"
	Prof      string `json:"prof,omitempty"`    // profile JSON output path
	Chrome    string `json:"chrome,omitempty"`  // Chrome trace-event output path
	Breakdown bool   `json:"breakdown,omitempty"`
	// Forensics, when set, directs the serving kind's flight-recorder
	// output — the slowest-requests table, the per-shard/per-tier
	// windowed series JSON, and the Chrome exemplar trace — into this
	// directory, which must already exist. Serving-only. Unlike the
	// collectors above it is wired per run (no process-wide tracer), so
	// it never degrades the worker pool and never perturbs timing.
	Forensics string `json:"forensics,omitempty"`
}

// Enabled reports whether any process-wide collector is requested.
// Forensics is deliberately excluded: the flight recorder travels with
// the serving driver, not the global tracer.
func (o ObsSpec) Enabled() bool {
	return o.Trace || o.Metrics != "" || o.Prof != "" || o.Chrome != "" || o.Breakdown
}

// OutSpec selects the output format and side-channel files.
type OutSpec struct {
	// Format is "table" (default) or "csv" for kinds with a CSV form
	// (micro-sweep, apps-figure8, loss).
	Format string `json:"format,omitempty"`
	// BenchJSON, when set, also writes machine-readable benchmark results
	// to this file (micro-table4, micro-sweep, apps-figure8, loss, prof).
	BenchJSON string `json:"bench_json,omitempty"`
	// Prof and Chrome are the profile/Chrome-trace output paths of the
	// prof kind (other kinds use Obs for these sinks).
	Prof   string `json:"prof,omitempty"`
	Chrome string `json:"chrome,omitempty"`
	// Breakdown prints the prof kind's measured-vs-model tables; default
	// true.
	Breakdown *bool `json:"breakdown,omitempty"`
}

// ServingSpec parameterizes the serving kind: the open-loop KV sweep of
// internal/workload/openloop. The cluster shape comes from Topology
// (Nodes, Proxies); the fields here describe the service and the
// generator.
type ServingSpec struct {
	// Topo selects the interconnect: "fat-tree", "dragonfly", or "flat"
	// for the paper's single-switch model.
	Topo string `json:"topo,omitempty"`
	// Clients is the client processes per node; slot 0 of every node is
	// the KV server.
	Clients int `json:"clients,omitempty"`

	ValueBytes  int `json:"value_bytes,omitempty"`
	ScanCount   int `json:"scan_count,omitempty"`
	Replication int `json:"replication,omitempty"`
	// Keys is the key-space size; Theta the Zipfian skew (negative =
	// uniform, since 0 means "use the default").
	Keys  int     `json:"keys,omitempty"`
	Theta float64 `json:"theta,omitempty"`
	// Arrival is the arrival process: "poisson" or "onoff" (bursty
	// interrupted-Poisson).
	Arrival string `json:"arrival,omitempty"`

	// Requests and Warmup are per-load-point request counts across all
	// clients; warmup requests run but are not measured.
	Requests int `json:"requests,omitempty"`
	Warmup   int `json:"warmup,omitempty"`
	// LoadUs is the sweep ladder: per-client mean inter-arrival time in
	// microseconds, ordered lightest load (largest) first.
	LoadUs []float64 `json:"load_us,omitempty"`

	// ProxyCounts and Scheds are the proxy-sweep kind's design grid:
	// every (policy, proxies-per-node) cell runs the full load ladder.
	// Proxy-sweep only; the serving kind takes a single design point via
	// Topology.Proxies and Topology.ProxySched.
	ProxyCounts []int    `json:"proxy_counts,omitempty"`
	Scheds      []string `json:"scheds,omitempty"`
}

// ModelParams are the Section 4 analytic-model primitives.
type ModelParams struct {
	C float64 `json:"c"` // cache miss latency (us)
	U float64 `json:"u"` // uncached access latency (us)
	V float64 `json:"v"` // vm_att/vm_det latency (us)
	S float64 `json:"s"` // processor speed (multiple of 75 MHz)
	P float64 `json:"p"` // polling delay (us)
	L float64 `json:"l"` // network latency (us)
}

// DefaultModelParams are the paper's G30 measurements (Table 1).
func DefaultModelParams() ModelParams {
	return ModelParams{C: 1.0, U: 0.65, V: 1.3 / 3, S: 1.0, P: 3.0, L: 1.0}
}

// Spec is one declarative experiment description. The zero value of
// every field means "use the kind's default"; Normalize fills defaults
// in and Validate rejects contradictions. Specs round-trip through JSON.
type Spec struct {
	// Name labels the run (presets use their registry name).
	Name string `json:"name,omitempty"`
	// Kind selects the experiment shape; see the Kind constants.
	Kind string `json:"kind"`

	// Archs are the design points to run (HW0, HW1, MP0, MP1, MP2, SW1).
	Archs []string `json:"archs,omitempty"`
	// Apps are the applications to run (apps-*, smp and queue kinds).
	Apps []string `json:"apps,omitempty"`
	// Scale is the problem scale: test, small (default) or full.
	Scale string `json:"scale,omitempty"`
	// Procs are the processor counts of the apps-figure8 matrix.
	Procs []int `json:"procs,omitempty"`
	// Topology is the cluster shape for the smp and queue kinds.
	Topology Topology `json:"topology,omitzero"`

	// Sizes are the micro-sweep message sizes in bytes.
	Sizes []int `json:"sizes,omitempty"`
	// Bytes is the prof payload size; Reps its round-trip count.
	Bytes int `json:"bytes,omitempty"`
	Reps  int `json:"reps,omitempty"`
	// Ops are the profiled operations (PUT, GET).
	Ops []string `json:"ops,omitempty"`
	// PeriodNs is the prof timeline sampling window (0 = default).
	PeriodNs int64 `json:"period_ns,omitempty"`
	// Rates are the loss-sweep packet drop rates.
	Rates []float64 `json:"rates,omitempty"`
	// Jobs bounds the apps-figure8 worker pool: 0 defaults to 1 (serial),
	// negative uses all CPUs. Results are bit-identical at any worker
	// count.
	Jobs int `json:"jobs,omitempty"`

	// HeapBytes sizes the per-rank Split-C heap; 0 picks the scale's
	// default (8 MiB, or 128 MiB at full scale).
	HeapBytes int `json:"heap_bytes,omitempty"`
	// CommandQueueCap overrides the per-CPU command-queue capacity
	// (0 = comm.DefaultCommandQueueCap). Carried per fabric: concurrent
	// runs with different capacities never interfere.
	CommandQueueCap int `json:"command_queue_cap,omitempty"`

	// Model overrides the Section 4 analytic-model primitives.
	Model *ModelParams `json:"model,omitempty"`

	// Serving parameterizes the serving kind's open-loop KV sweep.
	Serving *ServingSpec `json:"serving,omitempty"`

	Fault FaultSpec `json:"fault,omitzero"`
	Obs   ObsSpec   `json:"obs,omitzero"`
	Out   OutSpec   `json:"out,omitzero"`
}

// boolPtr returns a pointer to b, for the Spec's optional bools.
func boolPtr(b bool) *bool { return &b }

// sweepSizes is the Figure 7 message-size ladder.
func sweepSizes() []int {
	return []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}
}

// defaultArchs returns the kind's design-point selection, mirroring the
// defaults of the legacy per-experiment binaries.
func defaultArchs(kind string) []string {
	switch kind {
	case KindAppsFigure8:
		return []string{"HW0", "HW1", "MP0", "MP1", "MP2", "SW1"}
	case KindSMP:
		return []string{"HW1", "MP1", "MP2", "SW1"}
	case KindLoss:
		return []string{"HW1", "MP1", "SW1"}
	case KindProf:
		return []string{"MP0", "MP1", "MP2", "HW0", "HW1", "SW1"}
	default: // micro kinds: all design points, canonical order
		var out []string
		for _, a := range arch.All {
			out = append(out, a.Name)
		}
		return out
	}
}

func defaultApps(kind string) []string {
	switch kind {
	case KindSMP:
		return []string{"LU", "Barnes-Hut", "Water", "Sample", "Wator"}
	case KindQueue:
		return []string{"LU", "Barnes-Hut", "Water", "Sample", "Wator", "P-Ray", "Moldy"}
	default: // apps-* kinds: the whole Table 5 suite
		var out []string
		for _, s := range registry.All() {
			out = append(out, s.Name)
		}
		return out
	}
}

// Normalize fills in the kind's defaults and returns the canonical spec
// the run manifest hashes. It does not validate; call Validate (or use
// Run, which does both).
func (s Spec) Normalize() Spec {
	switch s.Kind {
	case KindMicroParams, KindMicroTable4, KindMicroSweep, KindAppsFigure8, KindSMP, KindLoss, KindProf:
		if len(s.Archs) == 0 {
			s.Archs = defaultArchs(s.Kind)
		}
	}
	switch s.Kind {
	case KindAppsList, KindAppsFigure8, KindAppsTable6, KindSMP, KindQueue:
		if len(s.Apps) == 0 {
			s.Apps = defaultApps(s.Kind)
		}
		if s.Scale == "" {
			s.Scale = "small"
		}
		if s.HeapBytes == 0 && s.Scale == "full" {
			s.HeapBytes = 128 << 20
		}
	}
	switch s.Kind {
	case KindAppsFigure8:
		if len(s.Procs) == 0 {
			s.Procs = []int{1, 2, 4, 8, 16}
		}
		if s.Jobs == 0 {
			s.Jobs = 1
		}
	case KindSMP:
		if s.Topology.Nodes == 0 {
			s.Topology.Nodes = 4
		}
		if s.Topology.PPN == 0 {
			s.Topology.PPN = 4
		}
		if s.Topology.Proxies == 0 {
			s.Topology.Proxies = 1
		}
	case KindQueue:
		if s.Topology.PPN == 0 {
			s.Topology.PPN = 4
		}
	case KindMicroSweep:
		if len(s.Sizes) == 0 {
			s.Sizes = sweepSizes()
		}
	case KindLoss:
		if len(s.Rates) == 0 {
			s.Rates = []float64{0, 1e-4, 1e-3, 1e-2}
		}
	case KindProf:
		if s.Bytes == 0 {
			s.Bytes = 64
		}
		if s.Reps == 0 {
			s.Reps = 8
		}
		if len(s.Ops) == 0 {
			s.Ops = []string{"PUT", "GET"}
		}
		if s.Out.Breakdown == nil {
			s.Out.Breakdown = boolPtr(true)
		}
	case KindModel:
		if s.Model == nil {
			m := DefaultModelParams()
			s.Model = &m
		}
	case KindServing, KindProxySweep:
		if len(s.Archs) == 0 {
			s.Archs = []string{"MP1"}
		}
		if s.Topology.Nodes == 0 {
			s.Topology.Nodes = 16
		}
		if s.Topology.Proxies == 0 {
			s.Topology.Proxies = 1
		}
		sv := ServingSpec{}
		if s.Serving != nil {
			sv = *s.Serving
		}
		if sv.Topo == "" {
			sv.Topo = "fat-tree"
		}
		if sv.Clients == 0 {
			sv.Clients = 2
		}
		if sv.ValueBytes == 0 {
			sv.ValueBytes = 64
		}
		if sv.ScanCount == 0 {
			sv.ScanCount = 16
		}
		if sv.Replication == 0 {
			sv.Replication = 2
		}
		if sv.Keys == 0 {
			sv.Keys = 1 << 16
		}
		if sv.Theta == 0 {
			sv.Theta = 0.99
		}
		if sv.Arrival == "" {
			sv.Arrival = "poisson"
		}
		if sv.Requests == 0 {
			sv.Requests = 20000
		}
		if sv.Warmup == 0 {
			sv.Warmup = 2000
		}
		if len(sv.LoadUs) == 0 {
			sv.LoadUs = []float64{40, 20, 10, 5}
		}
		if s.Kind == KindProxySweep {
			if len(sv.ProxyCounts) == 0 {
				sv.ProxyCounts = []int{1, 2, 4}
			}
			if len(sv.Scheds) == 0 {
				sv.Scheds = proxy.SchedNames()
			}
		}
		s.Serving = &sv
	}
	if s.Fault.Seed == 0 {
		s.Fault.Seed = 1
	}
	if s.Fault.Rel == nil {
		s.Fault.Rel = boolPtr(true)
	}
	if s.Out.Format == "" {
		s.Out.Format = "table"
	}
	return s
}

// Validate checks a (normalized or raw) spec and returns the first
// problem found.
func (s Spec) Validate() error {
	known := false
	for _, k := range Kinds {
		if s.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("scenario: unknown kind %q (want one of %s)", s.Kind, strings.Join(Kinds, ", "))
	}
	for _, name := range s.Archs {
		if _, ok := arch.ByName(name); !ok {
			return fmt.Errorf("scenario: unknown architecture %q", name)
		}
	}
	for _, name := range s.Apps {
		if _, err := registry.ByName(name); err != nil {
			return fmt.Errorf("scenario: unknown application %q", name)
		}
	}
	switch s.Scale {
	case "", "test", "small", "full":
	default:
		return fmt.Errorf("scenario: unknown scale %q (want test, small or full)", s.Scale)
	}
	for _, p := range s.Procs {
		if p <= 0 {
			return fmt.Errorf("scenario: processor count must be positive, got %d", p)
		}
	}
	for _, n := range s.Sizes {
		if n <= 0 {
			return fmt.Errorf("scenario: message size must be positive, got %d", n)
		}
	}
	if s.Reps < 0 {
		return fmt.Errorf("scenario: iteration count must be positive, got %d", s.Reps)
	}
	if s.Bytes < 0 {
		return fmt.Errorf("scenario: payload size must be positive, got %d", s.Bytes)
	}
	if s.HeapBytes < 0 {
		return fmt.Errorf("scenario: heap size must be non-negative, got %d", s.HeapBytes)
	}
	if s.CommandQueueCap < 0 {
		return fmt.Errorf("scenario: command-queue capacity must be non-negative, got %d", s.CommandQueueCap)
	}
	if s.Topology.Nodes < 0 || s.Topology.PPN < 0 || s.Topology.Proxies < 0 {
		return fmt.Errorf("scenario: topology counts must be non-negative, got %+v", s.Topology)
	}
	if s.Topology.SimShards < 0 {
		return fmt.Errorf("scenario: negative SimShards %d", s.Topology.SimShards)
	}
	if _, err := proxy.SchedByName(s.Topology.ProxySched); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	for _, op := range s.Ops {
		if op != "PUT" && op != "GET" {
			return fmt.Errorf("scenario: unsupported op %q (want PUT or GET)", op)
		}
	}
	for _, r := range s.Rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("scenario: drop rate must be in [0,1], got %g", r)
		}
	}
	if _, err := fault.Parse(s.Fault.Spec, s.Fault.Seed); err != nil {
		return fmt.Errorf("scenario: bad fault spec: %w", err)
	}
	if s.Kind == KindServing || s.Kind == KindProxySweep {
		if err := s.validateServing(); err != nil {
			return err
		}
	}
	if s.Obs.Forensics != "" && s.Kind != KindServing {
		return fmt.Errorf("scenario: forensics output is only available for the serving kind, got %q", s.Kind)
	}
	switch s.Obs.Metrics {
	case "", "text", "json":
	default:
		return fmt.Errorf(`scenario: metrics must be "text" or "json", got %q`, s.Obs.Metrics)
	}
	switch s.Out.Format {
	case "", "table", "csv":
	default:
		return fmt.Errorf(`scenario: format must be "table" or "csv", got %q`, s.Out.Format)
	}
	return nil
}

// validateServing checks the extra constraints shared by the serving and
// proxy-sweep kinds.
func (s Spec) validateServing() error {
	for _, name := range s.Archs {
		if a, ok := arch.ByName(name); ok && a.Kind == arch.Syscall {
			return fmt.Errorf("scenario: serving does not support the syscall design point %s (no run-to-completion form)", name)
		}
		if s.Kind == KindProxySweep {
			if a, ok := arch.ByName(name); ok && a.Kind != arch.Proxy {
				return fmt.Errorf("scenario: proxy-sweep needs message-proxy design points, got %s (no proxies to schedule)", name)
			}
		}
	}
	if s.Fault.Spec != "" {
		return fmt.Errorf("scenario: serving does not support fault injection (dropped requests would stall the open-loop accounting)")
	}
	sv := s.Serving
	if sv == nil {
		return nil // Normalize fills the defaults
	}
	switch sv.Topo {
	case "", "flat", "fat-tree", "dragonfly":
	default:
		return fmt.Errorf("scenario: unknown serving topology %q (want flat, fat-tree or dragonfly)", sv.Topo)
	}
	switch sv.Arrival {
	case "", "poisson", "onoff":
	default:
		return fmt.Errorf("scenario: unknown arrival process %q (want poisson or onoff)", sv.Arrival)
	}
	if sv.Clients < 0 || sv.ValueBytes < 0 || sv.ScanCount < 0 ||
		sv.Replication < 0 || sv.Keys < 0 || sv.Requests < 0 || sv.Warmup < 0 {
		return fmt.Errorf("scenario: serving counts must be non-negative, got %+v", *sv)
	}
	for _, u := range sv.LoadUs {
		if u <= 0 {
			return fmt.Errorf("scenario: serving load points must be positive, got %g us", u)
		}
	}
	if s.Kind == KindServing && (len(sv.ProxyCounts) > 0 || len(sv.Scheds) > 0) {
		return fmt.Errorf("scenario: proxy_counts/scheds belong to the proxy-sweep kind; the serving kind takes topology.proxies and topology.proxy_sched")
	}
	for _, c := range sv.ProxyCounts {
		if c <= 0 {
			return fmt.Errorf("scenario: proxy counts must be positive, got %d", c)
		}
	}
	for _, name := range sv.Scheds {
		if _, err := proxy.SchedByName(name); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	return nil
}

// ParseJSON decodes a spec from JSON, rejecting unknown fields so typos
// in hand-written spec files fail loudly.
func ParseJSON(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	return s, nil
}

// JSON encodes the spec canonically (indented, stable field order).
func (s Spec) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
