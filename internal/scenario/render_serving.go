package scenario

import (
	"fmt"
	"io"

	"mproxy/internal/workload/openloop"
)

// renderServing reproduces the open-loop serving experiment: clients on
// every node drive the sharded AM-based KV service through the selected
// multi-switch interconnect while seeded open-loop generators schedule
// arrivals, and each design point's sweep reports per-load tail latency
// plus the saturation knee.
func renderServing(s Spec, opt options, w io.Writer) error {
	sv := *s.Serving
	label := sv.Topo
	topoName := sv.Topo
	if topoName == "flat" {
		topoName = "" // openloop's single-switch model
	}
	fmt.Fprintf(w, "Open-loop KV serving on %s: %d nodes x %d clients, %d proxies/node\n",
		label, s.Topology.Nodes, sv.Clients, s.Topology.Proxies)
	fmt.Fprintf(w, "  %d-byte values, scans of %d, replication %d, %d keys (zipf %.2f), %s arrivals\n",
		sv.ValueBytes, sv.ScanCount, sv.Replication, sv.Keys, sv.Theta, sv.Arrival)
	fmt.Fprintf(w, "  %d measured + %d warmup requests per load point; latency measured from the scheduled arrival\n",
		sv.Requests, sv.Warmup)

	for _, a := range specArchs(s) {
		theta := sv.Theta
		if theta < 0 {
			theta = 0 // spec sentinel for uniform keys
		}
		res, err := openloop.Run(openloop.Config{
			Arch:            a,
			Nodes:           s.Topology.Nodes,
			Clients:         sv.Clients,
			Proxies:         s.Topology.Proxies,
			Topo:            topoName,
			CommandQueueCap: s.CommandQueueCap,
			ValueBytes:      sv.ValueBytes,
			ScanCount:       sv.ScanCount,
			Replication:     sv.Replication,
			Keys:            sv.Keys,
			Theta:           theta,
			Arrival:         sv.Arrival,
			Requests:        sv.Requests,
			Warmup:          sv.Warmup,
			LoadUs:          sv.LoadUs,
			Seed:            s.Fault.Seed,
		})
		if err != nil {
			return fmt.Errorf("scenario: serving %s: %w", a.Name, err)
		}
		fmt.Fprintf(w, "\n%s:\n", a.Name)
		fmt.Fprintf(w, "  %12s %12s %12s %9s %9s %9s %7s\n",
			"us/client", "offered/s", "achieved/s", "p50 us", "p99 us", "p999 us", "hops")
		var kneePt openloop.Point
		for _, pt := range res.Points {
			fmt.Fprintf(w, "  %12.1f %12.0f %12.0f %9.1f %9.1f %9.1f %7.2f\n",
				pt.LoadUs, pt.OfferedRPS, pt.AchievedRPS,
				pt.Latency.P50Us, pt.Latency.P99Us, pt.Latency.P999Us, pt.MeanHops)
			if pt.LoadUs == res.KneeLoadUs {
				kneePt = pt
			}
		}
		if len(kneePt.Tiers) > 0 {
			fmt.Fprintf(w, "  tier utilization at the knee:")
			for _, tu := range kneePt.Tiers {
				fmt.Fprintf(w, " %s %.1f%% (%d links)", tu.Tier, 100*tu.Util, tu.Links)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  saturation: %.0f req/s at %g us/client (p99 %.1f us); %d requests issued\n",
			res.SaturationRPS, res.KneeLoadUs, kneePt.Latency.P99Us, res.TotalIssued)
	}
	return nil
}
