package scenario

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mproxy/internal/kv"
	"mproxy/internal/trace/flight"
	"mproxy/internal/trace/timeline"
	"mproxy/internal/workload/openloop"
)

// renderServing reproduces the open-loop serving experiment: clients on
// every node drive the sharded AM-based KV service through the selected
// multi-switch interconnect while seeded open-loop generators schedule
// arrivals, and each design point's sweep reports per-load tail latency
// plus the saturation knee. With Obs.Forensics set, a flight recorder
// rides every load point (timing-free: request identity travels in the
// high bits of the echoed flags word) and the harvest is written as
// three side-channel files after the sweep.
func renderServing(s Spec, opt options, w io.Writer) error {
	sv := *s.Serving
	label := sv.Topo
	topoName := sv.Topo
	if topoName == "flat" {
		topoName = "" // openloop's single-switch model
	}
	sched := ""
	if s.Topology.ProxySched != "" {
		sched = fmt.Sprintf(" (%s scheduling)", s.Topology.ProxySched)
	}
	fmt.Fprintf(w, "Open-loop KV serving on %s: %d nodes x %d clients, %d proxies/node%s\n",
		label, s.Topology.Nodes, sv.Clients, s.Topology.Proxies, sched)
	fmt.Fprintf(w, "  %d-byte values, scans of %d, replication %d, %d keys (zipf %.2f), %s arrivals\n",
		sv.ValueBytes, sv.ScanCount, sv.Replication, sv.Keys, sv.Theta, sv.Arrival)
	fmt.Fprintf(w, "  %d measured + %d warmup requests per load point; latency measured from the scheduled arrival\n",
		sv.Requests, sv.Warmup)

	var fcfg *flight.Config
	if s.Obs.Forensics != "" {
		fcfg = &flight.Config{TopK: 8}
	}
	// Shard-count resolution and the parallel-run diagnostics both go to
	// stderr: the rendered experiment (and with it the manifest's output
	// digest) is identical however many cores execute it.
	shards, seqWhy := servingShards(s)
	if seqWhy != "" {
		fmt.Fprintf(os.Stderr, "scenario: %s: running sequentially: %s\n", s.Name, seqWhy)
	}
	var fpoints []flight.NamedPoint
	for _, a := range specArchs(s) {
		theta := sv.Theta
		if theta < 0 {
			theta = 0 // spec sentinel for uniform keys
		}
		res, err := openloop.Run(openloop.Config{
			Arch:            a,
			Nodes:           s.Topology.Nodes,
			Clients:         sv.Clients,
			Proxies:         s.Topology.Proxies,
			ProxySched:      s.Topology.ProxySched,
			Topo:            topoName,
			CommandQueueCap: s.CommandQueueCap,
			ValueBytes:      sv.ValueBytes,
			ScanCount:       sv.ScanCount,
			Replication:     sv.Replication,
			Keys:            sv.Keys,
			Theta:           theta,
			Arrival:         sv.Arrival,
			Requests:        sv.Requests,
			Warmup:          sv.Warmup,
			LoadUs:          sv.LoadUs,
			Seed:            s.Fault.Seed,
			Flight:          fcfg,
			SimShards:       shards,
		})
		if err != nil {
			return fmt.Errorf("scenario: serving %s: %w", a.Name, err)
		}
		fmt.Fprintf(w, "\n%s:\n", a.Name)
		fmt.Fprintf(w, "  %12s %12s %12s %9s %9s %9s %7s\n",
			"us/client", "offered/s", "achieved/s", "p50 us", "p99 us", "p999 us", "hops")
		var kneePt openloop.Point
		for _, pt := range res.Points {
			fmt.Fprintf(w, "  %12.1f %12.0f %12.0f %9.1f %9.1f %9.1f %7.2f\n",
				pt.LoadUs, pt.OfferedRPS, pt.AchievedRPS,
				pt.Latency.P50Us, pt.Latency.P99Us, pt.Latency.P999Us, pt.MeanHops)
			if pt.LoadUs == res.KneeLoadUs {
				kneePt = pt
			}
			if fcfg != nil && pt.Flight != nil {
				fpoints = append(fpoints, flight.NamedPoint{
					Arch: a.Name, LoadUs: pt.LoadUs, Data: *pt.Flight,
				})
			}
			if pt.Par != nil {
				fmt.Fprintf(os.Stderr, "par: %s %s @%gus: %s\n", s.Name, a.Name, pt.LoadUs, pt.Par)
			}
		}
		if len(kneePt.Tiers) > 0 {
			fmt.Fprintf(w, "  tier utilization at the knee:")
			for _, tu := range kneePt.Tiers {
				fmt.Fprintf(w, " %s %.1f%% (%d links)", tu.Tier, 100*tu.Util, tu.Links)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  saturation: %.0f req/s at %g us/client (p99 %.1f us); %d requests issued\n",
			res.SaturationRPS, res.KneeLoadUs, kneePt.Latency.P99Us, res.TotalIssued)
	}
	if fcfg != nil {
		return writeForensics(s, fpoints, w)
	}
	return nil
}

// servingOpName labels flight-record op codes for the forensics report.
func servingOpName(op uint8) string { return kv.Op(op).String() }

// forensicsBase is the basename stem of the three forensics files.
func forensicsBase(s Spec) string {
	base := strings.ReplaceAll(s.Name, "-", "_")
	if base == "" {
		base = "serving"
	}
	return base
}

// writeForensics renders the flight-recorder harvest into the
// Obs.Forensics directory: the deterministic slowest-requests table, the
// per-shard/per-tier windowed series JSON, and a Chrome trace of the
// exemplar (slowest) requests with one track per request and one slice
// per flight segment. Stdout gets a one-line note naming only the
// basenames, so the run manifest's output digest is independent of
// where the directory lives.
func writeForensics(s Spec, points []flight.NamedPoint, w io.Writer) error {
	base := forensicsBase(s)
	dir := s.Obs.Forensics

	var slow strings.Builder
	flight.WriteSlowest(&slow, points, servingOpName)
	if err := os.WriteFile(filepath.Join(dir, base+".slowest.txt"), []byte(slow.String()), 0o644); err != nil {
		return fmt.Errorf("scenario: forensics: %w", err)
	}
	rep, err := flight.ReportJSON(points, servingOpName)
	if err != nil {
		return fmt.Errorf("scenario: forensics: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, base+".flight.json"), rep, 0o644); err != nil {
		return fmt.Errorf("scenario: forensics: %w", err)
	}
	chrome, err := timeline.ChromeSlices("flight exemplars", flightSlices(points))
	if err != nil {
		return fmt.Errorf("scenario: forensics: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, base+".chrome.json"), chrome, 0o644); err != nil {
		return fmt.Errorf("scenario: forensics: %w", err)
	}
	fmt.Fprintf(w, "\nforensics: wrote %s.slowest.txt, %s.flight.json, %s.chrome.json\n", base, base, base)
	return nil
}

// flightSlices converts every point's slowest-request reservoir into
// Chrome trace slices: one track per exemplar, one complete event per
// non-empty flight segment, tiled gaplessly from the scheduled arrival.
func flightSlices(points []flight.NamedPoint) []timeline.Slice {
	var out []timeline.Slice
	for _, np := range points {
		for i := range np.Data.Slowest {
			r := &np.Data.Slowest[i]
			track := fmt.Sprintf("%s @%gus #%02d", np.Arch, np.LoadUs, i+1)
			at := r.ScheduledNs
			for seg := 0; seg < flight.NumSegs; seg++ {
				d := r.Seg[seg]
				if d == 0 {
					continue
				}
				out = append(out, timeline.Slice{
					Track: track, Name: flight.Seg(seg).String(),
					StartNs: at, DurNs: d, Cat: servingOpName(r.Op),
					Args: map[string]any{
						"client": r.Client, "server": r.Server, "shard": r.Shard,
						"hops": r.Hops, "lat_us": float64(r.Latency()) / 1e3,
					},
				})
				at += d
			}
		}
	}
	return out
}
