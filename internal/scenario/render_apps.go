package scenario

import (
	"fmt"
	"io"

	"mproxy/internal/apps"
	"mproxy/internal/apps/registry"
	"mproxy/internal/arch"
	"mproxy/internal/workload"
)

// specScale resolves the (validated, normalized) spec's problem scale.
func specScale(s Spec) registry.Scale {
	return map[string]registry.Scale{"test": registry.Test, "small": registry.Small, "full": registry.Full}[s.Scale]
}

// specApps resolves the spec's application selection.
func specApps(s Spec) []registry.Spec {
	out := make([]registry.Spec, 0, len(s.Apps))
	for _, name := range s.Apps {
		spec, _ := registry.ByName(name)
		out = append(out, spec)
	}
	return out
}

// renderAppsList prints Table 5: the application suite and its inputs.
func renderAppsList(s Spec, w io.Writer) error {
	sc := specScale(s)
	fmt.Fprintln(w, "Table 5: applications and input parameters")
	fmt.Fprintf(w, "  %-12s %-10s %s\n", "Program", "Model", "Input ("+sc.String()+" scale)")
	for _, spec := range specApps(s) {
		fmt.Fprintf(w, "  %-12s %-10s %s\n", spec.Name, spec.Model, spec.Inputs[sc])
	}
	return nil
}

// figure8Cell is one matrix entry of the JSON emission.
type figure8Cell struct {
	App     string  `json:"app"`
	Arch    string  `json:"arch"`
	Procs   int     `json:"procs"`
	TimeMs  float64 `json:"time_ms"`
	Speedup float64 `json:"speedup"`
}

// renderFigure8 runs the speedup matrix and prints the Figure 8 tables
// (or CSV).
func renderFigure8(s Spec, opt options, w io.Writer) error {
	sc := specScale(s)
	archs := specArchs(s)
	csv := s.Out.Format == "csv"
	if csv {
		fmt.Fprintln(w, "app,arch,procs,time_ms,speedup")
	} else {
		fmt.Fprintln(w, "Figure 8: application speedups relative to T(1) on HW1")
	}
	var cells []figure8Cell
	for _, spec := range specApps(s) {
		spec := spec
		factory := func() apps.App { return spec.New(sc) }
		curves, err := workload.SpeedupsJOpts(factory, archs, s.Procs, "HW1", s.Jobs, opt.workload())
		if err != nil {
			fmt.Fprintf(w, "%s: ERROR: %v\n", spec.Name, err)
			continue
		}
		for _, c := range curves {
			for i, p := range c.Procs {
				cells = append(cells, figure8Cell{c.App, c.Arch, p, c.Times[i].Millis(), c.Speedup[i]})
			}
		}
		if csv {
			for _, c := range curves {
				for i, p := range c.Procs {
					fmt.Fprintf(w, "%s,%s,%d,%.4f,%.4f\n", c.App, c.Arch, p, c.Times[i].Millis(), c.Speedup[i])
				}
			}
			continue
		}
		fmt.Fprintf(w, "\n%s (%s, %s)\n", spec.Name, spec.Model, spec.Inputs[sc])
		fmt.Fprintf(w, "  %-6s", "procs")
		for _, c := range curves {
			fmt.Fprintf(w, " %8s", c.Arch)
		}
		fmt.Fprintln(w)
		for pi, p := range s.Procs {
			fmt.Fprintf(w, "  %-6d", p)
			for _, c := range curves {
				fmt.Fprintf(w, " %8.2f", c.Speedup[pi])
			}
			fmt.Fprintln(w)
		}
	}
	if s.Out.BenchJSON == "" {
		return nil
	}
	doc := struct {
		Benchmark string        `json:"benchmark"`
		Scale     string        `json:"scale"`
		Cells     []figure8Cell `json:"cells"`
	}{"figure8", sc.String(), cells}
	if err := writeJSON(s.Out.BenchJSON, doc); err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	return nil
}

// renderTable6 prints the message statistics at 16 processors.
func renderTable6(s Spec, opt options, w io.Writer) error {
	sc := specScale(s)
	const nprocs = 16
	fmt.Fprintf(w, "Table 6: message sizes, rates and interface utilization on %d processors\n", nprocs)
	fmt.Fprintf(w, "  %-12s %-5s %10s %10s %10s %10s\n",
		"Program", "Arch", "AvgSize B", "Rate op/ms", "AgentUtil", "CPUStolen")
	for _, spec := range specApps(s) {
		for _, aname := range []string{"HW1", "MP1", "SW1"} {
			a, _ := arch.ByName(aname)
			res, err := workload.RunOpts(spec.New(sc), a, topo(nprocs, 1), opt.workload())
			if err != nil {
				fmt.Fprintf(w, "  %-12s %-5s ERROR: %v\n", spec.Name, aname, err)
				continue
			}
			fmt.Fprintf(w, "  %-12s %-5s %10.0f %10.2f %9.1f%% %9.1f%%\n",
				spec.Name, aname, res.AvgMsgSize, res.MsgRate, 100*res.AgentUtil, 100*res.CPUStolen)
		}
	}
	return nil
}
