package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
)

// Manifest is the deterministic record emitted alongside every run:
// enough to prove two invocations ran the same experiment and produced
// the same bytes. SpecSHA256 hashes the normalized spec's canonical
// JSON; OutputSHA256 digests everything the run wrote to its output
// writer. Both are pure functions of the spec, so a manifest mismatch
// is a real behavior change, never noise.
type Manifest struct {
	Name         string `json:"name,omitempty"`
	Kind         string `json:"kind"`
	SpecSHA256   string `json:"spec_sha256"`
	Seed         uint64 `json:"seed"`
	OutputSHA256 string `json:"output_sha256"`
	OutputBytes  int64  `json:"output_bytes"`
}

// JSON encodes the manifest as a single JSON line.
func (m Manifest) JSON() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		// Manifest has no unmarshalable fields; this cannot happen.
		panic(fmt.Sprintf("scenario: marshal manifest: %v", err))
	}
	return append(b, '\n')
}

// specHash returns the sha256 of the normalized spec's canonical JSON.
// SimShards is masked out first: parallel execution changes how many
// cores run the experiment, never the experiment — the same spec at any
// shard count must carry the same manifest.
func specHash(s Spec) (string, error) {
	s.Topology.SimShards = 0
	b, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("scenario: hash spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// digestWriter tees writes into a sha256 so the run's manifest can
// report the exact output digest without buffering the output.
type digestWriter struct {
	w io.Writer
	h hash.Hash
	n int64
}

func newDigestWriter(w io.Writer) *digestWriter {
	return &digestWriter{w: w, h: sha256.New()}
}

func (d *digestWriter) Write(p []byte) (int, error) {
	n, err := d.w.Write(p)
	d.h.Write(p[:n])
	d.n += int64(n)
	return n, err
}

func (d *digestWriter) sum() string { return hex.EncodeToString(d.h.Sum(nil)) }
