package scenario

import (
	"fmt"
	"io"
	"os"

	"mproxy/internal/comm"
	"mproxy/internal/fault"
	"mproxy/internal/machine"
	"mproxy/internal/rel"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
	"mproxy/internal/trace/metrics"
	"mproxy/internal/trace/span"
	"mproxy/internal/trace/timeline"
	"mproxy/internal/workload"
)

// options is the resolved per-run simulation configuration: everything
// the spec's fault/transport/tuning fields distill to, in the shape the
// drivers consume. All of it travels explicitly — no process-wide
// installation, so concurrent runs with different options never
// interfere.
type options struct {
	fabric comm.Options
	plane  machine.FaultPlane
	heap   int
}

func (o options) workload() workload.Options {
	return workload.Options{Fabric: o.fabric, Fault: o.plane, HeapBytes: o.heap}
}

// resolve distills a normalized spec into driver options and the
// human-readable fault description line the legacy binaries printed.
func resolve(s Spec) (options, string, error) {
	opt := options{
		fabric: comm.Options{
			CommandQueueCap: s.CommandQueueCap,
			ProxySched:      s.Topology.ProxySched,
		},
		heap: s.HeapBytes,
	}
	cfg, err := fault.Parse(s.Fault.Spec, s.Fault.Seed)
	if err != nil {
		return options{}, "", fmt.Errorf("scenario: bad fault spec: %w", err)
	}
	if !cfg.Active() {
		return opt, "", nil
	}
	opt.plane = fault.NewPlane(cfg)
	if s.Fault.Rel == nil || *s.Fault.Rel {
		relCfg := rel.DefaultConfig()
		opt.fabric.Rel = &relCfg
		return opt, fmt.Sprintf("faults: %s (seed %d), reliable transport on", s.Fault.Spec, s.Fault.Seed), nil
	}
	return opt, fmt.Sprintf("faults: %s (seed %d), reliable transport OFF (operations may hang or lose data)", s.Fault.Spec, s.Fault.Seed), nil
}

// Run validates and executes one experiment, writing its rendered
// output to w and returning the run manifest. The output bytes are a
// pure function of the spec: the manifest's OutputSHA256 digests
// exactly what was written to w.
func Run(spec Spec, w io.Writer) (Manifest, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return Manifest{}, err
	}
	hash, err := specHash(spec)
	if err != nil {
		return Manifest{}, err
	}
	if dir := spec.Obs.Forensics; dir != "" {
		// Fail before simulating: a long sweep that cannot write its
		// forensics at the end would waste the whole run.
		st, err := os.Stat(dir)
		if err != nil || !st.IsDir() {
			return Manifest{}, fmt.Errorf("scenario: forensics output directory %q does not exist (create it, or point -forensics elsewhere)", dir)
		}
	}
	opt, faultDesc, err := resolve(spec)
	if err != nil {
		return Manifest{}, err
	}
	dw := newDigestWriter(w)
	report, err := installObs(spec.Obs)
	if err != nil {
		return Manifest{}, err
	}
	defer report(io.Discard) // drained below on success; uninstalls on error paths
	if faultDesc != "" && spec.Kind != KindLoss {
		fmt.Fprintln(dw, faultDesc)
	}
	if err := runKind(spec, opt, dw); err != nil {
		return Manifest{}, err
	}
	report(dw)
	return Manifest{
		Name:         spec.Name,
		Kind:         spec.Kind,
		SpecSHA256:   hash,
		Seed:         spec.Fault.Seed,
		OutputSHA256: dw.sum(),
		OutputBytes:  dw.n,
	}, nil
}

// runKind dispatches a normalized, validated spec to its renderer.
func runKind(s Spec, opt options, w io.Writer) error {
	switch s.Kind {
	case KindModel:
		return renderModel(s, w)
	case KindMicroParams:
		return renderTable3(s, w)
	case KindMicroTable4:
		return renderTable4(s, opt, w)
	case KindMicroSweep:
		return renderFigure7(s, opt, w)
	case KindAppsList:
		return renderAppsList(s, w)
	case KindAppsFigure8:
		return renderFigure8(s, opt, w)
	case KindAppsTable6:
		return renderTable6(s, opt, w)
	case KindSMP:
		return renderSMP(s, opt, w)
	case KindQueue:
		return renderQueue(s, opt, w)
	case KindLoss:
		return renderLoss(s, opt, w)
	case KindProf:
		return renderProf(s, opt, w)
	case KindServing:
		return renderServing(s, opt, w)
	case KindProxySweep:
		return renderProxySweep(s, opt, w)
	}
	// Validate accepted the kind; every kind must be dispatched above.
	panic("scenario: unhandled kind " + s.Kind)
}

// installObs activates the spec's observability collectors via the
// process-wide tracer and returns a report function that renders their
// summaries to the given writer and uninstalls the tracer. The report
// runs at most once; later calls are no-ops, so the deferred cleanup in
// Run is safe after a successful explicit report. Observability is the
// one deliberately process-wide mechanism left (the drivers build
// engines internally, and a cross-engine trace needs a cross-engine
// collector); when active, the workload pool degrades to one worker so
// the stream stays ordered.
func installObs(o ObsSpec) (report func(io.Writer), err error) {
	if !o.Enabled() {
		return func(io.Writer) {}, nil
	}
	var digest *trace.Digest
	var coll *metrics.Collector
	var asm *span.Assembler
	var smp *timeline.Sampler
	var tracers []trace.Tracer
	if o.Trace {
		digest = trace.NewDigest()
		tracers = append(tracers, digest)
	}
	if o.Metrics != "" {
		coll = metrics.NewCollector()
		tracers = append(tracers, coll)
	}
	if o.Prof != "" || o.Chrome != "" || o.Breakdown {
		asm = span.NewAssembler()
		smp = timeline.NewSampler(0)
		timeline.Attach(smp)
		tracers = append(tracers, asm, smp)
	}
	if t := trace.Multi(tracers...); t != nil {
		sim.SetGlobalTracer(t)
	}
	done := false
	return func(w io.Writer) {
		if done {
			return
		}
		done = true
		sim.SetGlobalTracer(nil)
		if asm != nil {
			timeline.Detach()
		}
		if coll != nil {
			switch o.Metrics {
			case "json":
				out, err := coll.JSON()
				if err != nil {
					fmt.Fprintln(os.Stderr, "metrics:", err)
					return
				}
				fmt.Fprintln(w, out)
			default:
				fmt.Fprint(w, coll.Summary())
			}
		}
		if asm != nil {
			smp.Flush()
			if o.Breakdown {
				fmt.Fprint(w, span.Aggregate(asm.Spans()).Table())
			}
			if o.Prof != "" {
				p := timeline.BuildProfile(asm, smp, "")
				if b, err := p.JSON(); err != nil {
					fmt.Fprintln(os.Stderr, "prof:", err)
				} else if err := os.WriteFile(o.Prof, b, 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "prof:", err)
				}
			}
			if o.Chrome != "" {
				if b, err := timeline.ChromeTrace(asm.Spans(), smp.Windows()); err != nil {
					fmt.Fprintln(os.Stderr, "chrome:", err)
				} else if err := os.WriteFile(o.Chrome, b, 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "chrome:", err)
				}
			}
		}
		if digest != nil {
			fmt.Fprintf(w, "trace digest: sha256:%s over %d events (last at %v)\n",
				digest.Sum(), digest.Count(), sim.Time(digest.LastAt()))
		}
	}, nil
}
