package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mproxy/internal/arch"
	"mproxy/internal/micro"
)

// published holds Table 4's published measurements, printed next to the
// simulated values.
var published = map[string][5]float64{
	"HW0": {10.0, 9.5, 1.0, 28.2, 25.0},
	"HW1": {10.6, 9.6, 1.5, 30.2, 150},
	"MP0": {30.0, 28.0, 3.5, 63.5, 22.3},
	"MP1": {26.6, 24.7, 3.0, 58.0, 86.7},
	"MP2": {16.9, 16.4, 0.75, 41.1, 86.7},
	"SW1": {36.1, 34.1, 15.0, 107.8, 86.7},
}

// specArchs resolves the (validated) spec's design-point names.
func specArchs(s Spec) []arch.Params {
	out := make([]arch.Params, 0, len(s.Archs))
	for _, name := range s.Archs {
		a, _ := arch.ByName(name)
		out = append(out, a)
	}
	return out
}

func (o options) micro() micro.Options {
	return micro.Options{Fabric: o.fabric, Fault: o.plane}
}

// writeJSON emits machine-readable benchmark results so sweeps can be
// archived and diffed across revisions without scraping the tables.
func writeJSON(path string, v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// renderTable3 prints the design-point simulation parameters.
func renderTable3(s Spec, w io.Writer) error {
	archs := specArchs(s)
	fmt.Fprintln(w, "Table 3: simulation parameters for the design points")
	fmt.Fprintf(w, "%-34s", "Parameter")
	for _, a := range archs {
		fmt.Fprintf(w, " %8s", a.Name)
	}
	fmt.Fprintln(w)
	row := func(name string, f func(a arch.Params) string) {
		fmt.Fprintf(w, "%-34s", name)
		for _, a := range archs {
			fmt.Fprintf(w, " %8s", f(a))
		}
		fmt.Fprintln(w)
	}
	row("Cache Miss Latency (us)", func(a arch.Params) string { return fmt.Sprintf("%.2f", a.CacheMiss.Micros()) })
	row("Agent-Proc Miss Latency (us)", func(a arch.Params) string { return fmt.Sprintf("%.2f", a.AgentMiss.Micros()) })
	row("Agent Speed (x75 MHz)", func(a arch.Params) string { return fmt.Sprintf("%.0f", a.Speed) })
	row("Polling Delay P (us)", func(a arch.Params) string {
		if a.Kind != arch.Proxy {
			return "n/a"
		}
		return fmt.Sprintf("%.2f", a.PollDelay().Micros())
	})
	row("Adapter Overhead (us)", func(a arch.Params) string {
		if a.Kind != arch.CustomHW {
			return "n/a"
		}
		return fmt.Sprintf("%.2f", a.AdapterOvh.Micros())
	})
	row("Syscall / Interrupt (us)", func(a arch.Params) string {
		if a.Kind != arch.Syscall {
			return "n/a"
		}
		return fmt.Sprintf("%.1f/%.1f", a.SyscallOvh.Micros(), a.InterruptOvh.Micros())
	})
	row("DMA Bandwidth (MB/s)", func(a arch.Params) string { return fmt.Sprintf("%.0f", a.DMABW) })
	row("Network Latency (us)", func(a arch.Params) string { return fmt.Sprintf("%.2f", a.NetLatency.Micros()) })
	row("Network Bandwidth (MB/s)", func(a arch.Params) string { return fmt.Sprintf("%.0f", a.NetBW) })
	row("Page Pinning (us/page)", func(a arch.Params) string {
		if a.Prepinned {
			return "pre-pin"
		}
		return fmt.Sprintf("%.0f", a.PinPerPage.Micros())
	})
	return nil
}

type table4JSONRow struct {
	Arch       string  `json:"arch"`
	PutLatency float64 `json:"put_latency_us"`
	GetLatency float64 `json:"get_latency_us"`
	PutSyncOvh float64 `json:"put_sync_overhead_us"`
	AMLatency  float64 `json:"am_latency_us"`
	PeakBW     float64 `json:"peak_bw_mbs"`
}

func table4JSON(rows []micro.Table4Row) any {
	out := struct {
		Benchmark string          `json:"benchmark"`
		Rows      []table4JSONRow `json:"rows"`
	}{Benchmark: "table4"}
	for _, r := range rows {
		out.Rows = append(out.Rows, table4JSONRow{
			Arch: r.Arch, PutLatency: r.PutLatency, GetLatency: r.GetLatency,
			PutSyncOvh: r.PutSyncOvh, AMLatency: r.AMLatency, PeakBW: r.PeakBW,
		})
	}
	return out
}

// renderTable4 runs the micro-benchmarks and prints the Table 4
// simulated-vs-published comparison.
func renderTable4(s Spec, opt options, w io.Writer) error {
	archs := specArchs(s)
	rows := make([]micro.Table4Row, len(archs))
	for i, a := range archs {
		rows[i] = micro.Table4Opts(a, opt.micro())
	}
	fmt.Fprintln(w, "Table 4: micro-benchmark measurements (simulated / published)")
	fmt.Fprintf(w, "%-16s", "Measurement")
	for _, r := range rows {
		fmt.Fprintf(w, " %15s", r.Arch)
	}
	fmt.Fprintln(w)
	print := func(name string, idx int, get func(micro.Table4Row) float64) {
		fmt.Fprintf(w, "%-16s", name)
		for i := range rows {
			pub := published[rows[i].Arch][idx]
			fmt.Fprintf(w, " %7.1f/%-7.1f", get(rows[i]), pub)
		}
		fmt.Fprintln(w)
	}
	print("PUT latency us", 0, func(r micro.Table4Row) float64 { return r.PutLatency })
	print("GET latency us", 1, func(r micro.Table4Row) float64 { return r.GetLatency })
	print("PUT+sync ovh us", 2, func(r micro.Table4Row) float64 { return r.PutSyncOvh })
	print("AM latency us", 3, func(r micro.Table4Row) float64 { return r.AMLatency })
	print("Peak BW MB/s", 4, func(r micro.Table4Row) float64 { return r.PeakBW })
	if s.Out.BenchJSON != "" {
		if err := writeJSON(s.Out.BenchJSON, table4JSON(rows)); err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
	}
	return nil
}

// sweepData holds one Figure 7 sweep, computed once and shared by the
// table, CSV and JSON emitters.
type sweepData struct {
	sizes []int
	put   [][]micro.Point // indexed [arch][size]
	store [][]micro.Point
}

func runSweep(archs []arch.Params, sizes []int, opt micro.Options) sweepData {
	sd := sweepData{
		sizes: sizes,
		put:   make([][]micro.Point, len(archs)),
		store: make([][]micro.Point, len(archs)),
	}
	for i, a := range archs {
		sd.put[i] = micro.PingPongPutOpts(a, sd.sizes, opt)
		sd.store[i] = micro.PingPongStoreOpts(a, sd.sizes, opt)
	}
	return sd
}

type sweepJSONPoint struct {
	Benchmark string  `json:"benchmark"`
	Arch      string  `json:"arch"`
	Bytes     int     `json:"bytes"`
	LatencyUs float64 `json:"latency_us"`
	BWMBs     float64 `json:"bandwidth_mbs"`
}

func sweepJSON(archs []arch.Params, sd sweepData) any {
	var pts []sweepJSONPoint
	for i, a := range archs {
		for _, pt := range sd.put[i] {
			pts = append(pts, sweepJSONPoint{"put", a.Name, pt.Bytes, pt.Latency, pt.BW})
		}
		for _, pt := range sd.store[i] {
			pts = append(pts, sweepJSONPoint{"amstore", a.Name, pt.Bytes, pt.Latency, pt.BW})
		}
	}
	return struct {
		Benchmark string           `json:"benchmark"`
		Points    []sweepJSONPoint `json:"points"`
	}{"figure7", pts}
}

// renderFigure7 runs the ping-pong sweeps and prints the Figure 7
// latency/bandwidth tables (or CSV).
func renderFigure7(s Spec, opt options, w io.Writer) error {
	archs := specArchs(s)
	sd := runSweep(archs, s.Sizes, opt.micro())
	if s.Out.Format == "csv" {
		fmt.Fprintln(w, "benchmark,arch,bytes,latency_us,bandwidth_mbs")
		for i, a := range archs {
			for _, pt := range sd.put[i] {
				fmt.Fprintf(w, "put,%s,%d,%.3f,%.3f\n", a.Name, pt.Bytes, pt.Latency, pt.BW)
			}
			for _, pt := range sd.store[i] {
				fmt.Fprintf(w, "amstore,%s,%d,%.3f,%.3f\n", a.Name, pt.Bytes, pt.Latency, pt.BW)
			}
		}
	} else {
		half := func(title string, curves [][]micro.Point) {
			fmt.Fprintln(w, title)
			fmt.Fprintf(w, "%8s", "bytes")
			for _, a := range archs {
				fmt.Fprintf(w, " %9s-lat %9s-bw", a.Name, a.Name)
			}
			fmt.Fprintln(w)
			for si, n := range sd.sizes {
				fmt.Fprintf(w, "%8d", n)
				for i := range archs {
					fmt.Fprintf(w, " %13.1f %12.1f", curves[i][si].Latency, curves[i][si].BW)
				}
				fmt.Fprintln(w)
			}
		}
		half("Figure 7: PUT ping-pong one-way latency (us) and stream bandwidth (MB/s)", sd.put)
		fmt.Fprintln(w)
		half("Figure 7: AM bulk-store ping-pong one-way latency (us) and bandwidth (MB/s)", sd.store)
	}
	if s.Out.BenchJSON != "" {
		if err := writeJSON(s.Out.BenchJSON, sweepJSON(archs, sd)); err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
	}
	return nil
}
