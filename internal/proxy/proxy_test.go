package proxy

import (
	"testing"
	"testing/quick"
)

func TestCommandQueueFIFO(t *testing.T) {
	q := NewCommandQueue[any](0, 4)
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(0, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		v, ok := q.Dequeue()
		if !ok || v.(int) != i {
			t.Fatalf("dequeue %d: %v %v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue from empty queue")
	}
}

func TestCommandQueueFull(t *testing.T) {
	q := NewCommandQueue[any](0, 2)
	_ = q.Enqueue(0, 1)
	_ = q.Enqueue(0, 2)
	if err := q.Enqueue(0, 3); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if q.FullHits() != 1 {
		t.Fatalf("fullHits = %d", q.FullHits())
	}
	// Draining one entry frees a slot.
	q.Dequeue()
	if err := q.Enqueue(0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestCommandQueueWrapAround(t *testing.T) {
	q := NewCommandQueue[any](0, 3)
	next := 0
	for round := 0; round < 10; round++ {
		_ = q.Enqueue(0, round*2)
		_ = q.Enqueue(0, round*2+1)
		for i := 0; i < 2; i++ {
			v, ok := q.Dequeue()
			if !ok || v.(int) != next {
				t.Fatalf("round %d: got %v want %d", round, v, next)
			}
			next++
		}
	}
	if q.Enqueued() != 20 {
		t.Fatalf("enqueued = %d", q.Enqueued())
	}
}

func TestForeignProducerFaults(t *testing.T) {
	q := NewCommandQueue[any](7, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign producer did not fault")
		}
	}()
	_ = q.Enqueue(8, "intruder")
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCommandQueue[any](0, 0)
}

func TestScannerRoundRobin(t *testing.T) {
	s := NewScanner[any]()
	var qs []*CommandQueue[any]
	for i := 0; i < 3; i++ {
		q := NewCommandQueue[any](i, 8)
		idx := s.Register(q)
		if idx != i {
			t.Fatalf("index = %d", idx)
		}
		qs = append(qs, q)
	}
	// Two commands in each queue; round-robin must interleave them.
	for i, q := range qs {
		_ = q.Enqueue(i, i*10)
		_ = q.Enqueue(i, i*10+1)
		s.MarkNonEmpty(i)
	}
	var order []int
	for {
		cmd, _, ok := s.Next()
		if !ok {
			break
		}
		order = append(order, cmd.(int))
	}
	want := []int{0, 10, 20, 1, 11, 21}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScannerEmpty(t *testing.T) {
	s := NewScanner[any]()
	if _, _, ok := s.Next(); ok {
		t.Fatal("empty scanner produced a command")
	}
	q := NewCommandQueue[any](0, 2)
	s.Register(q)
	if _, _, ok := s.Next(); ok {
		t.Fatal("scanner with empty queue produced a command")
	}
}

func TestScannerStaleBit(t *testing.T) {
	s := NewScanner[any]()
	q := NewCommandQueue[any](0, 4)
	s.Register(q)
	_ = q.Enqueue(0, 1)
	s.MarkNonEmpty(0)
	// Consume behind the scanner's back; the bit is now stale.
	q.Dequeue()
	if _, _, ok := s.Next(); ok {
		t.Fatal("scanner returned a phantom command")
	}
}

func TestScannerBitVectorSavesHeadChecks(t *testing.T) {
	// 100 queues, only one non-empty: head checks must not scale with the
	// number of registered queues.
	s := NewScanner[any]()
	var target *CommandQueue[any]
	for i := 0; i < 100; i++ {
		q := NewCommandQueue[any](i, 2)
		s.Register(q)
		if i == 77 {
			target = q
		}
	}
	_ = target.Enqueue(77, "cmd")
	s.MarkNonEmpty(77)
	cmd, idx, ok := s.Next()
	if !ok || idx != 77 || cmd != "cmd" {
		t.Fatalf("got %v %d %v", cmd, idx, ok)
	}
	if s.HeadChecks() != 1 {
		t.Fatalf("head checks = %d, want 1", s.HeadChecks())
	}
	if s.Probes() > 4 {
		t.Fatalf("probes = %d, want <= 4 word probes", s.Probes())
	}
}

func TestScannerManyQueuesFairness(t *testing.T) {
	// Every queue keeps producing; consumption counts must stay balanced
	// (no starvation) thanks to round-robin order.
	const nq = 10
	s := NewScanner[any]()
	qs := make([]*CommandQueue[any], nq)
	for i := range qs {
		qs[i] = NewCommandQueue[any](i, 4)
		s.Register(qs[i])
	}
	counts := make([]int, nq)
	for round := 0; round < 100; round++ {
		for i, q := range qs {
			if q.Enqueue(i, i) == nil {
				s.MarkNonEmpty(i)
			}
		}
		for k := 0; k < nq; k++ {
			if cmd, _, ok := s.Next(); ok {
				counts[cmd.(int)]++
			}
		}
	}
	for i, c := range counts {
		if c < 90 || c > 110 {
			t.Fatalf("queue %d served %d times; counts=%v", i, c, counts)
		}
	}
}

func TestPropertyQueuePreservesOrder(t *testing.T) {
	// Property: any interleaving of enqueues and dequeues that respects
	// capacity yields FIFO order.
	f := func(ops []bool) bool {
		q := NewCommandQueue[any](0, 5)
		nextIn, nextOut := 0, 0
		for _, isEnq := range ops {
			if isEnq {
				if err := q.Enqueue(0, nextIn); err == nil {
					nextIn++
				}
			} else if v, ok := q.Dequeue(); ok {
				if v.(int) != nextOut {
					return false
				}
				nextOut++
			}
		}
		for {
			v, ok := q.Dequeue()
			if !ok {
				break
			}
			if v.(int) != nextOut {
				return false
			}
			nextOut++
		}
		return nextIn == nextOut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScannerConservation(t *testing.T) {
	// Property: the scanner eventually yields exactly the commands that
	// were enqueued, no more, no fewer.
	f := func(load []uint8) bool {
		if len(load) == 0 {
			return true
		}
		if len(load) > 20 {
			load = load[:20]
		}
		s := NewScanner[any]()
		total := 0
		for i, l := range load {
			q := NewCommandQueue[any](i, 256)
			s.Register(q)
			for k := 0; k < int(l%8); k++ {
				if q.Enqueue(i, k) == nil {
					total++
				}
			}
			if !q.Empty() {
				s.MarkNonEmpty(i)
			}
		}
		got := 0
		for {
			if _, _, ok := s.Next(); !ok {
				break
			}
			got++
		}
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSuspendResume(t *testing.T) {
	s := NewScanner[any]()
	qs := make([]*CommandQueue[any], 3)
	for i := range qs {
		qs[i] = NewCommandQueue[any](i, 8)
		s.Register(qs[i])
	}
	// Suspend queue 1 (its process was descheduled); its commands must
	// not be scanned.
	s.Suspend(1)
	if !s.Suspended(1) || s.Suspended(0) {
		t.Fatal("suspension state wrong")
	}
	for i, q := range qs {
		_ = q.Enqueue(i, i*10)
		s.MarkNonEmpty(i)
	}
	var got []int
	for {
		cmd, _, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, cmd.(int))
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 20 {
		t.Fatalf("scanned %v, want [0 20]", got)
	}
	// Resume: the parked command becomes visible.
	s.Resume(1)
	cmd, idx, ok := s.Next()
	if !ok || idx != 1 || cmd.(int) != 10 {
		t.Fatalf("after resume: %v %d %v", cmd, idx, ok)
	}
}

func TestSuspendEmptyQueueResume(t *testing.T) {
	s := NewScanner[any]()
	q := NewCommandQueue[any](0, 4)
	s.Register(q)
	s.Suspend(0)
	s.Resume(0) // empty: no spurious bit
	if _, _, ok := s.Next(); ok {
		t.Fatal("phantom command after resume of empty queue")
	}
}
