package proxy

import (
	"fmt"
	"strings"
)

// Sched is the per-node proxy-scheduling policy: it decides which of a
// node's proxy processors serves each endpoint's command stream, and
// whether idle proxies may steal scan turns from loaded siblings. The
// policy owns both sides of the binding — an endpoint's command queue is
// registered with its home proxy's scanner, and packets addressed to the
// endpoint are dispatched to the same proxy — so a stream's cache and
// queue state stays on one core unless stealing moves a turn.
//
// Policies must be pure functions of their arguments: the assignment is
// computed once at fabric construction and never consults runtime state,
// which is what keeps runs bit-deterministic across execution modes.
type Sched interface {
	// Name returns the policy's registry name.
	Name() string
	// Home returns the proxy index (in [0, nProxies)) serving the
	// endpoint at the given node, node-local slot, and global rank.
	Home(node, slot, rank, nProxies int) int
	// Steal reports whether idle proxies steal scan turns from loaded
	// siblings on the same node.
	Steal() bool
}

// Policy registry names.
const (
	SchedStatic = "static"
	SchedShard  = "shard"
	SchedSteal  = "steal"
)

// SchedNames lists every valid policy name in canonical order.
func SchedNames() []string { return []string{SchedStatic, SchedShard, SchedSteal} }

// SchedByName resolves a policy name; the empty string means the default
// static slot-modulo policy.
func SchedByName(name string) (Sched, error) {
	switch name {
	case "", SchedStatic:
		return staticSched{}, nil
	case SchedShard:
		return shardSched{}, nil
	case SchedSteal:
		return stealSched{}, nil
	}
	return nil, fmt.Errorf("proxy: unknown sched policy %q (want one of %s)",
		name, strings.Join(SchedNames(), ", "))
}

// staticSched is the paper's binding: slot modulo proxy count. Every
// node assigns identically — slot 0 always lands on proxy 0 — which is
// exactly the behaviour the fabric hardwired before the policy layer
// existed, and the baseline every golden output is blessed against.
type staticSched struct{}

func (staticSched) Name() string                      { return SchedStatic }
func (staticSched) Home(_, slot, _, nProxies int) int { return slot % nProxies }
func (staticSched) Steal() bool                       { return false }

// shardSched hashes the endpoint's global rank, so a KV shard's command
// stream (its server endpoint's submissions and the packets addressed to
// it) stays on one proxy core while the server->proxy assignment
// decorrelates across nodes — under static modulo every node's slot-0
// server pins the same proxy index, stacking the hottest streams on one
// core per node.
type shardSched struct{}

func (shardSched) Name() string { return SchedShard }
func (shardSched) Home(_, _, rank, nProxies int) int {
	return int(Mix64(uint64(rank)) % uint64(nProxies))
}
func (shardSched) Steal() bool { return false }

// stealSched places like static but lets an idle proxy steal a scan turn
// from a loaded sibling's command queues, charged a cross-queue AgentMiss
// penalty by the fabric so stealing is never free in the cost model.
type stealSched struct{}

func (stealSched) Name() string                      { return SchedSteal }
func (stealSched) Home(_, slot, _, nProxies int) int { return slot % nProxies }
func (stealSched) Steal() bool                       { return true }

// Mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mix used
// for shard-affine placement and for the seeded victim order of the
// stealing policy. Exported so the fabric's steal path and the policy
// hash the same way.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
