package proxy

import "testing"

// TestScannerObserver checks the per-pass observer hook the trace layer
// hangs off the scanner: one notification per Next call, with pass-local
// (not cumulative) probe and head-check counts and the found flag.
func TestScannerObserver(t *testing.T) {
	s := NewScanner[any]()
	type pass struct {
		probes, headChecks int64
		found              bool
	}
	var passes []pass
	s.SetObserver(func(probes, headChecks int64, found bool) {
		passes = append(passes, pass{probes, headChecks, found})
	})

	// Empty scan set: a pass is still observed.
	if _, _, ok := s.Next(); ok {
		t.Fatal("Next on empty scanner found a command")
	}
	if len(passes) != 1 || passes[0] != (pass{0, 0, false}) {
		t.Fatalf("empty-set pass = %+v", passes)
	}

	qa := NewCommandQueue[any](0, 4)
	qb := NewCommandQueue[any](1, 4)
	ia := s.Register(qa)
	ib := s.Register(qb)
	if err := qa.Enqueue(0, "a"); err != nil {
		t.Fatal(err)
	}
	s.MarkNonEmpty(ia)
	if err := qb.Enqueue(1, "b"); err != nil {
		t.Fatal(err)
	}
	s.MarkNonEmpty(ib)

	for i := 0; i < 2; i++ {
		if _, _, ok := s.Next(); !ok {
			t.Fatalf("Next %d found nothing", i)
		}
	}
	if _, _, ok := s.Next(); ok {
		t.Fatal("drained scanner still found a command")
	}
	if len(passes) != 4 {
		t.Fatalf("observed %d passes, want 4", len(passes))
	}
	for i, p := range passes[1:3] {
		if !p.found {
			t.Errorf("pass %d: found = false, want true", i+1)
		}
		if p.headChecks != 1 {
			t.Errorf("pass %d: headChecks = %d, want 1 (per-pass, not cumulative)", i+1, p.headChecks)
		}
		if p.probes < 1 {
			t.Errorf("pass %d: probes = %d, want >= 1", i+1, p.probes)
		}
	}
	if last := passes[3]; last.found || last.probes < 1 {
		t.Errorf("drained pass = %+v, want found=false with >=1 probe", last)
	}

	// Removing the observer stops notifications.
	s.SetObserver(nil)
	s.Next()
	if len(passes) != 4 {
		t.Fatalf("observer fired after removal: %d passes", len(passes))
	}
}
