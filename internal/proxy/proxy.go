// Package proxy implements the message proxy's user-visible data
// structures: the per-user command queues and the round-robin polling
// scanner of the main dispatch loop (Figure 5 of the paper).
//
// Each user process owns a single-producer, single-consumer command queue
// mapped in its own address space, so users are protected from each other
// and no locks are needed even with truly concurrent producers on an SMP:
// queue synchronization is a full/empty flag in each entry. The proxy scans
// registered queues and the network input in round-robin order; a shared
// non-empty bit vector lets it detect the state of many queues in a single
// probe (the polling-delay optimization discussed in Section 4.1).
//
// Both structures are generic in the command type: the owner instantiates
// them with its concrete command struct, so enqueueing stores the command
// inline in the ring entry instead of boxing it into an `any` — one fewer
// heap allocation per message on the simulator's hottest path.
package proxy

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrFull is returned when a command queue has no free entry; the caller
// must retry after the proxy drains the queue (backpressure).
var ErrFull = errors.New("proxy: command queue full")

// entry is one slot of a command queue. Valid is the full/empty flag that
// replaces locks: the producer sets it last, the consumer clears it last.
type entry[T any] struct {
	valid bool
	cmd   T
}

// CommandQueue is a bounded SPSC ring of T. Only the owning rank may
// produce into it; only the proxy consumes.
type CommandQueue[T any] struct {
	owner    int
	ring     []entry[T]
	head     int // consumer position
	tail     int // producer position
	enqueued int64
	fullHits int64
}

// NewCommandQueue returns a queue of the given capacity owned by rank.
func NewCommandQueue[T any](owner, capacity int) *CommandQueue[T] {
	if capacity <= 0 {
		panic("proxy: command queue capacity must be positive")
	}
	return &CommandQueue[T]{owner: owner, ring: make([]entry[T], capacity)}
}

// Owner returns the producing rank.
func (q *CommandQueue[T]) Owner() int { return q.owner }

// Cap returns the queue capacity.
func (q *CommandQueue[T]) Cap() int { return len(q.ring) }

// Enqueue submits a command on behalf of rank. It fails with ErrFull when
// the ring has no empty entry, and panics if a foreign rank produces into
// the queue — foreign processes cannot reach it in a real system, since it
// is mapped only in the owner's address space.
func (q *CommandQueue[T]) Enqueue(rank int, cmd T) error {
	if rank != q.owner {
		panic(fmt.Sprintf("proxy: rank %d produced into rank %d's command queue", rank, q.owner))
	}
	e := &q.ring[q.tail]
	if e.valid {
		q.fullHits++
		return ErrFull
	}
	e.cmd = cmd
	e.valid = true
	q.tail = (q.tail + 1) % len(q.ring)
	q.enqueued++
	return nil
}

// Dequeue removes the head command, if any (consumer side).
func (q *CommandQueue[T]) Dequeue() (T, bool) {
	e := &q.ring[q.head]
	if !e.valid {
		var zero T
		return zero, false
	}
	cmd := e.cmd
	var zero T
	e.cmd = zero
	e.valid = false
	q.head = (q.head + 1) % len(q.ring)
	return cmd, true
}

// Empty reports whether the queue has no valid entries.
func (q *CommandQueue[T]) Empty() bool { return !q.ring[q.head].valid }

// Len returns the number of valid entries.
func (q *CommandQueue[T]) Len() int {
	n := 0
	for i := range q.ring {
		if q.ring[i].valid {
			n++
		}
	}
	return n
}

// Enqueued returns the total commands ever accepted.
func (q *CommandQueue[T]) Enqueued() int64 { return q.enqueued }

// FullHits returns how many submissions bounced off a full ring.
func (q *CommandQueue[T]) FullHits() int64 { return q.fullHits }

// Scanner is the proxy's round-robin poll over registered command queues.
// Producers set a bit in a shared bit vector when they enqueue; the scanner
// probes whole words of the vector instead of touching every queue head,
// so an idle queue costs 1/64th of a probe rather than a cache miss.
type Scanner[T any] struct {
	queues    []*CommandQueue[T]
	bitvec    []uint64
	pos       int
	suspended map[int]bool

	probes     int64 // word probes of the bit vector
	headChecks int64 // queue-head reads (cache-miss-prone)

	// observer, when non-nil, is notified after every scan pass with the
	// pass's probe and head-check counts and whether it found a command.
	// The communication fabric uses it to feed the trace stream.
	observer Observer
}

// Observer receives one notification per completed scan pass (one Next
// call): the number of bit-vector word probes and queue-head reads the
// pass performed, and whether it dequeued a command.
type Observer func(probes, headChecks int64, found bool)

// SetObserver installs (or, with nil, removes) the scan observer.
func (s *Scanner[T]) SetObserver(o Observer) { s.observer = o }

// NewScanner returns an empty scanner.
func NewScanner[T any]() *Scanner[T] { return &Scanner[T]{} }

// Register adds a queue to the scan set and returns its index.
func (s *Scanner[T]) Register(q *CommandQueue[T]) int {
	idx := len(s.queues)
	s.queues = append(s.queues, q)
	if idx/64 >= len(s.bitvec) {
		s.bitvec = append(s.bitvec, 0)
	}
	return idx
}

// Queues returns the number of registered queues.
func (s *Scanner[T]) Queues() int { return len(s.queues) }

// MarkNonEmpty is called by a producer after enqueueing into queue idx.
// Marks on suspended queues are deferred until Resume.
func (s *Scanner[T]) MarkNonEmpty(idx int) {
	if s.suspended[idx] {
		return
	}
	s.bitvec[idx/64] |= 1 << (idx % 64)
}

// Next dequeues one command from the next non-empty queue in round-robin
// order starting after the previous hit. It returns the command, the queue
// index, and whether anything was found.
func (s *Scanner[T]) Next() (T, int, bool) {
	var zero T
	n := len(s.queues)
	if n == 0 {
		s.observe(0, 0, false)
		return zero, -1, false
	}
	p0, h0 := s.probes, s.headChecks
	pos := s.pos % n
	// Visit each position at most twice (one full wrap past the start),
	// skipping empty stretches a bit-vector word at a time.
	for visited := 0; visited < 2*n; {
		w := pos / 64
		s.probes++
		rest := s.bitvec[w] >> (pos % 64)
		if rest == 0 {
			// The rest of this word is empty: one probe skips it all.
			next := (w + 1) * 64
			skipped := next
			if skipped > n {
				skipped = n
			}
			visited += skipped - pos
			if next >= n {
				next = 0
			}
			pos = next
			continue
		}
		idx := pos + bits.TrailingZeros64(rest)
		if idx >= n {
			visited += n - pos
			pos = 0
			continue
		}
		visited += idx - pos + 1
		s.headChecks++
		q := s.queues[idx]
		cmd, ok := q.Dequeue()
		if q.Empty() {
			s.bitvec[idx/64] &^= 1 << (idx % 64)
		}
		pos = (idx + 1) % n
		if ok {
			s.pos = pos
			s.observe(s.probes-p0, s.headChecks-h0, true)
			return cmd, idx, true
		}
		// Stale bit (command consumed earlier): keep scanning.
	}
	s.pos = pos
	s.observe(s.probes-p0, s.headChecks-h0, false)
	return zero, -1, false
}

// Pending reports whether the shared non-empty bit vector marks any
// queue. This is the cheap cross-proxy probe the work-stealing policy
// uses to pick a victim without touching queue heads; a set bit may be
// stale (the command was already consumed), but a failed Next probes and
// clears every reachable stale bit, so Pending converges to false.
func (s *Scanner[T]) Pending() bool {
	for _, w := range s.bitvec {
		if w != 0 {
			return true
		}
	}
	return false
}

func (s *Scanner[T]) observe(probes, headChecks int64, found bool) {
	if s.observer != nil {
		s.observer(probes, headChecks, found)
	}
}

// Suspend removes a queue from the scan set without deregistering it:
// the paper's Section 4.1 optimization of "polling only the queues of
// scheduled processes". Pending commands stay queued; producers may keep
// enqueueing, and the commands are picked up after Resume.
func (s *Scanner[T]) Suspend(idx int) {
	if s.suspended == nil {
		s.suspended = make(map[int]bool)
	}
	s.suspended[idx] = true
	s.bitvec[idx/64] &^= 1 << (idx % 64)
}

// Resume returns a suspended queue to the scan set, re-marking it
// non-empty if commands accumulated while it was descheduled.
func (s *Scanner[T]) Resume(idx int) {
	delete(s.suspended, idx)
	if !s.queues[idx].Empty() {
		s.MarkNonEmpty(idx)
	}
}

// Suspended reports whether a queue is currently out of the scan set.
func (s *Scanner[T]) Suspended(idx int) bool { return s.suspended[idx] }

// Restart rebuilds the scanner after a proxy crash-and-restart: the scan
// position returns to queue zero and the shared non-empty bit vector is
// reconstructed by probing every registered queue head. Command queues
// themselves survive a proxy crash — they live in user memory — so
// pending commands are rediscovered rather than lost; suspended queues
// stay suspended (the scheduler state that suspended them outlives the
// proxy process). The head probes are charged to HeadChecks, which is the
// restart's honest cost: one cache-miss-prone read per registered queue.
func (s *Scanner[T]) Restart() {
	s.pos = 0
	for i := range s.bitvec {
		s.bitvec[i] = 0
	}
	for idx, q := range s.queues {
		s.headChecks++
		if !s.suspended[idx] && !q.Empty() {
			s.bitvec[idx/64] |= 1 << (idx % 64)
		}
	}
}

// Probes returns the number of bit-vector word probes performed.
func (s *Scanner[T]) Probes() int64 { return s.probes }

// HeadChecks returns the number of queue-head reads performed; the bit
// vector's value is that HeadChecks stays proportional to commands rather
// than to registered queues.
func (s *Scanner[T]) HeadChecks() int64 { return s.headChecks }
