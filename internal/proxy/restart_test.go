package proxy

import "testing"

func TestScannerRestartRediscoversPendingCommands(t *testing.T) {
	s := NewScanner[any]()
	var qs []*CommandQueue[any]
	for i := 0; i < 70; i++ { // span two bit-vector words
		q := NewCommandQueue[any](i, 4)
		qs = append(qs, q)
		s.Register(q)
	}
	// Commands enqueued but the non-empty marks lost in the "crash".
	for _, idx := range []int{3, 64, 69} {
		if err := qs[idx].Enqueue(idx, idx); err != nil {
			t.Fatal(err)
		}
		s.MarkNonEmpty(idx)
	}
	s.Suspend(69)

	// Simulate the crash wiping the scanner's volatile state.
	s.bitvec[0], s.bitvec[1] = 0, 0
	s.pos = 37

	checksBefore := s.HeadChecks()
	s.Restart()
	if s.HeadChecks()-checksBefore != 70 {
		t.Errorf("restart probed %d heads, want 70", s.HeadChecks()-checksBefore)
	}

	// The two live queues are rediscovered in order; the suspended one is
	// not scanned.
	var got []int
	for {
		cmd, idx, ok := s.Next()
		if !ok {
			break
		}
		if cmd.(int) != idx {
			t.Errorf("queue %d yielded command %v", idx, cmd)
		}
		got = append(got, idx)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 64 {
		t.Errorf("rediscovered queues %v, want [3 64]", got)
	}
	// Resume surfaces the suspended queue's pending command.
	s.Resume(69)
	if _, idx, ok := s.Next(); !ok || idx != 69 {
		t.Errorf("resumed queue not scanned: idx=%d ok=%v", idx, ok)
	}
}
