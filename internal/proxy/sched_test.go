package proxy

import (
	"math/rand"
	"testing"
)

func TestSchedByName(t *testing.T) {
	for _, name := range append(SchedNames(), "") {
		s, err := SchedByName(name)
		if err != nil {
			t.Fatalf("SchedByName(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = SchedStatic
		}
		if s.Name() != want {
			t.Fatalf("SchedByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := SchedByName("round-robin"); err == nil {
		t.Fatal("SchedByName accepted an unknown policy")
	}
}

// TestStaticSchedIsSlotModulo pins the static policy to the binding the
// fabric hardwired before the scheduling layer existed: slot % nProxies,
// independent of node and rank. Every pre-refactor golden output depends
// on this.
func TestStaticSchedIsSlotModulo(t *testing.T) {
	s, _ := SchedByName(SchedStatic)
	if s.Steal() {
		t.Fatal("static policy must not steal")
	}
	for node := 0; node < 3; node++ {
		for slot := 0; slot < 7; slot++ {
			for _, n := range []int{1, 2, 3, 4} {
				rank := node*7 + slot
				if got := s.Home(node, slot, rank, n); got != slot%n {
					t.Fatalf("static.Home(node=%d, slot=%d, rank=%d, n=%d) = %d, want %d",
						node, slot, rank, n, got, slot%n)
				}
			}
		}
	}
}

// TestShardSchedProperties: the shard-affine policy must be in range,
// deterministic, a pure function of rank (node/slot must not matter),
// and must actually decorrelate the slot-0 endpoints that static stacks
// onto proxy 0 on every node.
func TestShardSchedProperties(t *testing.T) {
	s, _ := SchedByName(SchedShard)
	if s.Steal() {
		t.Fatal("shard policy must not steal")
	}
	for rank := 0; rank < 1000; rank++ {
		for _, n := range []int{1, 2, 4, 8} {
			h := s.Home(rank/4, rank%4, rank, n)
			if h < 0 || h >= n {
				t.Fatalf("shard.Home(rank=%d, n=%d) = %d out of range", rank, n, h)
			}
			if h2 := s.Home(99, 99, rank, n); h2 != h {
				t.Fatalf("shard.Home depends on node/slot: %d vs %d", h, h2)
			}
		}
	}
	// With 4 proxies, 1024 consecutive ranks should spread roughly evenly:
	// no proxy takes more than half the streams (static with slot 0 ranks
	// would put 100% on proxy 0).
	const n = 4
	var counts [n]int
	for rank := 0; rank < 1024; rank++ {
		counts[s.Home(0, 0, rank, n)]++
	}
	for i, c := range counts {
		if c == 0 || c > 512 {
			t.Fatalf("shard spread degenerate: proxy %d serves %d of 1024", i, c)
		}
	}
}

func TestStealSchedPlacesLikeStatic(t *testing.T) {
	st, _ := SchedByName(SchedStatic)
	sl, _ := SchedByName(SchedSteal)
	if !sl.Steal() {
		t.Fatal("steal policy must steal")
	}
	for slot := 0; slot < 16; slot++ {
		for _, n := range []int{1, 2, 3, 4} {
			if sl.Home(5, slot, 80+slot, n) != st.Home(5, slot, 80+slot, n) {
				t.Fatalf("steal placement diverges from static at slot %d, n %d", slot, n)
			}
		}
	}
}

// TestScannerFairness is the round-robin starvation property: under a
// randomized enqueue schedule, the gap between consecutive services of
// any queue that has a pending command is bounded by the number of
// registered queues — each Next serves the nearest marked queue after
// the previous hit, so a waiting queue is passed over at most once per
// service of every other queue.
func TestScannerFairness(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 1997} {
		rng := rand.New(rand.NewSource(seed))
		nq := 2 + rng.Intn(130) // spans multiple bit-vector words
		s := NewScanner[int]()
		queues := make([]*CommandQueue[int], nq)
		for i := range queues {
			queues[i] = NewCommandQueue[int](i, 64)
			if s.Register(queues[i]) != i {
				t.Fatal("registration order")
			}
		}
		pending := make([]int, nq)   // commands enqueued but not yet served
		waitedFor := make([]int, nq) // services of other queues since this one became pending
		for step := 0; step < 4000; step++ {
			// Random enqueue burst, leaving some steps enqueue-free so the
			// scanner also sees empty and stale-bit passes.
			for b := rng.Intn(3); b > 0; b-- {
				qi := rng.Intn(nq)
				if queues[qi].Enqueue(qi, step) == nil {
					pending[qi]++
					s.MarkNonEmpty(qi)
				}
			}
			if rng.Intn(4) == 0 {
				continue // let work accumulate
			}
			_, qi, ok := s.Next()
			if !ok {
				continue
			}
			if pending[qi] == 0 {
				t.Fatalf("seed %d: served queue %d with nothing pending", seed, qi)
			}
			pending[qi]--
			waitedFor[qi] = 0
			for j := range waitedFor {
				if j != qi && pending[j] > 0 {
					waitedFor[j]++
					if waitedFor[j] > nq {
						t.Fatalf("seed %d: queue %d starved for %d services (nq=%d)",
							seed, j, waitedFor[j], nq)
					}
				}
			}
		}
	}
}
