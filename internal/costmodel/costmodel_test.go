package costmodel

import (
	"testing"

	"mproxy/internal/sim"
)

func TestBaseCosts(t *testing.T) {
	if Flops(4) != 100*sim.Nanosecond {
		t.Errorf("Flops(4) = %v", Flops(4))
	}
	if IntOps(10) != 150*sim.Nanosecond {
		t.Errorf("IntOps(10) = %v", IntOps(10))
	}
	if MemRefs(2) != 60*sim.Nanosecond {
		t.Errorf("MemRefs(2) = %v", MemRefs(2))
	}
	if Copy(100) != sim.Microsecond {
		t.Errorf("Copy(100) = %v", Copy(100))
	}
}

func TestScale(t *testing.T) {
	old := Scale
	defer func() { Scale = old }()
	Scale = 2
	if Flops(4) != 200*sim.Nanosecond {
		t.Errorf("scaled Flops(4) = %v", Flops(4))
	}
	Scale = 0.5
	if Flops(4) != 50*sim.Nanosecond {
		t.Errorf("scaled Flops(4) = %v", Flops(4))
	}
}

func TestCalibrationBallpark(t *testing.T) {
	// ~40 Mflops: one million flops should take ~25 ms of simulated time.
	d := Flops(1_000_000)
	if d < 20*sim.Millisecond || d > 30*sim.Millisecond {
		t.Errorf("1 Mflop = %v, want ~25ms (POWER2 calibration)", d)
	}
}

func TestZeroWork(t *testing.T) {
	if Flops(0) != 0 || IntOps(0) != 0 || MemRefs(0) != 0 || Copy(0) != 0 {
		t.Error("zero work must cost zero time")
	}
}
