// Package costmodel charges deterministic simulated time for application
// computation. The paper's execution-driven simulator timed compute
// intervals with the POWER2 real-time clock on a quiescent SP2; a Go
// reproduction cannot do that faithfully (garbage collection and the
// goroutine scheduler would blur the intervals), so applications run their
// real algorithms and charge analytic costs instead, calibrated to the
// paper's ~66 MHz POWER2 compute nodes.
//
// The constants matter only through the compute-to-communication ratio they
// induce; the reproduction's speedup shapes are stable across a wide range
// of plausible values (see BenchmarkAblationCPUSpeed).
package costmodel

import "mproxy/internal/sim"

// Per-operation costs for a ~66 MHz POWER2-class processor.
const (
	// Flop is one floating-point operation: ~40 Mflops sustained on
	// compiled inner loops.
	Flop = 25 * sim.Nanosecond
	// IntOp is one integer ALU operation (compare, add, shift).
	IntOp = 15 * sim.Nanosecond
	// MemRef is one cached memory reference in pointer-chasing code.
	MemRef = 30 * sim.Nanosecond
	// ByteCopy is one byte of local memory-to-memory copy (~100 MB/s).
	ByteCopy = 10 * sim.Nanosecond
)

// Scale multiplies all charged costs; 1.0 is the calibrated POWER2. The
// CPU-speed ablation sweeps it.
var Scale = 1.0

func scaled(t sim.Time) sim.Time { return sim.Time(float64(t) * Scale) }

// Flops returns the cost of n floating-point operations.
func Flops(n int) sim.Time { return scaled(sim.Time(n) * Flop) }

// IntOps returns the cost of n integer operations.
func IntOps(n int) sim.Time { return scaled(sim.Time(n) * IntOp) }

// MemRefs returns the cost of n dependent memory references.
func MemRefs(n int) sim.Time { return scaled(sim.Time(n) * MemRef) }

// Copy returns the cost of copying n bytes locally.
func Copy(n int) sim.Time { return scaled(sim.Time(n) * ByteCopy) }
