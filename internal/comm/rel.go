package comm

import (
	"hash/crc32"

	"mproxy/internal/machine"
	"mproxy/internal/rel"
	"mproxy/internal/trace"
)

// Reliable-transport wiring. When enabled, every inter-node packet rides
// inside a rel frame: the sequence/ack header costs rel.Config.HeaderBytes
// of extra wire serialization per frame, payloads are CRC32-protected
// against fault-plane corruption, and lost or corrupted frames are
// recovered by retransmission instead of hanging the operation. With a
// clean wire the protocol adds header bytes and ack frames but never
// reorders: frames are delivered in per-flow sequence order, so the
// fabric's FIFO assumptions hold unchanged.

// EnableRel turns on reliable delivery for this fabric's inter-node
// traffic. Call before any traffic is sent. A flow that exhausts its
// retry budget (a link down past the timeout horizon) stops the
// simulation; the error is available from RelErr.
func (f *Fabric) EnableRel(cfg rel.Config) {
	f.relE = rel.New(f.Cl.Eng, cfg, f.relSend, f.relDeliver)
	f.relE.OnFail(func(flow rel.FlowID, err error) {
		f.Cl.Eng.Stop()
	})
}

// Rel returns the fabric's reliable-transport engine, or nil when
// disabled.
func (f *Fabric) Rel() *rel.Engine { return f.relE }

// RelErr returns the first flow failure (a link declared dead after the
// retry budget), or nil.
func (f *Fabric) RelErr() error {
	if f.relE == nil {
		return nil
	}
	return f.relE.Err()
}

// relShip routes one fabric packet through the reliable transport.
// Payload CRCs are stamped here, at hand-off, so every retransmission
// carries the checksum of the pristine data.
func (f *Fabric) relShip(pkt *packet, overlapped bool) {
	src, dst := f.nodeOf(pkt.from).ID, f.nodeOf(pkt.to).ID
	f.relE.Send(rel.FlowID{Src: src, Dst: dst}, pkt, HeaderSize+len(pkt.data), overlapped)
}

// relSend puts one rel frame on the sending node's output link. The wire
// sees a snapshot of the frame: retransmissions restamp the live frame's
// ack fields, which must not alias copies already in flight.
func (f *Fabric) relSend(fr *rel.Frame) {
	src := f.Cl.Nodes[fr.Flow.Src]
	bytes := f.relE.Config().HeaderBytes
	var pkt *packet
	if fr.HasData {
		pkt = fr.Payload.(*packet)
		bytes += HeaderSize + len(pkt.data)
		if !fr.Retrans {
			fr.CRC = crc32.ChecksumIEEE(pkt.data)
		}
	}
	cp := *fr
	deliver := func(fate machine.PacketFate) {
		if fate.Corrupt {
			f.relCorrupt(&cp, fate)
			return
		}
		f.relE.Receive(&cp)
	}
	// DMA-fed pages cut through on first transmission; retransmissions
	// come from the transport's buffer and re-serialize like any packet.
	if fr.Overlapped && !fr.Retrans {
		src.OutLink.SendPacketOverlapped(bytes, deliver)
	} else {
		src.OutLink.SendPacket(bytes, deliver)
	}
}

// relCorrupt models the receiver-side integrity check: the fault plane
// flipped a bit somewhere in the frame. A payload hit is caught by the
// CRC32 mismatch (verified on a tampered copy — the sender's buffer stays
// pristine for retransmission); a hit in the header is caught by the
// link-level frame check. Either way the frame is discarded and the
// sender's timer recovers it.
func (f *Fabric) relCorrupt(fr *rel.Frame, fate machine.PacketFate) {
	if fr.HasData {
		data := fr.Payload.(*packet).data
		if len(data) > 0 {
			tampered := make([]byte, len(data))
			copy(tampered, data)
			bit := int(fate.CorruptBit) % (len(tampered) * 8)
			tampered[bit/8] ^= 1 << (bit % 8)
			if crc32.ChecksumIEEE(tampered) == fr.CRC {
				// A flipped bit always changes CRC32; reaching here means
				// the checksum was never stamped.
				panic("comm: corrupted payload passed CRC")
			}
		}
	}
	f.Cl.Eng.Emit(trace.KCorrupt, fr.Flow.String(), int64(fr.Seq))
}

// relDeliver hands an in-order frame's packet to the normal receive path.
func (f *Fabric) relDeliver(fr *rel.Frame) {
	pkt := fr.Payload.(*packet)
	f.deliver(f.nodeOf(pkt.to), pkt)
}
