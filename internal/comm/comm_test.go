package comm

import (
	"strings"
	"testing"

	"mproxy/internal/arch"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
)

// pair builds a 2-node, 1-processor-per-node cluster under a.
func pair(a arch.Params) (*sim.Engine, *Fabric) {
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, a)
	return eng, New(cl)
}

// run2 spawns two bound rank processes and runs the simulation.
func run2(t *testing.T, eng *sim.Engine, f *Fabric, b0, b1 func(ep *Endpoint)) {
	t.Helper()
	for rank, body := range []func(*Endpoint){b0, b1} {
		rank, body := rank, body
		if body == nil {
			continue
		}
		eng.Spawn("rank", func(p *sim.Proc) {
			ep := f.Endpoint(rank)
			ep.Bind(p)
			body(ep)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func archsUnderTest() []arch.Params { return arch.All }

func TestPutDeliversDataAllArchs(t *testing.T) {
	for _, a := range archsUnderTest() {
		t.Run(a.Name, func(t *testing.T) {
			eng, f := pair(a)
			reg := f.Registry()
			src := reg.NewSegment(0, 64)
			dst := reg.NewSegment(1, 64)
			dst.Grant(0)
			rsync := reg.NewFlag(1)
			fsync := reg.NewFlag(0)
			copy(src.Data, "protected communication on SMP clusters")

			var got string
			run2(t, eng, f,
				func(ep *Endpoint) {
					if err := ep.Put(src.Addr(0), dst.Addr(8), 40, fsync, rsync); err != nil {
						t.Error(err)
					}
					ep.WaitFlag(fsync, 1)
				},
				func(ep *Endpoint) {
					ep.WaitFlag(rsync, 1)
					got = string(dst.Data[8:48])
				})
			if !strings.HasPrefix(got, "protected communication") {
				t.Fatalf("data = %q", got)
			}
		})
	}
}

func TestGetFetchesDataAllArchs(t *testing.T) {
	for _, a := range archsUnderTest() {
		t.Run(a.Name, func(t *testing.T) {
			eng, f := pair(a)
			reg := f.Registry()
			local := reg.NewSegment(0, 64)
			remote := reg.NewSegment(1, 64)
			remote.Grant(0)
			fsync := reg.NewFlag(0)
			rsync := reg.NewFlag(1)
			v := memory.Float64s(remote, 0, 4)
			v.Store([]float64{3.14, 2.71, 1.41, 1.73})

			var got []float64
			run2(t, eng, f,
				func(ep *Endpoint) {
					if err := ep.Get(local.Addr(0), remote.Addr(0), 32, fsync, rsync); err != nil {
						t.Error(err)
					}
					ep.WaitFlag(fsync, 1)
					got = memory.Float64s(local, 0, 4).Load()
				}, nil)
			want := []float64{3.14, 2.71, 1.41, 1.73}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("got %v", got)
				}
			}
			if f.Registry() == nil || eng.Now() == 0 {
				t.Fatal("no simulated time elapsed")
			}
			_ = rsync
		})
	}
}

func TestPutFIFOOrderSameSourceDest(t *testing.T) {
	// Two PUTs to the same destination word from the same source must land
	// in issue order (single agent + FIFO link).
	for _, a := range archsUnderTest() {
		t.Run(a.Name, func(t *testing.T) {
			eng, f := pair(a)
			reg := f.Registry()
			src := reg.NewSegment(0, 16)
			dst := reg.NewSegment(1, 16)
			dst.Grant(0)
			rsync := reg.NewFlag(1)
			run2(t, eng, f,
				func(ep *Endpoint) {
					memory.Int64s(src, 0, 2).Set(0, 1)
					memory.Int64s(src, 0, 2).Set(1, 2)
					_ = ep.Put(src.Addr(0), dst.Addr(0), 8, memory.FlagRef{}, memory.FlagRef{})
					_ = ep.Put(src.Addr(8), dst.Addr(0), 8, memory.FlagRef{}, rsync)
				},
				func(ep *Endpoint) {
					ep.WaitFlag(rsync, 1)
					if got := memory.Int64s(dst, 0, 1).Get(0); got != 2 {
						t.Errorf("final value = %d, want 2 (FIFO order)", got)
					}
				})
		})
	}
}

func TestEnqRecvRoundTrip(t *testing.T) {
	for _, a := range archsUnderTest() {
		t.Run(a.Name, func(t *testing.T) {
			eng, f := pair(a)
			reg := f.Registry()
			q := reg.NewQueue(1)
			q.Grant(0)
			ref := memory.QueueRef{Owner: 1, ID: q.ID}
			var got []byte
			run2(t, eng, f,
				func(ep *Endpoint) {
					if err := ep.EnqBytes([]byte{9, 8, 7}, ref, memory.FlagRef{}); err != nil {
						t.Error(err)
					}
				},
				func(ep *Endpoint) {
					got = ep.Recv(q)
				})
			if len(got) != 3 || got[0] != 9 {
				t.Fatalf("got %v", got)
			}
		})
	}
}

func TestEnqFromSegmentWithLsync(t *testing.T) {
	eng, f := pair(arch.MP1)
	reg := f.Registry()
	src := reg.NewSegment(0, 32)
	q := reg.NewQueue(1)
	q.Grant(0)
	ref := memory.QueueRef{Owner: 1, ID: q.ID}
	lsync := reg.NewFlag(0)
	copy(src.Data, "hello-queue")
	var got []byte
	run2(t, eng, f,
		func(ep *Endpoint) {
			if err := ep.Enq(src.Addr(0), ref, 11, lsync); err != nil {
				t.Error(err)
			}
			ep.WaitFlag(lsync, 1)
		},
		func(ep *Endpoint) { got = ep.Recv(q) })
	if string(got) != "hello-queue" {
		t.Fatalf("got %q", got)
	}
}

func TestRemoteDeq(t *testing.T) {
	for _, a := range archsUnderTest() {
		t.Run(a.Name, func(t *testing.T) {
			eng, f := pair(a)
			reg := f.Registry()
			// Rank 1 owns the queue; rank 0 dequeues remotely, before the
			// record is even enqueued (DEQ waits for the matching ENQ).
			q := reg.NewQueue(1)
			q.Grant(0)
			ref := memory.QueueRef{Owner: 1, ID: q.ID}
			dst := reg.NewSegment(0, 16)
			lsync := reg.NewFlag(0)
			run2(t, eng, f,
				func(ep *Endpoint) {
					if err := ep.Deq(dst.Addr(0), ref, 8, lsync); err != nil {
						t.Error(err)
					}
					ep.WaitFlag(lsync, 1)
					if got := memory.Int64s(dst, 0, 1).Get(0); got != 4242 {
						t.Errorf("dequeued %d", got)
					}
				},
				func(ep *Endpoint) {
					ep.Compute(50 * sim.Microsecond)
					var rec [8]byte
					memory.PutI64(rec[:], 4242)
					if err := ep.EnqBytes(rec[:], ref, memory.FlagRef{}); err != nil {
						t.Error(err)
					}
				})
		})
	}
}

func TestProtectionPutWithoutGrant(t *testing.T) {
	eng, f := pair(arch.MP1)
	reg := f.Registry()
	src := reg.NewSegment(0, 16)
	dst := reg.NewSegment(1, 16) // no grant to rank 0
	var err error
	run2(t, eng, f,
		func(ep *Endpoint) {
			err = ep.Put(src.Addr(0), dst.Addr(0), 8, memory.FlagRef{}, memory.FlagRef{})
		}, nil)
	var fault *memory.Fault
	if err == nil {
		t.Fatal("unauthorized PUT succeeded")
	}
	if !strings.Contains(err.Error(), "permission denied") {
		t.Fatalf("err = %v", err)
	}
	_ = fault
}

func TestProtectionQueueWithoutGrant(t *testing.T) {
	eng, f := pair(arch.HW1)
	reg := f.Registry()
	q := reg.NewQueue(1)
	ref := memory.QueueRef{Owner: 1, ID: q.ID}
	var err error
	run2(t, eng, f,
		func(ep *Endpoint) { err = ep.EnqBytes([]byte{1}, ref, memory.FlagRef{}) }, nil)
	if err == nil {
		t.Fatal("unauthorized ENQ succeeded")
	}
}

func TestProtectionOutOfBounds(t *testing.T) {
	eng, f := pair(arch.SW1)
	reg := f.Registry()
	src := reg.NewSegment(0, 16)
	dst := reg.NewSegment(1, 16)
	dst.Grant(0)
	var err error
	run2(t, eng, f,
		func(ep *Endpoint) {
			err = ep.Put(src.Addr(0), dst.Addr(12), 8, memory.FlagRef{}, memory.FlagRef{})
		}, nil)
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("err = %v", err)
	}
}

func TestIntraNodeBypassesAgent(t *testing.T) {
	// Two ranks on one node: a PUT between them must not generate agent
	// work or network packets.
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 1, ProcsPerNode: 2}, arch.MP1)
	f := New(cl)
	reg := f.Registry()
	src := reg.NewSegment(0, 16)
	dst := reg.NewSegment(1, 16)
	dst.Grant(0)
	rsync := reg.NewFlag(1)
	run2(t, eng, f,
		func(ep *Endpoint) {
			memory.Int64s(src, 0, 1).Set(0, 77)
			_ = ep.Put(src.Addr(0), dst.Addr(0), 8, memory.FlagRef{}, rsync)
		},
		func(ep *Endpoint) {
			ep.WaitFlag(rsync, 1)
			if got := memory.Int64s(dst, 0, 1).Get(0); got != 77 {
				t.Errorf("got %d", got)
			}
		})
	if cl.Nodes[0].Agent.Served() != 0 {
		t.Fatalf("agent served %d items for intra-node PUT", cl.Nodes[0].Agent.Served())
	}
	if cl.Nodes[0].OutLink.Packets() != 0 {
		t.Fatal("intra-node PUT hit the network")
	}
	if f.Stats().Intra != 1 {
		t.Fatalf("intra count = %d", f.Stats().Intra)
	}
}

func TestLargePutUsesDMAPages(t *testing.T) {
	for _, a := range []arch.Params{arch.HW1, arch.MP1, arch.SW1} {
		t.Run(a.Name, func(t *testing.T) {
			eng, f := pair(a)
			reg := f.Registry()
			const n = 3*4096 + 100 // 4 pages
			src := reg.NewSegment(0, n)
			dst := reg.NewSegment(1, n)
			dst.Grant(0)
			for i := range src.Data {
				src.Data[i] = byte(i * 7)
			}
			fsync := reg.NewFlag(0)
			run2(t, eng, f,
				func(ep *Endpoint) {
					if err := ep.Put(src.Addr(0), dst.Addr(0), n, fsync, memory.FlagRef{}); err != nil {
						t.Error(err)
					}
					ep.WaitFlag(fsync, 1)
				}, nil)
			for i := range dst.Data {
				if dst.Data[i] != byte(i*7) {
					t.Fatalf("byte %d corrupt", i)
				}
			}
			if got := f.Cl.Nodes[0].DMA.Packets(); got != 4 {
				t.Fatalf("DMA transfers = %d, want 4 pages", got)
			}
		})
	}
}

func TestLargeGet(t *testing.T) {
	eng, f := pair(arch.MP1)
	reg := f.Registry()
	const n = 2 * 4096
	local := reg.NewSegment(0, n)
	remote := reg.NewSegment(1, n)
	remote.Grant(0)
	for i := range remote.Data {
		remote.Data[i] = byte(255 - i%251)
	}
	fsync := reg.NewFlag(0)
	run2(t, eng, f,
		func(ep *Endpoint) {
			if err := ep.Get(local.Addr(0), remote.Addr(0), n, fsync, memory.FlagRef{}); err != nil {
				t.Error(err)
			}
			ep.WaitFlag(fsync, 1)
		}, nil)
	for i := range local.Data {
		if local.Data[i] != byte(255-i%251) {
			t.Fatalf("byte %d corrupt", i)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, f := pair(arch.MP1)
	reg := f.Registry()
	src := reg.NewSegment(0, 64)
	dst := reg.NewSegment(1, 64)
	dst.Grant(0)
	rsync := reg.NewFlag(1)
	run2(t, eng, f,
		func(ep *Endpoint) {
			_ = ep.Put(src.Addr(0), dst.Addr(0), 24, memory.FlagRef{}, memory.FlagRef{})
			_ = ep.Put(src.Addr(0), dst.Addr(0), 24, memory.FlagRef{}, rsync)
			_ = ep.Get(src.Addr(0), dst.Addr(0), 16, memory.FlagRef{}, memory.FlagRef{})
		},
		func(ep *Endpoint) { ep.WaitFlag(rsync, 1) })
	s := f.Stats()
	if s.Ops[OpPut] != 2 || s.Ops[OpGet] != 1 {
		t.Fatalf("ops = %+v", s.Ops)
	}
	if s.Bytes[OpPut] != 48 || s.Bytes[OpGet] != 16 {
		t.Fatalf("bytes = %+v", s.Bytes)
	}
	if got := s.AvgMsgSize(); got < 21 || got > 22 {
		t.Fatalf("avg msg size = %v, want 64/3", got)
	}
	if f.Endpoint(0).Ops() != 3 {
		t.Fatalf("endpoint ops = %d", f.Endpoint(0).Ops())
	}
}

func TestDeterministicLatency(t *testing.T) {
	// The same communication sequence must take the identical number of
	// simulated nanoseconds on every run.
	measure := func() sim.Time {
		eng, f := pair(arch.MP0)
		reg := f.Registry()
		src := reg.NewSegment(0, 64)
		dst := reg.NewSegment(1, 64)
		dst.Grant(0)
		fsync := reg.NewFlag(0)
		var took sim.Time
		run2(t, eng, f,
			func(ep *Endpoint) {
				start := ep.Proc().Now()
				for i := 0; i < 10; i++ {
					_ = ep.Put(src.Addr(0), dst.Addr(0), 8, fsync, memory.FlagRef{})
					ep.WaitFlag(fsync, int64(i+1))
				}
				took = ep.Proc().Now() - start
			}, nil)
		return took
	}
	a, b := measure(), measure()
	if a != b || a == 0 {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestProxyUtilizationTracked(t *testing.T) {
	eng, f := pair(arch.MP1)
	reg := f.Registry()
	src := reg.NewSegment(0, 64)
	dst := reg.NewSegment(1, 64)
	dst.Grant(0)
	fsync := reg.NewFlag(0)
	run2(t, eng, f,
		func(ep *Endpoint) {
			for i := 0; i < 5; i++ {
				_ = ep.Put(src.Addr(0), dst.Addr(0), 8, fsync, memory.FlagRef{})
				ep.WaitFlag(fsync, int64(i+1))
			}
		}, nil)
	ag := f.Cl.Nodes[0].Agent
	if ag.Served() < 10 { // 5 sends + 5 acks
		t.Fatalf("agent served %d", ag.Served())
	}
	if ag.BusyTime() <= 0 {
		t.Fatal("no busy time recorded")
	}
	if u := ag.Utilization(eng.Now()); u <= 0 || u >= 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestCommandQueueBackpressure(t *testing.T) {
	// Shrink the command ring so a burst of PUTs overflows it: the
	// endpoint must spin (charging polling periods) and still deliver
	// every operation exactly once.
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, arch.MP1)
	f := NewWith(cl, Options{CommandQueueCap: 2})
	reg := f.Registry()
	src := reg.NewSegment(0, 8)
	dst := reg.NewSegment(1, 8*64)
	dst.Grant(0)
	rsync := reg.NewFlag(1)
	const burst = 32
	run2(t, eng, f,
		func(ep *Endpoint) {
			for i := 0; i < burst; i++ {
				memory.Int64s(src, 0, 1).Set(0, int64(i))
				if err := ep.Put(src.Addr(0), dst.Addr(8*i), 8, memory.FlagRef{}, rsync); err != nil {
					t.Error(err)
				}
				// Wait for this PUT to land before reusing the source
				// buffer (zero-copy semantics: the proxy reads it at
				// service time).
				ep.WaitFlag(rsync, int64(i+1))
			}
		},
		func(ep *Endpoint) {
			ep.WaitFlag(rsync, burst)
			for i := 0; i < burst; i++ {
				if got := memory.Int64s(dst, 8*i, 1).Get(0); got != int64(i) {
					t.Errorf("slot %d = %d", i, got)
				}
			}
		})
	if hits := f.Endpoint(0).cmdq.FullHits(); hits != 0 {
		// With per-op waits the ring never actually fills here; issue a
		// genuinely bursty pattern to hit backpressure below.
		t.Logf("full hits on paced run: %d", hits)
	}

	// Now a true burst without intermediate waits (distinct source
	// segments so zero-copy reads stay valid).
	eng2 := sim.NewEngine()
	cl2 := machine.New(eng2, machine.Config{Nodes: 2, ProcsPerNode: 1}, arch.MP1)
	f2 := NewWith(cl2, Options{CommandQueueCap: 2})
	reg2 := f2.Registry()
	srcs := reg2.NewSegment(0, 8*burst)
	dst2 := reg2.NewSegment(1, 8*burst)
	dst2.Grant(0)
	done := reg2.NewFlag(1)
	run2(t, eng2, f2,
		func(ep *Endpoint) {
			for i := 0; i < burst; i++ {
				memory.Int64s(srcs, 8*i, 1).Set(0, int64(100+i))
				if err := ep.Put(srcs.Addr(8*i), dst2.Addr(8*i), 8, memory.FlagRef{}, done); err != nil {
					t.Error(err)
				}
			}
		},
		func(ep *Endpoint) {
			ep.WaitFlag(done, burst)
			for i := 0; i < burst; i++ {
				if got := memory.Int64s(dst2, 8*i, 1).Get(0); got != int64(100+i) {
					t.Errorf("slot %d = %d", i, got)
				}
			}
		})
	if hits := f2.Endpoint(0).cmdq.FullHits(); hits == 0 {
		t.Error("burst of 32 PUTs through a 2-entry ring hit no backpressure")
	}
}

func TestConcurrentFabricsDistinctQueueCaps(t *testing.T) {
	// Two engines running concurrently with different command-queue
	// capacities: the capacity is per-fabric state, so neither run can
	// observe the other's setting (the old package global raced here
	// under workload.RunJobs -j). Run under -race in CI.
	run := func(cap int) (fullHits int64) {
		const burst = 32
		eng := sim.NewEngine()
		cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, arch.MP1)
		f := NewWith(cl, Options{CommandQueueCap: cap})
		reg := f.Registry()
		src := reg.NewSegment(0, 8*burst)
		dst := reg.NewSegment(1, 8*burst)
		dst.Grant(0)
		done := reg.NewFlag(1)
		eng.Spawn("sender", func(p *sim.Proc) {
			ep := f.Endpoint(0)
			ep.Bind(p)
			for i := 0; i < burst; i++ {
				if err := ep.Put(src.Addr(8*i), dst.Addr(8*i), 8, memory.FlagRef{}, done); err != nil {
					t.Error(err)
				}
			}
		})
		eng.Spawn("receiver", func(p *sim.Proc) {
			ep := f.Endpoint(1)
			ep.Bind(p)
			ep.WaitFlag(done, burst)
		})
		if err := eng.Run(); err != nil {
			t.Error(err)
		}
		return f.Endpoint(0).cmdq.FullHits()
	}
	type res struct{ tiny, big int64 }
	results := make(chan res, 4)
	for i := 0; i < 4; i++ {
		go func() {
			var r res
			r.tiny = run(2)
			r.big = run(DefaultCommandQueueCap)
			results <- r
		}()
	}
	for i := 0; i < 4; i++ {
		r := <-results
		if r.tiny == 0 {
			t.Error("2-entry ring saw no backpressure")
		}
		if r.big != 0 {
			t.Errorf("default ring hit backpressure %d times", r.big)
		}
	}
}

func TestPutBytesBackToBack(t *testing.T) {
	// Immediate-payload PUTs capture their data at submission: issuing
	// many without waiting must not corrupt earlier payloads.
	eng, f := pair(arch.MP1)
	reg := f.Registry()
	dst := reg.NewSegment(1, 8*16)
	dst.Grant(0)
	done := reg.NewFlag(1)
	run2(t, eng, f,
		func(ep *Endpoint) {
			for i := 0; i < 16; i++ {
				var b [8]byte
				memory.PutI64(b[:], int64(1000+i))
				if err := ep.PutBytes(b[:], dst.Addr(8*i), memory.FlagRef{}, done); err != nil {
					t.Error(err)
				}
			}
		},
		func(ep *Endpoint) {
			ep.WaitFlag(done, 16)
			for i := 0; i < 16; i++ {
				if got := memory.Int64s(dst, 8*i, 1).Get(0); got != int64(1000+i) {
					t.Errorf("slot %d = %d", i, got)
				}
			}
		})
}

func TestLatencyStatsAccounting(t *testing.T) {
	// Every issued operation must show up exactly once in the latency
	// statistics, with one-way latencies in the plausible band for its
	// design point.
	for _, a := range archsUnderTest() {
		t.Run(a.Name, func(t *testing.T) {
			eng, f := pair(a)
			reg := f.Registry()
			src := reg.NewSegment(0, 4096*3)
			dst := reg.NewSegment(1, 4096*3)
			dst.Grant(0)
			q := reg.NewQueue(1)
			q.Grant(0)
			qref := memory.QueueRef{Owner: 1, ID: q.ID}
			fsync := reg.NewFlag(0)
			run2(t, eng, f,
				func(ep *Endpoint) {
					for i := 0; i < 5; i++ {
						_ = ep.Put(src.Addr(0), dst.Addr(0), 8, memory.FlagRef{}, memory.FlagRef{})
					}
					_ = ep.Put(src.Addr(0), dst.Addr(0), 3*4096, memory.FlagRef{}, memory.FlagRef{})
					_ = ep.Get(src.Addr(0), dst.Addr(0), 8, fsync, memory.FlagRef{})
					ep.WaitFlag(fsync, 1)
					_ = ep.EnqBytes([]byte{1, 2}, qref, memory.FlagRef{})
				},
				func(ep *Endpoint) {
					_ = ep.Recv(q)
				})
			ls := f.LatencyStats()
			if ls[OpPut].Count != 6 {
				t.Fatalf("PUT count = %d, want 6", ls[OpPut].Count)
			}
			if ls[OpGet].Count != 1 || ls[OpEnq].Count != 1 {
				t.Fatalf("GET/ENQ counts = %d/%d", ls[OpGet].Count, ls[OpEnq].Count)
			}
			// One-way small-PUT latency sits below the Table 4 round trip.
			if ls[OpPut].MeanUs <= 0 || ls[OpPut].MeanUs > 300 {
				t.Fatalf("PUT mean latency = %v us", ls[OpPut].MeanUs)
			}
			// GET is inherently a round trip: at least as long as a PUT's
			// one-way delivery.
			if ls[OpGet].MeanUs <= 0 {
				t.Fatalf("GET mean latency = %v us", ls[OpGet].MeanUs)
			}
			if ls[OpPut].MaxUs < ls[OpPut].MeanUs {
				t.Fatal("max below mean")
			}
		})
	}
}

func TestLatencyStatsIntra(t *testing.T) {
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 1, ProcsPerNode: 2}, arch.MP1)
	f := New(cl)
	reg := f.Registry()
	src := reg.NewSegment(0, 16)
	dst := reg.NewSegment(1, 16)
	dst.Grant(0)
	run2(t, eng, f,
		func(ep *Endpoint) {
			_ = ep.Put(src.Addr(0), dst.Addr(0), 8, memory.FlagRef{}, memory.FlagRef{})
		}, nil)
	ls := f.LatencyStats()
	if ls[OpPut].Count != 1 {
		t.Fatalf("PUT count = %d", ls[OpPut].Count)
	}
	// Intra-node: a couple of cache misses, far below any network path.
	if ls[OpPut].MeanUs > 5 {
		t.Fatalf("intra PUT latency = %v us", ls[OpPut].MeanUs)
	}
}
