package comm

import (
	"fmt"

	"mproxy/internal/arch"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// pktKind enumerates wire packet types.
type pktKind int

const (
	pktPutData pktKind = iota // PUT payload (PIO)
	pktPutPage                // PUT payload page (DMA)
	pktGetReq                 // GET request
	pktGetData                // GET reply payload (PIO)
	pktGetPage                // GET reply payload page (DMA)
	pktEnqData                // ENQ record
	pktDeqReq                 // DEQ request
	pktDeqData                // DEQ reply record
	pktAck                    // PUT deposit confirmation (sets fsync)
)

// packet is a network message between nodes.
type packet struct {
	kind   pktKind
	from   int      // issuing rank
	to     int      // rank whose node receives the packet
	issued sim.Time // when the originating operation was submitted
	n      int      // payload bytes carried (or requested, for requests)
	data   []byte
	dst    memory.Addr // deposit address (PutData/GetData/DeqData)
	src    memory.Addr // source address (GetReq)
	rq     memory.QueueRef
	fsync  memory.FlagRef
	rsync  memory.FlagRef
	last   bool // final page of a multi-page transfer

	// buf is the packet's reusable payload store and pooled marks a packet
	// owned by the fabric's freelist; both are used only by the
	// run-to-completion paths (see newPacket).
	buf    []byte
	pooled bool
}

// reqBox carries a request into a custom-hardware agent work item: the
// adapter's command control block. Boxes recycle through Fabric.reqFree.
type reqBox struct {
	r request
}

func (f *Fabric) newReqBox() *reqBox {
	if f.parallel {
		return &reqBox{} // the freelist is fabric-global: shards must not share it
	}
	if n := len(f.reqFree); n > 0 {
		b := f.reqFree[n-1]
		f.reqFree[n-1] = nil
		f.reqFree = f.reqFree[:n-1]
		return b
	}
	return &reqBox{}
}

func (f *Fabric) freeReqBox(b *reqBox) {
	if f.parallel {
		return
	}
	b.r = request{}
	f.reqFree = append(f.reqFree, b)
}

// newPacket returns a packet for transmission on link l. In task mode with
// no reliable transport and no fault plane on l, packets recycle through a
// freelist: exactly one receive work item consumes each delivery (no Dup,
// no retransmission buffer), so the receive path can return the packet
// once processed. Otherwise — proc mode, rel (which retains payloads for
// retransmission), faulty links (which may duplicate) — packets are plain
// heap allocations left to the GC, as the blocking paths always did.
func (f *Fabric) newPacket(l *machine.Link) *packet {
	// Parallel execution disables the freelist: a packet would be taken on
	// the sending shard and returned on the receiving one, racing on the
	// shared pool. Plain allocations keep each shard self-contained.
	if f.taskMode && !f.parallel && f.relE == nil && !l.Faulty() {
		if n := len(f.pktFree); n > 0 {
			pkt := f.pktFree[n-1]
			f.pktFree[n-1] = nil
			f.pktFree = f.pktFree[:n-1]
			buf := pkt.buf
			*pkt = packet{buf: buf, pooled: true}
			return pkt
		}
		return &packet{pooled: true}
	}
	return &packet{}
}

// freePacket returns a pooled packet to the freelist; non-pooled packets
// are ignored. The packet's data slice is dropped (it may alias foreign
// memory) but its buf is kept for reuse.
func (f *Fabric) freePacket(pkt *packet) {
	if pkt == nil || !pkt.pooled {
		return
	}
	pkt.data = nil
	f.pktFree = append(f.pktFree, pkt)
}

// targetRank resolves which rank's node services a request's remote side.
func (f *Fabric) targetRank(r request) int {
	switch r.kind {
	case OpPut, OpGet:
		seg, ok := f.Cl.Reg.Segment(r.remote.Seg)
		if !ok {
			panic(fmt.Sprintf("comm: unresolved segment %d", r.remote.Seg))
		}
		return seg.Owner
	default:
		return r.rq.Owner
	}
}

// nodeOf returns the node hosting a rank.
func (f *Fabric) nodeOf(rank int) *machine.Node { return f.Cl.CPUs[rank].Node }

// agentForRank returns the agent serving a rank's endpoint: the proxy
// the scheduling policy bound the endpoint to, so a command stream's
// receive side lands on the same core as its send side. On single-agent
// design points (custom hardware) the endpoint's proxyIdx is zero and
// this is the node's lone agent.
func (f *Fabric) agentForRank(rank int) *machine.Agent {
	cpu := f.Cl.CPUs[rank]
	return cpu.Node.Agents[f.eps[rank].proxyIdx]
}

// ship serializes a PIO packet onto the sending node's output link,
// through the reliable transport when one is enabled. Without it, faults
// are terminal: a corrupted packet is discarded at the receiver (the
// integrity check) and nothing retransmits it.
func (f *Fabric) ship(node *machine.Node, pkt *packet) {
	if f.relE != nil {
		f.relShip(pkt, false)
		return
	}
	if ic := f.Cl.Net; ic != nil {
		// Multi-switch machine: the interconnect owns the path from the
		// source link through the switches; the fabric stays the sink.
		ic.Ship(node.ID, f.nodeOf(pkt.to).ID, HeaderSize+len(pkt.data), f, pkt, false)
		return
	}
	if f.taskMode {
		node.OutLink.SendToSink(HeaderSize+len(pkt.data), f, pkt)
		return
	}
	dest := f.nodeOf(pkt.to)
	node.OutLink.SendPacket(HeaderSize+len(pkt.data), func(fate machine.PacketFate) {
		if fate.Corrupt {
			f.Cl.Eng.Emit(trace.KCorrupt, node.OutLink.Name(), int64(pkt.n))
			return
		}
		f.deliver(dest, pkt)
	})
}

// DeliverPacket implements machine.PacketSink for the task-mode ship
// paths. Every shipped packet's from rank lives on the sending node, so
// the corrupt-trace component reconstructs to the same link name the
// closure path captures.
func (f *Fabric) DeliverPacket(arg any, fate machine.PacketFate) {
	pkt := arg.(*packet)
	if fate.Corrupt {
		f.Cl.Eng.Emit(trace.KCorrupt, f.nodeOf(pkt.from).OutLink.Name(), int64(pkt.n))
		return
	}
	f.deliver(f.nodeOf(pkt.to), pkt)
}

// shipOverlapped ships a DMA-fed page whose serialization was already paid
// at the (slower) DMA engine.
func (f *Fabric) shipOverlapped(node *machine.Node, pkt *packet) {
	if f.relE != nil {
		f.relShip(pkt, true)
		return
	}
	if ic := f.Cl.Net; ic != nil {
		ic.Ship(node.ID, f.nodeOf(pkt.to).ID, HeaderSize+len(pkt.data), f, pkt, true)
		return
	}
	if f.taskMode {
		node.OutLink.SendOverlappedToSink(HeaderSize+len(pkt.data), f, pkt)
		return
	}
	dest := f.nodeOf(pkt.to)
	node.OutLink.SendPacketOverlapped(HeaderSize+len(pkt.data), func(fate machine.PacketFate) {
		if fate.Corrupt {
			f.Cl.Eng.Emit(trace.KCorrupt, node.OutLink.Name(), int64(pkt.n))
			return
		}
		f.deliver(dest, pkt)
	})
}

// deliver dispatches an arriving packet to the receiving node's agent
// (proxy or adapter) or, under SW, interrupts the destination CPU.
func (f *Fabric) deliver(dest *machine.Node, pkt *packet) {
	switch f.A.Kind {
	case arch.Proxy:
		ag := f.agentForRank(pkt.to)
		if f.taskMode {
			ag.Submit(machine.Work{TFn: mpRecvWork, Arg: pkt})
		} else {
			ag.Submit(machine.Work{Fn: func(ap *sim.Proc) { f.mpRecv(ap, dest, pkt) }})
		}
	case arch.CustomHW:
		if f.taskMode {
			dest.Agent.Submit(machine.Work{TFn: hwRecvWork, Arg: pkt})
		} else {
			dest.Agent.Submit(machine.Work{Fn: func(ap *sim.Proc) { f.hwRecv(ap, dest, pkt) }})
		}
	case arch.Syscall:
		f.swRecv(dest, pkt)
	}
}

// readSource snapshots the request's payload bytes at send time (the
// zero-copy read of the user's source buffer).
func (f *Fabric) readSource(r request) []byte {
	if r.payload != nil {
		return r.payload
	}
	return f.readBytes(r.local, r.n)
}

func (f *Fabric) readBytes(addr memory.Addr, n int) []byte {
	seg, ok := f.Cl.Reg.Segment(addr.Seg)
	if !ok {
		panic(fmt.Sprintf("comm: read through unresolved segment %d", addr.Seg))
	}
	buf := make([]byte, n)
	copy(buf, seg.Data[addr.Off:addr.Off+n])
	return buf
}

// readSourceInto is readSource for a pooled packet: the payload lands in
// the packet's reusable buf instead of a fresh slice. Only receive paths
// that never retain pkt.data past processing may use it — ENQ records, in
// particular, are handed to the destination queue and must stay freshly
// allocated.
func (f *Fabric) readSourceInto(pkt *packet, r request) {
	if r.payload != nil {
		pkt.data = r.payload
		return
	}
	f.readBytesInto(pkt, r.local, r.n)
}

// readBytesInto reads n bytes at addr into pkt's reusable buf (falling
// back to a fresh slice for unpooled packets).
func (f *Fabric) readBytesInto(pkt *packet, addr memory.Addr, n int) {
	if !pkt.pooled {
		pkt.data = f.readBytes(addr, n)
		return
	}
	seg, ok := f.Cl.Reg.Segment(addr.Seg)
	if !ok {
		panic(fmt.Sprintf("comm: read through unresolved segment %d", addr.Seg))
	}
	if cap(pkt.buf) < n {
		pkt.buf = make([]byte, n)
	}
	pkt.buf = pkt.buf[:n]
	copy(pkt.buf, seg.Data[addr.Off:addr.Off+n])
	pkt.data = pkt.buf
}

// depositBytes writes payload data into a segment.
func (f *Fabric) depositBytes(addr memory.Addr, data []byte) {
	seg, ok := f.Cl.Reg.Segment(addr.Seg)
	if !ok {
		panic(fmt.Sprintf("comm: deposit through unresolved segment %d", addr.Seg))
	}
	copy(seg.Data[addr.Off:addr.Off+len(data)], data)
}

// depositQueue appends a record to a remote queue.
func (f *Fabric) depositQueue(ref memory.QueueRef, data []byte) {
	q, ok := f.Cl.Reg.Queue(ref)
	if !ok {
		panic(fmt.Sprintf("comm: deposit into unresolved queue %+v", ref))
	}
	q.Deliver(data)
}

// sendPages streams a large transfer page by page on behalf of p (the
// sending agent, or the user process blocked in the kernel under SW). Per
// page: dynamically pin the source and destination pages (folded into the
// sending side, 10 us each; skipped when Prepinned), stream through the DMA
// engine, and cut through to the wire. This serialized per-page cycle is
// what limits software peak bandwidth to pageSize/(2*pin + page/DMABW) —
// 86.7 MB/s at next-generation parameters versus 150 MB/s for pre-pinned
// custom hardware (Table 4).
func (f *Fabric) sendPages(p *sim.Proc, node *machine.Node, proto packet, srcAddr memory.Addr) {
	off := 0
	for off < proto.n {
		chunk := proto.n - off
		if chunk > f.A.PageSize {
			chunk = f.A.PageSize
		}
		if !f.A.Prepinned {
			p.Hold(2 * f.A.PinPerPage)
		}
		node.DMA.Occupy(p, chunk)
		pg := proto
		pg.n = chunk
		pg.data = f.readBytes(srcAddr.Plus(off), chunk)
		pg.dst = proto.dst.Plus(off)
		pg.last = off+chunk == proto.n
		f.shipOverlapped(node, &pg)
		off += chunk
	}
}

// intra handles communication between ranks on the same SMP node, which
// moves through shared memory and bypasses both the network and the
// communication agent (this is why 4-processor nodes load the proxy less
// than 16 uniprocessor nodes would — Section 5.4).
func (f *Fabric) intra(ep *Endpoint, r request) {
	A := f.A
	copyCost := 2*A.CacheMiss + arch.XferTime(r.n, A.MemBW)
	reg := f.Cl.Reg
	node := ep.cpu.Node
	switch r.kind {
	case OpPut:
		ep.cpu.Compute(ep.proc, copyCost)
		f.depositBytes(r.remote, f.readSource(r))
		reg.Signal(r.rsync)
		reg.Signal(r.fsync)
		f.opDone(node, OpPut, r.issued)
	case OpGet:
		ep.cpu.Compute(ep.proc, copyCost)
		f.depositBytes(r.local, f.readBytes(r.remote, r.n))
		reg.Signal(r.rsync)
		reg.Signal(r.fsync)
		f.opDone(node, OpGet, r.issued)
	case OpEnq:
		ep.cpu.Compute(ep.proc, copyCost+A.CacheMiss) // tail pointer update
		f.depositQueue(r.rq, f.readSource(r))
		reg.Signal(r.fsync)
		f.opDone(node, OpEnq, r.issued)
	case OpDeq:
		q, _ := reg.Queue(r.rq)
		dst, lsync := r.local, r.fsync
		n := r.n
		issued := r.issued
		q.TakeAsync(func(rec []byte) {
			if len(rec) > n {
				rec = rec[:n]
			}
			f.depositBytes(dst, rec)
			reg.Signal(lsync)
			f.opDone(node, OpDeq, issued)
		})
		ep.cpu.Compute(ep.proc, copyCost+A.CacheMiss)
	}
}
