package comm

import (
	"mproxy/internal/machine"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// Message-proxy paths. The proxy is the node's Agent; every work item
// below corresponds to one turn of the Figure 5 dispatch loop, with costs
// taken from the Section 4 latency model: cache misses on command-queue
// entries and user buffers (AgentMiss, reduced by MP2's cache-update
// primitive), uncached FIFO accesses (U), cross-memory attaches (V), fixed
// instruction sequences scaled by the proxy's speed (us/S), and the polling
// notice delay (P) charged by the Agent when it was idle.

// proxyServiceOne handles one user command: scan the registered command
// queues round-robin, dequeue, decode, attach the user's address space, and
// dispatch to the send routine.
func (f *Fabric) proxyServiceOne(ap *sim.Proc, node *machine.Node, idx int) {
	r, qi, ok := f.scanners[node.ID][idx].Next()
	if !ok {
		return // stale scan hint; the command was already consumed
	}
	node.Eng.Emit(trace.KDequeue, f.cmdqNames[node.ID][idx][qi], 0)
	A := f.A
	// Dequeue entry (read miss), decode command and allocate a CCB,
	// vm_att to the user's space.
	ap.Hold(A.AgentMiss + A.Instr(0.5) + A.VMAtt)
	f.mpSend(ap, node, r)
}

func (f *Fabric) mpSend(ap *sim.Proc, node *machine.Node, r request) {
	A := f.A
	to := f.targetRank(r)
	switch r.kind {
	case OpPut, OpEnq:
		kind := pktPutData
		if r.kind == OpEnq {
			kind = pktEnqData
		}
		if r.kind == OpPut && r.n > A.PIOCutoff {
			ap.Hold(A.Uncached + A.Instr(0.8)) // header + DMA setup
			f.sendPages(ap, node, packet{kind: pktPutPage, from: r.from, to: to, n: r.n,
				issued: r.issued, dst: r.remote, fsync: r.fsync, rsync: r.rsync}, r.local)
		} else {
			// Header setup, read source data (miss + uncached), PIO the
			// payload into the output FIFO, launch. ENQ records always
			// move by PIO: queue entries are bounded small messages.
			ap.Hold(A.Uncached + A.Instr(0.6) + A.AgentMiss + A.Uncached + f.pio(r.n) + A.Uncached)
			f.ship(node, &packet{kind: kind, from: r.from, to: to, n: r.n,
				issued: r.issued, data: f.readSource(r), dst: r.remote, rq: r.rq, fsync: r.fsync, rsync: r.rsync})
		}
		if r.kind == OpEnq && !r.fsync.Nil() {
			// ENQ lsync: the source buffer has been transmitted.
			ap.Hold(A.AgentMiss)
			f.Cl.Reg.Signal(r.fsync)
		}
	case OpGet:
		// Request packet: header only.
		ap.Hold(A.Uncached + A.Instr(0.7) + A.Uncached)
		f.ship(node, &packet{kind: pktGetReq, from: r.from, to: to, n: r.n,
			issued: r.issued, src: r.remote, dst: r.local, fsync: r.fsync, rsync: r.rsync})
	case OpDeq:
		ap.Hold(A.Uncached + A.Instr(0.7) + A.Uncached)
		f.ship(node, &packet{kind: pktDeqReq, from: r.from, to: to, n: r.n,
			issued: r.issued, rq: r.rq, dst: r.local, fsync: r.fsync})
	}
}

// mpRecv handles a packet polled from the network input FIFO.
func (f *Fabric) mpRecv(ap *sim.Proc, node *machine.Node, pkt *packet) {
	A := f.A
	reg := f.Cl.Reg
	switch pkt.kind {
	case pktPutData:
		// Read header (miss), decode/dispatch, vm_att, checks, read the
		// payload (uncached + PIO), copy to destination (write miss).
		ap.Hold(A.CacheMiss + A.Instr(0.9) + A.VMAtt + A.Uncached + f.pio(pkt.n) + A.AgentMiss)
		f.depositBytes(pkt.dst, pkt.data)
		f.opDone(node, OpPut, pkt.issued)
		f.finishPut(ap, node, pkt)
	case pktPutPage:
		// DMA deposits the page; the proxy pays per-page bookkeeping.
		ap.Hold(A.Instr(0.3) + A.AgentMiss)
		f.depositBytes(pkt.dst, pkt.data)
		if pkt.last {
			f.opDone(node, OpPut, pkt.issued)
			f.finishPut(ap, node, pkt)
		}
	case pktGetReq:
		ap.Hold(A.CacheMiss + A.Instr(1.0) + A.VMAtt)
		if !pkt.rsync.Nil() {
			ap.Hold(A.AgentMiss)
			reg.Signal(pkt.rsync)
		}
		if pkt.n <= A.PIOCutoff {
			// Build reply: header, read the source (miss + uncached), PIO
			// out, launch.
			ap.Hold(A.Uncached + A.Instr(0.7) + A.AgentMiss + A.Uncached + f.pio(pkt.n) + A.Uncached)
			f.ship(node, &packet{kind: pktGetData, from: pkt.to, to: pkt.from, n: pkt.n,
				issued: pkt.issued, data: f.readBytes(pkt.src, pkt.n), dst: pkt.dst, fsync: pkt.fsync})
		} else {
			ap.Hold(A.Uncached + A.Instr(0.8))
			f.sendPages(ap, node, packet{kind: pktGetPage, from: pkt.to, to: pkt.from, n: pkt.n,
				issued: pkt.issued, dst: pkt.dst, fsync: pkt.fsync}, pkt.src)
		}
	case pktGetData:
		// Reply: read header, find the CCB, vm_att, read payload, copy to
		// destination (write miss), set lsync (write miss).
		ap.Hold(A.CacheMiss + A.Instr(0.5) + A.VMAtt + A.Uncached + f.pio(pkt.n) + A.AgentMiss)
		f.depositBytes(pkt.dst, pkt.data)
		f.opDone(node, OpGet, pkt.issued)
		ap.Hold(A.AgentMiss)
		reg.Signal(pkt.fsync)
	case pktGetPage:
		ap.Hold(A.Instr(0.3) + A.AgentMiss)
		f.depositBytes(pkt.dst, pkt.data)
		if pkt.last {
			f.opDone(node, OpGet, pkt.issued)
			ap.Hold(A.AgentMiss)
			reg.Signal(pkt.fsync)
		}
	case pktEnqData:
		// Like a PUT deposit plus the tail-pointer read/update and record
		// bookkeeping in the owner's queue.
		ap.Hold(A.CacheMiss + A.Instr(0.9) + A.VMAtt + A.Uncached + f.pio(pkt.n) + 2*A.CacheMiss + 2*A.AgentMiss)
		f.depositQueue(pkt.rq, pkt.data)
		f.opDone(node, OpEnq, pkt.issued)
	case pktDeqReq:
		ap.Hold(A.CacheMiss + A.Instr(0.8) + A.VMAtt)
		q, _ := reg.Queue(pkt.rq)
		req := *pkt
		q.TakeAsync(func(rec []byte) {
			f.agentForRank(req.to).Submit(machine.Work{Fn: func(ap2 *sim.Proc) {
				n := req.n
				if len(rec) < n {
					n = len(rec)
				}
				ap2.Hold(A.Uncached + A.Instr(0.5) + A.AgentMiss + f.pio(n) + A.Uncached)
				f.ship(node, &packet{kind: pktDeqData, from: req.to, to: req.from, n: n,
					issued: req.issued, data: rec[:n], dst: req.dst, fsync: req.fsync})
			}})
		})
	case pktDeqData:
		ap.Hold(A.CacheMiss + A.Instr(0.5) + A.VMAtt + A.Uncached + f.pio(pkt.n) + A.AgentMiss)
		f.depositBytes(pkt.dst, pkt.data)
		f.opDone(node, OpDeq, pkt.issued)
		ap.Hold(A.AgentMiss)
		reg.Signal(pkt.fsync)
	case pktAck:
		ap.Hold(A.CacheMiss + A.Instr(0.3) + A.AgentMiss)
		reg.Signal(pkt.fsync)
	}
}

// finishPut signals the remote flag and, when the sender asked for local
// completion, returns an acknowledgment.
func (f *Fabric) finishPut(ap *sim.Proc, node *machine.Node, pkt *packet) {
	A := f.A
	if !pkt.rsync.Nil() {
		ap.Hold(A.AgentMiss)
		f.Cl.Reg.Signal(pkt.rsync)
	}
	if !pkt.fsync.Nil() {
		ap.Hold(A.Uncached + A.Instr(0.3) + A.Uncached)
		f.ship(node, &packet{kind: pktAck, from: pkt.to, to: pkt.from, fsync: pkt.fsync})
	}
}
