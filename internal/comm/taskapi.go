package comm

import (
	"fmt"

	"mproxy/internal/arch"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// Task-side submission paths. The serving workloads run every client and
// server as a run-to-completion sim.Task in BOTH execution modes — only
// the communication agents switch representation with the engine's
// ExecMode — so these paths must work over either fabric flavor: the
// pre-built ep.work item and the deliver path are already
// mode-appropriate, and the task-side CPU charging below is mode-blind.
// Cost accounting mirrors the blocking API call for call.

// EnqBytesTask is EnqBytes for a run-to-completion caller: k runs once
// the submission has been charged and handed to the send path (not when
// the record arrives — ENQ is asynchronous either way).
func (ep *Endpoint) EnqBytesTask(t *sim.Task, data []byte, rq memory.QueueRef, lsync memory.FlagRef, k func()) error {
	if _, err := ep.f.Cl.Reg.CheckQueue(ep.rank, rq, "ENQ"); err != nil {
		return err
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	ep.record(OpEnq, len(data))
	ep.submitTask(t, request{kind: OpEnq, from: ep.rank, payload: buf, rq: rq, n: len(data), fsync: lsync}, k)
	return nil
}

// submitTask is submit in continuation-passing style.
func (ep *Endpoint) submitTask(t *sim.Task, r request, k func()) {
	f := ep.f
	r.issued = ep.cpu.Node.Eng.Now()
	if !f.forceRemote && f.nodeOf(f.targetRank(r)) == ep.cpu.Node {
		ep.intra++
		f.intraTask(ep, t, r, k)
		return
	}
	switch f.A.Kind {
	case arch.Proxy:
		ep.cpu.ComputeTask(t, 2*f.A.AgentMiss+f.A.Instr(0.2), func() {
			ep.enqueueCmdTask(t, r, k)
		})
	case arch.CustomHW:
		ep.cpu.ComputeTask(t, f.A.ComputeOvh, func() {
			node := ep.cpu.Node
			if f.taskMode {
				box := f.newReqBox()
				box.r = r
				node.Agent.Submit(machine.Work{TFn: hwSendWork, Arg: box})
			} else {
				node.Agent.Submit(f.hwSendProcWork(node, r))
			}
			k()
		})
	default:
		panic("comm: task submission is not supported under the system-call design point")
	}
}

// enqueueCmdTask writes the command into the user's ring, spinning one
// polling period per retry while the ring is full, exactly like submit's
// blocking loop.
func (ep *Endpoint) enqueueCmdTask(t *sim.Task, r request, k func()) {
	if err := ep.cmdq.Enqueue(ep.rank, r); err != nil {
		ep.cpu.ComputeTask(t, ep.f.A.PollDelay(), func() { ep.enqueueCmdTask(t, r, k) })
		return
	}
	node := ep.cpu.Node
	node.Eng.Emit(trace.KEnqueue, ep.cmdqComp, int64(ep.cmdq.Len()))
	ep.f.scanners[node.ID][ep.proxyIdx].MarkNonEmpty(ep.cmdqIdx)
	node.Agents[ep.proxyIdx].Submit(ep.work)
	k()
}

// intraTask is intra for the task-side operations the serving workloads
// use (ENQ is the only primitive the AM layer submits).
func (f *Fabric) intraTask(ep *Endpoint, t *sim.Task, r request, k func()) {
	A := f.A
	copyCost := 2*A.CacheMiss + arch.XferTime(r.n, A.MemBW)
	switch r.kind {
	case OpEnq:
		ep.cpu.ComputeTask(t, copyCost+A.CacheMiss, func() {
			f.depositQueue(r.rq, f.readSource(r))
			f.Cl.Reg.Signal(r.fsync)
			f.opDone(ep.cpu.Node, OpEnq, r.issued)
			k()
		})
	default:
		panic(fmt.Sprintf("comm: intra-node %v unsupported on the task path", r.kind))
	}
}

// RecvCost returns the user-level dequeue cost charged per received
// record, exported for run-to-completion receive loops layered above
// (the blocking Recv/TryRecv charge it internally).
func (f *Fabric) RecvCost() sim.Time { return f.dequeueCost() }
