// Package comm implements the paper's communication model — remote memory
// access (PUT/GET) and remote queues (ENQ/DEQ) — over the three protected
// communication architectures: message proxies, custom hardware, and
// system calls. The primitives are asynchronous; completion is signaled
// through local and remote synchronization flags, letting programs overlap
// communication latency with computation.
package comm

import (
	"fmt"

	"mproxy/internal/arch"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/proxy"
	"mproxy/internal/rel"
	"mproxy/internal/sim"
	"mproxy/internal/sim/par"
	"mproxy/internal/trace"
)

// HeaderSize is the network packet header size in bytes; headers count
// toward link serialization.
const HeaderSize = 16

// DefaultCommandQueueCap is the per-user command-queue capacity under the
// message-proxy design points when Options.CommandQueueCap is zero. A full
// ring applies backpressure: the user spins (one polling period per retry)
// until the proxy drains an entry.
const DefaultCommandQueueCap = 1024

// Options carries the per-fabric tunables. Every knob lives on the fabric
// built with it — there is no package-level mutable simulation state — so
// concurrently running engines (workload.RunJobs) can use different
// configurations without racing.
type Options struct {
	// CommandQueueCap overrides the per-user command-queue capacity under
	// the message-proxy design points (0 = DefaultCommandQueueCap).
	CommandQueueCap int
	// ProxySched overrides the cluster's proxy-scheduling policy (see
	// proxy.SchedByName). Empty defers to the cluster's resolved policy,
	// which itself defaults to static slot-modulo.
	ProxySched string
	// Rel, when non-nil, carries all inter-node packets over the reliable
	// transport (see rel.go), exactly as EnableRel would.
	Rel *rel.Config
}

// queueCap resolves the effective command-queue capacity.
func (o Options) queueCap() int {
	if o.CommandQueueCap > 0 {
		return o.CommandQueueCap
	}
	return DefaultCommandQueueCap
}

// OpKind enumerates the RMA/RQ primitives.
type OpKind int

const (
	OpPut OpKind = iota
	OpGet
	OpEnq
	OpDeq
	opKinds
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "PUT"
	case OpGet:
		return "GET"
	case OpEnq:
		return "ENQ"
	case OpDeq:
		return "DEQ"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Stats aggregates message traffic for the Table 6 analysis.
type Stats struct {
	Ops   [opKinds]int64
	Bytes [opKinds]int64
	// Intra counts operations that stayed within an SMP node (shared
	// memory; no network message, no agent work).
	Intra int64
}

// LatencyStat summarizes observed end-to-end operation latencies
// (submission to data deposit at the destination — one way, unlike the
// Table 4 micro-benchmarks which time the completion round trip).
type LatencyStat struct {
	Count  int64
	MeanUs float64
	MaxUs  float64
}

type latAccum struct {
	count int64
	sum   sim.Time
	max   sim.Time
}

func (a *latAccum) add(d sim.Time) {
	a.count++
	a.sum += d
	if d > a.max {
		a.max = d
	}
}

func (a latAccum) stat() LatencyStat {
	st := LatencyStat{Count: a.count, MaxUs: a.max.Micros()}
	if a.count > 0 {
		st.MeanUs = (a.sum / sim.Time(a.count)).Micros()
	}
	return st
}

// TotalOps returns the total RMA/RQ operation count.
func (s Stats) TotalOps() int64 {
	var n int64
	for _, v := range s.Ops {
		n += v
	}
	return n
}

// TotalBytes returns the total payload bytes moved.
func (s Stats) TotalBytes() int64 {
	var n int64
	for _, v := range s.Bytes {
		n += v
	}
	return n
}

// AvgMsgSize returns the average payload per operation in bytes.
func (s Stats) AvgMsgSize() float64 {
	ops := s.TotalOps()
	if ops == 0 {
		return 0
	}
	return float64(s.TotalBytes()) / float64(ops)
}

// Fabric wires a cluster's endpoints to its communication agents under the
// cluster's design point.
type Fabric struct {
	Cl  *machine.Cluster
	A   arch.Params
	opt Options
	eps []*Endpoint
	// scanners holds the per-(node, proxy) round-robin command-queue
	// scanner used by the message proxy design points.
	scanners [][]*proxy.Scanner[request]
	// cmdqNames mirrors the scanners' registration order with the trace
	// component name of each command queue ("rank<N>.cmdq"), so the pick
	// sites can emit which queue a scan dequeued without formatting on
	// the hot path.
	cmdqNames [][][]string
	// sched is the proxy-scheduling policy binding endpoint command
	// streams to proxies (Options.ProxySched, else the cluster's).
	sched proxy.Sched
	// stealSeq seeds each node's deterministic victim rotation; stealWork
	// holds the prebuilt per-(node, victim) steal work items so a steal
	// turn submits without allocating.
	stealSeq  []uint64
	stealWork [][]machine.Work

	// forceRemote disables the intra-node shared-memory fast path,
	// pushing same-node operations through the agent and loopback network
	// (the Figure 9 ablation: how much does the bypass relieve the
	// proxy?).
	forceRemote bool

	// relE, when non-nil, carries all inter-node packets over the
	// reliable transport (see rel.go).
	relE *rel.Engine

	// taskMode selects the run-to-completion protocol paths: agents are
	// sim.Tasks and each carries a resident agentExec state machine (see
	// exec.go). Set from the engine's ExecMode for the agent-based design
	// points; system-call paths always run on the caller's Proc.
	taskMode bool
	// pktFree and reqFree recycle packets and request boxes in task mode,
	// so steady-state messaging allocates nothing (see newPacket for the
	// pooling gate).
	pktFree []*packet
	reqFree []*reqBox

	// parallel marks a fabric running under the sharded windowing driver
	// (Parallelize): packet pooling is disabled — a packet is allocated on
	// its source shard and released on its destination shard, so a shared
	// freelist would race — and cross-shard flat-model deliveries detour
	// through the mailboxes.
	parallel bool

	// lat accumulates completion latencies per destination node — an
	// operation completes in its destination's event context, which on a
	// parallel cluster is that node's shard — and LatencyStats merges the
	// per-node accumulators (sums and maxima commute, so the merge is
	// deterministic).
	lat [][opKinds]latAccum
}

// New builds the fabric for cl under default Options, creating one
// endpoint per compute processor and, for message-proxy design points,
// registering one command queue per endpoint with the node's proxy
// scanner.
func New(cl *machine.Cluster) *Fabric { return NewWith(cl, Options{}) }

// NewWith is New under explicit per-fabric Options.
func NewWith(cl *machine.Cluster, opt Options) *Fabric {
	f := &Fabric{Cl: cl, A: cl.Arch, opt: opt}
	f.lat = make([][opKinds]latAccum, len(cl.Nodes))
	f.sched = cl.Sched
	if opt.ProxySched != "" {
		s, err := proxy.SchedByName(opt.ProxySched)
		if err != nil {
			panic(err)
		}
		f.sched = s
	}
	if f.sched == nil {
		// Clusters assembled outside machine.New carry no policy.
		f.sched, _ = proxy.SchedByName("")
	}
	f.taskMode = cl.Eng.ExecMode() == sim.ExecTask && f.A.Kind != arch.Syscall
	if f.taskMode {
		// Each agent gets its resident protocol frame: the continuation
		// state its work items run through, built once per agent.
		for _, nd := range cl.Nodes {
			for k, ag := range nd.Agents {
				fr := &agentExec{f: f, a: ag, node: nd, scanIdx: k}
				fr.stepK = fr.step
				ag.SetExec(fr)
			}
		}
	}
	if f.A.Kind == arch.Proxy {
		f.scanners = make([][]*proxy.Scanner[request], len(cl.Nodes))
		f.cmdqNames = make([][][]string, len(cl.Nodes))
		for i, nd := range cl.Nodes {
			f.scanners[i] = make([]*proxy.Scanner[request], len(nd.Agents))
			f.cmdqNames[i] = make([][]string, len(nd.Agents))
			for k := range nd.Agents {
				s := proxy.NewScanner[request]()
				// Scan passes feed the trace stream under the serving
				// agent's name; Emit is a no-op without a tracer.
				name := nd.Agents[k].Name + ".scan"
				eng := nd.Eng // scan passes run in the node's event context
				s.SetObserver(func(probes, headChecks int64, found bool) {
					eng.Emit(trace.KScan, name, trace.ScanArg(probes, headChecks, found))
				})
				f.scanners[i][k] = s
				// A proxy crash (fault plane) wipes the scanner's volatile
				// state; on restart it reprobes every registered queue head.
				nd.Agents[k].OnRestart(s.Restart)
			}
		}
		if f.sched.Steal() {
			f.installStealing()
		}
	}
	if opt.Rel != nil {
		f.EnableRel(*opt.Rel)
	}
	for _, cpu := range cl.CPUs {
		ep := &Endpoint{f: f, cpu: cpu, rank: cpu.Rank}
		if f.A.Kind == arch.Proxy {
			ep.cmdq = proxy.NewCommandQueue[request](cpu.Rank, opt.queueCap())
			nProxies := len(cpu.Node.Agents)
			ep.proxyIdx = f.sched.Home(cpu.Node.ID, cpu.Slot, cpu.Rank, nProxies)
			ep.cmdqIdx = f.scanners[cpu.Node.ID][ep.proxyIdx].Register(ep.cmdq)
			ep.cmdqComp = fmt.Sprintf("rank%d.cmdq", cpu.Rank)
			f.cmdqNames[cpu.Node.ID][ep.proxyIdx] = append(f.cmdqNames[cpu.Node.ID][ep.proxyIdx], ep.cmdqComp)
			// The proxy-service work item is identical for every operation
			// this endpoint submits (the request travels via the command
			// queue, not the closure), so build it once instead of
			// allocating a fresh closure per message.
			if f.taskMode {
				ep.work = machine.Work{TFn: mpServiceWork}
			} else {
				node, idx := cpu.Node, ep.proxyIdx
				ep.work = machine.Work{Fn: func(ap *sim.Proc) { f.proxyServiceOne(ap, node, idx) }}
			}
		}
		f.eps = append(f.eps, ep)
	}
	if fabricHook != nil {
		fabricHook(f)
	}
	return f
}

// fabricHook, when set, observes every fabric built by New. It mirrors
// machine.OnNewCluster for the scenario layer: the timeline sampler
// uses it to attach command-queue depth probes to each fresh fabric.
var fabricHook func(*Fabric)

// OnNewFabric installs (or, with nil, removes) a hook invoked with every
// subsequently built fabric, after its endpoints and command queues exist.
func OnNewFabric(fn func(*Fabric)) { fabricHook = fn }

// Endpoints returns all endpoints, indexed by global rank.
func (f *Fabric) Endpoints() []*Endpoint { return f.eps }

// CommandQueue returns the endpoint's proxy command queue (nil on design
// points without one).
func (ep *Endpoint) CommandQueue() *proxy.CommandQueue[request] { return ep.cmdq }

// Endpoint returns the endpoint of a global rank.
func (f *Fabric) Endpoint(rank int) *Endpoint { return f.eps[rank] }

// Stats returns the accumulated traffic statistics, aggregated over the
// per-endpoint counters (each endpoint's counters are only ever touched
// from its own node's event context, so a parallel run needs no locks and
// this sum is deterministic).
func (f *Fabric) Stats() Stats {
	var s Stats
	for _, ep := range f.eps {
		for k := 0; k < int(opKinds); k++ {
			s.Ops[k] += ep.opsK[k]
			s.Bytes[k] += ep.bytesK[k]
		}
		s.Intra += ep.intra
	}
	return s
}

// DisableIntraBypass routes intra-node operations through the
// communication agent instead of shared memory. For ablation studies only.
func (f *Fabric) DisableIntraBypass() { f.forceRemote = true }

// Parallelize prepares the fabric for sharded windowed execution driven by
// ps: packet and CCB pooling switch off (see newPacket, newReqBox), and —
// on the flat single-link model, where the fabric itself is the packet
// sink — each node's output link gets a route hook that detours
// cross-shard deliveries through ps's mailboxes. Multi-switch clusters
// route at the interconnect instead (topo.Net.Parallelize owns those
// links). Must be called before any traffic is submitted; requires a
// sharded cluster.
func (f *Fabric) Parallelize(ps *par.Sim) {
	if !f.Cl.Sharded() {
		panic("comm: Parallelize on an unsharded cluster")
	}
	f.parallel = true
	if f.Cl.Net != nil {
		return
	}
	shard := f.Cl.NodeShard
	for _, nd := range f.Cl.Nodes {
		src := shard[nd.ID]
		nd.OutLink.SetRoute(func(at sim.Time, sink machine.PacketSink, arg any) bool {
			pkt, ok := arg.(*packet)
			if !ok {
				return false
			}
			dst := shard[f.nodeOf(pkt.to).ID]
			if dst == src {
				return false
			}
			ps.Post(int(src), int(dst), at, func() { sink.DeliverPacket(arg, machine.PacketFate{}) })
			return true
		})
	}
}

// LatencyStats reports observed one-way operation latencies by kind,
// measured inside whatever workload ran — under load, not quiescent.
func (f *Fabric) LatencyStats() map[OpKind]LatencyStat {
	out := make(map[OpKind]LatencyStat, int(opKinds))
	for k := OpKind(0); k < opKinds; k++ {
		var a latAccum
		for n := range f.lat {
			b := &f.lat[n][k]
			a.count += b.count
			a.sum += b.sum
			if b.max > a.max {
				a.max = b.max
			}
		}
		if a.count > 0 {
			out[k] = a.stat()
		}
	}
	return out
}

// opDone records one completed operation's latency. node is the node in
// whose event context the completion runs (the destination of the data
// movement); its engine is the correct clock in both execution modes.
func (f *Fabric) opDone(node *machine.Node, kind OpKind, issued sim.Time) {
	d := node.Eng.Now() - issued
	f.lat[node.ID][kind].add(d)
	node.Eng.Emit(trace.KOpDone, kind.String(), int64(d))
}

// Registry returns the cluster's address-space registry.
func (f *Fabric) Registry() *memory.Registry { return f.Cl.Reg }

// Endpoint is one compute process's handle on the communication system. It
// must be bound to the simulated process before use.
type Endpoint struct {
	f       *Fabric
	cpu     *machine.CPU
	rank    int
	proc    *sim.Proc
	cmdq    *proxy.CommandQueue[request]
	cmdqIdx int
	// cmdqComp is the command queue's trace component name, emitted on
	// every command enqueue so span assembly can pair a proxy's pickup
	// with the exact command it dequeued (the agent work tokens are
	// fungible: a scan may service another endpoint's command).
	cmdqComp string
	proxyIdx int // which of the node's proxies serves this endpoint
	// work is the pre-built proxy work item submitted once per operation
	// (proxy design points only).
	work machine.Work

	// Traffic counters live per endpoint — not on the fabric — because an
	// endpoint submits only from its own node's event context; a parallel
	// run's shards therefore never contend on them, and Fabric.Stats sums
	// them deterministically.
	ops    int64
	bytes  int64
	opsK   [opKinds]int64
	bytesK [opKinds]int64
	intra  int64
}

// Bind attaches the simulated process that issues operations through this
// endpoint (the registration step of Section 4: the user allocates command
// queues and registers them with the proxy via one system call at startup).
func (ep *Endpoint) Bind(p *sim.Proc) { ep.proc = p }

// Proc returns the bound process.
func (ep *Endpoint) Proc() *sim.Proc { return ep.proc }

// Rank returns the endpoint's global rank.
func (ep *Endpoint) Rank() int { return ep.rank }

// Node returns the endpoint's SMP node.
func (ep *Endpoint) Node() *machine.Node { return ep.cpu.Node }

// CPU returns the endpoint's compute processor.
func (ep *Endpoint) CPU() *machine.CPU { return ep.cpu }

// Ops returns the number of operations this endpoint has issued.
func (ep *Endpoint) Ops() int64 { return ep.ops }

// Bytes returns the payload bytes this endpoint has moved.
func (ep *Endpoint) Bytes() int64 { return ep.bytes }

// request is a submitted RMA/RQ command.
type request struct {
	kind    OpKind
	from    int
	issued  sim.Time
	local   memory.Addr
	payload []byte // ENQ immediate payload (instead of local)
	remote  memory.Addr
	rq      memory.QueueRef
	n       int
	fsync   memory.FlagRef
	rsync   memory.FlagRef
}

// Put copies n bytes from local (in the caller's space) to remote. rsync is
// signaled at the destination when the data is deposited; fsync, if
// non-nil, is signaled locally once the destination confirms the deposit.
func (ep *Endpoint) Put(local, remote memory.Addr, n int, fsync, rsync memory.FlagRef) error {
	if err := ep.checkRMA(local, remote, n, "PUT"); err != nil {
		return err
	}
	ep.record(OpPut, n)
	ep.submit(request{kind: OpPut, from: ep.rank, local: local, remote: remote, n: n, fsync: fsync, rsync: rsync})
	return nil
}

// PutBytes is Put with an immediate payload (a value composed in registers
// rather than read from a source buffer); it costs the same as a PUT of
// len(data) bytes and is safe to issue back-to-back, since the data is
// captured at submission.
func (ep *Endpoint) PutBytes(data []byte, remote memory.Addr, fsync, rsync memory.FlagRef) error {
	if _, err := ep.f.Cl.Reg.CheckAccess(ep.rank, remote, len(data), "PUT remote"); err != nil {
		return err
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	ep.record(OpPut, len(data))
	ep.submit(request{kind: OpPut, from: ep.rank, payload: buf, remote: remote, n: len(data), fsync: fsync, rsync: rsync})
	return nil
}

// Get copies n bytes from remote into local. fsync is signaled locally when
// the data arrives; rsync, if non-nil, is signaled at the remote end when
// the source has been read.
func (ep *Endpoint) Get(local, remote memory.Addr, n int, fsync, rsync memory.FlagRef) error {
	if err := ep.checkRMA(local, remote, n, "GET"); err != nil {
		return err
	}
	ep.record(OpGet, n)
	ep.submit(request{kind: OpGet, from: ep.rank, local: local, remote: remote, n: n, fsync: fsync, rsync: rsync})
	return nil
}

// Enq atomically appends n bytes starting at local to the tail of the
// remote queue rq. lsync is signaled locally when the source buffer has
// been transmitted and may be reused.
func (ep *Endpoint) Enq(local memory.Addr, rq memory.QueueRef, n int, lsync memory.FlagRef) error {
	reg := ep.f.Cl.Reg
	if _, err := reg.CheckAccess(ep.rank, local, n, "ENQ source"); err != nil {
		return err
	}
	if _, err := reg.CheckQueue(ep.rank, rq, "ENQ"); err != nil {
		return err
	}
	ep.record(OpEnq, n)
	ep.submit(request{kind: OpEnq, from: ep.rank, local: local, rq: rq, n: n, fsync: lsync})
	return nil
}

// EnqBytes is Enq with an immediate payload (a record composed in
// registers rather than in a memory buffer); it costs the same.
func (ep *Endpoint) EnqBytes(data []byte, rq memory.QueueRef, lsync memory.FlagRef) error {
	if _, err := ep.f.Cl.Reg.CheckQueue(ep.rank, rq, "ENQ"); err != nil {
		return err
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	ep.record(OpEnq, len(data))
	ep.submit(request{kind: OpEnq, from: ep.rank, payload: buf, rq: rq, n: len(data), fsync: lsync})
	return nil
}

// Deq removes the record at the head of the (possibly remote) queue rq and
// copies up to n bytes of it to local. lsync is signaled when the data
// arrives. If the queue is empty the dequeue completes once a record is
// enqueued.
func (ep *Endpoint) Deq(local memory.Addr, rq memory.QueueRef, n int, lsync memory.FlagRef) error {
	reg := ep.f.Cl.Reg
	if _, err := reg.CheckAccess(ep.rank, local, n, "DEQ dest"); err != nil {
		return err
	}
	if _, err := reg.CheckQueue(ep.rank, rq, "DEQ"); err != nil {
		return err
	}
	ep.record(OpDeq, n)
	ep.submit(request{kind: OpDeq, from: ep.rank, local: local, rq: rq, n: n, fsync: lsync})
	return nil
}

// Recv blocks until the local queue q has a record and returns it,
// charging the user-level dequeue cost. This is the fast path a process
// uses on queues in its own address space (message handlers, Active
// Message polls).
func (ep *Endpoint) Recv(q *memory.RQueue) []byte {
	if q.Owner != ep.rank {
		panic(fmt.Sprintf("comm: rank %d Recv on rank %d's queue", ep.rank, q.Owner))
	}
	rec := q.Take(ep.proc)
	ep.cpu.Compute(ep.proc, ep.f.dequeueCost())
	return rec
}

// TryRecv is Recv without blocking; the head probe costs one miss only
// when it finds data (a polled-empty queue stays in cache).
func (ep *Endpoint) TryRecv(q *memory.RQueue) ([]byte, bool) {
	if q.Owner != ep.rank {
		panic(fmt.Sprintf("comm: rank %d TryRecv on rank %d's queue", ep.rank, q.Owner))
	}
	rec, ok := q.TryTake()
	if ok {
		ep.cpu.Compute(ep.proc, ep.f.dequeueCost())
	}
	return rec, ok
}

// WaitFlag blocks until the referenced local flag reaches need, then
// charges the completion-detection cost (a miss on the flag's cache line;
// a status system call under SW).
func (ep *Endpoint) WaitFlag(ref memory.FlagRef, need int64) {
	fl, ok := ep.f.Cl.Reg.Flag(ref)
	if !ok {
		panic(fmt.Sprintf("comm: rank %d waits on unknown flag %+v", ep.rank, ref))
	}
	fl.Wait(ep.proc, need)
	ep.cpu.Compute(ep.proc, ep.f.detectCost())
}

// FlagValue reads the referenced flag without blocking or cost (a cached
// re-read of an already-detected flag).
func (ep *Endpoint) FlagValue(ref memory.FlagRef) int64 {
	fl, ok := ep.f.Cl.Reg.Flag(ref)
	if !ok {
		return 0
	}
	return fl.Value()
}

// Compute charges d of application computation to this endpoint's CPU.
func (ep *Endpoint) Compute(d sim.Time) { ep.cpu.Compute(ep.proc, d) }

func (ep *Endpoint) checkRMA(local, remote memory.Addr, n int, op string) error {
	if n <= 0 {
		return fmt.Errorf("comm: %s of %d bytes", op, n)
	}
	// The op tag only reaches a message on the fault path; concatenating
	// the side suffix up front would cost two allocations per clean RMA.
	reg := ep.f.Cl.Reg
	if _, err := reg.CheckAccess(ep.rank, local, n, op); err != nil {
		return faultSide(err, op+" local")
	}
	if _, err := reg.CheckAccess(ep.rank, remote, n, op); err != nil {
		return faultSide(err, op+" remote")
	}
	return nil
}

// faultSide rewrites the Op of a fresh access fault to carry which side of
// the transfer (local or remote) tripped it.
func faultSide(err error, op string) error {
	if f, ok := err.(*memory.Fault); ok {
		f.Op = op
	}
	return err
}

func (ep *Endpoint) record(kind OpKind, n int) {
	ep.ops++
	ep.bytes += int64(n)
	ep.opsK[kind]++
	ep.bytesK[kind] += int64(n)
	ep.cpu.Node.Eng.Emit(trace.KOpSubmit, kind.String(), int64(n))
}

// submit hands the request to the architecture-specific send path after
// charging the submission overhead on the caller's CPU. Operations whose
// target lives on the same SMP node move through shared memory directly.
func (ep *Endpoint) submit(r request) {
	f := ep.f
	r.issued = ep.cpu.Node.Eng.Now()
	if !f.forceRemote && f.nodeOf(f.targetRank(r)) == ep.cpu.Node {
		ep.intra++
		f.intra(ep, r)
		return
	}
	switch f.A.Kind {
	case arch.Proxy:
		// Writing the opcode and operands into the user's command queue:
		// a read miss on the tail entry and a write miss publishing it.
		ep.cpu.Compute(ep.proc, 2*f.A.AgentMiss+f.A.Instr(0.2))
		if err := ep.cmdq.Enqueue(ep.rank, r); err != nil {
			// Queue full: the user spins until the proxy drains an entry.
			for err != nil {
				ep.cpu.Compute(ep.proc, f.A.PollDelay())
				err = ep.cmdq.Enqueue(ep.rank, r)
			}
		}
		node := ep.cpu.Node
		node.Eng.Emit(trace.KEnqueue, ep.cmdqComp, int64(ep.cmdq.Len()))
		f.scanners[node.ID][ep.proxyIdx].MarkNonEmpty(ep.cmdqIdx)
		node.Agents[ep.proxyIdx].Submit(ep.work)
	case arch.CustomHW:
		ep.cpu.Compute(ep.proc, f.A.ComputeOvh)
		node := ep.cpu.Node
		if f.taskMode {
			// Boxing the request into the work item's any would allocate
			// per operation; a recycled CCB box carries it instead.
			box := f.newReqBox()
			box.r = r
			node.Agent.Submit(machine.Work{TFn: hwSendWork, Arg: box})
		} else {
			node.Agent.Submit(f.hwSendProcWork(node, r))
		}
	case arch.Syscall:
		f.swSend(ep, r)
	}
}

// hwSendProcWork builds the coroutine-mode send closure. Kept out of
// submit (and out of its inliner's reach) so that capturing r here does
// not force every submit call — including task-mode ones that never build
// a closure — to heap-allocate the request in its prologue.
//
//go:noinline
func (f *Fabric) hwSendProcWork(node *machine.Node, r request) machine.Work {
	return machine.Work{Fn: func(ap *sim.Proc) { f.hwSend(ap, node, r) }}
}
