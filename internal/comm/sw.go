package comm

import (
	"fmt"

	"mproxy/internal/machine"
	"mproxy/internal/sim"
)

// System-call paths. Outgoing communication is a system call executed on
// the issuing compute processor (kernel protocol included); incoming
// messages interrupt the destination processor and the handler steals
// compute cycles from whatever is running there. There is no offload:
// every microsecond of protocol shows up on a compute processor, which is
// why SW1's message overhead dominates Figure 8's communication-intensive
// applications.

// swSend runs inline on the user's process — the caller is inside the
// kernel until the data has been handed to the adapter (no overlap).
func (f *Fabric) swSend(ep *Endpoint, r request) {
	A := f.A
	node := ep.cpu.Node
	to := f.targetRank(r)
	base := A.SyscallOvh + A.ProtocolOvh
	switch r.kind {
	case OpPut, OpEnq:
		kind := pktPutData
		if r.kind == OpEnq {
			kind = pktEnqData
		}
		if r.kind == OpPut && r.n > A.PIOCutoff {
			// The kernel pins and DMAs page by page with the caller
			// blocked: a communication operation may block in the kernel,
			// preventing overlap of communication with computation.
			ep.cpu.Compute(ep.proc, base)
			f.sendPages(ep.proc, node, packet{kind: pktPutPage, from: r.from, to: to, n: r.n,
				issued: r.issued, dst: r.remote, fsync: r.fsync, rsync: r.rsync}, r.local)
		} else {
			ep.cpu.Compute(ep.proc, base+A.CacheMiss+2*A.Uncached+f.pio(r.n))
			f.ship(node, &packet{kind: kind, from: r.from, to: to, n: r.n,
				issued: r.issued, data: f.readSource(r), dst: r.remote, rq: r.rq, fsync: r.fsync, rsync: r.rsync})
		}
		if r.kind == OpEnq {
			f.Cl.Reg.Signal(r.fsync)
		}
	case OpGet:
		ep.cpu.Compute(ep.proc, base+2*A.Uncached)
		f.ship(node, &packet{kind: pktGetReq, from: r.from, to: to, n: r.n,
			issued: r.issued, src: r.remote, dst: r.local, fsync: r.fsync, rsync: r.rsync})
	case OpDeq:
		ep.cpu.Compute(ep.proc, base+2*A.Uncached)
		f.ship(node, &packet{kind: pktDeqReq, from: r.from, to: to, n: r.n,
			issued: r.issued, rq: r.rq, dst: r.local, fsync: r.fsync})
	}
}

// swRecv services an arriving packet: the destination rank's CPU takes an
// interrupt, the kernel handler runs for the service cost, and the effects
// (deposit, flag, reply) materialize when the handler finishes.
func (f *Fabric) swRecv(dest *machine.Node, pkt *packet) {
	A := f.A
	reg := f.Cl.Reg
	cpu := f.Cl.CPUs[pkt.to]
	if cpu.Node != dest {
		panic(fmt.Sprintf("comm: packet for rank %d delivered to node %d", pkt.to, dest.ID))
	}
	after := func(cost sim.Time, fn func()) {
		cpu.Interrupt(cost)
		f.Cl.Eng.Schedule(cost, fn)
	}
	// Data deposits happen at packet arrival so that same-channel messages
	// observe FIFO order regardless of their differing handler costs;
	// synchronization flags and replies materialize only after the handler
	// cost, which is what latency measurements observe.
	switch pkt.kind {
	case pktPutData:
		f.depositBytes(pkt.dst, pkt.data)
		after(A.InterruptOvh+A.ProtocolOvh+f.pio(pkt.n)+2*A.CacheMiss, func() {
			f.opDone(dest, OpPut, pkt.issued)
			reg.Signal(pkt.rsync)
			f.swAck(dest, pkt)
		})
	case pktPutPage:
		f.depositBytes(pkt.dst, pkt.data)
		cost := A.Instr(0.1)
		if pkt.last {
			cost += A.InterruptOvh + A.CacheMiss
		}
		after(cost, func() {
			if pkt.last {
				f.opDone(dest, OpPut, pkt.issued)
				reg.Signal(pkt.rsync)
				f.swAck(dest, pkt)
			}
		})
	case pktGetReq:
		if pkt.n <= A.PIOCutoff {
			after(A.InterruptOvh+A.ProtocolOvh+A.CacheMiss+f.pio(pkt.n)+2*A.Uncached, func() {
				reg.Signal(pkt.rsync)
				f.ship(dest, &packet{kind: pktGetData, from: pkt.to, to: pkt.from, n: pkt.n,
					issued: pkt.issued, data: f.readBytes(pkt.src, pkt.n), dst: pkt.dst, fsync: pkt.fsync})
			})
		} else {
			req := *pkt
			after(A.InterruptOvh+A.ProtocolOvh, func() {
				reg.Signal(req.rsync)
				// A transient kernel thread streams the pinned pages out;
				// like the paper's SW1 model, this is generous to SW —
				// the stream itself does not steal further compute cycles.
				f.Cl.Eng.Spawn(fmt.Sprintf("swdma-get-%d", req.from), func(p *sim.Proc) {
					f.sendPages(p, dest, packet{kind: pktGetPage, from: req.to, to: req.from,
						n: req.n, issued: req.issued, dst: req.dst, fsync: req.fsync}, req.src)
				})
			})
		}
	case pktGetData:
		f.depositBytes(pkt.dst, pkt.data)
		after(A.InterruptOvh+A.ProtocolOvh+f.pio(pkt.n)+2*A.CacheMiss, func() {
			f.opDone(dest, OpGet, pkt.issued)
			reg.Signal(pkt.fsync)
		})
	case pktGetPage:
		f.depositBytes(pkt.dst, pkt.data)
		cost := A.Instr(0.1)
		if pkt.last {
			cost += A.InterruptOvh + A.CacheMiss
		}
		after(cost, func() {
			if pkt.last {
				f.opDone(dest, OpGet, pkt.issued)
				reg.Signal(pkt.fsync)
			}
		})
	case pktEnqData:
		// The interrupt handler deposits the record into the owner's
		// queue buffer; the owner pays the kernel crossing when it
		// dequeues (Recv / drain).
		after(A.InterruptOvh+A.ProtocolOvh+f.pio(pkt.n)+3*A.CacheMiss, func() {
			f.depositQueue(pkt.rq, pkt.data)
			f.opDone(dest, OpEnq, pkt.issued)
		})
	case pktDeqReq:
		req := *pkt
		after(A.InterruptOvh+A.ProtocolOvh, func() {
			q, _ := reg.Queue(req.rq)
			q.TakeAsync(func(rec []byte) {
				n := req.n
				if len(rec) < n {
					n = len(rec)
				}
				// The reply is sent from kernel context on the owner's CPU.
				cpu.Interrupt(A.ProtocolOvh + f.pio(n))
				f.Cl.Eng.Schedule(A.ProtocolOvh+f.pio(n), func() {
					f.ship(dest, &packet{kind: pktDeqData, from: req.to, to: req.from, n: n,
						issued: req.issued, data: rec[:n], dst: req.dst, fsync: req.fsync})
				})
			})
		})
	case pktDeqData:
		f.depositBytes(pkt.dst, pkt.data)
		after(A.InterruptOvh+A.ProtocolOvh+f.pio(pkt.n)+2*A.CacheMiss, func() {
			f.opDone(dest, OpDeq, pkt.issued)
			reg.Signal(pkt.fsync)
		})
	case pktAck:
		after(A.InterruptOvh+A.CacheMiss, func() {
			reg.Signal(pkt.fsync)
		})
	}
}

// swAck returns a PUT confirmation from kernel interrupt context.
func (f *Fabric) swAck(node *machine.Node, pkt *packet) {
	if pkt.fsync.Nil() {
		return
	}
	f.ship(node, &packet{kind: pktAck, from: pkt.to, to: pkt.from, fsync: pkt.fsync})
}
