package comm

import (
	"mproxy/internal/machine"
	"mproxy/internal/proxy"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// Work stealing between a node's proxies (the "steal" scheduling policy).
//
// Placement is static slot-modulo, but a proxy that finds its own work
// queue empty — just before it would go idle — probes its siblings'
// scanners and, if one has marked-non-empty command queues, submits
// itself a steal turn against that victim. The stolen turn runs the same
// scan/decode/send pipeline as a home turn with one extra AgentMiss up
// front: the victim's command-queue state lives in the victim's cache,
// so the cross-queue read is never free in the cost model.
//
// Determinism: the victim rotation is a pure function of (node ID, per-
// node steal counter) through the same splitmix64 mix the shard policy
// uses, the probe order over siblings is fixed, and the steal turn
// itself is an ordinary agent work item — so Proc and Task mode replay
// identical schedules, and repeated runs are bit-identical. A stolen
// command leaves the victim's own queued work token stale, which the
// scan path already tolerates (the turn finds nothing and retires).

// installStealing hooks every proxy on every multi-proxy node with an
// idle-time steal probe. Called at fabric construction, proxy design
// points only.
func (f *Fabric) installStealing() {
	cl := f.Cl
	f.stealSeq = make([]uint64, len(cl.Nodes))
	f.stealWork = make([][]machine.Work, len(cl.Nodes))
	for _, nd := range cl.Nodes {
		if len(nd.Agents) < 2 {
			continue
		}
		works := make([]machine.Work, len(nd.Agents))
		for v := range nd.Agents {
			if f.taskMode {
				works[v] = machine.Work{TFn: mpStealWork, Arg: v}
			} else {
				node, victim := nd, v
				works[v] = machine.Work{Fn: func(ap *sim.Proc) { f.proxyStealOne(ap, node, victim) }}
			}
		}
		f.stealWork[nd.ID] = works
		for t := range nd.Agents {
			node, thief := nd, t
			nd.Agents[t].OnIdle(func() { f.trySteal(node, thief) })
		}
	}
}

// trySteal runs when a proxy finds its queue empty: probe the siblings
// in seeded rotation and submit one steal turn against the first victim
// whose scanner marks pending commands. The probe itself costs nothing —
// the shared non-empty bit vectors are the same cheap summary the home
// scan uses — the steal turn pays the cross-queue penalty.
func (f *Fabric) trySteal(node *machine.Node, thief int) {
	n := len(node.Agents)
	scans := f.scanners[node.ID]
	cnt := f.stealSeq[node.ID]
	off := int(proxy.Mix64(uint64(node.ID)<<32|cnt) % uint64(n-1))
	for i := 0; i < n-1; i++ {
		v := (thief + 1 + (off+i)%(n-1)) % n
		if !scans[v].Pending() {
			continue
		}
		f.stealSeq[node.ID] = cnt + 1
		node.Agents[thief].Submit(f.stealWork[node.ID][v])
		return
	}
}

// proxyStealOne is one stolen scan turn in coroutine mode: pay the
// cross-queue miss, then run the victim's scan/decode/send exactly as
// proxyServiceOne would.
func (f *Fabric) proxyStealOne(ap *sim.Proc, node *machine.Node, victim int) {
	A := f.A
	ap.Hold(A.AgentMiss) // cross-queue penalty: victim's queue state is cold here
	r, qi, ok := f.scanners[node.ID][victim].Next()
	if !ok {
		return // the victim (or another thief) got there first
	}
	node.Eng.Emit(trace.KDequeue, f.cmdqNames[node.ID][victim][qi], 0)
	ap.Hold(A.AgentMiss + A.Instr(0.5) + A.VMAtt)
	f.mpSend(ap, node, r)
}

// mpStealWork is proxyStealOne's run-to-completion twin: hold the
// cross-queue penalty, then scan the victim at pcMPStealScan. Arg is the
// victim's proxy index (a small int: interface boxing stays alloc-free).
func mpStealWork(a *machine.Agent, arg any) {
	fr := a.Exec().(*agentExec)
	fr.stealIdx = arg.(int)
	fr.hold(fr.f.A.AgentMiss, pcMPStealScan)
}
