package comm

import (
	"mproxy/internal/arch"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
)

// Per-architecture cost fragments shared by the micro paths.

// pio returns the programmed-I/O time for n payload bytes.
func (f *Fabric) pio(n int) sim.Time { return arch.XferTime(n, f.A.PIOBW) }

// detectCost is what a user pays to observe a completed synchronization
// flag: a miss on the flag's line (written by the agent), plus a status
// system call under SW, where completion state lives in the kernel.
func (f *Fabric) detectCost() sim.Time {
	switch f.A.Kind {
	case arch.Proxy:
		return f.A.AgentMiss
	case arch.Syscall:
		return f.A.SyscallOvh
	default:
		return f.A.CacheMiss
	}
}

// dequeueCost is the user-level cost of popping a record from a queue in
// its own address space: misses on the head pointer and the record (both
// written by the agent), plus a system call under SW, where the kernel must
// copy the record out of a protected buffer.
func (f *Fabric) dequeueCost() sim.Time {
	switch f.A.Kind {
	case arch.Proxy:
		return 2*f.A.AgentMiss + f.A.Instr(0.2)
	case arch.Syscall:
		return f.A.SyscallOvh + 2*f.A.CacheMiss + f.A.Instr(0.2)
	default:
		return 2*f.A.CacheMiss + f.A.Instr(0.2)
	}
}

// drainEntryCost is the fixed cost of entering a queue-drain: under SW a
// single receive system call (plus the wakeup signal) can deliver every
// buffered record, so the per-batch kernel crossing is paid once.
func (f *Fabric) drainEntryCost() sim.Time {
	if f.A.Kind == arch.Syscall {
		return f.A.SyscallOvh + f.A.InterruptOvh
	}
	return 0
}

// drainRecordCost is the per-record cost within a batched drain: the head
// and record misses plus bookkeeping, with no additional kernel crossing.
func (f *Fabric) drainRecordCost() sim.Time {
	return 2*f.A.CacheMiss + f.A.Instr(0.2)
}

// DrainStart charges the entry cost of a batched receive and reports
// whether the queue has records. Use with TryRecvBatched to drain a queue
// under batch accounting.
func (ep *Endpoint) DrainStart(q *memory.RQueue) bool {
	if q.Len() == 0 {
		return false
	}
	ep.cpu.Compute(ep.proc, ep.f.drainEntryCost())
	return true
}

// TryRecvBatched is TryRecv under batch accounting: the caller has already
// paid the kernel crossing through DrainStart.
func (ep *Endpoint) TryRecvBatched(q *memory.RQueue) ([]byte, bool) {
	rec, ok := q.TryTake()
	if ok {
		ep.cpu.Compute(ep.proc, ep.f.drainRecordCost())
	}
	return rec, ok
}

// SubmitCost returns the compute-processor time to submit one command
// (exported for the micro-benchmark overhead analysis).
func (f *Fabric) SubmitCost() sim.Time {
	switch f.A.Kind {
	case arch.Proxy:
		return 2*f.A.AgentMiss + f.A.Instr(0.2)
	case arch.Syscall:
		return f.A.SyscallOvh + f.A.ProtocolOvh
	default:
		return f.A.ComputeOvh
	}
}

// DetectCost exposes detectCost for the overhead analysis.
func (f *Fabric) DetectCost() sim.Time { return f.detectCost() }
