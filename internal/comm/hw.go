package comm

import (
	"mproxy/internal/machine"
	"mproxy/internal/sim"
)

// Custom-hardware paths. The node Agent models the adapter's protocol
// engine (its message input and output logic); protection comes from
// virtual-memory mapping, so there are no vm_att calls, no polling delay
// and no page pinning — commands traverse the memory bus and the hardware
// engine continuously consumes messages from the network input.

func (f *Fabric) hwSend(ap *sim.Proc, node *machine.Node, r request) {
	A := f.A
	to := f.targetRank(r)
	switch r.kind {
	case OpPut, OpEnq:
		kind := pktPutData
		if r.kind == OpEnq {
			kind = pktEnqData
		}
		if r.kind == OpPut && r.n > A.PIOCutoff {
			ap.Hold(A.AdapterOvh)
			f.sendPages(ap, node, packet{kind: pktPutPage, from: r.from, to: to, n: r.n,
				issued: r.issued, dst: r.remote, fsync: r.fsync, rsync: r.rsync}, r.local)
		} else {
			// Protocol engine occupancy plus reading the source buffer
			// over the bus.
			ap.Hold(A.AdapterOvh + A.CacheMiss + f.pio(r.n))
			f.ship(node, &packet{kind: kind, from: r.from, to: to, n: r.n,
				issued: r.issued, data: f.readSource(r), dst: r.remote, rq: r.rq, fsync: r.fsync, rsync: r.rsync})
		}
		if r.kind == OpEnq && !r.fsync.Nil() {
			ap.Hold(A.CacheMiss)
			f.Cl.Reg.Signal(r.fsync)
		}
	case OpGet:
		ap.Hold(A.AdapterOvh)
		f.ship(node, &packet{kind: pktGetReq, from: r.from, to: to, n: r.n,
			issued: r.issued, src: r.remote, dst: r.local, fsync: r.fsync, rsync: r.rsync})
	case OpDeq:
		ap.Hold(A.AdapterOvh)
		f.ship(node, &packet{kind: pktDeqReq, from: r.from, to: to, n: r.n,
			issued: r.issued, rq: r.rq, dst: r.local, fsync: r.fsync})
	}
}

func (f *Fabric) hwRecv(ap *sim.Proc, node *machine.Node, pkt *packet) {
	A := f.A
	reg := f.Cl.Reg
	switch pkt.kind {
	case pktPutData:
		ap.Hold(A.AdapterOvh + f.pio(pkt.n) + A.CacheMiss)
		f.depositBytes(pkt.dst, pkt.data)
		f.opDone(node, OpPut, pkt.issued)
		f.hwFinishPut(ap, node, pkt)
	case pktPutPage:
		ap.Hold(A.Instr(0.1))
		f.depositBytes(pkt.dst, pkt.data)
		if pkt.last {
			f.opDone(node, OpPut, pkt.issued)
			f.hwFinishPut(ap, node, pkt)
		}
	case pktGetReq:
		if !pkt.rsync.Nil() {
			ap.Hold(A.CacheMiss)
			reg.Signal(pkt.rsync)
		}
		if pkt.n <= A.PIOCutoff {
			ap.Hold(A.AdapterOvh + A.CacheMiss + f.pio(pkt.n))
			f.ship(node, &packet{kind: pktGetData, from: pkt.to, to: pkt.from, n: pkt.n,
				issued: pkt.issued, data: f.readBytes(pkt.src, pkt.n), dst: pkt.dst, fsync: pkt.fsync})
		} else {
			ap.Hold(A.AdapterOvh)
			f.sendPages(ap, node, packet{kind: pktGetPage, from: pkt.to, to: pkt.from, n: pkt.n,
				issued: pkt.issued, dst: pkt.dst, fsync: pkt.fsync}, pkt.src)
		}
	case pktGetData:
		ap.Hold(A.AdapterOvh + f.pio(pkt.n) + A.CacheMiss)
		f.depositBytes(pkt.dst, pkt.data)
		f.opDone(node, OpGet, pkt.issued)
		ap.Hold(A.CacheMiss)
		reg.Signal(pkt.fsync)
	case pktGetPage:
		ap.Hold(A.Instr(0.1))
		f.depositBytes(pkt.dst, pkt.data)
		if pkt.last {
			f.opDone(node, OpGet, pkt.issued)
			ap.Hold(A.CacheMiss)
			reg.Signal(pkt.fsync)
		}
	case pktEnqData:
		ap.Hold(A.AdapterOvh + f.pio(pkt.n) + 2*A.CacheMiss)
		f.depositQueue(pkt.rq, pkt.data)
		f.opDone(node, OpEnq, pkt.issued)
	case pktDeqReq:
		ap.Hold(A.AdapterOvh)
		q, _ := reg.Queue(pkt.rq)
		req := *pkt
		q.TakeAsync(func(rec []byte) {
			node.Agent.Submit(machine.Work{Fn: func(ap2 *sim.Proc) {
				n := req.n
				if len(rec) < n {
					n = len(rec)
				}
				ap2.Hold(A.AdapterOvh + f.pio(n))
				f.ship(node, &packet{kind: pktDeqData, from: req.to, to: req.from, n: n,
					issued: req.issued, data: rec[:n], dst: req.dst, fsync: req.fsync})
			}})
		})
	case pktDeqData:
		ap.Hold(A.AdapterOvh + f.pio(pkt.n) + A.CacheMiss)
		f.depositBytes(pkt.dst, pkt.data)
		f.opDone(node, OpDeq, pkt.issued)
		ap.Hold(A.CacheMiss)
		reg.Signal(pkt.fsync)
	case pktAck:
		ap.Hold(A.AdapterOvh + A.CacheMiss)
		reg.Signal(pkt.fsync)
	}
}

func (f *Fabric) hwFinishPut(ap *sim.Proc, node *machine.Node, pkt *packet) {
	A := f.A
	if !pkt.rsync.Nil() {
		ap.Hold(A.CacheMiss)
		f.Cl.Reg.Signal(pkt.rsync)
	}
	if !pkt.fsync.Nil() {
		ap.Hold(A.AdapterOvh)
		f.ship(node, &packet{kind: pktAck, from: pkt.to, to: pkt.from, fsync: pkt.fsync})
	}
}
