package comm

import (
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// Run-to-completion protocol paths. Each agent carries one agentExec: a
// resident continuation frame its work items run through. The frames are
// straight CPS transcriptions of the blocking bodies in mp.go and hw.go —
// every Hold becomes a hold(cost, pc) that parks the agent's Task and
// resumes at the named program counter — so the two implementations emit
// identical trace streams (the differential suite holds them to that).
// One work item executes at a time per agent, which is what lets a single
// frame serve every item with zero steady-state allocation.

// Program counters for agentExec.step. MP states transcribe mp.go, HW
// states transcribe hw.go; the page-streaming states are shared (costs
// come from arch params, the loop shape is identical).
const (
	pcFinish = iota // work item complete
	pcPagePinned
	pcPageDMADone

	pcMPSend
	pcMPShipPIO
	pcMPEnqSync
	pcMPPutPages
	pcMPGetReqShip
	pcMPDeqReqShip
	pcMPPutDeposit
	pcMPPutRsync
	pcMPPutAckShip
	pcMPPutPage
	pcMPGetReqDecoded
	pcMPGetReqRsync
	pcMPGetDataShip
	pcMPGetPagesStart
	pcMPGetDeposit
	pcMPGetFsync
	pcMPGetPageStep
	pcMPEnqDeposit
	pcMPDeqReqTake
	pcMPDeqReplyShip
	pcMPDeqDeposit
	pcMPDeqFsync
	pcMPAck
	pcMPStealScan

	pcHWShipPIO
	pcHWEnqSync
	pcHWPutPages
	pcHWGetReqShip
	pcHWDeqReqShip
	pcHWPutDeposit
	pcHWPutRsync
	pcHWPutAckShip
	pcHWPutPage
	pcHWGetReqRsync
	pcHWGetDataShip
	pcHWGetPagesStart
	pcHWGetDeposit
	pcHWGetFsync
	pcHWGetPageStep
	pcHWEnqDeposit
	pcHWDeqReqTake
	pcHWDeqReplyShip
	pcHWDeqDeposit
	pcHWDeqFsync
	pcHWAck
)

// agentExec is one agent's protocol frame.
type agentExec struct {
	f        *Fabric
	a        *machine.Agent
	node     *machine.Node
	scanIdx  int // index of the proxy's command-queue scanner on this node
	stealIdx int // victim scanner index of the current stolen turn

	pc    int
	stepK func() // prebuilt fr.step, carried by every Hold/Occupy wake

	r    request   // current send-side command
	pkt  *packet   // current receive-side packet (freed at finish)
	box  *deqReply // current DEQ reply operand
	nOut int       // DEQ reply payload size (min of requested and record)

	// Page-streaming loop state (sendPages transcription).
	proto   packet
	srcAddr memory.Addr
	off     int
	chunk   int
	donePC  int
}

// deqReply carries a dequeued record and the request it answers from the
// queue's TakeAsync callback to the reply work item.
type deqReply struct {
	req packet
	rec []byte
}

func (fr *agentExec) hold(d sim.Time, pc int) {
	fr.pc = pc
	fr.a.Task().Hold(d, fr.stepK)
}

// finish completes the current work item: release the consumed packet,
// clear the frame, hand the agent to its next item.
func (fr *agentExec) finish() {
	if fr.pkt != nil {
		fr.f.freePacket(fr.pkt)
		fr.pkt = nil
	}
	fr.r = request{}
	fr.box = nil
	fr.proto = packet{}
	fr.a.WorkDone()
}

// step dispatches the frame's parked continuation.
func (fr *agentExec) step() {
	f := fr.f
	A := f.A
	reg := f.Cl.Reg
	switch fr.pc {
	case pcFinish:
		fr.finish()

	// ---- shared page streaming (sendPages) ----
	case pcPagePinned:
		fr.pagePinned()
	case pcPageDMADone:
		fr.pageDMADone()

	// ---- message proxy: send side (mpSend) ----
	case pcMPSend:
		fr.mpSend()
	case pcMPShipPIO:
		r := fr.r
		kind := pktPutData
		if r.kind == OpEnq {
			kind = pktEnqData
		}
		pkt := f.newPacket(fr.node.OutLink)
		pkt.kind, pkt.from, pkt.to, pkt.n = kind, r.from, f.targetRank(r), r.n
		pkt.issued, pkt.dst, pkt.rq, pkt.fsync, pkt.rsync = r.issued, r.remote, r.rq, r.fsync, r.rsync
		if r.kind == OpEnq {
			// The record is handed to the destination queue, which retains
			// the slice: it must not alias the packet's reusable buf.
			pkt.data = f.readSource(r)
		} else {
			f.readSourceInto(pkt, r)
		}
		f.ship(fr.node, pkt)
		if r.kind == OpEnq && !r.fsync.Nil() {
			fr.hold(A.AgentMiss, pcMPEnqSync)
			return
		}
		fr.finish()
	case pcMPEnqSync:
		reg.Signal(fr.r.fsync)
		fr.finish()
	case pcMPPutPages:
		r := fr.r
		fr.startPages(packet{kind: pktPutPage, from: r.from, to: f.targetRank(r), n: r.n,
			issued: r.issued, dst: r.remote, fsync: r.fsync, rsync: r.rsync}, r.local, pcFinish)
	case pcMPGetReqShip:
		r := fr.r
		pkt := f.newPacket(fr.node.OutLink)
		pkt.kind, pkt.from, pkt.to, pkt.n = pktGetReq, r.from, f.targetRank(r), r.n
		pkt.issued, pkt.src, pkt.dst, pkt.fsync, pkt.rsync = r.issued, r.remote, r.local, r.fsync, r.rsync
		f.ship(fr.node, pkt)
		fr.finish()
	case pcMPDeqReqShip:
		r := fr.r
		pkt := f.newPacket(fr.node.OutLink)
		pkt.kind, pkt.from, pkt.to, pkt.n = pktDeqReq, r.from, f.targetRank(r), r.n
		pkt.issued, pkt.rq, pkt.dst, pkt.fsync = r.issued, r.rq, r.local, r.fsync
		f.ship(fr.node, pkt)
		fr.finish()

	// ---- message proxy: receive side (mpRecv) ----
	case pcMPPutDeposit:
		f.depositBytes(fr.pkt.dst, fr.pkt.data)
		f.opDone(fr.node, OpPut, fr.pkt.issued)
		fr.mpFinishPut()
	case pcMPPutRsync:
		reg.Signal(fr.pkt.rsync)
		fr.mpFinishPutAck()
	case pcMPPutAckShip:
		fr.shipAck()
		fr.finish()
	case pcMPPutPage:
		f.depositBytes(fr.pkt.dst, fr.pkt.data)
		if fr.pkt.last {
			f.opDone(fr.node, OpPut, fr.pkt.issued)
			fr.mpFinishPut()
			return
		}
		fr.finish()
	case pcMPGetReqDecoded:
		if !fr.pkt.rsync.Nil() {
			fr.hold(A.AgentMiss, pcMPGetReqRsync)
			return
		}
		fr.mpGetReqReply()
	case pcMPGetReqRsync:
		reg.Signal(fr.pkt.rsync)
		fr.mpGetReqReply()
	case pcMPGetDataShip:
		in := fr.pkt
		pkt := f.newPacket(fr.node.OutLink)
		pkt.kind, pkt.from, pkt.to, pkt.n = pktGetData, in.to, in.from, in.n
		pkt.issued, pkt.dst, pkt.fsync = in.issued, in.dst, in.fsync
		f.readBytesInto(pkt, in.src, in.n)
		f.ship(fr.node, pkt)
		fr.finish()
	case pcMPGetPagesStart:
		in := fr.pkt
		fr.startPages(packet{kind: pktGetPage, from: in.to, to: in.from, n: in.n,
			issued: in.issued, dst: in.dst, fsync: in.fsync}, in.src, pcFinish)
	case pcMPGetDeposit:
		f.depositBytes(fr.pkt.dst, fr.pkt.data)
		f.opDone(fr.node, OpGet, fr.pkt.issued)
		fr.hold(A.AgentMiss, pcMPGetFsync)
	case pcMPGetFsync:
		reg.Signal(fr.pkt.fsync)
		fr.finish()
	case pcMPGetPageStep:
		f.depositBytes(fr.pkt.dst, fr.pkt.data)
		if fr.pkt.last {
			f.opDone(fr.node, OpGet, fr.pkt.issued)
			fr.hold(A.AgentMiss, pcMPGetFsync)
			return
		}
		fr.finish()
	case pcMPEnqDeposit:
		f.depositQueue(fr.pkt.rq, fr.pkt.data)
		f.opDone(fr.node, OpEnq, fr.pkt.issued)
		fr.finish()
	case pcMPDeqReqTake:
		fr.deqTake(false)
	case pcMPDeqReplyShip:
		fr.shipDeqReply()
	case pcMPDeqDeposit:
		f.depositBytes(fr.pkt.dst, fr.pkt.data)
		f.opDone(fr.node, OpDeq, fr.pkt.issued)
		fr.hold(A.AgentMiss, pcMPDeqFsync)
	case pcMPDeqFsync:
		reg.Signal(fr.pkt.fsync)
		fr.finish()
	case pcMPAck:
		reg.Signal(fr.pkt.fsync)
		fr.finish()
	case pcMPStealScan:
		// Stolen turn (see steal.go): the cross-queue penalty is paid,
		// now scan the victim exactly as mpServiceWork scans home turf.
		r, qi, ok := f.scanners[fr.node.ID][fr.stealIdx].Next()
		if !ok {
			fr.finish() // the victim (or another thief) got there first
			return
		}
		fr.node.Eng.Emit(trace.KDequeue, f.cmdqNames[fr.node.ID][fr.stealIdx][qi], 0)
		fr.r = r
		fr.hold(A.AgentMiss+A.Instr(0.5)+A.VMAtt, pcMPSend)

	// ---- custom hardware: send side (hwSend) ----
	case pcHWShipPIO:
		r := fr.r
		kind := pktPutData
		if r.kind == OpEnq {
			kind = pktEnqData
		}
		pkt := f.newPacket(fr.node.OutLink)
		pkt.kind, pkt.from, pkt.to, pkt.n = kind, r.from, f.targetRank(r), r.n
		pkt.issued, pkt.dst, pkt.rq, pkt.fsync, pkt.rsync = r.issued, r.remote, r.rq, r.fsync, r.rsync
		if r.kind == OpEnq {
			pkt.data = f.readSource(r)
		} else {
			f.readSourceInto(pkt, r)
		}
		f.ship(fr.node, pkt)
		if r.kind == OpEnq && !r.fsync.Nil() {
			fr.hold(A.CacheMiss, pcHWEnqSync)
			return
		}
		fr.finish()
	case pcHWEnqSync:
		reg.Signal(fr.r.fsync)
		fr.finish()
	case pcHWPutPages:
		r := fr.r
		fr.startPages(packet{kind: pktPutPage, from: r.from, to: f.targetRank(r), n: r.n,
			issued: r.issued, dst: r.remote, fsync: r.fsync, rsync: r.rsync}, r.local, pcFinish)
	case pcHWGetReqShip:
		r := fr.r
		pkt := f.newPacket(fr.node.OutLink)
		pkt.kind, pkt.from, pkt.to, pkt.n = pktGetReq, r.from, f.targetRank(r), r.n
		pkt.issued, pkt.src, pkt.dst, pkt.fsync, pkt.rsync = r.issued, r.remote, r.local, r.fsync, r.rsync
		f.ship(fr.node, pkt)
		fr.finish()
	case pcHWDeqReqShip:
		r := fr.r
		pkt := f.newPacket(fr.node.OutLink)
		pkt.kind, pkt.from, pkt.to, pkt.n = pktDeqReq, r.from, f.targetRank(r), r.n
		pkt.issued, pkt.rq, pkt.dst, pkt.fsync = r.issued, r.rq, r.local, r.fsync
		f.ship(fr.node, pkt)
		fr.finish()

	// ---- custom hardware: receive side (hwRecv) ----
	case pcHWPutDeposit:
		f.depositBytes(fr.pkt.dst, fr.pkt.data)
		f.opDone(fr.node, OpPut, fr.pkt.issued)
		fr.hwFinishPut()
	case pcHWPutRsync:
		reg.Signal(fr.pkt.rsync)
		fr.hwFinishPutAck()
	case pcHWPutAckShip:
		fr.shipAck()
		fr.finish()
	case pcHWPutPage:
		f.depositBytes(fr.pkt.dst, fr.pkt.data)
		if fr.pkt.last {
			f.opDone(fr.node, OpPut, fr.pkt.issued)
			fr.hwFinishPut()
			return
		}
		fr.finish()
	case pcHWGetReqRsync:
		reg.Signal(fr.pkt.rsync)
		fr.hwGetReqReply()
	case pcHWGetDataShip:
		in := fr.pkt
		pkt := f.newPacket(fr.node.OutLink)
		pkt.kind, pkt.from, pkt.to, pkt.n = pktGetData, in.to, in.from, in.n
		pkt.issued, pkt.dst, pkt.fsync = in.issued, in.dst, in.fsync
		f.readBytesInto(pkt, in.src, in.n)
		f.ship(fr.node, pkt)
		fr.finish()
	case pcHWGetPagesStart:
		in := fr.pkt
		fr.startPages(packet{kind: pktGetPage, from: in.to, to: in.from, n: in.n,
			issued: in.issued, dst: in.dst, fsync: in.fsync}, in.src, pcFinish)
	case pcHWGetDeposit:
		f.depositBytes(fr.pkt.dst, fr.pkt.data)
		f.opDone(fr.node, OpGet, fr.pkt.issued)
		fr.hold(A.CacheMiss, pcHWGetFsync)
	case pcHWGetFsync:
		reg.Signal(fr.pkt.fsync)
		fr.finish()
	case pcHWGetPageStep:
		f.depositBytes(fr.pkt.dst, fr.pkt.data)
		if fr.pkt.last {
			f.opDone(fr.node, OpGet, fr.pkt.issued)
			fr.hold(A.CacheMiss, pcHWGetFsync)
			return
		}
		fr.finish()
	case pcHWEnqDeposit:
		f.depositQueue(fr.pkt.rq, fr.pkt.data)
		f.opDone(fr.node, OpEnq, fr.pkt.issued)
		fr.finish()
	case pcHWDeqReqTake:
		fr.deqTake(true)
	case pcHWDeqReplyShip:
		fr.shipDeqReply()
	case pcHWDeqDeposit:
		f.depositBytes(fr.pkt.dst, fr.pkt.data)
		f.opDone(fr.node, OpDeq, fr.pkt.issued)
		fr.hold(A.CacheMiss, pcHWDeqFsync)
	case pcHWDeqFsync:
		reg.Signal(fr.pkt.fsync)
		fr.finish()
	case pcHWAck:
		reg.Signal(fr.pkt.fsync)
		fr.finish()

	default:
		panic("comm: agentExec woke at unknown pc")
	}
}

// shipAck sends the PUT confirmation for the packet being processed.
func (fr *agentExec) shipAck() {
	in := fr.pkt
	pkt := fr.f.newPacket(fr.node.OutLink)
	pkt.kind, pkt.from, pkt.to, pkt.fsync = pktAck, in.to, in.from, in.fsync
	fr.f.ship(fr.node, pkt)
}

// mpFinishPut transcribes finishPut: remote flag, then optional ack.
func (fr *agentExec) mpFinishPut() {
	if !fr.pkt.rsync.Nil() {
		fr.hold(fr.f.A.AgentMiss, pcMPPutRsync)
		return
	}
	fr.mpFinishPutAck()
}

func (fr *agentExec) mpFinishPutAck() {
	A := fr.f.A
	if !fr.pkt.fsync.Nil() {
		fr.hold(A.Uncached+A.Instr(0.3)+A.Uncached, pcMPPutAckShip)
		return
	}
	fr.finish()
}

func (fr *agentExec) hwFinishPut() {
	if !fr.pkt.rsync.Nil() {
		fr.hold(fr.f.A.CacheMiss, pcHWPutRsync)
		return
	}
	fr.hwFinishPutAck()
}

func (fr *agentExec) hwFinishPutAck() {
	if !fr.pkt.fsync.Nil() {
		fr.hold(fr.f.A.AdapterOvh, pcHWPutAckShip)
		return
	}
	fr.finish()
}

// mpGetReqReply builds the GET reply: PIO for small transfers, the page
// streamer otherwise.
func (fr *agentExec) mpGetReqReply() {
	A := fr.f.A
	pkt := fr.pkt
	if pkt.n <= A.PIOCutoff {
		fr.hold(A.Uncached+A.Instr(0.7)+A.AgentMiss+A.Uncached+fr.f.pio(pkt.n)+A.Uncached, pcMPGetDataShip)
		return
	}
	fr.hold(A.Uncached+A.Instr(0.8), pcMPGetPagesStart)
}

func (fr *agentExec) hwGetReqReply() {
	A := fr.f.A
	pkt := fr.pkt
	if pkt.n <= A.PIOCutoff {
		fr.hold(A.AdapterOvh+A.CacheMiss+fr.f.pio(pkt.n), pcHWGetDataShip)
		return
	}
	fr.hold(A.AdapterOvh, pcHWGetPagesStart)
}

// deqTake transcribes the pktDeqReq tail of mpRecv/hwRecv: copy the
// request out of the (about to be freed) packet, then hand the reply work
// to the requester's serving agent once a record is available. The
// TakeAsync closure allocates, exactly as the blocking path's does.
func (fr *agentExec) deqTake(hw bool) {
	f := fr.f
	q, _ := f.Cl.Reg.Queue(fr.pkt.rq)
	box := &deqReply{req: *fr.pkt}
	work := machine.Work{TFn: mpDeqReplyWork, Arg: box}
	if hw {
		work.TFn = hwDeqReplyWork
	}
	q.TakeAsync(func(rec []byte) {
		box.rec = rec
		f.agentForRank(box.req.to).Submit(work)
	})
	fr.finish()
}

func (fr *agentExec) shipDeqReply() {
	f := fr.f
	box := fr.box
	n := fr.nOut
	pkt := f.newPacket(fr.node.OutLink)
	pkt.kind, pkt.from, pkt.to, pkt.n = pktDeqData, box.req.to, box.req.from, n
	pkt.issued, pkt.data, pkt.dst, pkt.fsync = box.req.issued, box.rec[:n], box.req.dst, box.req.fsync
	f.ship(fr.node, pkt)
	fr.finish()
}

// mpSend transcribes mpSend's dispatch: one hold sized per operation, then
// the matching ship state.
func (fr *agentExec) mpSend() {
	f := fr.f
	A := f.A
	r := fr.r
	switch r.kind {
	case OpPut, OpEnq:
		if r.kind == OpPut && r.n > A.PIOCutoff {
			fr.hold(A.Uncached+A.Instr(0.8), pcMPPutPages) // header + DMA setup
			return
		}
		// Header setup, read source data (miss + uncached), PIO the
		// payload into the output FIFO, launch. ENQ records always move by
		// PIO: queue entries are bounded small messages.
		fr.hold(A.Uncached+A.Instr(0.6)+A.AgentMiss+A.Uncached+f.pio(r.n)+A.Uncached, pcMPShipPIO)
	case OpGet:
		fr.hold(A.Uncached+A.Instr(0.7)+A.Uncached, pcMPGetReqShip)
	case OpDeq:
		fr.hold(A.Uncached+A.Instr(0.7)+A.Uncached, pcMPDeqReqShip)
	}
}

// ---- page streaming (sendPages transcription) ----

// startPages begins streaming proto.n bytes from srcAddr page by page:
// pin (unless Prepinned), occupy the DMA engine, cut the page through to
// the wire — then continue at donePC.
func (fr *agentExec) startPages(proto packet, srcAddr memory.Addr, donePC int) {
	fr.proto, fr.srcAddr, fr.off, fr.donePC = proto, srcAddr, 0, donePC
	fr.pageLoop()
}

func (fr *agentExec) pageLoop() {
	A := fr.f.A
	if fr.off >= fr.proto.n {
		fr.pc = fr.donePC
		fr.step()
		return
	}
	chunk := fr.proto.n - fr.off
	if chunk > A.PageSize {
		chunk = A.PageSize
	}
	fr.chunk = chunk
	if !A.Prepinned {
		fr.hold(2*A.PinPerPage, pcPagePinned)
		return
	}
	fr.pagePinned()
}

func (fr *agentExec) pagePinned() {
	fr.pc = pcPageDMADone
	fr.node.DMA.OccupyTask(fr.a.Task(), fr.chunk, fr.stepK)
}

func (fr *agentExec) pageDMADone() {
	f := fr.f
	pg := f.newPacket(fr.node.OutLink)
	buf, pooled := pg.buf, pg.pooled
	*pg = fr.proto
	pg.buf, pg.pooled = buf, pooled
	pg.n = fr.chunk
	f.readBytesInto(pg, fr.srcAddr.Plus(fr.off), fr.chunk) // read after the DMA completes, as the blocking path does
	pg.dst = fr.proto.dst.Plus(fr.off)
	pg.last = fr.off+fr.chunk == fr.proto.n
	f.shipOverlapped(fr.node, pg)
	fr.off += fr.chunk
	fr.pageLoop()
}

// ---- work-item entry points (Work.TFn bodies; static functions so the
// work items themselves allocate nothing) ----

// mpServiceWork is one turn of the proxy's dispatch loop: scan, dequeue,
// decode, send (proxyServiceOne's transcription).
func mpServiceWork(a *machine.Agent, _ any) {
	fr := a.Exec().(*agentExec)
	f := fr.f
	r, qi, ok := f.scanners[fr.node.ID][fr.scanIdx].Next()
	if !ok {
		a.WorkDone() // stale scan hint; the command was already consumed
		return
	}
	fr.node.Eng.Emit(trace.KDequeue, f.cmdqNames[fr.node.ID][fr.scanIdx][qi], 0)
	fr.r = r
	A := f.A
	// Dequeue entry (read miss), decode command and allocate a CCB,
	// vm_att to the user's space.
	fr.hold(A.AgentMiss+A.Instr(0.5)+A.VMAtt, pcMPSend)
}

// hwSendWork decodes the adapter command carried in the reqBox and runs
// hwSend's transcription.
func hwSendWork(a *machine.Agent, arg any) {
	fr := a.Exec().(*agentExec)
	box := arg.(*reqBox)
	fr.r = box.r
	fr.f.freeReqBox(box)
	f := fr.f
	A := f.A
	r := fr.r
	switch r.kind {
	case OpPut, OpEnq:
		if r.kind == OpPut && r.n > A.PIOCutoff {
			fr.hold(A.AdapterOvh, pcHWPutPages)
			return
		}
		// Protocol engine occupancy plus reading the source buffer over
		// the bus.
		fr.hold(A.AdapterOvh+A.CacheMiss+f.pio(r.n), pcHWShipPIO)
	case OpGet:
		fr.hold(A.AdapterOvh, pcHWGetReqShip)
	case OpDeq:
		fr.hold(A.AdapterOvh, pcHWDeqReqShip)
	}
}

// mpRecvWork services an arriving packet on the proxy (mpRecv's
// transcription).
func mpRecvWork(a *machine.Agent, arg any) {
	fr := a.Exec().(*agentExec)
	pkt := arg.(*packet)
	fr.pkt = pkt
	f := fr.f
	A := f.A
	switch pkt.kind {
	case pktPutData:
		fr.hold(A.CacheMiss+A.Instr(0.9)+A.VMAtt+A.Uncached+f.pio(pkt.n)+A.AgentMiss, pcMPPutDeposit)
	case pktPutPage:
		fr.hold(A.Instr(0.3)+A.AgentMiss, pcMPPutPage)
	case pktGetReq:
		fr.hold(A.CacheMiss+A.Instr(1.0)+A.VMAtt, pcMPGetReqDecoded)
	case pktGetData:
		fr.hold(A.CacheMiss+A.Instr(0.5)+A.VMAtt+A.Uncached+f.pio(pkt.n)+A.AgentMiss, pcMPGetDeposit)
	case pktGetPage:
		fr.hold(A.Instr(0.3)+A.AgentMiss, pcMPGetPageStep)
	case pktEnqData:
		fr.hold(A.CacheMiss+A.Instr(0.9)+A.VMAtt+A.Uncached+f.pio(pkt.n)+2*A.CacheMiss+2*A.AgentMiss, pcMPEnqDeposit)
	case pktDeqReq:
		fr.hold(A.CacheMiss+A.Instr(0.8)+A.VMAtt, pcMPDeqReqTake)
	case pktDeqData:
		fr.hold(A.CacheMiss+A.Instr(0.5)+A.VMAtt+A.Uncached+f.pio(pkt.n)+A.AgentMiss, pcMPDeqDeposit)
	case pktAck:
		fr.hold(A.CacheMiss+A.Instr(0.3)+A.AgentMiss, pcMPAck)
	}
}

// hwRecvWork services an arriving packet on the adapter (hwRecv's
// transcription).
func hwRecvWork(a *machine.Agent, arg any) {
	fr := a.Exec().(*agentExec)
	pkt := arg.(*packet)
	fr.pkt = pkt
	f := fr.f
	A := f.A
	switch pkt.kind {
	case pktPutData:
		fr.hold(A.AdapterOvh+f.pio(pkt.n)+A.CacheMiss, pcHWPutDeposit)
	case pktPutPage:
		fr.hold(A.Instr(0.1), pcHWPutPage)
	case pktGetReq:
		if !pkt.rsync.Nil() {
			fr.hold(A.CacheMiss, pcHWGetReqRsync)
			return
		}
		fr.hwGetReqReply()
	case pktGetData:
		fr.hold(A.AdapterOvh+f.pio(pkt.n)+A.CacheMiss, pcHWGetDeposit)
	case pktGetPage:
		fr.hold(A.Instr(0.1), pcHWGetPageStep)
	case pktEnqData:
		fr.hold(A.AdapterOvh+f.pio(pkt.n)+2*A.CacheMiss, pcHWEnqDeposit)
	case pktDeqReq:
		fr.hold(A.AdapterOvh, pcHWDeqReqTake)
	case pktDeqData:
		fr.hold(A.AdapterOvh+f.pio(pkt.n)+A.CacheMiss, pcHWDeqDeposit)
	case pktAck:
		fr.hold(A.AdapterOvh+A.CacheMiss, pcHWAck)
	}
}

// mpDeqReplyWork ships a dequeued record back to the requester.
func mpDeqReplyWork(a *machine.Agent, arg any) {
	fr := a.Exec().(*agentExec)
	box := arg.(*deqReply)
	fr.box = box
	n := box.req.n
	if len(box.rec) < n {
		n = len(box.rec)
	}
	fr.nOut = n
	A := fr.f.A
	fr.hold(A.Uncached+A.Instr(0.5)+A.AgentMiss+fr.f.pio(n)+A.Uncached, pcMPDeqReplyShip)
}

func hwDeqReplyWork(a *machine.Agent, arg any) {
	fr := a.Exec().(*agentExec)
	box := arg.(*deqReply)
	fr.box = box
	n := box.req.n
	if len(box.rec) < n {
		n = len(box.rec)
	}
	fr.nOut = n
	A := fr.f.A
	fr.hold(A.AdapterOvh+fr.f.pio(n), pcHWDeqReplyShip)
}
