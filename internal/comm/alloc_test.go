package comm

import (
	"testing"

	"mproxy/internal/arch"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/sim"
)

// TestAllocPinTaskPutRound pins the whole converted stack at zero: with
// the agents running as callback machines, a steady-state PUT round trip —
// command-queue enqueue, proxy scan, ship over the wire through the link
// sink, remote deposit, flag signal, and the two user coroutines parking
// and resuming around it — must not allocate. The warmup covers the
// one-time growth (packet and delivery freelists, FIFO rings, event
// queues); after that, any allocation is a regression on the exact path
// the pingpong-e2e benchmark gates.
func TestAllocPinTaskPutRound(t *testing.T) {
	const n = 64
	a, ok := arch.ByName("MP1")
	if !ok {
		t.Fatal("unknown arch MP1")
	}
	eng := sim.NewEngine()
	eng.SetExecMode(sim.ExecTask)
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, a)
	f := New(cl)
	reg := f.Registry()
	b0 := reg.NewSegment(0, n)
	b1 := reg.NewSegment(1, n)
	b0.Grant(1)
	b1.Grant(0)
	ping := reg.NewFlag(1)
	pong := reg.NewFlag(0)
	pingF, _ := reg.Flag(ping)
	pongF, _ := reg.Flag(pong)
	rounds := 0
	eng.Spawn("pinger", func(p *sim.Proc) {
		ep := f.Endpoint(0)
		ep.Bind(p)
		for i := 0; ; i++ {
			if err := ep.Put(b0.Addr(0), b1.Addr(0), n, memory.FlagRef{}, ping); err != nil {
				panic(err)
			}
			pongF.Wait(p, int64(i+1))
			rounds++
		}
	})
	eng.Spawn("ponger", func(p *sim.Proc) {
		ep := f.Endpoint(1)
		ep.Bind(p)
		for i := 0; ; i++ {
			pingF.Wait(p, int64(i+1))
			if err := ep.Put(b1.Addr(0), b0.Addr(0), n, memory.FlagRef{}, pong); err != nil {
				panic(err)
			}
		}
	})

	// One warm window, then pin: each window advances simulated time far
	// enough to cover several complete round trips.
	window := sim.Millisecond
	if err := eng.RunUntil(window); err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("warmup completed no round trips")
	}
	before := rounds
	if got := testing.AllocsPerRun(100, func() {
		if err := eng.RunUntil(eng.Now() + window); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("steady-state PUT round trips: %v allocs/window, want 0", got)
	}
	if rounds == before {
		t.Fatal("pinned windows completed no round trips")
	}
	eng.Shutdown()
}
