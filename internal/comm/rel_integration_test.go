package comm

import (
	"testing"

	"mproxy/internal/arch"
	"mproxy/internal/fault"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/rel"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
)

// faultyPair builds a 2-node cluster under a with a seeded fault plane
// and reliable transport enabled.
func faultyPair(a arch.Params, fc fault.Config) (*sim.Engine, *Fabric) {
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, a)
	cl.SetFaultPlane(fault.NewPlane(fc))
	f := New(cl)
	f.EnableRel(rel.Config{})
	return eng, f
}

// TestRelRecoversLossAllArchs runs a PUT+fsync / GET / ENQ+DEQ workload
// over a heavily lossy wire on each architecture and checks that every
// operation still completes with the right data — the transport hides
// drops, corruption, duplication and reordering from the fabric.
func TestRelRecoversLossAllArchs(t *testing.T) {
	for _, a := range []arch.Params{arch.HW1, arch.MP1, arch.SW1} {
		t.Run(a.Name, func(t *testing.T) {
			eng, f := faultyPair(a, fault.Config{
				Seed: 7, Drop: 0.05, Corrupt: 0.02, Dup: 0.02, Reorder: 0.1,
			})
			reg := f.Registry()
			src := reg.NewSegment(0, 256)
			dst := reg.NewSegment(1, 256)
			dst.Grant(0)
			back := reg.NewSegment(0, 64)
			remote := reg.NewSegment(1, 64)
			remote.Grant(0)
			rq := reg.NewQueue(1)
			rq.Grant(0)
			rqRef := memory.QueueRef{Owner: 1, ID: rq.ID}
			fsync := reg.NewFlag(0)
			gsync := reg.NewFlag(0)
			rsync := reg.NewFlag(1)
			for i := range src.Data {
				src.Data[i] = byte(i * 7)
			}
			copy(remote.Data, "remote source buffer for get")

			const rounds = 12
			var got [][]byte
			run2(t, eng, f,
				func(ep *Endpoint) {
					for i := 0; i < rounds; i++ {
						if err := ep.Put(src.Addr(0), dst.Addr(0), 128, fsync, rsync); err != nil {
							t.Error(err)
						}
						ep.WaitFlag(fsync, int64(i+1))
						if err := ep.EnqBytes([]byte{byte(i), 0xab}, rqRef, memory.FlagRef{}); err != nil {
							t.Error(err)
						}
					}
					if err := ep.Get(back.Addr(0), remote.Addr(0), 28, gsync, memory.FlagRef{}); err != nil {
						t.Error(err)
					}
					ep.WaitFlag(gsync, 1)
				},
				func(ep *Endpoint) {
					ep.WaitFlag(rsync, rounds)
					for i := 0; i < rounds; i++ {
						got = append(got, ep.Recv(rq))
					}
				})

			if err := f.RelErr(); err != nil {
				t.Fatalf("transport failed under recoverable loss: %v", err)
			}
			for i := 0; i < 128; i++ {
				if dst.Data[i] != byte(i*7) {
					t.Fatalf("PUT data corrupted at %d: %d", i, dst.Data[i])
				}
			}
			if string(back.Data[:28]) != "remote source buffer for get" {
				t.Fatalf("GET data = %q", back.Data[:28])
			}
			if len(got) != rounds {
				t.Fatalf("dequeued %d records, want %d", len(got), rounds)
			}
			for i, rec := range got {
				if len(rec) != 2 || rec[0] != byte(i) || rec[1] != 0xab {
					t.Fatalf("record %d = %v (queue order broken)", i, rec)
				}
			}
			st := f.Rel().Stats()
			if st.Retransmits == 0 {
				t.Error("lossy run had no retransmits; fault plane not wired?")
			}
			if st.FlowsFailed != 0 {
				t.Errorf("flows failed: %+v", st)
			}
		})
	}
}

// TestRelCleanWireMatchesDataNoRetransmits checks that with faults absent
// the transport is invisible to correctness: all data flows, nothing
// retransmits, and no flow fails.
func TestRelCleanWireMatchesDataNoRetransmits(t *testing.T) {
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, arch.MP1)
	f := New(cl)
	f.EnableRel(rel.Config{})
	reg := f.Registry()
	src := reg.NewSegment(0, 64)
	dst := reg.NewSegment(1, 64)
	dst.Grant(0)
	fsync := reg.NewFlag(0)
	copy(src.Data, "clean wire, reliable transport")
	run2(t, eng, f,
		func(ep *Endpoint) {
			if err := ep.Put(src.Addr(0), dst.Addr(0), 30, fsync, memory.FlagRef{}); err != nil {
				t.Error(err)
			}
			ep.WaitFlag(fsync, 1)
		}, nil)
	if string(dst.Data[:30]) != "clean wire, reliable transport" {
		t.Fatalf("data = %q", dst.Data[:30])
	}
	st := f.Rel().Stats()
	if st.Retransmits != 0 || st.Duplicates != 0 || st.FlowsFailed != 0 {
		t.Errorf("clean wire transport stats: %+v", st)
	}
	if f.Rel().Outstanding() != 0 {
		t.Errorf("outstanding frames after quiesce: %d", f.Rel().Outstanding())
	}
}

// TestPermanentLinkDownFailsGracefully holds node 0's output link down
// past the retry budget: the transport declares the flow dead, stops the
// simulation, and surfaces the error through RelErr instead of hanging.
func TestPermanentLinkDownFailsGracefully(t *testing.T) {
	eng := sim.NewEngine()
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, arch.MP1)
	cl.SetFaultPlane(fault.NewPlane(fault.Config{
		Seed: 1,
		Down: []fault.Window{{Node: 0, From: 0, To: 1 << 62}},
	}))
	f := New(cl)
	f.EnableRel(rel.Config{RTO: 20 * sim.Microsecond, MaxRetries: 4})
	reg := f.Registry()
	src := reg.NewSegment(0, 64)
	dst := reg.NewSegment(1, 64)
	dst.Grant(0)
	fsync := reg.NewFlag(0)

	eng.Spawn("rank0", func(p *sim.Proc) {
		ep := f.Endpoint(0)
		ep.Bind(p)
		if err := ep.Put(src.Addr(0), dst.Addr(0), 16, fsync, memory.FlagRef{}); err != nil {
			t.Error(err)
		}
		ep.WaitFlag(fsync, 1) // never satisfied; Stop unblocks the run
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("engine error (deadlock instead of graceful stop?): %v", err)
	}
	err := f.RelErr()
	if err == nil {
		t.Fatal("permanent link-down produced no transport error")
	}
	if st := f.Rel().Stats(); st.FlowsFailed != 1 {
		t.Errorf("stats = %+v, want one failed flow", st)
	}
}

// TestProxyCrashRestartRecovers injects a scripted proxy crash between
// two operations and checks the restart rebuilds the scanner state: the
// command enqueued while the proxy was down is still discovered and
// served (no hang), with the stall and restart visible in the trace.
func TestProxyCrashRestartRecovers(t *testing.T) {
	eng := sim.NewEngine()
	rec := &trace.Recorder{}
	eng.SetTracer(rec)
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, arch.MP1)
	// Work item 1 of node 0's proxy crashes (agent names are
	// "node<i>.proxy<k>"); everything else is clean.
	cl.SetFaultPlane(crashPlane{agent: "node0.proxy0", item: 1})
	f := New(cl)
	reg := f.Registry()
	src := reg.NewSegment(0, 64)
	dst := reg.NewSegment(1, 64)
	dst.Grant(0)
	fsync := reg.NewFlag(0)

	run2(t, eng, f,
		func(ep *Endpoint) {
			for i := 0; i < 3; i++ {
				if err := ep.Put(src.Addr(0), dst.Addr(0), 8, fsync, memory.FlagRef{}); err != nil {
					t.Error(err)
				}
				ep.WaitFlag(fsync, int64(i+1))
			}
		}, nil)

	if n := cl.Nodes[0].Agents[0].Restarts(); n != 1 {
		t.Errorf("proxy restarts = %d, want 1", n)
	}
	var stalls int
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KStall && ev.Comp == "node0.proxy0" {
			stalls++
		}
	}
	if stalls != 1 {
		t.Errorf("stall events = %d, want 1", stalls)
	}
}

// crashPlane crashes one specific work item of one named agent.
type crashPlane struct {
	agent string
	item  int64
}

func (c crashPlane) PacketFate(link string, node int, seq uint64, now sim.Time) machine.PacketFate {
	return machine.PacketFate{}
}

func (c crashPlane) AgentFault(agent string, item int64, now sim.Time) machine.AgentFate {
	if agent == c.agent && item == c.item {
		return machine.AgentFate{Stall: 200 * sim.Microsecond, Restart: true}
	}
	return machine.AgentFate{}
}
