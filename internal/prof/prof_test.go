package prof

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mproxy/internal/trace/timeline"
)

var update = flag.Bool("update", false, "rewrite golden files")

var allArchs = []string{"MP0", "MP1", "MP2", "HW0", "HW1", "SW1"}

// TestPhaseSumExact is the core invariant of the span assembler: for every
// architecture and operation, each completed span's phase intervals tile
// [Submit, Done] with no gap and no overlap, so the per-phase breakdown
// sums to the end-to-end KOpDone latency exactly — not approximately.
func TestPhaseSumExact(t *testing.T) {
	for _, archName := range allArchs {
		for _, op := range []string{"PUT", "GET"} {
			r, err := PingPong(Config{Arch: archName, Op: op})
			if err != nil {
				t.Fatalf("%s %s: %v", archName, op, err)
			}
			st := r.Asm.Stats()
			want := r.Cfg.Reps
			if op == "PUT" {
				want *= 2 // both directions
			}
			if st.Completed != want {
				t.Errorf("%s %s: completed %d spans, want %d", archName, op, st.Completed, want)
			}
			if st.LatencyMismatches != 0 || st.FallbackDone != 0 || st.OrphanDone != 0 ||
				st.UnattributedItems != 0 || st.FifoDesyncs != 0 || st.Approximate != 0 {
				t.Errorf("%s %s: attribution not exact: %+v", archName, op, st)
			}
			for _, s := range r.Asm.CompleteSpans() {
				if got, want := s.Total(), s.Done-s.Submit; got != want {
					t.Errorf("%s %s span %d: phase sum %d != lifetime %d", archName, op, s.ID, got, want)
				}
				if s.Done-s.Submit != s.Latency {
					t.Errorf("%s %s span %d: lifetime %d != KOpDone latency %d",
						archName, op, s.ID, s.Done-s.Submit, s.Latency)
				}
			}
		}
	}
}

// TestModelDelta checks the measured-vs-model acceptance bar on the
// calibrated serialized scenario: every phase of every architecture's
// PUT and GET must sit within 5% of the analytic phase prediction (in
// practice the deviation is sub-0.1%, pure nanosecond rounding).
func TestModelDelta(t *testing.T) {
	for _, archName := range allArchs {
		for _, op := range []string{"PUT", "GET"} {
			r, err := PingPong(Config{Arch: archName, Op: op})
			if err != nil {
				t.Fatalf("%s %s: %v", archName, op, err)
			}
			rows := r.BreakdownRows()
			if len(rows) == 0 {
				t.Fatalf("%s %s: no breakdown rows", archName, op)
			}
			modeled := 0
			for _, row := range rows {
				if !row.Model {
					continue
				}
				modeled++
				if row.ModelUs == 0 {
					if row.MeasuredUs != 0 {
						t.Errorf("%s %s %s: measured %.4fus, model 0",
							archName, op, row.Phase, row.MeasuredUs)
					}
					continue
				}
				if d := math.Abs(row.DeltaPct); d > 5 {
					t.Errorf("%s %s %s: measured %.4fus vs model %.4fus (delta %.2f%%)",
						archName, op, row.Phase, row.MeasuredUs, row.ModelUs, row.DeltaPct)
				}
			}
			if modeled < 4 {
				t.Errorf("%s %s: only %d modeled rows", archName, op, modeled)
			}
		}
	}
}

// TestSpanRoutes checks flow reconstruction: an MP1 PUT visits the local
// and remote proxies in order.
func TestSpanRoutes(t *testing.T) {
	r, err := PingPong(Config{Arch: "MP1", Op: "PUT"})
	if err != nil {
		t.Fatal(err)
	}
	spans := r.Asm.CompleteSpans()
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	s := spans[0]
	if got, want := s.Flow(), "pinger>node0.proxy0>node1.proxy0"; got != want {
		t.Errorf("flow = %q, want %q", got, want)
	}
	if s.Probes == 0 {
		t.Errorf("span %d: no command-queue scan work attributed", s.ID)
	}
	if rep := s.Report(); rep == "" {
		t.Errorf("empty critical-path report")
	}
}

// TestTimelineWindows checks the sampler produced utilization windows for
// the proxies and links, with utilization in range.
func TestTimelineWindows(t *testing.T) {
	r, err := PingPong(Config{Arch: "MP1", Op: "PUT", Reps: 64, PeriodNs: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	wins := r.Smp.Windows()
	if len(wins) == 0 {
		t.Fatal("no timeline windows")
	}
	kinds := map[string]int{}
	for _, w := range wins {
		kinds[w.Kind]++
		if w.End <= w.Start {
			t.Fatalf("window %+v: non-positive length", w)
		}
		if w.Util != -1 && (w.Util < -1e-9 || w.Util > 1+1e-9) {
			t.Errorf("window %+v: utilization out of range", w)
		}
		if w.Kind == "cmdq" && w.Depth < 0 {
			t.Errorf("cmdq window %+v: missing depth", w)
		}
	}
	for _, k := range []string{"proxy", "nic", "dma", "cmdq"} {
		if kinds[k] == 0 {
			t.Errorf("no %q windows (got %v)", k, kinds)
		}
	}
	// The proxy is meaningfully busy in a serialized ping-pong: some
	// window must show nonzero utilization.
	busy := false
	for _, w := range wins {
		if w.Kind == "proxy" && w.Util > 0 {
			busy = true
		}
	}
	if !busy {
		t.Error("all proxy windows idle")
	}
}

// TestChromeDeterminism renders the Chrome trace twice from independent
// runs and requires byte identity, then compares against the blessed
// golden (refresh with -update).
func TestChromeDeterminism(t *testing.T) {
	render := func() []byte {
		r, err := PingPong(Config{Arch: "MP1", Op: "PUT"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := timeline.ChromeTrace(r.Asm.Spans(), r.Smp.Windows())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("Chrome trace differs between identical runs")
	}
	golden := filepath.Join("testdata", "pingpong-mp1-chrome.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, a, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(a, want) {
		t.Errorf("Chrome trace deviates from blessed golden %s; re-bless with -update if intended", golden)
	}
}

// TestProfileJSON checks the combined report is well-formed and
// deterministic.
func TestProfileJSON(t *testing.T) {
	r, err := PingPong(Config{Arch: "MP1", Op: "GET"})
	if err != nil {
		t.Fatal(err)
	}
	p := r.Profile()
	if p.CriticalPath == "" {
		t.Error("profile missing critical path")
	}
	j1, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := PingPong(Config{Arch: "MP1", Op: "GET"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.Profile().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("profile JSON differs between identical runs")
	}
}
