// Package prof drives profiled micro-benchmark scenarios for the
// observability stack: it runs a serialized PUT or GET ping-pong under
// any design point with the span assembler and timeline sampler attached,
// then compares the measured per-phase latency breakdown against the
// analytic model's phase predictions (the Table 2 decomposition, one
// delta column per phase). The serialized scenario is the calibration
// point: no queueing, so measured phases should match the model to well
// under a percent; the same machinery attached to a loaded run (via the
// observability flags of the mproxy CLI) then shows exactly which phases
// inflate under contention.
package prof

import (
	"fmt"
	"math"

	"mproxy/internal/arch"
	"mproxy/internal/comm"
	"mproxy/internal/machine"
	"mproxy/internal/memory"
	"mproxy/internal/model"
	"mproxy/internal/sim"
	"mproxy/internal/trace"
	"mproxy/internal/trace/span"
	"mproxy/internal/trace/timeline"
)

// Config selects one profiled scenario.
type Config struct {
	Arch     string // design point name (MP1, HW0, SW1, ...)
	Op       string // "PUT" or "GET"
	Bytes    int
	Reps     int
	PeriodNs int64 // timeline sampling window (0 = default)
	// Fabric tunes the run's communication fabric (command-queue
	// capacity, reliable transport); the zero value is the default
	// quiescent configuration.
	Fabric comm.Options
	// Fault, when non-nil, is installed on the run's cluster.
	Fault machine.FaultPlane
}

func (c Config) name() string {
	return fmt.Sprintf("pingpong-%s-%s-%dB", c.Op, c.Arch, c.Bytes)
}

// Result is one profiled run: the assembled spans and sampled timelines.
type Result struct {
	Cfg  Config
	Arch arch.Params
	Asm  *span.Assembler
	Smp  *timeline.Sampler
}

// PingPong runs the serialized latency scenario under cfg with the
// observability stack attached: for PUT, rank 0 and rank 1 exchange
// n-byte PUTs (the regress/Table 4 shape); for GET, rank 0 issues
// back-to-back n-byte GETs from rank 1's segment. Defaults: 64 bytes,
// 8 reps.
func PingPong(cfg Config) (*Result, error) {
	a, ok := arch.ByName(cfg.Arch)
	if !ok {
		return nil, fmt.Errorf("prof: unknown architecture %q", cfg.Arch)
	}
	if cfg.Bytes <= 0 {
		cfg.Bytes = 64
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 8
	}
	if cfg.Op == "" {
		cfg.Op = "PUT"
	}
	if cfg.Op != "PUT" && cfg.Op != "GET" {
		return nil, fmt.Errorf("prof: unsupported op %q", cfg.Op)
	}
	asm := span.NewAssembler()
	smp := timeline.NewSampler(cfg.PeriodNs)
	eng := sim.NewEngine()
	// Keep whatever tracer the process installed (the scenario layer's
	// observability sinks) and fan in the profiling consumers.
	eng.SetTracer(trace.Multi(eng.Tracer(), asm, smp))
	cl := machine.New(eng, machine.Config{Nodes: 2, ProcsPerNode: 1}, a)
	if cfg.Fault != nil {
		cl.SetFaultPlane(cfg.Fault)
	}
	smp.SetProbes(timeline.ClusterProbes(cl))
	f := comm.NewWith(cl, cfg.Fabric)
	smp.AddProbes(timeline.FabricProbes(f))
	reg := f.Registry()
	n, reps := cfg.Bytes, cfg.Reps
	b0 := reg.NewSegment(0, n)
	b1 := reg.NewSegment(1, n)
	b0.Grant(1)
	b1.Grant(0)
	switch cfg.Op {
	case "PUT":
		ping := reg.NewFlag(1)
		pong := reg.NewFlag(0)
		pingF, _ := reg.Flag(ping)
		pongF, _ := reg.Flag(pong)
		eng.Spawn("pinger", func(p *sim.Proc) {
			ep := f.Endpoint(0)
			ep.Bind(p)
			for i := 0; i < reps; i++ {
				if err := ep.Put(b0.Addr(0), b1.Addr(0), n, memory.FlagRef{}, ping); err != nil {
					panic(err)
				}
				pongF.Wait(p, int64(i+1))
			}
		})
		eng.Spawn("ponger", func(p *sim.Proc) {
			ep := f.Endpoint(1)
			ep.Bind(p)
			for i := 0; i < reps; i++ {
				pingF.Wait(p, int64(i+1))
				if err := ep.Put(b1.Addr(0), b0.Addr(0), n, memory.FlagRef{}, pong); err != nil {
					panic(err)
				}
			}
		})
	case "GET":
		lsync := reg.NewFlag(0)
		eng.Spawn("getter", func(p *sim.Proc) {
			ep := f.Endpoint(0)
			ep.Bind(p)
			for i := 0; i < reps; i++ {
				if err := ep.Get(b0.Addr(0), b1.Addr(0), n, lsync, memory.FlagRef{}); err != nil {
					panic(err)
				}
				ep.WaitFlag(lsync, int64(i+1))
			}
		})
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("prof: %s: %w", cfg.name(), err)
	}
	smp.Flush()
	return &Result{Cfg: cfg, Arch: a, Asm: asm, Smp: smp}, nil
}

// Profile builds the combined observability report for the run.
func (r *Result) Profile() timeline.Profile {
	return timeline.BuildProfile(r.Asm, r.Smp, r.Cfg.name())
}

// Primitives converts a design point's simulator parameters into the
// model's phase-prediction primitives. The conversion goes through the
// same nanosecond rounding the simulator applied when the parameters
// were built, so predictions and measurements share every constant.
func Primitives(a arch.Params) model.PhasePrimitives {
	return model.PhasePrimitives{
		Primitives: model.Primitives{
			C: a.CacheMiss.Micros(),
			U: a.Uncached.Micros(),
			V: a.VMAtt.Micros(),
			S: a.Speed,
			P: a.PollDelay().Micros(),
			L: a.NetLatency.Micros(),
		},
		A:           a.AgentMiss.Micros(),
		PIOMBps:     a.PIOBW,
		NetMBps:     a.NetBW,
		HeaderBytes: comm.HeaderSize,
		AdapterOvh:  a.AdapterOvh.Micros(),
		ComputeOvh:  a.ComputeOvh.Micros(),
		Syscall:     a.SyscallOvh.Micros(),
		Interrupt:   a.InterruptOvh.Micros(),
		Protocol:    a.ProtocolOvh.Micros(),
	}
}

// PhasePredictions returns the model's phase breakdown for an n-byte op
// under a, or nil when the model has no phase form for the combination
// (DMA-range sizes, ENQ/DEQ).
func PhasePredictions(a arch.Params, op string, n int) []model.PhaseCost {
	if n > a.PIOCutoff {
		return nil
	}
	m := Primitives(a)
	switch a.Kind {
	case arch.Proxy:
		switch op {
		case "PUT":
			return m.ProxyPUTPhases(n)
		case "GET":
			return m.ProxyGETPhases(n)
		}
	case arch.CustomHW:
		switch op {
		case "PUT":
			return m.HWPUTPhases(n)
		case "GET":
			return m.HWGETPhases(n)
		}
	case arch.Syscall:
		switch op {
		case "PUT":
			return m.SWPUTPhases(n)
		case "GET":
			return m.SWGETPhases(n)
		}
	}
	return nil
}

// Row is one line of the measured-vs-model breakdown table.
type Row struct {
	Arch       string  `json:"arch"`
	Op         string  `json:"op"`
	Bytes      int     `json:"bytes"`
	Phase      string  `json:"phase"`
	Count      int     `json:"count"`
	MeasuredUs float64 `json:"measured_us"`
	// ModelUs is the analytic prediction; NaN-free: rows without a model
	// value carry Model=false.
	ModelUs  float64 `json:"model_us"`
	Model    bool    `json:"model"`
	DeltaPct float64 `json:"delta_pct"`
}

// BreakdownRows compares the run's measured per-phase means against the
// model's predictions: one row per phase plus a total row.
func (r *Result) BreakdownRows() []Row {
	bd := span.Aggregate(r.Asm.Spans())
	g := bd.ByOp[r.Cfg.Op]
	if g == nil {
		return nil
	}
	pred := PhasePredictions(r.Arch, r.Cfg.Op, r.Cfg.Bytes)
	predBy := make(map[string]float64, len(pred))
	for _, pc := range pred {
		predBy[pc.Phase] = pc.Us
	}
	mk := func(phase string, count int, measured float64) Row {
		row := Row{
			Arch: r.Cfg.Arch, Op: r.Cfg.Op, Bytes: r.Cfg.Bytes,
			Phase: phase, Count: count, MeasuredUs: measured,
		}
		if us, ok := predBy[phase]; ok {
			row.ModelUs = us
			row.Model = true
			row.DeltaPct = deltaPct(measured, us)
		}
		return row
	}
	var rows []Row
	for p := 0; p < span.NumPhases; p++ {
		if g.PhaseCounts[p] == 0 {
			continue
		}
		rows = append(rows, mk(span.Phase(p).String(), g.PhaseCounts[p], g.PhaseMeanUs(span.Phase(p))))
	}
	if len(pred) > 0 {
		predBy["total"] = model.Total(pred)
	}
	rows = append(rows, mk("total", g.Count, g.MeanUs()))
	return rows
}

// deltaPct returns the relative deviation of measured from predicted, in
// percent. A zero prediction with a zero measurement is 0%.
func deltaPct(measured, predicted float64) float64 {
	if predicted == 0 {
		if measured == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * (measured - predicted) / predicted
}
