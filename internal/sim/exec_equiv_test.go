package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"mproxy/internal/trace"
)

// The tests below pin the central contract of the dual execution model:
// a workload is described once, and whether each actor runs as a parked
// coroutine (Proc) or a run-to-completion callback machine (Task) must be
// unobservable in the trace — same events, same (at,seq) order, same
// digest. The comm-layer differential suites prove this for the real
// protocol paths; these property tests prove it for adversarial random
// schedules the protocol code would never reach.

// scriptOp is one step of a generated actor script: hold for d, or block
// until the shared flag reaches need.
type scriptOp struct {
	hold bool
	d    Time
	need int64
}

// genScripts builds w worker scripts of up to l ops each. Waits only ever
// target the ticker-driven shared flag with thresholds the ticker is
// guaranteed to reach, so no assignment of execution modes can deadlock.
func genScripts(rng *rand.Rand, w, l int, maxSignal int64) [][]scriptOp {
	scripts := make([][]scriptOp, w)
	for i := range scripts {
		n := 1 + rng.Intn(l)
		ops := make([]scriptOp, n)
		for j := range ops {
			if rng.Intn(2) == 0 {
				ops[j] = scriptOp{hold: true, d: Time(rng.Intn(500))}
			} else {
				ops[j] = scriptOp{need: 1 + rng.Int63n(maxSignal)}
			}
		}
		scripts[i] = ops
	}
	return scripts
}

// runScripted executes the scripts with worker i running as a Task when
// asTask[i] is set and as a Proc otherwise, returning the trace digest.
// Names and spawn order are mode-independent, so any digest difference is
// a behavioral divergence between the two execution models.
func runScripted(t *testing.T, scripts [][]scriptOp, asTask []bool, ticks int64, tick Time) *trace.Digest {
	t.Helper()
	e := NewEngine()
	d := trace.NewDigest()
	e.SetTracer(d)
	fl := e.NewFlag()
	e.Spawn("ticker", func(p *Proc) {
		for i := int64(0); i < ticks; i++ {
			p.Hold(tick)
			fl.Add(1)
		}
	})
	for w, script := range scripts {
		name := fmt.Sprintf("w%d", w)
		script := script
		if asTask[w] {
			e.SpawnTask(name, func(tk *Task) {
				i := 0
				var step func()
				step = func() {
					for i < len(script) {
						op := script[i]
						i++
						if op.hold {
							tk.Hold(op.d, step)
							return
						}
						if fl.Value() < op.need {
							fl.WaitTask(tk, op.need, step)
							return
						}
					}
				}
				step()
			})
		} else {
			e.Spawn(name, func(p *Proc) {
				for _, op := range script {
					if op.hold {
						p.Hold(op.d)
					} else {
						fl.Wait(p, op.need)
					}
				}
			})
		}
	}
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return d
}

// TestPropertyProcTaskEquivalence drives random schedules under three mode
// assignments — all coroutines, all callback machines, and a random mix —
// and requires bit-identical digests from all three.
func TestPropertyProcTaskEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const ticks = 64
			workers := 1 + rng.Intn(6)
			scripts := genScripts(rng, workers, 12, ticks)
			tick := Time(1 + rng.Intn(100))

			allProc := make([]bool, workers)
			allTask := make([]bool, workers)
			mixed := make([]bool, workers)
			for i := range allTask {
				allTask[i] = true
				mixed[i] = rng.Intn(2) == 0
			}

			dProc := runScripted(t, scripts, allProc, ticks, tick)
			dTask := runScripted(t, scripts, allTask, ticks, tick)
			dMix := runScripted(t, scripts, mixed, ticks, tick)

			if dProc.Sum() != dTask.Sum() || dProc.Count() != dTask.Count() {
				t.Errorf("proc/task digests diverge: proc %s (%d events), task %s (%d events)",
					dProc.Sum(), dProc.Count(), dTask.Sum(), dTask.Count())
			}
			if dProc.Sum() != dMix.Sum() {
				t.Errorf("proc/mixed digests diverge: proc %s, mixed %s (mix %v)",
					dProc.Sum(), dMix.Sum(), mixed)
			}
		})
	}
}

// interleaveRun replays one fuzz input: a parked Proc and a parked Task
// are woken according to the input bytes, with timestamps confined to a
// tiny range so same-instant collisions between the two wake paths are
// the common case rather than the rare one.
func interleaveRun(t *testing.T, data []byte) (*trace.Digest, []trace.Event) {
	t.Helper()
	e := NewEngine()
	d := trace.NewDigest()
	rec := &trace.Recorder{}
	e.SetTracer(trace.Multi(d, rec))
	var pr *Proc
	pr = e.SpawnDaemon("p", func(p *Proc) {
		for {
			p.Park()
		}
	})
	var tk *Task
	tk = e.SpawnTaskDaemon("t", func(tt *Task) {
		var k func()
		k = func() { tt.Park(k) }
		tt.Park(k)
	})
	for _, b := range data {
		at := Time(b & 0x07) // 8 distinct instants: forces ties
		if b&0x08 != 0 {
			e.Schedule(at, func() { e.Wake(pr) })
		} else {
			e.Schedule(at, func() { e.WakeTask(tk) })
		}
	}
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return d, rec.Events()
}

// FuzzProcTaskInterleave mixes Proc wakes and Task callbacks at equal
// timestamps and asserts (1) two runs of the same input produce identical
// digests, and (2) the fired event stream is ordered by (at, seq) — the
// determinism contract both execution models share.
func FuzzProcTaskInterleave(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x08, 0x00, 0x08})
	f.Add([]byte{0x0f, 0x07, 0x0f, 0x07, 0x03, 0x0b})
	f.Add([]byte{1, 9, 1, 9, 1, 9, 2, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		d1, events := interleaveRun(t, data)
		d2, _ := interleaveRun(t, data)
		if d1.Sum() != d2.Sum() || d1.Count() != d2.Count() {
			t.Fatalf("same input, diverging digests: %s (%d events) vs %s (%d events)",
				d1.Sum(), d1.Count(), d2.Sum(), d2.Count())
		}
		var lastAt int64 = -1
		var lastSeq uint64
		for _, ev := range events {
			if ev.Kind != trace.KFire {
				continue
			}
			if ev.At < lastAt {
				t.Fatalf("fire time ran backwards: %d after %d", ev.At, lastAt)
			}
			if ev.At == lastAt && ev.Seq <= lastSeq {
				t.Fatalf("fire order violated FIFO tie-break at t=%d: seq %d after %d",
					ev.At, ev.Seq, lastSeq)
			}
			lastAt, lastSeq = ev.At, ev.Seq
		}
	})
}

// TestShutdownDrainsAllProcs pins the fix for the shutdown goroutine-leak
// window: after Shutdown, every started actor — coroutine or task, daemon
// or not — is dead, and repeated build/shutdown cycles do not accumulate
// goroutines.
func TestShutdownDrainsAllProcs(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for iter := 0; iter < 25; iter++ {
		e := NewEngine()
		var procs []*Proc
		var tasks []*Task
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("p%d", i)
			body := func(p *Proc) {
				for {
					p.Park() // parked forever; only the reaper ends it
				}
			}
			if i%2 == 0 {
				procs = append(procs, e.Spawn(name, body))
			} else {
				procs = append(procs, e.SpawnDaemon(name, body))
			}
		}
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("t%d", i)
			start := func(tk *Task) {
				var k func()
				k = func() { tk.Park(k) }
				tk.Park(k)
			}
			if i%2 == 0 {
				tasks = append(tasks, e.SpawnTask(name, start))
			} else {
				tasks = append(tasks, e.SpawnTaskDaemon(name, start))
			}
		}
		if err := e.RunUntil(Micros(1)); err != nil {
			t.Fatal(err)
		}
		e.Shutdown()
		for i, p := range procs {
			if !p.dead {
				t.Fatalf("iter %d: proc %d still alive after Shutdown", iter, i)
			}
		}
		for i, tk := range tasks {
			if !tk.Dead() {
				t.Fatalf("iter %d: task %d still alive after Shutdown", iter, i)
			}
		}
		if e.live != 0 {
			t.Fatalf("iter %d: %d actors still counted live after Shutdown", iter, e.live)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 || time.Now().After(deadline) {
			if n > baseline+2 {
				t.Fatalf("goroutines leaked across shutdowns: baseline %d, now %d", baseline, n)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAllocPinTaskWake: waking a parked task and dispatching its
// continuation inline must not allocate — this is the run-to-completion
// hot path the agents sit on.
func TestAllocPinTaskWake(t *testing.T) {
	e := NewEngine()
	fired := 0
	var tk *Task
	tk = e.SpawnTaskDaemon("worker", func(tt *Task) {
		var k func()
		k = func() {
			fired++
			tt.Park(k)
		}
		tt.Park(k)
	})
	for i := 0; i < 8; i++ { // warm lane and trace scratch
		e.WakeTask(tk)
	}
	if err := e.RunUntil(0); err != nil {
		t.Fatal(err)
	}
	if fired != 8 {
		t.Fatalf("warmup dispatched %d of 8 wakes", fired)
	}
	pinAllocs(t, "WakeTask+dispatch", func() {
		e.WakeTask(tk)
		if err := e.RunUntil(e.Now()); err != nil {
			t.Fatal(err)
		}
	})
	e.Shutdown()
}

// TestAllocPinTaskHold: the timed self-reschedule (Hold + dispatch) a
// callback machine uses between protocol states must not allocate.
func TestAllocPinTaskHold(t *testing.T) {
	e := NewEngine()
	var tk *Task
	tk = e.SpawnTaskDaemon("timer", func(tt *Task) {
		var k func()
		k = func() { tt.Park(k) }
		tt.Park(k)
	})
	if err := e.RunUntil(0); err != nil {
		t.Fatal(err)
	}
	var k2 func()
	k2 = func() { tk.Park(k2) }
	for i := 0; i < 8; i++ { // warm heap capacity
		tk.Hold(Time(3), k2)
		if err := e.RunUntil(e.Now() + 3); err != nil {
			t.Fatal(err)
		}
	}
	pinAllocs(t, "Task.Hold+dispatch", func() {
		tk.Hold(Time(3), k2)
		if err := e.RunUntil(e.Now() + 3); err != nil {
			t.Fatal(err)
		}
	})
	e.Shutdown()
}
