// Package sim provides a deterministic, sequential discrete-event
// simulation engine. Simulated processes run as goroutines, but exactly one
// goroutine (the engine or a single process) executes at any instant; control
// is handed off through unbuffered channels, so runs are reproducible
// bit-for-bit regardless of GOMAXPROCS or the Go scheduler.
//
// The engine is the substrate for the SMP-cluster model used by the message
// proxy reproduction: it provides processes (compute processors, proxy
// agents, DMA engines), FIFO resources with utilization accounting, and
// counting flags and queues for synchronization.
package sim

import "fmt"

// Time is a simulated time or duration in nanoseconds. The paper's machine
// parameters are expressed in microseconds with sub-microsecond fractions
// (e.g. an uncached access costs 0.65 us), so nanosecond integer resolution
// represents every quantity exactly and keeps event ordering deterministic.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros converts a duration in microseconds (the paper's unit) to Time.
func Micros(us float64) Time {
	if us < 0 {
		panic(fmt.Sprintf("sim: negative duration %v us", us))
	}
	return Time(us*1e3 + 0.5)
}

// Micros reports t in microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Millis reports t in milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// Seconds reports t in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
