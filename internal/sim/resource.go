package sim

import "mproxy/internal/trace"

// Resource is a single-server FIFO resource with utilization accounting.
// It models the contended hardware agents of the paper's CSIM models: the
// message proxy processor, the network adapter's protocol logic, the DMA
// engine, and the NIC output port.
type Resource struct {
	eng     *Engine
	name    string
	inUse   bool
	holder  *Proc
	waiters []*Proc

	busySince Time
	busyTotal Time
	served    int64
	waitTotal Time
}

// NewResource returns an idle resource.
func (e *Engine) NewResource(name string) *Resource {
	return &Resource{eng: e, name: name}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Acquire blocks p until the resource is free, then seizes it.
func (r *Resource) Acquire(p *Proc) {
	enqueued := p.Now()
	for r.inUse {
		r.waiters = append(r.waiters, p)
		p.Park()
	}
	r.inUse = true
	r.holder = p
	r.busySince = p.Now()
	r.waitTotal += p.Now() - enqueued
	r.eng.Emit(trace.KAcquire, r.name, int64(p.Now()-enqueued))
}

// Release frees the resource and wakes the first waiter.
func (r *Resource) Release() {
	if !r.inUse {
		panic("sim: release of idle resource " + r.name)
	}
	r.busyTotal += r.eng.now - r.busySince
	r.served++
	r.eng.Emit(trace.KRelease, r.name, int64(r.eng.now-r.busySince))
	r.inUse = false
	r.holder = nil
	if len(r.waiters) > 0 {
		p := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.eng.Wake(p)
	}
}

// Use seizes the resource for d time units: Acquire, Hold(d), Release.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Hold(d)
	r.Release()
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.inUse }

// BusyTime returns total time the resource has been held.
func (r *Resource) BusyTime() Time {
	t := r.busyTotal
	if r.inUse {
		t += r.eng.now - r.busySince
	}
	return t
}

// Served returns the number of completed holds.
func (r *Resource) Served() int64 { return r.served }

// Utilization returns BusyTime divided by the elapsed interval. BusyTime
// counts the in-progress hold up to the current instant, so the ratio is
// exact at any snapshot, not just at quiesce.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.BusyTime()) / float64(elapsed)
}

// UtilizationSince returns the fraction of [since, now] the resource was
// held, given the cumulative BusyTime the caller observed at since. The
// timeline sampler snapshots BusyTime at each window boundary and feeds
// the previous value back in, so windowed utilization stays exact even
// when a hold straddles the boundary.
func (r *Resource) UtilizationSince(since, busyAtSince Time) float64 {
	now := r.eng.now
	if now <= since {
		return 0
	}
	return float64(r.BusyTime()-busyAtSince) / float64(now-since)
}

// MeanWait returns the average time spent queued before each completed or
// in-progress acquisition.
func (r *Resource) MeanWait() Time {
	n := r.served
	if r.inUse {
		n++
	}
	if n == 0 {
		return 0
	}
	return r.waitTotal / Time(n)
}
