package sim

import (
	"strings"
	"testing"
)

// TestRunUntilZeroDelayAtLimit pins the fast-lane boundary: an event firing
// exactly at the limit may schedule zero-delay work, and that work runs
// within the same RunUntil call — its timestamp equals the limit.
func TestRunUntilZeroDelayAtLimit(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(5, func() {
		order = append(order, "outer")
		e.Schedule(0, func() {
			order = append(order, "inner")
			e.Schedule(0, func() { order = append(order, "innermost") })
		})
	})
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "outer,inner,innermost" {
		t.Fatalf("fired %q, want outer,inner,innermost", got)
	}
	if e.Now() != 5 {
		t.Fatalf("now = %v, want 5", e.Now())
	}
}

// TestRunUntilBelowNowLeavesLanePending pins the other side of the
// boundary: a zero-delay event scheduled after time has advanced past t
// must NOT run during RunUntil(t) — the limit check applies to the lane
// exactly as it does to the heap.
func TestRunUntilBelowNowLeavesLanePending(t *testing.T) {
	e := NewEngine()
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	fired := false
	e.Schedule(0, func() { fired = true }) // pending at t=10
	if err := e.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("zero-delay event at t=10 fired during RunUntil(3)")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event never fired once the limit caught up")
	}
}

// TestWakeAfterStopThenShutdown pins the stop/reap interaction: a Wake
// issued after Stop leaves the transfer pending (the loop has exited), and
// Shutdown still reaps the parked process exactly once, without panicking
// or double-resuming.
func TestWakeAfterStopThenShutdown(t *testing.T) {
	e := NewEngine()
	var worker *Proc
	ends := 0
	e.Spawn("worker", func(p *Proc) {
		worker = p
		defer func() { ends++ }()
		for {
			p.Park()
		}
	})
	e.Schedule(1, func() { e.Stop() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Wake(worker) // lands in the lane of a stopped engine
	e.Shutdown()
	if ends != 1 {
		t.Fatalf("worker body ended %d times, want 1 (reaped exactly once)", ends)
	}
	if e.Live() != 0 {
		t.Fatalf("live = %d after shutdown, want 0", e.Live())
	}
}

// TestReentrantScheduleFromFiringEvent pins re-entrancy: an event may
// schedule zero-delay and future events mid-fire, and they interleave in
// exact (at, seq) order with events that were already pending at the same
// timestamps.
func TestReentrantScheduleFromFiringEvent(t *testing.T) {
	e := NewEngine()
	var order []string
	log := func(s string) func() {
		return func() { order = append(order, s) }
	}
	e.Schedule(5, log("pre5")) // same time as the firing event, earlier seq
	e.Schedule(7, log("pre7")) // future timestamp, scheduled first
	e.Schedule(5, func() {
		order = append(order, "mid")
		e.Schedule(0, log("mid+0a"))
		e.Schedule(2, log("mid+2")) // same timestamp as pre7, later seq
		e.Schedule(0, func() {
			order = append(order, "mid+0b")
			e.Schedule(0, log("nested+0"))
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "pre5,mid,mid+0a,mid+0b,nested+0,pre7,mid+2"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}
