package sim

import (
	"testing"

	"mproxy/internal/trace"
)

// benchWorkload is a representative engine run: two processes ping-pong
// through a flag (park/unpark traffic) while timer events fire (schedule/
// fire traffic). It exercises every emit site on the engine hot path.
func benchWorkload(tr trace.Tracer, rounds int) {
	e := NewEngine()
	e.SetTracer(tr)
	a := e.NewFlag()
	b := e.NewFlag()
	e.Spawn("left", func(p *Proc) {
		for i := 1; i <= rounds; i++ {
			b.Add(1)
			a.Wait(p, int64(i))
		}
	})
	e.Spawn("right", func(p *Proc) {
		for i := 1; i <= rounds; i++ {
			b.Wait(p, int64(i))
			p.Hold(10)
			a.Add(1)
		}
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
}

// BenchmarkNilTracer measures the disabled-tracer engine: the entire
// observability cost must be one nil check per emit site.
func BenchmarkNilTracer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchWorkload(nil, 100)
	}
}

// BenchmarkRecordingTracer measures the same workload with every event
// appended to an in-memory trace.Recorder.
func BenchmarkRecordingTracer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &trace.Recorder{}
		benchWorkload(r, 100)
	}
}

// BenchmarkDigestTracer measures the golden-trace configuration: every
// event folded into the streaming SHA-256 digest.
func BenchmarkDigestTracer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchWorkload(trace.NewDigest(), 100)
	}
}
