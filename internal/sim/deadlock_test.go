package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestDeadlockReportsAndReaps builds a classic deadlock — a ring of
// processes each waiting on a flag only its neighbor would set — and checks
// both halves of the contract: Run returns the documented
// "sim: deadlock: N process(es) blocked..." error naming every stuck
// process, and afterwards all process goroutines have been reaped so a
// long-lived caller (a sweep over many configurations) does not leak.
func TestDeadlockReportsAndReaps(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const ring = 4
	for iter := 0; iter < 25; iter++ {
		e := NewEngine()
		flags := make([]*Flag, ring)
		for i := range flags {
			flags[i] = e.NewFlag()
		}
		for i := 0; i < ring; i++ {
			i := i
			e.Spawn(fmt.Sprintf("ring%d", i), func(p *Proc) {
				p.Hold(Micros(float64(i + 1)))
				flags[i].Wait(p, 1) // neighbor (i+1)%ring would set it, but it is waiting too
			})
		}
		err := e.Run()
		if err == nil {
			t.Fatal("deadlocked ring returned nil error")
		}
		want := fmt.Sprintf("sim: deadlock: %d process(es) blocked", ring)
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("err = %q, want it to contain %q", err, want)
		}
	}
	// Reaping happens via Engine.Shutdown inside Run; give the runtime a
	// moment to retire the exiting goroutines before counting.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 || time.Now().After(deadline) {
			if n > baseline+2 {
				t.Fatalf("goroutines not reaped after deadlock: baseline %d, now %d", baseline, n)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
