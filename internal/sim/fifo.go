package sim

import "mproxy/internal/trace"

// FIFO is a typed unbounded queue of T with blocking Get: the generic
// counterpart of Queue for hot paths where boxing every item into `any`
// costs an allocation per operation (agent work queues see one item per
// simulated message). Its trace stream is identical to Queue's — one
// KEnqueue per Put and one KDequeue per successful Get/TryGet, Arg being
// the queue length after the operation — so converting a queue from Queue
// to FIFO does not perturb golden digests.
//
// Storage is a head-indexed ring over one growing slice: Get clears the
// vacated slot (items must be GC-able once consumed) and advances head,
// and the slice resets to its start whenever the queue drains, so a
// steady-state producer/consumer pair reuses the same backing array
// forever instead of re-allocating as `items = items[1:]` walks the
// capacity away.
type FIFO[T any] struct {
	eng     *Engine
	name    string
	items   []T
	head    int
	getters []waiter
}

// NewFIFO returns an empty typed queue whose enqueue/dequeue operations
// appear in the trace stream under the given name.
func NewFIFO[T any](e *Engine, name string) *FIFO[T] {
	return &FIFO[T]{eng: e, name: name}
}

// Name returns the queue's trace name.
func (q *FIFO[T]) Name() string { return q.name }

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int { return len(q.items) - q.head }

// Put appends x and wakes the first blocked getter, if any.
func (q *FIFO[T]) Put(x T) {
	q.items = append(q.items, x)
	q.eng.Emit(trace.KEnqueue, q.name, int64(q.Len()))
	if len(q.getters) > 0 {
		// Shift instead of reslicing: q.getters[1:] would walk the backing
		// array's capacity away and force a fresh allocation on every
		// park/wake cycle of a steady-state consumer.
		w := q.getters[0]
		copy(q.getters, q.getters[1:])
		q.getters[len(q.getters)-1] = waiter{}
		q.getters = q.getters[:len(q.getters)-1]
		q.eng.wakeWaiter(w)
	}
}

// Get removes and returns the head item, blocking p while the queue is
// empty.
func (q *FIFO[T]) Get(p *Proc) T {
	for q.Len() == 0 {
		q.getters = append(q.getters, waiter{p: p})
		p.Park()
	}
	return q.take()
}

// ParkGetter blocks t as a getter, running k at the next Put. k must
// re-check the queue with TryGet — the Task counterpart of Get's re-check
// loop, with identical park/wake trace emissions.
func (q *FIFO[T]) ParkGetter(t *Task, k func()) {
	q.getters = append(q.getters, waiter{t: t})
	t.Park(k)
}

// TryGet removes and returns the head item without blocking. It returns
// the zero value and false if the queue is empty.
func (q *FIFO[T]) TryGet() (T, bool) {
	if q.Len() == 0 {
		var zero T
		return zero, false
	}
	return q.take(), true
}

func (q *FIFO[T]) take() T {
	x := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.eng.Emit(trace.KDequeue, q.name, int64(q.Len()))
	return x
}
