package sim

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestPropertyMonotonicTime drives the engine with randomized schedules —
// including events that schedule further events — and asserts the core DES
// invariant: observed fire times never decrease.
func TestPropertyMonotonicTime(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%64 + 1
		e := NewEngine()
		var fired []Time
		var schedule func(depth int)
		schedule = func(depth int) {
			d := Time(rng.Intn(1000))
			e.Schedule(d, func() {
				fired = append(fired, e.Now())
				if depth > 0 && rng.Intn(2) == 0 {
					schedule(depth - 1)
				}
			})
		}
		for i := 0; i < n; i++ {
			schedule(3)
		}
		if err := e.Run(); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Logf("fire times not monotonic: %v", fired)
			return false
		}
		return len(fired) >= n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFIFOTieBreak schedules random batches where many events share
// a timestamp and asserts same-time events fire in scheduling (seq) order.
func TestPropertyFIFOTieBreak(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%100 + 2
		e := NewEngine()
		type obs struct {
			at  Time
			idx int
		}
		var fired []obs
		for i := 0; i < n; i++ {
			i := i
			// Few distinct delays, so ties are common.
			d := Time(rng.Intn(4) * 100)
			e.Schedule(d, func() { fired = append(fired, obs{e.Now(), i}) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at == fired[i-1].at && fired[i].idx < fired[i-1].idx {
				t.Logf("tie at %v broken out of order: idx %d before %d",
					fired[i].at, fired[i-1].idx, fired[i].idx)
				return false
			}
		}
		return len(fired) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNegativeDelayPanics asserts Schedule panics for every
// negative delay, never silently clamping.
func TestPropertyNegativeDelayPanics(t *testing.T) {
	prop := func(dRaw int64) bool {
		d := dRaw
		if d > 0 {
			d = -d
		}
		if d == 0 {
			d = -1
		}
		e := NewEngine()
		panicked := false
		func() {
			defer func() { panicked = recover() != nil }()
			e.Schedule(Time(d), func() {})
		}()
		return panicked
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// FuzzEventHeap feeds arbitrary (delay, seq-gap) streams to the 4-ary
// event heap — interleaving pushes with occasional pops so sift-down runs
// against partially drained shapes — and asserts pops come out sorted by
// (time, seq), the ordering that makes every simulation replayable. It
// also checks that vacated slots are zeroed (no retained closures).
func FuzzEventHeap(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{255, 255, 0, 0, 1, 1})
	f.Add([]byte{})
	f.Add([]byte{7, 0, 255, 9, 0, 9, 0, 3, 3, 3, 3, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h eventHeap
		var seq uint64
		nop := func() {}
		popCheck := func(stage string) event {
			ev := h.pop()
			if ev.fn == nil {
				t.Fatalf("%s: pop lost the event payload", stage)
			}
			// The popped element must be the minimum of what was in
			// the heap: nothing remaining may order before it.
			for i := range h {
				if h[i].before(ev) {
					t.Fatalf("%s: popped (%v,#%d) but (%v,#%d) remains",
						stage, ev.at, ev.seq, h[i].at, h[i].seq)
				}
			}
			// Every slot beyond len must have been cleared by pop.
			full := h[:cap(h)]
			for i := len(h); i < len(full); i++ {
				if full[i].fn != nil || full[i].proc != nil {
					t.Fatalf("%s: vacated slot %d retains a reference", stage, i)
				}
			}
			return ev
		}
		for len(data) >= 2 {
			at := Time(binary.LittleEndian.Uint16(data))
			data = data[2:]
			seq++
			h.push(event{at: at, seq: seq, fn: nop})
			// The low bits of the pushed timestamp double as a pop
			// trigger, exercising drained-then-refilled shapes.
			if at%5 == 0 && len(h) > 1 {
				popCheck("interleaved")
			}
		}
		// Drain with no pushes in between: pops must now come out
		// globally sorted by (time, seq).
		var prev event
		for i := 0; len(h) > 0; i++ {
			ev := popCheck("drain")
			if i > 0 {
				if ev.at < prev.at {
					t.Fatalf("pop %d: time ran backwards: %v after %v", i, ev.at, prev.at)
				}
				if ev.at == prev.at && ev.seq < prev.seq {
					t.Fatalf("pop %d: FIFO tie-break violated at %v: seq %d after %d",
						i, ev.at, ev.seq, prev.seq)
				}
			}
			prev = ev
		}
	})
}
