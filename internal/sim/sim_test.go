package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Micros(0.65) != 650*Nanosecond {
		t.Fatalf("Micros(0.65) = %d, want 650", Micros(0.65))
	}
	if Micros(1.0) != Microsecond {
		t.Fatalf("Micros(1.0) = %d", Micros(1.0))
	}
	if got := (1500 * Nanosecond).Micros(); got != 1.5 {
		t.Fatalf("Micros() = %v, want 1.5", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{2 * Microsecond, "2us"},
		{3 * Millisecond, "3ms"},
		{Second, "1s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestMicrosNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative duration")
		}
	}()
	Micros(-1)
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v", e.Now())
	}
}

func TestScheduleTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestProcHold(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Spawn("p", func(p *Proc) {
		p.Hold(100)
		at = append(at, p.Now())
		p.Hold(50)
		at = append(at, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at[0] != 100 || at[1] != 150 {
		t.Fatalf("at = %v", at)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Hold(10)
		order = append(order, "a10")
		p.Hold(20) // resumes at 30
		order = append(order, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		p.Hold(20)
		order = append(order, "b20")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "a10,b20,a30" {
		t.Fatalf("order = %v", order)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		p.Hold(5)
		panic("boom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	f := e.NewFlag()
	e.Spawn("stuck", func(p *Proc) {
		f.Wait(p, 1) // never set
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v", err)
	}
}

func TestFlagWaitAlreadySatisfied(t *testing.T) {
	e := NewEngine()
	f := e.NewFlag()
	f.Add(3)
	done := false
	e.Spawn("p", func(p *Proc) {
		f.Wait(p, 2)
		done = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("waiter did not run")
	}
}

func TestFlagWakesAtThreshold(t *testing.T) {
	e := NewEngine()
	f := e.NewFlag()
	var wokeAt Time
	e.Spawn("waiter", func(p *Proc) {
		f.Wait(p, 2)
		wokeAt = p.Now()
	})
	e.Spawn("setter", func(p *Proc) {
		p.Hold(10)
		f.Add(1)
		p.Hold(10)
		f.Add(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 20 {
		t.Fatalf("woke at %v, want 20", wokeAt)
	}
	if f.Value() != 2 {
		t.Fatalf("flag value %d", f.Value())
	}
}

func TestFlagMultipleWaitersFIFO(t *testing.T) {
	e := NewEngine()
	f := e.NewFlag()
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			f.Wait(p, 1)
			order = append(order, name)
		})
	}
	e.Spawn("setter", func(p *Proc) {
		p.Hold(5)
		f.Add(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "w1,w2,w3" {
		t.Fatalf("order = %v", order)
	}
}

func TestQueueBlockingGet(t *testing.T) {
	e := NewEngine()
	var got any
	var at Time
	q := e.NewQueue()
	e.Spawn("consumer", func(p *Proc) {
		got = q.Get(p)
		at = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Hold(42)
		q.Put("hello")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" || at != 42 {
		t.Fatalf("got %v at %v", got, at)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	e := NewEngine()
	q := e.NewQueue()
	for i := 0; i < 5; i++ {
		q.Put(i)
	}
	var got []int
	e.Spawn("c", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestQueueTryGet(t *testing.T) {
	e := NewEngine()
	q := e.NewQueue()
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.Put(7)
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	v, ok := q.TryGet()
	if !ok || v.(int) != 7 {
		t.Fatalf("TryGet = %v, %v", v, ok)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("server")
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, 10)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(finish) != 3 || finish[0] != 10 || finish[1] != 20 || finish[2] != 30 {
		t.Fatalf("finish = %v", finish)
	}
	if r.BusyTime() != 30 {
		t.Fatalf("busy = %v", r.BusyTime())
	}
	if r.Served() != 3 {
		t.Fatalf("served = %d", r.Served())
	}
	if u := r.Utilization(30); u != 1.0 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestResourceMeanWait(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("server")
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, 10)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Waits are 0, 10, 20 -> mean 10.
	if w := r.MeanWait(); w != 10 {
		t.Fatalf("mean wait = %v", w)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Release()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	hits := 0
	e.Schedule(10, func() { hits++ })
	e.Schedule(100, func() { hits++ })
	if err := e.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if hits != 1 || e.Now() != 50 {
		t.Fatalf("hits=%d now=%v", hits, e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 2 || e.Now() != 100 {
		t.Fatalf("hits=%d now=%v", hits, e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	hits := 0
	e.Schedule(10, func() { hits++; e.Stop() })
	e.Schedule(20, func() { hits++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Two identical simulations with contended resources must produce
	// identical traces: this is the property that distinguishes this DES
	// from wall-clock execution-driven simulation.
	run := func() string {
		e := NewEngine()
		r := e.NewResource("r")
		q := e.NewQueue()
		var b strings.Builder
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				p.Hold(Time(i * 3))
				r.Use(p, 7)
				q.Put(i)
				fmt.Fprintf(&b, "%d@%d;", i, p.Now())
			})
		}
		e.Spawn("drain", func(p *Proc) {
			for i := 0; i < 4; i++ {
				v := q.Get(p)
				fmt.Fprintf(&b, "d%v@%d;", v, p.Now())
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, bb := run(), run()
	if a != bb {
		t.Fatalf("nondeterministic:\n%s\n%s", a, bb)
	}
}

func TestPropertyHoldAdditive(t *testing.T) {
	// Property: splitting a hold into arbitrary chunks ends at the same time.
	f := func(chunks []uint16) bool {
		if len(chunks) > 64 {
			chunks = chunks[:64]
		}
		var total Time
		for _, c := range chunks {
			total += Time(c)
		}
		e := NewEngine()
		var end Time
		e.Spawn("p", func(p *Proc) {
			for _, c := range chunks {
				p.Hold(Time(c))
			}
			end = p.Now()
		})
		if err := e.Run(); err != nil {
			return false
		}
		return end == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyResourceConservation(t *testing.T) {
	// Property: for any set of (arrival, service) pairs, total busy time
	// equals the sum of service times, and completions equal arrivals.
	f := func(jobs []struct{ A, S uint16 }) bool {
		if len(jobs) > 32 {
			jobs = jobs[:32]
		}
		e := NewEngine()
		r := e.NewResource("r")
		var want Time
		for i, j := range jobs {
			arr, svc := Time(j.A), Time(j.S)
			want += svc
			e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
				p.Hold(arr)
				r.Use(p, svc)
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return r.BusyTime() == want && r.Served() == int64(len(jobs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnDaemonExcludedFromDeadlock(t *testing.T) {
	e := NewEngine()
	q := e.NewQueue()
	served := 0
	// A server loop that would otherwise count as deadlocked once its
	// clients finish.
	e.SpawnDaemon("server", func(p *Proc) {
		for {
			q.Get(p)
			served++
		}
	})
	e.Spawn("client", func(p *Proc) {
		q.Put(1)
		q.Put(2)
		p.Hold(10)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("daemon tripped deadlock detection: %v", err)
	}
	if served != 2 {
		t.Fatalf("served = %d", served)
	}
	if e.Live() != 0 {
		t.Fatalf("live = %d (daemons must not count)", e.Live())
	}
}

func TestDaemonPanicStillPropagates(t *testing.T) {
	e := NewEngine()
	e.SpawnDaemon("bad", func(p *Proc) {
		p.Hold(5)
		panic("daemon boom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "daemon boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestShutdownReapsBlockedGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		e := NewEngine()
		q := e.NewQueue()
		e.SpawnDaemon("server", func(p *Proc) {
			for {
				q.Get(p)
			}
		})
		e.Spawn("client", func(p *Proc) {
			q.Put(1)
			p.Hold(5)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	after := runtime.NumGoroutine()
	if after > before+5 {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}

func TestShutdownWithUnstartedProc(t *testing.T) {
	// Stop before the spawn event runs: Shutdown must not hang on the
	// never-started process.
	e := NewEngine()
	e.Stop()
	e.Spawn("never", func(p *Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
