// Package par runs a partitioned simulation across cores using classic
// conservative parallel discrete-event execution. The cluster's nodes are
// split into P shards, each owning a private sim.Engine; all cross-shard
// interactions in the model are link flights with wire latency at least L
// (the lookahead), so every shard may execute the window [T, T+L)
// independently: no event another shard schedules at or after T can land
// before T+L. Windows are separated by a barrier, and cross-shard
// deliveries travel through per-(src,dst) single-producer single-consumer
// mailboxes that are drained between windows in a canonical order — by
// (timestamp, source shard, mailbox push order) — so repeat runs are
// bit-identical no matter how the worker threads interleave.
package par

import (
	"fmt"
	"sort"
	"time"

	"mproxy/internal/sim"
)

// crossing is one cross-shard event: a delivery closure to run on the
// destination engine at absolute time at.
type crossing struct {
	at sim.Time
	fn func()
}

// Sim drives P shard engines through barrier-synchronized lookahead
// windows. Build the model so every actor's events run on its owner
// shard's engine and every cross-shard edge posts through Post with a
// delivery time at least L after the posting instant.
type Sim struct {
	engs []*sim.Engine
	l    sim.Time
	mb   [][][]crossing // [src][dst], appended by src's worker during a window
	xbuf []crossing     // coordinator scratch for the per-destination merge

	stats Stats
}

// Stats reports per-shard execution and synchronization costs so load
// imbalance across the partition is visible rather than guessed.
type Stats struct {
	Shards    int
	Windows   int64   // barrier rounds executed
	Crossings int64   // cross-shard events exchanged
	Events    []int64 // events scheduled per shard engine over the run
	BusyNs    []int64 // wall-clock per shard spent executing windows
	BlockedNs []int64 // wall-clock per shard spent waiting at the barrier
}

// MaxSkewNs returns the spread between the busiest and least-busy shard's
// wall-clock execution time — the cost of partition imbalance.
func (st *Stats) MaxSkewNs() int64 {
	if len(st.BusyNs) == 0 {
		return 0
	}
	min, max := st.BusyNs[0], st.BusyNs[0]
	for _, b := range st.BusyNs[1:] {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	return max - min
}

// String renders the one-line summary the bench harness and forensics
// output print: events per shard, window count, per-shard busy and
// blocked-at-barrier wall-clock ranges, and barrier skew.
func (st *Stats) String() string {
	span := func(xs []int64) string {
		var lo, hi int64
		for i, x := range xs {
			if i == 0 || x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return fmt.Sprintf("%v..%v",
			time.Duration(lo).Round(time.Microsecond),
			time.Duration(hi).Round(time.Microsecond))
	}
	var minE, maxE int64
	for i, e := range st.Events {
		if i == 0 || e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
	}
	return fmt.Sprintf("shards=%d windows=%d crossings=%d events/shard=[%d..%d] busy/shard=[%s] blocked/shard=[%s] max-skew=%s",
		st.Shards, st.Windows, st.Crossings, minE, maxE,
		span(st.BusyNs), span(st.BlockedNs),
		time.Duration(st.MaxSkewNs()).Round(time.Microsecond))
}

// New creates a windowing driver over the given shard engines with
// lookahead l: the minimum simulated latency of any cross-shard edge.
func New(engs []*sim.Engine, l sim.Time) (*Sim, error) {
	if len(engs) == 0 {
		return nil, fmt.Errorf("par: no shard engines")
	}
	if l <= 0 {
		return nil, fmt.Errorf("par: lookahead must be positive, got %v", l)
	}
	p := len(engs)
	mb := make([][][]crossing, p)
	for i := range mb {
		mb[i] = make([][]crossing, p)
	}
	return &Sim{
		engs: engs,
		l:    l,
		mb:   mb,
		stats: Stats{
			Shards:    p,
			Events:    make([]int64, p),
			BusyNs:    make([]int64, p),
			BlockedNs: make([]int64, p),
		},
	}, nil
}

// Post delivers fn to dst's engine at absolute time at. It must be called
// from shard src's worker while a window executes (model layers install
// it as the cross-shard half of their link delivery path). The (src,dst)
// mailbox has exactly one producer — src's worker — and is drained by the
// coordinator after the barrier, so no lock is needed.
func (s *Sim) Post(src, dst int, at sim.Time, fn func()) {
	s.mb[src][dst] = append(s.mb[src][dst], crossing{at: at, fn: fn})
}

// wres is one worker's window result.
type wres struct {
	err error
	pan any
}

// Run executes windows until every engine's event queue is empty and all
// mailboxes have drained, then aligns every shard clock to the global
// last-event time (matching what a sequential run's final Now would be).
// Engines are left running — the caller collects results and then shuts
// each engine down.
func (s *Sim) Run() (*Stats, error) {
	p := len(s.engs)
	work := make([]chan sim.Time, p)
	done := make(chan wres, p)
	for i := 0; i < p; i++ {
		work[i] = make(chan sim.Time)
		go s.worker(i, work[i], done)
	}
	stop := func() {
		for i := 0; i < p; i++ {
			close(work[i])
		}
	}

	for {
		// The next window starts at the global minimum pending timestamp;
		// jumping there (rather than marching in fixed L steps) skips idle
		// gaps entirely.
		var t sim.Time
		have := false
		for _, e := range s.engs {
			if at, ok := e.NextAt(); ok && (!have || at < t) {
				t, have = at, true
			}
		}
		if !have {
			break
		}
		horizon := t + s.l - 1 // RunEvents is inclusive of its limit
		for i := 0; i < p; i++ {
			work[i] <- horizon
		}
		var err error
		var pan any
		for i := 0; i < p; i++ {
			r := <-done
			if r.err != nil && err == nil {
				err = r.err
			}
			if r.pan != nil && pan == nil {
				pan = r.pan
			}
		}
		if pan != nil {
			stop()
			panic(pan)
		}
		if err != nil {
			stop()
			return &s.stats, err
		}
		s.exchange()
		s.stats.Windows++
	}
	stop()

	// Align every shard clock to the global last-event time so post-run
	// observations (utilizations, elapsed time) see the same Now a
	// sequential run would end at.
	var tFinal sim.Time
	for _, e := range s.engs {
		if e.Now() > tFinal {
			tFinal = e.Now()
		}
	}
	for i, e := range s.engs {
		if err := e.RunUntil(tFinal); err != nil {
			return &s.stats, err
		}
		s.stats.Events[i] = int64(e.Scheduled())
	}
	return &s.stats, nil
}

// worker executes shard i's windows: receive a horizon, run events up to
// it, report back, repeat. Busy time covers event execution; blocked time
// covers the barrier wait (including the coordinator's exchange phase).
func (s *Sim) worker(i int, work <-chan sim.Time, done chan<- wres) {
	first := true
	for {
		t0 := time.Now()
		h, ok := <-work
		if !ok {
			return
		}
		if !first {
			s.stats.BlockedNs[i] += time.Since(t0).Nanoseconds()
		}
		first = false
		t1 := time.Now()
		r := s.runShard(i, h)
		s.stats.BusyNs[i] += time.Since(t1).Nanoseconds()
		done <- r
	}
}

// runShard runs one window on shard i's engine, converting a panic into a
// result the coordinator re-raises (so a model bug surfaces exactly like
// it would sequentially, instead of killing the process from a bare
// goroutine).
func (s *Sim) runShard(i int, h sim.Time) (r wres) {
	defer func() {
		if p := recover(); p != nil {
			r.pan = p
		}
	}()
	r.err = s.engs[i].RunEvents(h)
	return r
}

// exchange drains every mailbox into its destination engine in canonical
// order. For one destination, items from all sources are concatenated in
// ascending source-shard order (each mailbox already in push order) and
// stable-sorted by timestamp: the resulting schedule order is
// (at, srcShard, srcSeq), independent of thread interleaving, which is
// what makes repeat parallel runs bit-identical. Runs on the coordinator
// between barriers, so no engine is concurrently touched.
func (s *Sim) exchange() {
	p := len(s.engs)
	for d := 0; d < p; d++ {
		buf := s.xbuf[:0]
		for src := 0; src < p; src++ {
			buf = append(buf, s.mb[src][d]...)
			s.mb[src][d] = s.mb[src][d][:0]
		}
		if len(buf) == 0 {
			continue
		}
		sort.SliceStable(buf, func(i, j int) bool { return buf[i].at < buf[j].at })
		eng := s.engs[d]
		now := eng.Now()
		for i, c := range buf {
			if c.at < now {
				panic(fmt.Sprintf("par: lookahead violation: crossing at %v behind shard %d clock %v", c.at, d, now))
			}
			eng.Schedule(c.at-now, c.fn)
			buf[i] = crossing{} // fired closures must be collectable
		}
		s.stats.Crossings += int64(len(buf))
		s.xbuf = buf[:0]
	}
}
