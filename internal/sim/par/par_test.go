package par_test

import (
	"fmt"
	"reflect"
	"testing"

	"mproxy/internal/sim"
	"mproxy/internal/sim/par"
)

// TestWindowedPingPong bounces an event between two shard engines through
// the mailbox layer and checks the same schedule a single sequential
// engine produces: alternating arrivals L apart, with both shard clocks
// aligned to the global last event afterwards.
func TestWindowedPingPong(t *testing.T) {
	const L = sim.Time(100)
	const rounds = 50
	engs := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	s, err := par.New(engs, L)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []sim.Time
	var bounce func(shard int, n int) func()
	bounce = func(shard int, n int) func() {
		return func() {
			at := engs[shard].Now()
			arrivals = append(arrivals, at)
			if n == rounds {
				return
			}
			s.Post(shard, 1-shard, at+L, bounce(1-shard, n+1))
		}
	}
	engs[0].Schedule(7, bounce(0, 1))
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != rounds {
		t.Fatalf("got %d arrivals, want %d", len(arrivals), rounds)
	}
	for i, at := range arrivals {
		if want := sim.Time(7) + sim.Time(i)*L; at != want {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
	last := arrivals[len(arrivals)-1]
	for i, e := range engs {
		if e.Now() != last {
			t.Errorf("shard %d clock %v, want aligned to %v", i, e.Now(), last)
		}
	}
	if st.Windows != rounds {
		t.Errorf("windows = %d, want %d (one bounce per window)", st.Windows, rounds)
	}
	if st.Crossings != rounds-1 {
		t.Errorf("crossings = %d, want %d", st.Crossings, rounds-1)
	}
	for i := range engs {
		engs[i].Shutdown()
	}
}

// TestDeterministicMerge floods one destination shard with same-timestamp
// crossings from several sources and requires the canonical
// (at, srcShard, push order) delivery order — twice, so the order is also
// proven stable across runs.
func TestDeterministicMerge(t *testing.T) {
	const L = sim.Time(10)
	run := func() []string {
		engs := make([]*sim.Engine, 4)
		for i := range engs {
			engs[i] = sim.NewEngine()
		}
		s, err := par.New(engs, L)
		if err != nil {
			t.Fatal(err)
		}
		var order []string
		// Shards 1..3 each fire at t=0 and post two crossings to shard 0,
		// all arriving at the same instant t=L.
		for src := 1; src < 4; src++ {
			src := src
			engs[src].Schedule(0, func() {
				for k := 0; k < 2; k++ {
					tag := fmt.Sprintf("s%d.%d", src, k)
					s.Post(src, 0, L, func() { order = append(order, tag) })
				}
			})
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		for i := range engs {
			engs[i].Shutdown()
		}
		return order
	}
	want := []string{"s1.0", "s1.1", "s2.0", "s2.1", "s3.0", "s3.1"}
	first := run()
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("merge order = %v, want %v", first, want)
	}
	if second := run(); !reflect.DeepEqual(second, first) {
		t.Fatalf("repeat run order = %v, first run %v", second, first)
	}
}

// TestLookaheadViolation pins the guard: a crossing timed inside the
// current window (closer than L) must panic rather than silently corrupt
// causality.
func TestLookaheadViolation(t *testing.T) {
	engs := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	s, err := par.New(engs, 100)
	if err != nil {
		t.Fatal(err)
	}
	engs[0].Schedule(50, func() {
		s.Post(0, 1, engs[0].Now()+1, func() {}) // violates L=100
	})
	// Shard 1 executes up to t=90 inside the same window, so the t=51
	// crossing lands behind its clock at the exchange.
	engs[1].Schedule(0, func() {})
	engs[1].Schedule(90, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected lookahead-violation panic")
		}
		for i := range engs {
			engs[i].Shutdown()
		}
	}()
	_, _ = s.Run()
}

// TestNewValidation covers the constructor's error paths.
func TestNewValidation(t *testing.T) {
	if _, err := par.New(nil, 10); err == nil {
		t.Error("expected error for zero engines")
	}
	if _, err := par.New([]*sim.Engine{sim.NewEngine()}, 0); err == nil {
		t.Error("expected error for non-positive lookahead")
	}
}

// TestStatsShape checks the per-shard accounting arrays exist and the
// skew/summary helpers behave.
func TestStatsShape(t *testing.T) {
	engs := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	s, err := par.New(engs, 10)
	if err != nil {
		t.Fatal(err)
	}
	engs[0].Schedule(1, func() {})
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || len(st.Events) != 2 || len(st.BusyNs) != 2 || len(st.BlockedNs) != 2 {
		t.Fatalf("stats shape wrong: %+v", st)
	}
	if st.String() == "" {
		t.Error("empty stats summary")
	}
	if st.MaxSkewNs() < 0 {
		t.Error("negative skew")
	}
	for i := range engs {
		engs[i].Shutdown()
	}
}
