package sim

import "mproxy/internal/trace"

// Flag is a monotonic counter that processes can wait on. It models the
// synchronization words the RMA/RQ primitives set on completion (lsync and
// rsync in the paper): completion increments the counter and a waiting
// process resumes once the count reaches its threshold.
type Flag struct {
	eng     *Engine
	val     int64
	waiters []flagWaiter
}

type flagWaiter struct {
	w    waiter
	need int64
}

// NewFlag returns a flag with value zero.
func (e *Engine) NewFlag() *Flag { return &Flag{eng: e} }

// Value returns the current count.
func (f *Flag) Value() int64 { return f.val }

// Add increments the count by n and wakes satisfied waiters in FIFO order.
func (f *Flag) Add(n int64) {
	if n == 0 {
		return
	}
	f.val += n
	if len(f.waiters) == 0 {
		return
	}
	kept := f.waiters[:0]
	for _, w := range f.waiters {
		if f.val >= w.need {
			f.eng.wakeWaiter(w.w)
		} else {
			kept = append(kept, w)
		}
	}
	f.waiters = kept
}

// Wait blocks p until the count is at least need.
func (f *Flag) Wait(p *Proc, need int64) {
	for f.val < need {
		f.waiters = append(f.waiters, flagWaiter{waiter{p: p}, need})
		p.Park()
	}
}

// WaitTask runs k once the count is at least need — immediately if it
// already is, otherwise after parking t. No re-check loop is needed: Add
// only wakes a waiter whose threshold is met, and each waiter receives
// exactly one wake.
func (f *Flag) WaitTask(t *Task, need int64, k func()) {
	if f.val >= need {
		k()
		return
	}
	f.waiters = append(f.waiters, flagWaiter{waiter{t: t}, need})
	t.Park(k)
}

// Queue is an unbounded FIFO of items with blocking Get, used for remote
// queues and ad-hoc rendezvous. Hot paths with a single item type should
// use the generic FIFO instead, which avoids boxing each item into `any`.
// Storage is a head-indexed ring like FIFO's, so steady-state use reuses
// one backing array instead of re-allocating as the head slice walks
// forward.
type Queue struct {
	eng     *Engine
	name    string
	items   []any
	head    int
	getters []*Proc
}

// NewQueue returns an empty queue.
func (e *Engine) NewQueue() *Queue { return &Queue{eng: e, name: "queue"} }

// NewNamedQueue returns an empty queue whose enqueue/dequeue operations
// appear in the trace stream under the given name.
func (e *Engine) NewNamedQueue(name string) *Queue { return &Queue{eng: e, name: name} }

// Name returns the queue's trace name.
func (q *Queue) Name() string { return q.name }

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) - q.head }

// Put appends x and wakes the first blocked getter, if any.
func (q *Queue) Put(x any) {
	q.items = append(q.items, x)
	q.eng.Emit(trace.KEnqueue, q.name, int64(q.Len()))
	if len(q.getters) > 0 {
		p := q.getters[0]
		copy(q.getters, q.getters[1:])
		q.getters[len(q.getters)-1] = nil
		q.getters = q.getters[:len(q.getters)-1]
		q.eng.Wake(p)
	}
}

// Get removes and returns the head item, blocking p while the queue is
// empty.
func (q *Queue) Get(p *Proc) any {
	for q.Len() == 0 {
		q.getters = append(q.getters, p)
		p.Park()
	}
	return q.take()
}

// TryGet removes and returns the head item without blocking. It returns
// false if the queue is empty.
func (q *Queue) TryGet() (any, bool) {
	if q.Len() == 0 {
		return nil, false
	}
	return q.take(), true
}

func (q *Queue) take() any {
	x := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.eng.Emit(trace.KDequeue, q.name, int64(q.Len()))
	return x
}
