package sim

import "mproxy/internal/trace"

// Flag is a monotonic counter that processes can wait on. It models the
// synchronization words the RMA/RQ primitives set on completion (lsync and
// rsync in the paper): completion increments the counter and a waiting
// process resumes once the count reaches its threshold.
type Flag struct {
	eng     *Engine
	val     int64
	waiters []flagWaiter
}

type flagWaiter struct {
	p    *Proc
	need int64
}

// NewFlag returns a flag with value zero.
func (e *Engine) NewFlag() *Flag { return &Flag{eng: e} }

// Value returns the current count.
func (f *Flag) Value() int64 { return f.val }

// Add increments the count by n and wakes satisfied waiters in FIFO order.
func (f *Flag) Add(n int64) {
	if n == 0 {
		return
	}
	f.val += n
	if len(f.waiters) == 0 {
		return
	}
	kept := f.waiters[:0]
	for _, w := range f.waiters {
		if f.val >= w.need {
			f.eng.Wake(w.p)
		} else {
			kept = append(kept, w)
		}
	}
	f.waiters = kept
}

// Wait blocks p until the count is at least need.
func (f *Flag) Wait(p *Proc, need int64) {
	for f.val < need {
		f.waiters = append(f.waiters, flagWaiter{p, need})
		p.Park()
	}
}

// Queue is an unbounded FIFO of items with blocking Get, used for agent
// work queues (proxy command queues, NIC input FIFOs) and remote queues.
type Queue struct {
	eng     *Engine
	name    string
	items   []any
	getters []*Proc
}

// NewQueue returns an empty queue.
func (e *Engine) NewQueue() *Queue { return &Queue{eng: e, name: "queue"} }

// NewNamedQueue returns an empty queue whose enqueue/dequeue operations
// appear in the trace stream under the given name.
func (e *Engine) NewNamedQueue(name string) *Queue { return &Queue{eng: e, name: name} }

// Name returns the queue's trace name.
func (q *Queue) Name() string { return q.name }

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends x and wakes the first blocked getter, if any.
func (q *Queue) Put(x any) {
	q.items = append(q.items, x)
	q.eng.Emit(trace.KEnqueue, q.name, int64(len(q.items)))
	if len(q.getters) > 0 {
		p := q.getters[0]
		q.getters = q.getters[1:]
		q.eng.Wake(p)
	}
}

// Get removes and returns the head item, blocking p while the queue is
// empty.
func (q *Queue) Get(p *Proc) any {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.Park()
	}
	x := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	q.eng.Emit(trace.KDequeue, q.name, int64(len(q.items)))
	return x
}

// TryGet removes and returns the head item without blocking. It returns
// false if the queue is empty.
func (q *Queue) TryGet() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	x := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	q.eng.Emit(trace.KDequeue, q.name, int64(len(q.items)))
	return x, true
}
