package sim

import (
	"runtime"
	"testing"
	"time"

	"mproxy/internal/trace"
)

// The allocation pins below are regression guards for the zero-allocation
// engine core: Schedule, Wake/Hold, and the traced schedule/fire cycle
// must stay allocation-free outside caller-side closure capture. A future
// change that re-introduces boxing (container/heap's `any` interface) or
// per-handoff closures will fail these exact-zero assertions.
//
// Each test warms the engine first so one-time slice growth (lane, heap,
// trace batch buffer, digest scratch) is excluded — the pin is about the
// steady state, which is where simulations spend their time.

// pinAllocs asserts fn performs exactly zero allocations per run.
func pinAllocs(t *testing.T, what string, fn func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, fn); got != 0 {
		t.Errorf("%s: %v allocs/op, want 0", what, got)
	}
}

func TestAllocPinScheduleLane(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ { // warm lane capacity
		e.Schedule(0, nopEvent)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	pinAllocs(t, "Schedule(0)+drain", func() {
		e.Schedule(0, nopEvent)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocPinScheduleHeap(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 64; i++ { // warm heap capacity
		e.Schedule(Time(1+i%7), nopEvent)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	pinAllocs(t, "Schedule(d)+drain", func() {
		for i := 0; i < 32; i++ {
			e.Schedule(Time(1+i%7), nopEvent)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocPinWake(t *testing.T) {
	e := NewEngine()
	var worker *Proc
	e.SpawnDaemon("worker", func(p *Proc) {
		worker = p
		for {
			p.Park()
		}
	})
	if err := e.RunUntil(0); err != nil {
		t.Fatal(err)
	}
	if worker == nil {
		t.Fatal("worker did not start")
	}
	// Warm: one wake/park round.
	e.Wake(worker)
	if err := e.RunUntil(e.Now()); err != nil {
		t.Fatal(err)
	}
	pinAllocs(t, "Wake+handoff", func() {
		e.Wake(worker)
		if err := e.RunUntil(e.Now()); err != nil {
			t.Fatal(err)
		}
	})
	e.Shutdown()
}

func TestAllocPinTracedCycle(t *testing.T) {
	e := NewEngine()
	e.SetTracer(trace.NewDigest())
	for i := 0; i < 512; i++ { // warm lane + batch buffer + digest scratch
		e.Schedule(0, nopEvent)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	pinAllocs(t, "traced Schedule(0)+drain", func() {
		for i := 0; i < 16; i++ {
			e.Schedule(0, nopEvent)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFiredEventsCollectable pins the leak fix: once an event has fired,
// neither the heap's vacated slots nor the lane's consumed slots may keep
// its closure — and therefore its captures — reachable, even though the
// engine retains both backing arrays for reuse.
func TestFiredEventsCollectable(t *testing.T) {
	type payload struct{ buf [1024]byte }
	e := NewEngine()
	collected := make(chan struct{})
	func() {
		p := &payload{}
		runtime.SetFinalizer(p, func(*payload) { close(collected) })
		// Capture p in closures on both storage paths: the timer heap
		// (several delays, so pop exercises sift-down) and the fast lane.
		for i := 0; i < 8; i++ {
			cap := p
			e.Schedule(Time(1+i), func() { _ = cap.buf[0] })
			e.Schedule(0, func() { _ = cap.buf[0] })
		}
	}()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			runtime.KeepAlive(e) // the engine itself stays live throughout
			return
		case <-deadline:
			t.Fatal("fired events' captures never became collectable: a popped slot retains the closure")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}
