package sim

import (
	"testing"

	"mproxy/internal/trace"
)

// nopEvent is scheduled as a package-level func value so the benchmarks
// measure the engine's own cost, not closure allocation at the call site.
func nopEvent() {}

// BenchmarkScheduleFireLane measures the same-timestamp hot path: every
// process handoff in the simulator is a Schedule(0, ...) issued from a
// firing event (Wake), so this chain is the dominant engine pattern.
func BenchmarkScheduleFireLane(b *testing.B) {
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.Schedule(0, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(0, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if n < b.N {
		b.Fatalf("ran %d of %d events", n, b.N)
	}
}

// BenchmarkScheduleFireHeap measures the timer path: 64 outstanding
// events at distinct future timestamps, each rescheduling itself, so
// every operation is a real heap push plus a real heap pop.
func BenchmarkScheduleFireHeap(b *testing.B) {
	const outstanding = 64
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n+outstanding <= b.N {
			e.Schedule(Time(1+n%7), step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < outstanding && i < b.N; i++ {
		e.Schedule(Time(1+i), step)
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWakePark measures the process-handoff cycle: a parked process
// woken by an event, running until it parks again. This is the engine
// cost under every Flag.Wait/Queue.Get rendezvous in the model layers.
func BenchmarkWakePark(b *testing.B) {
	e := NewEngine()
	var worker *Proc
	rounds := 0
	e.Spawn("worker", func(p *Proc) {
		worker = p
		for {
			p.Park()
			rounds++
		}
	})
	e.SpawnDaemon("driver", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			e.Wake(worker)
			p.Hold(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.RunUntil(Time(b.N + 2)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	e.Shutdown()
	if rounds < b.N {
		b.Fatalf("completed %d of %d rounds", rounds, b.N)
	}
}

// BenchmarkTracedScheduleFire is BenchmarkScheduleFireLane with the
// golden-trace digest installed: the cost of one traced occurrence on
// the hot path (schedule + fire, two trace events per operation).
func BenchmarkTracedScheduleFire(b *testing.B) {
	e := NewEngine()
	e.SetTracer(trace.NewDigest())
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.Schedule(0, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(0, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
