package sim

import (
	"container/heap"
	"fmt"

	"mproxy/internal/trace"
)

// event is a scheduled callback. Ties on time are broken by insertion
// sequence so runs are deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Engine is a discrete-event simulator. It is not safe for concurrent use
// from outside simulated processes; all interaction happens either before
// Run, or from process bodies and scheduled events during Run.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	// parked receives a token whenever the currently-running process hands
	// control back to the engine (by parking or by terminating).
	parked chan struct{}

	live    int   // spawned processes that have not yet terminated
	failure error // first panic captured from a process body
	stopped bool
	procs   []*Proc

	// tracer, when non-nil, receives one trace.Event per engine
	// occurrence. The nil check is the entire disabled-tracer cost.
	tracer trace.Tracer
}

// globalTracer, when set, is attached to every engine built by NewEngine.
// It exists for the scenario layer behind cmd/mproxy, whose experiment
// drivers create engines internally; tests and library users should
// prefer SetTracer.
var globalTracer trace.Tracer

// SetGlobalTracer installs (or, with nil, removes) a tracer attached to
// all subsequently created engines. The tracer is shared: it must only be
// used when engines run sequentially, as the experiment drivers do.
func SetGlobalTracer(t trace.Tracer) { globalTracer = t }

// GlobalTracerInstalled reports whether a process-wide tracer is active.
// Drivers that run engines concurrently must check it and fall back to
// sequential execution: the shared tracer is not synchronized.
func GlobalTracerInstalled() bool { return globalTracer != nil }

// NewEngine returns an engine at time zero with no pending events.
func NewEngine() *Engine {
	return &Engine{parked: make(chan struct{}), tracer: globalTracer}
}

// SetTracer installs (or, with nil, removes) the engine's tracer. Install
// before Run for a complete event stream; the golden-trace harness hashes
// everything from the first Schedule on.
func (e *Engine) SetTracer(t trace.Tracer) { e.tracer = t }

// Tracer returns the installed tracer, or nil.
func (e *Engine) Tracer() trace.Tracer { return e.tracer }

// Emit records an event against the engine's tracer, if one is installed.
// Model layers (machine agents, the communication fabric) use it to extend
// the trace stream with their own component events.
func (e *Engine) Emit(kind trace.Kind, comp string, arg int64) {
	if e.tracer == nil {
		return
	}
	e.tracer.Record(trace.Event{At: int64(e.now), Seq: e.seq, Kind: kind, Comp: comp, Arg: arg})
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Live returns the number of spawned processes that have not terminated.
func (e *Engine) Live() int { return e.live }

// Schedule runs fn at now+d. A negative delay panics.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule in the past (delay %v)", d))
	}
	e.seq++
	if e.tracer != nil {
		e.tracer.Record(trace.Event{At: int64(e.now), Seq: e.seq, Kind: trace.KSchedule, Arg: int64(d)})
	}
	heap.Push(&e.events, event{at: e.now + d, seq: e.seq, fn: fn})
}

// Run executes events in timestamp order until no events remain, Stop is
// called, or a process panics. It returns the first process failure, if any.
// Processes still blocked when the event queue drains are reported as a
// deadlock error.
//
// When the run ends, every still-blocked process (daemons like
// communication agents, and any deadlocked process) is reaped so its
// goroutine exits and the simulation's memory can be reclaimed. A reaped
// engine cannot be resumed.
func (e *Engine) Run() error {
	err := e.run(-1)
	e.Shutdown()
	return err
}

// Shutdown reaps every blocked process goroutine. Called automatically at
// the end of Run; call it manually after a final RunUntil.
func (e *Engine) Shutdown() {
	for _, p := range e.procs {
		if p.dead || !p.started {
			continue
		}
		p.killed = true
		e.transfer(p)
	}
	e.procs = nil
}

// RunUntil executes events with timestamps <= t, leaving later events
// pending. Simulated time advances to t if the run is not cut short.
func (e *Engine) RunUntil(t Time) error {
	err := e.run(t)
	if err == nil && !e.stopped && e.now < t {
		e.now = t
	}
	return err
}

func (e *Engine) run(limit Time) error {
	for len(e.events) > 0 && !e.stopped {
		if limit >= 0 && e.events[0].at > limit {
			return e.failure
		}
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			panic("sim: event time ran backwards")
		}
		e.now = ev.at
		if e.tracer != nil {
			e.tracer.Record(trace.Event{At: int64(ev.at), Seq: ev.seq, Kind: trace.KFire})
		}
		ev.fn()
		if e.failure != nil {
			return e.failure
		}
	}
	if e.failure != nil {
		return e.failure
	}
	if !e.stopped && e.live > 0 && limit < 0 {
		return fmt.Errorf("sim: deadlock: %d process(es) blocked with no pending events at %v", e.live, e.now)
	}
	return nil
}

// Stop halts the run after the current event completes. Blocked processes
// are abandoned (their goroutines are parked forever); use only at the end
// of an experiment.
func (e *Engine) Stop() { e.stopped = true }

// transfer hands control to p and blocks until p parks or terminates.
// It must only be called from engine context (inside an event callback).
func (e *Engine) transfer(p *Proc) {
	p.resume <- struct{}{}
	<-e.parked
}

// Wake schedules p to resume at the current time (after already-scheduled
// events at this timestamp). It pairs with Proc.Park to build custom
// blocking structures outside this package.
func (e *Engine) Wake(p *Proc) {
	e.Schedule(0, func() { e.transfer(p) })
}
