package sim

import (
	"fmt"

	"mproxy/internal/trace"
)

// event is a scheduled occurrence. Ties on time are broken by insertion
// sequence so runs are deterministic. Exactly one of fn/proc is set: fn is
// a callback event; proc is a process transfer (Wake, Hold), stored
// directly so the dominant handoff pattern needs no closure allocation.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
}

// before is the engine's total event order: (at, seq).
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a hand-rolled 4-ary min-heap over []event ordered by
// (at, seq). Compared to container/heap it needs no interface boxing on
// push/pop and no Less/Swap method dispatch; the 4-ary layout halves the
// tree depth, trading cheap in-cache child comparisons for pointer-free
// sift steps. Popped slots are zeroed so fired closures become GC-able
// while the backing array is pooled across the whole run.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	*h = append(*h, event{})
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !ev.before(s[p]) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = ev
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	last := s[n]
	s[n] = event{} // clear the vacated slot: the closure must be collectable
	s = s[:n]
	*h = s
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if s[j].before(s[m]) {
					m = j
				}
			}
			if !s[m].before(last) {
				break
			}
			s[i] = s[m]
			i = m
		}
		s[i] = last
	}
	return top
}

// eventLane is the same-timestamp FIFO fast lane. Every Schedule(0, ...)
// and Wake — the dominant case, one per process handoff — lands here and
// bypasses the heap entirely: events pushed while the clock sits at `now`
// can only fire at `now`, in push order, so a ring suffices. The buffer
// resets to its start whenever it drains, reusing its capacity forever.
type eventLane struct {
	buf  []event
	head int
}

func (l *eventLane) push(ev event) { l.buf = append(l.buf, ev) }

func (l *eventLane) len() int { return len(l.buf) - l.head }

func (l *eventLane) pop() event {
	ev := l.buf[l.head]
	l.buf[l.head] = event{} // clear: fired closures must be collectable
	l.head++
	if l.head == len(l.buf) {
		l.buf = l.buf[:0]
		l.head = 0
	}
	return ev
}

// traceBatch is the per-engine tracer buffer size. Batch-capable tracers
// (trace.BatchTracer: the digest, recorder, writer) receive events in
// chunks of up to this many, turning one interface call per occurrence
// into one per batch; order is exactly the emission order either way.
const traceBatch = 256

// Engine is a discrete-event simulator. It is not safe for concurrent use
// from outside simulated processes; all interaction happens either before
// Run, or from process bodies and scheduled events during Run.
type Engine struct {
	now  Time
	seq  uint64
	heap eventHeap
	lane eventLane

	live    int   // spawned processes/tasks that have not yet terminated
	failure error // first panic captured from a process body
	stopped bool
	// down is set by Shutdown: a reaped engine cannot be resumed, so
	// later runs fire nothing and later spawns never start (closing the
	// goroutine-leak window of a spawn event firing after its engine was
	// shut down and its actor list discarded).
	down   bool
	actors []actor // every spawned Proc and Task, in spawn order
	mode   ExecMode

	// tracer, when non-nil, receives one trace.Event per engine
	// occurrence. The nil check is the entire disabled-tracer cost.
	// When the tracer is batch-capable (batch non-nil), events stage in
	// tbuf and flush in order — on a full buffer, at the end of every
	// run, and from FlushTrace.
	tracer trace.Tracer
	batch  trace.BatchTracer
	tbuf   []trace.Event
}

// globalTracer, when set, is attached to every engine built by NewEngine.
// It exists for the scenario layer behind cmd/mproxy, whose experiment
// drivers create engines internally; tests and library users should
// prefer SetTracer.
var globalTracer trace.Tracer

// SetGlobalTracer installs (or, with nil, removes) a tracer attached to
// all subsequently created engines. The tracer is shared: it must only be
// used when engines run sequentially, as the experiment drivers do.
func SetGlobalTracer(t trace.Tracer) { globalTracer = t }

// GlobalTracerInstalled reports whether a process-wide tracer is active.
// Drivers that run engines concurrently must check it and fall back to
// sequential execution: the shared tracer is not synchronized.
//
// Deprecated: thread a tracer through the drivers' option structs
// (workload.Options.Tracer, apps.EnvOptions.Tracer) instead; the global
// remains only as a shim for the scenario layer.
func GlobalTracerInstalled() bool { return globalTracer != nil }

// NewEngine returns an engine at time zero with no pending events.
func NewEngine() *Engine {
	e := &Engine{mode: defaultExecMode}
	e.SetTracer(globalTracer)
	return e
}

// SetTracer installs (or, with nil, removes) the engine's tracer. Install
// before Run for a complete event stream; the golden-trace harness hashes
// everything from the first Schedule on. Any events still batched for the
// previous tracer are flushed to it first.
func (e *Engine) SetTracer(t trace.Tracer) {
	e.FlushTrace()
	e.tracer = t
	e.batch, _ = t.(trace.BatchTracer)
	if e.batch != nil && e.tbuf == nil {
		e.tbuf = make([]trace.Event, 0, traceBatch)
	}
}

// Tracer returns the installed tracer, or nil.
func (e *Engine) Tracer() trace.Tracer { return e.tracer }

// FlushTrace delivers any batched trace events to the tracer. The engine
// flushes automatically when the buffer fills and at the end of every
// Run/RunUntil; call it manually only to observe tracer state mid-run
// from outside the event stream.
func (e *Engine) FlushTrace() {
	if len(e.tbuf) > 0 {
		e.batch.RecordBatch(e.tbuf)
		e.tbuf = e.tbuf[:0]
	}
}

// record stages ev for a batch-capable tracer or delivers it directly.
// Callers must have checked e.tracer != nil.
func (e *Engine) record(ev trace.Event) {
	if e.batch != nil {
		e.tbuf = append(e.tbuf, ev)
		if len(e.tbuf) == traceBatch {
			e.FlushTrace()
		}
		return
	}
	e.tracer.Record(ev)
}

// Emit records an event against the engine's tracer, if one is installed.
// Model layers (machine agents, the communication fabric) use it to extend
// the trace stream with their own component events.
func (e *Engine) Emit(kind trace.Kind, comp string, arg int64) {
	if e.tracer == nil {
		return
	}
	e.record(trace.Event{At: int64(e.now), Seq: e.seq, Kind: kind, Comp: comp, Arg: arg})
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// NextAt returns the timestamp of the earliest pending event, or false if
// none are pending. Lane entries fire at the current instant; heap entries
// at their scheduled time. The parallel windowing driver (sim/par) uses it
// to pick the next safe execution window across shard engines.
func (e *Engine) NextAt() (Time, bool) {
	if e.lane.len() > 0 {
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// Scheduled returns the cumulative count of scheduled events — the
// engine's sequence counter. sim/par reports it per shard so load
// imbalance across a partition is visible.
func (e *Engine) Scheduled() uint64 { return e.seq }

// RunEvents executes events with timestamps <= t like RunUntil, but
// leaves the clock at the last fired event instead of advancing it to t.
// The parallel windowing driver uses it so a shard's clock never runs
// ahead of its own last event: cross-shard deliveries inserted between
// windows then always land at or after the receiving engine's present,
// and the final clock alignment can recover the global last-event time.
func (e *Engine) RunEvents(t Time) error { return e.run(t) }

// Live returns the number of spawned processes that have not terminated.
func (e *Engine) Live() int { return e.live }

// Pending returns the number of scheduled events that have not fired.
func (e *Engine) Pending() int { return len(e.heap) + e.lane.len() }

// Schedule runs fn at now+d. A negative delay panics.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule in the past (delay %v)", d))
	}
	e.seq++
	if e.tracer != nil {
		e.record(trace.Event{At: int64(e.now), Seq: e.seq, Kind: trace.KSchedule, Arg: int64(d)})
	}
	if d == 0 {
		e.lane.push(event{at: e.now, seq: e.seq, fn: fn})
	} else {
		e.heap.push(event{at: e.now + d, seq: e.seq, fn: fn})
	}
}

// scheduleTransfer schedules a process handoff at now+d: the allocation-
// free backbone of Wake and Hold. It emits the same KSchedule event a
// closure-based Schedule did, so trace streams are unchanged.
func (e *Engine) scheduleTransfer(d Time, p *Proc) {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule in the past (delay %v)", d))
	}
	e.seq++
	if e.tracer != nil {
		e.record(trace.Event{At: int64(e.now), Seq: e.seq, Kind: trace.KSchedule, Arg: int64(d)})
	}
	if d == 0 {
		e.lane.push(event{at: e.now, seq: e.seq, proc: p})
	} else {
		e.heap.push(event{at: e.now + d, seq: e.seq, proc: p})
	}
}

// Run executes events in timestamp order until no events remain, Stop is
// called, or a process panics. It returns the first process failure, if any.
// Processes still blocked when the event queue drains are reported as a
// deadlock error.
//
// When the run ends, every still-blocked process (daemons like
// communication agents, and any deadlocked process) is reaped so its
// goroutine exits and the simulation's memory can be reclaimed. A reaped
// engine cannot be resumed.
func (e *Engine) Run() error {
	err := e.run(-1)
	e.Shutdown()
	return err
}

// Shutdown reaps every blocked process goroutine and ends every blocked
// task, in spawn order. Called automatically at the end of Run; call it
// manually after a final RunUntil. Afterwards the engine is down: further
// runs fire no events and further spawns never start, so no goroutine can
// outlive a shut-down engine.
func (e *Engine) Shutdown() {
	e.down = true
	for _, a := range e.actors {
		if p := a.p; p != nil && !p.dead && p.started {
			p.killed = true
			e.transfer(p)
		}
		if t := a.t; t != nil && !t.dead && t.started {
			t.end(1)
		}
	}
	e.actors = nil
	e.FlushTrace()
}

// RunUntil executes events with timestamps <= t, leaving later events
// pending. Simulated time advances to t if the run is not cut short.
func (e *Engine) RunUntil(t Time) error {
	err := e.run(t)
	if err == nil && !e.stopped && e.now < t {
		e.now = t
	}
	return err
}

// run is the event loop. The next event is the minimum of the heap top
// and the lane head under the (at, seq) order; the comparison reduces to
// one timestamp check because of the lane invariant: every lane entry was
// pushed while the clock already sat at e.now, so any heap entry with
// at == e.now was scheduled earlier (from a strictly earlier instant) and
// carries a strictly smaller seq. Heap entries with at > e.now lose to
// the lane on time alone.
func (e *Engine) run(limit Time) error {
	defer e.FlushTrace()
	if e.down {
		return e.failure
	}
	for !e.stopped {
		var ev event
		if e.lane.len() > 0 {
			if limit >= 0 && e.now > limit {
				return e.failure
			}
			if len(e.heap) > 0 && e.heap[0].at == e.now {
				ev = e.heap.pop()
			} else {
				ev = e.lane.pop()
			}
		} else if len(e.heap) > 0 {
			if limit >= 0 && e.heap[0].at > limit {
				return e.failure
			}
			ev = e.heap.pop()
			if ev.at < e.now {
				panic("sim: event time ran backwards")
			}
			e.now = ev.at
		} else {
			break
		}
		if e.tracer != nil {
			e.record(trace.Event{At: int64(ev.at), Seq: ev.seq, Kind: trace.KFire})
		}
		if ev.proc != nil {
			e.transfer(ev.proc)
		} else {
			ev.fn()
		}
		if e.failure != nil {
			return e.failure
		}
	}
	if e.failure != nil {
		return e.failure
	}
	if !e.stopped && e.live > 0 && limit < 0 {
		return fmt.Errorf("sim: deadlock: %d process(es) blocked with no pending events at %v", e.live, e.now)
	}
	return nil
}

// Stop halts the run after the current event completes. Blocked processes
// are abandoned (their goroutines are parked forever); use only at the end
// of an experiment.
func (e *Engine) Stop() { e.stopped = true }

// transfer hands control to p and blocks until p parks or terminates.
// It must only be called from engine context (inside an event callback).
// Transfers to a dead process are dropped: its coroutine has returned and
// resuming it would panic.
func (e *Engine) transfer(p *Proc) {
	if p.dead {
		return
	}
	p.next()
}

// Wake schedules p to resume at the current time (after already-scheduled
// events at this timestamp). It pairs with Proc.Park to build custom
// blocking structures outside this package.
func (e *Engine) Wake(p *Proc) {
	e.scheduleTransfer(0, p)
}
