package sim

import "mproxy/internal/trace"

// ExecMode selects how the model layers' hot-path actors — communication
// agents and the protocol state machines they run — execute. The two modes
// produce bit-identical trace streams (the differential suite in
// internal/regress proves it scenario by scenario); they differ only in
// how control moves between the engine and the actor.
type ExecMode uint8

const (
	// ExecTask runs hot-path actors as run-to-completion Tasks: callback
	// continuations dispatched inline from the engine's event loop, with
	// no goroutine handshake. This is the default.
	ExecTask ExecMode = iota
	// ExecProc runs hot-path actors as coroutine Procs — the blocking
	// reference model the golden traces were originally blessed under.
	ExecProc
)

func (m ExecMode) String() string {
	if m == ExecProc {
		return "proc"
	}
	return "task"
}

// defaultExecMode seeds every engine built by NewEngine. Like the global
// tracer, it exists for layers (scenario drivers, regress harness) whose
// engines are created internally; tests and library users should prefer
// Engine.SetExecMode.
var defaultExecMode = ExecTask

// SetDefaultExecMode sets the execution mode applied to all subsequently
// created engines. The differential equivalence suite flips it around
// whole scenario runs; nothing should change it mid-simulation.
func SetDefaultExecMode(m ExecMode) { defaultExecMode = m }

// DefaultExecMode returns the mode NewEngine will apply.
func DefaultExecMode() ExecMode { return defaultExecMode }

// SetExecMode sets this engine's execution mode. Call it before building
// any model state (agents capture the mode at construction).
func (e *Engine) SetExecMode(m ExecMode) { e.mode = m }

// ExecMode returns the engine's execution mode.
func (e *Engine) ExecMode() ExecMode { return e.mode }

// Task is a run-to-completion actor: the callback/state-machine
// counterpart of Proc. A Task never owns a goroutine; each wake-up runs a
// continuation inline from the engine loop until the continuation either
// parks again (Hold, FIFO.ParkGetter, Flag.WaitTask) or the task ends.
//
// A Task's trace stream is indistinguishable from an equivalent Proc's:
// spawning emits KSchedule/KFire/KSpawn, parking emits KPark, waking
// emits KSchedule then KFire/KUnpark, and termination emits KProcEnd —
// in exactly the coroutine order. That equivalence is what lets the two
// models interleave in one engine under one (at, seq) total order and
// lets golden digests stay byte-identical across modes.
type Task struct {
	eng     *Engine
	name    string
	next    func()
	run     func() // prebuilt dispatch closure: wake events carry it, so waking allocates nothing
	daemon  bool
	dead    bool
	started bool
}

// SpawnTask creates a task whose start function runs at the current
// simulated time (after already-scheduled events at this timestamp),
// mirroring Spawn.
func (e *Engine) SpawnTask(name string, start func(t *Task)) *Task {
	return e.spawnTask(name, start, false)
}

// SpawnTaskDaemon is SpawnTask for server tasks that do not count toward
// deadlock detection, mirroring SpawnDaemon.
func (e *Engine) SpawnTaskDaemon(name string, start func(t *Task)) *Task {
	return e.spawnTask(name, start, true)
}

func (e *Engine) spawnTask(name string, start func(t *Task), daemon bool) *Task {
	t := &Task{eng: e, name: name, daemon: daemon}
	t.run = t.dispatch
	if e.down {
		t.dead = true
		return t
	}
	if !daemon {
		e.live++
	}
	e.actors = append(e.actors, actor{t: t})
	e.Schedule(0, func() {
		if e.down {
			t.dead = true
			if !daemon {
				e.live--
			}
			return
		}
		t.started = true
		e.Emit(trace.KSpawn, t.name, 0)
		start(t)
		t.settle()
	})
	return t
}

// Engine returns the engine this task belongs to.
func (t *Task) Engine() *Engine { return t.eng }

// Name returns the task name given at SpawnTask.
func (t *Task) Name() string { return t.name }

// Now returns the current simulated time.
func (t *Task) Now() Time { return t.eng.now }

// Park records k as the continuation to run at the task's next wake-up
// (Engine.WakeTask, or a sync primitive the task blocked on) and returns
// control to the caller — the Task analogue of Proc.Park. The caller must
// return to the engine without further simulation effects.
func (t *Task) Park(k func()) {
	t.next = k
	t.eng.Emit(trace.KPark, t.name, 0)
}

// Hold runs k after d time units of simulated delay: the continuation
// form of Proc.Hold. Hold(0, k) yields, letting other events at the same
// timestamp run first.
func (t *Task) Hold(d Time, k func()) {
	t.eng.scheduleTask(d, t)
	t.Park(k)
}

// End terminates the task, emitting the same KProcEnd a Proc body's
// return does. A continuation chain that simply stops parking is ended
// automatically; End exists for explicit early exits (poison pills).
func (t *Task) End() { t.end(0) }

// Dead reports whether the task has ended.
func (t *Task) Dead() bool { return t.dead }

func (t *Task) end(killed int64) {
	if t.dead {
		return
	}
	t.dead = true
	t.next = nil
	if !t.daemon {
		t.eng.live--
	}
	t.eng.Emit(trace.KProcEnd, t.name, killed)
}

// dispatch is the body of every wake event: it consumes the parked
// continuation and runs it to completion. Wakes pending for an ended task
// are dropped, matching the engine's guard against transfers to dead
// processes.
func (t *Task) dispatch() {
	if t.dead {
		return
	}
	k := t.next
	t.next = nil
	t.eng.Emit(trace.KUnpark, t.name, 0)
	if k == nil {
		panic("sim: task " + t.name + " woken with no continuation")
	}
	k()
	t.settle()
}

// settle ends the task when its continuation chain ran off the end
// without parking again — the Task analogue of a Proc body returning.
func (t *Task) settle() {
	if !t.dead && t.next == nil {
		t.end(0)
	}
}

// scheduleTask schedules t's dispatch at now+d. It is the Task twin of
// scheduleTransfer: same KSchedule emission, and the event carries the
// task's prebuilt run closure so waking allocates nothing and the event
// struct stays at its 32-byte layout.
func (e *Engine) scheduleTask(d Time, t *Task) {
	e.Schedule(d, t.run)
}

// WakeTask schedules t's parked continuation to run at the current time
// (after already-scheduled events at this timestamp), pairing with
// Task.Park exactly as Wake pairs with Proc.Park.
func (e *Engine) WakeTask(t *Task) {
	e.scheduleTask(0, t)
}

// actor is one spawned process or task, recorded in spawn order so
// Shutdown reaps both models in a single deterministic pass.
type actor struct {
	p *Proc
	t *Task
}

// waiter is a parked actor of either execution model, used by the sync
// primitives (FIFO, Flag) whose wait queues must admit both.
type waiter struct {
	p *Proc
	t *Task
}

// wakeWaiter wakes a parked actor of either model; both paths emit the
// same KSchedule, keeping wake order — and therefore trace streams —
// identical regardless of who is waiting.
func (e *Engine) wakeWaiter(w waiter) {
	if w.p != nil {
		e.scheduleTransfer(0, w.p)
		return
	}
	e.scheduleTask(0, w.t)
}
