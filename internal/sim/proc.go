package sim

import (
	"fmt"
	"iter"

	"mproxy/internal/trace"
)

// Proc is a simulated process. A Proc's body runs on its own coroutine
// (an iter.Pull iterator), and is only ever executing while the engine is
// blocked inside next() waiting for it, so the simulation remains
// sequential and deterministic. The coroutine switch transfers control
// directly between the engine and the process without a trip through the
// goroutine scheduler, which makes a park/resume cycle several times
// cheaper than a channel handshake.
type Proc struct {
	eng     *Engine
	name    string
	next    func() (struct{}, bool)
	yield   func(struct{}) bool
	dead    bool
	daemon  bool
	killed  bool
	started bool
}

// Spawn creates a process whose body starts executing at the current
// simulated time (after already-scheduled events at this timestamp).
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.spawn(name, body, false)
}

// SpawnDaemon creates a process like Spawn, but the process does not count
// toward deadlock detection: a daemon blocked forever (a server loop whose
// clients are gone) is not an error. Communication agents are daemons.
func (e *Engine) SpawnDaemon(name string, body func(p *Proc)) *Proc {
	return e.spawn(name, body, true)
}

// procKilled is the sentinel Park panics with when the engine reaps a
// blocked process at shutdown; the coroutine wrapper swallows it.
type procKilled struct{}

func (e *Engine) spawn(name string, body func(p *Proc), daemon bool) *Proc {
	p := &Proc{eng: e, name: name, daemon: daemon}
	if e.down {
		p.dead = true
		return p
	}
	if !daemon {
		e.live++
	}
	e.actors = append(e.actors, actor{p: p})
	e.Schedule(0, func() {
		if e.down {
			// The engine was shut down before this spawn fired (a final
			// RunUntil after Shutdown): the reaper has already run, so the
			// body must never start.
			p.dead = true
			if !daemon {
				e.live--
			}
			return
		}
		p.started = true
		e.Emit(trace.KSpawn, p.name, 0)
		p.next, _ = iter.Pull(func(yield func(struct{}) bool) {
			p.yield = yield
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(procKilled); !ok && e.failure == nil {
						e.failure = fmt.Errorf("sim: process %q panicked at %v: %v", p.name, e.now, r)
					}
				}
				p.dead = true
				if !daemon {
					e.live--
				}
				var killed int64
				if p.killed {
					killed = 1
				}
				e.Emit(trace.KProcEnd, p.name, killed)
			}()
			body(p)
		})
		e.transfer(p)
	})
	return p
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Park hands control back to the engine and blocks until another process
// or event calls Engine.Wake on this process. It is the low-level primitive
// behind Flag, Queue and Resource; external packages may use it to build
// their own blocking structures.
func (p *Proc) Park() {
	p.eng.Emit(trace.KPark, p.name, 0)
	if !p.yield(struct{}{}) || p.killed {
		// The engine reaped this process while it was parked (or the
		// iterator was stopped underneath it): unwind the body.
		p.killed = true
		panic(procKilled{})
	}
	p.eng.Emit(trace.KUnpark, p.name, 0)
}

// Hold advances the process's local time by d: the process blocks and
// resumes d simulated time units later. Hold(0) yields, letting other
// events at the same timestamp run first.
func (p *Proc) Hold(d Time) {
	p.eng.scheduleTransfer(d, p)
	p.Park()
}
